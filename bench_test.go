package mix

// One testing.B benchmark per experiment in DESIGN.md's experiment
// index. cmd/mixbench prints the same data as human-readable tables;
// these benches give stable, repeatable numbers (see EXPERIMENTS.md).

import (
	"errors"
	"fmt"
	"testing"

	"mix/internal/concrete"
	"mix/internal/core"
	"mix/internal/corpus"
	"mix/internal/lang"
	"mix/internal/langgen"
	"mix/internal/microc"
	"mix/internal/mixy"
	"mix/internal/sym"
	"mix/internal/types"
)

// BenchmarkE1Idioms checks every Section 2 idiom with the mixed
// analysis (the precision workload of the paper's motivation).
func BenchmarkE1Idioms(b *testing.B) {
	for _, idiom := range corpus.CoreIdioms {
		idiom := idiom
		env := map[string]string{}
		for _, p := range idiom.Env {
			env[p[0]] = p[1]
		}
		b.Run(idiom.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := Check(idiom.Source, Config{Env: env})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// BenchmarkE2Cases runs MIXY on the four vsftpd case studies, baseline
// and mixed.
func BenchmarkE2Cases(b *testing.B) {
	for _, c := range corpus.Cases {
		c := c
		b.Run(c.Name+"/baseline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeC(c.Source, CConfig{PureTypes: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.Name+"/mixy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := AnalyzeC(c.Source, CConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Warnings) != 0 {
					b.Fatalf("unexpected warnings: %v", res.Warnings)
				}
			}
		})
	}
}

// BenchmarkE3TimingSweep measures MIXY cost against the number of
// symbolic blocks (the paper's Section 4.6 timing observation: <1s /
// 5–25s / ~60s — the shape under test is monotone superlinear growth).
func BenchmarkE3TimingSweep(b *testing.B) {
	const n = 12
	for _, k := range []int{0, 1, 2, 3} {
		k := k
		src := corpus.SyntheticVsftpd(n, k)
		prog := mustParse(src)
		b.Run(fmt.Sprintf("blocks=%d", k), func(b *testing.B) {
			var queries int
			for i := 0; i < b.N; i++ {
				a, err := mixy.Run(prog, mixy.Options{})
				if err != nil {
					b.Fatal(err)
				}
				queries = a.Stats.SolverQueries
			}
			b.ReportMetric(float64(queries), "solver-queries")
		})
	}
}

// BenchmarkE4ForkVsDefer measures the Section 3.1 deferral-vs-
// execution tradeoff on sequential conditionals: forking explores 2^n
// paths; deferring builds one path with conditional values.
func BenchmarkE4ForkVsDefer(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		src, envPairs := corpus.Ladder(n)
		e := lang.MustParse(src)
		for _, mode := range []string{"fork", "defer"} {
			mode := mode
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				var paths int
				for i := 0; i < b.N; i++ {
					opts := core.Options{}
					if mode == "defer" {
						opts.IfMode = sym.DeferIf
					}
					checker := core.New(opts)
					tenv := types.EmptyEnv()
					for _, p := range envPairs {
						tenv = tenv.Extend(p[0], types.Bool)
					}
					if _, err := checker.CheckSymbolic(tenv, e); err != nil {
						b.Fatal(err)
					}
					paths = checker.Executor().Stats.Paths
				}
				b.ReportMetric(float64(paths), "paths")
			})
		}
	}
}

// BenchmarkE5Frontier measures the headline precision/efficiency
// claim: pure typing rejects, pure symbolic execution pays 2^n paths,
// MIX accepts at ~constant cost.
func BenchmarkE5Frontier(b *testing.B) {
	for _, n := range []int{8, 10} {
		plain, mixed, envPairs := corpus.DeepConditionals(n)
		env := map[string]string{}
		for _, p := range envPairs {
			env[p[0]] = p[1]
		}
		b.Run(fmt.Sprintf("n=%d/pure-symbolic", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := Check(plain, Config{Mode: StartSymbolic, Env: env})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/mix", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := Check(mixed, Config{Env: env})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// BenchmarkE6Caching measures block caching (Section 4.3).
func BenchmarkE6Caching(b *testing.B) {
	src := cacheBenchProgram(12)
	prog := mustParse(src)
	for _, cache := range []bool{true, false} {
		cache := cache
		name := "on"
		if !cache {
			name = "off"
		}
		b.Run("cache="+name, func(b *testing.B) {
			var analyzed int
			for i := 0; i < b.N; i++ {
				a, err := mixy.Run(prog, mixy.Options{NoCache: !cache})
				if err != nil {
					b.Fatal(err)
				}
				analyzed = a.Stats.BlocksAnalyzed
			}
			b.ReportMetric(float64(analyzed), "blocks-analyzed")
		})
	}
}

func cacheBenchProgram(sites int) string {
	src := "int *g;\nvoid blk(void) MIX(symbolic) { g = NULL; g = malloc(sizeof(int)); }\n"
	outer := "void outer(void) MIX(symbolic) {\n"
	for i := 0; i < sites; i++ {
		src += fmt.Sprintf("void t%d(void) MIX(typed) { blk(); }\n", i)
		outer += fmt.Sprintf("  t%d();\n", i)
	}
	src += outer + "}\nint main(void) { outer(); return 0; }\n"
	return src
}

// BenchmarkE7Recursion measures recursion handling between typed and
// symbolic blocks (Section 4.4).
func BenchmarkE7Recursion(b *testing.B) {
	src := `
int *g;
int counter;
void typed_side(void) MIX(typed) { sym_side(); }
void sym_side(void) MIX(symbolic) {
  if (counter > 0) {
    counter = counter - 1;
    typed_side();
  }
  g = NULL;
}
int main(void) { sym_side(); return 0; }
`
	prog := mustParse(src)
	var cuts int
	for i := 0; i < b.N; i++ {
		a, err := mixy.Run(prog, mixy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cuts = a.Stats.RecursionCuts
	}
	b.ReportMetric(float64(cuts), "recursion-cuts")
}

// BenchmarkE8Soundness measures the randomized Theorem 1 check:
// generate, mix-check, concretely evaluate.
func BenchmarkE8Soundness(b *testing.B) {
	gen := langgen.New(20100605, langgen.DefaultConfig())
	for i := 0; i < b.N; i++ {
		prog := gen.Closed()
		checker := core.New(core.Options{})
		if _, err := checker.Check(types.EmptyEnv(), prog); err != nil {
			continue
		}
		ev := concrete.NewEvaluator()
		if _, cerr := ev.Eval(concrete.EmptyEnv(), concrete.NewMemory(), prog); errors.Is(cerr, concrete.ErrTypeError) {
			b.Fatalf("UNSOUND on %s", prog)
		}
	}
}

// BenchmarkSolver measures the decision procedure on representative
// queries (ablation support: the solver is the substituted STP).
func BenchmarkSolver(b *testing.B) {
	b.Run("trichotomy-tautology", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := Check(`{s if x = 0 then {t 1 t} else (if x = 1 then {t 2 t} else {t 3 t}) s}`,
				Config{Env: map[string]string{"x": "int"}})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
}

// mustParse parses a MicroC test fixture, panicking on error; the
// library itself reports parse errors through the normal return path,
// fixtures are expected to be valid.
func mustParse(src string) *microc.Program {
	prog, err := microc.Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
