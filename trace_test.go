// Observability acceptance tests (DESIGN.md section 11): seeded runs
// in deterministic trace mode must produce byte-identical JSONL on
// one worker and four, and chaos runs must leave degrade events
// naming the fault class of every degradation the run absorbed. Run
// under -race: trace emission happens on worker goroutines.
package mix

import (
	"bytes"
	"context"
	"testing"
	"time"

	"mix/internal/corpus"
	"mix/internal/fault"
	"mix/internal/obs"
)

// ladderTraceJSONL explores ladder(n) symbolically on the given
// worker count with a deterministic tracer and returns the flushed
// JSONL bytes.
func ladderTraceJSONL(t *testing.T, n, workers int) []byte {
	t.Helper()
	src, envPairs := corpus.Ladder(n)
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	tr := obs.NewTracer(obs.TraceOptions{Deterministic: true})
	res := Check(src, Config{Mode: StartSymbolic, Env: env, Workers: workers, Tracer: tr})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterministicAcrossWorkers is the headline acceptance
// criterion: the deterministic-mode trace of a seeded run is
// byte-identical whether exploration ran on one worker or four.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	want := ladderTraceJSONL(t, 8, 1)
	if len(want) == 0 {
		t.Fatal("sequential run produced an empty trace")
	}
	// Several parallel rounds: a schedule-dependent trace would only
	// flake, so give it chances to.
	for round := 0; round < 3; round++ {
		got := ladderTraceJSONL(t, 8, 4)
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: workers=4 trace differs from workers=1 (%d vs %d bytes)",
				round, len(got), len(want))
		}
	}
}

// TestTraceDeterministicMixy asserts the same property end-to-end
// through MIXY: fixpoint-loop events and the symbolic executions
// inside it trace identically across worker counts.
func TestTraceDeterministicMixy(t *testing.T) {
	run := func(workers int) []byte {
		tr := obs.NewTracer(obs.TraceOptions{Deterministic: true})
		_, err := AnalyzeC(corpus.Case1.Source, CConfig{Workers: workers, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("sequential run produced an empty trace")
	}
	if got := run(4); !bytes.Equal(got, want) {
		t.Fatalf("workers=4 MIXY trace differs from workers=1 (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosDegradeEventsNameFaultClass drives every fault class
// through a traced ladder run and asserts the trace carries the
// degradation's provenance: at least one degrade event, every degrade
// event naming the class the verdict reports.
func TestChaosDegradeEventsNameFaultClass(t *testing.T) {
	scenarios := []struct {
		name  string
		class string
		// configure arms the scenario; called once per run so stateful
		// injectors are never shared.
		configure func(*Config)
	}{
		{"timeout", "timeout", func(c *Config) { c.Deadline = time.Nanosecond }},
		{"canceled", "canceled", func(c *Config) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			c.Context = ctx
		}},
		{"path-budget", "path-budget", func(c *Config) { c.MaxPaths = 4 }},
		{"step-budget", "step-budget", func(c *Config) {
			c.FaultInjector = fault.NewInjector(1).
				Plan(fault.PreFork, fault.Plan{Class: fault.StepBudget})
		}},
		{"solver-limit", "solver-limit", func(c *Config) {
			c.FaultInjector = fault.NewInjector(1).
				Plan(fault.PreSolve, fault.Plan{Class: fault.SolverLimit})
		}},
		{"worker-panic", "worker-panic", func(c *Config) {
			c.FaultInjector = fault.NewInjector(1).
				Plan(fault.PreFork, fault.Plan{Count: 1, Panic: true})
		}},
	}
	src, envPairs := corpus.Ladder(8)
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				tr := obs.NewTracer(obs.TraceOptions{Deterministic: true})
				cfg := Config{Mode: StartSymbolic, Env: env, Workers: workers, Tracer: tr}
				sc.configure(&cfg)
				res := Check(src, cfg)
				if res.Err != nil {
					t.Fatalf("workers=%d: fault must degrade, not reject: %v", workers, res.Err)
				}
				if !res.Degraded {
					t.Fatalf("workers=%d: expected a degraded verdict", workers)
				}
				if res.Fault != sc.class {
					t.Fatalf("workers=%d: verdict fault class = %q, want %q", workers, res.Fault, sc.class)
				}
				var degrades int
				for _, e := range tr.Events() {
					if e.Kind != obs.KindDegrade {
						continue
					}
					degrades++
					if e.Class != sc.class {
						t.Fatalf("workers=%d: degrade event on path %s names class %q, want %q (detail: %s)",
							workers, e.Path, e.Class, sc.class, e.Detail)
					}
				}
				if degrades == 0 {
					t.Fatalf("workers=%d: degraded run left no degrade event in the trace", workers)
				}
			}
		})
	}
}

// TestTraceMetricsRegistrySchema pins the -stats rendering contract
// end-to-end: a traced, metered check populates the registry, and the
// stats schema is sorted "name value" lines.
func TestTraceMetricsRegistrySchema(t *testing.T) {
	src, envPairs := corpus.Ladder(4)
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	reg := obs.NewRegistry()
	res := Check(src, Config{Mode: StartSymbolic, Env: env, Workers: 2, Metrics: reg})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	snap := reg.Snapshot()
	byName := map[string]obs.Metric{}
	for i, m := range snap.Metrics {
		byName[m.Name] = m
		if i > 0 && !(snap.Metrics[i-1].Name < m.Name) {
			t.Fatalf("snapshot not sorted: %q before %q", snap.Metrics[i-1].Name, m.Name)
		}
	}
	if got := byName["mix.paths"].Value; got != 16 {
		t.Fatalf("mix.paths = %d, want 16", got)
	}
	if got := byName["engine.workers"].Value; got != 2 {
		t.Fatalf("engine.workers = %d, want 2", got)
	}
	if _, ok := byName["solver.queries"]; !ok {
		t.Fatal("solver.queries missing from registry snapshot")
	}
}
