// Command mixtrace validates and converts the JSONL event traces
// written by mix -trace / mixy -trace (see DESIGN.md section 11).
//
// Usage:
//
//	mixtrace validate [-schema testdata/trace_schema.json] trace.jsonl
//	mixtrace chrome trace.jsonl > trace.json
//
// validate checks every line against the checked-in JSON schema
// (field types, kind/verdict/class enums, path-ID pattern) plus the
// structural invariants a schema cannot express: strictly increasing
// seq, parent IDs that are strict prefixes of their child paths,
// parent-less roots, and merge events whose path IDs extend a live
// (already-declared) root. Exit status 1 means the trace is invalid.
//
// chrome converts a trace to Chrome trace_event JSON on stdout, ready
// to load in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Deterministic (wall-clock-free) traces become instant events laid
// out by sequence number; timed traces become duration slices.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"

	"mix/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "validate":
		runValidate(os.Args[2:])
	case "chrome":
		runChrome(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mixtrace validate [-schema file] trace.jsonl")
	fmt.Fprintln(os.Stderr, "       mixtrace chrome trace.jsonl > trace.json")
	os.Exit(2)
}

// schemaProp is the subset of JSON Schema this validator interprets:
// enough for flat event objects (scalar types, enums, patterns,
// minimums), deliberately not a general implementation.
type schemaProp struct {
	Type    string   `json:"type"`
	Enum    []string `json:"enum"`
	Pattern string   `json:"pattern"`
	Minimum *float64 `json:"minimum"`
}

type schema struct {
	Required             []string              `json:"required"`
	AdditionalProperties bool                  `json:"additionalProperties"`
	Properties           map[string]schemaProp `json:"properties"`

	patterns map[string]*regexp.Regexp
}

func loadSchema(path string) (*schema, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s schema
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	s.patterns = map[string]*regexp.Regexp{}
	for name, p := range s.Properties {
		if p.Pattern != "" {
			re, err := regexp.Compile(p.Pattern)
			if err != nil {
				return nil, fmt.Errorf("%s: property %s: %v", path, name, err)
			}
			s.patterns[name] = re
		}
	}
	return &s, nil
}

// check validates one decoded event object against the schema.
func (s *schema) check(obj map[string]any) []string {
	var errs []string
	for _, req := range s.Required {
		if _, ok := obj[req]; !ok {
			errs = append(errs, "missing required field "+req)
		}
	}
	for name, v := range obj {
		p, known := s.Properties[name]
		if !known {
			if !s.AdditionalProperties {
				errs = append(errs, "unknown field "+name)
			}
			continue
		}
		switch p.Type {
		case "integer":
			f, ok := v.(float64)
			if !ok || f != float64(int64(f)) {
				errs = append(errs, fmt.Sprintf("field %s: want integer, got %v", name, v))
				continue
			}
			if p.Minimum != nil && f < *p.Minimum {
				errs = append(errs, fmt.Sprintf("field %s: %v below minimum %v", name, f, *p.Minimum))
			}
		case "string":
			str, ok := v.(string)
			if !ok {
				errs = append(errs, fmt.Sprintf("field %s: want string, got %v", name, v))
				continue
			}
			if len(p.Enum) > 0 && !contains(p.Enum, str) {
				errs = append(errs, fmt.Sprintf("field %s: %q not in enum %v", name, str, p.Enum))
			}
			if re := s.patterns[name]; re != nil && !re.MatchString(str) {
				errs = append(errs, fmt.Sprintf("field %s: %q does not match %s", name, str, re))
			}
		}
	}
	return errs
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func runValidate(args []string) {
	schemaPath := "testdata/trace_schema.json"
	if len(args) >= 2 && args[0] == "-schema" {
		schemaPath = args[1]
		args = args[2:]
	}
	if len(args) != 1 {
		usage()
	}
	sch, err := loadSchema(schemaPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixtrace:", err)
		os.Exit(2)
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixtrace:", err)
		os.Exit(2)
	}
	defer f.Close()

	const maxErrs = 20
	var (
		nerrs, events int
		kinds         = map[string]int{}
		lastSeq       = int64(-1)
		roots         = map[string]bool{}
	)
	report := func(line int, msg string) {
		nerrs++
		if nerrs <= maxErrs {
			fmt.Fprintf(os.Stderr, "%s:%d: %s\n", args[0], line, msg)
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		events++
		var obj map[string]any
		if err := json.Unmarshal([]byte(text), &obj); err != nil {
			report(line, "bad JSON: "+err.Error())
			continue
		}
		for _, msg := range sch.check(obj) {
			report(line, msg)
		}
		// Structural invariants the schema cannot express.
		if seq, ok := obj["seq"].(float64); ok {
			if int64(seq) <= lastSeq {
				report(line, fmt.Sprintf("seq %d not strictly increasing (previous %d)", int64(seq), lastSeq))
			}
			lastSeq = int64(seq)
		}
		path, _ := obj["path"].(string)
		parent, hasParent := obj["parent"].(string)
		if hasParent && !strings.HasPrefix(path, parent+".") {
			report(line, fmt.Sprintf("parent %q is not a strict prefix of path %q", parent, path))
		}
		if kind, ok := obj["kind"].(string); ok {
			kinds[kind]++
			if kind == obs.KindRoot && hasParent {
				report(line, "root event has a parent")
			}
			if kind == obs.KindRoot {
				roots[path] = true
			}
			// Merge, summary, and shard events happen on a live path:
			// their path IDs must extend a root already declared in the
			// trace.
			if kind == obs.KindMerge || kind == obs.KindSummary || kind == obs.KindShard {
				root, _, _ := strings.Cut(path, ".")
				if !roots[root] {
					report(line, fmt.Sprintf("%s event path %q is not under a live root", kind, path))
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "mixtrace:", err)
		os.Exit(2)
	}
	if nerrs > 0 {
		if nerrs > maxErrs {
			fmt.Fprintf(os.Stderr, "... and %d more errors\n", nerrs-maxErrs)
		}
		fmt.Fprintf(os.Stderr, "invalid: %d events, %d errors\n", events, nerrs)
		os.Exit(1)
	}
	fmt.Printf("valid: %d events, %d roots\n", events, kinds[obs.KindRoot])
}

func runChrome(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixtrace:", err)
		os.Exit(2)
	}
	defer f.Close()
	var events []obs.Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			fmt.Fprintf(os.Stderr, "mixtrace: %s:%d: %v\n", args[0], line, err)
			os.Exit(1)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "mixtrace:", err)
		os.Exit(2)
	}
	out := bufio.NewWriter(os.Stdout)
	if err := obs.WriteChrome(out, events); err != nil {
		fmt.Fprintln(os.Stderr, "mixtrace:", err)
		os.Exit(2)
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "mixtrace:", err)
		os.Exit(2)
	}
}
