// mixload drives a running mixd with a mixed corpus (core-language
// ladders, synthetic vsftpd MicroC, and cgen-generated null-idiom
// programs) at configurable concurrency, and reports serving latency.
//
//	mixload -addr http://localhost:7090 [-clients n] [-requests n]
//	        [-benches a,b,c] [-out BENCH_serve.json] [-scrape]
//	mixload -addr ... -smoke [-expect-429]
//	mixload -addr ... -slow
//	mixload -addr ... -warm-smoke prime|verify [-warm-out f]
//
// Bench mode measures every bench twice: cold (POST /flush before
// each request, so both the solver cache and the verdict cache start
// empty every time) and warm (one untimed priming pass, then the
// timed measurement against fully warm caches). Rows carry p50/p99
// for both phases, warm throughput, and the warm cache hit rate, in
// the standard {"schema_version", "cpus", "gomaxprocs", "rows"}
// envelope. Requests answered 429 are retried after the advertised
// Retry-After delay (jittered, capped at 2s) rather than failing the
// run — admission-control pushback is the daemon working as designed.
//
// With -scrape, every bench runs as its own tenant ("load-<bench>")
// and the daemon's Prometheus exposition is scraped between the cold
// and warm phases: the run fails unless the tenant's RED counters
// (requests, errors, latency observations) advance with each phase
// and end consistent — load generation doubles as a monitoring probe.
//
// With MIXBENCH_ENFORCE=1 the run exits 1 unless the ladder-10 row
// shows warm p50 at least 2x better than cold p50 — the serving
// layer's reason to exist, enforced the same way mixbench gates its
// claims.
//
// Smoke mode (-smoke) probes the serving contract quickly: a basic
// request on each endpoint, a deadline-expiry request that must come
// back as a degraded 200 (never an error), and — with -expect-429,
// against a rate-limited daemon — a burst that must see 429 with
// Retry-After. Slow mode (-slow) issues one long-running request and
// exits 0 iff it completes undegraded; CI points SIGTERM at mixd
// while one is in flight to prove drain drops nothing.
//
// Warm-start smoke mode (-warm-smoke) proves the persistent cache
// tier end to end against a daemon started with -cache-dir:
// "prime" sends a summaries-enabled MicroC analysis, checks the
// daemon computed function summaries, and records the verdict in
// -warm-out; "verify" — run against a *restarted* daemon on the same
// cache directory — sends the identical request and exits 0 only if
// the verdict matches the recorded one and the daemon's /metrics show
// the summaries came from disk with zero recomputed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mix/internal/cgen"
	"mix/internal/cliflags"
	"mix/internal/corpus"
	"mix/internal/obs"
)

// request mirrors the serve.Request JSON shape (mixload talks to the
// daemon over the wire like any other client — no shared state).
type request struct {
	cliflags.Analysis
	Source string `json:"source"`
	Tenant string `json:"tenant,omitempty"`
}

// response mirrors the fields of serve.Response that mixload reads.
type response struct {
	Kind   string `json:"kind"`
	Cached bool   `json:"cached"`
	Check  *struct {
		Type     string `json:"type"`
		Degraded bool   `json:"degraded"`
		Fault    string `json:"fault"`
		Paths    int    `json:"paths"`
	} `json:"check"`
	Analyze *struct {
		Warnings []string `json:"warnings"`
		Degraded bool     `json:"degraded"`
		Fault    string   `json:"fault"`
	} `json:"analyze"`
	Retryable bool  `json:"retryable"`
	LatencyNS int64 `json:"latency_ns"`
}

// item is one (endpoint, request) pair of a bench's corpus.
type item struct {
	path string
	req  request
}

// bench is one BENCH_serve.json row's workload: a named corpus slice.
type bench struct {
	name  string
	items []item
}

// row is one emitted BENCH_serve.json row.
type row struct {
	Bench             string  `json:"bench"`
	Clients           int     `json:"clients"`
	Requests          int     `json:"requests"`
	ColdP50NS         int64   `json:"cold_p50_ns"`
	ColdP99NS         int64   `json:"cold_p99_ns"`
	WarmP50NS         int64   `json:"warm_p50_ns"`
	WarmP99NS         int64   `json:"warm_p99_ns"`
	WarmThroughputRPS float64 `json:"warm_throughput_rps"`
	WarmHitRate       float64 `json:"warm_hit_rate"`
	SpeedupP50        float64 `json:"speedup_p50"`
}

type envelope struct {
	SchemaVersion int   `json:"schema_version"`
	CPUs          int   `json:"cpus"`
	GoMaxProcs    int   `json:"gomaxprocs"`
	Rows          []row `json:"rows"`
}

func ladderItem(n int, merge string) item {
	src, envPairs := corpus.Ladder(n)
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	var r request
	r.Source = src
	r.Symbolic = true
	r.Env = env
	r.Workers = 2
	r.Merge = merge
	return item{path: "/check", req: r}
}

func microcItem(source, entry string) item {
	var r request
	r.Source = source
	r.Entry = entry
	r.Workers = 2
	r.Merge = "joins"
	r.MergeCap = 8
	return item{path: "/analyze", req: r}
}

// benches is the corpus mix. ladder-10 is the gated row: merge off, so
// the cold run really explores 2^10 paths and warmth has something to
// beat.
func benches() []bench {
	var cgenItems []item
	gen := cgen.New(20100605, cgen.DefaultConfig())
	for i := 0; i < 4; i++ {
		cgenItems = append(cgenItems, microcItem(gen.Program(), "main"))
	}
	return []bench{
		{name: "ladder-10", items: []item{ladderItem(10, "off")}},
		{name: "vsftpd-mini", items: []item{microcItem(corpus.VsftpdMini.Source, corpus.VsftpdMini.Entry)}},
		{name: "vsftpd-12x3", items: []item{microcItem(corpus.SyntheticVsftpd(12, 3), "main")}},
		{name: "cgen-4", items: cgenItems},
	}
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:7090", "mixd base URL")
		clients   = flag.Int("clients", 4, "concurrent clients in the warm phase")
		requests  = flag.Int("requests", 24, "measured requests per bench per phase")
		benchList = flag.String("benches", "", "comma-separated bench names (default all)")
		out       = flag.String("out", "BENCH_serve.json", "output path")
		scrape    = flag.Bool("scrape", false, "scrape /metrics?format=prometheus between bench phases and require the per-tenant RED counters to move")
		smoke     = flag.Bool("smoke", false, "run the serving-contract smoke probes and exit")
		expect429 = flag.Bool("expect-429", false, "with -smoke: require the burst probe to see 429 (daemon must be rate-limited)")
		slow      = flag.Bool("slow", false, "issue one long-running request and exit (drain smoke)")
		warmSmoke = flag.String("warm-smoke", "", `persistent-cache smoke against a -cache-dir daemon: "prime" or "verify"`)
		warmOut   = flag.String("warm-out", "warm_verdict.json", "verdict file the warm-start smoke writes (prime) and checks (verify)")
	)
	flag.Parse()

	if *smoke {
		os.Exit(runSmoke(*addr, *expect429))
	}
	if *slow {
		os.Exit(runSlow(*addr))
	}
	if *warmSmoke != "" {
		os.Exit(runWarmSmoke(*addr, *warmSmoke, *warmOut))
	}

	selected := benches()
	if *benchList != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*benchList, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var keep []bench
		for _, b := range selected {
			if want[b.name] {
				keep = append(keep, b)
			}
		}
		if len(keep) == 0 {
			fatalf("no benches match %q", *benchList)
		}
		selected = keep
	}

	var rows []row
	for _, b := range selected {
		r := runBench(*addr, b, *clients, *requests, *scrape)
		rows = append(rows, r)
		fmt.Printf("%-12s cold p50 %8s p99 %8s | warm p50 %8s p99 %8s | %6.1f req/s | hit %4.0f%% | p50 speedup %.1fx\n",
			r.Bench, time.Duration(r.ColdP50NS), time.Duration(r.ColdP99NS),
			time.Duration(r.WarmP50NS), time.Duration(r.WarmP99NS),
			r.WarmThroughputRPS, 100*r.WarmHitRate, r.SpeedupP50)
	}

	buf, err := json.MarshalIndent(envelope{
		SchemaVersion: 1,
		CPUs:          runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Rows:          rows,
	}, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, len(rows))

	if os.Getenv("MIXBENCH_ENFORCE") == "1" {
		enforced := false
		for _, r := range rows {
			if r.Bench != "ladder-10" {
				continue
			}
			enforced = true
			if r.SpeedupP50 < 2 {
				fatalf("MIXBENCH_ENFORCE: ladder-10 warm p50 speedup %.2fx < 2x (cold %v, warm %v)",
					r.SpeedupP50, time.Duration(r.ColdP50NS), time.Duration(r.WarmP50NS))
			}
			fmt.Printf("MIXBENCH_ENFORCE: ladder-10 warm p50 speedup %.1fx >= 2x: ok\n", r.SpeedupP50)
		}
		if !enforced {
			fatalf("MIXBENCH_ENFORCE: ladder-10 row missing from this run")
		}
	}
}

// runBench measures one bench cold then warm and returns its row.
// With scrape on, every request runs as tenant "load-<bench>" and the
// daemon's Prometheus exposition is scraped between phases: the
// tenant's RED counters must advance with the cold phase, advance
// again with the warm phase, and end consistent (latency observations
// = requests, zero errors) — a load run that can't see itself in the
// scrape is a monitoring outage, so it fails.
func runBench(addr string, b bench, clients, requests int, scrape bool) row {
	tenant := ""
	if scrape {
		tenant = "load-" + b.name
		for i := range b.items {
			b.items[i].req.Tenant = tenant
		}
	}
	// Cold: flush both server caches before every request, serially —
	// interleaved flushes from concurrent clients would make "cold"
	// mean "partially warm".
	var cold []time.Duration
	for i := 0; i < requests; i++ {
		if err := flush(addr); err != nil {
			fatalf("%s: flush: %v", b.name, err)
		}
		it := b.items[i%len(b.items)]
		t0 := time.Now()
		resp, err := do(addr, it)
		if err != nil {
			fatalf("%s: cold request: %v", b.name, err)
		}
		cold = append(cold, time.Since(t0))
		if resp.Cached {
			fatalf("%s: cold request answered from cache after flush", b.name)
		}
	}

	var afterCold tenantRED
	if scrape {
		afterCold = scrapeTenant(addr, tenant)
		if afterCold.requests < int64(requests) {
			fatalf("%s: scrape after cold phase: tenant %s requests = %d, want >= %d",
				b.name, tenant, afterCold.requests, requests)
		}
	}

	// Warm: prime every distinct item once (untimed), then measure at
	// the requested concurrency against stable caches.
	for _, it := range b.items {
		if _, err := do(addr, it); err != nil {
			fatalf("%s: priming: %v", b.name, err)
		}
	}
	var (
		mu     sync.Mutex
		warm   []time.Duration
		hits   int
		next   int
		wg     sync.WaitGroup
		failed error
	)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if failed != nil || next >= requests {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				it := b.items[i%len(b.items)]
				s := time.Now()
				resp, err := do(addr, it)
				d := time.Since(s)
				mu.Lock()
				if err != nil && failed == nil {
					failed = err
				} else {
					warm = append(warm, d)
					if resp.Cached {
						hits++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if failed != nil {
		fatalf("%s: warm request: %v", b.name, failed)
	}

	if scrape {
		afterWarm := scrapeTenant(addr, tenant)
		total := int64(2*requests + len(b.items)) // cold + priming + warm
		if afterWarm.requests != total {
			fatalf("%s: scrape after warm phase: tenant %s requests = %d, want %d",
				b.name, tenant, afterWarm.requests, total)
		}
		if afterWarm.requests <= afterCold.requests {
			fatalf("%s: tenant %s RED counters did not move across the warm phase (%d -> %d)",
				b.name, tenant, afterCold.requests, afterWarm.requests)
		}
		if afterWarm.errors != 0 {
			fatalf("%s: tenant %s errors = %d on an all-success run", b.name, tenant, afterWarm.errors)
		}
		if afterWarm.latencyCount != afterWarm.requests {
			fatalf("%s: tenant %s latency observations = %d, requests = %d: RED series out of sync",
				b.name, tenant, afterWarm.latencyCount, afterWarm.requests)
		}
		fmt.Printf("%-12s scrape ok: tenant %s requests %d -> %d, errors 0, latency count %d\n",
			b.name, tenant, afterCold.requests, afterWarm.requests, afterWarm.latencyCount)
	}

	coldP50, coldP99 := percentiles(cold)
	warmP50, warmP99 := percentiles(warm)
	speedup := math.Inf(1)
	if warmP50 > 0 {
		speedup = float64(coldP50) / float64(warmP50)
	}
	return row{
		Bench:             b.name,
		Clients:           clients,
		Requests:          requests,
		ColdP50NS:         int64(coldP50),
		ColdP99NS:         int64(coldP99),
		WarmP50NS:         int64(warmP50),
		WarmP99NS:         int64(warmP99),
		WarmThroughputRPS: float64(len(warm)) / elapsed.Seconds(),
		WarmHitRate:       float64(hits) / float64(len(warm)),
		SpeedupP50:        speedup,
	}
}

// runSmoke probes the serving contract; returns the process exit code.
func runSmoke(addr string, expect429 bool) int {
	// Basic request on each endpoint. Each probe runs as its own
	// tenant so the smoke also works against a rate-limited daemon —
	// per-tenant fairness is exactly what keeps them independent.
	core := ladderItem(4, "joins")
	core.req.Tenant = "smoke-check"
	if resp, err := do(addr, core); err != nil || resp.Check == nil || resp.Check.Degraded {
		fmt.Fprintf(os.Stderr, "mixload: smoke /check failed: %v %+v\n", err, resp)
		return 1
	}
	mc := microcItem(corpus.VsftpdMini.Source, corpus.VsftpdMini.Entry)
	mc.req.Tenant = "smoke-analyze"
	if resp, err := do(addr, mc); err != nil || resp.Analyze == nil || resp.Analyze.Degraded {
		fmt.Fprintf(os.Stderr, "mixload: smoke /analyze failed: %v %+v\n", err, resp)
		return 1
	}
	fmt.Println("smoke: basic /check and /analyze ok")

	// Deadline expiry must be a degraded 200 with a retryable hint —
	// never a transport error.
	heavy := ladderItem(14, "off")
	heavy.req.Tenant = "smoke-deadline"
	heavy.req.Deadline = cliflags.Duration(2 * time.Millisecond)
	resp, err := do(addr, heavy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mixload: smoke deadline probe errored (want degraded 200): %v\n", err)
		return 1
	}
	if resp.Check == nil || !resp.Check.Degraded || !resp.Retryable {
		fmt.Fprintf(os.Stderr, "mixload: smoke deadline probe not degraded+retryable: %+v\n", resp)
		return 1
	}
	fmt.Printf("smoke: deadline expiry degraded 200 (fault %q, retryable) ok\n", resp.Check.Fault)

	// Burst probe: only meaningful against a rate-limited daemon.
	if expect429 {
		saw429 := false
		for i := 0; i < 10; i++ {
			it := ladderItem(2, "joins")
			it.req.Tenant = "smoke-burst"
			code, retryAfter, err := doRaw(addr, it)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mixload: smoke burst: %v\n", err)
				return 1
			}
			if code == http.StatusTooManyRequests {
				if retryAfter == "" {
					fmt.Fprintln(os.Stderr, "mixload: smoke burst: 429 without Retry-After")
					return 1
				}
				saw429 = true
				break
			}
		}
		if !saw429 {
			fmt.Fprintln(os.Stderr, "mixload: smoke burst: no 429 in 10 requests (daemon not rate-limited?)")
			return 1
		}
		fmt.Println("smoke: burst saw 429 with Retry-After ok")
	}
	return 0
}

// runWarmSmoke is the daemon-restart smoke (CI's warm-start dance):
// prime records a summaries-enabled analysis verdict and requires the
// daemon to have computed summaries; verify, against a restarted
// daemon sharing the cache directory, requires the identical verdict
// answered entirely from the disk tier.
func runWarmSmoke(addr, mode, outPath string) int {
	it := microcItem(corpus.SharedHelpers(2, 3), "entry")
	it.req.Summaries = true
	it.req.Tenant = "warm-smoke"

	resp, err := do(addr, it)
	if err != nil || resp.Analyze == nil || resp.Analyze.Degraded {
		fmt.Fprintf(os.Stderr, "mixload: warm-smoke %s request failed: %v %+v\n", mode, err, resp)
		return 1
	}
	if resp.Cached {
		fmt.Fprintf(os.Stderr, "mixload: warm-smoke %s answered from the verdict cache; the probe proves nothing\n", mode)
		return 1
	}
	verdict := fmt.Sprintf("warnings=%q", resp.Analyze.Warnings)

	computed, diskHits, err := summaryMetrics(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mixload: warm-smoke %s: /metrics: %v\n", mode, err)
		return 1
	}

	switch mode {
	case "prime":
		if computed == 0 {
			fmt.Fprintln(os.Stderr, "mixload: warm-smoke prime: daemon computed no summaries (started without -cache-dir, or summaries ignored?)")
			return 1
		}
		if err := os.WriteFile(outPath, []byte(verdict+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mixload: warm-smoke prime: %v\n", err)
			return 1
		}
		fmt.Printf("warm-smoke prime ok: %d summaries computed, verdict recorded in %s\n", computed, outPath)
		return 0
	case "verify":
		want, err := os.ReadFile(outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mixload: warm-smoke verify: %v (run prime first)\n", err)
			return 1
		}
		if got := verdict + "\n"; got != string(want) {
			fmt.Fprintf(os.Stderr, "mixload: warm-smoke verify: verdict drift across restart:\n got %s want %s", got, want)
			return 1
		}
		if computed != 0 || diskHits == 0 {
			fmt.Fprintf(os.Stderr, "mixload: warm-smoke verify: summaries not served from disk (computed=%d disk_hits=%d)\n", computed, diskHits)
			return 1
		}
		fmt.Printf("warm-smoke verify ok: identical verdict, %d summaries from disk, zero recomputed\n", diskHits)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "mixload: -warm-smoke must be \"prime\" or \"verify\", got %q\n", mode)
		return 2
	}
}

// summaryMetrics scrapes the daemon's summary-store counters.
func summaryMetrics(addr string) (computed, diskHits int64, err error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var snap struct {
		Metrics []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, 0, err
	}
	for _, m := range snap.Metrics {
		switch m.Name {
		case "serve.summaries.computed":
			computed = m.Value
		case "serve.summaries.disk_hits":
			diskHits = m.Value
		}
	}
	return computed, diskHits, nil
}

// tenantRED is one tenant's slice of a Prometheus scrape: the request
// and error counters plus the latency histogram's observation count.
type tenantRED struct {
	requests     int64
	errors       int64
	latencyCount int64
}

// promTenantName maps a tenant to its Prometheus series stem, the
// client-side mirror of the daemon's flattening (dots become one path
// component) followed by exposition-name sanitization (anything
// outside [a-zA-Z0-9_] becomes '_').
func promTenantName(tenant string) string {
	var b strings.Builder
	for _, c := range tenant {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return "serve_tenant_" + b.String()
}

// scrapeTenant fetches /metrics?format=prometheus and extracts the
// tenant's RED series. Any transport or format failure is fatal: a
// load test whose monitoring is down has already failed.
func scrapeTenant(addr, tenant string) tenantRED {
	resp, err := http.Get(addr + "/metrics?format=prometheus")
	if err != nil {
		fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		fatalf("scrape: content type %q, want %q", ct, obs.PromContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		fatalf("scrape: %v", err)
	}
	stem := promTenantName(tenant)
	var red tenantRED
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.ContainsRune(fields[0], '{') {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			fatalf("scrape: bad sample %q: %v", line, err)
		}
		switch fields[0] {
		case stem + "_requests":
			red.requests = int64(v)
		case stem + "_errors":
			red.errors = int64(v)
		case stem + "_latency_ns_count":
			red.latencyCount = int64(v)
		}
	}
	return red
}

// runSlow issues one long-running request (drain smoke payload).
func runSlow(addr string) int {
	it := ladderItem(14, "off") // ~1s of path exploration
	it.req.Deadline = cliflags.Duration(2 * time.Minute)
	resp, err := do(addr, it)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mixload: slow request failed: %v\n", err)
		return 1
	}
	if resp.Check == nil || resp.Check.Degraded {
		fmt.Fprintf(os.Stderr, "mixload: slow request degraded or empty: %+v\n", resp)
		return 1
	}
	fmt.Printf("slow request completed undegraded (%d paths, %v)\n",
		resp.Check.Paths, time.Duration(resp.LatencyNS))
	return 0
}

func flush(addr string) error {
	resp, err := http.Post(addr+"/flush", "application/json", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/flush: status %d", resp.StatusCode)
	}
	return nil
}

// Admission-control pushback: a 429 names its price in Retry-After,
// and do pays it rather than failing the run — up to retryAfterTries
// re-posts, each waiting the advertised delay jittered 0.5-1.5x and
// capped at retryAfterCap so a daemon advertising an hour cannot hang
// a bench.
const (
	retryAfterTries = 5
	retryAfterCap   = 2 * time.Second
)

// do posts one request and decodes the 200 response, honoring 429
// Retry-After pushback with capped jittered backoff.
func do(addr string, it item) (*response, error) {
	body, err := json.Marshal(it.req)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(addr+it.path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < retryAfterTries {
			ra := resp.Header.Get("Retry-After")
			resp.Body.Close()
			time.Sleep(retryDelay(ra))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return nil, fmt.Errorf("%s: status %d: %s", it.path, resp.StatusCode, strings.TrimSpace(buf.String()))
		}
		var r response
		err = json.NewDecoder(resp.Body).Decode(&r)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		return &r, nil
	}
}

// retryDelay converts a Retry-After header (delta-seconds form) into
// the actual wait: jittered so a herd of throttled clients spreads
// out, capped so a hostile or buggy advertisement cannot stall the
// client. A missing or unparsable header falls back to 100ms.
func retryDelay(header string) time.Duration {
	d := 100 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	if d > retryAfterCap {
		d = retryAfterCap
	}
	return d
}

// doRaw posts one request and returns only the status code and
// Retry-After header (for probes that expect rejections).
func doRaw(addr string, it item) (int, string, error) {
	body, err := json.Marshal(it.req)
	if err != nil {
		return 0, "", err
	}
	resp, err := http.Post(addr+it.path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

func percentiles(ds []time.Duration) (p50, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return idx(0.50), idx(0.99)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mixload: "+format+"\n", args...)
	os.Exit(1)
}
