// Command mixshard is the distributed-exploration binary (DESIGN.md
// section 15): invoked normally it coordinates a sharded
// core-language check, splitting the path tree into 2^depth subtree
// work items dispatched to worker processes; re-executed with the
// MIX_SHARD_WORKER guard (which the coordinator does itself) it
// serves work items on stdin/stdout instead.
//
// Usage:
//
//	mixshard [-shards n] [-shard-depth d] [-shard-attempts n]
//	         [-shard-heartbeat d] [-shard-timeout d] [-shard-seed n]
//	         [-chaos item:attempt:action[:stallms],...]
//	         [analysis flags] [-stats] [-metrics] [-trace file] [-trace-det]
//	         file.mix
//
// mix -shards and mixy -shards embed the same coordinator; this
// binary exists for operating sharded runs directly and for chaos
// testing them. -chaos makes the worker serving a given (item,
// attempt) misbehave: "kill" SIGKILLs itself mid-item, "stall" goes
// silent past the heartbeat deadline, "garble" corrupts the protocol
// stream. Because directives are keyed by item and attempt — not by
// worker or wall clock — a chaos run is reproducible at any shard
// count, which is what the byte-identical-degradation tests rely on.
//
// A work item that survives its retry budget (or is quarantined after
// repeatedly killing workers) degrades the verdict to explicit
// imprecision: mixshard prints the fault class and exits 0, exactly
// like a deadline-degraded mix run — lost coverage is an "unknown",
// not a rejection.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mix"
	"mix/internal/cliflags"
	"mix/internal/obs"
	"mix/internal/shard"
)

func main() {
	shard.WorkerMain() // worker re-execution never reaches the flags
	var a cliflags.Analysis
	var o cliflags.Obs
	var sh cliflags.Sharding
	a.Register(flag.CommandLine, cliflags.Core)
	o.Register(flag.CommandLine)
	sh.Register(flag.CommandLine)
	chaosSpec := flag.String("chaos", "", "comma-separated worker misbehavior directives, each item:attempt:action[:stallms] with action kill|stall|garble")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mixshard [flags] file.mix")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := cliflags.ReadInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixshard:", err)
		os.Exit(2)
	}
	chaos, err := parseChaos(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixshard:", err)
		os.Exit(2)
	}

	sopts := shard.FromFlags(sh)
	sopts.Chaos = chaos
	if o.Stats || o.MetricsJSON {
		sopts.Metrics = obs.NewRegistry()
	}
	if o.TraceFile != "" {
		sopts.Tracer = obs.NewTracer(obs.TraceOptions{Deterministic: o.TraceDet})
	}

	human := os.Stdout
	if o.MetricsJSON {
		human = os.Stderr
	}

	res, err := shard.ExploreCore(src, a, sopts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if sopts.Tracer != nil {
		if err := cliflags.WriteTrace(o.TraceFile, sopts.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "mixshard: trace:", err)
			os.Exit(2)
		}
	}
	if o.MetricsJSON {
		if err := sopts.Metrics.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mixshard: metrics:", err)
			os.Exit(2)
		}
	} else if o.Stats {
		if err := sopts.Metrics.WriteStats(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mixshard: stats:", err)
			os.Exit(2)
		}
	}
	printVerdict(human, res)
}

// printVerdict mirrors cmd/mix's verdict block, so sharded and
// unsharded runs are scriptable the same way.
func printVerdict(human *os.File, res mix.Result) {
	for _, r := range res.Reports {
		fmt.Fprintln(human, r)
	}
	if res.Degraded {
		fmt.Fprintf(human, "imprecision: analysis degraded (%s): %s\n", res.Fault, res.FaultDetail)
		fmt.Fprintln(human, "type: unknown (exploration truncated; cannot certify)")
		return
	}
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		os.Exit(1)
	}
	fmt.Fprintln(human, "type:", res.Type)
}

// parseChaos decodes -chaos directives: "0:1:kill,2:2:stall:800".
func parseChaos(spec string) ([]shard.ChaosDirective, error) {
	if spec == "" {
		return nil, nil
	}
	var out []shard.ChaosDirective
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("bad -chaos directive %q (want item:attempt:action[:stallms])", part)
		}
		item, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad -chaos item in %q: %v", part, err)
		}
		attempt, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad -chaos attempt in %q: %v", part, err)
		}
		d := shard.ChaosDirective{Item: item, Attempt: attempt, Action: fields[2]}
		switch d.Action {
		case "kill", "stall", "garble":
		default:
			return nil, fmt.Errorf("bad -chaos action %q (want kill, stall, or garble)", d.Action)
		}
		if len(fields) == 4 {
			d.StallMS, err = strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("bad -chaos stall in %q: %v", part, err)
			}
		}
		out = append(out, d)
	}
	return out, nil
}
