// Command mix checks a core-language program (.mix file) with the
// mixed type checking / symbolic execution analysis.
//
// Usage:
//
//	mix [-symbolic] [-unsound] [-defer] [-merge mode]
//	    [-env name:type,...]
//	    [-workers n] [-max-paths n] [-memo=false] [-cache-dir dir]
//	    [-deadline d] [-solver-timeout d]
//	    [-stats] [-metrics] [-trace file] [-trace-det] [-pprof addr]
//	    file.mix
//
// The program is read from the file (or stdin when the argument is
// "-"). Free variables are declared with -env, e.g.
// -env b:bool,x:int. Exit status 1 means the program was rejected.
//
// The analysis flags are shared with mixy and with the mixd request
// schema (see internal/cliflags): -workers n runs the parallel
// path-exploration engine with n workers (0, the default, keeps
// exploration sequential); -max-paths bounds the engine's total path
// budget; -memo=false disables the engine's solver memo table. With -v
// the engine's fork/steal/memo statistics are printed alongside path
// and query counts. -cache-dir persists the engine's definite solver
// verdicts and counterexample models under a directory, so a repeat
// run answers previously decided queries from disk.
//
// -merge selects veritesting-style state merging at conditional join
// points (DESIGN.md section 12): "joins" (the default) folds the two
// arms of a forked conditional back into one guarded state when both
// reach the join alive, "aggressive" additionally folds multi-path
// arms, and "off" restores pure forking (2^k paths on k sequential
// diamonds).
//
// -deadline bounds the whole check's wall-clock time and
// -solver-timeout bounds each solver query. A check cut short by
// either (or by -max-paths) degrades instead of failing: it prints an
// imprecision report naming the fault class and exits 0, because a
// truncated exploration certifies nothing and refutes nothing.
//
// -shards n distributes exploration across n worker processes
// (DESIGN.md section 15): the path tree splits at its first
// -shard-depth fork decisions into 2^depth subtree work items, workers
// heartbeat while exploring, and a worker that crashes or stalls is
// killed, respawned, and its item retried (-shard-attempts, with
// jittered exponential backoff) before the subtree is declared lost
// and the verdict degrades to explicit imprecision. The merged output
// is byte-identical at any shard count.
//
// Observability (see README "Stats and metrics schema" and DESIGN.md
// section 11): -stats prints the run's metrics registry as sorted
// "name value" lines — the same schema mixy -stats uses; -metrics
// prints the registry as a JSON snapshot instead and moves the
// human-readable verdict to stderr, leaving stdout pure JSON for
// pipelines. -trace file writes
// a JSONL event trace of the exploration (validate or convert it for
// Perfetto with cmd/mixtrace); -trace-det makes the trace
// deterministic — wall-clock-free and byte-comparable across runs and
// worker counts. -pprof addr serves net/http/pprof for the duration
// of the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"mix"
	"mix/internal/cliflags"
	"mix/internal/obs"
	"mix/internal/profiling"
	"mix/internal/shard"
)

func main() {
	shard.WorkerMain() // no-op unless re-executed as a shard worker
	var a cliflags.Analysis
	var o cliflags.Obs
	var sh cliflags.Sharding
	a.Register(flag.CommandLine, cliflags.Core)
	o.Register(flag.CommandLine)
	sh.Register(flag.CommandLine)
	verbose := flag.Bool("v", false, "print discarded reports and statistics")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mix [flags] file.mix")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := cliflags.ReadInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mix:", err)
		os.Exit(2)
	}

	if o.PprofAddr != "" {
		addr, err := profiling.Serve(o.PprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mix: pprof:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mix: pprof serving on http://%s/debug/pprof/\n", addr)
	}

	cfg := a.MixConfig()
	if cfg.Env == nil {
		cfg.Env = map[string]string{}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err) // Validate errors carry the package prefix
		os.Exit(2)
	}
	if o.Stats || o.MetricsJSON {
		cfg.Metrics = obs.NewRegistry()
	}
	if o.TraceFile != "" {
		cfg.Tracer = obs.NewTracer(obs.TraceOptions{Deterministic: o.TraceDet})
	}

	// With -metrics, stdout carries exactly one JSON document; the
	// human-readable verdict moves to stderr.
	human := os.Stdout
	if o.MetricsJSON {
		human = os.Stderr
	}

	var res mix.Result
	if sh.Shards > 0 {
		sopts := shard.FromFlags(sh)
		sopts.Tracer, sopts.Metrics = cfg.Tracer, cfg.Metrics
		res, err = shard.ExploreCore(src, a, sopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		res = mix.Check(src, cfg)
	}
	if cfg.Tracer != nil {
		if err := cliflags.WriteTrace(o.TraceFile, cfg.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "mix: trace:", err)
			os.Exit(2)
		}
	}
	if o.MetricsJSON {
		if err := cfg.Metrics.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mix: metrics:", err)
			os.Exit(2)
		}
	} else if o.Stats {
		if err := cfg.Metrics.WriteStats(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mix: stats:", err)
			os.Exit(2)
		}
	}
	if *verbose {
		for _, r := range res.Reports {
			fmt.Fprintln(human, r)
		}
		fmt.Fprintf(human, "paths=%d solver-queries=%d\n", res.Paths, res.SolverQueries)
		if cfg.Workers > 0 || cfg.MaxPaths > 0 || cfg.Deadline > 0 || cfg.SolverTimeout > 0 {
			fmt.Fprintf(human, "engine: forks=%d steals=%d memo-hits=%d memo-misses=%d solver-time=%v\n",
				res.Forks, res.Steals, res.MemoHits, res.MemoMisses, res.SolverTime)
			fmt.Fprintf(human, "pipeline: quick-decided=%d slices=%d max-slice=%d cex-hits=%d\n",
				res.QuickDecided, res.Slices, res.MaxSlice, res.CexHits)
			fmt.Fprintf(human, "faults: timeouts=%d panics-recovered=%d paths-truncated=%d\n",
				res.Timeouts, res.PanicsRecovered, res.PathsTruncated)
		}
	}
	if res.Degraded {
		// A degraded check is unknown, not rejected: report the
		// imprecision and exit 0 so batch drivers keep going.
		fmt.Fprintf(human, "imprecision: analysis degraded (%s): %s\n", res.Fault, res.FaultDetail)
		fmt.Fprintln(human, "type: unknown (exploration truncated; cannot certify)")
		return
	}
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		os.Exit(1)
	}
	fmt.Fprintln(human, "type:", res.Type)
}
