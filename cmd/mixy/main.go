// Command mixy runs the MIXY null-pointer analysis on a MicroC file:
// flow-insensitive null/nonnull qualifier inference mixed with
// symbolic execution at MIX(typed)/MIX(symbolic) function boundaries.
//
// Usage:
//
//	mixy [-pure] [-entry main] [-nocache] [-merge mode] [-merge-cap n]
//	     [-summaries] [-summary-cap n] [-cache-dir dir]
//	     [-workers n] [-memo=false]
//	     [-deadline d] [-solver-timeout d]
//	     [-stats] [-metrics] [-trace file] [-trace-det] [-pprof addr]
//	     file.mc
//
// -pure ignores the MIX annotations, giving the paper's baseline of
// pure type qualifier inference. Exit status 1 means warnings were
// reported.
//
// The analysis flags are shared with mix and with the mixd request
// schema (see internal/cliflags): -workers n routes solver queries
// through the engine's memoizing pool and evaluates each block's
// translation queries on n workers (0, the default, keeps the analysis
// engine-free); -memo=false disables the memo table.
//
// -merge selects veritesting-style state merging in the per-block
// symbolic executor (DESIGN.md section 12): "joins" (the default)
// folds the two arms of a forked conditional into one state with
// guarded ite cells when both reach the join alive and at most
// -merge-cap cells diverge, "aggressive" also folds multi-path arms
// and loop frontiers with no cap, and "off" restores pure forking.
//
// -summaries analyzes each eligible (int-only, non-MIX) function once
// into guarded summary arms and instantiates those at call sites
// instead of re-inlining the body (DESIGN.md section 14); -summary-cap
// bounds the arms per summary (over it, the call inlines as before).
// -cache-dir persists the summaries — and the engine's solver memo and
// counterexample models — under a directory, so repeat runs over
// unchanged functions skip their symbolic exploration entirely.
//
// -deadline bounds the whole analysis' wall-clock time and
// -solver-timeout bounds each solver query. A run cut short by either
// degrades soundly: the fixed point stops and the frontier's
// qualifiers are pessimized to null, so warnings over-approximate
// instead of silently missing.
//
// -shards n supervises the analysis in a worker process (DESIGN.md
// section 15). MIXY's qualifier fixpoint flows facts across the whole
// program, so the analysis is not partitioned; sharding buys fault
// tolerance: a worker that crashes or stalls is killed and the whole
// analysis failed over to a fresh worker (-shard-attempts times, with
// jittered exponential backoff) before the run is declared lost and
// degrades to explicit imprecision.
//
// Observability (see README "Stats and metrics schema" and DESIGN.md
// section 11): -stats prints the run's metrics registry as sorted
// "name value" lines — the same schema mix -stats uses; -metrics
// prints the registry as a JSON snapshot instead and moves warnings
// to stderr, leaving stdout pure JSON for pipelines. -trace file
// writes
// a JSONL event trace of the fixpoint loop and the symbolic
// executions inside it (validate or convert it for Perfetto with
// cmd/mixtrace); -trace-det makes the trace deterministic. -pprof
// addr serves net/http/pprof for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"mix"
	"mix/internal/cliflags"
	"mix/internal/obs"
	"mix/internal/profiling"
	"mix/internal/shard"
)

func main() {
	shard.WorkerMain() // no-op unless re-executed as a shard worker
	var a cliflags.Analysis
	var o cliflags.Obs
	var sh cliflags.Sharding
	a.Register(flag.CommandLine, cliflags.MicroC)
	o.Register(flag.CommandLine)
	sh.Register(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mixy [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := cliflags.ReadInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixy:", err)
		os.Exit(2)
	}

	if o.PprofAddr != "" {
		addr, err := profiling.Serve(o.PprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mixy: pprof:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mixy: pprof serving on http://%s/debug/pprof/\n", addr)
	}

	cfg := a.CConfig()
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err) // Validate errors carry the package prefix
		os.Exit(2)
	}
	if o.Stats || o.MetricsJSON {
		cfg.Metrics = obs.NewRegistry()
	}
	if o.TraceFile != "" {
		cfg.Tracer = obs.NewTracer(obs.TraceOptions{Deterministic: o.TraceDet})
	}

	var res mix.CResult
	if sh.Shards > 0 {
		sopts := shard.FromFlags(sh)
		sopts.Tracer, sopts.Metrics = cfg.Tracer, cfg.Metrics
		res, err = shard.ExploreMicroC(src, a, sopts)
	} else {
		res, err = mix.AnalyzeC(src, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixy:", err)
		os.Exit(2)
	}
	if cfg.Tracer != nil {
		if err := cliflags.WriteTrace(o.TraceFile, cfg.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "mixy: trace:", err)
			os.Exit(2)
		}
	}
	// With -metrics, stdout carries exactly one JSON document; the
	// human-readable report moves to stderr.
	human := os.Stdout
	if o.MetricsJSON {
		human = os.Stderr
	}
	if res.Degraded {
		fmt.Fprintf(human, "imprecision: analysis degraded (%s): %s\n", res.Fault, res.FaultDetail)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(human, "warning:", w)
	}
	if o.MetricsJSON {
		if err := cfg.Metrics.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mixy: metrics:", err)
			os.Exit(2)
		}
	} else if o.Stats {
		if err := cfg.Metrics.WriteStats(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mixy: stats:", err)
			os.Exit(2)
		}
	}
	if len(res.Warnings) > 0 {
		os.Exit(1)
	}
	fmt.Fprintln(human, "no warnings")
}
