// Command mixy runs the MIXY null-pointer analysis on a MicroC file:
// flow-insensitive null/nonnull qualifier inference mixed with
// symbolic execution at MIX(typed)/MIX(symbolic) function boundaries.
//
// Usage:
//
//	mixy [-pure] [-entry main] [-nocache] [-workers n] [-memo=false]
//	     [-deadline d] [-solver-timeout d] file.mc
//
// -pure ignores the MIX annotations, giving the paper's baseline of
// pure type qualifier inference. Exit status 1 means warnings were
// reported.
//
// -workers n routes solver queries through the engine's memoizing pool
// and evaluates each block's translation queries on n workers (0, the
// default, keeps the analysis engine-free); -memo=false disables the
// memo table. -stats then also prints memo hit/miss counts.
//
// -deadline bounds the whole analysis' wall-clock time and
// -solver-timeout bounds each solver query. A run cut short by either
// degrades soundly: the fixed point stops and the frontier's
// qualifiers are pessimized to null, so warnings over-approximate
// instead of silently missing. -stats reports the fault counters
// (timeouts, panics recovered, paths truncated).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mix"
)

func main() {
	pure := flag.Bool("pure", false, "ignore MIX annotations (pure qualifier inference)")
	entry := flag.String("entry", "main", "entry function")
	nocache := flag.Bool("nocache", false, "disable block caching")
	stats := flag.Bool("stats", false, "print analysis statistics")
	workers := flag.Int("workers", 0, "engine workers for solver queries (0 = no engine)")
	memo := flag.Bool("memo", true, "memoize solver queries (engine only)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the whole analysis (0 = none)")
	solverTimeout := flag.Duration("solver-timeout", 0, "per-query solver timeout (0 = none)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mixy [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixy:", err)
		os.Exit(2)
	}

	res, err := mix.AnalyzeC(src, mix.CConfig{
		Entry:         *entry,
		PureTypes:     *pure,
		NoCache:       *nocache,
		Workers:       *workers,
		NoMemo:        !*memo,
		Deadline:      *deadline,
		SolverTimeout: *solverTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixy:", err)
		os.Exit(2)
	}
	if res.Degraded {
		fmt.Printf("imprecision: analysis degraded (%s): %s\n", res.Fault, res.FaultDetail)
	}
	for _, w := range res.Warnings {
		fmt.Println("warning:", w)
	}
	if *stats {
		fmt.Printf("blocks=%d cache-hits=%d fixpoint-iters=%d solver-queries=%d\n",
			res.BlocksAnalyzed, res.CacheHits, res.FixpointIters, res.SolverQueries)
		fmt.Printf("memory: clones=%d shared-cells=%d writes=%d\n",
			res.MemClones, res.SharedCells, res.MemWrites)
		fmt.Printf("faults: timeouts=%d panics-recovered=%d paths-truncated=%d\n",
			res.Timeouts, res.PanicsRecovered, res.PathsTruncated)
		if *workers > 0 {
			fmt.Printf("engine: memo-hits=%d memo-misses=%d solver-time=%v\n",
				res.MemoHits, res.MemoMisses, res.SolverTime)
			fmt.Printf("pipeline: quick-decided=%d slices=%d max-slice=%d cex-hits=%d\n",
				res.QuickDecided, res.Slices, res.MaxSlice, res.CexHits)
		}
	}
	if len(res.Warnings) > 0 {
		os.Exit(1)
	}
	fmt.Println("no warnings")
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
