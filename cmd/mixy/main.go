// Command mixy runs the MIXY null-pointer analysis on a MicroC file:
// flow-insensitive null/nonnull qualifier inference mixed with
// symbolic execution at MIX(typed)/MIX(symbolic) function boundaries.
//
// Usage:
//
//	mixy [-pure] [-entry main] [-nocache] [-merge mode] [-merge-cap n]
//	     [-workers n] [-memo=false]
//	     [-deadline d] [-solver-timeout d]
//	     [-stats] [-metrics] [-trace file] [-trace-det] [-pprof addr]
//	     file.mc
//
// -pure ignores the MIX annotations, giving the paper's baseline of
// pure type qualifier inference. Exit status 1 means warnings were
// reported.
//
// -workers n routes solver queries through the engine's memoizing pool
// and evaluates each block's translation queries on n workers (0, the
// default, keeps the analysis engine-free); -memo=false disables the
// memo table.
//
// -merge selects veritesting-style state merging in the per-block
// symbolic executor (DESIGN.md section 12): "joins" (the default)
// folds the two arms of a forked conditional into one state with
// guarded ite cells when both reach the join alive and at most
// -merge-cap cells diverge, "aggressive" also folds multi-path arms
// and loop frontiers with no cap, and "off" restores pure forking.
//
// -deadline bounds the whole analysis' wall-clock time and
// -solver-timeout bounds each solver query. A run cut short by either
// degrades soundly: the fixed point stops and the frontier's
// qualifiers are pessimized to null, so warnings over-approximate
// instead of silently missing.
//
// Observability (see README "Stats and metrics schema" and DESIGN.md
// section 11): -stats prints the run's metrics registry as sorted
// "name value" lines — the same schema mix -stats uses; -metrics
// prints the registry as a JSON snapshot instead and moves warnings
// to stderr, leaving stdout pure JSON for pipelines. -trace file
// writes
// a JSONL event trace of the fixpoint loop and the symbolic
// executions inside it (validate or convert it for Perfetto with
// cmd/mixtrace); -trace-det makes the trace deterministic. -pprof
// addr serves net/http/pprof for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mix"
	"mix/internal/obs"
	"mix/internal/profiling"
)

func main() {
	pure := flag.Bool("pure", false, "ignore MIX annotations (pure qualifier inference)")
	entry := flag.String("entry", "main", "entry function")
	nocache := flag.Bool("nocache", false, "disable block caching")
	merge := flag.String("merge", "joins", "state merging at conditional joins: off, joins, or aggressive")
	mergeCap := flag.Int("merge-cap", 8, "max diverging cells per joins-mode merge")
	stats := flag.Bool("stats", false, "print run metrics as sorted 'name value' lines")
	metricsJSON := flag.Bool("metrics", false, "print run metrics as a JSON snapshot")
	workers := flag.Int("workers", 0, "engine workers for solver queries (0 = no engine)")
	memo := flag.Bool("memo", true, "memoize solver queries (engine only)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the whole analysis (0 = none)")
	solverTimeout := flag.Duration("solver-timeout", 0, "per-query solver timeout (0 = none)")
	traceFile := flag.String("trace", "", "write a JSONL event trace to this file")
	traceDet := flag.Bool("trace-det", false, "deterministic trace (wall-clock-free, byte-comparable across worker counts)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mixy [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixy:", err)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		addr, err := profiling.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mixy: pprof:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mixy: pprof serving on http://%s/debug/pprof/\n", addr)
	}

	cfg := mix.CConfig{
		Entry:         *entry,
		PureTypes:     *pure,
		NoCache:       *nocache,
		Merge:         *merge,
		MergeCap:      *mergeCap,
		Workers:       *workers,
		NoMemo:        !*memo,
		Deadline:      *deadline,
		SolverTimeout: *solverTimeout,
	}
	if *stats || *metricsJSON {
		cfg.Metrics = obs.NewRegistry()
	}
	if *traceFile != "" {
		cfg.Tracer = obs.NewTracer(obs.TraceOptions{Deterministic: *traceDet})
	}

	res, err := mix.AnalyzeC(src, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixy:", err)
		os.Exit(2)
	}
	if cfg.Tracer != nil {
		if err := writeTrace(*traceFile, cfg.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "mixy: trace:", err)
			os.Exit(2)
		}
	}
	// With -metrics, stdout carries exactly one JSON document; the
	// human-readable report moves to stderr.
	human := os.Stdout
	if *metricsJSON {
		human = os.Stderr
	}
	if res.Degraded {
		fmt.Fprintf(human, "imprecision: analysis degraded (%s): %s\n", res.Fault, res.FaultDetail)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(human, "warning:", w)
	}
	if *metricsJSON {
		if err := cfg.Metrics.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mixy: metrics:", err)
			os.Exit(2)
		}
	} else if *stats {
		if err := cfg.Metrics.WriteStats(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mixy: stats:", err)
			os.Exit(2)
		}
	}
	if len(res.Warnings) > 0 {
		os.Exit(1)
	}
	fmt.Fprintln(human, "no warnings")
}

func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
