// mixd is the analysis-as-a-service daemon: a long-lived HTTP/JSON
// server over the mix.Check / mix.AnalyzeC facade (see internal/serve
// and DESIGN.md section 13).
//
//	mixd [-addr host:port] [-rate n] [-burst n] [-max-inflight n]
//	     [-default-deadline d] [-max-deadline d]
//	     [-memo-size n] [-cons-limit n] [-respcache-size n]
//	     [-cache-dir dir] [-shards n] [-shard-depth d]
//	     [-flight n] [-drain-timeout d] [-pprof addr]
//
// Endpoints: POST /check (core language), POST /analyze (MicroC),
// POST /flush (drop in-memory caches), GET /metrics (obs JSON, or
// Prometheus text format with ?format=prometheus), GET /healthz,
// GET /debug/flight (recent-request flight recorder, JSONL).
//
// With -cache-dir, solver verdicts, counterexample models, and
// function summaries persist under that directory: a restarted daemon
// answers repeat analyses from disk. The directory is server
// configuration only — requests cannot name filesystem paths.
//
// On SIGTERM/SIGINT the daemon drains: it stops admitting (503 / a
// failing /healthz, while /metrics and /debug/flight keep answering),
// waits up to -drain-timeout for in-flight requests to complete,
// writes a final metrics snapshot and the flight-recorder dump to
// stderr, and exits 0 when nothing was dropped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mix/internal/obs"
	"mix/internal/profiling"
	"mix/internal/serve"
	"mix/internal/shard"
)

func main() {
	shard.WorkerMain() // no-op unless re-executed as a shard worker
	var (
		addr            = flag.String("addr", "localhost:7090", "listen address")
		rate            = flag.Float64("rate", 0, "per-tenant admission rate in requests/sec (0 = unlimited)")
		burst           = flag.Int("burst", 0, "per-tenant token-bucket burst (0 = max(1, rate))")
		maxInflight     = flag.Int("max-inflight", 0, "in-flight analysis cap (0 = 4×GOMAXPROCS)")
		defaultDeadline = flag.Duration("default-deadline", 10*time.Second, "deadline applied to requests that carry none")
		maxDeadline     = flag.Duration("max-deadline", 60*time.Second, "upper clamp on requested deadlines")
		memoSize        = flag.Int("memo-size", 0, "solver memo capacity in entries (0 = default)")
		consLimit       = flag.Int("cons-limit", 0, "hash-cons table soft limit (0 = default)")
		respCacheSize   = flag.Int("respcache-size", 0, "verdict cache capacity in entries (0 = default)")
		cacheDir        = flag.String("cache-dir", "", "persist caches (summaries, solver memo, models) under this directory across restarts")
		shards          = flag.Int("shards", 0, "run core checks through n shard worker processes (0 = in-process)")
		shardDepth      = flag.Int("shard-depth", 0, "fork-prefix depth for sharded checks (0 = default, 2)")
		flightSize      = flag.Int("flight", 0, "flight-recorder capacity in requests (0 = 1024, -1 = off)")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests")
		pprofAddr       = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		got, err := profiling.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mixd: pprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mixd: pprof serving on http://%s/debug/pprof/\n", got)
	}

	reg := obs.NewRegistry()
	srv := serve.New(serve.Options{
		MaxConcurrent:     *maxInflight,
		RatePerSec:        *rate,
		Burst:             *burst,
		DefaultDeadline:   *defaultDeadline,
		MaxDeadline:       *maxDeadline,
		MemoSize:          *memoSize,
		ConsLimit:         *consLimit,
		ResponseCacheSize: *respCacheSize,
		CacheDir:          *cacheDir,
		Shards:            *shards,
		ShardDepth:        *shardDepth,
		FlightSize:        *flightSize,
		Registry:          reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "mixd: serving on http://%s/\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	exit := 0
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mixd:", err)
		exit = 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mixd: %v: draining (timeout %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mixd: drain incomplete:", err)
			exit = 1
		} else {
			fmt.Fprintln(os.Stderr, "mixd: drained, zero requests dropped")
		}
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "mixd: shutdown:", err)
		}
		cancel()
	}

	// Flush the final metrics snapshot and the flight recorder so a
	// scrape-less deployment still gets its lifetime counters and the
	// last requests the daemon served before going down.
	if err := reg.WriteJSON(os.Stderr); err == nil {
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintln(os.Stderr, "mixd: flight recorder:")
	_ = srv.WriteFlight(os.Stderr)
	os.Exit(exit)
}
