package main

// BENCH_*.json comparison: the shared envelope loader and the -diff
// mode. Every artifact shares the {"schema_version",cpus,rows} shape
// but each table keeps its own row schema, so rows load untyped and
// are joined by a generic name: the concatenation of their identity
// fields (every string-valued field, plus workers), which uniquely
// keys every table's rows. Metric fields (time_ns and friends) never
// enter the key.
//
// Two comparisons run per joined row. Count fields that are
// schedule-independent (paths explored, states merged) must match
// exactly — a drift there is a semantic change, not noise — unless
// the row carries a deadline or fault field, in which case truncation
// makes the counts legitimately run-dependent. Wall-clock (time_ns)
// is gated by -diff-max-regress (default 5%), which CI loosens:
// same-host back-to-back runs routinely wobble 10-15%.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// benchRow is one untyped row of a BENCH_*.json artifact.
type benchRow map[string]any

// benchMachine is the envelope's description of the machine a bench
// artifact was measured on.
type benchMachine struct {
	CPUs       int `json:"cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
}

// comparableWith reports whether two artifacts' timing rows can be
// meaningfully diffed: the cpu counts must match, and so must the
// effective GOMAXPROCS when both artifacts record it (older artifacts
// predate the field and load as 0 = unknown).
func (m benchMachine) comparableWith(o benchMachine) error {
	if m.CPUs != o.CPUs {
		return fmt.Errorf("cpus %d vs %d", m.CPUs, o.CPUs)
	}
	if m.GoMaxProcs != 0 && o.GoMaxProcs != 0 && m.GoMaxProcs != o.GoMaxProcs {
		return fmt.Errorf("gomaxprocs %d vs %d", m.GoMaxProcs, o.GoMaxProcs)
	}
	return nil
}

// loadBenchRows reads a BENCH_*.json envelope, checking the schema
// version.
func loadBenchRows(path string) ([]benchRow, benchMachine, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, benchMachine{}, err
	}
	var env struct {
		SchemaVersion int `json:"schema_version"`
		benchMachine
		Rows []benchRow `json:"rows"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, benchMachine{}, fmt.Errorf("%s: %v", path, err)
	}
	if env.SchemaVersion != benchSchemaVersion {
		return nil, benchMachine{}, fmt.Errorf("%s: schema_version %d, want %d", path, env.SchemaVersion, benchSchemaVersion)
	}
	return env.Rows, env.benchMachine, nil
}

// rowKey builds the join name of a row: its string-valued fields in
// sorted field order, plus the worker count when present.
func rowKey(r benchRow) string {
	var parts []string
	names := make([]string, 0, len(r))
	for name := range r {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		switch v := r[name].(type) {
		case string:
			parts = append(parts, name+"="+v)
		case float64:
			if name == "workers" {
				parts = append(parts, fmt.Sprintf("workers=%d", int64(v)))
			}
		}
	}
	return strings.Join(parts, " ")
}

// rowTimeNS extracts the row's wall-clock metric, if it has one.
func rowTimeNS(r benchRow) (int64, bool) {
	v, ok := r["time_ns"].(float64)
	if !ok || v <= 0 {
		return 0, false
	}
	return int64(v), true
}

// deterministicFields are count metrics that do not depend on
// scheduling: the set of explored paths and the set of join-point
// merges are properties of the program, so two runs of the same table
// must agree on them exactly. Deliberately short — fields like
// memo_hits, steals, or cex_hits vary with worker interleaving and
// must never be exact-compared.
var deterministicFields = []string{"paths", "merges"}

// exactComparable reports whether a row's deterministic count fields
// are trustworthy: a deadline or an armed fault truncates exploration
// at a wall-clock- or schedule-dependent point, so those rows only
// get the timing comparison.
func exactComparable(r benchRow) bool {
	_, deadline := r["deadline"]
	_, fault := r["fault"]
	return !deadline && !fault
}

// runDiff implements mixbench -diff old.json new.json: join the two
// artifacts' rows by name, require the deterministic count fields to
// match exactly, and print the per-row speedup (old/new; >1 is an
// improvement). Exits 1 on a count mismatch or when any joined row's
// wall clock regressed by more than maxRegress (a fraction; 0.05
// means 5%).
func runDiff(oldPath, newPath string, maxRegress float64) {
	oldRows, oldMachine, err := loadBenchRows(oldPath)
	must(err)
	newRows, newMachine, err := loadBenchRows(newPath)
	must(err)
	// Refuse cross-machine timing comparisons outright: a "regression"
	// measured against an artifact from a different cpu or GOMAXPROCS
	// budget is noise dressed up as a verdict.
	if err := oldMachine.comparableWith(newMachine); err != nil {
		fmt.Fprintf(os.Stderr, "mixbench: -diff refuses %s vs %s: %v\n", oldPath, newPath, err)
		os.Exit(2)
	}
	oldByKey := map[string]benchRow{}
	for _, r := range oldRows {
		oldByKey[rowKey(r)] = r
	}
	w := newTab()
	fmt.Fprintln(w, "row\told\tnew\tspeedup")
	var regressions, mismatches []string
	joined := 0
	for _, nr := range newRows {
		key := rowKey(nr)
		or, ok := oldByKey[key]
		if !ok {
			continue
		}
		if exactComparable(or) && exactComparable(nr) {
			for _, f := range deterministicFields {
				ov, okO := or[f].(float64)
				nv, okN := nr[f].(float64)
				if okO && okN && ov != nv {
					mismatches = append(mismatches,
						fmt.Sprintf("%s: %s %v -> %v", key, f, int64(ov), int64(nv)))
				}
			}
		}
		oldNS, okOld := rowTimeNS(or)
		newNS, okNew := rowTimeNS(nr)
		if !okOld || !okNew {
			continue
		}
		joined++
		speedup := float64(oldNS) / float64(newNS)
		fmt.Fprintf(w, "%s\t%v\t%v\t%.2fx\n", key,
			time.Duration(oldNS).Round(time.Microsecond),
			time.Duration(newNS).Round(time.Microsecond), speedup)
		if float64(newNS) > float64(oldNS)*(1+maxRegress) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %v -> %v (%+.1f%%)", key,
					time.Duration(oldNS).Round(time.Microsecond),
					time.Duration(newNS).Round(time.Microsecond),
					100*(float64(newNS)-float64(oldNS))/float64(oldNS)))
		}
	}
	w.Flush()
	if joined == 0 {
		fmt.Fprintln(os.Stderr, "mixbench: -diff found no joinable rows")
		os.Exit(2)
	}
	fmt.Printf("%d rows compared, %d regressed, %d count mismatches\n",
		joined, len(regressions), len(mismatches))
	for _, m := range mismatches {
		fmt.Fprintln(os.Stderr, "mixbench: determinism mismatch:", m)
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "mixbench: regression:", r)
	}
	if len(regressions)+len(mismatches) > 0 {
		os.Exit(1)
	}
}
