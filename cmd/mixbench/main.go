// Command mixbench regenerates every experiment of the reproduction
// (DESIGN.md, Section 4: experiment index). Each table corresponds to
// an empirical claim of the paper; absolute numbers differ from the
// paper's 2010 testbed, but the shapes are the claims under test.
//
// Usage:
//
//	mixbench [-table E1..E8|X1..X12|all] [-cpuprofile f] [-memprofile f]
//	mixbench -diff old.json new.json
//
// The X4..X11 tables also write machine-readable BENCH_*.json
// artifacts, all sharing one envelope:
// {"schema_version": 1, "cpus": N, "gomaxprocs": N, "rows": [...]}.
//
// -cpuprofile/-memprofile capture pprof profiles of the selected
// tables (view with `go tool pprof`). X7 compares tracing-disabled
// time against the ladder-10 baseline recorded in BENCH_engine.json;
// with MIXBENCH_ENFORCE=1 in the environment it exits 1 when that
// overhead exceeds 5%. X8 measures state merging (-merge off vs
// joins); under MIXBENCH_ENFORCE=1 it exits 1 if joins is slower than
// off on the ladder family or more than 5% slower on the branch-light
// vsftpd workload. X9 measures compositional function summaries
// (inline vs summaries vs summaries warm from disk) on the
// shared-helper family; under MIXBENCH_ENFORCE=1 it exits 1 unless
// summaries are at least 2x faster than inlining. X10 measures
// distributed sharded exploration (DESIGN.md section 15) at 1 vs more
// shards; under MIXBENCH_ENFORCE=1 on a multi-cpu host it exits 1
// unless some sharded row beats the 1-shard coordinator. X11 measures
// fleet observability (DESIGN.md section 16): cross-process metric and
// trace aggregation on sharded ladder-10, per-request serving RED +
// flight-recorder cost, Prometheus render and snapshot-merge micro
// rows; under MIXBENCH_ENFORCE=1 it exits 1 if fleet metrics cost more
// than 5% over a telemetry-off sharded run. X12 measures the CDCL
// search core (DESIGN.md section 17) against the legacy chronological
// DPLL oracle on a hard conflict-driven family plus the easy
// ladder/vsftpd workloads; under MIXBENCH_ENFORCE=1 it exits 1 unless
// CDCL with pooled assumption reuse is at least 2x faster than DPLL on
// the hard family, or if the CDCL default regresses an easy workload
// by more than 5%.
//
// -diff old.json new.json joins two BENCH_*.json artifacts by row
// name and prints per-row speedups. It exits 1 when a deterministic
// count field (paths, merges) changed on a row without a deadline or
// fault, or when any row's wall clock regressed by more than
// -diff-max-regress (default 0.05, i.e. 5%; CI uses a looser value
// because same-host back-to-back runs wobble well past 5%).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"mix"
	"mix/internal/cexec"
	"mix/internal/cgen"
	"mix/internal/cliflags"
	"mix/internal/concrete"
	"mix/internal/core"
	"mix/internal/corpus"
	"mix/internal/engine"
	"mix/internal/lang"
	"mix/internal/langgen"
	"mix/internal/microc"
	"mix/internal/mixy"
	"mix/internal/obs"
	"mix/internal/pointer"
	"mix/internal/profiling"
	"mix/internal/serve"
	"mix/internal/shard"
	"mix/internal/signs"
	"mix/internal/solver"
	"mix/internal/summary"
	"mix/internal/sym"
	"mix/internal/symexec"
	"mix/internal/types"
)

func main() {
	shard.WorkerMain() // X10's worker processes re-exec this binary
	table := flag.String("table", "all", "experiment to run (E1..E8, X1..X12, or all)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected tables to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	diff := flag.Bool("diff", false, "compare two BENCH_*.json artifacts: mixbench -diff old.json new.json")
	diffMax := flag.Float64("diff-max-regress", 0.05, "-diff: fail on wall-clock regressions beyond this fraction")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: mixbench -diff [-diff-max-regress f] old.json new.json")
			os.Exit(2)
		}
		runDiff(flag.Arg(0), flag.Arg(1), *diffMax)
		return
	}

	if *cpuprofile != "" {
		stop, err := profiling.StartCPUProfile(*cpuprofile)
		must(err)
		defer stop()
	}
	runTables(*table)
	if *memprofile != "" {
		must(profiling.WriteHeapProfile(*memprofile))
	}
}

func runTables(table string) {
	tables := map[string]func(){
		"E1": tableE1, "E2": tableE2, "E3": tableE3, "E4": tableE4,
		"E5": tableE5, "E6": tableE6, "E7": tableE7, "E8": tableE8,
		"X1": tableX1, "X2": tableX2, "X3": tableX3, "X4": tableX4,
		"X5": tableX5, "X6": tableX6, "X7": tableX7, "X8": tableX8,
		"X9": tableX9, "X10": tableX10, "X11": tableX11, "X12": tableX12,
	}
	if table == "all" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11", "X12"} {
			tables[id]()
			fmt.Println()
		}
		return
	}
	run, ok := tables[table]
	if !ok {
		fmt.Fprintf(os.Stderr, "mixbench: unknown table %s\n", table)
		os.Exit(2)
	}
	run()
}

// benchSchemaVersion stamps every BENCH_*.json artifact. All the
// files share one envelope:
// {"schema_version": 1, "cpus": N, "gomaxprocs": N, "rows": [...]}.
// gomaxprocs records the effective parallelism limit, which can be
// lower than cpus (cgroup quota, GOMAXPROCS env) — timing rows from
// machines that merely report the same cpus are not comparable if
// their schedulers ran with different budgets.
const benchSchemaVersion = 1

// benchEnvelope is the common BENCH_*.json shape; Rows stays untyped
// so each table keeps its own row schema.
type benchEnvelope struct {
	SchemaVersion int `json:"schema_version"`
	CPUs          int `json:"cpus"`
	GoMaxProcs    int `json:"gomaxprocs"`
	Rows          any `json:"rows"`
}

// writeBench writes rows under the shared envelope.
func writeBench(path string, rows any) {
	out, err := json.MarshalIndent(benchEnvelope{
		SchemaVersion: benchSchemaVersion,
		CPUs:          runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Rows:          rows,
	}, "", "  ")
	must(err)
	must(os.WriteFile(path, append(out, '\n'), 0o644))
	fmt.Println("wrote", path)
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func envMap(pairs [][2]string) map[string]string {
	m := map[string]string{}
	for _, p := range pairs {
		m[p[0]] = p[1]
	}
	return m
}

// tableE1 — Section 2 idioms: pure type checking vs MIX.
func tableE1() {
	fmt.Println("E1 — Section 2 motivating idioms (core language)")
	fmt.Println("paper claim: each idiom false-positives under pure typing where marked, passes under MIX")
	w := newTab()
	fmt.Fprintln(w, "idiom\tpure types\tMIX\tfalse positive removed")
	for _, idiom := range corpus.CoreIdioms {
		env := envMap(idiom.Env)
		pure := mix.Check(idiom.Stripped, mix.Config{Env: env})
		mixed := mix.Check(idiom.Source, mix.Config{Env: env})
		pureStr, mixedStr := verdict(pure.Err), verdict(mixed.Err)
		removed := "-"
		if pure.Err != nil && mixed.Err == nil {
			removed = "yes"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", idiom.Name, pureStr, mixedStr, removed)
	}
	w.Flush()
}

func verdict(err error) string {
	if err == nil {
		return "accepts"
	}
	return "rejects"
}

// tableE2 — the four vsftpd case studies (Section 4.5).
func tableE2() {
	fmt.Println("E2 — vsftpd case studies (Section 4.5)")
	fmt.Println("paper claim: MIX(symbolic)/MIX(typed) annotations eliminate the false warnings of pure qualifier inference")
	w := newTab()
	fmt.Fprintln(w, "case\tbaseline warnings\tMIXY warnings\teliminated")
	for _, c := range corpus.Cases {
		baseCfg := mix.CConfig{PureTypes: true}
		var baseWarn int
		if c.Name == corpus.Case4.Name {
			// Case 4's baseline is symbolic execution without the
			// typed block (the fnptr failure), not pure typing.
			res, err := mix.AnalyzeC(corpus.Case4NoTyped.Source, mix.CConfig{})
			must(err)
			baseWarn = len(res.Warnings)
		} else {
			res, err := mix.AnalyzeC(c.Source, baseCfg)
			must(err)
			baseWarn = len(res.Warnings)
		}
		mixed, err := mix.AnalyzeC(c.Source, mix.CConfig{})
		must(err)
		elim := "no"
		if baseWarn > 0 && len(mixed.Warnings) == 0 {
			elim = "yes"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", c.Name, baseWarn, len(mixed.Warnings), elim)
	}
	// The combined program: warnings drop but context-insensitive
	// aliasing leaves residuals, reproducing Section 4.6.
	base, err := mix.AnalyzeC(corpus.VsftpdMini.Source, mix.CConfig{PureTypes: true})
	must(err)
	mixed, err := mix.AnalyzeC(corpus.VsftpdMini.Source, mix.CConfig{})
	must(err)
	fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", corpus.VsftpdMini.Name,
		len(base.Warnings), len(mixed.Warnings), "reduced (residual = §4.6 conflation)")
	w.Flush()
}

// tableE3 — analysis time vs number of symbolic blocks (Section 4.6).
func tableE3() {
	fmt.Println("E3 — MIXY cost vs symbolic blocks (Section 4.6)")
	fmt.Println("paper claim: <1s with 0 blocks, 5–25s with 1, ~60s with 2 — monotone, superlinear shape")
	w := newTab()
	fmt.Fprintln(w, "symbolic blocks\ttime\tvs k=0\tblocks analyzed\tfixpoint iters\tsolver queries")
	const n = 12
	var base time.Duration
	for _, k := range []int{0, 1, 2, 3} {
		src := corpus.SyntheticVsftpd(n, k)
		prog := parseC(src)
		start := time.Now()
		a, err := mixy.Run(prog, mixy.Options{})
		must(err)
		dur := time.Since(start)
		if k == 0 {
			base = dur
		}
		ratio := float64(dur) / float64(base)
		fmt.Fprintf(w, "%d\t%v\t%.1fx\t%d\t%d\t%d\n",
			k, dur.Round(time.Microsecond), ratio,
			a.Stats.BlocksAnalyzed, a.Stats.FixpointIters, a.Stats.SolverQueries)
	}
	w.Flush()
}

// tableE4 — deferral vs execution (Section 3.1).
func tableE4() {
	fmt.Println("E4 — fork vs defer at conditionals (Section 3.1)")
	fmt.Println("paper claim: SEIF-DEFER avoids forking but hands the solver harder disjunctive formulas")
	w := newTab()
	fmt.Fprintln(w, "conditionals\tmode\tpaths\tsolver atoms\tsolver decisions\ttime")
	for _, n := range []int{4, 6, 8, 10} {
		src, env := corpus.Ladder(n)
		for _, mode := range []string{"fork", "defer"} {
			opts := core.Options{}
			if mode == "defer" {
				opts.IfMode = sym.DeferIf
			}
			checker := core.New(opts)
			tenv := types.EmptyEnv()
			for _, p := range env {
				tenv = tenv.Extend(p[0], types.Bool)
			}
			e := lang.MustParse(src)
			start := time.Now()
			_, err := checker.CheckSymbolic(tenv, e)
			must(err)
			dur := time.Since(start)
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%v\n",
				n, mode, checker.Executor().Stats.Paths,
				checker.Solver().Stats.Atoms, checker.Solver().Stats.Decisions,
				dur.Round(time.Microsecond))
		}
	}
	w.Flush()
}

// tableE5 — the precision/efficiency frontier (Sections 1, 3.2).
func tableE5() {
	fmt.Println("E5 — precision/efficiency frontier")
	fmt.Println("paper claim: MIX is more precise than typing alone and more efficient than exclusive symbolic execution")
	w := newTab()
	fmt.Fprintln(w, "n\tanalysis\tverdict\tpaths\ttime")
	for _, n := range []int{8, 12} {
		plain, mixed, env := corpus.DeepConditionals(n)
		em := envMap(env)
		rows := []struct {
			name string
			src  string
			cfg  mix.Config
		}{
			{"pure types", plain, mix.Config{Env: em}},
			{"pure symbolic", plain, mix.Config{Mode: mix.StartSymbolic, Env: em}},
			{"MIX", mixed, mix.Config{Env: em}},
		}
		for _, r := range rows {
			start := time.Now()
			res := mix.Check(r.src, r.cfg)
			dur := time.Since(start)
			fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%v\n",
				n, r.name, verdict(res.Err), res.Paths, dur.Round(time.Microsecond))
		}
	}
	w.Flush()
}

// tableE6 — block caching (Section 4.3).
func tableE6() {
	fmt.Println("E6 — block caching (Section 4.3)")
	fmt.Println("paper claim: caching avoids repeated analysis of a block called from compatible contexts")
	w := newTab()
	fmt.Fprintln(w, "call sites\tcache\tblocks analyzed\tcache hits\ttime")
	for _, sites := range []int{4, 16} {
		src := cacheProgram(sites)
		for _, cache := range []bool{true, false} {
			prog := parseC(src)
			start := time.Now()
			a, err := mixy.Run(prog, mixy.Options{NoCache: !cache})
			must(err)
			dur := time.Since(start)
			on := "on"
			if !cache {
				on = "off"
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%v\n",
				sites, on, a.Stats.BlocksAnalyzed, a.Stats.CacheHits,
				dur.Round(time.Microsecond))
		}
	}
	w.Flush()
}

// cacheProgram routes `sites` typed functions through one symbolic
// block: every typed call re-enters blk with a compatible context, so
// with caching blk is analyzed once and hit sites-1 times.
func cacheProgram(sites int) string {
	var b strings.Builder
	b.WriteString("int *g;\n")
	b.WriteString("void blk(void) MIX(symbolic) {\n  g = NULL;\n  g = malloc(sizeof(int));\n}\n")
	for i := 0; i < sites; i++ {
		fmt.Fprintf(&b, "void t%d(void) MIX(typed) { blk(); }\n", i)
	}
	b.WriteString("void outer(void) MIX(symbolic) {\n")
	for i := 0; i < sites; i++ {
		fmt.Fprintf(&b, "  t%d();\n", i)
	}
	b.WriteString("}\n")
	b.WriteString("int main(void) {\n  outer();\n  return 0;\n}\n")
	return b.String()
}

// tableE7 — recursion between blocks (Section 4.4).
func tableE7() {
	fmt.Println("E7 — typed/symbolic block recursion (Section 4.4)")
	fmt.Println("paper claim: recursion between blocks is detected and resolved by assumption + fixed point")
	src := `
int *g;
int counter;
void typed_side(void) MIX(typed) {
  sym_side();
}
void sym_side(void) MIX(symbolic) {
  if (counter > 0) {
    counter = counter - 1;
    typed_side();
  }
  g = NULL;
}
int main(void) {
  sym_side();
  return 0;
}
`
	prog := parseC(src)
	start := time.Now()
	a, err := mixy.Run(prog, mixy.Options{})
	must(err)
	dur := time.Since(start)
	w := newTab()
	fmt.Fprintln(w, "metric\tvalue")
	fmt.Fprintf(w, "terminated\tyes (%v)\n", dur.Round(time.Microsecond))
	fmt.Fprintf(w, "recursion cuts\t%d\n", a.Stats.RecursionCuts)
	fmt.Fprintf(w, "fixpoint iterations\t%d\n", a.Stats.FixpointIters)
	g, _ := prog.Global("g")
	fmt.Fprintf(w, "g's nullness discovered\t%t\n", a.Inf.IsNull(a.Inf.VarQ(g).Ptr))
	w.Flush()
}

// tableE8 — soundness sampling (Theorem 1).
func tableE8() {
	fmt.Println("E8 — MIX soundness, randomized (Theorem 1)")
	fmt.Println("paper claim: mix-accepted programs never hit a run-time type error")
	const programs = 2000
	gen := langgen.New(20100605, langgen.DefaultConfig())
	accepted, rejected, unsound := 0, 0, 0
	for i := 0; i < programs; i++ {
		prog := gen.Closed()
		checker := core.New(core.Options{})
		_, err := checker.Check(types.EmptyEnv(), prog)
		if err != nil {
			rejected++
			continue
		}
		accepted++
		ev := concrete.NewEvaluator()
		_, cerr := ev.Eval(concrete.EmptyEnv(), concrete.NewMemory(), prog)
		if errors.Is(cerr, concrete.ErrTypeError) {
			unsound++
		}
	}
	w := newTab()
	fmt.Fprintln(w, "metric\tvalue")
	fmt.Fprintf(w, "programs generated\t%d\n", programs)
	fmt.Fprintf(w, "accepted by MIX\t%d\n", accepted)
	fmt.Fprintf(w, "rejected by MIX\t%d\n", rejected)
	fmt.Fprintf(w, "accepted programs with run-time type errors\t%d (must be 0)\n", unsound)
	w.Flush()
}

// tableX1 — extension: the sign-qualifier instantiation of MIX
// (mechanizing the paper's Section 2 local-refinement example and its
// claim that the approach generalizes to other analysis pairs).
func tableX1() {
	fmt.Println("X1 — extension: sign qualifiers mixed with the same symbolic executor")
	fmt.Println("paper claim (Section 2/6): the mix approach applies to many combinations; sign refinement after tests")
	w := newTab()
	fmt.Fprintln(w, "program\tpure sign table\tmixed analysis")
	rows := []struct {
		src string
		env func() *signs.Env
	}{
		{"if b then 1 + -1 else 0", func() *signs.Env {
			return signs.EmptyEnv().Extend("b", signs.Bool)
		}},
		{"if 0 < x then x + -1 + 1 else 1", func() *signs.Env {
			return signs.EmptyEnv().Extend("x", signs.Int(signs.Top))
		}},
		{"if 1 < x then x + -1 else x", func() *signs.Env {
			return signs.EmptyEnv().Extend("x", signs.Int(signs.Pos))
		}},
	}
	for _, r := range rows {
		var pure signs.Checker
		pureTy, pureErr := pure.Check(r.env(), lang.MustParse(r.src))
		pureStr := "rejects"
		if pureErr == nil {
			pureStr = pureTy.String()
		}
		m := signs.NewMixer()
		mixTy, mixErr := m.Check(r.env(), lang.MustParse("{s "+r.src+" s}"))
		mixStr := "rejects"
		if mixErr == nil {
			mixStr = mixTy.String()
		}
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.src, pureStr, mixStr)
	}
	w.Flush()
}

// tableX2 — extension: the Section 3.2 type-and-effect refinement of
// SETYPBLOCK ("we could find the effect of e and limit applying this
// havoc operation").
func tableX2() {
	fmt.Println("X2 — extension: effect-aware typed blocks (Section 3.2 refinement)")
	fmt.Println("paper claim: an effect system would let SETYPBLOCK avoid havocking memory for pure blocks")
	w := newTab()
	fmt.Fprintln(w, "program\tplain SETYPBLOCK\teffect-aware")
	rows := []string{
		// A fact established before a pure typed block survives it.
		`{s let r = ref 0 in let _ = {t 1 + 1 t} in
		   if !r = 0 then 1 else (1 + true) s}`,
		// A writing typed block still havocs under both.
		`{s let r = ref 0 in let _ = {t (ref 9) := 1 t} in
		   if !r = 0 then 1 else (1 + true) s}`,
	}
	for _, src := range rows {
		plain := mix.Check(src, mix.Config{})
		eff := mix.Check(src, mix.Config{EffectAware: true})
		short := strings.Join(strings.Fields(src), " ")
		if len(short) > 60 {
			short = short[:57] + "..."
		}
		fmt.Fprintf(w, "%s\t%s\t%s\n", short, verdict(plain.Err), verdict(eff.Err))
	}
	w.Flush()
}

// tableX3 — extension: a randomized differential version of the
// paper's case study. Generated null-idiom programs are deterministic,
// so a concrete run (internal/cexec) decides ground truth; MIXY must
// warn on every crashing program (soundness) and should warn on far
// fewer clean programs than pure inference (precision).
func tableX3() {
	fmt.Println("X3 — extension: randomized differential against concrete execution")
	fmt.Println("paper claim (generalized): MIXY removes false positives without losing true positives")
	const programs = 400
	cfg := cgen.DefaultConfig()
	cfg.SymbolicEntry = true
	gen := cgen.New(20100605, cfg)
	crashes, missed, clean, pureFP, mixFP := 0, 0, 0, 0, 0
	for i := 0; i < programs; i++ {
		src := gen.Program()
		prog, perr := microc.Parse(src)
		if perr != nil {
			// One malformed generated program must not take down the
			// whole differential batch.
			fmt.Fprintf(os.Stderr, "mixbench: skipping malformed generated program %d: %v\n", i, perr)
			continue
		}
		_, runErr := cexec.New(prog, 1).Run("main")
		crashed := errors.Is(runErr, cexec.ErrNullDeref)
		mixed, err := mixy.Run(prog, mixy.Options{StrictInit: true})
		must(err)
		if crashed {
			crashes++
			if len(mixed.Warnings) == 0 {
				missed++
			}
			continue
		}
		clean++
		pure, err := mixy.Run(parseC(src), mixy.Options{IgnoreAnnotations: true, StrictInit: true})
		must(err)
		if len(pure.Warnings) > 0 {
			pureFP++
		}
		if len(mixed.Warnings) > 0 {
			mixFP++
		}
	}
	w := newTab()
	fmt.Fprintln(w, "metric\tvalue")
	fmt.Fprintf(w, "programs generated\t%d\n", programs)
	fmt.Fprintf(w, "concretely crashing\t%d\n", crashes)
	fmt.Fprintf(w, "crashing programs MIXY missed\t%d (must be 0)\n", missed)
	fmt.Fprintf(w, "concretely clean\t%d\n", clean)
	fmt.Fprintf(w, "clean programs pure inference warns on\t%d\n", pureFP)
	fmt.Fprintf(w, "clean programs MIXY warns on\t%d\n", mixFP)
	w.Flush()
}

// tableX4 — the parallel path-exploration engine: wall-clock scaling
// with workers on a fork-heavy program, and solver-memo effectiveness
// on the E6 cache corpus. Rows are also written to BENCH_engine.json.
func tableX4() {
	fmt.Println("X4 — parallel engine: workers scaling and solver memoization")
	fmt.Println("claims: workers=N explores the same paths faster than workers=1; the memo eliminates repeated solver queries")

	type row struct {
		Bench         string `json:"bench"`
		Workers       int    `json:"workers"`
		Memo          bool   `json:"memo"`
		TimeNS        int64  `json:"time_ns"`
		Paths         int    `json:"paths"`
		Forks         int    `json:"forks"`
		Steals        int    `json:"steals"`
		MemoHits      int    `json:"memo_hits"`
		MemoMisses    int    `json:"memo_misses"`
		SolverQueries int    `json:"solver_queries"`
		QuickDecided  int    `json:"quick_decided"`
		Slices        int    `json:"slices"`
		CexHits       int    `json:"cex_hits"`
	}
	var rows []row

	w := newTab()
	fmt.Fprintln(w, "bench\tworkers\tmemo\tpaths\tforks\tsteals\tmemo hits\tmemo misses\tsolver queries\ttime")

	// (a) Workers scaling: a 10-conditional ladder (1024 forked paths)
	// explored symbolically, sequential vs parallel. Best of three runs
	// to damp scheduler noise; on a single-CPU host the parallel row
	// shows scheduler overhead (steals) rather than speedup.
	parWorkers := runtime.GOMAXPROCS(0)
	if parWorkers < 2 {
		parWorkers = 2
	}
	src, env := corpus.Ladder(10)
	em := envMap(env)
	for _, workers := range []int{1, parWorkers} {
		var best time.Duration
		var res mix.Result
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			r := mix.Check(src, mix.Config{Mode: mix.StartSymbolic, Env: em, Workers: workers})
			dur := time.Since(start)
			must(r.Err)
			if rep == 0 || dur < best {
				best, res = dur, r
			}
		}
		rows = append(rows, row{
			Bench: "ladder-10", Workers: workers, Memo: true,
			TimeNS: best.Nanoseconds(), Paths: res.Paths, Forks: res.Forks,
			Steals: res.Steals, MemoHits: res.MemoHits, MemoMisses: res.MemoMisses,
			SolverQueries: res.SolverQueries, QuickDecided: res.QuickDecided,
			Slices: res.Slices, CexHits: res.CexHits,
		})
		fmt.Fprintf(w, "ladder-10\t%d\ton\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			workers, res.Paths, res.Forks, res.Steals,
			res.MemoHits, res.MemoMisses, res.SolverQueries, best.Round(time.Microsecond))
	}

	// (b) Memoization: the E3 synthetic-vsftpd corpus (12 functions, 2
	// symbolic blocks) routed through MIXY's engine at one worker, memo
	// off vs on. The fixpoint re-proves the same per-cell nullability
	// formulas across iterations, which is exactly what the memo
	// deduplicates.
	memoSrc := corpus.SyntheticVsftpd(12, 2)
	for _, memo := range []bool{false, true} {
		var dur time.Duration
		var res mix.CResult
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			r, err := mix.AnalyzeC(memoSrc, mix.CConfig{Workers: 1, NoMemo: !memo})
			must(err)
			d := time.Since(start)
			if rep == 0 || d < dur {
				dur, res = d, r
			}
		}
		on := "off"
		if memo {
			on = "on"
		}
		rows = append(rows, row{
			Bench: "vsftpd-12x2", Workers: 1, Memo: memo,
			TimeNS: dur.Nanoseconds(), MemoHits: res.MemoHits,
			MemoMisses: res.MemoMisses, SolverQueries: res.SolverQueries,
			QuickDecided: res.QuickDecided, Slices: res.Slices, CexHits: res.CexHits,
		})
		fmt.Fprintf(w, "vsftpd-12x2\t%d\t%s\t-\t-\t-\t%d\t%d\t%d\t%v\n",
			1, on, res.MemoHits, res.MemoMisses, res.SolverQueries, dur.Round(time.Microsecond))
	}
	w.Flush()

	writeBench("BENCH_engine.json", rows)
}

// tableX5 — persistent symbolic state and the incremental solver
// pipeline: fork cost under wide memories (O(1) structurally shared
// clones vs the eager per-fork copy they replace), and path-condition
// solving through simplify → interval fast path → independence slicing
// → counterexample cache → memo. Rows are written to BENCH_solver.json.
func tableX5() {
	fmt.Println("X5 — O(1) forks: persistent state + incremental path-condition solving")
	fmt.Println("claims: forks share memory cells instead of copying them; sliced incremental solving absorbs the shared PC prefix")

	type row struct {
		Bench         string `json:"bench"`
		Workers       int    `json:"workers"`
		TimeNS        int64  `json:"time_ns"`
		Paths         int    `json:"paths"`
		MemClones     int64  `json:"mem_clones"`
		SharedCells   int64  `json:"shared_cells"`
		MemWrites     int64  `json:"mem_writes"`
		QuickDecided  int64  `json:"quick_decided"`
		Slices        int64  `json:"slices"`
		MaxSlice      int64  `json:"max_slice"`
		CexHits       int64  `json:"cex_hits"`
		MemoHits      int64  `json:"memo_hits"`
		SolverQueries int64  `json:"solver_queries"`
	}
	var rows []row

	w := newTab()
	fmt.Fprintln(w, "bench\tpaths\tclones\tshared cells\twrites\tquick\tslices\tmax slice\tcex hits\tmemo hits\tqueries\ttime")

	runBench := func(name, src string, maxPaths int) {
		prog := parseC(src)
		var best time.Duration
		var snap engine.Stats
		var clones, shared, writes int64
		var paths int
		for rep := 0; rep < 3; rep++ {
			x := symexec.New(parseC(src), pointer.Analyze(prog))
			if maxPaths > 0 {
				x.MaxPaths = maxPaths
			}
			eng := engine.New(engine.Options{Workers: 1})
			x.Engine = eng
			c0, s0, wr0 := symexec.MemoryStats()
			start := time.Now()
			outs, err := x.Run("f")
			dur := time.Since(start)
			must(err)
			c1, s1, wr1 := symexec.MemoryStats()
			c, s, wr := c1-c0, s1-s0, wr1-wr0
			if rep == 0 || dur < best {
				best, snap, paths = dur, eng.Snapshot(), len(outs)
				clones, shared, writes = c, s, wr
			}
		}
		rows = append(rows, row{
			Bench: name, Workers: 1, TimeNS: best.Nanoseconds(),
			Paths: paths, MemClones: clones, SharedCells: shared, MemWrites: writes,
			QuickDecided: snap.QuickDecided, Slices: snap.Slices,
			MaxSlice: snap.MaxSlice, CexHits: snap.CexHits,
			MemoHits: snap.MemoHits, SolverQueries: snap.SolverQueries,
		})
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			name, paths, clones, shared, writes,
			snap.QuickDecided, snap.Slices, snap.MaxSlice, snap.CexHits,
			snap.MemoHits, snap.SolverQueries, best.Round(time.Microsecond))
	}

	// (a) Fork cost: a conditional tree over a wide memory. Every fork
	// clones the store; the seed's eager copy paid O(width) per fork,
	// the persistent store pays O(1) and `shared cells` counts exactly
	// the copies it avoided (clones × live cells).
	for _, width := range []int{64, 256} {
		runBench(fmt.Sprintf("wide-mem-%d", width), wideMemSrc(width, 6), 0)
	}

	// (b) Slicing: sequential two-variable guards over disjoint
	// variable pairs. Every path condition splits into singleton
	// independence components, so each distinct guard is proved once and
	// memo-hit ever after — queries grow with path count, DPLL work
	// with guard count.
	runBench("pairs-10", pairsSrc(10), 4096)

	// (c) The entangled worst case: chained guards x_i < x_{i+1} share
	// variables, so the component grows with depth (max slice ≈ chain
	// length) and slicing cannot split it — the honest upper bound on
	// per-query cost.
	runBench("chain-10", chainSrc(10), 4096)

	w.Flush()

	writeBench("BENCH_solver.json", rows)
}

// wideMemSrc builds a symbolic function that initializes `width` global
// int cells and then forks down a complete conditional tree of the
// given depth — the fork-cost microbenchmark.
func wideMemSrc(width, depth int) string {
	var b strings.Builder
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "int g%d;\n", i)
	}
	for i := 0; i < 1<<depth-1; i++ {
		fmt.Fprintf(&b, "int c%d;\n", i)
	}
	b.WriteString("int f(void) {\n")
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "g%d = %d;\n", i, i)
	}
	leaf := 0
	var emit func(node, d int)
	emit = func(node, d int) {
		if d == depth {
			fmt.Fprintf(&b, "return %d;\n", leaf)
			leaf++
			return
		}
		fmt.Fprintf(&b, "if (c%d > 0) {\n", node)
		emit(2*node+1, d+1)
		b.WriteString("} else {\n")
		emit(2*node+2, d+1)
		b.WriteString("}\n")
	}
	emit(0, 0)
	b.WriteString("}\n")
	return b.String()
}

// pairsSrc builds n sequential conditionals over disjoint variable
// pairs (x_i < y_i): 2^n paths whose conditions slice into singleton
// components.
func pairsSrc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "int x%d;\nint y%d;\n", i, i)
	}
	b.WriteString("int f(void) {\nint acc;\nacc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "if (x%d < y%d) {\nacc = acc + 1;\n} else {\nacc = acc + 0;\n}\n", i, i)
	}
	b.WriteString("return acc;\n}\n")
	return b.String()
}

// chainSrc builds n sequential conditionals whose guards chain through
// shared variables (x_i < x_{i+1}), entangling every conjunct into one
// independence component.
func chainSrc(n int) string {
	var b strings.Builder
	for i := 0; i <= n; i++ {
		fmt.Fprintf(&b, "int x%d;\n", i)
	}
	b.WriteString("int f(void) {\nint acc;\nacc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "if (x%d < x%d) {\nacc = acc + 1;\n} else {\nacc = acc + 0;\n}\n", i, i+1)
	}
	b.WriteString("return acc;\n}\n")
	return b.String()
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixbench:", err)
		os.Exit(1)
	}
}

// parseC parses bench source through the normal error path; a
// malformed program stops the run with a diagnostic, never a panic.
func parseC(src string) *microc.Program {
	prog, err := microc.Parse(src)
	must(err)
	return prog
}

// tableX6 measures verdict quality against the wall-clock budget: the
// degradation ladder trades certification for promptness, and the
// claim under test is that every budget produces a verdict — certified
// when the budget suffices, explicitly degraded (with the fault class
// named) when it does not, and never a hang or a crash.
func tableX6() {
	fmt.Println("X6 — graceful degradation: verdict quality vs. deadline")
	fmt.Println("claims: expired budgets terminate promptly with an explicit imprecision verdict; generous budgets certify the same type as an unbounded run")

	type row struct {
		Bench       string `json:"bench"`
		Deadline    string `json:"deadline"`
		Verdict     string `json:"verdict"` // "certified <type>" or "degraded (<class>)"
		Fault       string `json:"fault,omitempty"`
		Paths       int    `json:"paths"`
		Timeouts    int64  `json:"timeouts"`
		Truncations int64  `json:"paths_truncated"`
		TimeNS      int64  `json:"time_ns"`
	}
	var rows []row

	src, envPairs := corpus.Ladder(12) // 4096 paths
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}

	w := newTab()
	fmt.Fprintln(w, "bench\tdeadline\tverdict\tpaths\ttimeouts\ttruncated\ttime")
	for _, d := range []time.Duration{0, 10 * time.Second, 50 * time.Millisecond, time.Millisecond, time.Nanosecond} {
		cfg := mix.Config{Mode: mix.StartSymbolic, Env: env, Workers: 4, Deadline: d}
		start := time.Now()
		res := mix.Check(src, cfg)
		dur := time.Since(start)
		must(res.Err)
		verdict := "certified " + res.Type
		if res.Degraded {
			verdict = "degraded (" + res.Fault + ")"
		}
		label := "none"
		if d > 0 {
			label = d.String()
		}
		rows = append(rows, row{
			Bench: "ladder-12", Deadline: label, Verdict: verdict, Fault: res.Fault,
			Paths: res.Paths, Timeouts: res.Timeouts, Truncations: res.PathsTruncated,
			TimeNS: dur.Nanoseconds(),
		})
		fmt.Fprintf(w, "ladder-12\t%s\t%s\t%d\t%d\t%d\t%v\n",
			label, verdict, res.Paths, res.Timeouts, res.PathsTruncated,
			dur.Round(time.Microsecond))
	}
	w.Flush()

	writeBench("BENCH_faults.json", rows)
}

// tableX7 — the observability layer's own cost: ladder-10 explored
// with tracing off / deterministic / timed, raw tracer throughput,
// and registry snapshot cost. The off row compares against the
// ladder-10 workers=1 time recorded in BENCH_engine.json (X4, same
// host): instrumentation behind nil checks must stay in the noise.
// With MIXBENCH_ENFORCE=1, an off-row overhead above 5% fails the
// run.
func tableX7() {
	fmt.Println("X7 — observability: tracing overhead, event throughput, snapshot cost")
	fmt.Println("claims: disabled instrumentation is nil checks only (<=5% on ladder-10); enabled tracing and metric snapshots stay cheap")

	type row struct {
		Bench        string  `json:"bench"`
		Mode         string  `json:"mode,omitempty"` // off | det | timed
		Workers      int     `json:"workers,omitempty"`
		TimeNS       int64   `json:"time_ns"`
		BaselineNS   int64   `json:"baseline_ns,omitempty"`
		OverheadPct  float64 `json:"overhead_pct"`
		Events       int     `json:"events,omitempty"`
		EventsPerSec float64 `json:"events_per_sec,omitempty"`
		NSPerOp      float64 `json:"ns_per_op,omitempty"`
	}
	var rows []row

	w := newTab()
	fmt.Fprintln(w, "bench\tmode\ttime\tvs baseline\tevents\tevents/sec")

	// (a) End-to-end overhead on the X4 workload (ladder-10, workers=1,
	// best of seven — the minimum is the only stable statistic on a
	// noisy shared host, and the gate compares minima). The off mode
	// exercises exactly the instrumented code paths with nil tracer
	// and nil registry.
	src, env := corpus.Ladder(10)
	em := envMap(env)
	baseline := ladder10Baseline()
	for _, mode := range []string{"off", "det", "timed"} {
		var best time.Duration
		var events int
		for rep := 0; rep < 7; rep++ {
			cfg := mix.Config{Mode: mix.StartSymbolic, Env: em, Workers: 1}
			switch mode {
			case "det":
				cfg.Tracer = obs.NewTracer(obs.TraceOptions{Deterministic: true})
			case "timed":
				cfg.Tracer = obs.NewTracer(obs.TraceOptions{})
			}
			start := time.Now()
			res := mix.Check(src, cfg)
			dur := time.Since(start)
			must(res.Err)
			if rep == 0 || dur < best {
				best = dur
				events = len(cfg.Tracer.Events())
			}
		}
		r := row{Bench: "ladder-10", Mode: mode, Workers: 1, TimeNS: best.Nanoseconds()}
		vsBase := "-"
		if mode == "off" && baseline > 0 {
			r.BaselineNS = baseline
			r.OverheadPct = 100 * (float64(best.Nanoseconds()) - float64(baseline)) / float64(baseline)
			vsBase = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		if events > 0 {
			r.Events = events
			r.EventsPerSec = float64(events) / best.Seconds()
		}
		rows = append(rows, r)
		ev := "-"
		if events > 0 {
			ev = fmt.Sprintf("%d", events)
		}
		eps := "-"
		if r.EventsPerSec > 0 {
			eps = fmt.Sprintf("%.0f", r.EventsPerSec)
		}
		fmt.Fprintf(w, "ladder-10\t%s\t%v\t%s\t%s\t%s\n",
			mode, best.Round(time.Microsecond), vsBase, ev, eps)

		if mode == "off" && os.Getenv("MIXBENCH_ENFORCE") == "1" &&
			baseline > 0 && r.OverheadPct > 5 {
			w.Flush()
			fmt.Fprintf(os.Stderr,
				"mixbench: X7 disabled-tracing overhead %.1f%% exceeds 5%% gate (off=%v baseline=%v)\n",
				r.OverheadPct, best, time.Duration(baseline))
			os.Exit(1)
		}
	}

	// (b) Raw tracer throughput: one million solve events through a
	// span tree, timed mode (the most expensive: clock read + global
	// seq per event).
	{
		const emits = 1 << 20
		tr := obs.NewTracer(obs.TraceOptions{Cap: emits})
		sp := tr.Root("bench")
		start := time.Now()
		for i := 0; i < emits; i++ {
			sp.Solve("sat", 1)
		}
		dur := time.Since(start)
		eps := float64(emits) / dur.Seconds()
		rows = append(rows, row{
			Bench: "tracer-emit", TimeNS: dur.Nanoseconds(),
			Events: emits, EventsPerSec: eps,
			NSPerOp: float64(dur.Nanoseconds()) / emits,
		})
		fmt.Fprintf(w, "tracer-emit\ttimed\t%v\t-\t%d\t%.0f\n",
			dur.Round(time.Microsecond), emits, eps)
	}

	// (c) Registry snapshot cost at a realistic metric count (the
	// unified mix/mixy registry registers a few dozen series).
	{
		reg := obs.NewRegistry()
		for i := 0; i < 48; i++ {
			reg.Counter(fmt.Sprintf("bench.counter.%02d", i)).Add(int64(i))
			reg.Gauge(fmt.Sprintf("bench.gauge.%02d", i)).Set(int64(i))
		}
		for i := 0; i < 8; i++ {
			reg.Histogram(fmt.Sprintf("bench.hist.%02d", i)).Observe(int64(i) << 10)
		}
		const snaps = 2048
		start := time.Now()
		for i := 0; i < snaps; i++ {
			_ = reg.Snapshot()
		}
		dur := time.Since(start)
		rows = append(rows, row{
			Bench: "registry-snapshot", TimeNS: dur.Nanoseconds(),
			NSPerOp: float64(dur.Nanoseconds()) / snaps,
		})
		fmt.Fprintf(w, "registry-snapshot\t-\t%v\t-\t%d ops\t%.0f ns/op\n",
			dur.Round(time.Microsecond), snaps, float64(dur.Nanoseconds())/snaps)
	}
	w.Flush()

	writeBench("BENCH_obs.json", rows)
}

// ladder10Baseline reads the ladder-10 workers=1 time from
// BENCH_engine.json (written by X4, normally moments earlier on the
// same host) via the shared envelope loader that also backs -diff.
// 0 means no comparable baseline.
func ladder10Baseline() int64 {
	rows, _, err := loadBenchRows("BENCH_engine.json")
	if err != nil {
		return 0
	}
	for _, r := range rows {
		if r["bench"] == "ladder-10" && r["workers"] == float64(1) {
			if ns, ok := rowTimeNS(r); ok {
				return ns
			}
		}
	}
	return 0
}

// tableX8 — veritesting-style state merging (DESIGN.md section 12):
// path counts and wall-clock with -merge off vs joins at workers=1,
// best of seven. The ladder family is the worst case merging targets
// (2^k forked paths collapse to one merged state per rung); the
// synthetic vsftpd MIXY workload is branch-light, so merging must not
// slow it down. With MIXBENCH_ENFORCE=1 the run exits 1 if joins is
// slower than off on a ladder, or more than 5% slower on vsftpd-12x2.
func tableX8() {
	fmt.Println("X8 — state merging: -merge off vs joins (workers=1, best of 7)")
	fmt.Println("claims: guarded joins collapse ladder-k from 2^k paths to O(1) with large speedups; branch-light code is unaffected (<=5%)")

	type row struct {
		Bench   string  `json:"bench"`
		Merge   string  `json:"merge"`
		Workers int     `json:"workers"`
		Paths   int     `json:"paths,omitempty"`
		Merges  int     `json:"merges"`
		TimeNS  int64   `json:"time_ns"`
		Speedup float64 `json:"speedup,omitempty"` // off time / this time, same bench
	}
	var rows []row
	w := newTab()
	fmt.Fprintln(w, "bench\tmerge\tpaths\tmerges\ttime\tvs off")

	const reps = 7
	enforce := os.Getenv("MIXBENCH_ENFORCE") == "1"
	fail := func(format string, args ...any) {
		w.Flush()
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}

	for _, n := range []int{10, 14} {
		src, env := corpus.Ladder(n)
		em := envMap(env)
		name := fmt.Sprintf("ladder-%d", n)
		var offBest time.Duration
		for _, mode := range []string{"off", "joins"} {
			var best time.Duration
			var paths, merges int
			for rep := 0; rep < reps; rep++ {
				cfg := mix.Config{Mode: mix.StartSymbolic, Env: em, Workers: 1, Merge: mode}
				start := time.Now()
				res := mix.Check(src, cfg)
				dur := time.Since(start)
				must(res.Err)
				if rep == 0 || dur < best {
					best, paths, merges = dur, res.Paths, res.Merges
				}
			}
			r := row{Bench: name, Merge: mode, Workers: 1, Paths: paths, Merges: merges, TimeNS: best.Nanoseconds()}
			vs := "-"
			if mode == "off" {
				offBest = best
			} else {
				r.Speedup = float64(offBest) / float64(best)
				vs = fmt.Sprintf("%.1fx", r.Speedup)
			}
			rows = append(rows, r)
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%v\t%s\n",
				name, mode, paths, merges, best.Round(time.Microsecond), vs)
			if enforce && mode == "joins" && best > offBest {
				fail("mixbench: X8 %s joins (%v) slower than off (%v)\n", name, best, offBest)
			}
		}
	}

	// Branch-light control: merging fires rarely, so its bookkeeping
	// must stay in the noise.
	{
		src := corpus.SyntheticVsftpd(12, 2)
		var offBest time.Duration
		for _, mode := range []string{"off", "joins"} {
			var best time.Duration
			var merges int
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				res, err := mix.AnalyzeC(src, mix.CConfig{Merge: mode})
				dur := time.Since(start)
				must(err)
				if rep == 0 || dur < best {
					best, merges = dur, res.Merges
				}
			}
			r := row{Bench: "vsftpd-12x2", Merge: mode, Workers: 1, Merges: merges, TimeNS: best.Nanoseconds()}
			vs := "-"
			if mode == "off" {
				offBest = best
			} else {
				r.Speedup = float64(offBest) / float64(best)
				vs = fmt.Sprintf("%.2fx", r.Speedup)
			}
			rows = append(rows, r)
			fmt.Fprintf(w, "vsftpd-12x2\t%s\t-\t%d\t%v\t%s\n",
				mode, merges, best.Round(time.Microsecond), vs)
			if enforce && mode == "joins" && float64(best) > float64(offBest)*1.05 {
				fail("mixbench: X8 vsftpd-12x2 joins (%v) more than 5%% slower than off (%v)\n", best, offBest)
			}
		}
	}
	w.Flush()
	writeBench("BENCH_merge.json", rows)
}

// tableX9 — compositional function summaries (DESIGN.md section 14):
// wall-clock on the shared-helper family with calls inlined, answered
// from freshly computed summaries, and answered from a disk-warm
// summary store, best of seven. Inline cost compounds per call site
// (every call re-explores its helper against an ever-larger path
// condition); summaries pay each helper's exploration once. With
// MIXBENCH_ENFORCE=1 the run exits 1 unless summaries beat inlining
// by at least 2x on every row.
func tableX9() {
	fmt.Println("X9 — function summaries: inline vs summaries vs summaries warm from disk (best of 7)")
	fmt.Println("claims: analyzing each shared helper once and instantiating its arms at call sites beats re-inlining by >=2x; a disk-warm store also skips the one-time summarization")

	type row struct {
		Bench        string  `json:"bench"`
		Mode         string  `json:"mode"`
		TimeNS       int64   `json:"time_ns"`
		Speedup      float64 `json:"speedup,omitempty"` // inline time / this time, same bench
		Computed     int     `json:"summaries_computed"`
		DiskHits     int     `json:"summary_disk_hits"`
		Instantiated int64   `json:"summary_instantiated"`
	}
	var rows []row
	w := newTab()
	fmt.Fprintln(w, "bench\tmode\tsummaries\tdisk hits\tinstantiated\ttime\tvs inline")

	const reps = 7
	enforce := os.Getenv("MIXBENCH_ENFORCE") == "1"

	for _, p := range [][2]int{{2, 3}, {2, 4}} {
		name := fmt.Sprintf("shared-%dx%d", p[0], p[1])
		src := corpus.SharedHelpers(p[0], p[1])

		// The warm-disk mode reads a store primed by an untimed run;
		// each timed rep opens a fresh Store on the directory so it
		// starts memory-cold and must load from disk.
		dir, err := os.MkdirTemp("", "mixbench-x9-")
		must(err)
		defer os.RemoveAll(dir)
		{
			cfg := mix.CConfig{Entry: "entry", Merge: "joins", MergeCap: 8,
				Summaries: true, SummaryStore: summary.NewStore(dir)}
			_, err := mix.AnalyzeC(src, cfg)
			must(err)
		}

		var inlineBest time.Duration
		var warnings string
		for _, mode := range []string{"inline", "summaries", "summaries-warm"} {
			var best time.Duration
			var r row
			for rep := 0; rep < reps; rep++ {
				cfg := mix.CConfig{Entry: "entry", Merge: "joins", MergeCap: 8}
				switch mode {
				case "summaries":
					cfg.Summaries = true
				case "summaries-warm":
					cfg.Summaries = true
					cfg.SummaryStore = summary.NewStore(dir)
				}
				start := time.Now()
				res, err := mix.AnalyzeC(src, cfg)
				dur := time.Since(start)
				must(err)
				if res.Degraded {
					must(fmt.Errorf("X9 %s %s degraded: %s", name, mode, res.FaultDetail))
				}
				got := fmt.Sprint(res.Warnings)
				if mode == "inline" && rep == 0 {
					warnings = got
				} else if got != warnings {
					must(fmt.Errorf("X9 %s %s verdict drift: %q vs %q", name, mode, got, warnings))
				}
				if rep == 0 || dur < best {
					best = dur
					r = row{Bench: name, Mode: mode, Computed: res.SummaryComputed,
						DiskHits: res.SummaryDiskHits, Instantiated: res.SummaryInstantiated}
				}
			}
			r.TimeNS = best.Nanoseconds()
			vs := "-"
			if mode == "inline" {
				inlineBest = best
			} else {
				r.Speedup = float64(inlineBest) / float64(best)
				vs = fmt.Sprintf("%.1fx", r.Speedup)
			}
			rows = append(rows, r)
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%v\t%s\n",
				name, mode, r.Computed, r.DiskHits, r.Instantiated, best.Round(time.Microsecond), vs)
			if enforce && mode != "inline" && float64(inlineBest) < 2*float64(best) {
				w.Flush()
				fmt.Fprintf(os.Stderr, "mixbench: X9 %s %s (%v) not 2x faster than inline (%v)\n",
					name, mode, best, inlineBest)
				os.Exit(1)
			}
		}
	}
	w.Flush()
	writeBench("BENCH_summaries.json", rows)
}

// tableX10 — distributed sharded exploration (DESIGN.md section 15):
// wall-clock on the unmerged ladder family with the path tree split
// into 2^depth prefix subtrees dispatched to worker processes, best
// of three per shard count. The 1-shard row pays the full coordinator
// and process-spawn overhead with zero parallelism, so it is the
// honest baseline; speedup is that row's time over each wider run.
// Verdicts must agree across every shard count (the determinism
// contract), and with MIXBENCH_ENFORCE=1 on a multi-cpu host the run
// exits 1 unless some sharded row beats 1 shard.
func tableX10() {
	fmt.Println("X10 — sharded exploration: 1 vs N worker processes on ladder (depth 2, best of 3)")
	fmt.Println("claims: prefix subtrees are independent, so worker processes scale exploration; verdicts are shard-count-invariant")

	type row struct {
		Bench   string  `json:"bench"`
		Shards  int     `json:"shards"`
		Depth   int     `json:"depth"`
		Paths   int     `json:"paths"`
		TimeNS  int64   `json:"time_ns"`
		Speedup float64 `json:"speedup,omitempty"` // 1-shard time / this time, same bench
	}
	var rows []row
	w := newTab()
	fmt.Fprintln(w, "bench\tshards\tpaths\ttime\tvs 1 shard")

	const reps = 3
	enforce := os.Getenv("MIXBENCH_ENFORCE") == "1"
	shardCounts := []int{1, 2, 4}
	sped := false

	for _, n := range []int{12, 14} {
		name := fmt.Sprintf("ladder-%d", n)
		src, envPairs := corpus.Ladder(n)
		req := cliflags.Analysis{Symbolic: true, Merge: "off", Env: envMap(envPairs)}

		var oneShard time.Duration
		var verdict string
		for _, shards := range shardCounts {
			var best time.Duration
			var r row
			for rep := 0; rep < reps; rep++ {
				opts := shard.Options{Shards: shards, Depth: 2}
				start := time.Now()
				res, err := shard.ExploreCore(src, req, opts)
				dur := time.Since(start)
				must(err)
				if res.Degraded || res.Err != nil {
					must(fmt.Errorf("X10 %s at %d shards did not complete clean: %v %s", name, shards, res.Err, res.FaultDetail))
				}
				got := fmt.Sprintf("%s %v", res.Type, res.Reports)
				if shards == shardCounts[0] && rep == 0 {
					verdict = got
				} else if got != verdict {
					must(fmt.Errorf("X10 %s verdict drift at %d shards: %q vs %q", name, shards, got, verdict))
				}
				if rep == 0 || dur < best {
					best = dur
					r = row{Bench: name, Shards: shards, Depth: 2, Paths: res.Paths}
				}
			}
			r.TimeNS = best.Nanoseconds()
			vs := "-"
			if shards == 1 {
				oneShard = best
			} else {
				r.Speedup = float64(oneShard) / float64(best)
				vs = fmt.Sprintf("%.1fx", r.Speedup)
				if r.Speedup > 1 {
					sped = true
				}
			}
			rows = append(rows, r)
			fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%s\n",
				name, shards, r.Paths, best.Round(time.Microsecond), vs)
		}
	}
	w.Flush()
	writeBench("BENCH_shard.json", rows)

	// A single-cpu host serializes the worker processes, so scaling is
	// only a claim where there is hardware to scale onto.
	if enforce {
		if runtime.NumCPU() <= 1 {
			fmt.Println("MIXBENCH_ENFORCE: single-cpu host, shard scaling not enforced")
		} else if !sped {
			fmt.Fprintln(os.Stderr, "mixbench: X10: no sharded row beat the 1-shard baseline on a multi-cpu host")
			os.Exit(1)
		} else {
			fmt.Println("MIXBENCH_ENFORCE: sharded exploration beat the 1-shard baseline: ok")
		}
	}
}

// tableX11 — fleet-wide observability (DESIGN.md section 16): what
// carrying telemetry across process boundaries costs. (a) Sharded
// ladder-10 with fleet telemetry off vs metrics vs metrics+trace —
// workers snapshot their registries into result frames and stream
// heartbeat deltas, so the metrics row prices the whole aggregation
// path; with MIXBENCH_ENFORCE=1 it may cost at most 5% over off.
// (b) The serving layer's always-on per-request observability (tenant
// RED + flight recorder) on warm verdict-cached requests through the
// full HTTP handler, flight recorder off vs on. (c) Micro rows: one
// Prometheus text-exposition render of a fleet-sized registry, and
// one worker-snapshot merge into a parent registry.
func tableX11() {
	fmt.Println("X11 — fleet observability: cross-process aggregation, serving RED + flight, scrape cost")
	fmt.Println("claims: fleet telemetry rides the existing shard frames (<=5% median paired overhead on sharded ladder-10); per-request serving obs, scrape rendering, and snapshot merging stay cheap")

	type row struct {
		Bench       string  `json:"bench"`
		Mode        string  `json:"mode,omitempty"`
		Shards      int     `json:"shards,omitempty"`
		TimeNS      int64   `json:"time_ns"`
		BaselineNS  int64   `json:"baseline_ns,omitempty"`
		OverheadPct float64 `json:"overhead_pct"`
		Events      int     `json:"events,omitempty"`
		Series      int     `json:"series,omitempty"`
		Bytes       int     `json:"bytes,omitempty"`
		NSPerOp     float64 `json:"ns_per_op,omitempty"`
	}
	var rows []row
	w := newTab()
	fmt.Fprintln(w, "bench\tmode\ttime\tvs off\tdetail")
	enforce := os.Getenv("MIXBENCH_ENFORCE") == "1"

	// (a) Cross-process aggregation on the X10 workload shape:
	// ladder-10 split across 2 worker processes at depth 2. The off row
	// spawns the same workers with telemetry disabled, so the delta is
	// exactly the fleet-obs machinery: worker-side instrumentation,
	// per-heartbeat metric deltas, final snapshot + trace splice.
	{
		src, envPairs := corpus.Ladder(10)
		req := cliflags.Analysis{Symbolic: true, Merge: "off", Env: envMap(envPairs)}
		modes := []string{"off", "metrics", "metrics+trace"}
		// Interleave the modes within each rep rather than running N
		// of one then N of the next, and gate on the *median of the
		// per-rep paired ratios* rather than a ratio of across-rep
		// minima. A sharded run spawns worker processes, so its
		// wall-clock drifts ±10% with machine load over the benchmark's
		// lifetime — far more than the few-percent delta the gate
		// measures. Within one rep the modes run back-to-back, so the
		// drift hits them equally and the paired ratio cancels it; the
		// median discards reps where a spawn hit a bad scheduling
		// window mid-pair.
		const reps = 11
		bestOf := map[string]time.Duration{}
		eventsOf := map[string]int{}
		ratios := map[string][]float64{}
		for rep := 0; rep < reps; rep++ {
			durs := map[string]time.Duration{}
			for _, mode := range modes {
				opts := shard.Options{Shards: 2, Depth: 2}
				switch mode {
				case "metrics":
					opts.Metrics = obs.NewRegistry()
				case "metrics+trace":
					opts.Metrics = obs.NewRegistry()
					opts.Tracer = obs.NewTracer(obs.TraceOptions{})
				}
				start := time.Now()
				res, err := shard.ExploreCore(src, req, opts)
				dur := time.Since(start)
				must(err)
				if res.Degraded || res.Err != nil {
					must(fmt.Errorf("X11 sharded ladder-10 (%s) did not complete clean: %v %s", mode, res.Err, res.FaultDetail))
				}
				durs[mode] = dur
				if b, ok := bestOf[mode]; !ok || dur < b {
					bestOf[mode] = dur
					if opts.Tracer != nil {
						eventsOf[mode] = len(opts.Tracer.Events())
					}
				}
			}
			for _, mode := range modes[1:] {
				ratios[mode] = append(ratios[mode],
					100*(float64(durs[mode])-float64(durs["off"]))/float64(durs["off"]))
			}
		}
		medianPct := func(v []float64) float64 {
			s := append([]float64(nil), v...)
			sort.Float64s(s)
			return s[len(s)/2]
		}
		var offNS int64
		for _, mode := range modes {
			best, events := bestOf[mode], eventsOf[mode]
			r := row{Bench: "shard-ladder-10", Mode: mode, Shards: 2, TimeNS: best.Nanoseconds(), Events: events}
			vs := "-"
			if mode == "off" {
				offNS = best.Nanoseconds()
			} else {
				r.BaselineNS = offNS
				r.OverheadPct = medianPct(ratios[mode])
				vs = fmt.Sprintf("%+.1f%%", r.OverheadPct)
			}
			rows = append(rows, r)
			detail := "-"
			if events > 0 {
				detail = fmt.Sprintf("%d events", events)
			}
			fmt.Fprintf(w, "shard-ladder-10\t%s\t%v\t%s\t%s\n",
				mode, best.Round(time.Microsecond), vs, detail)
			if mode == "metrics" && enforce && r.OverheadPct > 5 {
				w.Flush()
				fmt.Fprintf(os.Stderr,
					"mixbench: X11 fleet-obs overhead %.1f%% (median paired, %d reps) exceeds 5%% gate on sharded ladder-10 (best metrics=%v off=%v)\n",
					r.OverheadPct, reps, best, time.Duration(offNS))
				os.Exit(1)
			}
		}
		if enforce {
			fmt.Println("MIXBENCH_ENFORCE: fleet metrics aggregation within 5% of telemetry-off: ok")
		}
	}

	// (b) Per-request serving observability: warm verdict-cached
	// ladder-10 requests through the full handler. Flight-off vs on
	// isolates the recorder; the tenant RED series are charged in both
	// (they are always on — that is the point of RED).
	{
		src, envPairs := corpus.Ladder(10)
		var sreq serve.Request
		sreq.Source = src
		sreq.Symbolic = true
		sreq.Merge = "off"
		sreq.Env = envMap(envPairs)
		sreq.Tenant = "bench"
		body, err := json.Marshal(sreq)
		must(err)
		var leanNS int64
		for _, mode := range []string{"flight-off", "flight-on"} {
			fs := -1
			if mode == "flight-on" {
				fs = 0
			}
			srv := serve.New(serve.Options{FlightSize: fs})
			ts := httptest.NewServer(srv.Handler())
			post := func() {
				resp, err := http.Post(ts.URL+"/check", "application/json", bytes.NewReader(body))
				must(err)
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					must(fmt.Errorf("X11 warm request: status %d", resp.StatusCode))
				}
			}
			post() // prime the verdict cache
			const n = 256
			var best time.Duration
			for rep := 0; rep < 7; rep++ {
				start := time.Now()
				for i := 0; i < n; i++ {
					post()
				}
				d := time.Since(start) / n
				if rep == 0 || d < best {
					best = d
				}
			}
			ts.Close()
			r := row{Bench: "serve-warm-request", Mode: mode, TimeNS: best.Nanoseconds()}
			vs := "-"
			if mode == "flight-off" {
				leanNS = best.Nanoseconds()
			} else {
				r.BaselineNS = leanNS
				r.OverheadPct = 100 * (float64(best.Nanoseconds()) - float64(leanNS)) / float64(leanNS)
				vs = fmt.Sprintf("%+.1f%%", r.OverheadPct)
			}
			rows = append(rows, r)
			fmt.Fprintf(w, "serve-warm-request\t%s\t%v\t%s\t%d reqs/rep\n",
				mode, best.Round(time.Microsecond), vs, n)
		}
	}

	// (c) Prometheus exposition render of a fleet-sized registry: a few
	// dozen engine series plus 256 tenants' RED series, the shape a
	// scraper sees on a busy daemon.
	{
		reg := obs.NewRegistry()
		for i := 0; i < 48; i++ {
			reg.Counter(fmt.Sprintf("engine.counter.%02d", i)).Add(int64(i + 1))
		}
		for t := 0; t < 256; t++ {
			stem := fmt.Sprintf("serve.tenant.t%03d.", t)
			reg.Counter(stem + "requests").Add(100)
			reg.Counter(stem + "errors").Add(1)
			reg.Histogram(stem + "latency.ns").Observe(int64(t+1) << 10)
		}
		snap := reg.Snapshot()
		var buf bytes.Buffer
		must(obs.WritePromSnapshot(&buf, snap))
		nbytes := buf.Len()
		const iters = 512
		start := time.Now()
		for i := 0; i < iters; i++ {
			buf.Reset()
			must(obs.WritePromSnapshot(&buf, snap))
		}
		dur := time.Since(start)
		r := row{
			Bench: "prom-render", TimeNS: dur.Nanoseconds(),
			Series: len(snap.Metrics), Bytes: nbytes,
			NSPerOp: float64(dur.Nanoseconds()) / iters,
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "prom-render\t-\t%v\t-\t%d series, %d bytes, %.0f ns/op\n",
			dur.Round(time.Microsecond), r.Series, nbytes, r.NSPerOp)
	}

	// (d) Worker-snapshot merge: the coordinator-side cost of folding
	// one worker's final registry into the parent, at a realistic
	// worker series count.
	{
		worker := obs.NewRegistry()
		for i := 0; i < 32; i++ {
			worker.Counter(fmt.Sprintf("engine.counter.%02d", i)).Add(int64(i + 1))
			worker.Gauge(fmt.Sprintf("engine.gauge.%02d", i)).Set(int64(i))
		}
		for i := 0; i < 8; i++ {
			worker.Histogram(fmt.Sprintf("solver.hist.%02d", i)).Observe(int64(i) << 10)
		}
		snap := worker.Snapshot()
		parent := obs.NewRegistry()
		const iters = 4096
		start := time.Now()
		for i := 0; i < iters; i++ {
			parent.Merge(snap)
		}
		dur := time.Since(start)
		r := row{
			Bench: "registry-merge", TimeNS: dur.Nanoseconds(),
			Series:  len(snap.Metrics),
			NSPerOp: float64(dur.Nanoseconds()) / iters,
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "registry-merge\t-\t%v\t-\t%d series, %.0f ns/op\n",
			dur.Round(time.Microsecond), r.Series, r.NSPerOp)
	}
	w.Flush()

	writeBench("BENCH_obsfleet.json", rows)
}

// tableX12 — the CDCL search core vs the legacy chronological DPLL
// (DESIGN.md section 17). Three claims, three row families:
//
//   - hard-8x4: a satisfiable stalled or-chain prefix (every clause
//     needs two decisions before it propagates) conjoined per query
//     with a child-local contradiction. Chronological DPLL re-refutes
//     the contradiction once per busy-prefix assignment — exponential
//     in the prefix length — while CDCL's first conflict learns a unit
//     clause over the contradiction and backjumps to level 0. The
//     cdcl+assume mode additionally solves the four children on one
//     warm solver via the assumption stack, the way the engine pool
//     asserts forked path conditions, so the shared prefix is encoded
//     once instead of four times.
//   - ladder-N: the propagation-friendly workload the seed's DPLL was
//     already good at, run through the full mix pipeline under each
//     -solver setting. The core swap must not tax it.
//   - vsftpd-12x2: the branch-light MIXY fixpoint workload, same
//     contract.
//
// With MIXBENCH_ENFORCE=1 the run exits 1 unless cdcl+assume beats
// dpll by at least 2x on the hard family, and whenever default cdcl is
// more than 5% slower than dpll on a ladder/vsftpd row. Rows land in
// BENCH_cdcl.json.
func tableX12() {
	fmt.Println("X12 — CDCL core: learned clauses, incremental assumptions, portfolio racing")
	fmt.Println("claims: conflict learning collapses the hard family; warm assumption reuse beats re-encoding; the core swap does not tax easy workloads")

	type row struct {
		Bench     string `json:"bench"`
		Mode      string `json:"mode"`
		TimeNS    int64  `json:"time_ns"`
		Queries   int    `json:"queries"`
		Decisions int    `json:"decisions"`
		Conflicts int    `json:"conflicts"`
		Learned   int    `json:"learned"`
		Paths     int    `json:"paths,omitempty"`
	}
	var rows []row
	w := newTab()
	fmt.Fprintln(w, "bench\tmode\tqueries\tdecisions\tconflicts\tlearned\ttime")
	const reps = 7
	enforce := os.Getenv("MIXBENCH_ENFORCE") == "1"
	best := map[string]time.Duration{} // "bench/mode" -> best wall clock

	// The hard family: busy or-chain prefix (shared by every child)
	// plus one contradiction per child over child-local variables.
	const busyN, children = 8, 4
	bv := func(p string, i int) solver.Formula {
		return solver.BoolVar{Name: p + string(rune('a'+i%26)) + string(rune('0'+i/26))}
	}
	prefix := []solver.Formula{solver.Disj(bv("y", 0), bv("z", 0), bv("w", 0))}
	for i := 1; i <= busyN; i++ {
		prefix = append(prefix, solver.Disj(
			solver.NewNot(bv("w", i-1)), bv("y", i), bv("z", i), bv("w", i)))
	}
	contra := func(child int) solver.Formula {
		a, b := bv("ca", child), bv("cb", child)
		return solver.Conj(
			solver.NewOr(a, b),
			solver.NewOr(a, solver.NewNot(b)),
			solver.NewOr(solver.NewNot(a), b),
			solver.NewOr(solver.NewNot(a), solver.NewNot(b)),
		)
	}
	mkSolver := func(algo solver.Algo) *solver.Solver {
		s := solver.New()
		s.Algo = algo
		s.MaxDecisions = 1 << 26 // room for DPLL's exponential refutations
		return s
	}
	hardBench := fmt.Sprintf("hard-%dx%d", busyN, children)
	record := func(bench, mode string, r row, dur time.Duration) {
		key := bench + "/" + mode
		if b, ok := best[key]; !ok || dur < b {
			best[key] = dur
		}
		if dur == best[key] {
			r.Bench, r.Mode, r.TimeNS = bench, mode, dur.Nanoseconds()
			replaced := false
			for i := range rows {
				if rows[i].Bench == bench && rows[i].Mode == mode {
					rows[i], replaced = r, true
				}
			}
			if !replaced {
				rows = append(rows, r)
			}
		}
	}
	hardModes := []struct {
		mode string
		algo solver.Algo
		warm bool // one solver + assumption stack across children
	}{
		{"dpll", solver.AlgoDPLL, false},
		{"cdcl", solver.AlgoCDCL, false},
		{"cdcl+assume", solver.AlgoCDCL, true},
		{"portfolio", solver.AlgoPortfolio, false},
	}
	// Reps are the outer loop everywhere in this table: interleaving
	// the modes keeps slow drift (CPU frequency, heap growth) from
	// biasing whichever mode happens to run last.
	for rep := 0; rep < reps; rep++ {
		for _, m := range hardModes {
			var stats solver.Stats
			start := time.Now()
			if m.warm {
				s := mkSolver(m.algo)
				for child := 0; child < children; child++ {
					sat, err := s.SatAssuming(append(append([]solver.Formula{}, prefix...), contra(child))...)
					must(err)
					if sat {
						must(fmt.Errorf("hard family child %d: want unsat", child))
					}
				}
				stats = s.Stats
			} else {
				for child := 0; child < children; child++ {
					s := mkSolver(m.algo)
					sat, err := s.Sat(solver.Conj(append(append([]solver.Formula{}, prefix...), contra(child))...))
					must(err)
					if sat {
						must(fmt.Errorf("hard family child %d: want unsat", child))
					}
					stats.Decisions += s.Stats.Decisions
					stats.Conflicts += s.Stats.Conflicts
					stats.LearnedClauses += s.Stats.LearnedClauses
				}
			}
			record(hardBench, m.mode, row{
				Queries: children, Decisions: stats.Decisions,
				Conflicts: stats.Conflicts, Learned: stats.LearnedClauses,
			}, time.Since(start))
		}
	}

	// The easy workloads through the full pipeline: the regression
	// guard for making CDCL the default core.
	easyModes := []string{"dpll", "cdcl", "portfolio"}
	for _, n := range []int{10, 12} {
		src, envPairs := corpus.Ladder(n)
		env := envMap(envPairs)
		for rep := 0; rep < reps; rep++ {
			for _, mode := range easyModes {
				start := time.Now()
				res := mix.Check(src, mix.Config{
					Mode: mix.StartSymbolic, Env: env, Workers: 1, Solver: mode,
				})
				must(res.Err)
				record(fmt.Sprintf("ladder-%d", n), mode, row{
					Queries: res.SolverQueries, Paths: res.Paths,
				}, time.Since(start))
			}
		}
	}
	vsftpdSrc := corpus.SyntheticVsftpd(12, 2)
	for rep := 0; rep < reps; rep++ {
		for _, mode := range easyModes {
			start := time.Now()
			res, err := mix.AnalyzeC(vsftpdSrc, mix.CConfig{Solver: mode})
			must(err)
			_ = res
			record("vsftpd-12x2", mode, row{}, time.Since(start))
		}
	}

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bench != rows[j].Bench {
			return rows[i].Bench < rows[j].Bench
		}
		return rows[i].Mode < rows[j].Mode
	})
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%v\n",
			r.Bench, r.Mode, r.Queries, r.Decisions, r.Conflicts, r.Learned,
			time.Duration(r.TimeNS).Round(time.Microsecond))
	}
	w.Flush()

	writeBench("BENCH_cdcl.json", rows)

	if enforce {
		fail := false
		dpllHard, assumeHard := best[hardBench+"/dpll"], best[hardBench+"/cdcl+assume"]
		if assumeHard*2 > dpllHard {
			fmt.Fprintf(os.Stderr, "MIXBENCH_ENFORCE: cdcl+assume (%v) is not 2x faster than dpll (%v) on %s\n",
				assumeHard, dpllHard, hardBench)
			fail = true
		} else {
			fmt.Printf("MIXBENCH_ENFORCE: cdcl+assume %.1fx faster than dpll on %s: ok\n",
				float64(dpllHard)/float64(assumeHard), hardBench)
		}
		for _, bench := range []string{"ladder-10", "ladder-12", "vsftpd-12x2"} {
			d, c := best[bench+"/dpll"], best[bench+"/cdcl"]
			if float64(c) > float64(d)*1.05 {
				fmt.Fprintf(os.Stderr, "MIXBENCH_ENFORCE: cdcl (%v) regresses %s by more than 5%% over dpll (%v)\n",
					c, bench, d)
				fail = true
			}
		}
		if fail {
			os.Exit(1)
		}
		fmt.Println("MIXBENCH_ENFORCE: cdcl within 5% of dpll on every easy row: ok")
	}
}
