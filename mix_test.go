package mix

import (
	"os"
	"strings"
	"testing"

	"mix/internal/corpus"
)

func TestCheckWellTyped(t *testing.T) {
	res := Check("let x = 1 in x + 2", Config{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Type != "int" {
		t.Fatalf("Type = %q", res.Type)
	}
}

func TestCheckIllTyped(t *testing.T) {
	res := Check("1 + true", Config{})
	if res.Err == nil {
		t.Fatal("expected error")
	}
}

func TestCheckParseError(t *testing.T) {
	res := Check("let x =", Config{})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "syntax error") {
		t.Fatalf("got %v", res.Err)
	}
}

func TestCheckHeadline(t *testing.T) {
	// The headline example: a dead ill-typed branch is accepted under
	// MIX and rejected by pure typing.
	src := "{s if true then {t 5 t} else {t 1 + true t} s}"
	res := Check(src, Config{})
	if res.Err != nil {
		t.Fatalf("MIX should accept: %v", res.Err)
	}
	stripped := "if true then 5 else 1 + true"
	res2 := Check(stripped, Config{})
	if res2.Err == nil {
		t.Fatal("pure typing should reject")
	}
}

func TestCheckEnvAndModes(t *testing.T) {
	res := Check("if b then 1 else 2", Config{
		Mode: StartSymbolic,
		Env:  map[string]string{"b": "bool"},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Paths != 2 {
		t.Fatalf("Paths = %d, want 2", res.Paths)
	}
	if res.SolverQueries == 0 {
		t.Fatal("expected solver queries in symbolic mode")
	}
	// Deferred conditionals: one path.
	res = Check("if b then 1 else 2", Config{
		Mode: StartSymbolic, DeferConditionals: true,
		Env: map[string]string{"b": "bool"},
	})
	if res.Err != nil || res.Paths != 1 {
		t.Fatalf("defer: %+v", res)
	}
}

func TestCheckRefEnv(t *testing.T) {
	res := Check("!r + 1", Config{
		Mode: StartSymbolic,
		Env:  map[string]string{"r": "int ref"},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Type != "int" {
		t.Fatalf("Type = %q", res.Type)
	}
	res = Check("x", Config{Env: map[string]string{"x": "float"}})
	if res.Err == nil {
		t.Fatal("unknown env type should error")
	}
}

func TestCheckReportsDiscarded(t *testing.T) {
	src := "{s if x = x then {t 1 t} else {t 1 + true t} s}"
	res := Check(src, Config{Env: map[string]string{"x": "int"}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	found := false
	for _, r := range res.Reports {
		if strings.Contains(r, "discarded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a discarded report, got %v", res.Reports)
	}
}

func TestAnalyzeCCases(t *testing.T) {
	for _, c := range corpus.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			base, err := AnalyzeC(c.Source, CConfig{PureTypes: true})
			if err != nil {
				t.Fatal(err)
			}
			mixed, err := AnalyzeC(c.Source, CConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if len(mixed.Warnings) >= len(base.Warnings) && c.Name != corpus.Case4.Name {
				t.Fatalf("MIXY should reduce warnings: base %v, mixed %v",
					base.Warnings, mixed.Warnings)
			}
		})
	}
}

func TestAnalyzeCParseError(t *testing.T) {
	if _, err := AnalyzeC("int f(", CConfig{}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTestdataFiles(t *testing.T) {
	mixFiles := map[string]map[string]string{
		"testdata/unreachable.mix": nil,
		"testdata/signs.mix":       {"x": "int"},
		"testdata/div.mix":         nil,
	}
	for path, env := range mixFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		res := Check(string(src), Config{Env: env})
		if res.Err != nil {
			t.Errorf("%s: %v", path, res.Err)
		}
	}
	src, err := os.ReadFile("testdata/case1.mc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeC(string(src), CConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("case1.mc should be clean under MIXY: %v", res.Warnings)
	}
	pure, err := AnalyzeC(string(src), CConfig{PureTypes: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pure.Warnings) == 0 {
		t.Error("case1.mc should warn under pure inference")
	}
}

func TestAnalyzeCStats(t *testing.T) {
	res, err := AnalyzeC(corpus.SyntheticVsftpd(6, 2), CConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksAnalyzed == 0 || res.FixpointIters == 0 {
		t.Fatalf("stats not populated: %+v", res)
	}
}
