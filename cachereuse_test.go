package mix

import (
	"fmt"
	"testing"

	"mix/internal/corpus"
	"mix/internal/engine"
)

// reuseSrc has type errors on infeasible paths guarded by two-variable
// inequalities: the report-feasibility checks escape the interval fast
// path and exercise the memo, so a warm rerun can actually hit it.
const reuseSrc = `{s if x < y then (if y < x then {t 1 + true t} else 1)
	else (if y < x then 2 else (if x < y then {t 1 + true t} else 3)) s}`

var reuseEnv = map[string]string{"x": "int", "y": "int"}

// verdictKey flattens everything verdict-bearing about a Result —
// type, error, findings, and path/merge counts — leaving out the
// cache/timing statistics that legitimately differ warm vs cold.
func verdictKey(r Result) string {
	errs := ""
	if r.Err != nil {
		errs = r.Err.Error()
	}
	return fmt.Sprintf("type=%q err=%q reports=%q paths=%d merges=%d degraded=%v fault=%q",
		r.Type, errs, r.Reports, r.Paths, r.Merges, r.Degraded, r.Fault)
}

func cVerdictKey(r CResult) string {
	return fmt.Sprintf("warnings=%q merges=%d degraded=%v fault=%q",
		r.Warnings, r.Merges, r.Degraded, r.Fault)
}

// TestCheckCacheReuse pins the warm-serving contract on the core
// language: two back-to-back checks sharing an engine.Cache return
// byte-identical verdicts to a cold check, and the second run's memo
// hit counter strictly increases (it answered from the shared cache).
func TestCheckCacheReuse(t *testing.T) {
	mkCfg := func(c *engine.Cache) Config {
		return Config{Mode: StartSymbolic, Env: reuseEnv, Workers: 2, Cache: c}
	}

	cold := Check(reuseSrc, Config{Mode: StartSymbolic, Env: reuseEnv, Workers: 2})
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.MemoMisses == 0 {
		t.Fatalf("cold run has no memo traffic (misses=0); the corpus no longer exercises the cache")
	}

	cache := engine.NewCache(engine.CacheOptions{})
	first := Check(reuseSrc, mkCfg(cache))
	second := Check(reuseSrc, mkCfg(cache))

	if got, want := verdictKey(first), verdictKey(cold); got != want {
		t.Fatalf("first shared-cache run diverged from cold:\n got %s\nwant %s", got, want)
	}
	if got, want := verdictKey(second), verdictKey(cold); got != want {
		t.Fatalf("warm shared-cache run diverged from cold:\n got %s\nwant %s", got, want)
	}
	if second.MemoHits <= first.MemoHits {
		t.Fatalf("warm MemoHits = %d, want strictly more than first run's %d",
			second.MemoHits, first.MemoHits)
	}
	cs := cache.Stats()
	if cs.MemoHits == 0 || cs.MemoEntries == 0 {
		t.Fatalf("cache lifetime stats = %+v, want hits and entries after two runs", cs)
	}
}

// TestAnalyzeCCacheReuse is the MicroC twin: a shared cache across two
// AnalyzeC runs leaves warnings byte-identical and strictly increases
// the combined memo+counterexample hit count.
func TestAnalyzeCCacheReuse(t *testing.T) {
	src, entry := corpus.VsftpdMini.Source, corpus.VsftpdMini.Entry
	mkCfg := func(c *engine.Cache) CConfig {
		return CConfig{Workers: 2, Entry: entry, Cache: c}
	}

	cold, err := AnalyzeC(src, CConfig{Workers: 2, Entry: entry})
	if err != nil {
		t.Fatal(err)
	}
	if cold.MemoMisses == 0 {
		t.Fatalf("cold run has no memo traffic (misses=0); the corpus no longer exercises the cache")
	}

	cache := engine.NewCache(engine.CacheOptions{})
	first, err := AnalyzeC(src, mkCfg(cache))
	if err != nil {
		t.Fatal(err)
	}
	second, err := AnalyzeC(src, mkCfg(cache))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := cVerdictKey(first), cVerdictKey(cold); got != want {
		t.Fatalf("first shared-cache run diverged from cold:\n got %s\nwant %s", got, want)
	}
	if got, want := cVerdictKey(second), cVerdictKey(cold); got != want {
		t.Fatalf("warm shared-cache run diverged from cold:\n got %s\nwant %s", got, want)
	}
	if second.MemoHits+second.CexHits <= first.MemoHits+first.CexHits {
		t.Fatalf("warm memo+cex hits = %d+%d, want strictly more than first run's %d+%d",
			second.MemoHits, second.CexHits, first.MemoHits, first.CexHits)
	}
}
