// Idioms: all Section 2 motivating examples, checked with pure type
// checking (on the block-stripped program) and with MIX.
//
// Run with: go run ./examples/idioms
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"mix"
	"mix/internal/corpus"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "idiom\tpure types\tMIX\tpaper")
	for _, idiom := range corpus.CoreIdioms {
		env := map[string]string{}
		for _, p := range idiom.Env {
			env[p[0]] = p[1]
		}
		pure := mix.Check(idiom.Stripped, mix.Config{Env: env})
		mixed := mix.Check(idiom.Source, mix.Config{Env: env})
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n",
			idiom.Name, verdict(pure.Err), verdict(mixed.Err), idiom.Paper)
	}
	w.Flush()

	fmt.Println("\nDetails of one idiom (unreachable code):")
	idiom := corpus.CoreIdioms[0]
	fmt.Println("  annotated:", idiom.Source)
	fmt.Println("  stripped :", idiom.Stripped)
	pure := mix.Check(idiom.Stripped, mix.Config{})
	fmt.Println("  pure     :", pure.Err)
	mixed := mix.Check(idiom.Source, mix.Config{})
	fmt.Println("  MIX      : accepts with type", mixed.Type)
}

func verdict(err error) string {
	if err == nil {
		return "accepts"
	}
	return "REJECTS"
}
