// Quickstart: check a program with MIX via the public API.
//
// The program reuses the paper's headline idea: a symbolic block
// proves the ill-typed else-branch dead, so the mixed analysis accepts
// a program the pure type checker rejects.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"mix"
)

func main() {
	// {s ... s} is a symbolic block, {t ... t} a typed block.
	src := `{s if true then {t 5 t} else {t 1 + true t} s}`

	fmt.Println("program:", src)

	// The pure type checker sees both branches and rejects.
	pure := mix.Check("if true then 5 else 1 + true", mix.Config{})
	fmt.Println("pure type checking:", pure.Err)

	// MIX symbolically executes the block: the else path's condition
	// folds to false, the typed blocks check the live leaves.
	mixed := mix.Check(src, mix.Config{})
	if mixed.Err != nil {
		fmt.Println("unexpected:", mixed.Err)
		return
	}
	fmt.Println("mixed analysis: accepts with type", mixed.Type)

	// Symbolic variables from the environment work too; infeasible
	// error paths are discarded and reported for transparency.
	src2 := `{s if x = x then {t 1 t} else {t 1 + true t} s}`
	res := mix.Check(src2, mix.Config{Env: map[string]string{"x": "int"}})
	fmt.Println("\nprogram:", src2)
	fmt.Println("mixed analysis: accepts with type", res.Type)
	for _, r := range res.Reports {
		fmt.Println("  report:", r)
	}
	fmt.Printf("  (%d paths, %d solver queries)\n", res.Paths, res.SolverQueries)
}
