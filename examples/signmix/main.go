// Signmix: a second instantiation of MIX — the paper's Section 2
// sign-qualifier system (pos/zero/neg/unknown int) mixed with the very
// same symbolic executor used by the core system.
//
// This mechanizes the paper's "Local Refinements of Data" example and
// its closing claim that the mix approach applies to "many different
// combinations of many different analyses": only the boundary
// translations differ, and they are richer here — signs enter symbolic
// blocks as path constraints (x : pos int becomes α > 0), and
// sign-block results come back as constraints on fresh variables.
//
// Run with: go run ./examples/signmix
package main

import (
	"fmt"

	"mix/internal/lang"
	"mix/internal/signs"
)

func report(m *signs.Mixer, src string, env *signs.Env) {
	fmt.Println("program:", src)
	ty, err := m.Check(env, lang.MustParse(src))
	if err != nil {
		fmt.Println("  rejected:", err)
	} else {
		fmt.Println("  accepted:", ty)
	}
	for _, r := range m.Reports {
		fmt.Println("  report  :", r)
	}
	fmt.Println()
}

func main() {
	// 1. The pure sign table loses precision on pos + neg; the
	// symbolic block recovers it with the solver.
	env := signs.EmptyEnv().Extend("b", signs.Bool)
	var pure signs.Checker
	ty, _ := pure.Check(env, lang.MustParse("if b then 1 + -1 else 0"))
	fmt.Printf("pure sign table:   if b then 1 + -1 else 0  :  %s\n", ty)
	m := signs.NewMixer()
	ty, _ = m.Check(env, lang.MustParse("{s if b then 1 + -1 else 0 s}"))
	fmt.Printf("mixed analysis:    {s ... s}                :  %s\n\n", ty)

	// 2. The paper's refinement example: a symbolic split on the sign
	// of an unknown integer, with sign blocks per arm seeing x at the
	// refined sign.
	env = signs.EmptyEnv().Extend("x", signs.Int(signs.Top))
	report(signs.NewMixer(),
		"{s if 0 < x then {t x t} else (if x = 0 then {t 1 t} else {t 2 t}) s}",
		env)

	// 3. Sign constraints flow INTO symbolic blocks: x : pos int
	// enters as α with α > 0, so x + -1 is provably positive whenever
	// the path knows 1 < x.
	env = signs.EmptyEnv().Extend("x", signs.Int(signs.Pos))
	report(signs.NewMixer(), "{s if 1 < x then x + -1 + 1 else x s}", env)

	// 4. Sign-block results flow back OUT as constraints: {t 5 t} is
	// pos, making the y = 0 branch — which contains a shape error —
	// provably dead.
	env = signs.EmptyEnv()
	report(signs.NewMixer(),
		"{s let y = {t 5 t} in if y = 0 then (1 + true) else 7 s}",
		env)
}
