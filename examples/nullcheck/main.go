// Nullcheck: reproduce the paper's Section 4.5 case study with MIXY.
//
// For each of the four vsftpd cases, run the baseline (pure null/
// nonnull type qualifier inference, which false-positives) and MIXY
// with the MIX(typed)/MIX(symbolic) annotations (which does not).
//
// Run with: go run ./examples/nullcheck
package main

import (
	"fmt"

	"mix"
	"mix/internal/corpus"
)

func main() {
	for _, c := range corpus.Cases {
		fmt.Printf("=== %s ===\n", c.Name)
		fmt.Println("paper:", c.Paper)

		var baseline mix.CResult
		var err error
		if c.Name == corpus.Case4.Name {
			// Case 4's baseline is the symbolic executor without the
			// typed block: it fails on the function pointer.
			baseline, err = mix.AnalyzeC(corpus.Case4NoTyped.Source, mix.CConfig{})
		} else {
			baseline, err = mix.AnalyzeC(c.Source, mix.CConfig{PureTypes: true})
		}
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("baseline: %d warning(s)\n", len(baseline.Warnings))
		for _, w := range baseline.Warnings {
			fmt.Println("  ", w)
		}

		mixed, err := mix.AnalyzeC(c.Source, mix.CConfig{})
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("MIXY:     %d warning(s)", len(mixed.Warnings))
		for _, w := range mixed.Warnings {
			fmt.Println("\n  ", w)
		}
		fmt.Printf("  [%d symbolic block(s) analyzed, %d fixpoint iteration(s), %d solver queries]\n\n",
			mixed.BlocksAnalyzed, mixed.FixpointIters, mixed.SolverQueries)
	}
}
