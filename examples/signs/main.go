// Signs: the paper's "Local Refinements of Data" example (Section 2).
//
// A symbolic block splits on the sign of an unknown integer; each arm
// is a typed block analyzed under the refinement. The mix rule
// TSYMBLOCK then checks the three path conditions are exhaustive —
// x > 0 has no < in the core language, so we use the equality-based
// trichotomy x = 0 | x = 1 | otherwise, plus a deliberately
// non-exhaustive variant to show the sound/unsound distinction.
//
// Run with: go run ./examples/signs
package main

import (
	"fmt"

	"mix"
)

func main() {
	env := map[string]string{"x": "int"}

	// Exhaustive split: each arm is typed under its refinement.
	exhaustive := `{s
	  if x = 0 then {t 100 t}
	  else (if x = 1 then {t 101 t}
	  else {t 102 t})
	s}`
	res := mix.Check(exhaustive, mix.Config{Env: env})
	fmt.Println("exhaustive three-way split:")
	if res.Err != nil {
		fmt.Println("  rejected:", res.Err)
	} else {
		fmt.Printf("  accepted : %s (%d paths, %d solver queries)\n",
			res.Type, res.Paths, res.SolverQueries)
	}

	// The refinement is real: inside the x = 0 arm the symbolic state
	// knows x, so code dividing by cases can exploit it. Here the arm
	// guarded by x = 0 uses x where an ill-typed use would occur for
	// other values — the guard makes the bad path infeasible.
	refined := `{s if x = 0 then (if x = 1 then {t 1 + true t} else {t 7 t}) else {t 8 t} s}`
	res = mix.Check(refined, mix.Config{Env: env})
	fmt.Println("\nrefinement proves nested branch dead (x=0 && x=1 unsat):")
	if res.Err != nil {
		fmt.Println("  rejected:", res.Err)
	} else {
		fmt.Printf("  accepted : %s\n", res.Type)
		for _, r := range res.Reports {
			fmt.Println("  report  :", r)
		}
	}

	// Branch arms of different types are caught by the mix rule even
	// when each arm alone is fine.
	disagree := `{s if x = 0 then {t 1 t} else {t true t} s}`
	res = mix.Check(disagree, mix.Config{Env: env})
	fmt.Println("\narms of different types:")
	fmt.Println("  rejected:", res.Err)
}
