package mix

import (
	"strings"
	"testing"
	"time"
)

// TestConfigValidate pins the descriptive-error contract the serving
// daemon relies on for 400 responses: every inconsistent option names
// the field and what a valid value looks like.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" = valid
	}{
		{"zero value", Config{}, ""},
		{"engine on", Config{Workers: 4, MaxPaths: 100, Merge: "joins"}, ""},
		{"bad mode", Config{Mode: Mode(7)}, "unknown Mode"},
		{"negative workers", Config{Workers: -1}, "negative Workers"},
		{"negative paths", Config{MaxPaths: -5}, "negative MaxPaths"},
		{"negative deadline", Config{Deadline: -time.Second}, "negative Deadline"},
		{"negative solver timeout", Config{SolverTimeout: -1}, "negative SolverTimeout"},
		{"bad merge", Config{Merge: "sometimes"}, `bad Merge mode "sometimes"`},
		{"nomemo without engine", Config{NoMemo: true}, "NoMemo set with zero Workers"},
		{"nomemo with engine", Config{NoMemo: true, Workers: 1}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCConfigValidate is the MicroC-side twin of TestConfigValidate.
func TestCConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  CConfig
		want string
	}{
		{"zero value", CConfig{}, ""},
		{"merge with cap", CConfig{Merge: "joins", MergeCap: 4}, ""},
		{"negative workers", CConfig{Workers: -2}, "negative Workers"},
		{"negative deadline", CConfig{Deadline: -1}, "negative Deadline"},
		{"negative solver timeout", CConfig{SolverTimeout: -time.Millisecond}, "negative SolverTimeout"},
		{"negative merge cap", CConfig{MergeCap: -1}, "negative MergeCap"},
		{"cap without merge", CConfig{MergeCap: 4}, "MergeCap 4 set without a Merge mode"},
		{"bad merge", CConfig{Merge: "never"}, `bad Merge mode "never"`},
		{"nomemo without engine", CConfig{NoMemo: true}, "NoMemo set with zero Workers"},
		{"nomemo with engine", CConfig{NoMemo: true, Workers: 1}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCheckRejectsInvalidConfig pins that Check surfaces validation
// errors on Result.Err instead of silently clamping.
func TestCheckRejectsInvalidConfig(t *testing.T) {
	res := Check("{s 1 + 2 s}", Config{Workers: -1})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "negative Workers") {
		t.Fatalf("Check with Workers=-1: Err = %v, want negative-Workers error", res.Err)
	}
	if _, err := AnalyzeC("int main() { return 0; }", CConfig{MergeCap: 3}); err == nil ||
		!strings.Contains(err.Error(), "without a Merge mode") {
		t.Fatalf("AnalyzeC with orphan MergeCap: err = %v, want merge-cap error", err)
	}
}
