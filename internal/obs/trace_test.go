package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	if tr.Deterministic() || tr.Now() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must read zero")
	}
	s := tr.Root("f")
	if s != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	s.Fork(2)
	s.Join()
	s.Solve("sat", 10)
	s.Stage("dpll", "sat", 10)
	s.MemoHit()
	s.CexHit()
	s.Degrade("timeout", "x")
	s.Emit(Event{Kind: KindIter})
	if c := s.Child(); c != nil {
		t.Fatal("nil span child must be nil")
	}
	if s.Path() != "" {
		t.Fatal("nil span path must be empty")
	}
	if evs := tr.Events(); evs != nil {
		t.Fatal("nil tracer events must be nil")
	}
}

// walk explores a binary tree of the given depth, emitting the same
// fork/solve/join shape regardless of scheduling, optionally fanning
// children out across goroutines.
func walk(s *Span, depth int, parallel bool) {
	if depth == 0 {
		s.Solve("sat", 0)
		return
	}
	s.Fork(2)
	l, r := s.Child(), s.Child()
	if parallel {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); walk(l, depth-1, true) }()
		go func() { defer wg.Done(); walk(r, depth-1, true) }()
		wg.Wait()
	} else {
		walk(l, depth-1, false)
		walk(r, depth-1, false)
	}
	s.Join()
}

func deterministicTrace(t *testing.T, parallel bool) string {
	t.Helper()
	tr := NewTracer(TraceOptions{Deterministic: true})
	walk(tr.Root("main"), 5, parallel)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDeterministicTraceScheduleIndependent(t *testing.T) {
	seq := deterministicTrace(t, false)
	for i := 0; i < 5; i++ {
		if par := deterministicTrace(t, true); par != seq {
			t.Fatalf("deterministic trace differs between sequential and parallel walks:\nseq:\n%s\npar:\n%s", seq, par)
		}
	}
}

func TestDeterministicTraceShape(t *testing.T) {
	tr := NewTracer(TraceOptions{Deterministic: true})
	root := tr.Root("main")
	root.Fork(2)
	l, r := root.Child(), root.Child()
	l.Solve("sat", 0)
	r.Degrade("timeout", "truncated")
	root.Join()

	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	// Subtree order: root events (pseq order), then child ".0", then ".1".
	wantPaths := []string{"r00000", "r00000", "r00000", "r00000.0", "r00000.1"}
	wantKinds := []string{KindRoot, KindFork, KindJoin, KindSolve, KindDegrade}
	for i, e := range evs {
		if e.Path != wantPaths[i] || e.Kind != wantKinds[i] {
			t.Fatalf("event %d = {path %q kind %q}, want {path %q kind %q}", i, e.Path, e.Kind, wantPaths[i], wantKinds[i])
		}
		if e.Seq != int64(i) {
			t.Fatalf("event %d seq = %d, want %d (renumbered)", i, e.Seq, i)
		}
		if e.TNs != 0 || e.DurNs != 0 {
			t.Fatalf("deterministic event %d carries wall clock: %+v", i, e)
		}
	}
	if evs[3].Parent != "r00000" || evs[4].Parent != "r00000" {
		t.Fatalf("child parent links wrong: %+v", evs[3:])
	}
}

func TestDeterministicModeSuppressesScheduleDependentKinds(t *testing.T) {
	tr := NewTracer(TraceOptions{Deterministic: true})
	s := tr.Root("f")
	s.MemoHit()
	s.CexHit()
	s.Stage("dpll", "sat", 100)
	s.Solve("sat", 0)
	for _, e := range tr.Events() {
		switch e.Kind {
		case KindMemoHit, KindCexHit, KindStage:
			t.Fatalf("schedule-dependent kind %q leaked into deterministic trace", e.Kind)
		}
	}
}

func TestTimingModeRecordsClockAndStages(t *testing.T) {
	tr := NewTracer(TraceOptions{})
	s := tr.Root("f")
	s.Stage("dpll", "sat", 1234)
	s.MemoHit()
	s.Solve("sat", 5678)
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	var sawStage, sawMemo bool
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("timing events must sort by emit seq, got %d at %d", e.Seq, i)
		}
		switch e.Kind {
		case KindStage:
			sawStage = true
			if e.DurNs != 1234 || e.Detail != "dpll" {
				t.Fatalf("stage event wrong: %+v", e)
			}
		case KindMemoHit:
			sawMemo = true
		}
	}
	if !sawStage || !sawMemo {
		t.Fatal("timing mode must record stage and memo-hit events")
	}
	if tr.Now() <= 0 {
		t.Fatal("timing-mode Now must advance")
	}
}

func TestRingOverwriteKeepsTailAndCountsDropped(t *testing.T) {
	tr := NewTracer(TraceOptions{Cap: 1}) // clamps to 64 per shard
	s := tr.Root("f")
	const n = 200
	for i := 0; i < n; i++ {
		s.Solve("sat", 0)
	}
	if tr.Dropped() == 0 {
		t.Fatal("ring wrap must count dropped events")
	}
	evs := tr.Events()
	// The tail must survive: the last emitted event has pseq n (root
	// event was pseq 0).
	last := evs[len(evs)-1]
	if last.PSeq != n {
		t.Fatalf("tail lost: last pseq = %d, want %d", last.PSeq, n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(TraceOptions{Deterministic: true})
	walk(tr.Root("main"), 3, false)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var parsed []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		parsed = append(parsed, e)
	}
	want := tr.Events()
	if len(parsed) != len(want) {
		t.Fatalf("round trip lost events: %d vs %d", len(parsed), len(want))
	}
	for i := range parsed {
		if parsed[i] != want[i] {
			t.Fatalf("event %d round-trip mismatch: %+v vs %+v", i, parsed[i], want[i])
		}
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer(TraceOptions{Deterministic: true})
	walk(tr.Root("main"), 2, false)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome output empty")
	}
	for _, e := range doc.TraceEvents {
		for _, field := range []string{"name", "cat", "ph", "pid", "tid", "ts"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("chrome event missing %q: %v", field, e)
			}
		}
		if e["ph"] != "i" {
			t.Fatalf("deterministic trace must emit instant events, got ph=%v", e["ph"])
		}
	}

	// Timing mode with durations produces complete ("X") slices.
	tr2 := NewTracer(TraceOptions{})
	s := tr2.Root("f")
	s.Solve("sat", 5000)
	buf.Reset()
	if err := tr2.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"X"`) {
		t.Fatalf("timed trace must contain complete events: %s", buf.String())
	}
}
