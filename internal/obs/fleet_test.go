package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The fleet suite pins the primitives cross-process aggregation is
// built on: Delta's edge cases (the heartbeat protocol's unit),
// Merge's commutativity (the coordinator folds worker registries in
// whatever order results land), and the Prometheus exposition
// rendering.

func TestDeltaMetricOnlyInNewerPassesThrough(t *testing.T) {
	r := NewRegistry()
	prev := r.Snapshot()
	r.Counter("born.counter").Add(4)
	r.Histogram("born.hist").Observe(100)
	r.Gauge("born.gauge").Set(9)
	d := r.Snapshot().Delta(prev)
	byName := map[string]Metric{}
	for _, m := range d.Metrics {
		byName[m.Name] = m
	}
	if m := byName["born.counter"]; m.Value != 4 {
		t.Fatalf("counter new in the window = %+v, want value 4", m)
	}
	if m := byName["born.hist"]; m.Count != 1 || m.Sum != 100 {
		t.Fatalf("histogram new in the window = %+v, want count 1 sum 100", m)
	}
	if m := byName["born.gauge"]; m.Value != 9 {
		t.Fatalf("gauge new in the window = %+v, want value 9", m)
	}
}

func TestDeltaMetricOnlyInOlderIsAbsent(t *testing.T) {
	r := NewRegistry()
	r.Counter("doomed.counter").Add(4)
	r.Histogram("doomed.hist").Observe(100)
	prev := r.Snapshot()
	if n := r.RemovePrefix("doomed."); n != 2 {
		t.Fatalf("RemovePrefix removed %d, want 2", n)
	}
	r.Counter("alive").Inc()
	d := r.Snapshot().Delta(prev)
	if len(d.Metrics) != 1 || d.Metrics[0].Name != "alive" {
		t.Fatalf("delta after eviction = %+v, want only the live counter", d.Metrics)
	}
}

func TestDeltaHistogramBucketwise(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(10)   // bucket 0
	h.Observe(2000) // bucket 3
	prev := r.Snapshot()
	h.Observe(10)  // bucket 0 again
	h.Observe(300) // bucket 1
	d := r.Snapshot().Delta(prev)
	if len(d.Metrics) != 1 {
		t.Fatalf("delta = %+v, want one histogram", d.Metrics)
	}
	m := d.Metrics[0]
	// Bucket 3 is unchanged, so the trailing zeroes must be trimmed
	// down to the last active bucket.
	if m.Count != 2 || m.Sum != 310 || !reflect.DeepEqual(m.Buckets, []int64{1, 1}) {
		t.Fatalf("histogram delta = %+v, want count 2 sum 310 buckets [1 1]", m)
	}
}

func TestDeltaIgnoresTypeCollision(t *testing.T) {
	// A name that changes type between snapshots (possible after an
	// eviction + re-registration) must not subtract across types.
	old := NewRegistry()
	old.Gauge("x").Set(100)
	cur := NewRegistry()
	cur.Counter("x").Add(3)
	d := cur.Snapshot().Delta(old.Snapshot())
	if len(d.Metrics) != 1 || d.Metrics[0].Value != 3 {
		t.Fatalf("cross-type delta = %+v, want the raw counter value 3", d.Metrics)
	}
}

// fleetSnapshots builds two overlapping worker-style snapshots.
func fleetSnapshots() (MetricsSnapshot, MetricsSnapshot) {
	a := NewRegistry()
	a.Counter("shared.counter").Add(3)
	a.Counter("only.a").Add(1)
	a.Gauge("shared.gauge").Set(10)
	a.Histogram("shared.hist").Observe(100)
	a.Histogram("shared.hist").Observe(5000)

	b := NewRegistry()
	b.Counter("shared.counter").Add(4)
	b.Gauge("shared.gauge").Set(32)
	b.Gauge("only.b").Set(7)
	b.Histogram("shared.hist").Observe(120)
	return a.Snapshot(), b.Snapshot()
}

func TestMergeIsCommutative(t *testing.T) {
	sa, sb := fleetSnapshots()
	ab := NewRegistry()
	ab.Merge(sa)
	ab.Merge(sb)
	ba := NewRegistry()
	ba.Merge(sb)
	ba.Merge(sa)
	if !reflect.DeepEqual(ab.Snapshot(), ba.Snapshot()) {
		t.Fatalf("merge order changed the result:\nA,B: %+v\nB,A: %+v", ab.Snapshot(), ba.Snapshot())
	}
}

func TestMergeAddsEveryKind(t *testing.T) {
	sa, sb := fleetSnapshots()
	r := NewRegistry()
	r.Gauge("shared.gauge").Set(5) // pre-existing local reading
	r.Merge(sa)
	r.Merge(sb)
	if v := r.Counter("shared.counter").Value(); v != 7 {
		t.Fatalf("shared.counter = %d, want 3+4", v)
	}
	if v := r.Counter("only.a").Value(); v != 1 {
		t.Fatalf("only.a = %d, want 1", v)
	}
	// Gauges sum under merge: every published gauge is a run total, so
	// the fleet reading is the sum of local + worker readings.
	if v := r.Gauge("shared.gauge").Value(); v != 5+10+32 {
		t.Fatalf("shared.gauge = %d, want 5+10+32", v)
	}
	if v := r.Gauge("only.b").Value(); v != 7 {
		t.Fatalf("only.b = %d, want 7", v)
	}
	h := r.Histogram("shared.hist")
	if h.Count() != 3 || h.Sum() != 100+5000+120 {
		t.Fatalf("shared.hist count=%d sum=%d, want 3 and %d", h.Count(), h.Sum(), 100+5000+120)
	}
	// Bucket-level addition: two observations landed below 256 and one
	// at 5000; a snapshot of the merged registry must see both buckets.
	var m Metric
	for _, mm := range r.Snapshot().Metrics {
		if mm.Name == "shared.hist" {
			m = mm
		}
	}
	if m.Buckets[0] != 2 || m.Buckets[bucketFor(5000)] != 1 {
		t.Fatalf("merged buckets = %v, want 2 low + 1 at bucket %d", m.Buckets, bucketFor(5000))
	}
}

func TestMergeNilRegistryIsInert(t *testing.T) {
	var r *Registry
	sa, _ := fleetSnapshots()
	r.Merge(sa) // must not panic
	if n := r.RemovePrefix("shared."); n != 0 {
		t.Fatalf("nil RemovePrefix = %d, want 0", n)
	}
}

func TestRemovePrefixDropsOnlyMatches(t *testing.T) {
	r := NewRegistry()
	r.Counter("tenant.a.requests").Inc()
	r.Gauge("tenant.a.inflight").Set(1)
	r.Histogram("tenant.a.latency").Observe(5)
	r.Counter("tenant.ab.requests").Inc()
	r.Counter("global.requests").Inc()
	if n := r.RemovePrefix("tenant.a."); n != 3 {
		t.Fatalf("removed %d, want the 3 tenant.a. metrics", n)
	}
	var names []string
	for _, m := range r.Snapshot().Metrics {
		names = append(names, m.Name)
	}
	want := []string{"global.requests", "tenant.ab.requests"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("survivors = %v, want %v", names, want)
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"engine.paths":        "engine_paths",
		"fault.cache-corrupt": "fault_cache_corrupt",
		"solver.query.ns":     "solver_query_ns",
		"0weird":              "_0weird",
		"ok_name:x":           "ok_name:x",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("shard.retries").Add(3)
	r.Gauge("engine.paths").Set(12)
	h := r.Histogram("solver.query.ns")
	h.Observe(100)  // bucket 0
	h.Observe(100)  // bucket 0
	h.Observe(2000) // bucket 3
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	// Every family gets # HELP then # TYPE, and families are sorted by
	// exposition name.
	var families []string
	for i, l := range lines {
		if strings.HasPrefix(l, "# HELP ") {
			fam := strings.Fields(l)[2]
			families = append(families, fam)
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+fam+" ") {
				t.Fatalf("HELP for %s not followed by its TYPE line", fam)
			}
		}
	}
	want := []string{"engine_paths", "shard_retries", "solver_query_ns"}
	if !reflect.DeepEqual(families, want) {
		t.Fatalf("families = %v, want sorted %v", families, want)
	}

	for _, mustHave := range []string{
		"# TYPE shard_retries counter\n",
		"shard_retries 3\n",
		"# TYPE engine_paths gauge\n",
		"engine_paths 12\n",
		"# TYPE solver_query_ns histogram\n",
		// Cumulative buckets with exact integer le bounds: bucket 0 is
		// [0,256), so le="255" holds both sub-256 observations; by
		// bucket 3 ([1024,2048), le="2047") all three are in.
		"solver_query_ns_bucket{le=\"255\"} 2\n",
		"solver_query_ns_bucket{le=\"2047\"} 3\n",
		"solver_query_ns_bucket{le=\"+Inf\"} 3\n",
		"solver_query_ns_sum 2200\n",
		"solver_query_ns_count 3\n",
	} {
		if !strings.Contains(out, mustHave) {
			t.Fatalf("exposition output missing %q:\n%s", mustHave, out)
		}
	}

	// Deterministic rendering: a second write is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two renderings of the same state differ")
	}
}

func TestSpliceDeterministicDedupsSharedSpine(t *testing.T) {
	// Two "workers" replay the same fork spine (root + fork at the same
	// (path, pseq)) and then explore different children — exactly what
	// forced-fork prefix replay produces.
	worker := func(child int) []Event {
		tr := NewTracer(TraceOptions{Deterministic: true})
		root := tr.Root("sym.run")
		root.Fork(2)
		c0, c1 := root.Child(), root.Child()
		if child == 0 {
			c0.Merge("then-side", 1, 0)
		} else {
			c1.Merge("else-side", 1, 0)
		}
		root.Join()
		return tr.Events()
	}
	tr := NewTracer(TraceOptions{Deterministic: true})
	tr.Splice(0, worker(0))
	tr.Splice(1, worker(1))
	events := tr.Events()
	// One root, one fork, one join (spine deduped), two merges.
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Item != 0 {
			t.Fatalf("deterministic splice must not tag items: %+v", e)
		}
	}
	if kinds[KindRoot] != 1 || kinds[KindFork] != 1 || kinds[KindJoin] != 1 || kinds[KindMerge] != 2 {
		t.Fatalf("kind counts = %v, want deduped spine + both children", kinds)
	}
	for i, e := range events {
		if e.Seq != int64(i) {
			t.Fatalf("seq not renumbered densely after dedup: %+v at %d", e, i)
		}
	}
	// A root opened after the splice numbers past the spliced ones.
	late := tr.Root("shard.coordinator")
	if late.Path() != rootID(1) {
		t.Fatalf("post-splice root = %s, want %s", late.Path(), rootID(1))
	}
}

func TestSpliceTimedRenumbersAndTags(t *testing.T) {
	wt := NewTracer(TraceOptions{})
	root := wt.Root("sym.run")
	root.Fork(1)
	child := root.Child()
	child.Merge("site", 2, 1)

	tr := NewTracer(TraceOptions{})
	own := tr.Root("shard.coordinator")
	own.ShardEvent("dispatch item=3 attempt=1", "")
	tr.Splice(2, wt.Events())

	events := tr.Events()
	var spliced []Event
	for _, e := range events {
		if e.Item != 0 {
			if e.Item != 3 {
				t.Fatalf("item tag = %d, want 3 (1-based)", e.Item)
			}
			spliced = append(spliced, e)
		}
	}
	if len(spliced) != 3 {
		t.Fatalf("spliced %d events, want 3 (root, fork, merge)", len(spliced))
	}
	// The worker's r00000 collides with the coordinator's own root, so
	// the splice must have moved it to a fresh root.
	if spliced[0].Path == own.Path() {
		t.Fatalf("worker root not renumbered away from the local %s", own.Path())
	}
	// Order and structure survive: root, fork on the root, merge under
	// a child whose parent is the renumbered root.
	if spliced[0].Kind != KindRoot || spliced[1].Kind != KindFork || spliced[2].Kind != KindMerge {
		t.Fatalf("spliced order = %v %v %v, want root fork merge", spliced[0].Kind, spliced[1].Kind, spliced[2].Kind)
	}
	if spliced[2].Parent != spliced[0].Path {
		t.Fatalf("child parent = %q, want the renumbered root %q", spliced[2].Parent, spliced[0].Path)
	}
	// Global seq is strictly increasing across native + spliced events.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("seq not strictly increasing at %d: %+v", i, events[i])
		}
	}
}
