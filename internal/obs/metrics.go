// Package obs is the unified observability layer of the analysis
// stack: a typed metrics registry, a structured event tracer, and the
// rendering helpers behind the -stats/-metrics/-trace flags.
//
// It is a zero-dependency leaf (standard library only), like
// internal/fault, so the engine, the solver pipeline, both executors,
// and MIXY can all record into one substrate without import cycles.
//
// Three design rules govern the package:
//
//   - Nil is off. A nil *Registry hands out nil handles, and every
//     method on a nil handle is an inert no-op, so instrumented code
//     pays one pointer test when observability is disabled — the same
//     contract as a nil *engine.Engine or a nil *fault.Counters.
//
//   - Names are dotted paths ("engine.forks", "solver.stage.dpll.ns")
//     and every snapshot is sorted by name, so two renderings of the
//     same state are byte-identical and the -stats output of mix and
//     mixy share one stable schema.
//
//   - Recording is lock-free (atomics); only registration and
//     snapshotting take the registry lock. Handles are meant to be
//     looked up once and cached in struct fields.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricsSchemaVersion stamps metrics snapshots; bump on any change to
// the snapshot shape.
const MetricsSchemaVersion = 1

// Counter is a monotone counter. All methods are safe for concurrent
// use and inert on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value. All methods are safe
// for concurrent use and inert on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add increments the gauge by n. Gauges are last-write-wins for
// owners that Set them; Add exists for the fleet-merge path, where a
// gauge that records a run total (paths explored, forks charged) must
// accumulate across worker registries.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Max raises the gauge to v if v is larger (CAS loop).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every Histogram. Buckets
// are exponential: bucket i counts observations in
// [256·2^(i-1), 256·2^i) ns-scale units, with bucket 0 holding
// everything below 256 and the last bucket open-ended. 24 doublings
// from 256ns reach ~2.1s, which brackets every per-query duration the
// stack produces.
const histBuckets = 24

// histBase is the upper bound of bucket 0.
const histBase = 256

// Histogram is a fixed-bucket histogram (counts, sum, total). All
// methods are safe for concurrent use and inert on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps an observation to its bucket index.
func bucketFor(v int64) int {
	if v < histBase {
		return 0
	}
	// 256 = 1<<8; doublings beyond it index the remaining buckets.
	b := bits.Len64(uint64(v)) - 8
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketFor(v)].Add(1)
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds metrics by dotted name. Construct with NewRegistry; a
// nil *Registry hands out nil (inert) handles, so callers can thread
// one pointer and never branch. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry: package-scoped instrumentation
// with no run to attach to (e.g. the symbolic executor's memory-fork
// counters) registers here. Run-scoped metrics belong in a per-run
// registry (engine.Options.Metrics).
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Merge folds a snapshot from another registry (typically a shard
// worker's) into this one: counters and histograms (counts, sums,
// buckets) add, and gauges add too — every gauge the analysis stack
// publishes is a run total (paths, forks, solver query time), so
// summing worker readings reconstructs the fleet-wide total. Adding
// is commutative and associative, so merging worker snapshots in any
// order yields the same registry state; the serving layer and the
// shard coordinator rely on that to merge results as they arrive.
// A nil registry ignores the merge.
func (r *Registry) Merge(s MetricsSnapshot) {
	if r == nil {
		return
	}
	for _, m := range s.Metrics {
		switch m.Type {
		case "counter":
			r.Counter(m.Name).Add(m.Value)
		case "gauge":
			r.Gauge(m.Name).Add(m.Value)
		case "histogram":
			h := r.Histogram(m.Name)
			h.count.Add(m.Count)
			h.sum.Add(m.Sum)
			for i, b := range m.Buckets {
				if i >= histBuckets {
					break
				}
				h.buckets[i].Add(b)
			}
		}
	}
}

// RemovePrefix drops every metric whose dotted name starts with
// prefix and reports how many were removed. Cached handles to removed
// metrics keep working but record into orphans the next snapshot no
// longer sees — callers that evict (the per-tenant serving metrics)
// must re-look-up handles after eviction.
func (r *Registry) RemovePrefix(prefix string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.counters {
		if strings.HasPrefix(name, prefix) {
			delete(r.counters, name)
			n++
		}
	}
	for name := range r.gauges {
		if strings.HasPrefix(name, prefix) {
			delete(r.gauges, name)
			n++
		}
	}
	for name := range r.hists {
		if strings.HasPrefix(name, prefix) {
			delete(r.hists, name)
			n++
		}
	}
	return n
}

// Metric is one snapshotted metric. For counters and gauges Value
// holds the reading; for histograms Count/Sum/Buckets do.
type Metric struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"` // "counter", "gauge", "histogram"
	Value   int64   `json:"value,omitempty"`
	Count   int64   `json:"count,omitempty"`
	Sum     int64   `json:"sum,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// MetricsSnapshot is a point-in-time copy of a registry, sorted by
// metric name.
type MetricsSnapshot struct {
	SchemaVersion int      `json:"schema_version"`
	Metrics       []Metric `json:"metrics"`
}

// Snapshot copies the registry's current state, sorted by name. A nil
// registry snapshots empty.
func (r *Registry) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{SchemaVersion: MetricsSchemaVersion}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Metrics = append(s.Metrics, Metric{Name: name, Type: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Metrics = append(s.Metrics, Metric{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Type: "histogram", Count: h.count.Load(), Sum: h.sum.Load()}
		// Trailing zero buckets are trimmed so snapshots stay compact;
		// bucket i's bound is implicit (256·2^i ns-scale units).
		last := -1
		var buckets [histBuckets]int64
		for i := range h.buckets {
			buckets[i] = h.buckets[i].Load()
			if buckets[i] != 0 {
				last = i
			}
		}
		if last >= 0 {
			m.Buckets = append(m.Buckets, buckets[:last+1]...)
		}
		s.Metrics = append(s.Metrics, m)
	}
	r.mu.Unlock()
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}

// Delta subtracts an earlier snapshot of the same registry from this
// one, yielding the activity of the window between them: counter
// values, histogram counts/sums/buckets become differences, while
// gauges (instantaneous readings) keep this snapshot's value. Metrics
// absent from prev pass through unchanged; metrics that show no
// activity in the window are dropped, so a quiet window is an empty
// delta. This is how the serving layer turns one long-lived registry
// into per-request and per-phase readings without allocating a
// registry per request.
func (s MetricsSnapshot) Delta(prev MetricsSnapshot) MetricsSnapshot {
	prevByName := make(map[string]Metric, len(prev.Metrics))
	for _, m := range prev.Metrics {
		prevByName[m.Name] = m
	}
	out := MetricsSnapshot{SchemaVersion: s.SchemaVersion}
	for _, m := range s.Metrics {
		p, ok := prevByName[m.Name]
		if ok && p.Type == m.Type {
			switch m.Type {
			case "counter":
				m.Value -= p.Value
			case "histogram":
				m.Count -= p.Count
				m.Sum -= p.Sum
				for i := range m.Buckets {
					if i < len(p.Buckets) {
						m.Buckets[i] -= p.Buckets[i]
					}
				}
				for len(m.Buckets) > 0 && m.Buckets[len(m.Buckets)-1] == 0 {
					m.Buckets = m.Buckets[:len(m.Buckets)-1]
				}
			}
		}
		switch m.Type {
		case "counter":
			if m.Value == 0 {
				continue
			}
		case "histogram":
			if m.Count == 0 && m.Sum == 0 {
				continue
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON (sorted by name, so
// two writes of the same state are byte-identical).
func (r *Registry) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// WriteStats renders the snapshot as the unified -stats schema shared
// by mix and mixy: one "name value" line per metric, sorted by name.
// Histograms render as two derived scalars, "<name>.count" and
// "<name>.sum". The schema is documented in README.md ("Statistics
// and metrics").
func (r *Registry) WriteStats(w io.Writer) error {
	for _, m := range r.Snapshot().Metrics {
		var err error
		if m.Type == "histogram" {
			_, err = fmt.Fprintf(w, "%s.count %d\n%s.sum %d\n", m.Name, m.Count, m.Name, m.Sum)
		} else {
			_, err = fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
