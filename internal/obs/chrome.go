package obs

import (
	"encoding/json"
	"io"
	"strings"
)

// chromeEvent is one entry of the Chrome trace_event format (the
// JSON-array flavour), which Perfetto and chrome://tracing consume
// directly. Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome converts a slice of trace events (as produced by
// Tracer.Events or parsed back from JSONL) into Chrome trace_event
// JSON. Timing-mode events with a duration become complete ("X")
// slices placed at their wall-clock offset; everything else becomes
// an instant ("i") event. Wall-clock-free (deterministic) traces are
// laid out by sequence number instead, one microsecond per event, so
// the DFS preorder reads left-to-right in Perfetto. Events from the
// same root land on the same track (tid), so each explored function's
// path tree gets its own row.
func WriteChrome(w io.Writer, events []Event) error {
	// A trace is wall-clock-free iff no event carries a timestamp.
	timed := false
	for _, e := range events {
		if e.TNs != 0 || e.DurNs != 0 {
			timed = true
			break
		}
	}
	tids := map[string]int{}
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		root := e.Path
		if i := strings.IndexByte(root, '.'); i >= 0 {
			root = root[:i]
		}
		tid, ok := tids[root]
		if !ok {
			tid = len(tids) + 1
			tids[root] = tid
		}
		ce := chromeEvent{
			Name:  e.Kind,
			Cat:   "mix",
			Phase: "i",
			PID:   1,
			TID:   tid,
		}
		if timed {
			ce.TS = float64(e.TNs) / 1e3
		} else {
			ce.TS = float64(e.Seq)
		}
		if e.DurNs > 0 {
			ce.Phase = "X"
			ce.Dur = float64(e.DurNs) / 1e3
		}
		args := map[string]any{"path": e.Path, "pseq": e.PSeq}
		if e.Parent != "" {
			args["parent"] = e.Parent
		}
		if e.Verdict != "" {
			args["verdict"] = e.Verdict
		}
		if e.Class != "" {
			args["class"] = e.Class
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if e.N != 0 {
			args["n"] = e.N
		}
		if e.Item != 0 {
			args["item"] = e.Item
		}
		ce.Args = args
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
}

// WriteChromeTrace converts the tracer's buffered events; see
// WriteChrome.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChrome(w, t.Events())
}
