package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandlesAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Max(9)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil handles must read zero")
	}
	if got := r.Snapshot(); len(got.Metrics) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %d metrics", len(got.Metrics))
	}
	var buf bytes.Buffer
	if err := r.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry stats must be empty, got %q", buf.String())
	}
}

func TestRegistryGetOrCreateIsStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return same counter")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("same name must return same gauge")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("same name must return same histogram")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.forks")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("engine.max_slice")
	g.Set(3)
	g.Max(10)
	g.Max(2)
	if g.Value() != 10 {
		t.Fatalf("gauge = %d, want 10", g.Value())
	}
	h := r.Histogram("solver.query.ns")
	h.Observe(100)     // bucket 0 (<256)
	h.Observe(300)     // bucket 1
	h.Observe(1 << 40) // clamps into last bucket
	h.Observe(-5)      // clamps to 0
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 100+300+(1<<40) {
		t.Fatalf("hist sum = %d", h.Sum())
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {255, 0}, {256, 1}, {511, 1}, {512, 2}, {1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Gauge("a.first").Set(2)
	r.Histogram("m.mid").Observe(300)
	s := r.Snapshot()
	if len(s.Metrics) != 3 {
		t.Fatalf("got %d metrics, want 3", len(s.Metrics))
	}
	for i := 1; i < len(s.Metrics); i++ {
		if s.Metrics[i-1].Name >= s.Metrics[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", s.Metrics[i-1].Name, s.Metrics[i].Name)
		}
	}
	var one, two bytes.Buffer
	if err := r.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("two snapshots of the same state must be byte-identical")
	}
	if !strings.Contains(one.String(), `"schema_version": 1`) {
		t.Fatalf("snapshot missing schema_version: %s", one.String())
	}
}

func TestWriteStatsSchema(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.val").Set(1)
	r.Histogram("c.ns").Observe(1000)
	var buf bytes.Buffer
	if err := r.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a.val 1\nb.count 2\nc.ns.count 1\nc.ns.sum 1000\n"
	if buf.String() != want {
		t.Fatalf("stats schema mismatch:\ngot:  %q\nwant: %q", buf.String(), want)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Max(int64(j))
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 999 {
		t.Fatalf("gauge max = %d, want 999", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

// TestSnapshotDelta pins the windowed-reading semantics the serving
// layer uses for per-request metrics: counters and histograms subtract,
// gauges read through, idle metrics vanish.
func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(5)
	r.Counter("idle").Add(3)
	r.Gauge("inflight").Set(2)
	r.Histogram("lat").Observe(300)
	prev := r.Snapshot()

	r.Counter("reqs").Add(2)
	r.Gauge("inflight").Set(7)
	r.Histogram("lat").Observe(300)
	r.Histogram("lat").Observe(100000)
	r.Counter("fresh").Inc()
	d := r.Snapshot().Delta(prev)

	byName := map[string]Metric{}
	for _, m := range d.Metrics {
		byName[m.Name] = m
	}
	if m := byName["reqs"]; m.Value != 2 {
		t.Fatalf("reqs delta = %+v, want value 2", m)
	}
	if _, ok := byName["idle"]; ok {
		t.Fatal("idle counter should be dropped from the delta")
	}
	if m := byName["inflight"]; m.Value != 7 {
		t.Fatalf("gauge should read through: %+v", m)
	}
	if m := byName["lat"]; m.Count != 2 || m.Sum != 300+100000 {
		t.Fatalf("lat delta = %+v, want count 2 sum %d", m, 300+100000)
	}
	if m := byName["fresh"]; m.Value != 1 {
		t.Fatalf("metric new in the window should pass through: %+v", m)
	}
	// A quiet window deltas to nothing but the gauges.
	d = r.Snapshot().Delta(r.Snapshot())
	for _, m := range d.Metrics {
		if m.Type != "gauge" {
			t.Fatalf("quiet window still reports %+v", m)
		}
	}
}
