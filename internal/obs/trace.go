package obs

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceSchemaVersion stamps the JSONL event schema; the checked-in
// validator (cmd/mixtrace, testdata/trace_schema.json) pins it.
// Version 2 added the optional worker-origin "item" field carried by
// events spliced from shard workers into a timing-mode trace.
const TraceSchemaVersion = 2

// Event is one structured trace event, serialized as a single JSONL
// line. Field presence varies by kind and mode:
//
//   - seq is the global total order: assigned at emit time in timing
//     mode, reassigned at flush in deterministic mode (sorted by
//     (path, pseq), which is schedule-independent).
//   - path is the hierarchical path ID: roots are "rNNNNN" and each
//     fork child appends ".<index>", so a path's parent is a strict
//     prefix and lexicographic order groups each subtree together.
//   - pseq orders events within one span (spans are single-goroutine,
//     so pseq needs no synchronisation).
//   - t_ns/dur_ns are wall-clock offsets/durations, present only in
//     timing mode; deterministic traces are wall-clock-free.
type Event struct {
	Seq     int64  `json:"seq"`
	Path    string `json:"path"`
	PSeq    int64  `json:"pseq"`
	Parent  string `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Verdict string `json:"verdict,omitempty"`
	Class   string `json:"class,omitempty"`
	Detail  string `json:"detail,omitempty"`
	N       int64  `json:"n,omitempty"`
	N2      int64  `json:"n2,omitempty"`
	TNs     int64  `json:"t_ns,omitempty"`
	DurNs   int64  `json:"dur_ns,omitempty"`
	// Item is the 1-based shard work item the event originated from,
	// stamped when a timing-mode trace splices worker events (0 = not
	// from a worker). Deterministic traces never carry it: a spliced
	// deterministic trace is byte-identical to the unsharded one, and
	// worker provenance would break that.
	Item int64 `json:"item,omitempty"`
}

// Event kinds. Kinds marked (timing-only) depend on scheduling —
// which worker warmed the memo table first, how long a query ran —
// and are suppressed in deterministic mode; everything else is a
// pure function of (program, seed) and appears in both modes.
const (
	KindRoot      = "root"       // span tree root; detail = root name
	KindFork      = "fork"       // path split; n = child count
	KindJoin      = "join"       // ordered join of children
	KindSolve     = "solve"      // pipeline verdict for one query
	KindStage     = "stage"      // (timing-only) one pipeline stage; detail = stage name
	KindMemoHit   = "memo-hit"   // (timing-only) sharded-LRU memo hit
	KindCexHit    = "cex-hit"    // (timing-only) counterexample-cache hit
	KindDegrade   = "degrade"    // fault absorbed into imprecision; class = fault class
	KindMerge     = "merge"      // join-point state merge; detail = join site, n = cells merged, n2 = collapsed-to-equal
	KindIter      = "iter"       // MIXY fixpoint iteration; n = qualifier-frontier size
	KindCacheHit  = "cache-hit"  // MIXY block-summary cache hit; detail = block key
	KindCacheMiss = "cache-miss" // MIXY block-summary cache miss; detail = block key
	KindBlock     = "block"      // MIXY symbolic block analyzed; detail = block key
	KindSummary   = "summary"    // function-summary use at a call site; detail = "instantiate fn" (n = arms) or "fallback fn: reason"
	KindShard     = "shard"      // (timing-only) shard coordinator lifecycle; detail = step ("dispatch item=3 attempt=2"), class = fault class on failures
)

// traceShards is the number of event-buffer shards. Spans hash to a
// shard by path, so concurrently-live paths contend rarely.
const traceShards = 16

// TraceOptions configures a Tracer.
type TraceOptions struct {
	// Deterministic makes traces byte-comparable across runs and
	// worker counts: wall-clock fields are zeroed, schedule-dependent
	// kinds (stage, memo-hit, cex-hit) are suppressed, and the flush
	// orders events by (path, pseq) before numbering seq.
	Deterministic bool
	// Cap bounds total buffered events across all shards; each shard
	// is a ring, so when a shard wraps its oldest events are
	// overwritten (the tail — where degradations live — survives).
	// 0 means DefaultTraceCap.
	Cap int
}

// DefaultTraceCap is the default total event capacity (~1M events,
// far above anything the test corpus or ladder benches produce).
const DefaultTraceCap = 1 << 20

// traceShard is one ring buffer: a backing array that grows
// geometrically up to max, a monotone write count, and
// oldest-overwrite once the array is at max. Growing lazily instead
// of preallocating max matters operationally: a tracer's cap defaults
// to ~1M events (tens of MB of pointer-ful structs), and a freshly
// spawned shard worker that pays the page-in and GC-scan cost of that
// slab up front spends more time faulting memory than analyzing.
// Which events survive is unchanged — both shapes keep the newest max
// events.
type traceShard struct {
	mu  sync.Mutex
	buf []Event
	max int   // ring capacity ceiling
	n   int64 // total events ever written to this shard
}

// put appends one fully-stamped event, growing the ring toward max
// before the first wrap and counting overwrites after it.
func (sh *traceShard) put(e Event, dropped *atomic.Int64) {
	sh.mu.Lock()
	if sh.n == int64(len(sh.buf)) && len(sh.buf) < sh.max {
		grow := 2 * len(sh.buf)
		if grow > sh.max {
			grow = sh.max
		}
		nb := make([]Event, grow)
		copy(nb, sh.buf)
		sh.buf = nb
	}
	if sh.n >= int64(len(sh.buf)) {
		dropped.Add(1)
	}
	sh.buf[sh.n%int64(len(sh.buf))] = e
	sh.n++
	sh.mu.Unlock()
}

// Tracer collects structured events into lock-sharded ring buffers.
// Construct with NewTracer; a nil *Tracer (and the nil *Spans it
// hands out) is inert, so instrumented code pays only a nil test
// when tracing is off.
type Tracer struct {
	det     bool
	start   time.Time
	seq     atomic.Int64 // timing-mode global sequence
	roots   atomic.Int64 // root span numbering
	dropped atomic.Int64
	shards  [traceShards]traceShard
}

// NewTracer returns a tracer ready to record.
func NewTracer(opts TraceOptions) *Tracer {
	capacity := opts.Cap
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	per := capacity / traceShards
	if per < 64 {
		per = 64
	}
	t := &Tracer{det: opts.Deterministic, start: time.Now()}
	for i := range t.shards {
		t.shards[i].max = per
		t.shards[i].buf = make([]Event, 64)
	}
	return t
}

// Deterministic reports whether the tracer is in deterministic mode
// (false on nil).
func (t *Tracer) Deterministic() bool { return t != nil && t.det }

// Now returns nanoseconds since the tracer started, for stamping
// durations: 0 on a nil tracer and in deterministic mode, so callers
// can bracket work with Now() unconditionally and never read the
// clock when it wouldn't be recorded.
func (t *Tracer) Now() int64 {
	if t == nil || t.det {
		return 0
	}
	return int64(time.Since(t.start))
}

// Dropped reports how many events were overwritten by ring wrap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Span is one node of the path tree. A span is owned by a single
// goroutine at a time (forks hand children to other goroutines as
// fresh spans; joins hand them back), so its per-span sequence and
// child counter need no synchronisation. All methods are inert on a
// nil receiver.
type Span struct {
	t      *Tracer
	path   string
	parent string
	pseq   int64
	kids   int
	shard  *traceShard
}

// Root opens a new root span. Root IDs are numbered in creation
// order and zero-padded so they sort lexicographically; callers that
// need cross-run determinism must create roots deterministically
// (one per analyzed function/block, in program order).
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.roots.Add(1) - 1
	s := t.newSpan(rootID(id), "")
	s.emit(Event{Kind: KindRoot, Detail: name})
	return s
}

func rootID(n int64) string {
	// "r%05d" without fmt: fixed 5-digit zero-padded decimal.
	var b [6]byte
	b[0] = 'r'
	for i := 5; i >= 1; i-- {
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[:])
}

func (t *Tracer) newSpan(path, parent string) *Span {
	h := fnv.New32a()
	io.WriteString(h, path)
	return &Span{t: t, path: path, parent: parent, shard: &t.shards[h.Sum32()%traceShards]}
}

// Child opens the next child span. Children are numbered by creation
// order within the parent — fork sites create the then-child before
// the else-child, so index parity encodes the branch — and the child
// path appends ".<index>", keeping paths unique even when a span
// splits at more than one site. Child creation order is the owning
// goroutine's program order, so paths are schedule-independent.
func (s *Span) Child() *Span {
	if s == nil {
		return nil
	}
	idx := s.kids
	s.kids++
	return s.t.newSpan(s.path+"."+strconv.Itoa(idx), s.path)
}

// Path returns the span's hierarchical path ID ("" on nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// emit stamps span/order fields and appends to the span's shard ring.
func (s *Span) emit(e Event) {
	if s == nil {
		return
	}
	e.Path = s.path
	e.Parent = s.parent
	e.PSeq = s.pseq
	s.pseq++
	if !s.t.det {
		e.Seq = s.t.seq.Add(1) - 1
		e.TNs = s.t.Now()
	}
	s.shard.put(e, &s.t.dropped)
}

// Fork records a path split into n children.
func (s *Span) Fork(n int) {
	if s != nil {
		s.emit(Event{Kind: KindFork, N: int64(n)})
	}
}

// Join records the ordered join of this span's children.
func (s *Span) Join() {
	if s != nil {
		s.emit(Event{Kind: KindJoin})
	}
}

// Solve records the pipeline's final verdict for one query. The
// verdict is deterministic (parallel == sequential), so solve events
// appear in both modes; durNs is recorded only in timing mode (pass
// a Now()-bracketed delta, which is already 0 in deterministic mode).
func (s *Span) Solve(verdict string, durNs int64) {
	if s != nil {
		s.emit(Event{Kind: KindSolve, Verdict: verdict, DurNs: durNs})
	}
}

// Stage records one pipeline stage's verdict + duration. Which stages
// run depends on what earlier queries warmed (memo, cex cache), so
// stage events are timing-mode only.
func (s *Span) Stage(stage, verdict string, durNs int64) {
	if s == nil || s.t.det {
		return
	}
	s.emit(Event{Kind: KindStage, Detail: stage, Verdict: verdict, DurNs: durNs})
}

// MemoHit records a memo-table hit (timing-mode only: hits depend on
// which worker populated the shard first).
func (s *Span) MemoHit() {
	if s == nil || s.t.det {
		return
	}
	s.emit(Event{Kind: KindMemoHit})
}

// CexHit records a counterexample-cache hit (timing-mode only).
func (s *Span) CexHit() {
	if s == nil || s.t.det {
		return
	}
	s.emit(Event{Kind: KindCexHit})
}

// Merge records a join-point state merge: both arms of a conditional
// reached the join alive and were folded into one guarded
// continuation. site names the join point, cells is the number of
// diverging cells merged into guarded values, eq the number that
// collapsed back to plain values because both arms agreed. Merge
// decisions are pure functions of (program, merge mode) — feasibility
// verdicts are schedule-independent — so merge events appear in both
// trace modes.
func (s *Span) Merge(site string, cells, eq int64) {
	if s != nil {
		s.emit(Event{Kind: KindMerge, Detail: site, N: cells, N2: eq})
	}
}

// Degrade records a fault being absorbed into explicit imprecision.
// class is the fault class (fault.Class.String()); detail carries
// provenance (what was truncated or pessimized). Faults are seeded,
// so degrade events appear in both modes.
func (s *Span) Degrade(class, detail string) {
	if s != nil {
		s.emit(Event{Kind: KindDegrade, Class: class, Detail: detail})
	}
}

// ShardEvent records one shard-coordinator lifecycle step (dispatch,
// heartbeat timeout, retry, respawn, quarantine). Which attempt of an
// item succeeds depends on real process scheduling and wall-clock
// heartbeats, so shard events are timing-mode only; the deterministic
// record of a permanently lost subtree is its Degrade event.
func (s *Span) ShardEvent(detail, class string) {
	if s == nil || s.t.det {
		return
	}
	s.emit(Event{Kind: KindShard, Detail: detail, Class: class})
}

// Emit records an arbitrary event on this span, for kinds without a
// dedicated helper (iter, cache-hit, cache-miss, block). Path, seq,
// and timing fields are stamped by the span.
func (s *Span) Emit(e Event) {
	if s != nil {
		s.emit(e)
	}
}

// insert appends a fully-stamped event to the shard ring its path
// hashes to — the same placement emit uses, so spliced and native
// events of one path share a ring.
func (t *Tracer) insert(e Event) {
	h := fnv.New32a()
	io.WriteString(h, e.Path)
	t.shards[h.Sum32()%traceShards].put(e, &t.dropped)
}

// parseRootID extracts the numeric root ID from a path ("r00012" or
// "r00012.3.1" → 12).
func parseRootID(path string) (int64, bool) {
	if len(path) < 6 || path[0] != 'r' {
		return 0, false
	}
	var n int64
	for i := 1; i < 6; i++ {
		c := path[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// reserveRoots raises the root counter to at least n, so the next
// Root call returns an ID strictly after every spliced root.
func (t *Tracer) reserveRoots(n int64) {
	for {
		cur := t.roots.Load()
		if n <= cur || t.roots.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Splice injects events recorded by another tracer — a shard worker's
// — into this one, making a sharded run's trace read like an
// unsharded one. The two modes differ because their determinism
// contracts differ:
//
// Deterministic mode keeps worker events verbatim. Worker paths are
// already the paths the unsharded run would have used: every item
// replays the shared fork spine (forced forks emit the same fork /
// join events at the same (path, pseq) as real forks), so spine
// events arrive once per item and the exact-duplicate dedup in
// Events() collapses them. The root counter advances past every
// spliced root, so a root opened after the splice (the coordinator's
// degrade root) sorts strictly after all worker subtrees. item is
// ignored — worker provenance would break byte-identity with the
// unsharded trace.
//
// Timing mode renumbers: each distinct worker root becomes a fresh
// root of this tracer, paths are rewritten under it, events are
// tagged with their 1-based item of origin and given fresh seq
// numbers preserving worker order. t_ns stays worker-relative (each
// worker process has its own clock origin).
//
// Callers must splice from one goroutine at a time per tracer (the
// shard coordinator splices post-barrier, in item order).
func (t *Tracer) Splice(item int, events []Event) {
	if t == nil || len(events) == 0 {
		return
	}
	if t.det {
		maxRoot := int64(-1)
		for _, e := range events {
			if id, ok := parseRootID(e.Path); ok && id > maxRoot {
				maxRoot = id
			}
			t.insert(e)
		}
		t.reserveRoots(maxRoot + 1)
		return
	}
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	remap := map[string]string{}
	for _, e := range sorted {
		root := e.Path
		if i := strings.IndexByte(root, '.'); i >= 0 {
			root = root[:i]
		}
		nr, ok := remap[root]
		if !ok {
			nr = rootID(t.roots.Add(1) - 1)
			remap[root] = nr
		}
		// Roots are fixed-width ("rNNNNN"), so the parent shares the
		// path's root prefix byte-for-byte.
		e.Path = nr + e.Path[len(root):]
		if e.Parent != "" {
			e.Parent = nr + e.Parent[len(root):]
		}
		e.Item = int64(item) + 1
		e.Seq = t.seq.Add(1) - 1
		t.insert(e)
	}
}

// Events returns the buffered events in final order: deterministic
// mode sorts by (path, pseq) and renumbers seq from 0 (both are pure
// functions of the explored tree); timing mode sorts by emit-time
// seq. Ring-dropped events are simply absent.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var all []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if sh.n <= int64(len(sh.buf)) {
			all = append(all, sh.buf[:sh.n]...)
		} else {
			idx := sh.n % int64(len(sh.buf))
			all = append(all, sh.buf[idx:]...)
			all = append(all, sh.buf[:idx]...)
		}
		sh.mu.Unlock()
	}
	if t.det {
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.Path != b.Path {
				return a.Path < b.Path
			}
			if a.PSeq != b.PSeq {
				return a.PSeq < b.PSeq
			}
			// (path, pseq) collides only for splice-delivered spine
			// duplicates, which are identical events; the tiebreak just
			// pins the order of pathological near-duplicates.
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			return a.Detail < b.Detail
		})
		// Splicing worker subtraces re-delivers the shared fork spine
		// once per item; collapse exact (path, pseq) duplicates. An
		// unspliced trace never has any (pseq is per-span monotone).
		dedup := all[:0]
		for i, e := range all {
			if i > 0 && e.Path == all[i-1].Path && e.PSeq == all[i-1].PSeq {
				continue
			}
			dedup = append(dedup, e)
		}
		all = dedup
		for i := range all {
			all[i].Seq = int64(i)
		}
	} else {
		sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	}
	return all
}

// WriteJSONL writes the trace as one JSON object per line, in final
// event order. Deterministic-mode output is byte-identical across
// runs and worker counts for the same (program, seed).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, e := range t.Events() {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
