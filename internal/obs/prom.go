package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text
// exposition format (version 0.0.4), which WriteProm renders.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a dotted metric name into the Prometheus
// identifier alphabet [a-zA-Z0-9_:]: dots and dashes (and anything
// else outside the alphabet) become underscores, and a leading digit
// gets an underscore prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promBucketLE is the inclusive upper bound of histogram bucket i in
// exposition form. Bucket 0 holds v < histBase and bucket i (i >= 1)
// holds histBase·2^(i-1) <= v < histBase·2^i, so the exact "le" value
// of bucket i is histBase·2^i - 1 (observations are integers).
func promBucketLE(i int) string {
	return strconv.FormatInt(int64(histBase)<<uint(i)-1, 10)
}

// WritePromSnapshot renders a metrics snapshot in the Prometheus text
// exposition format (0.0.4): one # HELP and # TYPE line per family,
// families sorted by exposition name, histograms as cumulative
// le-buckets plus _sum and _count. The dotted registry name is kept in
// the HELP line, so a scrape stays mappable back to the -stats schema.
// Two renderings of the same snapshot are byte-identical.
func WritePromSnapshot(w io.Writer, s MetricsSnapshot) error {
	// Snapshot order is dotted-name order; exposition order must be
	// exposition-name order (the sanitized alphabet sorts differently),
	// so re-sort by the rendered family name.
	type family struct {
		name string // exposition name
		m    Metric
	}
	fams := make([]family, 0, len(s.Metrics))
	for _, m := range s.Metrics {
		fams = append(fams, family{promName(m.Name), m})
	}
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		m := f.m
		if _, err := fmt.Fprintf(w, "# HELP %s mix metric %s\n# TYPE %s %s\n", f.name, m.Name, f.name, m.Type); err != nil {
			return err
		}
		switch m.Type {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s %d\n", f.name, m.Value); err != nil {
				return err
			}
		case "histogram":
			cum := int64(0)
			for i, b := range m.Buckets {
				cum += b
				if i >= histBuckets-1 {
					// The last bucket is open-ended; it folds into +Inf.
					break
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", f.name, promBucketLE(i), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n", f.name, m.Count, f.name, m.Sum, f.name, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteProm renders the registry's current state in the Prometheus
// text exposition format; see WritePromSnapshot.
func (r *Registry) WriteProm(w io.Writer) error {
	return WritePromSnapshot(w, r.Snapshot())
}
