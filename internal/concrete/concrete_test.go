package concrete

import (
	"errors"
	"testing"

	"mix/internal/lang"
)

func eval(t *testing.T, src string) (Value, error) {
	t.Helper()
	ev := NewEvaluator()
	return ev.Eval(EmptyEnv(), NewMemory(), lang.MustParse(src))
}

func wantInt(t *testing.T, src string, want int64) {
	t.Helper()
	v, err := eval(t, src)
	if err != nil {
		t.Fatalf("eval(%q): %v", src, err)
	}
	iv, ok := v.(IntV)
	if !ok || iv.Val != want {
		t.Fatalf("eval(%q) = %v, want %d", src, v, want)
	}
}

func wantBool(t *testing.T, src string, want bool) {
	t.Helper()
	v, err := eval(t, src)
	if err != nil {
		t.Fatalf("eval(%q): %v", src, err)
	}
	bv, ok := v.(BoolV)
	if !ok || bv.Val != want {
		t.Fatalf("eval(%q) = %v, want %t", src, v, want)
	}
}

func wantTypeError(t *testing.T, src string) {
	t.Helper()
	_, err := eval(t, src)
	if !errors.Is(err, ErrTypeError) {
		t.Fatalf("eval(%q) err = %v, want the error token", src, err)
	}
}

func TestArithmetic(t *testing.T) {
	wantInt(t, "1 + 2 + 3", 6)
	wantBool(t, "1 = 1", true)
	wantBool(t, "1 = 2", false)
	wantBool(t, "true = true", true)
	wantBool(t, "not (true && false)", true)
}

func TestControl(t *testing.T) {
	wantInt(t, "if true then 1 else 2", 1)
	wantInt(t, "if false then 1 else 2", 2)
	wantInt(t, "let x = 40 in x + 2", 42)
	wantInt(t, "let x = 1 in let x = 2 in x", 2)
}

func TestReferences(t *testing.T) {
	wantInt(t, "!(ref 5)", 5)
	wantInt(t, "let x = ref 1 in let _ = x := 9 in !x", 9)
	wantBool(t, "(ref 1) = (ref 1)", false) // distinct locations
	wantBool(t, "let x = ref 1 in x = x", true)
	// Aliasing: writes through one alias are seen through the other.
	wantInt(t, "let x = ref 1 in let y = x in let _ = y := 5 in !x", 5)
}

func TestUntypedButRunnable(t *testing.T) {
	// The concrete semantics is untyped: reusing a cell at another
	// shape is fine as long as no operation misapplies.
	wantBool(t, "let x = ref 1 in let _ = x := true in !x", true)
}

func TestErrorToken(t *testing.T) {
	wantTypeError(t, "1 + true")
	wantTypeError(t, "true + 1")
	wantTypeError(t, "1 = true")
	wantTypeError(t, "not 0")
	wantTypeError(t, "0 && true")
	wantTypeError(t, "if 0 then 1 else 2")
	wantTypeError(t, "!3")
	wantTypeError(t, "3 := 4")
	wantTypeError(t, "nope")
	// The error can hide behind a feasible branch.
	wantTypeError(t, "if false then 1 else (1 + true)")
	// ... and not fire behind an infeasible one.
	wantInt(t, "if true then 1 else (1 + true)", 1)
}

func TestBlocksAreTransparent(t *testing.T) {
	wantInt(t, "{t 1 + {s 2 s} t}", 3)
	wantInt(t, "{s let x = ref 1 in {t !x t} s}", 1)
}

func TestShortCircuitIsNotUsed(t *testing.T) {
	// && evaluates both operands (matching the type system's view);
	// an ill-typed right operand errors even when the left is false.
	wantTypeError(t, "false && (not 1)")
}

func TestFuel(t *testing.T) {
	ev := &Evaluator{Fuel: 2}
	_, err := ev.Eval(EmptyEnv(), NewMemory(), lang.MustParse("1 + (2 + (3 + 4))"))
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("got %v, want fuel error", err)
	}
}

func TestMemorySize(t *testing.T) {
	ev := NewEvaluator()
	m := NewMemory()
	if _, err := ev.Eval(EmptyEnv(), m, lang.MustParse("let a = ref 1 in ref 2")); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
}
