// Package concrete implements the standard big-step operational
// semantics E ⊢ ⟨M; e⟩ → r that the paper's Theorem 1 (MIX soundness)
// is stated against. The evaluation result is either a memory–value
// pair or a distinguished error token (ErrTypeError), raised exactly
// when an operation is applied to a value of the wrong shape.
//
// Block annotations have no run-time meaning and are skipped, so this
// evaluator is the ground truth for property tests: any program
// accepted by the mixed checker must never evaluate to the error
// token.
package concrete

import (
	"errors"
	"fmt"

	"mix/internal/lang"
)

// Value is a concrete value: an integer, a boolean, or a location.
type Value interface {
	isValue()
	String() string
}

// IntV is an integer value.
type IntV struct{ Val int64 }

// BoolV is a boolean value.
type BoolV struct{ Val bool }

// LocV is a heap location.
type LocV struct{ Loc int }

// ClosV is a function closure.
type ClosV struct {
	Param string
	Body  lang.Expr
	Env   *Env
}

func (IntV) isValue()  {}
func (BoolV) isValue() {}
func (LocV) isValue()  {}
func (ClosV) isValue() {}

func (v ClosV) String() string { return "<fun " + v.Param + ">" }

func (v IntV) String() string { return fmt.Sprintf("%d", v.Val) }
func (v BoolV) String() string {
	if v.Val {
		return "true"
	}
	return "false"
}
func (v LocV) String() string { return fmt.Sprintf("loc%d", v.Loc) }

// Memory is a concrete memory M: a map from locations to values plus
// an allocation counter.
type Memory struct {
	cells map[int]Value
	next  int
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{cells: map[int]Value{}} }

// Alloc stores v at a fresh location and returns it.
func (m *Memory) Alloc(v Value) LocV {
	m.next++
	m.cells[m.next] = v
	return LocV{m.next}
}

// Read returns the value at l.
func (m *Memory) Read(l LocV) (Value, bool) {
	v, ok := m.cells[l.Loc]
	return v, ok
}

// Write stores v at l.
func (m *Memory) Write(l LocV, v Value) { m.cells[l.Loc] = v }

// Size reports the number of allocated cells.
func (m *Memory) Size() int { return len(m.cells) }

// Env is a concrete environment E.
type Env struct {
	name   string
	val    Value
	parent *Env
}

// EmptyEnv is the empty concrete environment.
func EmptyEnv() *Env { return nil }

// Extend binds name to v.
func (e *Env) Extend(name string, v Value) *Env {
	return &Env{name: name, val: v, parent: e}
}

// Lookup finds the value bound to name.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if s.name == name {
			return s.val, true
		}
	}
	return nil, false
}

// ErrTypeError is the distinguished error token of the semantics.
var ErrTypeError = errors.New("concrete: run-time type error")

// ErrFuel is returned when evaluation exceeds its step budget.
var ErrFuel = errors.New("concrete: out of fuel")

// TypeError wraps ErrTypeError with a position and message.
type TypeError struct {
	Pos lang.Pos
	Msg string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("%s: %v: %s", e.Pos, ErrTypeError, e.Msg)
}

func (e *TypeError) Unwrap() error { return ErrTypeError }

// Evaluator runs programs with a step budget.
type Evaluator struct {
	Fuel int
}

// NewEvaluator returns an evaluator with a generous default budget.
func NewEvaluator() *Evaluator { return &Evaluator{Fuel: 1 << 20} }

// Eval evaluates e under env and memory m, returning the result value.
// The memory is updated in place.
func (ev *Evaluator) Eval(env *Env, m *Memory, e lang.Expr) (Value, error) {
	if ev.Fuel <= 0 {
		return nil, ErrFuel
	}
	ev.Fuel--
	switch e := e.(type) {
	case lang.Var:
		v, ok := env.Lookup(e.Name)
		if !ok {
			return nil, &TypeError{e.Pos(), fmt.Sprintf("unbound variable %s", e.Name)}
		}
		return v, nil
	case lang.IntLit:
		return IntV{e.Val}, nil
	case lang.BoolLit:
		return BoolV{e.Val}, nil
	case lang.Plus:
		x, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		y, err := ev.Eval(env, m, e.Y)
		if err != nil {
			return nil, err
		}
		xi, ok1 := x.(IntV)
		yi, ok2 := y.(IntV)
		if !ok1 || !ok2 {
			return nil, &TypeError{e.Pos(), "+ applied to non-integers"}
		}
		return IntV{xi.Val + yi.Val}, nil
	case lang.Eq:
		x, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		y, err := ev.Eval(env, m, e.Y)
		if err != nil {
			return nil, err
		}
		switch xv := x.(type) {
		case IntV:
			if yv, ok := y.(IntV); ok {
				return BoolV{xv.Val == yv.Val}, nil
			}
		case BoolV:
			if yv, ok := y.(BoolV); ok {
				return BoolV{xv.Val == yv.Val}, nil
			}
		case LocV:
			if yv, ok := y.(LocV); ok {
				return BoolV{xv.Loc == yv.Loc}, nil
			}
		}
		return nil, &TypeError{e.Pos(), "= applied to differently shaped values"}
	case lang.Lt:
		x, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		y, err := ev.Eval(env, m, e.Y)
		if err != nil {
			return nil, err
		}
		xi, ok1 := x.(IntV)
		yi, ok2 := y.(IntV)
		if !ok1 || !ok2 {
			return nil, &TypeError{e.Pos(), "< applied to non-integers"}
		}
		return BoolV{xi.Val < yi.Val}, nil
	case lang.Not:
		x, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		xb, ok := x.(BoolV)
		if !ok {
			return nil, &TypeError{e.Pos(), "not applied to non-boolean"}
		}
		return BoolV{!xb.Val}, nil
	case lang.And:
		x, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		xb, ok := x.(BoolV)
		if !ok {
			return nil, &TypeError{e.Pos(), "&& applied to non-boolean"}
		}
		y, err := ev.Eval(env, m, e.Y)
		if err != nil {
			return nil, err
		}
		yb, ok := y.(BoolV)
		if !ok {
			return nil, &TypeError{e.Pos(), "&& applied to non-boolean"}
		}
		return BoolV{xb.Val && yb.Val}, nil
	case lang.If:
		cv, err := ev.Eval(env, m, e.Cond)
		if err != nil {
			return nil, err
		}
		cb, ok := cv.(BoolV)
		if !ok {
			return nil, &TypeError{e.Pos(), "if condition not boolean"}
		}
		if cb.Val {
			return ev.Eval(env, m, e.Then)
		}
		return ev.Eval(env, m, e.Else)
	case lang.Let:
		bv, err := ev.Eval(env, m, e.Bound)
		if err != nil {
			return nil, err
		}
		return ev.Eval(env.Extend(e.Name, bv), m, e.Body)
	case lang.Ref:
		xv, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		return m.Alloc(xv), nil
	case lang.Deref:
		xv, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		l, ok := xv.(LocV)
		if !ok {
			return nil, &TypeError{e.Pos(), "dereference of non-location"}
		}
		v, ok := m.Read(l)
		if !ok {
			return nil, &TypeError{e.Pos(), "dangling location"}
		}
		return v, nil
	case lang.Assign:
		xv, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		l, ok := xv.(LocV)
		if !ok {
			return nil, &TypeError{e.Pos(), "assignment to non-location"}
		}
		yv, err := ev.Eval(env, m, e.Y)
		if err != nil {
			return nil, err
		}
		m.Write(l, yv)
		return yv, nil
	case lang.Fun:
		return ClosV{Param: e.Param, Body: e.Body, Env: env}, nil
	case lang.App:
		fv, err := ev.Eval(env, m, e.F)
		if err != nil {
			return nil, err
		}
		cl, ok := fv.(ClosV)
		if !ok {
			return nil, &TypeError{e.Pos(), "application of non-function"}
		}
		av, err := ev.Eval(env, m, e.X)
		if err != nil {
			return nil, err
		}
		return ev.Eval(cl.Env.Extend(cl.Param, av), m, cl.Body)
	case lang.TypedBlock:
		return ev.Eval(env, m, e.Body)
	case lang.SymBlock:
		return ev.Eval(env, m, e.Body)
	}
	return nil, fmt.Errorf("concrete: unknown expression %T", e)
}
