package concrete

import (
	"testing"

	"mix/internal/lang"
)

func mustParse(t *testing.T, src string) lang.Expr {
	t.Helper()
	e, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLt(t *testing.T) {
	wantBool(t, "1 < 2", true)
	wantBool(t, "2 < 1", false)
	wantBool(t, "0 < 0", false)
	wantTypeError(t, "true < 1")
	wantTypeError(t, "1 < false")
}

func TestClosures(t *testing.T) {
	wantInt(t, "(fun x -> x + 1) 4", 5)
	wantInt(t, "(fun x -> fun y -> x + y) 1 2", 3)
	wantInt(t, "let id = fun x -> x in id 7", 7)
	wantInt(t, "let a = 10 in let f = fun x -> x + a in let a = 99 in f 1", 11)
	wantBool(t, "let id = fun x -> x in id true", true)
	wantInt(t, "let twice = fun f -> fun x -> f (f x) in twice (fun n -> n + 3) 1", 7)
}

func TestClosuresInStore(t *testing.T) {
	wantInt(t, "let r = ref (fun x -> x + 1) in (!r) 4", 5)
	wantInt(t, `let r = ref (fun x -> x + 1) in
		let _ = r := (fun x -> x + 100) in (!r) 1`, 101)
}

func TestApplicationErrors(t *testing.T) {
	wantTypeError(t, "1 2")
	wantTypeError(t, "true 2")
	wantTypeError(t, "(ref 1) 2")
}

func TestAnnotationIgnoredAtRuntime(t *testing.T) {
	// The concrete semantics is untyped; annotations are inert.
	wantInt(t, "(fun x : int -> x) 3", 3)
	wantBool(t, "(fun x : int -> x) true", true)
}

func TestLandinKnotHitsFuel(t *testing.T) {
	ev := &Evaluator{Fuel: 5000}
	src := `let r = ref (fun x -> x) in
		let f = fun n -> (!r) n in
		let _ = r := f in
		f 0`
	_, err := ev.Eval(EmptyEnv(), NewMemory(), mustParse(t, src))
	if err != ErrFuel {
		t.Fatalf("got %v, want fuel exhaustion", err)
	}
}
