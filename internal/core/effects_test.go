package core

import (
	"testing"

	"mix/internal/lang"
	"mix/internal/solver"
	"mix/internal/sym"
	"mix/internal/types"
)

// derefAfterBlock checks whether !r still provably equals 5 after a
// typed block, under the given options.
func derefKnownAfterBlock(t *testing.T, opts Options, block string) bool {
	t.Helper()
	c := New(opts)
	src := "let r = ref 5 in let _ = " + block + " in !r"
	// Run the executor directly so the final value is inspectable.
	x := c.Executor()
	rs, err := x.Run(sym.EmptyEnv(), x.InitialState(), lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Err != nil {
		t.Fatalf("unexpected results %v", rs)
	}
	tr := sym.NewTranslator()
	term, err := tr.Term(rs[0].Val)
	if err != nil {
		t.Fatal(err)
	}
	known, err := c.Solver().Valid(solver.Implies(tr.Sides(),
		solver.Eq{X: term, Y: solver.IntConst{Val: 5}}))
	if err != nil {
		t.Fatal(err)
	}
	return known
}

func TestEffectAwareTypedBlockPreservesMemory(t *testing.T) {
	// Without effects: the typed block havocs memory, so !r is
	// unknown afterwards.
	if derefKnownAfterBlock(t, Options{}, "{t 1 + 1 t}") {
		t.Fatal("plain SETYPBLOCK must havoc memory")
	}
	// With the effect refinement: the pure block leaves memory alone.
	if !derefKnownAfterBlock(t, Options{EffectAware: true}, "{t 1 + 1 t}") {
		t.Fatal("effect-aware SETYPBLOCK should preserve memory across a pure block")
	}
	// A writing block still havocs even with effects on.
	if derefKnownAfterBlock(t, Options{EffectAware: true}, "{t (ref 0) := 1 t}") {
		t.Fatal("a writing typed block must still havoc")
	}
}

func TestEffectAnalysisConservative(t *testing.T) {
	cases := []struct {
		src   string
		write bool
	}{
		{"1 + 2", false},
		{"!x", false},
		{"if b then 1 else 2", false},
		{"let y = 1 in y", false},
		{"fun z -> z := 1", false}, // effect deferred to application
		{"x := 1", true},
		{"ref 1", true},
		{"f 1", true},     // unknown callee
		{"{s 1 s}", true}, // nested symbolic block: conservative
		{"let y = x := 1 in y", true},
		{"if b then x := 1 else 2", true},
		{"not (1 = !x)", false},
		{"1 < !x", false},
	}
	for _, c := range cases {
		e := lang.MustParse(c.src)
		if got := mayWrite(e); got != c.write {
			t.Errorf("mayWrite(%q) = %t, want %t", c.src, got, c.write)
		}
	}
}

func TestEffectAwareEndToEndPrecision(t *testing.T) {
	// The whole point: a fact established before a pure typed block
	// survives it and can prove a later branch dead.
	src := `{s let r = ref 0 in
	          let _ = {t 1 + 1 t} in
	          if !r = 0 then 1 else (1 + true) s}`
	// Without effects the bad branch is feasible (memory unknown).
	c := New(Options{})
	_, err := c.Check(types.EmptyEnv(), lang.MustParse(src))
	wantErr(t, err, "operand of +")
	// With effects the read resolves and the branch is dead.
	c2 := New(Options{EffectAware: true})
	ty, err := c2.Check(types.EmptyEnv(), lang.MustParse(src))
	wantOK(t, ty, err, types.Int)
}

func TestEffectAwareSoundness(t *testing.T) {
	// The randomized Theorem-1 property holds with the refinement on.
	runSoundnessConfig(t, Options{EffectAware: true}, false, 300)
	runSoundnessConfig(t, Options{EffectAware: true}, true, 300)
}
