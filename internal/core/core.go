// Package core implements MIX itself: the two mix rules of the
// paper's Figure 4 that connect an off-the-shelf type checker
// (internal/types) and an off-the-shelf symbolic executor
// (internal/sym).
//
//   - TSYMBLOCK type checks a symbolic block {s e s}: it builds a
//     symbolic environment of fresh variables typed by Γ, runs the
//     executor from ⟨true; μ⟩, demands every surviving path agree on
//     one type and leave memory consistent, and demands the path
//     conditions be exhaustive (their disjunction a tautology).
//   - SETYPBLOCK symbolically executes a typed block {t e t}: it
//     abstracts Σ to a typing environment (⊢ Σ : Γ), requires the
//     current memory be consistent, type checks the body, and returns
//     a fresh symbolic value of the derived type with a havocked
//     memory μ′.
//
// Neither underlying analysis knows about the other; each reaches the
// other only through the hook it already exposes.
package core

import (
	"errors"
	"fmt"
	"sync"

	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/lang"
	"mix/internal/solver"
	"mix/internal/sym"
	"mix/internal/types"
)

// Options configures a mixed analysis. The zero value gives the sound
// forking configuration used throughout the paper's formalism.
type Options struct {
	// Unsound replaces the exhaustive(...) tautology check with the
	// paper's "good enough check" (namely none), modeling how symbolic
	// execution is typically deployed for bug finding.
	Unsound bool
	// IfMode selects forking (SEIF-TRUE/FALSE) or deferring
	// (SEIF-DEFER) at conditionals.
	IfMode sym.IfMode
	// Merge enables veritesting-style join-point state merging in
	// ForkIf mode (DESIGN.md section 12).
	Merge engine.MergeMode
	// NoConcreteFold disables the SEPLUS-CONC style partial-evaluation
	// rules.
	NoConcreteFold bool
	// SolverAddrEq uses the solver to decide address equality in the
	// OVERWRITE-OK rule instead of syntactic equivalence.
	SolverAddrEq bool
	// MaxPaths bounds symbolic paths per block (0 = default).
	MaxPaths int
	// EffectAware enables the paper's Section 3.2 refinement: "if we
	// were to use a type and effect system rather than just a type
	// system, we could avoid introducing a completely fresh memory μ′
	// in SETYPBLOCK". A simple syntactic effect analysis skips the
	// memory havoc when the typed block provably performs no writes.
	EffectAware bool
	// Concolic enables the hybrid-concolic SEVAR variant (Section
	// 3.1): symbolic-variable lookups return concrete values recorded
	// in the path condition. Only meaningful together with Unsound,
	// since a single concolic path cannot be exhaustive.
	Concolic bool
	// Engine, when non-nil, parallelizes path exploration across its
	// worker pool and routes every solver query through its memoizing
	// SolverPool. Nil preserves the sequential single-solver behavior.
	Engine *engine.Engine
	// Solver selects the search core and resource bounds of the
	// checker's own solver (the one used when Engine is nil, and for
	// the address-equality side queries). The zero value is the
	// default CDCL core with standard bounds.
	Solver solver.Config
	// ShardPrefix, when non-empty, restricts every top-level symbolic
	// block to the subtree selected by forcing its first
	// len(ShardPrefix) fork decisions (false = then, true = else); the
	// pruned siblings' guards keep the exhaustiveness check sound per
	// shard, and BlockTypes records each block's agreed type so the
	// shard coordinator can detect cross-shard type disagreement the
	// restricted runs cannot see locally (DESIGN.md section 15). Only
	// meaningful in ForkIf mode.
	ShardPrefix []bool
}

// Report records one symbolic-execution finding and whether its path
// was feasible (infeasible findings are discarded, which is exactly
// how MIX eliminates false positives).
type Report struct {
	Pos      lang.Pos
	Msg      string
	Guard    string
	Feasible bool
}

func (r Report) String() string {
	verdict := "discarded (infeasible path)"
	if r.Feasible {
		verdict = "error"
	}
	return fmt.Sprintf("%s: %s: %s [under %s]", r.Pos, verdict, r.Msg, r.Guard)
}

// Checker runs a mixed analysis. Construct with New.
type Checker struct {
	opts Options
	typs *types.Checker
	exec *sym.Executor
	solv *solver.Solver
	eng  *engine.Engine
	// mu guards Reports: parallel branches reach tSymBlock through
	// nested typed blocks concurrently.
	mu      sync.Mutex
	Reports []Report
	// BlockTypes records, under a non-empty Options.ShardPrefix, one
	// "pos type" line per successfully checked top-level symbolic block
	// in program order. Every shard sees every top-level block, so the
	// lists are positionally comparable across shards; a mismatch at
	// some index is the sharded rendering of the unsharded "paths
	// disagree on type" rejection, which no single restricted run can
	// observe when the disagreeing paths land in different shards.
	BlockTypes []string
	// suppress, while positive, drops addReport findings: the vacuous-
	// block retype re-explores subtrees whose findings belong to other
	// shards.
	suppress int
}

// New builds a mixed checker: a standard type checker and a standard
// symbolic executor, each given a hook that invokes the corresponding
// mix rule.
func New(opts Options) *Checker {
	c := &Checker{opts: opts, solv: opts.Solver.NewSolver(), eng: opts.Engine}
	c.typs = &types.Checker{SymBlock: c.tSymBlock}
	c.exec = sym.NewExecutor()
	c.exec.Mode = opts.IfMode
	c.exec.MergeMode = opts.Merge
	c.exec.ConcreteFold = !opts.NoConcreteFold
	c.exec.Concolic = opts.Concolic
	if opts.MaxPaths > 0 {
		c.exec.MaxPaths = opts.MaxPaths
	}
	c.exec.TypBlock = c.seTypBlock
	c.exec.MemCheck = c.memOK
	c.exec.Engine = opts.Engine
	c.exec.Prefix = opts.ShardPrefix
	return c
}

// Solver exposes the underlying solver (for statistics).
func (c *Checker) Solver() *solver.Solver { return c.solv }

// Executor exposes the underlying symbolic executor (for statistics).
func (c *Checker) Executor() *sym.Executor { return c.exec }

// sat routes satisfiability queries through the engine's memoizing
// pool when present (required under parallel exploration: the single
// solver instance is not concurrency-safe), else the plain solver.
func (c *Checker) sat(f solver.Formula) (bool, error) {
	if c.eng != nil {
		return c.eng.Sat(f)
	}
	return c.solv.Sat(f)
}

// Check analyzes e as if wrapped in a typed block at the outermost
// scope ("MIX can handle either case").
func (c *Checker) Check(env *types.Env, e lang.Expr) (types.Type, error) {
	return c.typs.Check(env, e)
}

// CheckSymbolic analyzes e as if wrapped in a symbolic block at the
// outermost scope.
func (c *Checker) CheckSymbolic(env *types.Env, e lang.Expr) (types.Type, error) {
	return c.tSymBlock(env, e)
}

// tSymBlock is the TSYMBLOCK rule. Under a shard prefix it also
// fingerprints each top-level block's agreed type into BlockTypes for
// the coordinator's cross-shard agreement check.
func (c *Checker) tSymBlock(env *types.Env, e lang.Expr) (types.Type, error) {
	fingerprint := len(c.opts.ShardPrefix) > 0 && !c.exec.RunActive()
	ty, err := c.symBlock(env, e)
	if err != nil {
		return nil, err
	}
	if fingerprint {
		c.mu.Lock()
		c.BlockTypes = append(c.BlockTypes, fmt.Sprintf("%s %s", e.Pos(), ty))
		c.mu.Unlock()
	}
	return ty, nil
}

func (c *Checker) symBlock(env *types.Env, e lang.Expr) (types.Type, error) {
	// Σ(x) = α_x : Γ(x) for all x ∈ dom(Γ).
	senv := sym.EmptyEnv()
	for _, name := range env.Names() {
		ty, _ := env.Lookup(name)
		senv = senv.Extend(name, c.exec.Fresh.Var(ty, name))
	}
	// S = ⟨true; μ⟩ with μ fresh.
	st := c.exec.InitialState()
	before := c.exec.ImprecisionCount()
	results, err := c.exec.Run(senv, st, e)
	if err != nil {
		return nil, err
	}
	degraded := c.exec.ImprecisionCount() > before

	// Pruned results are another shard's paths: their guards count
	// toward exhaustiveness, ghosts (pruned with a value) additionally
	// toward type agreement, and nothing else — the owning shard does
	// the reporting and the memory checks.
	var okResults, ghosts []sym.Result
	var prunedGuards []sym.Val
	for _, r := range results {
		if r.Pruned {
			prunedGuards = append(prunedGuards, r.State.Guard)
			if !r.Val.IsZero() {
				ghosts = append(ghosts, r)
			}
			continue
		}
		if r.Err == nil {
			okResults = append(okResults, r)
			continue
		}
		feasible, ferr := c.feasible(r.Err.State.Guard)
		if ferr != nil {
			if unknownSat(ferr) {
				// Solver resource limit: unknown → keep the path and
				// its finding (conservative, same as engine.Feasible).
				feasible = true
			} else {
				return nil, fmt.Errorf("core: feasibility check failed: %w", ferr)
			}
		}
		c.addReport(Report{
			Pos: r.Err.Pos, Msg: r.Err.Msg,
			Guard: r.Err.State.Guard.String(), Feasible: feasible,
		})
		if feasible {
			return nil, &types.Error{Pos: r.Err.Pos, Msg: r.Err.Msg}
		}
	}

	// A truncated exploration (budget, deadline, recovered panic) can
	// never certify the block: the missing paths could disagree on
	// type, corrupt memory, or break exhaustiveness. Feasible path
	// errors found above still win — they were genuinely explored — but
	// from here on the only sound answer is the degradation ladder's
	// top, surfaced as a classified fault the caller absorbs into an
	// "unknown" verdict rather than a crash or a false "well typed".
	if degraded {
		cause := c.exec.Degraded()
		if cause == nil {
			cause = fault.New(fault.PathBudget, "core.tSymBlock", "", nil)
		}
		return nil, fmt.Errorf("core: %s: symbolic block exploration truncated, cannot certify: %w",
			e.Pos(), cause)
	}
	if len(okResults) == 0 && len(ghosts) == 0 {
		if len(prunedGuards) > 0 {
			// Sharded, and every leaf inside this shard's slice erred
			// infeasibly (surviving or ghost leaves would carry a
			// type), so the slice cannot type the block. Re-run it
			// unrestricted purely to recover the type the full tree
			// agrees on: findings are suppressed — each leaf's
			// canonical shard reports them — but a feasible error
			// still rejects, exactly as it does in the owning shard.
			return c.retypeFull(env, e)
		}
		return nil, &types.Error{Pos: e.Pos(), Msg: "symbolic block has no surviving execution paths"}
	}

	// All paths must produce one type τ and a consistent memory; ghost
	// leaves count toward agreement (their canonical shard holds the
	// identical value).
	typed := append(okResults[:len(okResults):len(okResults)], ghosts...)
	ty := typed[0].Val.T
	for _, r := range typed[1:] {
		if !types.Equal(r.Val.T, ty) {
			return nil, &types.Error{Pos: e.Pos(),
				Msg: fmt.Sprintf("symbolic block paths disagree on type: %s vs %s", ty, r.Val.T)}
		}
	}
	for _, r := range okResults {
		if err := c.memOK(r.State); err != nil {
			// ⊢ m(S_i) ok failed on this path; a feasibility check
			// applies just as for type errors.
			feasible, ferr := c.feasible(r.State.Guard)
			if ferr != nil {
				if unknownSat(ferr) {
					feasible = true
				} else {
					return nil, fmt.Errorf("core: feasibility check failed: %w", ferr)
				}
			}
			c.addReport(Report{
				Pos: e.Pos(), Msg: err.Error(),
				Guard: r.State.Guard.String(), Feasible: feasible,
			})
			if feasible {
				return nil, &types.Error{Pos: e.Pos(),
					Msg: fmt.Sprintf("memory inconsistent at end of symbolic block: %v", err)}
			}
		}
	}

	// exhaustive(g(S_1), ..., g(S_n)). Pruned guards stand in for the
	// subtrees other shards explore: a shard's own leaves plus its
	// pruned roots cover the full tree, so every shard's check passes
	// exactly when the unsharded check would — a shard that lost a
	// path inside its own slice still fails, because the pruned roots
	// are disjoint from its slice.
	if !c.opts.Unsound {
		tr := sym.NewTranslator()
		guards := make([]solver.Formula, 0, len(okResults)+len(prunedGuards))
		for _, r := range okResults {
			g, err := tr.Formula(r.State.Guard)
			if err != nil {
				return nil, fmt.Errorf("core: translating guard: %w", err)
			}
			guards = append(guards, g)
		}
		for _, pg := range prunedGuards {
			g, err := tr.Formula(pg)
			if err != nil {
				return nil, fmt.Errorf("core: translating pruned guard: %w", err)
			}
			guards = append(guards, g)
		}
		// Valid(g1 ∨ ... ∨ gn) given the side constraints: check that
		// ¬(g1 ∨ ... ∨ gn) ∧ sides is unsatisfiable.
		counter, err := c.sat(solver.NewAnd(solver.NewNot(solver.Disj(guards...)), tr.Sides()))
		if err != nil {
			return nil, fmt.Errorf("core: exhaustiveness check failed: %w", err)
		}
		if counter {
			return nil, &types.Error{Pos: e.Pos(),
				Msg: "symbolic block executions are not exhaustive"}
		}
	}
	return ty, nil
}

// retypeFull re-checks a symbolic block with the shard prefix lifted,
// purely to recover its type. Top-level blocks are checked
// sequentially (the type checker is a sequential walker and the
// executor has no Run in flight here), so swapping the prefix out and
// back is unobserved by any concurrent reader.
func (c *Checker) retypeFull(env *types.Env, e lang.Expr) (types.Type, error) {
	c.mu.Lock()
	c.suppress++
	c.mu.Unlock()
	prefix := c.exec.Prefix
	c.exec.Prefix = nil
	ty, err := c.symBlock(env, e)
	c.exec.Prefix = prefix
	c.mu.Lock()
	c.suppress--
	c.mu.Unlock()
	return ty, err
}

// seTypBlock is the SETYPBLOCK rule.
func (c *Checker) seTypBlock(env *sym.Env, st sym.State, e lang.Expr) (sym.Result, error) {
	// ⊢ Σ : Γ — abstract each symbolic value to its type.
	tenv := types.EmptyEnv()
	for _, name := range env.Names() {
		v, _ := env.Lookup(name)
		tenv = tenv.Extend(name, v.T)
	}
	// ⊢ m(S) ok: the typed block relies purely on type information, so
	// the memory must be consistently typed on entry.
	if err := c.memOK(st); err != nil {
		return sym.Result{State: st, Err: &sym.PathError{
			Pos: e.Pos(), Msg: fmt.Sprintf("memory inconsistent entering typed block: %v", err), State: st,
		}}, nil
	}
	ty, err := c.typs.Check(tenv, e)
	if err != nil {
		// A classified fault from a nested symbolic block (deadline,
		// budget, panic) is not a type error of this path — it must
		// propagate so the enclosing executor degrades, instead of
		// masquerading as a path-conditioned finding.
		if fault.Degradable(err) {
			return sym.Result{}, err
		}
		// A type error inside a typed block is a path-conditioned
		// finding: if the enclosing symbolic path is infeasible, the
		// block is dead and the error is discarded (Section 2's
		// unreachable-code example).
		return sym.Result{State: st, Err: &sym.PathError{
			Pos: e.Pos(), Msg: err.Error(), State: st,
		}}, nil
	}
	// The block evaluates to a fresh α : τ; memory is havocked to a
	// fresh μ′ since the type system does not track writes — unless
	// the effect analysis proves the block write-free (Section 3.2's
	// type-and-effect refinement).
	out := st
	if !c.opts.EffectAware || mayWrite(e) {
		out.Mem = c.exec.Fresh.Memory()
	}
	return sym.Result{State: out, Val: c.exec.Fresh.Var(ty, "typblock")}, nil
}

// mayWrite is a syntactic effect analysis: it reports whether e can
// write to memory. Applications are conservatively effectful (the
// callee's body is unknown without an effect system proper), as are
// nested symbolic blocks.
func mayWrite(e lang.Expr) bool {
	switch e := e.(type) {
	case lang.Var, lang.IntLit, lang.BoolLit, lang.Fun:
		// A function literal defers its body's effects to the
		// application site, which is itself conservative.
		return false
	case lang.Plus:
		return mayWrite(e.X) || mayWrite(e.Y)
	case lang.Eq:
		return mayWrite(e.X) || mayWrite(e.Y)
	case lang.Lt:
		return mayWrite(e.X) || mayWrite(e.Y)
	case lang.Not:
		return mayWrite(e.X)
	case lang.And:
		return mayWrite(e.X) || mayWrite(e.Y)
	case lang.If:
		return mayWrite(e.Cond) || mayWrite(e.Then) || mayWrite(e.Else)
	case lang.Let:
		return mayWrite(e.Bound) || mayWrite(e.Body)
	case lang.Deref:
		return mayWrite(e.X)
	case lang.TypedBlock:
		return mayWrite(e.Body)
	}
	// Assign, Ref (allocation), App (unknown callee body), SymBlock:
	// conservatively effectful.
	return true
}

// memOK applies ⊢ m ok with the configured address-equality oracle.
func (c *Checker) memOK(st sym.State) error {
	if !c.opts.SolverAddrEq {
		return sym.MemOK(st.Mem)
	}
	guard := st.Guard
	eq := func(a, b sym.Val) bool {
		if sym.ValEqual(a, b) {
			return true
		}
		if !types.Equal(a.T, b.T) {
			return false
		}
		tr := sym.NewTranslator()
		ta, err := tr.Term(a)
		if err != nil {
			return false
		}
		tb, err := tr.Term(b)
		if err != nil {
			return false
		}
		g, err := tr.Formula(guard)
		if err != nil {
			return false
		}
		// Valid under the path condition: g ∧ sides ∧ a≠b unsat.
		sat, err := c.sat(solver.Conj(g, tr.Sides(), solver.Neq(ta, tb)))
		return err == nil && !sat
	}
	return sym.MemOKWith(st.Mem, eq)
}

// unknownSat reports whether a satisfiability error is a plain,
// deterministic solver resource limit — the "unknown" answer — as
// opposed to a transient classified fault (timeout, cancellation,
// injection) or a hard failure.
func unknownSat(err error) bool {
	return errors.Is(err, solver.ErrLimit) && fault.Of(err) == nil
}

// addReport appends a finding under the report lock (dropped during a
// retypeFull re-exploration, whose findings belong to other shards).
func (c *Checker) addReport(r Report) {
	c.mu.Lock()
	if c.suppress == 0 {
		c.Reports = append(c.Reports, r)
	}
	c.mu.Unlock()
}

// feasible checks whether a path condition is satisfiable.
func (c *Checker) feasible(g sym.Val) (bool, error) {
	tr := sym.NewTranslator()
	f, err := tr.Formula(g)
	if err != nil {
		return false, err
	}
	return c.sat(solver.NewAnd(f, tr.Sides()))
}
