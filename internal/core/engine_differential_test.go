package core

import (
	"testing"

	"mix/internal/engine"
	"mix/internal/langgen"
	"mix/internal/types"
)

// TestEngineMatchesDirectCheck is the core-language differential
// property test for the incremental solver pipeline: checking randomly
// generated programs through the engine (persistent environments,
// incremental PCs, sliced memoized solving) must agree with the plain
// checker — same accept/reject verdict and same derived type — for
// every program, in both outermost modes. Run under -race this
// exercises the persistent env/guard structures across workers.
func TestEngineMatchesDirectCheck(t *testing.T) {
	const programs = 200
	for _, symb := range []bool{false, true} {
		name := "typed"
		if symb {
			name = "symbolic"
		}
		t.Run(name, func(t *testing.T) {
			gen := langgen.New(0xE9E9, langgen.DefaultConfig())
			agreeAccept, agreeReject := 0, 0
			for i := 0; i < programs; i++ {
				prog := gen.Closed()
				check := func(opts Options) (types.Type, error) {
					c := New(opts)
					if symb {
						return c.CheckSymbolic(types.EmptyEnv(), prog)
					}
					return c.Check(types.EmptyEnv(), prog)
				}
				wantTy, wantErr := check(Options{})
				for _, workers := range []int{1, 4} {
					eng := engine.New(engine.Options{Workers: workers})
					gotTy, gotErr := check(Options{Engine: eng})
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("program %s: verdict diverges (workers=%d): direct err=%v, engine err=%v",
							prog, workers, wantErr, gotErr)
					}
					if wantErr == nil && !types.Equal(wantTy, gotTy) {
						t.Fatalf("program %s: type diverges (workers=%d): direct %s, engine %s",
							prog, workers, wantTy, gotTy)
					}
				}
				if wantErr == nil {
					agreeAccept++
				} else {
					agreeReject++
				}
			}
			if agreeAccept == 0 || agreeReject == 0 {
				t.Fatalf("degenerate distribution: %d accepted, %d rejected", agreeAccept, agreeReject)
			}
			t.Logf("%d accepted, %d rejected, all agree", agreeAccept, agreeReject)
		})
	}
}
