package core

import (
	"strings"
	"testing"

	"mix/internal/corpus"
	"mix/internal/lang"
	"mix/internal/types"
)

func TestContextSensitivityIdiom(t *testing.T) {
	// The paper's id example: an unannotated identity applied at two
	// types inside a symbolic block; pure typing cannot check it.
	src := "{s let id = fun x -> x in (id 3) + (if id true then 1 else 0) s}"
	ty, err := checkTyped(t, src)
	wantOK(t, ty, err, types.Int)

	var pure types.Checker
	_, err = pure.Check(types.EmptyEnv(),
		lang.MustParse("let id = fun x -> x in (id 3) + (if id true then 1 else 0)"))
	wantErr(t, err, "needs a type annotation")
}

func TestDivIdiom(t *testing.T) {
	// div returns bool only when the divisor is zero; symbolic
	// execution checks each call in its own context.
	src := `{s let div = fun x -> fun y ->
		if y = 0 then true else x + y in (div 7 4) + 1 s}`
	ty, err := checkTyped(t, src)
	wantOK(t, ty, err, types.Int)

	// Calling with zero makes the bool path feasible and the use of
	// the result as an int a real error.
	bad := `{s let div = fun x -> fun y ->
		if y = 0 then true else x + y in (div 7 0) + 1 s}`
	_, err = checkTyped(t, bad)
	wantErr(t, err, "operand of +")
}

func TestDivSymbolicDivisorForks(t *testing.T) {
	// With a symbolic divisor both return types are feasible; using
	// the result as an int must be rejected (the bool path is real).
	c := New(Options{})
	env := types.EmptyEnv().Extend("y", types.Int)
	src := `let div = fun x -> fun d ->
		if d = 0 then true else x + d in (div 7 y) + 1`
	_, err := c.CheckSymbolic(env, lang.MustParse(src))
	wantErr(t, err, "operand of +")

	// Guarding the call restores precision.
	guarded := `let div = fun x -> fun d ->
		if d = 0 then true else x + d in
		if y = 0 then 0 else (div 7 y) + 1`
	c2 := New(Options{})
	ty, err := c2.CheckSymbolic(env, lang.MustParse(guarded))
	wantOK(t, ty, err, types.Int)
}

func TestUnknownFunctionNeedsTypedBlock(t *testing.T) {
	env := types.EmptyEnv().Extend("extfun", types.Fun(types.Int, types.Int))
	// Bare symbolic application of an unknown function fails...
	c := New(Options{})
	_, err := c.CheckSymbolic(env, lang.MustParse("extfun 3"))
	wantErr(t, err, "unknown function")
	// ...but wrapping the call in a typed block models the result by
	// its type (the paper's "helping symbolic execution").
	c2 := New(Options{})
	ty, err := c2.CheckSymbolic(env, lang.MustParse("{t extfun 3 t} + 1"))
	wantOK(t, ty, err, types.Int)
}

func TestSignTrichotomyWithLt(t *testing.T) {
	// The paper's Section 2 sign example, now with a real < operator:
	// the three path conditions are exhaustive only together.
	c := New(Options{})
	env := types.EmptyEnv().Extend("x", types.Int)
	src := "if 0 < x then {t 1 t} else (if x = 0 then {t 0 t} else {t 2 t})"
	ty, err := c.CheckSymbolic(env, lang.MustParse(src))
	wantOK(t, ty, err, types.Int)
}

func TestLtRefinementProvesDeadCode(t *testing.T) {
	// 0 < x and x < 0 cannot both hold; the nested ill-typed block is
	// dead and must be discarded by the solver.
	c := New(Options{})
	env := types.EmptyEnv().Extend("x", types.Int)
	src := "if 0 < x then (if x < 0 then {t 1 + true t} else {t 1 t}) else {t 2 t}"
	ty, err := c.CheckSymbolic(env, lang.MustParse(src))
	wantOK(t, ty, err, types.Int)
	found := false
	for _, r := range c.Reports {
		if !r.Feasible && strings.Contains(r.Msg, "operand of +") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected discarded report, got %v", c.Reports)
	}
}

func TestAllIdiomsEndToEnd(t *testing.T) {
	for _, idiom := range corpus.CoreIdioms {
		idiom := idiom
		t.Run(idiom.Name, func(t *testing.T) {
			env := types.EmptyEnv()
			for _, p := range idiom.Env {
				te, err := lang.ParseType(p[1])
				if err != nil {
					t.Fatal(err)
				}
				ty, err := types.FromExpr(te)
				if err != nil {
					t.Fatal(err)
				}
				env = env.Extend(p[0], ty)
			}
			// MIX accepts the annotated program.
			c := New(Options{})
			if _, err := c.Check(env, lang.MustParse(idiom.Source)); err != nil {
				t.Fatalf("MIX rejected %s: %v", idiom.Name, err)
			}
			// Pure typing agrees with the idiom's expectation on the
			// stripped program.
			var pure types.Checker
			_, err := pure.Check(env, lang.MustParse(idiom.Stripped))
			if idiom.PureTypeRejects && err == nil {
				t.Fatalf("pure typing should reject stripped %s", idiom.Name)
			}
			if !idiom.PureTypeRejects && err != nil {
				t.Fatalf("pure typing should accept stripped %s: %v", idiom.Name, err)
			}
		})
	}
}

func TestClosureThroughTypedBoundaryIsAbstracted(t *testing.T) {
	// A closure entering a typed block is abstracted to its (unknown)
	// type; using it there is rejected — the lexical-scoping
	// limitation the paper acknowledges in Section 1.
	src := "{s let id = fun x -> x in {t id 3 t} s}"
	_, err := checkTyped(t, src)
	wantErr(t, err, "application of non-function")
}
