package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"mix/internal/engine"
	"mix/internal/langgen"
	"mix/internal/types"
)

// TestMergeModesMatchForking is the core-language differential test
// for join-point state merging (DESIGN.md section 12): checking
// randomly generated programs with Merge joins or aggressive must give
// the same verdict, the same derived type, the same error text, and
// the same findings as pure forking. Reports are compared on position,
// message, and feasibility; the guard string is excluded because a
// merged path's guard is by construction the disjunction of the arm
// guards — textually different, logically the same condition (a report
// is feasible under the disjunction exactly when it is feasible under
// one of the arms). Run under -race the engine leg exercises merged
// disjunction/ite queries across the parallel solver pool.
func TestMergeModesMatchForking(t *testing.T) {
	const programs = 200
	gen := langgen.New(0xE9E9, langgen.DefaultConfig())

	accepted, rejected, merges := 0, 0, 0
	for i := 0; i < programs; i++ {
		prog := gen.Closed()
		base := New(Options{})
		wantTy, wantErr := base.CheckSymbolic(types.EmptyEnv(), prog)
		wantReports := sortedReportText(base)
		if wantErr == nil {
			accepted++
		} else {
			rejected++
		}
		for _, mode := range []engine.MergeMode{engine.MergeJoins, engine.MergeAggressive} {
			opts := Options{Merge: mode}
			c := New(opts)
			gotTy, gotErr := c.CheckSymbolic(types.EmptyEnv(), prog)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("program %s (%s): verdict diverges: forking err=%v, merged err=%v",
					prog, mode, wantErr, gotErr)
			}
			if wantErr != nil && wantErr.Error() != gotErr.Error() {
				t.Fatalf("program %s (%s): error text diverges:\nforking: %v\nmerged:  %v",
					prog, mode, wantErr, gotErr)
			}
			if wantErr == nil && !types.Equal(wantTy, gotTy) {
				t.Fatalf("program %s (%s): type diverges: forking %s, merged %s",
					prog, mode, wantTy, gotTy)
			}
			if got := sortedReportText(c); got != wantReports {
				t.Fatalf("program %s (%s): reports diverge\nforking:\n%s\nmerged:\n%s",
					prog, mode, wantReports, got)
			}
			if mode == engine.MergeJoins {
				merges += c.Executor().Stats.Merges
			}
		}
		// Merged disjunction guards and ite-defined variables must also
		// survive the engine's sliced, memoized solving path.
		eng := engine.New(engine.Options{Workers: 4})
		c := New(Options{Merge: engine.MergeJoins, Engine: eng})
		gotTy, gotErr := c.CheckSymbolic(types.EmptyEnv(), prog)
		eng.Close()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("program %s (joins+engine): verdict diverges: forking err=%v, merged err=%v",
				prog, wantErr, gotErr)
		}
		if wantErr == nil && !types.Equal(wantTy, gotTy) {
			t.Fatalf("program %s (joins+engine): type diverges: forking %s, merged %s",
				prog, wantTy, gotTy)
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate distribution: %d accepted, %d rejected", accepted, rejected)
	}
	if merges == 0 {
		t.Fatal("no program triggered a join-point merge; property is vacuous")
	}
	t.Logf("%d accepted, %d rejected, %d joins-mode merges, all agree", accepted, rejected, merges)
}

// sortedReportText canonicalizes a checker's findings for cross-mode
// comparison: one line per distinct (position, message), feasible when
// ANY record of it was feasible, sorted. Forking revisits a statement
// once per path, so one finding can recur — infeasible under one arm's
// guard, feasible under the other — where the merged flow records it
// once under the disjunction, which is feasible exactly when some arm
// is. The OR-fold is that equivalence, applied to both sides.
func sortedReportText(c *Checker) string {
	feasible := map[string]bool{}
	for _, r := range c.Reports {
		key := fmt.Sprintf("%s: %s", r.Pos, r.Msg)
		feasible[key] = feasible[key] || r.Feasible
	}
	out := make([]string, 0, len(feasible))
	for key, f := range feasible {
		out = append(out, fmt.Sprintf("%s [feasible=%v]", key, f))
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}
