package core

import (
	"fmt"
	"testing"

	"mix/internal/engine"
	"mix/internal/lang"
	"mix/internal/langgen"
	"mix/internal/types"
)

// TestDiskCacheWarmMatchesCold is the core-language differential for
// the persistent solver cache: checking programs against an engine
// whose cache is backed by a directory must agree with the plain
// checker — cold (writing the store), warm (a fresh cache reloading
// it), and at 1 and 4 workers. A verdict persisted under the wrong
// key, a model deserialized to different rationals, or a stale entry
// trusted across runs all show up as a flipped accept/reject or a
// changed type.
//
// Two program families feed the differential. Randomly generated
// closed langgen programs cover breadth, but their guards are mostly
// boolean and concrete, so they rarely reach a fresh DPLL solve with
// a persistable definite verdict. The second family is open programs
// over free int variables whose path conditions are two-variable
// inequalities — the shape that actually forces solver decisions —
// with the reachability of an ill-typed branch varying across the
// family so the store accumulates both sat and unsat verdicts.
func TestDiskCacheWarmMatchesCold(t *testing.T) {
	type testCase struct {
		env  *types.Env
		prog lang.Expr
		name string
	}
	var cases []testCase

	gen := langgen.New(0xE9E9, langgen.DefaultConfig())
	for i := 0; i < 200; i++ {
		cases = append(cases, testCase{
			env:  types.EmptyEnv(),
			prog: gen.Closed(),
			name: fmt.Sprintf("langgen-%d", i),
		})
	}

	intEnv := types.EmptyEnv().Extend("x", types.Int).Extend("y", types.Int)
	// Inequality chains over x and y. The inner guard either
	// contradicts the outer one (the ill-typed arm is dead: accept)
	// or is satisfiable alongside it (the arm is live: reject), and
	// shifting the bounds by k keeps every query distinct so each one
	// is a fresh solve on a cold store.
	for k := 0; k < 12; k++ {
		dead := fmt.Sprintf(
			`{s if x < y + %d then (if y + %d < x then {t 1 + true t} else 1)
			     else (if x < y then {t 2 + true t} else 2) s}`, k, k)
		live := fmt.Sprintf(
			`{s if x < y + %d then (if x + %d < y then {t 1 + true t} else 1) else 2 s}`,
			k+2, k)
		cases = append(cases,
			testCase{env: intEnv, prog: lang.MustParse(dead), name: fmt.Sprintf("ineq-dead-%d", k)},
			testCase{env: intEnv, prog: lang.MustParse(live), name: fmt.Sprintf("ineq-live-%d", k)},
		)
	}

	dir := t.TempDir()
	agreeAccept, agreeReject := 0, 0
	for _, tc := range cases {
		check := func(eng *engine.Engine) (types.Type, error) {
			c := New(Options{Engine: eng})
			return c.CheckSymbolic(tc.env, tc.prog)
		}
		wantTy, wantErr := check(nil)
		for _, workers := range []int{1, 4} {
			for _, phase := range []string{"cold", "warm"} {
				cache := engine.NewCache(engine.CacheOptions{Dir: dir})
				eng := engine.New(engine.Options{Workers: workers, Cache: cache})
				gotTy, gotErr := check(eng)
				eng.Close()
				if err := cache.Persist(); err != nil {
					t.Fatalf("%s: persist: %v", tc.name, err)
				}
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s (%s): verdict diverges (%s, workers=%d): direct err=%v, cached err=%v",
						tc.name, tc.prog, phase, workers, wantErr, gotErr)
				}
				if wantErr == nil && !types.Equal(wantTy, gotTy) {
					t.Fatalf("%s (%s): type diverges (%s, workers=%d): direct %s, cached %s",
						tc.name, tc.prog, phase, workers, wantTy, gotTy)
				}
			}
		}
		if wantErr == nil {
			agreeAccept++
		} else {
			agreeReject++
		}
	}
	if agreeAccept == 0 || agreeReject == 0 {
		t.Fatalf("degenerate distribution: %d accepted, %d rejected", agreeAccept, agreeReject)
	}
	final := engine.NewCache(engine.CacheOptions{Dir: dir})
	fs := final.Stats()
	if fs.DiskEntries < 10 {
		t.Fatalf("only %d verdicts persisted; the disk legs ran against a nearly empty store", fs.DiskEntries)
	}
	if fs.DiskCorrupt != 0 {
		t.Fatalf("store accumulated %d corrupt entries", fs.DiskCorrupt)
	}
	t.Logf("%d accepted, %d rejected, %d persisted verdicts, all agree", agreeAccept, agreeReject, fs.DiskEntries)
}
