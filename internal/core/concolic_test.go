package core

import (
	"testing"

	"mix/internal/lang"
	"mix/internal/sym"
	"mix/internal/types"
)

func TestConcolicFollowsOnePath(t *testing.T) {
	// With the concolic SEVAR variant, the conditional does not fork:
	// b is replaced by a concrete value and the choice recorded in the
	// path condition.
	c := New(Options{Concolic: true, Unsound: true})
	env := types.EmptyEnv().Extend("b", types.Bool)
	ty, err := c.CheckSymbolic(env, lang.MustParse("if b then 1 else 2"))
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(ty, types.Int) {
		t.Fatalf("type = %s", ty)
	}
	if got := c.Executor().Stats.Paths; got != 1 {
		t.Fatalf("concolic execution should follow one path, got %d", got)
	}
}

func TestConcolicSoundModeRejects(t *testing.T) {
	// A single concolic path is not exhaustive; the sound TSYMBLOCK
	// must reject it — which is why the paper frames concolic testing
	// as using the "good enough" exhaustiveness check.
	c := New(Options{Concolic: true})
	env := types.EmptyEnv().Extend("b", types.Bool)
	_, err := c.CheckSymbolic(env, lang.MustParse("if b then 1 else 2"))
	wantErr(t, err, "not exhaustive")
}

func TestConcolicMissesTheOtherBranch(t *testing.T) {
	// The bug-finding tradeoff made concrete: the error sits in the
	// branch the concolic run does not take (b picks true), so unsound
	// concolic execution accepts — it trades coverage for speed.
	c := New(Options{Concolic: true, Unsound: true})
	env := types.EmptyEnv().Extend("b", types.Bool)
	ty, err := c.CheckSymbolic(env, lang.MustParse("if b then 1 else (1 + true)"))
	if err != nil {
		t.Fatalf("concolic run should miss the untaken branch: %v", err)
	}
	if !types.Equal(ty, types.Int) {
		t.Fatalf("type = %s", ty)
	}
	// Full symbolic execution finds it.
	full := New(Options{})
	_, err = full.CheckSymbolic(env, lang.MustParse("if b then 1 else (1 + true)"))
	wantErr(t, err, "operand of +")
}

func TestConcolicFindsErrorsOnItsPath(t *testing.T) {
	// Errors on the concrete path are still reported.
	c := New(Options{Concolic: true, Unsound: true})
	env := types.EmptyEnv().Extend("b", types.Bool)
	_, err := c.CheckSymbolic(env, lang.MustParse("if b then (1 + true) else 2"))
	wantErr(t, err, "operand of +")
}

func TestConcolicPathConditionRecorded(t *testing.T) {
	// The recorded equalities keep the path condition satisfiable and
	// meaningful: the guard must mention the chosen value.
	x := sym.NewExecutor()
	x.Concolic = true
	x.ConcolicInt = 7
	env := sym.EmptyEnv().Extend("n", x.Fresh.Var(types.Int, "n"))
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("n + 1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("paths = %d", len(rs))
	}
	if rs[0].Val.String() != "8:int" {
		t.Fatalf("concolic fold: got %s", rs[0].Val)
	}
	if g := rs[0].State.Guard.String(); g == "true:bool" {
		t.Fatal("the Σ(x) = v assumption must be recorded in the path condition")
	}
}
