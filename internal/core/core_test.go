package core

import (
	"strings"
	"testing"

	"mix/internal/lang"
	"mix/internal/sym"
	"mix/internal/types"
)

func checkTyped(t *testing.T, src string) (types.Type, error) {
	t.Helper()
	c := New(Options{})
	return c.Check(types.EmptyEnv(), lang.MustParse(src))
}

func checkSym(t *testing.T, src string) (types.Type, error) {
	t.Helper()
	c := New(Options{})
	return c.CheckSymbolic(types.EmptyEnv(), lang.MustParse(src))
}

func wantOK(t *testing.T, ty types.Type, err error, want types.Type) {
	t.Helper()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !types.Equal(ty, want) {
		t.Fatalf("type = %s, want %s", ty, want)
	}
}

func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q, want fragment %q", err, frag)
	}
}

func TestPureTypedProgram(t *testing.T) {
	ty, err := checkTyped(t, "let x = 1 in x + 2")
	wantOK(t, ty, err, types.Int)
}

func TestPureSymbolicProgram(t *testing.T) {
	ty, err := checkSym(t, "let x = 1 in x + 2")
	wantOK(t, ty, err, types.Int)
}

func TestSymBlockInsideTyped(t *testing.T) {
	ty, err := checkTyped(t, "1 + {s 2 + 3 s}")
	wantOK(t, ty, err, types.Int)
}

func TestTypedBlockInsideSymbolic(t *testing.T) {
	ty, err := checkSym(t, "1 + {t 2 + 3 t}")
	wantOK(t, ty, err, types.Int)
}

func TestUnreachableCodeIdiom(t *testing.T) {
	// Section 2: {t ... {s if true then {t 5 t} else {t "foo"+3 t} s} ... t}
	// Our analogue of the ill-typed branch is 1 + true. Pure type
	// checking rejects; MIX accepts because the false branch is dead.
	src := "{s if true then {t 5 t} else {t 1 + true t} s}"
	ty, err := checkTyped(t, src)
	wantOK(t, ty, err, types.Int)

	// The same program without block annotations is rejected by the
	// pure type system.
	var pure types.Checker
	_, err = pure.Check(types.EmptyEnv(), lang.MustParse("if true then 5 else 1 + true"))
	wantErr(t, err, "operand of +")
}

func TestSolverProvedUnreachable(t *testing.T) {
	// The dead branch is unreachable only via the solver: the guard of
	// the else path, ¬(x = x), is unsatisfiable.
	src := "let x = 4 + 5 in {s if x = x then {t 1 t} else {t 1 + true t} s}"
	c := New(Options{NoConcreteFold: true})
	ty, err := c.Check(types.EmptyEnv(), lang.MustParse(src))
	wantOK(t, ty, err, types.Int)
	// The discarded finding is recorded for transparency.
	found := false
	for _, r := range c.Reports {
		if !r.Feasible && strings.Contains(r.Msg, "operand of +") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a discarded infeasible report, got %v", c.Reports)
	}
}

func TestFeasibleErrorIsReported(t *testing.T) {
	c := New(Options{})
	b := types.EmptyEnv().Extend("b", types.Bool)
	_, err := c.CheckSymbolic(b, lang.MustParse("if b then 1 else 1 + true"))
	wantErr(t, err, "operand of +")
	if len(c.Reports) == 0 || !c.Reports[len(c.Reports)-1].Feasible {
		t.Fatalf("expected a feasible report, got %v", c.Reports)
	}
}

func TestFlowSensitivityIdiom(t *testing.T) {
	// Section 2: reuse a variable at different types inside a symbolic
	// block, type checking the code in between.
	src := "{s let x = 1 in let _ = {t x + 1 t} in let x = true in not x s}"
	ty, err := checkTyped(t, src)
	wantOK(t, ty, err, types.Bool)
}

func TestPathSensitivityBothBranchesTyped(t *testing.T) {
	// Symbolic fork with typed blocks per branch; both feasible, both
	// must type check independently.
	c := New(Options{})
	env := types.EmptyEnv().Extend("b", types.Bool)
	ty, err := c.CheckSymbolic(env, lang.MustParse("if b then {t 1 t} else {t 2 t}"))
	wantOK(t, ty, err, types.Int)
}

func TestPathsDisagreeOnType(t *testing.T) {
	c := New(Options{})
	env := types.EmptyEnv().Extend("b", types.Bool)
	_, err := c.CheckSymbolic(env, lang.MustParse("if b then 1 else true"))
	wantErr(t, err, "disagree on type")
}

func TestTypedBlockHavocsMemory(t *testing.T) {
	// After a typed block, memory is a fresh μ′; the earlier
	// allocation is unknown but still readable at its annotated type.
	src := "{s let x = ref 1 in let _ = {t 0 t} in !x s}"
	ty, err := checkTyped(t, src)
	wantOK(t, ty, err, types.Int)
}

func TestInconsistentMemoryEnteringTypedBlock(t *testing.T) {
	// A temporarily ill-typed memory is fine for symbolic execution
	// but must be flagged when switching to a typed block.
	src := "{s let x = ref 1 in let _ = x := true in {t 0 t} s}"
	_, err := checkTyped(t, src)
	wantErr(t, err, "memory inconsistent entering typed block")
}

func TestInconsistentMemoryAtBlockEnd(t *testing.T) {
	src := "{s let x = ref 1 in x := true s}"
	_, err := checkTyped(t, src)
	wantErr(t, err, "memory inconsistent")
}

func TestTemporaryViolationRepairedInsideBlock(t *testing.T) {
	// The write log lets a symbolic block temporarily break the type
	// invariant and repair it before the boundary.
	src := "{s let x = ref 1 in let _ = x := true in let _ = x := 2 in !x s}"
	ty, err := checkTyped(t, src)
	wantOK(t, ty, err, types.Int)
}

func TestDeepNesting(t *testing.T) {
	src := "{s 1 + {t 2 + {s 3 + {t 4 t} s} t} s}"
	ty, err := checkTyped(t, src)
	wantOK(t, ty, err, types.Int)
}

func TestEnvironmentFlowsThroughBoundaries(t *testing.T) {
	// x is bound outside the symbolic block and used inside the nested
	// typed block.
	src := "let x = 1 in {s {t x + 1 t} s}"
	ty, err := checkTyped(t, src)
	wantOK(t, ty, err, types.Int)
}

func TestDeferModeEndToEnd(t *testing.T) {
	c := New(Options{IfMode: sym.DeferIf})
	env := types.EmptyEnv().Extend("b", types.Bool)
	ty, err := c.CheckSymbolic(env, lang.MustParse("if b then 1 else 2"))
	wantOK(t, ty, err, types.Int)
	if c.Executor().Stats.Forks != 0 {
		t.Fatalf("defer mode forked: %+v", c.Executor().Stats)
	}
}

func TestUnsoundModeSkipsExhaustiveness(t *testing.T) {
	// Same program, sound and unsound: both accept here; unsound just
	// performs fewer solver queries.
	sound := New(Options{})
	unsound := New(Options{Unsound: true})
	env := types.EmptyEnv().Extend("b", types.Bool)
	e := lang.MustParse("if b then 1 else 2")
	if _, err := sound.CheckSymbolic(env, e); err != nil {
		t.Fatal(err)
	}
	if _, err := unsound.CheckSymbolic(env, e); err != nil {
		t.Fatal(err)
	}
	if unsound.Solver().Stats.SatQueries >= sound.Solver().Stats.SatQueries {
		t.Fatalf("unsound mode should issue fewer queries: %d vs %d",
			unsound.Solver().Stats.SatQueries, sound.Solver().Stats.SatQueries)
	}
}

func TestSolverAddrEqAblation(t *testing.T) {
	// In defer mode, q = (b ? p : p) is a different spelling of p.
	// Syntactic OVERWRITE-OK cannot discharge the ill-typed write to
	// p when repaired through q; the solver-backed oracle can.
	src := "{s let p = ref 1 in let q = (if b then p else p) in " +
		"let _ = p := true in let _ = q := 7 in !p s}"
	env := types.EmptyEnv().Extend("b", types.Bool)

	syntactic := New(Options{IfMode: sym.DeferIf})
	_, err := syntactic.Check(env, lang.MustParse(src))
	wantErr(t, err, "not consistently typed")

	solverEq := New(Options{IfMode: sym.DeferIf, SolverAddrEq: true})
	ty, err := solverEq.Check(env, lang.MustParse(src))
	wantOK(t, ty, err, types.Int)
}

func TestLocalRefinementTrichotomy(t *testing.T) {
	// Section 2's sign-refinement example, adapted: a three-way split
	// on a symbolic integer is exhaustive (x=0 | x=1 | otherwise).
	c := New(Options{})
	env := types.EmptyEnv().Extend("x", types.Int)
	src := "if x = 0 then {t 10 t} else (if x = 1 then {t 11 t} else {t 12 t})"
	ty, err := c.CheckSymbolic(env, lang.MustParse(src))
	wantOK(t, ty, err, types.Int)
}

func TestReportsAccumulateAcrossBlocks(t *testing.T) {
	c := New(Options{NoConcreteFold: true})
	src := "let x = 1 in {s if x = x then {t 1 t} else {t 1 + true t} s}" +
		" + {s if x = x then 2 else true + 1 s}"
	ty, err := c.Check(types.EmptyEnv(), lang.MustParse(src))
	wantOK(t, ty, err, types.Int)
	if len(c.Reports) < 2 {
		t.Fatalf("expected ≥2 discarded reports, got %v", c.Reports)
	}
	for _, r := range c.Reports {
		if r.Feasible {
			t.Fatalf("unexpected feasible report %v", r)
		}
	}
}
