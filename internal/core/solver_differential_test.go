package core

import (
	"testing"

	"mix/internal/engine"
	"mix/internal/langgen"
	"mix/internal/solver"
	"mix/internal/types"
)

// TestSearchCoresMatchOnGeneratedPrograms: the CDCL core, the legacy
// DPLL core, and the portfolio racer are interchangeable back ends —
// checking randomly generated programs must produce the same
// accept/reject verdict and the same derived type under every
// -solver setting, both directly and through an engine. The DPLL core
// stays in the tree exactly to serve as this differential oracle.
func TestSearchCoresMatchOnGeneratedPrograms(t *testing.T) {
	const programs = 120
	algos := []solver.Algo{solver.AlgoCDCL, solver.AlgoDPLL, solver.AlgoPortfolio}

	for _, symb := range []bool{false, true} {
		name := "typed"
		if symb {
			name = "symbolic"
		}
		t.Run(name, func(t *testing.T) {
			gen := langgen.New(0xCDC1, langgen.DefaultConfig())
			accepted, rejected := 0, 0
			for i := 0; i < programs; i++ {
				prog := gen.Closed()
				check := func(opts Options) (types.Type, error) {
					c := New(opts)
					if symb {
						return c.CheckSymbolic(types.EmptyEnv(), prog)
					}
					return c.Check(types.EmptyEnv(), prog)
				}
				wantTy, wantErr := check(Options{})
				for _, a := range algos {
					gotTy, gotErr := check(Options{Solver: solver.Config{Algo: a}})
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("program %s: verdict diverges under %v: default err=%v, got err=%v",
							prog, a, wantErr, gotErr)
					}
					if wantErr == nil && !types.Equal(wantTy, gotTy) {
						t.Fatalf("program %s: type diverges under %v: %s vs %s",
							prog, a, wantTy, gotTy)
					}

					eng := engine.New(engine.Options{Workers: 2, SolverAlgo: a})
					gotTy, gotErr = check(Options{Engine: eng})
					eng.Close()
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("program %s: engine verdict diverges under %v: default err=%v, got err=%v",
							prog, a, wantErr, gotErr)
					}
					if wantErr == nil && !types.Equal(wantTy, gotTy) {
						t.Fatalf("program %s: engine type diverges under %v: %s vs %s",
							prog, a, wantTy, gotTy)
					}
				}
				if wantErr == nil {
					accepted++
				} else {
					rejected++
				}
			}
			if accepted == 0 || rejected == 0 {
				t.Fatalf("degenerate distribution: %d accepted, %d rejected", accepted, rejected)
			}
		})
	}
}
