package core

import (
	"errors"
	"testing"

	"mix/internal/concrete"
	"mix/internal/lang"
	"mix/internal/langgen"
	"mix/internal/sym"
	"mix/internal/types"
)

// TestSoundnessTheorem1 is the executable form of the paper's
// Theorem 1 (MIX soundness): for randomly generated closed programs,
// if the mixed checker accepts, the concrete big-step semantics must
// not produce the error token — and the resulting value must inhabit
// the derived type. Exercised for both outermost modes and both
// conditional-execution modes.
func TestSoundnessTheorem1(t *testing.T) {
	configs := []struct {
		name string
		opts Options
		symb bool // outermost symbolic block
	}{
		{"typed-fork", Options{}, false},
		{"symbolic-fork", Options{}, true},
		{"typed-defer", Options{IfMode: sym.DeferIf}, false},
		{"symbolic-defer", Options{IfMode: sym.DeferIf}, true},
		{"typed-nofold", Options{NoConcreteFold: true}, false},
		{"symbolic-solvereq", Options{SolverAddrEq: true}, true},
	}
	const programs = 300
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			runSoundnessConfig(t, cfg.opts, cfg.symb, programs)
		})
	}
}

// runSoundnessConfig generates `programs` random closed programs and
// checks the Theorem-1 property under the given configuration.
func runSoundnessConfig(t *testing.T, opts Options, symb bool, programs int) {
	t.Helper()
	gen := langgen.New(0xC0DE+int64(programs), langgen.DefaultConfig())
	accepted, rejected := 0, 0
	for i := 0; i < programs; i++ {
		prog := gen.Closed()
		checker := New(opts)
		var ty types.Type
		var err error
		if symb {
			ty, err = checker.CheckSymbolic(types.EmptyEnv(), prog)
		} else {
			ty, err = checker.Check(types.EmptyEnv(), prog)
		}
		if err != nil {
			rejected++
			continue
		}
		accepted++
		ev := concrete.NewEvaluator()
		v, cerr := ev.Eval(concrete.EmptyEnv(), concrete.NewMemory(), prog)
		if errors.Is(cerr, concrete.ErrTypeError) {
			t.Fatalf("UNSOUND: checker accepted %s : %s but evaluation hit %v",
				prog, ty, cerr)
		}
		if cerr != nil {
			t.Fatalf("evaluator failed unexpectedly on %s: %v", prog, cerr)
		}
		if !valueInhabits(v, ty) {
			t.Fatalf("type preservation violated: %s : %s evaluated to %s",
				prog, ty, v)
		}
	}
	if accepted == 0 {
		t.Fatalf("generator produced no accepted programs (rejected %d); property vacuous", rejected)
	}
	t.Logf("%d accepted, %d rejected", accepted, rejected)
}

// valueInhabits checks the ⟨E; M⟩ ∼ ⟨Γ; Λ⟩ value part: the concrete
// value has the shape of the static type.
func valueInhabits(v concrete.Value, ty types.Type) bool {
	switch ty.(type) {
	case types.IntType:
		_, ok := v.(concrete.IntV)
		return ok
	case types.BoolType:
		_, ok := v.(concrete.BoolV)
		return ok
	case types.RefType:
		_, ok := v.(concrete.LocV)
		return ok
	case types.FunType:
		_, ok := v.(concrete.ClosV)
		return ok
	}
	return false
}

// TestSoundnessRejectionAgreement: programs rejected by the pure type
// checker but free of blocks must also be rejected — or the concrete
// run errs — under MIX with any block decoration the generator added.
// This guards against the mix rules accidentally *losing* errors that
// are concretely reachable.
func TestSoundnessConcreteErrorImpliesRejection(t *testing.T) {
	gen := langgen.New(7, langgen.Config{MaxDepth: 4, BlockProb: 0.3, ErrorProb: 0.25, WithRefs: true})
	checked := 0
	for i := 0; i < 400; i++ {
		prog := gen.Closed()
		ev := concrete.NewEvaluator()
		_, cerr := ev.Eval(concrete.EmptyEnv(), concrete.NewMemory(), prog)
		if !errors.Is(cerr, concrete.ErrTypeError) {
			continue
		}
		checked++
		// The concrete run hits the error token, so no sound checker
		// may accept.
		checker := New(Options{})
		if _, err := checker.Check(types.EmptyEnv(), prog); err == nil {
			t.Fatalf("UNSOUND: %s errs concretely but was accepted", prog)
		}
		checker2 := New(Options{})
		if _, err := checker2.CheckSymbolic(types.EmptyEnv(), prog); err == nil {
			t.Fatalf("UNSOUND: %s errs concretely but was accepted symbolically", prog)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d concretely-erroring programs generated; property too weak", checked)
	}
}

// TestMixMorePreciseThanTypes quantifies the headline claim on random
// programs: everything the pure type checker accepts, MIX accepts
// (with blocks stripped there is no difference), and some programs the
// type checker rejects are accepted by an outermost symbolic analysis
// that proves the offending code dead.
func TestMixMorePreciseThanTypes(t *testing.T) {
	gen := langgen.New(99, langgen.Config{MaxDepth: 4, BlockProb: 0, ErrorProb: 0.15, WithRefs: false})
	var pure, symbolic int
	for i := 0; i < 300; i++ {
		prog := gen.Closed()
		var tc types.Checker
		if _, err := tc.Check(types.EmptyEnv(), prog); err == nil {
			pure++
			// Monotonicity: symbolic analysis must accept too.
			c := New(Options{})
			if _, err := c.CheckSymbolic(types.EmptyEnv(), prog); err != nil {
				t.Fatalf("symbolic execution rejected a well-typed block-free program %s: %v", prog, err)
			}
		}
		c := New(Options{})
		if _, err := c.CheckSymbolic(types.EmptyEnv(), prog); err == nil {
			symbolic++
		}
	}
	if symbolic <= pure {
		t.Fatalf("expected symbolic analysis to accept strictly more programs: pure=%d symbolic=%d", pure, symbolic)
	}
	t.Logf("pure types accepted %d, symbolic accepted %d of 300", pure, symbolic)
}

// TestSymbolicExecutorAgreesWithConcrete cross-validates the executor
// directly (the part-2 statement of Theorem 1): for block-free
// programs, the concrete result must match one feasible symbolic path.
func TestSymbolicExecutorAgreesWithConcrete(t *testing.T) {
	gen := langgen.New(1234, langgen.Config{MaxDepth: 4, BlockProb: 0, ErrorProb: 0.1, WithRefs: false})
	validated := 0
	for i := 0; i < 300; i++ {
		prog := gen.Closed()
		x := sym.NewExecutor()
		rs, err := x.Run(sym.EmptyEnv(), x.InitialState(), prog)
		if err != nil {
			continue
		}
		ev := concrete.NewEvaluator()
		v, cerr := ev.Eval(concrete.EmptyEnv(), concrete.NewMemory(), prog)
		if cerr != nil {
			// The concrete run hit the error token; some path must
			// report an error (closed programs: all guards concrete).
			hasErr := false
			for _, r := range rs {
				if r.Err != nil {
					hasErr = true
				}
			}
			if errors.Is(cerr, concrete.ErrTypeError) && !hasErr {
				t.Fatalf("concrete error on %s not seen by any symbolic path", prog)
			}
			continue
		}
		// Closed, block-free programs with concrete folding: the
		// executor should have exactly one surviving path whose value
		// is the concrete result.
		if len(rs) != 1 || rs[0].Err != nil {
			continue // guards may stay symbolic through stored bools; skip
		}
		validated++
		got := rs[0].Val.String()
		var want string
		switch v := v.(type) {
		case concrete.IntV:
			want = lang.I(v.Val).String() + ":int"
		case concrete.BoolV:
			want = lang.B(v.Val).String() + ":bool"
		default:
			validated--
			continue // locations have no literal form
		}
		if got != want && !isMemReadOrVar(rs[0].Val) {
			t.Fatalf("symbolic result %s != concrete %s for %s", got, want, prog)
		}
	}
	if validated < 50 {
		t.Fatalf("only %d programs validated; generator too weak", validated)
	}
}

func isMemReadOrVar(v sym.Val) bool {
	switch v.U.(type) {
	case sym.MemRead, sym.SymVar:
		return true
	}
	return false
}
