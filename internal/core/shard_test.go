package core

import (
	"strings"
	"testing"

	"mix/internal/lang"
	"mix/internal/types"
)

// shardPrefixes enumerates the 2^depth shard prefixes in depth-first
// item order: bit i of the item index (most significant first) forces
// the i-th fork, false = then, true = else.
func shardPrefixes(depth int) [][]bool {
	out := make([][]bool, 1<<depth)
	for i := range out {
		p := make([]bool, depth)
		for b := 0; b < depth; b++ {
			p[b] = i&(1<<(depth-1-b)) != 0
		}
		out[i] = p
	}
	return out
}

func checkSymPrefix(t *testing.T, src string, env *types.Env, prefix []bool) (*Checker, types.Type, error) {
	t.Helper()
	c := New(Options{ShardPrefix: prefix})
	ty, err := c.CheckSymbolic(env, lang.MustParse(src))
	return c, ty, err
}

func boolEnv(names ...string) *types.Env {
	env := types.EmptyEnv()
	for _, n := range names {
		env = env.Extend(n, types.Bool)
	}
	return env
}

// Every work item of an exhaustive two-fork block must pass on its
// own: each item's surviving leaf plus its pruned sibling roots cover
// the full tree, so the per-shard exhaustiveness check holds.
func TestShardPrefixPartitionsExhaustiveBlock(t *testing.T) {
	src := "if b1 then (if b2 then 1 else 2) else (if b2 then 3 else 4)"
	env := boolEnv("b1", "b2")
	for i, p := range shardPrefixes(2) {
		c, ty, err := checkSymPrefix(t, src, env, p)
		if err != nil {
			t.Fatalf("item %d: unexpected error: %v", i, err)
		}
		if !types.Equal(ty, types.Int) {
			t.Fatalf("item %d: type = %s, want int", i, ty)
		}
		if got := c.Executor().Stats.Paths; got != 1 {
			t.Fatalf("item %d: explored %d real paths, want exactly its own leaf", i, got)
		}
		if len(c.BlockTypes) != 1 || !strings.HasSuffix(c.BlockTypes[0], " int") {
			t.Fatalf("item %d: block fingerprints = %q", i, c.BlockTypes)
		}
	}
}

// A feasible path error is found by exactly the item owning its leaf;
// every other item passes because the erring subtree sits behind a
// pruned guard. The coordinator's merge restores the rejection.
func TestShardPrefixFeasibleErrorOwnedByOneItem(t *testing.T) {
	src := "if b then 1 + true else 2"
	env := boolEnv("b")
	ps := shardPrefixes(1)
	_, _, err := checkSymPrefix(t, src, env, ps[0])
	if err == nil || !strings.Contains(err.Error(), "right operand of +") {
		t.Fatalf("then-item must report the feasible error, got %v", err)
	}
	c, ty, err := checkSymPrefix(t, src, env, ps[1])
	if err != nil {
		t.Fatalf("else-item: unexpected error: %v", err)
	}
	if !types.Equal(ty, types.Int) {
		t.Fatalf("else-item: type = %s, want int", ty)
	}
	if len(c.Reports) != 0 {
		t.Fatalf("else-item must not report the other shard's finding: %v", c.Reports)
	}
}

// A prefix deeper than the block's tree leaves some items with only
// ghost leaves (the canonical copy lives in the depth-first-first item
// of the group): they still type the block and explore zero real
// paths, so no leaf is analyzed twice across the item set.
func TestShardPrefixGhostLeavesTypeWithoutDuplication(t *testing.T) {
	src := "if b then 1 else 2"
	env := boolEnv("b")
	wantReal := []int{1, 0, 1, 0} // items 00,01,10,11: leaves owned by 00 and 10
	for i, p := range shardPrefixes(2) {
		c, ty, err := checkSymPrefix(t, src, env, p)
		if err != nil {
			t.Fatalf("item %d: unexpected error: %v", i, err)
		}
		if !types.Equal(ty, types.Int) {
			t.Fatalf("item %d: type = %s, want int", i, ty)
		}
		if got := c.Executor().Stats.Paths; got != wantReal[i] {
			t.Fatalf("item %d: %d real paths, want %d", i, got, wantReal[i])
		}
	}
}

// A type disagreement whose paths land in different items is invisible
// to each restricted run — both succeed — but the per-block type
// fingerprints differ, which is what the shard coordinator compares to
// restore the unsharded "paths disagree on type" rejection.
func TestShardPrefixTypeDisagreementSurfacesInFingerprints(t *testing.T) {
	src := "if b then 1 else true"
	env := boolEnv("b")
	if _, err := New(Options{}).CheckSymbolic(env, lang.MustParse(src)); err == nil ||
		!strings.Contains(err.Error(), "disagree on type") {
		t.Fatalf("unsharded run must reject, got %v", err)
	}
	var prints []string
	for i, p := range shardPrefixes(1) {
		c, _, err := checkSymPrefix(t, src, env, p)
		if err != nil {
			t.Fatalf("item %d: unexpected error: %v", i, err)
		}
		if len(c.BlockTypes) != 1 {
			t.Fatalf("item %d: fingerprints = %q", i, c.BlockTypes)
		}
		prints = append(prints, c.BlockTypes[0])
	}
	if prints[0] == prints[1] {
		t.Fatalf("fingerprints must differ across the disagreeing items: %q", prints)
	}
}

// An item whose entire slice of a block errs infeasibly cannot type
// the block from its own leaves; it re-runs the block unrestricted
// purely for the type, with findings suppressed so the owning items'
// reports are not duplicated.
func TestShardPrefixVacuousSliceRetypes(t *testing.T) {
	src := "if b then (if b then 1 else 1 + true) else 2"
	env := boolEnv("b")
	wantReports := []int{0, 1, 0, 0} // item 01 owns the infeasible error leaf
	for i, p := range shardPrefixes(2) {
		c, ty, err := checkSymPrefix(t, src, env, p)
		if err != nil {
			t.Fatalf("item %d: unexpected error: %v", i, err)
		}
		if !types.Equal(ty, types.Int) {
			t.Fatalf("item %d: type = %s, want int", i, ty)
		}
		if got := len(c.Reports); got != wantReports[i] {
			t.Fatalf("item %d: %d reports, want %d (got %v)", i, got, wantReports[i], c.Reports)
		}
	}
}

// Nested symbolic blocks reached through typed blocks during an outer
// run are fully explored by the item owning the enclosing path — the
// prefix applies only to top-level blocks — so no nested subtree is
// silently skipped.
func TestShardPrefixNestedBlocksExploreFully(t *testing.T) {
	src := "if b1 then {t {s if b2 then 10 else 20 s} t} else 3"
	env := boolEnv("b1", "b2")
	for i, p := range shardPrefixes(1) {
		c, ty, err := checkSymPrefix(t, src, env, p)
		if err != nil {
			t.Fatalf("item %d: unexpected error: %v", i, err)
		}
		if !types.Equal(ty, types.Int) {
			t.Fatalf("item %d: type = %s, want int", i, ty)
		}
		// Only the top-level block is fingerprinted.
		if len(c.BlockTypes) != 1 {
			t.Fatalf("item %d: fingerprints = %q, want the top-level block only", i, c.BlockTypes)
		}
		if i == 0 {
			// The then-item owns the nested block and must explore both
			// of its paths (plus its own top-level leaf).
			if got := c.Executor().Stats.Paths; got < 2 {
				t.Fatalf("item 0: %d real paths, nested block must explore fully", got)
			}
		}
	}
}
