package summary

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mix/internal/fault"
	"mix/internal/microc"
	"mix/internal/pointer"
	"mix/internal/symexec"
)

func mustParse(t *testing.T, src string) *microc.Program {
	t.Helper()
	prog, err := microc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func fn(t *testing.T, prog *microc.Program, name string) *microc.FuncDef {
	t.Helper()
	f, ok := prog.Func(name)
	if !ok {
		t.Fatalf("no function %s", name)
	}
	return f
}

const admissibilitySrc = `
int add(int a, int b) { return a + b; }
int twice(int a) { return add(a, a); }
int rec(int n) { if (n <= 0) return 0; return rec(n - 1); }
int deref(int *p) { return *p; }
int viaptr(int x) { int y = x; int *p = &y; return *p; }
int looped(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }
void side(int a) { int b = a; }
`

func TestAdmissibility(t *testing.T) {
	prog := mustParse(t, admissibilitySrc)
	a := analyze(prog)

	wantOK := map[string]bool{
		"add": true, "twice": true, "looped": true, "side": true,
		"rec": false, "deref": false, "viaptr": false,
	}
	for name, ok := range wantOK {
		in := a.info[fn(t, prog, name)]
		if in.ok != ok {
			t.Errorf("%s: summarizable=%v (reason %q), want %v", name, in.ok, in.reason, ok)
		}
	}
	if in := a.info[fn(t, prog, "rec")]; !strings.Contains(in.reason, "recursive") {
		t.Errorf("rec rejected for %q, want a recursion reason", in.reason)
	}
	if h := a.info[fn(t, prog, "twice")].height; h != 2 {
		t.Errorf("twice height = %d, want 2 (add is a leaf)", h)
	}
}

// pathKeys renders each outcome as "PC | ret" for order-insensitive
// structural comparison between inline and summary-instantiated runs.
func pathKeys(outs []symexec.Outcome) []string {
	keys := make([]string, 0, len(outs))
	for _, o := range outs {
		ret := "void"
		if vi, ok := o.Ret.(symexec.VInt); ok {
			ret = vi.T.String()
		}
		keys = append(keys, o.St.PC.String()+" | "+ret)
	}
	sort.Strings(keys)
	return keys
}

const callerSrc = `
int h(int a, int b) {
  if (a < b) { return a + 1; }
  return b - 1;
}
int entry(int x, int y) MIX(symbolic) {
  int r = h(x, y);
  int s = h(r, x);
  return r + s;
}
`

// TestInstantiationMatchesInline pins the core soundness claim: with
// merging off, instantiating a summary yields structurally identical
// (path condition, return term) pairs to inlining the callee — same
// formulas, same order-insensitive multiset, no extra or missing paths.
func TestInstantiationMatchesInline(t *testing.T) {
	prog := mustParse(t, callerSrc)

	inline := symexec.New(prog, pointer.Analyze(prog))
	inlineOuts, err := inline.Run("entry")
	if err != nil {
		t.Fatalf("inline run: %v", err)
	}

	ps := NewStore("").Precompute(prog, 0)
	summ := symexec.New(prog, pointer.Analyze(prog))
	summ.Summaries = ps
	summOuts, err := summ.Run("entry")
	if err != nil {
		t.Fatalf("summary run: %v", err)
	}

	if ps.Instantiated() == 0 {
		t.Fatal("no call sites instantiated a summary")
	}
	got, want := pathKeys(summOuts), pathKeys(inlineOuts)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("summary paths differ from inline:\n got %v\nwant %v", got, want)
	}
	if len(inline.Reports) != 0 || len(summ.Reports) != 0 {
		t.Errorf("unexpected reports: inline %v summary %v", inline.Reports, summ.Reports)
	}
}

func TestArmCapFallsBack(t *testing.T) {
	prog := mustParse(t, callerSrc)
	ps := NewStore("").Precompute(prog, 1) // h has 2 arms
	if sum, reason := ps.Summary(fn(t, prog, "h")); sum != nil || !strings.Contains(reason, "cap") {
		t.Fatalf("h under cap 1: sum=%v reason=%q, want cap fallback", sum, reason)
	}
}

func TestSymbolicLoopFallsBack(t *testing.T) {
	prog := mustParse(t, admissibilitySrc)
	ps := NewStore("").Precompute(prog, 0)
	sum, reason := ps.Summary(fn(t, prog, "looped"))
	if sum != nil {
		t.Fatalf("looped must fall back (unbounded symbolic loop), got %d arms", len(sum.Arms))
	}
	if !strings.Contains(reason, "finding") {
		t.Errorf("looped fallback reason %q, want a loop-bound finding", reason)
	}
}

func summaryText(t *testing.T, ps *ProgramSummaries, f *microc.FuncDef) string {
	t.Helper()
	sum, reason := ps.Summary(f)
	if sum == nil {
		return "fallback: " + reason
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s h%d\n", sum.Fn, sum.Height)
	for _, arm := range sum.Arms {
		ret := "void"
		if arm.Ret != nil {
			ret = arm.Ret.String()
		}
		fmt.Fprintf(&b, "  [%s] -> %s\n", arm.Guard.String(), ret)
	}
	return b.String()
}

func TestDiskRoundTripAndWarmHits(t *testing.T) {
	dir := t.TempDir()
	prog := mustParse(t, callerSrc)

	cold := NewStore(dir)
	psCold := cold.Precompute(prog, 0)
	if psCold.Computed == 0 || psCold.DiskHits != 0 {
		t.Fatalf("cold run: computed=%d diskHits=%d", psCold.Computed, psCold.DiskHits)
	}

	// A fresh store on the same directory must answer entirely from disk.
	warm := NewStore(dir)
	psWarm := warm.Precompute(prog, 0)
	if psWarm.Computed != 0 {
		t.Errorf("warm run recomputed %d summaries", psWarm.Computed)
	}
	if psWarm.DiskHits == 0 {
		t.Error("warm run had no disk hits")
	}
	h := fn(t, prog, "h")
	if got, want := summaryText(t, psWarm, h), summaryText(t, psCold, h); got != want {
		t.Errorf("disk round-trip changed the summary:\n got %s\nwant %s", got, want)
	}

	// Same program through a decoded summary must instantiate the same
	// paths as the freshly computed one.
	run := func(ps *ProgramSummaries) []string {
		x := symexec.New(prog, pointer.Analyze(prog))
		x.Summaries = ps
		outs, err := x.Run("entry")
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return pathKeys(outs)
	}
	if got, want := run(psWarm), run(psCold); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("disk-warm paths differ:\n got %v\nwant %v", got, want)
	}
}

func TestCorruptEntryDegradesToRecompute(t *testing.T) {
	dir := t.TempDir()
	prog := mustParse(t, callerSrc)
	psClean := NewStore(dir).Precompute(prog, 0)
	want := summaryText(t, psClean, fn(t, prog, "h"))

	files, err := filepath.Glob(filepath.Join(dir, "sum-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no summary files on disk: %v %v", files, err)
	}
	for _, f := range files {
		if err := os.Truncate(f, 7); err != nil {
			t.Fatal(err)
		}
	}

	poisoned := NewStore(dir)
	ps := poisoned.Precompute(prog, 0)
	if got := summaryText(t, ps, fn(t, prog, "h")); got != want {
		t.Errorf("poisoned store changed the summary:\n got %s\nwant %s", got, want)
	}
	st := poisoned.Stats()
	if st.Corrupt == 0 || st.DiskHits != 0 || st.Computed == 0 {
		t.Errorf("poisoned stats = %+v, want corrupt>0, diskHits=0, computed>0", st)
	}
	if poisoned.Faults().Of(fault.CacheCorrupt) == 0 {
		t.Error("corrupt entries must record a cache-corrupt fault")
	}

	// The recompute overwrote the bad entries: a further store is warm.
	healed := NewStore(dir)
	if ps := healed.Precompute(prog, 0); ps.Computed != 0 {
		t.Errorf("store not healed: recomputed %d", ps.Computed)
	}
}

func TestEditedFunctionRecomputesOnlyItsCallers(t *testing.T) {
	const v1 = `
int leaf(int a) { return a + 1; }
int other(int a) { return a + a; }
int mid(int a) { return leaf(a) + 1; }
int top(int a) { return mid(a) + other(a); }
`
	// leaf changes; other is untouched.
	v2 := strings.Replace(v1, "return a + 1;", "return a + 2;", 1)

	dir := t.TempDir()
	ps1 := NewStore(dir).Precompute(mustParse(t, v1), 0)
	if ps1.Computed != 4 {
		t.Fatalf("cold computed = %d, want 4", ps1.Computed)
	}
	ps2 := NewStore(dir).Precompute(mustParse(t, v2), 0)
	if ps2.Computed != 3 {
		t.Errorf("after editing leaf: computed = %d, want 3 (leaf, mid, top)", ps2.Computed)
	}
	if ps2.DiskHits != 1 {
		t.Errorf("after editing leaf: diskHits = %d, want 1 (other)", ps2.DiskHits)
	}
}

func TestFlushKeepsDiskTier(t *testing.T) {
	dir := t.TempDir()
	prog := mustParse(t, callerSrc)
	s := NewStore(dir)
	s.Precompute(prog, 0)
	s.Flush()
	if s.Stats().Entries != 0 {
		t.Fatal("flush must drop the memory tier")
	}
	ps := s.Precompute(prog, 0)
	if ps.Computed != 0 || ps.DiskHits == 0 {
		t.Errorf("post-flush precompute: computed=%d diskHits=%d, want disk reload", ps.Computed, ps.DiskHits)
	}
}
