package summary

import (
	"fmt"

	"mix/internal/solver"
)

// jsonTerm / jsonFormula are the on-disk shape of solver terms and
// formulas: a small tagged tree, decoded strictly (an unknown tag is a
// corrupt entry, never a guess). The decoder rebuilds the exact
// structure the encoder saw — no re-canonicalization — so a disk-warm
// run instantiates byte-identical guards and return terms.
type jsonTerm struct {
	K    string       `json:"k"`
	Val  int64        `json:"val,omitempty"`  // "c" value, "*" coefficient
	Name string       `json:"name,omitempty"` // "v" variable, "app" symbol
	Args []*jsonTerm  `json:"args,omitempty"` // subterms, operator-dependent arity
	G    *jsonFormula `json:"g,omitempty"`    // "ite" guard
}

type jsonFormula struct {
	K    string         `json:"k"`
	B    bool           `json:"b,omitempty"`    // "bc" value
	Name string         `json:"name,omitempty"` // "bv" variable
	Fs   []*jsonFormula `json:"fs,omitempty"`   // subformulas
	Ts   []*jsonTerm    `json:"ts,omitempty"`   // term operands ("==", "<=", "<")
}

func encodeTerm(t solver.Term) *jsonTerm {
	switch t := t.(type) {
	case solver.IntConst:
		return &jsonTerm{K: "c", Val: t.Val}
	case solver.IntVar:
		return &jsonTerm{K: "v", Name: t.Name}
	case solver.Add:
		return &jsonTerm{K: "+", Args: []*jsonTerm{encodeTerm(t.X), encodeTerm(t.Y)}}
	case solver.Neg:
		return &jsonTerm{K: "-", Args: []*jsonTerm{encodeTerm(t.X)}}
	case solver.Mul:
		return &jsonTerm{K: "*", Val: t.K, Args: []*jsonTerm{encodeTerm(t.X)}}
	case solver.App:
		args := make([]*jsonTerm, len(t.Args))
		for i, a := range t.Args {
			args[i] = encodeTerm(a)
		}
		return &jsonTerm{K: "app", Name: t.Fn, Args: args}
	case solver.Ite:
		return &jsonTerm{K: "ite", G: encodeFormula(t.G), Args: []*jsonTerm{encodeTerm(t.X), encodeTerm(t.Y)}}
	default:
		// Unreachable for terms the executor builds; encode defensively
		// as a tag the decoder rejects.
		return &jsonTerm{K: fmt.Sprintf("?%T", t)}
	}
}

func decodeTerm(j *jsonTerm) (solver.Term, error) {
	if j == nil {
		return nil, fmt.Errorf("nil term node")
	}
	arity := func(n int) ([]solver.Term, error) {
		if len(j.Args) != n {
			return nil, fmt.Errorf("term %q: want %d args, got %d", j.K, n, len(j.Args))
		}
		out := make([]solver.Term, n)
		for i, a := range j.Args {
			t, err := decodeTerm(a)
			if err != nil {
				return nil, err
			}
			out[i] = t
		}
		return out, nil
	}
	switch j.K {
	case "c":
		return solver.IntConst{Val: j.Val}, nil
	case "v":
		return solver.IntVar{Name: j.Name}, nil
	case "+":
		xs, err := arity(2)
		if err != nil {
			return nil, err
		}
		return solver.Add{X: xs[0], Y: xs[1]}, nil
	case "-":
		xs, err := arity(1)
		if err != nil {
			return nil, err
		}
		return solver.Neg{X: xs[0]}, nil
	case "*":
		xs, err := arity(1)
		if err != nil {
			return nil, err
		}
		return solver.Mul{K: j.Val, X: xs[0]}, nil
	case "app":
		args := make([]solver.Term, len(j.Args))
		for i, a := range j.Args {
			t, err := decodeTerm(a)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		return solver.App{Fn: j.Name, Args: args}, nil
	case "ite":
		g, err := decodeFormula(j.G)
		if err != nil {
			return nil, err
		}
		xs, err := arity(2)
		if err != nil {
			return nil, err
		}
		return solver.Ite{G: g, X: xs[0], Y: xs[1]}, nil
	default:
		return nil, fmt.Errorf("unknown term tag %q", j.K)
	}
}

func encodeFormula(f solver.Formula) *jsonFormula {
	switch f := f.(type) {
	case solver.BoolConst:
		return &jsonFormula{K: "bc", B: f.Val}
	case solver.BoolVar:
		return &jsonFormula{K: "bv", Name: f.Name}
	case solver.Not:
		return &jsonFormula{K: "!", Fs: []*jsonFormula{encodeFormula(f.X)}}
	case solver.And:
		return &jsonFormula{K: "&&", Fs: []*jsonFormula{encodeFormula(f.X), encodeFormula(f.Y)}}
	case solver.Or:
		return &jsonFormula{K: "||", Fs: []*jsonFormula{encodeFormula(f.X), encodeFormula(f.Y)}}
	case solver.Eq:
		return &jsonFormula{K: "==", Ts: []*jsonTerm{encodeTerm(f.X), encodeTerm(f.Y)}}
	case solver.Le:
		return &jsonFormula{K: "<=", Ts: []*jsonTerm{encodeTerm(f.X), encodeTerm(f.Y)}}
	case solver.Lt:
		return &jsonFormula{K: "<", Ts: []*jsonTerm{encodeTerm(f.X), encodeTerm(f.Y)}}
	case solver.Iff:
		return &jsonFormula{K: "<=>", Fs: []*jsonFormula{encodeFormula(f.X), encodeFormula(f.Y)}}
	default:
		return &jsonFormula{K: fmt.Sprintf("?%T", f)}
	}
}

func decodeFormula(j *jsonFormula) (solver.Formula, error) {
	if j == nil {
		return nil, fmt.Errorf("nil formula node")
	}
	subf := func(n int) ([]solver.Formula, error) {
		if len(j.Fs) != n {
			return nil, fmt.Errorf("formula %q: want %d subformulas, got %d", j.K, n, len(j.Fs))
		}
		out := make([]solver.Formula, n)
		for i, g := range j.Fs {
			f, err := decodeFormula(g)
			if err != nil {
				return nil, err
			}
			out[i] = f
		}
		return out, nil
	}
	subt := func() (solver.Term, solver.Term, error) {
		if len(j.Ts) != 2 {
			return nil, nil, fmt.Errorf("formula %q: want 2 terms, got %d", j.K, len(j.Ts))
		}
		x, err := decodeTerm(j.Ts[0])
		if err != nil {
			return nil, nil, err
		}
		y, err := decodeTerm(j.Ts[1])
		if err != nil {
			return nil, nil, err
		}
		return x, y, nil
	}
	switch j.K {
	case "bc":
		return solver.BoolConst{Val: j.B}, nil
	case "bv":
		return solver.BoolVar{Name: j.Name}, nil
	case "!":
		fs, err := subf(1)
		if err != nil {
			return nil, err
		}
		return solver.Not{X: fs[0]}, nil
	case "&&":
		fs, err := subf(2)
		if err != nil {
			return nil, err
		}
		return solver.And{X: fs[0], Y: fs[1]}, nil
	case "||":
		fs, err := subf(2)
		if err != nil {
			return nil, err
		}
		return solver.Or{X: fs[0], Y: fs[1]}, nil
	case "==":
		x, y, err := subt()
		if err != nil {
			return nil, err
		}
		return solver.Eq{X: x, Y: y}, nil
	case "<=":
		x, y, err := subt()
		if err != nil {
			return nil, err
		}
		return solver.Le{X: x, Y: y}, nil
	case "<":
		x, y, err := subt()
		if err != nil {
			return nil, err
		}
		return solver.Lt{X: x, Y: y}, nil
	case "<=>":
		fs, err := subf(2)
		if err != nil {
			return nil, err
		}
		return solver.Iff{X: fs[0], Y: fs[1]}, nil
	default:
		return nil, fmt.Errorf("unknown formula tag %q", j.K)
	}
}
