// Package summary computes compositional function summaries: each
// eligible function is symbolically executed once against placeholder
// parameters, its completed paths become guarded arms (path condition
// over the placeholders, return term, both closed under PR 5 merging),
// and call sites instantiate the arms by substitution instead of
// re-inlining the body (Godefroid's "compositional dynamic test
// generation" shape, restricted to the int fragment our solver theory
// covers exactly).
//
// Admissibility is deliberately conservative: a function is summarized
// only when every behavior it can exhibit is captured by (guard, return
// term) pairs over its parameters — straight-line int code, branches,
// bounded loops, and calls to other summarizable functions. Anything
// touching the heap, globals, pointers, MIX boundaries, or recursion
// falls back to inlining, and every fallback is observable (a counter
// and a "summary" trace event), never silent.
//
// Summaries persist across runs through Store: a content-hash-keyed
// on-disk cache (see store.go) so a warm process — or a cold process
// pointed at a warm -cache-dir — re-analyzes only functions whose code
// (or whose callees' code) changed.
package summary

import (
	"fmt"
	"sync/atomic"

	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/microc"
	"mix/internal/solver"
	"mix/internal/symexec"
)

// DefaultCap bounds the number of arms a summary may have; functions
// whose merged exploration still produces more paths than this are
// inlined instead (a huge ite-chain at every call site would trade
// path explosion for term explosion).
const DefaultCap = 16

// fnInfo is the static admissibility record of one function.
type fnInfo struct {
	ok      bool
	reason  string            // why not summarizable, when !ok
	height  int               // static inline call-chain height (leaf = 1)
	callees []*microc.FuncDef // direct summarizable callees, first-call order
}

// analyzer memoizes admissibility over a program's call graph.
type analyzer struct {
	info map[*microc.FuncDef]*fnInfo
}

func analyze(prog *microc.Program) *analyzer {
	a := &analyzer{info: map[*microc.FuncDef]*fnInfo{}}
	for _, f := range prog.Funcs {
		a.check(f, map[*microc.FuncDef]bool{})
	}
	return a
}

func (a *analyzer) check(f *microc.FuncDef, visiting map[*microc.FuncDef]bool) *fnInfo {
	if in, ok := a.info[f]; ok {
		return in
	}
	if visiting[f] {
		// A cycle back to a function whose check is in progress up the
		// stack. Return a transient rejection without memoizing: the
		// in-progress check records the real (memoized) verdict.
		return &fnInfo{reason: "recursive"}
	}
	visiting[f] = true
	in := a.checkFn(f, visiting)
	delete(visiting, f)
	a.info[f] = in
	return in
}

// checkFn walks one function body against the summarizable fragment:
// int-typed params, locals, and return; statements limited to blocks,
// declarations, expressions, if, bounded while, and return; expressions
// limited to int literals, local/param reads and assignments, +,-,*,
// comparisons, boolean connectives, and calls to other summarizable
// functions. Everything else (pointers, heap, globals, MIX annotations,
// function pointers, recursion) is rejected with a reason that becomes
// the fallback diagnostic.
func (a *analyzer) checkFn(f *microc.FuncDef, visiting map[*microc.FuncDef]bool) *fnInfo {
	reject := func(format string, args ...any) *fnInfo {
		return &fnInfo{reason: fmt.Sprintf(format, args...)}
	}
	if f.Mix != microc.MixNone {
		return reject("mix-annotated")
	}
	if f.IsExtern() {
		return reject("extern")
	}
	switch f.Ret.(type) {
	case microc.IntType, microc.VoidType:
	default:
		return reject("return type %s", f.Ret)
	}
	for _, p := range f.Params {
		if _, ok := p.Type.(microc.IntType); !ok {
			return reject("non-int parameter %s", p.Name)
		}
	}
	for _, l := range f.Locals {
		if _, ok := l.Type.(microc.IntType); !ok {
			return reject("non-int local %s", l.Name)
		}
	}

	in := &fnInfo{ok: true, height: 1}
	seen := map[*microc.FuncDef]bool{}
	var walkStmt func(s microc.Stmt) string
	var walkExpr func(e microc.Expr) string

	walkExpr = func(e microc.Expr) string {
		switch e := e.(type) {
		case *microc.IntLit:
			return ""
		case *microc.VarRef:
			d, ok := e.Ref.(*microc.VarDecl)
			if !ok {
				return fmt.Sprintf("reference to function %s", e.Name)
			}
			if d.Kind != microc.ParamVar && d.Kind != microc.LocalVar {
				return fmt.Sprintf("reference to non-local %s", e.Name)
			}
			return ""
		case *microc.Unary:
			if e.Op != microc.OpNot && e.Op != microc.OpNeg {
				return fmt.Sprintf("pointer operator in %s", e)
			}
			return walkExpr(e.X)
		case *microc.Binary:
			if msg := walkExpr(e.X); msg != "" {
				return msg
			}
			return walkExpr(e.Y)
		case *microc.Assign:
			if _, ok := e.LHS.(*microc.VarRef); !ok {
				return "assignment through a non-variable"
			}
			if msg := walkExpr(e.LHS); msg != "" {
				return msg
			}
			return walkExpr(e.RHS)
		case *microc.Call:
			vr, ok := e.Fun.(*microc.VarRef)
			if !ok {
				return "indirect call"
			}
			g, ok := vr.Ref.(*microc.FuncDef)
			if !ok {
				return fmt.Sprintf("call through pointer %s", vr.Name)
			}
			for _, arg := range e.Args {
				if msg := walkExpr(arg); msg != "" {
					return msg
				}
			}
			cin := a.check(g, visiting)
			if !cin.ok {
				return fmt.Sprintf("calls %s: %s", g.Name, cin.reason)
			}
			if !seen[g] {
				seen[g] = true
				in.callees = append(in.callees, g)
				if cin.height+1 > in.height {
					in.height = cin.height + 1
				}
			}
			return ""
		default:
			// NullLit, Field, Malloc, Cast, anything new.
			return fmt.Sprintf("expression %T", e)
		}
	}

	walkStmt = func(s microc.Stmt) string {
		switch s := s.(type) {
		case nil:
			return ""
		case *microc.BlockStmt:
			for _, sub := range s.Stmts {
				if msg := walkStmt(sub); msg != "" {
					return msg
				}
			}
			return ""
		case *microc.DeclStmt:
			if s.Decl.Init != nil {
				return walkExpr(s.Decl.Init)
			}
			return ""
		case *microc.ExprStmt:
			return walkExpr(s.X)
		case *microc.IfStmt:
			if msg := walkExpr(s.Cond); msg != "" {
				return msg
			}
			if msg := walkStmt(s.Then); msg != "" {
				return msg
			}
			return walkStmt(s.Else)
		case *microc.WhileStmt:
			if msg := walkExpr(s.Cond); msg != "" {
				return msg
			}
			return walkStmt(s.Body)
		case *microc.ReturnStmt:
			if s.X != nil {
				return walkExpr(s.X)
			}
			return ""
		default:
			return fmt.Sprintf("statement %T", s)
		}
	}

	if msg := walkStmt(f.Body); msg != "" {
		return reject("%s", msg)
	}
	return in
}

// record is the computed (and persisted) result for one function: a
// usable summary, or a fallback reason. Fallback reasons are cached
// too — rediscovering "too many arms" costs a full symbolic run.
type record struct {
	Fn       string
	Height   int
	Fallback string
	Arms     []symexec.SummaryArm
}

func (r *record) entry() entry {
	if r.Fallback != "" {
		return entry{reason: r.Fallback}
	}
	return entry{sum: &symexec.FuncSummary{Fn: r.Fn, Height: r.Height, Arms: r.Arms}}
}

// entry pairs a summary with its fallback reason; exactly one is set.
type entry struct {
	sum    *symexec.FuncSummary
	reason string
}

// ProgramSummaries holds the summaries (and fallback verdicts) for one
// resolved program and implements symexec.Summarizer. Precompute
// populates it single-threaded; during analysis only the atomic
// instantiation/fallback counters mutate, so it is safe to share
// across parallel branches.
type ProgramSummaries struct {
	byFn map[*microc.FuncDef]entry

	// Computed, MemHits, and DiskHits break down where this run's
	// summaries came from (fresh symbolic runs, the store's in-memory
	// tier, the store's disk tier).
	Computed int
	MemHits  int
	DiskHits int

	// Corrupt counts disk entries that failed the integrity or
	// version check during this precompute and were recomputed.
	Corrupt int

	instantiated atomic.Int64
	fallbacks    atomic.Int64
}

// Summary implements symexec.Summarizer.
func (ps *ProgramSummaries) Summary(f *microc.FuncDef) (*symexec.FuncSummary, string) {
	e, ok := ps.byFn[f]
	if !ok {
		return nil, "not analyzed"
	}
	if e.sum == nil {
		return nil, e.reason
	}
	return e.sum, ""
}

// NoteInstantiated implements symexec.Summarizer.
func (ps *ProgramSummaries) NoteInstantiated(f *microc.FuncDef, arms int) {
	ps.instantiated.Add(1)
}

// NoteFallback implements symexec.Summarizer.
func (ps *ProgramSummaries) NoteFallback(f *microc.FuncDef, reason string) {
	ps.fallbacks.Add(1)
}

// Instantiated reports how many call sites were answered from a summary.
func (ps *ProgramSummaries) Instantiated() int64 { return ps.instantiated.Load() }

// Fallbacks reports how many eligible-looking call sites fell back to
// inlining (depth bounds, non-int arguments, cached fallback verdicts).
func (ps *ProgramSummaries) Fallbacks() int64 { return ps.fallbacks.Load() }

// precomputeView is the Summarizer handed to the scratch executors that
// compute summaries: it shares the under-construction table (so callees
// summarized earlier in topological order are reused compositionally)
// but mutes the run counters — precompute work must not pollute the
// analysis-time instantiation figures.
type precomputeView struct{ ps *ProgramSummaries }

func (v precomputeView) Summary(f *microc.FuncDef) (*symexec.FuncSummary, string) {
	return v.ps.Summary(f)
}
func (v precomputeView) NoteInstantiated(*microc.FuncDef, int) {}
func (v precomputeView) NoteFallback(*microc.FuncDef, string)  {}

// summarizeFunc runs one function on a scratch executor against
// placeholder parameters and folds the completed paths into arms.
// Any imprecision during the scratch run — a loop bound, a budget,
// a degradation, too many arms — becomes a fallback record: the call
// sites must inline so the imprecision is reported in caller context,
// exactly as it would be without summaries.
func summarizeFunc(prog *microc.Program, view symexec.Summarizer, f *microc.FuncDef, armCap, height int) *record {
	x := symexec.New(prog, nil)
	x.MergeMode = engine.MergeAggressive
	x.Summaries = view
	args := make([]symexec.Value, len(f.Params))
	for i := range f.Params {
		args[i] = symexec.VInt{T: solver.IntVar{Name: symexec.SummaryParam(f.Name, i)}}
	}
	outs, err := x.RunFunc(f, symexec.State{PC: solver.PCTrue, Mem: symexec.NewMemory()}, args)

	rec := &record{Fn: f.Name, Height: height}
	switch {
	case err != nil:
		rec.Fallback = "summarization failed: " + err.Error()
	case x.Degraded() != nil:
		rec.Fallback = "summarization degraded: " + fault.ClassOf(x.Degraded()).String()
	case len(x.Reports) > 0:
		rec.Fallback = fmt.Sprintf("%d finding(s) during summarization (first: %s)", len(x.Reports), x.Reports[0].Kind)
	case len(outs) == 0:
		rec.Fallback = "no completed paths"
	case len(outs) > armCap:
		rec.Fallback = fmt.Sprintf("%d arms exceed cap %d", len(outs), armCap)
	default:
		rec.Arms, rec.Fallback = armsOf(f, outs)
	}
	return rec
}

func armsOf(f *microc.FuncDef, outs []symexec.Outcome) ([]symexec.SummaryArm, string) {
	_, isVoid := f.Ret.(microc.VoidType)
	arms := make([]symexec.SummaryArm, 0, len(outs))
	for _, out := range outs {
		arm := symexec.SummaryArm{Guard: solver.Conj(out.St.PC.Conjuncts()...)}
		if !isVoid {
			vi, ok := out.Ret.(symexec.VInt)
			if !ok {
				return nil, fmt.Sprintf("non-integer return value %T", out.Ret)
			}
			arm.Ret = vi.T
		}
		arms = append(arms, arm)
	}
	return arms, ""
}
