package summary

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"mix/internal/fault"
	"mix/internal/microc"
	"mix/internal/symexec"
)

// schemaVersion versions the on-disk summary envelope. Bump it on any
// change to the record shape, the term codec, or the summarization
// semantics; old entries then read as stale and are recomputed.
const schemaVersion = 1

// Store is the cross-run summary cache: an in-memory tier keyed by
// content hash, optionally backed by a directory of per-entry files.
// A Store outlives individual programs (mixd shares one across
// requests); keys hash the function text, its transitive callees, and
// the summarization configuration, so unrelated tenants can never
// collide on anything but genuinely identical code.
//
// The zero dir means memory-only. All methods are safe for concurrent
// use and (except NewStore) safe on a nil receiver.
type Store struct {
	dir string

	mu  sync.Mutex
	mem map[string]*record

	memHits  atomic.Int64
	diskHits atomic.Int64
	computed atomic.Int64
	corrupt  atomic.Int64
	faults   fault.Counters
}

// NewStore opens a summary store. dir == "" keeps the store in memory
// only; otherwise entries are mirrored to per-hash files under dir
// (created if missing).
func NewStore(dir string) *Store {
	if dir != "" {
		_ = os.MkdirAll(dir, 0o755)
	}
	return &Store{dir: dir, mem: map[string]*record{}}
}

// Flush drops the in-memory tier. Disk files survive: the persistent
// tier is the point of the store, and a flushed entry re-loads (and
// re-verifies) from disk on next use.
func (s *Store) Flush() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.mem = map[string]*record{}
	s.mu.Unlock()
}

// StoreStats is a point-in-time view of store activity, for -stats and
// the mixd /metrics gauges.
type StoreStats struct {
	Entries  int   // in-memory entries
	MemHits  int64 // lookups answered from memory
	DiskHits int64 // lookups answered from disk
	Computed int64 // entries computed fresh
	Corrupt  int64 // disk entries that failed integrity/version checks
}

// Stats reports store activity since creation.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	n := len(s.mem)
	s.mu.Unlock()
	return StoreStats{
		Entries:  n,
		MemHits:  s.memHits.Load(),
		DiskHits: s.diskHits.Load(),
		Computed: s.computed.Load(),
		Corrupt:  s.corrupt.Load(),
	}
}

// Faults exposes the store's fault counters (cache-corrupt records).
func (s *Store) Faults() fault.Snapshot {
	if s == nil {
		return fault.Snapshot{}
	}
	return s.faults.Snapshot()
}

// Precompute analyzes every function of prog bottom-up (callees before
// callers, so each summary composes its callees' summaries instead of
// re-exploring them) and returns the per-program summary table. Cached
// entries — in-memory or on disk — short-circuit the symbolic run.
func (s *Store) Precompute(prog *microc.Program, armCap int) *ProgramSummaries {
	if armCap <= 0 {
		armCap = DefaultCap
	}
	ps := &ProgramSummaries{byFn: map[*microc.FuncDef]entry{}}
	a := analyze(prog)
	corrupt0 := s.corrupt.Load()
	defer func() { ps.Corrupt = int(s.corrupt.Load() - corrupt0) }()

	// The configuration fingerprint folds every knob that affects a
	// summary's content into the hash: the arm cap and the scratch
	// executor's exploration bounds. Two runs disagreeing on any of
	// these never share entries.
	scratch := symexec.New(prog, nil)
	fp := fmt.Sprintf("v%d cap=%d unroll=%d depth=%d paths=%d merge=aggressive",
		schemaVersion, armCap, scratch.MaxUnroll, scratch.MaxDepth, scratch.MaxPaths)

	hashes := map[*microc.FuncDef]string{}
	var visit func(f *microc.FuncDef)
	visit = func(f *microc.FuncDef) {
		if _, done := ps.byFn[f]; done {
			return
		}
		in := a.info[f]
		if !in.ok {
			ps.byFn[f] = entry{reason: in.reason}
			return
		}
		for _, g := range in.callees {
			visit(g)
		}
		// Summarizable functions have an acyclic callee closure (the
		// admissibility walk rejects recursion), so hashing terminates.
		h := fnHash(fp, f, in.callees, hashes)
		hashes[f] = h
		if rec, fromDisk := s.lookup(h); rec != nil {
			if fromDisk {
				ps.DiskHits++
			} else {
				ps.MemHits++
			}
			ps.byFn[f] = rec.entry()
			return
		}
		rec := summarizeFunc(prog, precomputeView{ps}, f, armCap, in.height)
		s.put(h, rec)
		ps.Computed++
		ps.byFn[f] = rec.entry()
	}
	for _, f := range prog.Funcs {
		visit(f)
	}
	return ps
}

// fnHash is the content key of one function's summary: fingerprint,
// canonical source text, and the hashes of its direct callees (sorted,
// so formatting-independent). A change anywhere in a function's
// transitive callee closure changes its hash.
func fnHash(fp string, f *microc.FuncDef, callees []*microc.FuncDef, hashes map[*microc.FuncDef]string) string {
	h := sha256.New()
	io.WriteString(h, "mix-summary\n")
	io.WriteString(h, fp)
	io.WriteString(h, "\n")
	io.WriteString(h, microc.PrintFunc(f))
	cs := make([]string, 0, len(callees))
	for _, g := range callees {
		cs = append(cs, hashes[g]+" "+g.Name)
	}
	sort.Strings(cs)
	for _, c := range cs {
		io.WriteString(h, c)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// lookup consults memory then disk; a disk hit is promoted to memory.
// Corrupt or stale disk entries count a CacheCorrupt fault and read as
// a miss (degrade to recompute; put overwrites the bad file).
func (s *Store) lookup(hash string) (rec *record, fromDisk bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	rec = s.mem[hash]
	s.mu.Unlock()
	if rec != nil {
		s.memHits.Add(1)
		return rec, false
	}
	if s.dir == "" {
		return nil, false
	}
	rec, err := s.loadDisk(hash)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.corrupt.Add(1)
			s.faults.RecordErr(fault.New(fault.CacheCorrupt, "summary.store", "", err))
		}
		return nil, false
	}
	s.mu.Lock()
	s.mem[hash] = rec
	s.mu.Unlock()
	s.diskHits.Add(1)
	return rec, true
}

// put records a freshly computed entry in memory and, when configured,
// on disk (best-effort: an unwritable directory degrades the store to
// memory-only for that entry, it never fails the analysis).
func (s *Store) put(hash string, rec *record) {
	if s == nil {
		return
	}
	s.computed.Add(1)
	s.mu.Lock()
	s.mem[hash] = rec
	s.mu.Unlock()
	if s.dir != "" {
		_ = s.writeDisk(hash, rec)
	}
}

// Disk layout: one JSON file per entry, named by content hash, wrapped
// in a versioned envelope whose checksum covers the payload bytes.
// Writes go through a temp file + rename so readers never observe a
// torn entry.

type diskEnvelope struct {
	SchemaVersion int             `json:"schema_version"`
	Hash          string          `json:"hash"`
	Checksum      string          `json:"checksum"`
	Payload       json.RawMessage `json:"payload"`
}

type diskRecord struct {
	Fn       string    `json:"fn"`
	Height   int       `json:"height"`
	Fallback string    `json:"fallback,omitempty"`
	Arms     []diskArm `json:"arms,omitempty"`
}

type diskArm struct {
	Guard *jsonFormula `json:"guard"`
	Ret   *jsonTerm    `json:"ret,omitempty"`
}

func (s *Store) entryPath(hash string) string {
	return filepath.Join(s.dir, "sum-"+hash+".json")
}

func (s *Store) loadDisk(hash string) (*record, error) {
	b, err := os.ReadFile(s.entryPath(hash))
	if err != nil {
		return nil, err
	}
	var env diskEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("summary entry %s: bad envelope: %v", hash[:12], err)
	}
	if env.SchemaVersion != schemaVersion {
		return nil, fmt.Errorf("summary entry %s: schema version %d, want %d", hash[:12], env.SchemaVersion, schemaVersion)
	}
	if env.Hash != hash {
		return nil, fmt.Errorf("summary entry %s: hash mismatch", hash[:12])
	}
	if sum := sha256.Sum256(env.Payload); hex.EncodeToString(sum[:]) != env.Checksum {
		return nil, fmt.Errorf("summary entry %s: checksum mismatch", hash[:12])
	}
	var dr diskRecord
	if err := json.Unmarshal(env.Payload, &dr); err != nil {
		return nil, fmt.Errorf("summary entry %s: bad payload: %v", hash[:12], err)
	}
	rec := &record{Fn: dr.Fn, Height: dr.Height, Fallback: dr.Fallback}
	for _, da := range dr.Arms {
		g, err := decodeFormula(da.Guard)
		if err != nil {
			return nil, fmt.Errorf("summary entry %s: %v", hash[:12], err)
		}
		arm := symexec.SummaryArm{Guard: g}
		if da.Ret != nil {
			t, err := decodeTerm(da.Ret)
			if err != nil {
				return nil, fmt.Errorf("summary entry %s: %v", hash[:12], err)
			}
			arm.Ret = t
		}
		rec.Arms = append(rec.Arms, arm)
	}
	if rec.Fallback == "" && len(rec.Arms) == 0 {
		return nil, fmt.Errorf("summary entry %s: neither arms nor fallback", hash[:12])
	}
	return rec, nil
}

func (s *Store) writeDisk(hash string, rec *record) error {
	dr := diskRecord{Fn: rec.Fn, Height: rec.Height, Fallback: rec.Fallback}
	for _, arm := range rec.Arms {
		da := diskArm{Guard: encodeFormula(arm.Guard)}
		if arm.Ret != nil {
			da.Ret = encodeTerm(arm.Ret)
		}
		dr.Arms = append(dr.Arms, da)
	}
	payload, err := json.Marshal(dr)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	env := diskEnvelope{
		SchemaVersion: schemaVersion,
		Hash:          hash,
		Checksum:      hex.EncodeToString(sum[:]),
		Payload:       payload,
	}
	b, err := json.Marshal(&env)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "sum-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.entryPath(hash))
}
