package sym

import (
	"fmt"

	"mix/internal/solver"
	"mix/internal/types"
)

// Translator lowers typed symbolic expressions into solver formulas
// and terms. Conditional expressions and ambiguous reads from write
// logs lower to guarded solver.Ite terms — structural, hence canonical
// across repeated translations of one value — which the solver itself
// flattens to fresh variables ahead of DPLL. Queries about a value v
// are still posed as
//
//	query(v) ∧ Sides()
//
// for any residual side constraints a lowering may accumulate; the
// conjunction preserves satisfiability with respect to the original
// variables.
//
// Pointers are modeled as integers. Distinct allocation sites yield
// distinct symbolic variables; the translator resolves reads against
// the write log, using syntactic address equality to take a write,
// alloc-freshness to skip one, and an ITE split when neither applies.
type Translator struct {
	sides    []solver.Formula
	allocIDs map[int]bool
}

// NewTranslator returns an empty translator. One translator should be
// shared across all values of a single solver query so that fresh
// variables and side constraints compose.
func NewTranslator() *Translator {
	return &Translator{allocIDs: map[int]bool{}}
}

// Sides returns the conjunction of accumulated side constraints.
func (t *Translator) Sides() solver.Formula {
	return solver.Conj(t.sides...)
}

// Formula lowers a bool-typed value to a solver formula.
func (t *Translator) Formula(v Val) (solver.Formula, error) {
	if v.IsZero() {
		return nil, fmt.Errorf("sym: translating zero value")
	}
	if !types.Equal(v.T, types.Bool) {
		return nil, fmt.Errorf("sym: %s is not bool-typed", v)
	}
	switch u := v.U.(type) {
	case BoolConst:
		return solver.BoolConst{Val: u.Val}, nil
	case SymVar:
		return solver.BoolVar{Name: fmt.Sprintf("p%d", u.ID)}, nil
	case EqOp:
		if types.Equal(u.X.T, types.Bool) {
			fx, err := t.Formula(u.X)
			if err != nil {
				return nil, err
			}
			fy, err := t.Formula(u.Y)
			if err != nil {
				return nil, err
			}
			return solver.Iff{X: fx, Y: fy}, nil
		}
		tx, err := t.Term(u.X)
		if err != nil {
			return nil, err
		}
		ty, err := t.Term(u.Y)
		if err != nil {
			return nil, err
		}
		return solver.Eq{X: tx, Y: ty}, nil
	case LtOp:
		tx, err := t.Term(u.X)
		if err != nil {
			return nil, err
		}
		ty, err := t.Term(u.Y)
		if err != nil {
			return nil, err
		}
		return solver.Lt{X: tx, Y: ty}, nil
	case NotOp:
		fx, err := t.Formula(u.X)
		if err != nil {
			return nil, err
		}
		return solver.NewNot(fx), nil
	case AndOp:
		fx, err := t.Formula(u.X)
		if err != nil {
			return nil, err
		}
		fy, err := t.Formula(u.Y)
		if err != nil {
			return nil, err
		}
		return solver.NewAnd(fx, fy), nil
	case CondOp:
		g, err := t.Formula(u.G)
		if err != nil {
			return nil, err
		}
		fx, err := t.Formula(u.X)
		if err != nil {
			return nil, err
		}
		fy, err := t.Formula(u.Y)
		if err != nil {
			return nil, err
		}
		return solver.NewOr(solver.NewAnd(g, fx), solver.NewAnd(solver.NewNot(g), fy)), nil
	case MemRead:
		return t.readFormula(u.M, u.Ptr)
	}
	return nil, fmt.Errorf("sym: cannot translate %s to a formula", v)
}

// Term lowers an int- or ref-typed value to a solver term.
func (t *Translator) Term(v Val) (solver.Term, error) {
	if v.IsZero() {
		return nil, fmt.Errorf("sym: translating zero value")
	}
	switch u := v.U.(type) {
	case IntConst:
		return solver.IntConst{Val: u.Val}, nil
	case SymVar:
		return solver.IntVar{Name: fmt.Sprintf("s%d", u.ID)}, nil
	case AddOp:
		tx, err := t.Term(u.X)
		if err != nil {
			return nil, err
		}
		ty, err := t.Term(u.Y)
		if err != nil {
			return nil, err
		}
		return solver.Add{X: tx, Y: ty}, nil
	case CondOp:
		g, err := t.Formula(u.G)
		if err != nil {
			return nil, err
		}
		tx, err := t.Term(u.X)
		if err != nil {
			return nil, err
		}
		ty, err := t.Term(u.Y)
		if err != nil {
			return nil, err
		}
		return t.ite(g, tx, ty), nil
	case MemRead:
		return t.readTerm(u.M, u.Ptr)
	}
	return nil, fmt.Errorf("sym: cannot translate %s to a term", v)
}

// ite builds a guarded term directly. The solver lowers any surviving
// Ite to a fresh variable with defining clauses itself (see
// solver.elimIte); emitting the structural term instead of a
// translator-local fresh variable keeps queries canonical — two
// translations of the same value produce the same formula — so the
// engine's memo table and counterexample cache fire across them.
func (t *Translator) ite(g solver.Formula, x, y solver.Term) solver.Term {
	return solver.NewIte(g, x, y)
}

// collectAllocs records the allocation addresses of a memory log so
// distinct allocations can be treated as disequal during read
// resolution.
func (t *Translator) collectAllocs(m Mem) {
	switch m := m.(type) {
	case Alloc:
		if sv, ok := m.Addr.U.(SymVar); ok {
			t.allocIDs[sv.ID] = true
		}
		t.collectAllocs(m.Base)
	case Update:
		t.collectAllocs(m.Base)
	case CondMem:
		t.collectAllocs(m.M1)
		t.collectAllocs(m.M2)
	}
}

// distinctAddrs reports whether a and b are certainly different
// locations: two different allocation variables ("an allocation always
// creates a new location distinct from the locations in the base
// unknown memory").
func (t *Translator) distinctAddrs(a, b Val) bool {
	sa, oka := a.U.(SymVar)
	sb, okb := b.U.(SymVar)
	return oka && okb && sa.ID != sb.ID && t.allocIDs[sa.ID] && t.allocIDs[sb.ID]
}

// readTerm resolves m[ptr] at integer/pointer type, walking the write
// log outermost-entry first.
func (t *Translator) readTerm(m Mem, ptr Val) (solver.Term, error) {
	t.collectAllocs(m)
	return t.readTermWalk(m, ptr)
}

func (t *Translator) readTermWalk(m Mem, ptr Val) (solver.Term, error) {
	switch m := m.(type) {
	case MemVar:
		p, err := t.Term(ptr)
		if err != nil {
			return nil, err
		}
		return solver.App{Fn: fmt.Sprintf("sel%d", m.ID), Args: []solver.Term{p}}, nil
	case Update:
		return t.readEntryTerm(m.Base, m.Addr, m.V, ptr)
	case Alloc:
		return t.readEntryTerm(m.Base, m.Addr, m.V, ptr)
	case CondMem:
		g, err := t.Formula(m.G)
		if err != nil {
			return nil, err
		}
		x, err := t.readTermWalk(m.M1, ptr)
		if err != nil {
			return nil, err
		}
		y, err := t.readTermWalk(m.M2, ptr)
		if err != nil {
			return nil, err
		}
		return t.ite(g, x, y), nil
	}
	return nil, fmt.Errorf("sym: unknown memory %T", m)
}

func (t *Translator) readEntryTerm(base Mem, addr, v, ptr Val) (solver.Term, error) {
	if ValEqual(addr, ptr) {
		return t.Term(v)
	}
	// Reads happen only after ⊢ m ok, so memory is type-segregated:
	// differently-annotated pointers cannot alias.
	if !types.Equal(addr.T, ptr.T) || t.distinctAddrs(addr, ptr) {
		return t.readTermWalk(base, ptr)
	}
	ta, err := t.Term(addr)
	if err != nil {
		return nil, err
	}
	tp, err := t.Term(ptr)
	if err != nil {
		return nil, err
	}
	tv, err := t.Term(v)
	if err != nil {
		return nil, err
	}
	rest, err := t.readTermWalk(base, ptr)
	if err != nil {
		return nil, err
	}
	return t.ite(solver.Eq{X: ta, Y: tp}, tv, rest), nil
}

// readFormula resolves m[ptr] at boolean type.
func (t *Translator) readFormula(m Mem, ptr Val) (solver.Formula, error) {
	t.collectAllocs(m)
	return t.readFormulaWalk(m, ptr)
}

func (t *Translator) readFormulaWalk(m Mem, ptr Val) (solver.Formula, error) {
	switch m := m.(type) {
	case MemVar:
		p, err := t.Term(ptr)
		if err != nil {
			return nil, err
		}
		// A boolean read from the arbitrary base memory: one boolean
		// variable per distinct (memory, address) spelling. Distinct
		// spellings of equal addresses get distinct variables, which
		// over-approximates satisfiability (conservative).
		return solver.BoolVar{Name: fmt.Sprintf("selb%d[%s]", m.ID, p.String())}, nil
	case Update:
		return t.readEntryFormula(m.Base, m.Addr, m.V, ptr)
	case Alloc:
		return t.readEntryFormula(m.Base, m.Addr, m.V, ptr)
	case CondMem:
		g, err := t.Formula(m.G)
		if err != nil {
			return nil, err
		}
		x, err := t.readFormulaWalk(m.M1, ptr)
		if err != nil {
			return nil, err
		}
		y, err := t.readFormulaWalk(m.M2, ptr)
		if err != nil {
			return nil, err
		}
		return solver.NewOr(solver.NewAnd(g, x), solver.NewAnd(solver.NewNot(g), y)), nil
	}
	return nil, fmt.Errorf("sym: unknown memory %T", m)
}

func (t *Translator) readEntryFormula(base Mem, addr, v, ptr Val) (solver.Formula, error) {
	if ValEqual(addr, ptr) {
		return t.Formula(v)
	}
	if !types.Equal(addr.T, ptr.T) || t.distinctAddrs(addr, ptr) {
		return t.readFormulaWalk(base, ptr)
	}
	ta, err := t.Term(addr)
	if err != nil {
		return nil, err
	}
	tp, err := t.Term(ptr)
	if err != nil {
		return nil, err
	}
	fv, err := t.Formula(v)
	if err != nil {
		return nil, err
	}
	rest, err := t.readFormulaWalk(base, ptr)
	if err != nil {
		return nil, err
	}
	eq := solver.Eq{X: ta, Y: tp}
	return solver.NewOr(solver.NewAnd(eq, fv), solver.NewAnd(solver.NewNot(eq), rest)), nil
}
