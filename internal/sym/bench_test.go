package sym

import (
	"fmt"
	"testing"

	"mix/internal/lang"
	"mix/internal/types"
)

// benchLadder builds n sequential symbolic conditionals.
func benchLadder(n int) (lang.Expr, func(x *Executor) *Env) {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("let t%d = (if b%d then 1 else 2) in ", i, i)
	}
	src += "0"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(" + t%d", i)
	}
	e := lang.MustParse(src)
	mkEnv := func(x *Executor) *Env {
		env := EmptyEnv()
		for i := 0; i < n; i++ {
			env = env.Extend(fmt.Sprintf("b%d", i), x.Fresh.Var(types.Bool, "b"))
		}
		return env
	}
	return e, mkEnv
}

func BenchmarkForkingExecution(b *testing.B) {
	for _, n := range []int{4, 8} {
		n := n
		e, mkEnv := benchLadder(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := NewExecutor()
				if _, err := x.Run(mkEnv(x), x.InitialState(), e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeferredExecution(b *testing.B) {
	for _, n := range []int{4, 8} {
		n := n
		e, mkEnv := benchLadder(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := NewExecutor()
				x.Mode = DeferIf
				if _, err := x.Run(mkEnv(x), x.InitialState(), e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcreteFoldAblation measures the SEPLUS-CONC
// partial-evaluation rule on a constant-heavy program.
func BenchmarkConcreteFoldAblation(b *testing.B) {
	src := "0"
	for i := 0; i < 64; i++ {
		src += " + 1"
	}
	e := lang.MustParse("if (" + src + ") = 64 then 1 else (1 + true)")
	for _, fold := range []bool{true, false} {
		fold := fold
		name := "fold=on"
		if !fold {
			name = "fold=off"
		}
		b.Run(name, func(b *testing.B) {
			var paths int
			for i := 0; i < b.N; i++ {
				x := NewExecutor()
				x.ConcreteFold = fold
				rs, err := x.Run(EmptyEnv(), x.InitialState(), e)
				if err != nil {
					b.Fatal(err)
				}
				paths = len(rs)
			}
			b.ReportMetric(float64(paths), "paths")
		})
	}
}

// BenchmarkMemoryLogDeref measures write-log growth and ⊢ m ok cost.
func BenchmarkMemoryLogDeref(b *testing.B) {
	src := "let r = ref 0 in "
	for i := 0; i < 32; i++ {
		src += fmt.Sprintf("let _ = r := %d in ", i)
	}
	src += "!r"
	e := lang.MustParse(src)
	for i := 0; i < b.N; i++ {
		x := NewExecutor()
		if _, err := x.Run(EmptyEnv(), x.InitialState(), e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosureInlining measures higher-order application.
func BenchmarkClosureInlining(b *testing.B) {
	e := lang.MustParse(
		"let twice = fun f -> fun x -> f (f x) in twice (twice (fun n -> n + 1)) 0")
	for i := 0; i < b.N; i++ {
		x := NewExecutor()
		rs, err := x.Run(EmptyEnv(), x.InitialState(), e)
		if err != nil {
			b.Fatal(err)
		}
		if rs[0].Val.String() != "4:int" {
			b.Fatalf("got %s", rs[0].Val)
		}
	}
}
