package sym

import (
	"strings"
	"testing"

	"mix/internal/fault"
	"mix/internal/lang"
	"mix/internal/types"
)

func TestLtFolding(t *testing.T) {
	_, rs := runSrc(t, "1 < 2")
	if rs[0].Val.String() != "true:bool" {
		t.Fatalf("got %s", rs[0].Val)
	}
	_, rs = runSrc(t, "2 < 1")
	if rs[0].Val.String() != "false:bool" {
		t.Fatalf("got %s", rs[0].Val)
	}
}

func TestLtSymbolic(t *testing.T) {
	x := NewExecutor()
	a := x.Fresh.Var(types.Int, "a")
	env := EmptyEnv().Extend("a", a)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("a < 0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rs[0].Val.U.(LtOp); !ok {
		t.Fatalf("want LtOp, got %T", rs[0].Val.U)
	}
}

func TestLtTypeErrors(t *testing.T) {
	_, rs := runSrc(t, "true < 1")
	errs := pathErrors(rs)
	if len(errs) != 1 || !strings.Contains(errs[0].Err.Msg, "left operand of <") {
		t.Fatalf("got %v", rs)
	}
}

func TestClosureApplication(t *testing.T) {
	_, rs := runSrc(t, "(fun x -> x + 1) 4")
	if len(rs) != 1 || rs[0].Err != nil {
		t.Fatalf("got %v", rs)
	}
	if rs[0].Val.String() != "5:int" {
		t.Fatalf("got %s", rs[0].Val)
	}
}

func TestClosureContextSensitivity(t *testing.T) {
	// The paper's id example: one unannotated function applied at two
	// different types within a symbolic region.
	_, rs := runSrc(t, "let id = fun x -> x in (id 3) + (if id true then 1 else 0)")
	ok := successes(rs)
	if len(ok) != 1 {
		t.Fatalf("got %v", rs)
	}
	if ok[0].Val.String() != "4:int" {
		t.Fatalf("got %s", ok[0].Val)
	}
}

func TestCurrying(t *testing.T) {
	_, rs := runSrc(t, "(fun x -> fun y -> x + y) 1 2")
	if rs[0].Val.String() != "3:int" {
		t.Fatalf("got %s", rs[0].Val)
	}
}

func TestClosureCapture(t *testing.T) {
	_, rs := runSrc(t, "let a = 10 in let f = fun x -> x + a in let a = 99 in f 1")
	if rs[0].Val.String() != "11:int" {
		t.Fatalf("lexical capture broken: got %s", rs[0].Val)
	}
}

func TestApplyUnknownFunctionFails(t *testing.T) {
	x := NewExecutor()
	f := x.Fresh.Var(types.Fun(types.Int, types.Int), "f")
	env := EmptyEnv().Extend("f", f)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("f 3"))
	if err != nil {
		t.Fatal(err)
	}
	errs := pathErrors(rs)
	if len(errs) != 1 || !strings.Contains(errs[0].Err.Msg, "unknown function") {
		t.Fatalf("got %v", rs)
	}
}

func TestApplyNonFunctionFails(t *testing.T) {
	_, rs := runSrc(t, "1 2")
	errs := pathErrors(rs)
	if len(errs) != 1 {
		t.Fatalf("got %v", rs)
	}
}

func TestRefOfClosureResolves(t *testing.T) {
	// Reading a closure back from a reference and applying it works
	// when the read resolves syntactically.
	_, rs := runSrc(t, "let r = ref (fun x -> x + 1) in (!r) 4")
	ok := successes(rs)
	if len(ok) != 1 {
		t.Fatalf("got %v", rs)
	}
	if ok[0].Val.String() != "5:int" {
		t.Fatalf("got %s", ok[0].Val)
	}
}

func TestRefOfClosureUpdated(t *testing.T) {
	_, rs := runSrc(t, `let r = ref (fun x -> x + 1) in
		let _ = r := (fun x -> x + 100) in (!r) 1`)
	ok := successes(rs)
	if len(ok) != 1 {
		t.Fatalf("got %v", rs)
	}
	if ok[0].Val.String() != "101:int" {
		t.Fatalf("latest write should win: got %s", ok[0].Val)
	}
}

func TestLandinKnotRunsOutOfFuel(t *testing.T) {
	// Recursion through the store must hit the step budget and degrade
	// — truncate with a recorded step-budget fault — not hang or fail.
	x := NewExecutor()
	x.MaxSteps = 10000
	src := `let r = ref (fun x -> x) in
		let f = fun n -> (!r) n in
		let _ = r := f in
		f 0`
	_, err := x.Run(EmptyEnv(), x.InitialState(), lang.MustParse(src))
	if err != nil {
		t.Fatalf("step exhaustion must degrade, not error: %v", err)
	}
	if x.ImprecisionCount() == 0 {
		t.Fatal("truncation must be recorded as imprecision")
	}
	if d := x.Degraded(); fault.ClassOf(d) != fault.StepBudget {
		t.Fatalf("degradation cause = %v, want step-budget", d)
	}
	if d := x.Degraded(); !strings.Contains(d.Error(), "max-steps=10000") {
		t.Fatalf("diagnostic must name the tripped budget: %v", d)
	}
}

func TestFunctionsCannotBeCompared(t *testing.T) {
	_, rs := runSrc(t, "(fun x -> x) = (fun y -> y)")
	errs := pathErrors(rs)
	if len(errs) != 1 || !strings.Contains(errs[0].Err.Msg, "cannot compare functions") {
		t.Fatalf("got %v", rs)
	}
}

func TestDeferModeClosureBranches(t *testing.T) {
	// A deferred conditional over closures produces a CondOp value;
	// applying it forks on the guard.
	x := NewExecutor()
	x.Mode = DeferIf
	b := x.Fresh.Var(types.Bool, "b")
	env := EmptyEnv().Extend("b", b)
	src := "(if b then (fun x -> x + 1) else (fun x -> x + 2)) 10"
	rs, err := x.Run(env, x.InitialState(), lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	ok := successes(rs)
	if len(ok) != 2 {
		t.Fatalf("expected apply to fork the deferred closure: %v", rs)
	}
}

func TestHigherOrderFunctions(t *testing.T) {
	_, rs := runSrc(t, "let twice = fun f -> fun x -> f (f x) in twice (fun n -> n + 3) 1")
	ok := successes(rs)
	if len(ok) != 1 || ok[0].Val.String() != "7:int" {
		t.Fatalf("got %v", rs)
	}
}
