package sym

import (
	"strings"
	"testing"

	"mix/internal/fault"
	"mix/internal/lang"
	"mix/internal/solver"
	"mix/internal/types"
)

// runSrc executes src with a fresh executor.
func runSrc(t *testing.T, src string) (*Executor, []Result) {
	t.Helper()
	x := NewExecutor()
	rs, err := x.Run(EmptyEnv(), x.InitialState(), lang.MustParse(src))
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return x, rs
}

// successes filters out error results.
func successes(rs []Result) []Result {
	var out []Result
	for _, r := range rs {
		if r.Err == nil {
			out = append(out, r)
		}
	}
	return out
}

func pathErrors(rs []Result) []Result {
	var out []Result
	for _, r := range rs {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

func TestLiteralsAndFolding(t *testing.T) {
	_, rs := runSrc(t, "1 + 2")
	if len(rs) != 1 || rs[0].Err != nil {
		t.Fatalf("got %v", rs)
	}
	if rs[0].Val.String() != "3:int" {
		t.Fatalf("SEPLUS-CONC should fold: got %s", rs[0].Val)
	}
	_, rs = runSrc(t, "1 = 1")
	if rs[0].Val.String() != "true:bool" {
		t.Fatalf("got %s", rs[0].Val)
	}
	_, rs = runSrc(t, "not (true && false)")
	if rs[0].Val.String() != "true:bool" {
		t.Fatalf("got %s", rs[0].Val)
	}
}

func TestNoFoldingKeepsStructure(t *testing.T) {
	x := NewExecutor()
	x.ConcreteFold = false
	rs, err := x.Run(EmptyEnv(), x.InitialState(), lang.MustParse("1 + 2"))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Val.String() != "(1:int + 2:int):int" {
		t.Fatalf("got %s", rs[0].Val)
	}
}

func TestSymbolicArithmetic(t *testing.T) {
	x := NewExecutor()
	a := x.Fresh.Var(types.Int, "a")
	env := EmptyEnv().Extend("a", a)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("a + 1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || !types.Equal(rs[0].Val.T, types.Int) {
		t.Fatalf("got %v", rs)
	}
	if _, ok := rs[0].Val.U.(AddOp); !ok {
		t.Fatalf("want deferred AddOp, got %T", rs[0].Val.U)
	}
}

func TestDynamicTypeErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"1 + true", "right operand of +"},
		{"true + 1", "left operand of +"},
		{"1 = true", "operands of ="},
		{"not 3", "operand of not"},
		{"3 && true", "left operand of &&"},
		{"if 3 then 1 else 2", "condition of if"},
		{"!3", "dereference of non-reference"},
		{"3 := 4", "assignment to non-reference"},
	}
	for _, c := range cases {
		_, rs := runSrc(t, c.src)
		errs := pathErrors(rs)
		if len(errs) != 1 {
			t.Errorf("%q: got %d errors, want 1", c.src, len(errs))
			continue
		}
		if !strings.Contains(errs[0].Err.Msg, c.frag) {
			t.Errorf("%q: error %q, want fragment %q", c.src, errs[0].Err.Msg, c.frag)
		}
	}
}

func TestUnboundVariableIsHardError(t *testing.T) {
	x := NewExecutor()
	_, err := x.Run(EmptyEnv(), x.InitialState(), lang.MustParse("nope"))
	if err == nil || !strings.Contains(err.Error(), "unbound variable") {
		t.Fatalf("got %v", err)
	}
}

func TestForkOnSymbolicCondition(t *testing.T) {
	x := NewExecutor()
	b := x.Fresh.Var(types.Bool, "b")
	env := EmptyEnv().Extend("b", b)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("if b then 1 else 2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("want 2 paths, got %d", len(rs))
	}
	if x.Stats.Forks != 1 {
		t.Fatalf("Forks = %d, want 1", x.Stats.Forks)
	}
	// Path conditions must be b and ¬b respectively.
	g0, g1 := rs[0].State.Guard.String(), rs[1].State.Guard.String()
	if !strings.Contains(g0, "b") || !strings.Contains(g1, "¬") {
		t.Fatalf("unexpected guards %s / %s", g0, g1)
	}
}

func TestConstantConditionDoesNotFork(t *testing.T) {
	_, rs := runSrc(t, "if true then 1 else (1 + true)")
	if len(rs) != 1 || rs[0].Err != nil {
		t.Fatalf("partial evaluation should take only the true branch: %v", rs)
	}
	if rs[0].Val.String() != "1:int" {
		t.Fatalf("got %s", rs[0].Val)
	}
}

func TestFlowSensitiveReuse(t *testing.T) {
	// Section 2 "var x = 1; ...; x = 'foo'" analogue: rebinding a
	// variable at a different type is fine for the symbolic executor.
	_, rs := runSrc(t, "let x = 1 in let x = true in x && x")
	if len(rs) != 1 || rs[0].Err != nil {
		t.Fatalf("got %v", rs)
	}
}

func TestNestedForks(t *testing.T) {
	x := NewExecutor()
	env := EmptyEnv().
		Extend("a", x.Fresh.Var(types.Bool, "a")).
		Extend("b", x.Fresh.Var(types.Bool, "b"))
	rs, err := x.Run(env, x.InitialState(),
		lang.MustParse("if a then (if b then 1 else 2) else (if b then 3 else 4)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("want 4 paths, got %d", len(rs))
	}
}

func TestRefDerefAssign(t *testing.T) {
	_, rs := runSrc(t, "let x = ref 1 in let _ = x := 2 in !x")
	ok := successes(rs)
	if len(ok) != 1 {
		t.Fatalf("got %v", rs)
	}
	if !types.Equal(ok[0].Val.T, types.Int) {
		t.Fatalf("deref type = %s", ok[0].Val.T)
	}
	if _, isRead := ok[0].Val.U.(MemRead); !isRead {
		t.Fatalf("want MemRead, got %T", ok[0].Val.U)
	}
}

func TestIllTypedWriteBlocksDeref(t *testing.T) {
	// Writing a bool through an int ref is allowed by SEASSIGN, but a
	// subsequent dereference requires ⊢ m ok and must fail.
	_, rs := runSrc(t, "let x = ref 1 in let _ = x := true in !x")
	errs := pathErrors(rs)
	if len(errs) != 1 || !strings.Contains(errs[0].Err.Msg, "memory not consistently typed") {
		t.Fatalf("got %v", rs)
	}
}

func TestOverwriteRestoresConsistency(t *testing.T) {
	// OVERWRITE-OK: a later well-typed write to the same location
	// discharges the earlier inconsistent one.
	_, rs := runSrc(t, "let x = ref 1 in let _ = x := true in let _ = x := 5 in !x")
	ok := successes(rs)
	if len(ok) != 1 {
		t.Fatalf("got %v", rs)
	}
}

func TestIllTypedWriteElsewhereStillBlocks(t *testing.T) {
	// The inconsistent write is to y; dereferencing x still requires
	// the whole memory to be consistent (the formalism's coarse rule).
	_, rs := runSrc(t, "let x = ref 1 in let y = ref 2 in let _ = y := true in !x")
	errs := pathErrors(rs)
	if len(errs) != 1 {
		t.Fatalf("got %v", rs)
	}
}

func TestTypedBlockWithoutHook(t *testing.T) {
	x := NewExecutor()
	_, err := x.Run(EmptyEnv(), x.InitialState(), lang.MustParse("{t 1 t}"))
	if err == nil || !strings.Contains(err.Error(), "typed block not supported") {
		t.Fatalf("got %v", err)
	}
}

func TestSymBlockPassThrough(t *testing.T) {
	_, rs := runSrc(t, "{s 1 + 2 s}")
	if len(rs) != 1 || rs[0].Val.String() != "3:int" {
		t.Fatalf("got %v", rs)
	}
}

func TestDeferModeSingleResult(t *testing.T) {
	x := NewExecutor()
	x.Mode = DeferIf
	b := x.Fresh.Var(types.Bool, "b")
	env := EmptyEnv().Extend("b", b)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("if b then 1 else 2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("defer mode should not fork: got %d results", len(rs))
	}
	if _, ok := rs[0].Val.U.(CondOp); !ok {
		t.Fatalf("want CondOp value, got %T", rs[0].Val.U)
	}
	if x.Stats.Merges != 1 || x.Stats.Forks != 0 {
		t.Fatalf("stats %+v", x.Stats)
	}
}

func TestDeferModeRequiresSameType(t *testing.T) {
	x := NewExecutor()
	x.Mode = DeferIf
	b := x.Fresh.Var(types.Bool, "b")
	env := EmptyEnv().Extend("b", b)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("if b then 1 else true"))
	if err != nil {
		t.Fatal(err)
	}
	errs := pathErrors(rs)
	if len(errs) != 1 || !strings.Contains(errs[0].Err.Msg, "branches of deferred if") {
		t.Fatalf("got %v", rs)
	}
}

func TestForkModeAllowsDifferentBranchTypes(t *testing.T) {
	// Forking is less conservative than deferring: each path stands
	// alone, so branch types may differ.
	x := NewExecutor()
	b := x.Fresh.Var(types.Bool, "b")
	env := EmptyEnv().Extend("b", b)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("if b then 1 else true"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pathErrors(rs)) != 0 {
		t.Fatalf("fork mode should succeed per-path: %v", rs)
	}
}

func TestMaxPathsBound(t *testing.T) {
	// Exceeding MaxPaths degrades: the result set is truncated to the
	// budget and the truncation is recorded, not turned into an error.
	x := NewExecutor()
	x.MaxPaths = 3
	env := EmptyEnv().
		Extend("a", x.Fresh.Var(types.Bool, "a")).
		Extend("b", x.Fresh.Var(types.Bool, "b")).
		Extend("c", x.Fresh.Var(types.Bool, "c"))
	src := "let _ = (if a then 1 else 2) in let _ = (if b then 1 else 2) in if c then 1 else 2"
	rs, err := x.Run(env, x.InitialState(), lang.MustParse(src))
	if err != nil {
		t.Fatalf("path exhaustion must degrade, not error: %v", err)
	}
	if len(rs) == 0 || len(rs) > 3 {
		t.Fatalf("want 1..3 surviving paths after truncation, got %d", len(rs))
	}
	if x.ImprecisionCount() == 0 {
		t.Fatal("truncation must be recorded as imprecision")
	}
	if d := x.Degraded(); fault.ClassOf(d) != fault.PathBudget || !strings.Contains(d.Error(), "max-paths=3") {
		t.Fatalf("degradation cause = %v, want path-budget naming max-paths=3", d)
	}
}

func TestGuardsTranslateAndSolve(t *testing.T) {
	x := NewExecutor()
	a := x.Fresh.Var(types.Int, "a")
	env := EmptyEnv().Extend("a", a)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("if a = 0 then 1 else 2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("want 2 paths, got %d", len(rs))
	}
	s := solver.New()
	var guards []solver.Formula
	tr := NewTranslator()
	for _, r := range rs {
		g, err := tr.Formula(r.State.Guard)
		if err != nil {
			t.Fatal(err)
		}
		sat, err := s.Sat(solver.NewAnd(g, tr.Sides()))
		if err != nil {
			t.Fatal(err)
		}
		if !sat {
			t.Fatalf("path guard %s should be feasible", r.State.Guard)
		}
		guards = append(guards, g)
	}
	taut, err := s.Tautology(guards...)
	if err != nil {
		t.Fatal(err)
	}
	if !taut {
		t.Fatal("the two forked guards must be exhaustive")
	}
}

func TestReadOverWriteTranslation(t *testing.T) {
	// !x after x := 2 must solve to 2.
	x := NewExecutor()
	rs, err := x.Run(EmptyEnv(), x.InitialState(),
		lang.MustParse("let x = ref 1 in let _ = x := 2 in !x"))
	if err != nil {
		t.Fatal(err)
	}
	ok := successes(rs)
	tr := NewTranslator()
	term, err := tr.Term(ok[0].Val)
	if err != nil {
		t.Fatal(err)
	}
	s := solver.New()
	valid, err := s.Valid(solver.Implies(tr.Sides(), solver.Eq{X: term, Y: solver.IntConst{Val: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Fatalf("read after write should equal 2; term %s", term)
	}
}

func TestAllocDistinctness(t *testing.T) {
	// Two allocations are distinct: writing to y must not clobber x.
	x := NewExecutor()
	src := "let x = ref 1 in let y = ref 5 in let _ = y := 9 in !x"
	rs, err := x.Run(EmptyEnv(), x.InitialState(), lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	ok := successes(rs)
	tr := NewTranslator()
	term, err := tr.Term(ok[0].Val)
	if err != nil {
		t.Fatal(err)
	}
	s := solver.New()
	valid, err := s.Valid(solver.Implies(tr.Sides(), solver.Eq{X: term, Y: solver.IntConst{Val: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Fatalf("!x should still be 1, term %s", term)
	}
}

func TestMemOKUnit(t *testing.T) {
	f := NewFresh()
	mu := f.Memory()
	if err := MemOK(mu); err != nil {
		t.Fatalf("EMPTY-OK: %v", err)
	}
	p := f.Var(types.Ref(types.Int), "p")
	alloc := Alloc{Base: mu, Addr: p, V: IntVal(1)}
	if err := MemOK(alloc); err != nil {
		t.Fatalf("ALLOC-OK: %v", err)
	}
	bad := Update{Base: alloc, Addr: p, V: BoolVal(true)}
	if err := MemOK(bad); err == nil {
		t.Fatal("ARBITRARY-NOTOK: ill-typed write must fail")
	}
	fixed := Update{Base: bad, Addr: p, V: IntVal(7)}
	if err := MemOK(fixed); err != nil {
		t.Fatalf("OVERWRITE-OK: %v", err)
	}
	// An overwrite through a *different* address does not discharge.
	q := f.Var(types.Ref(types.Int), "q")
	notFixed := Update{Base: bad, Addr: q, V: IntVal(7)}
	if err := MemOK(notFixed); err == nil {
		t.Fatal("overwrite via different address must not discharge")
	}
}

func TestMemOKWithSolverEquality(t *testing.T) {
	// With a smarter address-equality oracle, an overwrite through a
	// different-but-equal spelling discharges the bad write.
	f := NewFresh()
	mu := f.Memory()
	p := f.Var(types.Ref(types.Int), "p")
	bad := Update{Base: mu, Addr: p, V: BoolVal(true)}
	fixed := Update{Base: bad, Addr: p, V: IntVal(7)}
	always := func(a, b Val) bool { return types.Equal(a.T, b.T) }
	if err := MemOKWith(fixed, always); err != nil {
		t.Fatalf("custom oracle: %v", err)
	}
}

func TestEnvShadowing(t *testing.T) {
	f := NewFresh()
	e := EmptyEnv().Extend("x", IntVal(1)).Extend("x", BoolVal(true))
	v, ok := e.Lookup("x")
	if !ok || !types.Equal(v.T, types.Bool) {
		t.Fatalf("got %v", v)
	}
	if n := len(e.Names()); n != 1 {
		t.Fatalf("Names() has %d entries, want 1", n)
	}
	_ = f
}
