package sym

import (
	"testing"

	"mix/internal/engine"
	"mix/internal/lang"
	"mix/internal/types"
)

// runMerged executes src with the given merge mode, with a and b bound
// to fresh symbolic booleans.
func runMerged(t *testing.T, src string, mode engine.MergeMode) (*Executor, []Result) {
	t.Helper()
	x := NewExecutor()
	x.MergeMode = mode
	env := EmptyEnv().
		Extend("a", x.Fresh.Var(types.Bool, "a")).
		Extend("b", x.Fresh.Var(types.Bool, "b"))
	rs, err := x.Run(env, x.InitialState(), lang.MustParse(src))
	if err != nil {
		t.Fatalf("Run(%q, merge=%s): %v", src, mode, err)
	}
	return x, rs
}

// TestJoinsMergesConditional: a forked conditional whose arms both
// survive rejoins into one guarded result — the SEIF-DEFER shape,
// reached from the forking rule instead of the deferring one.
func TestJoinsMergesConditional(t *testing.T) {
	xOff, off := runMerged(t, "if a then 1 else 2", engine.MergeOff)
	if len(off) != 2 || xOff.Stats.Merges != 0 {
		t.Fatalf("forked: %d paths, %d merges", len(off), xOff.Stats.Merges)
	}
	x, rs := runMerged(t, "if a then 1 else 2", engine.MergeJoins)
	if len(rs) != 1 {
		t.Fatalf("merged paths = %d, want 1", len(rs))
	}
	if x.Stats.Merges != 1 {
		t.Fatalf("merges = %d, want 1", x.Stats.Merges)
	}
	r := rs[0]
	if r.Err != nil {
		t.Fatalf("merged result errored: %v", r.Err)
	}
	if !types.Equal(r.Val.T, types.Int) {
		t.Fatalf("merged value type = %s, want int", r.Val.T)
	}
	if _, ok := r.Val.U.(CondOp); !ok {
		t.Fatalf("merged value = %s, want a guarded conditional", r.Val)
	}
	if _, ok := r.State.Guard.U.(CondOp); !ok {
		t.Fatalf("merged guard = %s, want the arms' disjunction", r.State.Guard)
	}
}

// TestJoinsNestedLadder: nested conditionals merge inside-out, so the
// 4-path tree comes back as one result with 3 joins.
func TestJoinsNestedLadder(t *testing.T) {
	src := "(if a then 1 else 2) + (if b then 10 else 20)"
	x, rs := runMerged(t, src, engine.MergeJoins)
	if len(rs) != 1 {
		t.Fatalf("merged paths = %d, want 1", len(rs))
	}
	if x.Stats.Merges != 2 {
		t.Fatalf("merges = %d, want one per conditional", x.Stats.Merges)
	}
	_, off := runMerged(t, src, engine.MergeOff)
	if len(off) != 4 {
		t.Fatalf("forked paths = %d, want 4", len(off))
	}
}

// TestJoinsPassesErrorsThrough: a path error in one arm is a finding
// tied to that path's guard; it must survive the merge unmerged while
// the ok results still join when the mode allows it.
func TestJoinsPassesErrorsThrough(t *testing.T) {
	// The then-arm errors dynamically; only one ok result per side is
	// required by joins mode, so nothing merges — the error and the
	// else result pass through as under forking.
	x, rs := runMerged(t, "if a then (1 + true) else 2", engine.MergeJoins)
	if len(pathErrors(rs)) != 1 || len(successes(rs)) != 1 {
		t.Fatalf("results = %v, want one error + one success", rs)
	}
	if x.Stats.Merges != 0 {
		t.Fatalf("merges = %d; a one-sided join must not merge", x.Stats.Merges)
	}
	// Both arms of the outer conditional survive (the error hides under
	// the inner conditional), so the outer join still merges and the
	// inner error passes through.
	src := "if a then (if b then (1 + true) else 2) else 3"
	x, rs = runMerged(t, src, engine.MergeJoins)
	if len(pathErrors(rs)) != 1 {
		t.Fatalf("results = %v, want the inner error passed through", rs)
	}
	if len(successes(rs)) != 1 || x.Stats.Merges != 1 {
		t.Fatalf("successes = %d, merges = %d; outer join must merge the surviving arms",
			len(successes(rs)), x.Stats.Merges)
	}
}

// TestJoinsDeclinesTypeMismatch: arms of different types cannot fold
// into one value; the merge declines and forking semantics remain.
func TestJoinsDeclinesTypeMismatch(t *testing.T) {
	x, rs := runMerged(t, "if a then 1 else true", engine.MergeOff)
	wantPaths := len(rs)
	x, rs = runMerged(t, "if a then 1 else true", engine.MergeJoins)
	if len(rs) != wantPaths {
		t.Fatalf("merged paths = %d, want %d (type-incompatible arms must not merge)", len(rs), wantPaths)
	}
	if x.Stats.Merges != 0 {
		t.Fatalf("merges = %d, want 0", x.Stats.Merges)
	}
}

// TestAggressiveSubsumesJoins: aggressive mode accepts every join the
// joins mode accepts (its shape test is weaker), so on a canonical
// nested ladder both fold to one result and aggressive never merges
// less. With merging active the inner conditionals collapse each arm
// to a single path before the outer join, so the one-per-arm joins
// shape is satisfied throughout.
func TestAggressiveSubsumesJoins(t *testing.T) {
	src := "if a then (if b then 1 else 2) + 0 else (if b then 3 else 4) + 0"
	xj, rsj := runMerged(t, src, engine.MergeJoins)
	if len(rsj) != 1 || xj.Stats.Merges != 3 {
		t.Fatalf("joins: paths = %d, merges = %d", len(rsj), xj.Stats.Merges)
	}
	xa, rsa := runMerged(t, src, engine.MergeAggressive)
	if len(rsa) != 1 {
		t.Fatalf("aggressive paths = %d, want 1", len(rsa))
	}
	if xa.Stats.Merges < xj.Stats.Merges {
		t.Fatalf("aggressive merges = %d < joins merges = %d", xa.Stats.Merges, xj.Stats.Merges)
	}
}

// TestMergedVerdictMatchesForked: the merged result set must give the
// same value under each guard as the forked paths — checked here on
// the concrete reads a downstream consumer would make.
func TestMergedVerdictMatchesForked(t *testing.T) {
	src := "let r = ref 0 in let _ = (if a then (r := 1) else (r := 2)) in !r"
	_, off := runMerged(t, src, engine.MergeOff)
	x, rs := runMerged(t, src, engine.MergeJoins)
	if len(successes(off)) != 2 || len(successes(rs)) != 1 {
		t.Fatalf("paths: forked %d, merged %d", len(successes(off)), len(successes(rs)))
	}
	if x.Stats.Merges != 1 {
		t.Fatalf("merges = %d, want 1 (memories folded under the guard)", x.Stats.Merges)
	}
	v := successes(rs)[0].Val
	if !types.Equal(v.T, types.Int) {
		t.Fatalf("merged deref type = %s, want int", v.T)
	}
}
