package sym

import (
	"fmt"

	"mix/internal/types"
)

// write is one logged memory write (for the U set of the ⊢ m ok U
// judgment).
type write struct {
	addr, v Val
}

// AddrEq decides whether two address expressions denote the same
// location for the purposes of OVERWRITE-OK. The default is syntactic
// equivalence (≡); the mix layer can substitute a solver-backed
// equality "given the current path condition" as the paper suggests.
type AddrEq func(a, b Val) bool

// MemOK implements ⊢ m ok: memory m is consistently typed — every
// pointer points to a value of its annotated type — with no
// potentially inconsistent writes left over.
func MemOK(m Mem) error { return MemOKWith(m, ValEqual) }

// MemOKWith is MemOK with a custom address-equality oracle.
func MemOKWith(m Mem, eq AddrEq) error {
	u, err := memOKU(m, eq)
	if err != nil {
		return err
	}
	if len(u) > 0 {
		w := u[0]
		return fmt.Errorf("inconsistently typed write %s → %s persists", w.addr, w.v)
	}
	return nil
}

// memOKU computes the smallest U such that ⊢ m ok U, processing the
// log base-first:
//
//	EMPTY-OK:         ⊢ μ ok ∅
//	ALLOC-OK:         allocations preserve U (they are well-typed by
//	                  construction; a malformed one is treated as an
//	                  arbitrary write)
//	OVERWRITE-OK:     a well-typed write to u1:τ ref discharges earlier
//	                  inconsistent writes to addresses ≡ u1:τ ref
//	ARBITRARY-NOTOK:  any other write joins U
func memOKU(m Mem, eq AddrEq) ([]write, error) {
	switch m := m.(type) {
	case MemVar:
		return nil, nil
	case Alloc:
		u, err := memOKU(m.Base, eq)
		if err != nil {
			return nil, err
		}
		if !writeWellTyped(m.Addr, m.V) {
			u = append(u, write{m.Addr, m.V})
		}
		return u, nil
	case Update:
		u, err := memOKU(m.Base, eq)
		if err != nil {
			return nil, err
		}
		if writeWellTyped(m.Addr, m.V) {
			kept := u[:0]
			for _, w := range u {
				if !eq(w.addr, m.Addr) {
					kept = append(kept, w)
				}
			}
			return kept, nil
		}
		return append(u, write{m.Addr, m.V}), nil
	case CondMem:
		// Conservative extension for deferred conditionals: both arms
		// must be consistent.
		u1, err := memOKU(m.M1, eq)
		if err != nil {
			return nil, err
		}
		u2, err := memOKU(m.M2, eq)
		if err != nil {
			return nil, err
		}
		return append(u1, u2...), nil
	case nil:
		return nil, fmt.Errorf("nil memory")
	}
	return nil, fmt.Errorf("unknown memory %T", m)
}

// writeWellTyped reports whether addr : τ ref and v : τ. Dynamically
// typed closure values (UnknownType) are compatible with cells created
// to hold closures: both sides being UnknownType means the cell stores
// some function, which is all the type system could know anyway.
func writeWellTyped(addr, v Val) bool {
	r, ok := addr.T.(types.RefType)
	if !ok {
		return false
	}
	if types.Equal(r.Elem, v.T) {
		return true
	}
	_, elemUnk := r.Elem.(types.UnknownType)
	_, vUnk := v.T.(types.UnknownType)
	return elemUnk && vUnk
}
