package sym

import (
	"mix/internal/engine"
	"mix/internal/lang"
	"mix/internal/types"
)

// This file implements veritesting-style join-point merging for the
// FORKING executor (DESIGN.md section 12). SEIF-DEFER already shows
// that a conditional can produce one merged result instead of two —
// the admissibility argument in the paper's Section 3.1 — but defers
// every conditional. Join-point merging keeps the forking rule and
// rejoins the two arms only after both have been executed: when each
// arm reaches the join with a type-compatible value, the pair folds
// into the SEIF-DEFER result shape (guarded CondOp value, CondMem
// memory, disjoined guard), so k sequential diamonds explore O(k)
// states instead of O(2^k) paths.

// mergeResults attempts to fold the two arms' results into one. Error
// results always pass through unmerged — they are per-path findings
// whose feasibility the mix layer checks individually. Returns false
// (fall back to plain forking, preserving fork-mode behavior exactly)
// when the arm shape does not fit the mode or the values cannot share
// a type.
func (x *Executor) mergeResults(s1 State, g1 Val, pos lang.Pos, thenRs, elseRs []Result) ([]Result, bool) {
	var pass []Result
	var thenOK, elseOK []Result
	for _, r := range thenRs {
		if r.Err != nil {
			pass = append(pass, r)
		} else {
			thenOK = append(thenOK, r)
		}
	}
	for _, r := range elseRs {
		if r.Err != nil {
			pass = append(pass, r)
		} else {
			elseOK = append(elseOK, r)
		}
	}
	switch x.MergeMode {
	case engine.MergeJoins:
		// The canonical diamond: exactly one live path per arm.
		if len(thenOK) != 1 || len(elseOK) != 1 {
			return nil, false
		}
	case engine.MergeAggressive:
		// Fold whatever reached the join, as long as both arms did.
		if len(thenOK) == 0 || len(elseOK) == 0 {
			return nil, false
		}
	default:
		return nil, false
	}
	oks := append(thenOK, elseOK...)
	for _, r := range oks[1:] {
		if !types.Equal(oks[0].Val.T, r.Val.T) && !(isFunTyped(oks[0].Val) && isFunTyped(r.Val)) {
			// Forking is what makes per-path types sound; arms of
			// different types stay separate paths.
			return nil, false
		}
	}

	var merged Result
	if len(oks) == 2 {
		// Two arms merge on the branch condition itself — the exact
		// SEIF-DEFER result shape, smaller than guard-chain folding.
		rt, re := oks[0], oks[1]
		merged = Result{
			State: State{
				Guard: Val{CondOp{g1, rt.State.Guard, re.State.Guard}, types.Bool},
				Mem:   condMem(g1, rt.State.Mem, re.State.Mem),
			},
			Val: condVal(g1, rt.Val, re.Val),
		}
	} else {
		// N-way fold (aggressive): chain each path's own guard. The
		// guard CondOp{g, g, acc} reads "g, or else acc" — the
		// disjunction of the folded paths' guards.
		last := oks[len(oks)-1]
		acc := Result{State: State{Guard: last.State.Guard, Mem: last.State.Mem}, Val: last.Val}
		for i := len(oks) - 2; i >= 0; i-- {
			gi := oks[i].State.Guard
			acc = Result{
				State: State{
					Guard: Val{CondOp{gi, gi, acc.State.Guard}, types.Bool},
					Mem:   condMem(gi, oks[i].State.Mem, acc.State.Mem),
				},
				Val: condVal(gi, oks[i].Val, acc.Val),
			}
		}
		merged = acc
	}
	// The merged continuation proceeds on the parent span at the parent
	// fork depth: the join undoes the fork. Shard-prefix progress is
	// the fork state's — merging only happens below the prefix
	// frontier, where both arms share it.
	merged.State.depth = s1.depth
	merged.State.span = s1.span
	merged.State.prefixOn = s1.prefixOn
	merged.State.prefixPos = s1.prefixPos

	x.statsMu.Lock()
	x.Stats.Merges++
	x.statsMu.Unlock()
	// The sym executor merges whole states, not cells: n counts the
	// diverging components folded under a guard (value, memory), n2 the
	// components the arms agreed on.
	div, eq := int64(0), int64(0)
	if _, isCond := merged.Val.U.(CondOp); isCond {
		div++
	} else {
		eq++
	}
	if _, isCond := merged.State.Mem.(CondMem); isCond {
		div++
	} else {
		eq++
	}
	s1.span.Merge(pos.String(), div, eq)
	return append(pass, merged), true
}

// condVal builds g ? x : y, collapsing arms the paths agree on.
func condVal(g, x, y Val) Val {
	if ValEqual(x, y) {
		return x
	}
	return Val{CondOp{g, x, y}, x.T}
}
