package sym

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/lang"
	"mix/internal/obs"
	"mix/internal/types"
)

// IfMode selects how conditionals are executed, the "deferral versus
// execution" design choice of Section 3.1.
type IfMode int

const (
	// ForkIf forks execution at conditionals (SEIF-TRUE / SEIF-FALSE),
	// the style of DART, CUTE, EXE, and KLEE.
	ForkIf IfMode = iota
	// DeferIf builds conditional symbolic expressions (SEIF-DEFER),
	// trading forking for larger solver formulas.
	DeferIf
)

// PathError is a run-time type error discovered along one symbolic
// path. It is only a real error if its path condition is feasible; the
// caller (the TSYMBLOCK mix rule) checks feasibility with the solver
// and discards infeasible paths.
type PathError struct {
	Pos   lang.Pos
	Msg   string
	State State
}

func (e *PathError) Error() string {
	return fmt.Sprintf("%s: symbolic execution error: %s [under %s]", e.Pos, e.Msg, e.State.Guard)
}

// Result is the outcome of one symbolic path: either a value in a
// final state, or a path-conditioned error.
type Result struct {
	State State
	Val   Val
	Err   *PathError
	// Pruned marks a result that stands in for paths another shard
	// explores (DESIGN.md section 15). Its guard covers the pruned
	// subtree and must count toward the exhaustiveness disjunction; a
	// nonzero Val (a ghost of a leaf whose canonical copy lives in
	// another shard) additionally counts toward path type agreement.
	// Pruned results carry no findings and skip the memory check — the
	// owning shard performs both.
	Pruned bool
}

// Stats counts executor work for the fork-vs-defer benchmarks.
type Stats struct {
	Paths  int // completed paths (results produced)
	Forks  int // conditional forks taken
	Merges int // SEIF-DEFER and join-point merges performed
}

// Executor is the symbolic execution engine. The zero value is not
// ready; construct with NewExecutor.
type Executor struct {
	Fresh *Fresh
	Mode  IfMode
	// ConcreteFold enables execution-style rules on concrete operands
	// (the SEPLUS-CONC partial-evaluation variant from Section 3.1).
	ConcreteFold bool
	// Concolic enables the nondeterministic SEVAR variant of
	// Section 3.1: a variable bound to a symbolic value "may instead
	// return an arbitrary value v and add Σ(x) = v to the path
	// condition, a style that resembles hybrid concolic testing".
	// Execution then follows a single mostly-concrete path, so the
	// exhaustive() check of TSYMBLOCK fails unless paired with the
	// unsound "good enough" mode — exactly the paper's framing of
	// bug-finding symbolic execution.
	Concolic bool
	// ConcolicInt is the concrete integer SEVAR picks (booleans pick
	// true).
	ConcolicInt int64
	// MergeMode enables veritesting-style state merging in ForkIf mode
	// (DESIGN.md section 12): when both arms of a fork complete with
	// type-compatible values, their results fold back into one guarded
	// state in the SEIF-DEFER shape instead of continuing as separate
	// paths. The zero value is off. DeferIf mode ignores it (deferral
	// already merges at every conditional).
	MergeMode engine.MergeMode
	// MaxPaths bounds the number of symbolic paths per Run.
	MaxPaths int
	// MaxSteps bounds evaluation steps per Run; closures stored in
	// references can tie Landin's knot, so execution needs fuel.
	MaxSteps int
	steps    atomic.Int64
	// Engine, when non-nil, runs the two branches of each conditional
	// fork as parallel scheduler tasks (joined in branch order, so
	// results keep the sequential depth-first order) and enforces the
	// engine's path and depth budgets. A nil Engine gives the original
	// sequential executor.
	Engine *engine.Engine
	// TypBlock, when non-nil, analyzes {t e t} blocks; this is the
	// seam where the SETYPBLOCK mix rule plugs in. A nil TypBlock
	// rejects typed blocks, giving the standalone executor.
	TypBlock func(env *Env, st State, e lang.Expr) (Result, error)
	// MemCheck implements the ⊢ m ok premise of SEDEREF. When nil, the
	// syntactic MemOK is used; the mix layer may install a
	// solver-backed variant that decides address equality under the
	// current path condition.
	MemCheck func(st State) error
	// Prefix, when non-empty, restricts every top-level Run to the
	// subtree selected by forcing its first len(Prefix) symbolic fork
	// decisions (false takes the then arm, true the else arm). Each
	// forced fork emits a Pruned complement result whose guard stands
	// in for the entire unexplored sibling subtree, and leaves that
	// complete before consuming every bit are canonicalized by
	// dedupPrefix, so the work items of a sharded exploration partition
	// the full path tree exactly (DESIGN.md section 15). Nested Runs —
	// symbolic blocks reached through typed blocks during an outer Run
	// — explore fully: their whole tree belongs to the shard owning the
	// enclosing path. Only meaningful in ForkIf mode.
	Prefix []bool
	// running counts active Run invocations; it distinguishes the
	// top-level Runs that consume Prefix from nested ones.
	running atomic.Int32

	// stopped flips when a classified fault truncates exploration; the
	// remaining work unwinds promptly (run returns empty result sets,
	// not errors) so completed sibling paths keep their results.
	stopped atomic.Bool
	// imprecise counts degradation events absorbed during the current
	// Run; the mix layer treats any increase as "this block's result
	// set may be incomplete" and falls back to the typed
	// over-approximation instead of trusting partial path coverage.
	imprecise atomic.Int64

	// degradedMu guards degraded, the first absorbed fault of the Run.
	degradedMu sync.Mutex
	degraded   error

	// statsMu guards Stats when branches execute in parallel.
	statsMu sync.Mutex
	Stats   Stats
}

// NewExecutor returns an executor with default settings: forking
// conditionals, concrete folding on, and a fresh-name generator.
func NewExecutor() *Executor {
	return &Executor{Fresh: NewFresh(), ConcreteFold: true, MaxPaths: 1 << 14, MaxSteps: 1 << 20}
}

// memCheck applies the configured ⊢ m ok oracle.
func (x *Executor) memCheck(st State) error {
	if x.MemCheck != nil {
		return x.MemCheck(st)
	}
	return MemOK(st.Mem)
}

// InitialState returns the entry state of the TSYMBLOCK rule:
// S = ⟨true; μ⟩ with μ a fresh arbitrary memory.
func (x *Executor) InitialState() State {
	return State{Guard: TrueVal, Mem: x.Fresh.Memory()}
}

// Run symbolically executes e under Σ = env starting from state st and
// returns the results of every explored path. Paths whose guard
// constant-folds to false are discarded (they are trivially
// infeasible). A non-nil error indicates the program is outside the
// language (unbound variable, unsupported block) — not a type error,
// which is reported per-path, and not a resource exhaustion: budget,
// deadline, and panic aborts degrade instead, truncating the result
// set and recording the fault (see Degraded/ImprecisionCount), so the
// caller can fall back to the typed over-approximation.
func (x *Executor) Run(env *Env, st State, e lang.Expr) ([]Result, error) {
	if st.span == nil {
		// Each Run is one trace root; callers invoke Run in program
		// order, so root IDs are deterministic.
		st.span = x.Engine.Tracer().Root("sym.run")
	}
	topLevel := x.running.Add(1) == 1
	defer x.running.Add(-1)
	if topLevel && len(x.Prefix) > 0 {
		st.prefixOn = true
	}
	x.steps.Store(int64(x.MaxSteps))
	x.stopped.Store(false)
	x.degradedMu.Lock()
	x.degraded = nil
	x.degradedMu.Unlock()
	rs, err := x.protectedRun(env, st, e)
	if err != nil {
		return nil, err
	}
	if st.prefixOn {
		rs = x.dedupPrefix(rs)
	}
	kept := rs[:0]
	live := 0
	for _, r := range rs {
		if b, ok := r.State.Guard.U.(BoolConst); ok && !b.Val {
			continue
		}
		kept = append(kept, r)
		if !r.Pruned {
			live++
		}
	}
	x.statsMu.Lock()
	x.Stats.Paths += live
	x.statsMu.Unlock()
	x.Engine.AddPaths(live)
	return kept, nil
}

// RunActive reports whether a Run is in flight on this executor; the
// mix layer uses it to tell top-level symbolic blocks (which consume
// the shard Prefix) from nested ones reached during an outer Run.
func (x *Executor) RunActive() bool { return x.running.Load() > 0 }

// dedupPrefix canonicalizes the results of a prefix-restricted Run
// whose paths completed before consuming every prefix bit. Such a
// leaf is reached identically by every work item whose prefix agrees
// on the bits the path did consume, so exactly one item of that group
// — the one whose remaining bits are all false, the depth-first-first
// — keeps it as a real result. In every other item it becomes a
// ghost: a Pruned result contributing its guard to exhaustiveness and
// its value's type to path agreement, but no findings; a ghost error
// leaf is dropped outright (its canonical item reports it).
func (x *Executor) dedupPrefix(rs []Result) []Result {
	out := rs[:0]
	for _, r := range rs {
		if r.Pruned || !r.State.prefixOn || r.State.prefixPos >= len(x.Prefix) {
			out = append(out, r)
			continue
		}
		canonical := true
		for _, bit := range x.Prefix[r.State.prefixPos:] {
			if bit {
				canonical = false
				break
			}
		}
		if canonical {
			out = append(out, r)
			continue
		}
		if r.Err != nil {
			continue
		}
		r.Pruned = true
		out = append(out, r)
	}
	return out
}

// protectedRun is the Run root with a panic boundary: a panic anywhere
// on the root path (stolen branches have their own boundary inside the
// engine) becomes a worker-panic degradation, not a crash.
func (x *Executor) protectedRun(env *Env, st State, e lang.Expr) (rs []Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			x.degrade(st.span, fault.FromPanic("sym.run", r))
			rs, err = nil, nil
		}
	}()
	return x.run(env, st, e)
}

// degrade absorbs a classified fault: record it, count the
// imprecision, trace the provenance on the path that hit it, and stop
// further exploration so the run drains promptly. Results completed
// before the stop remain valid (each is a genuine explored path); the
// imprecision count tells the caller the set may be incomplete.
func (x *Executor) degrade(sp *obs.Span, err error) {
	x.degradedMu.Lock()
	if x.degraded == nil {
		x.degraded = err
	}
	x.degradedMu.Unlock()
	x.imprecise.Add(1)
	sp.Degrade(fault.ClassOf(err).String(), "exploration truncated")
	x.Engine.Faults().RecordErr(err)
	x.stopped.Store(true)
}

// Degraded returns the first classified fault absorbed by the current
// Run, or nil when exploration was exhaustive.
func (x *Executor) Degraded() error {
	x.degradedMu.Lock()
	defer x.degradedMu.Unlock()
	return x.degraded
}

// ImprecisionCount reports the cumulative number of degradation events
// absorbed by this executor; callers snapshot it around a Run to
// detect truncation.
func (x *Executor) ImprecisionCount() int64 { return x.imprecise.Load() }

// errResult builds a single-element error result list.
func errResult(st State, pos lang.Pos, format string, args ...any) []Result {
	return []Result{{State: st, Err: &PathError{Pos: pos, Msg: fmt.Sprintf(format, args...), State: st}}}
}

// seq runs e and applies k to every successful result, propagating
// error results unchanged.
func (x *Executor) seq(env *Env, st State, e lang.Expr, k func(State, Val) ([]Result, error)) ([]Result, error) {
	rs, err := x.run(env, st, e)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, r := range rs {
		if r.Err != nil || r.Pruned {
			// A pruned result's guard already summarizes every leaf of
			// the sibling subtree it stands in for — including whatever
			// the continuation would have computed, which the work item
			// owning that subtree explores instead. Running k on its
			// placeholder value would be wrong twice over: garbage data
			// and double-counted paths.
			out = append(out, r)
			continue
		}
		ks, err := k(r.State, r.Val)
		if err != nil {
			return nil, err
		}
		out = append(out, ks...)
		if x.MaxPaths > 0 && len(out) > x.MaxPaths {
			// Path-budget exhaustion degrades: truncate the result set
			// and record the imprecision (matching symexec), instead of
			// throwing away every path already explored.
			x.degrade(r.State.span, fault.New(fault.PathBudget, "sym.seq",
				fmt.Sprintf("max-paths=%d", x.MaxPaths), nil))
			return out[:x.MaxPaths], nil
		}
	}
	return out, nil
}

func one(st State, v Val) []Result { return []Result{{State: st, Val: v}} }

func (x *Executor) run(env *Env, st State, e lang.Expr) ([]Result, error) {
	if x.stopped.Load() {
		return nil, nil
	}
	if n := x.steps.Add(-1); n < 0 {
		// Step-budget exhaustion (possible divergence through stored
		// closures) degrades like the path budget: stop, record, keep
		// what completed.
		x.degrade(st.span, fault.New(fault.StepBudget, "sym.run",
			fmt.Sprintf("max-steps=%d", x.MaxSteps), nil))
		return nil, nil
	} else if n&63 == 0 {
		if err := x.Engine.Interrupted("sym.run"); err != nil {
			x.degrade(st.span, err)
			return nil, nil
		}
	}
	switch e := e.(type) {
	case lang.Var:
		// SEVAR: no reduction if the variable is unbound.
		v, ok := env.Lookup(e.Name)
		if !ok {
			return nil, fmt.Errorf("sym: %s: unbound variable %s", e.Pos(), e.Name)
		}
		if x.Concolic {
			if _, isSym := v.U.(SymVar); isSym {
				var conc Val
				switch {
				case types.Equal(v.T, types.Int):
					conc = IntVal(x.ConcolicInt)
				case types.Equal(v.T, types.Bool):
					conc = TrueVal
				}
				if !conc.IsZero() {
					st2 := st
					st2.Guard = MkAnd(st.Guard, Val{EqOp{v, conc}, types.Bool})
					return one(st2, conc), nil
				}
			}
		}
		return one(st, v), nil

	case lang.IntLit:
		// SEVAL with typeof(n) = int.
		return one(st, IntVal(e.Val)), nil

	case lang.BoolLit:
		return one(st, BoolVal(e.Val)), nil

	case lang.Plus:
		// SEPLUS: both operands must be symbolic integers.
		return x.seq(env, st, e.X, func(s1 State, v1 Val) ([]Result, error) {
			if !types.Equal(v1.T, types.Int) {
				return errResult(s1, e.X.Pos(), "left operand of + has type %s, want int", v1.T), nil
			}
			return x.seq(env, s1, e.Y, func(s2 State, v2 Val) ([]Result, error) {
				if !types.Equal(v2.T, types.Int) {
					return errResult(s2, e.Y.Pos(), "right operand of + has type %s, want int", v2.T), nil
				}
				if x.ConcreteFold {
					c1, ok1 := v1.U.(IntConst)
					c2, ok2 := v2.U.(IntConst)
					if ok1 && ok2 {
						// SEPLUS-CONC: execute on concrete values.
						return one(s2, IntVal(c1.Val+c2.Val)), nil
					}
				}
				return one(s2, Val{AddOp{v1, v2}, types.Int}), nil
			})
		})

	case lang.Eq:
		// SEEQ: operands must share a (comparable) type.
		return x.seq(env, st, e.X, func(s1 State, v1 Val) ([]Result, error) {
			return x.seq(env, s1, e.Y, func(s2 State, v2 Val) ([]Result, error) {
				if isFunTyped(v1) || isFunTyped(v2) {
					return errResult(s2, e.Pos(), "cannot compare functions with ="), nil
				}
				if !types.Equal(v1.T, v2.T) {
					return errResult(s2, e.Pos(), "operands of = have types %s and %s", v1.T, v2.T), nil
				}
				if x.ConcreteFold {
					if folded, ok := foldEq(v1, v2); ok {
						return one(s2, folded), nil
					}
				}
				return one(s2, Val{EqOp{v1, v2}, types.Bool}), nil
			})
		})

	case lang.Lt:
		// SELT: both operands must be symbolic integers.
		return x.seq(env, st, e.X, func(s1 State, v1 Val) ([]Result, error) {
			if !types.Equal(v1.T, types.Int) {
				return errResult(s1, e.X.Pos(), "left operand of < has type %s, want int", v1.T), nil
			}
			return x.seq(env, s1, e.Y, func(s2 State, v2 Val) ([]Result, error) {
				if !types.Equal(v2.T, types.Int) {
					return errResult(s2, e.Y.Pos(), "right operand of < has type %s, want int", v2.T), nil
				}
				if x.ConcreteFold {
					c1, ok1 := v1.U.(IntConst)
					c2, ok2 := v2.U.(IntConst)
					if ok1 && ok2 {
						return one(s2, BoolVal(c1.Val < c2.Val)), nil
					}
				}
				return one(s2, Val{LtOp{v1, v2}, types.Bool}), nil
			})
		})

	case lang.Not:
		// SENOT: the operand must be a guard.
		return x.seq(env, st, e.X, func(s1 State, v1 Val) ([]Result, error) {
			if !types.Equal(v1.T, types.Bool) {
				return errResult(s1, e.X.Pos(), "operand of not has type %s, want bool", v1.T), nil
			}
			if x.ConcreteFold {
				return one(s1, MkNot(v1)), nil
			}
			return one(s1, Val{NotOp{v1}, types.Bool}), nil
		})

	case lang.And:
		// SEAND.
		return x.seq(env, st, e.X, func(s1 State, v1 Val) ([]Result, error) {
			if !types.Equal(v1.T, types.Bool) {
				return errResult(s1, e.X.Pos(), "left operand of && has type %s, want bool", v1.T), nil
			}
			return x.seq(env, s1, e.Y, func(s2 State, v2 Val) ([]Result, error) {
				if !types.Equal(v2.T, types.Bool) {
					return errResult(s2, e.Y.Pos(), "right operand of && has type %s, want bool", v2.T), nil
				}
				if x.ConcreteFold {
					return one(s2, MkAnd(v1, v2)), nil
				}
				return one(s2, Val{AndOp{v1, v2}, types.Bool}), nil
			})
		})

	case lang.Let:
		// SELET.
		return x.seq(env, st, e.Bound, func(s1 State, v1 Val) ([]Result, error) {
			return x.run(env.Extend(e.Name, v1), s1, e.Body)
		})

	case lang.If:
		return x.runIf(env, st, e)

	case lang.Ref:
		// SEREF: allocate a fresh location.
		return x.seq(env, st, e.X, func(s1 State, v1 Val) ([]Result, error) {
			addr := x.Fresh.Var(types.Ref(v1.T), "loc")
			s2 := s1
			s2.Mem = Alloc{Base: s1.Mem, Addr: addr, V: v1}
			return one(s2, addr), nil
		})

	case lang.Deref:
		// SEDEREF: requires ⊢ m ok so the annotation on the pointer
		// soundly gives the type of the contents.
		return x.seq(env, st, e.X, func(s1 State, v1 Val) ([]Result, error) {
			r, ok := v1.T.(types.RefType)
			if !ok {
				return errResult(s1, e.X.Pos(), "dereference of non-reference type %s", v1.T), nil
			}
			if err := x.memCheck(s1); err != nil {
				return errResult(s1, e.Pos(), "memory not consistently typed at dereference: %v", err), nil
			}
			return one(s1, Val{MemRead{M: s1.Mem, Ptr: v1}, r.Elem}), nil
		})

	case lang.Assign:
		// SEASSIGN: the write is logged; the value's type need not
		// match the pointer's annotation (symbolic execution tracks
		// executions precisely and can allow arbitrary writes).
		return x.seq(env, st, e.X, func(s1 State, v1 Val) ([]Result, error) {
			if _, ok := v1.T.(types.RefType); !ok {
				return errResult(s1, e.X.Pos(), "assignment to non-reference type %s", v1.T), nil
			}
			return x.seq(env, s1, e.Y, func(s2 State, v2 Val) ([]Result, error) {
				s3 := s2
				s3.Mem = Update{Base: s2.Mem, Addr: v1, V: v2}
				return one(s3, v2), nil
			})
		})

	case lang.Fun:
		// Closures are dynamically typed values; the annotation, if
		// any, is not needed by the executor.
		return one(st, Val{CloV{Param: e.Param, Body: e.Body, Env: env}, types.UnknownType{}}), nil

	case lang.App:
		return x.seq(env, st, e.F, func(s1 State, fv Val) ([]Result, error) {
			return x.seq(env, s1, e.X, func(s2 State, av Val) ([]Result, error) {
				return x.apply(s2, fv, av, e.Pos())
			})
		})

	case lang.TypedBlock:
		if x.TypBlock == nil {
			return nil, fmt.Errorf("sym: %s: typed block not supported by standalone symbolic executor", e.Pos())
		}
		r, err := x.TypBlock(env, st, e.Body)
		if err != nil {
			if fault.Degradable(err) {
				// A degraded nested analysis truncates this path; the
				// surrounding exploration keeps its other paths.
				x.degrade(st.span, err)
				return nil, nil
			}
			return nil, err
		}
		return []Result{r}, nil

	case lang.SymBlock:
		// A symbolic block within symbolic execution passes through.
		return x.run(env, st, e.Body)
	}
	return nil, fmt.Errorf("sym: unknown expression %T", e)
}

// apply performs function application on a symbolic callee value:
// closures are inlined (this is where symbolic execution gets its
// context sensitivity), reads from memory are resolved syntactically
// against the write log, conditional values fork, and anything else —
// in particular a symbolic variable of function type, i.e. a function
// whose source is unavailable — is a path error, the situation the
// paper resolves by wrapping the call in a typed block.
func (x *Executor) apply(st State, fv, av Val, pos lang.Pos) ([]Result, error) {
	switch u := fv.U.(type) {
	case CloV:
		return x.run(u.Env.Extend(u.Param, av), st, u.Body)
	case MemRead:
		if resolved, ok := resolveRead(u.M, u.Ptr); ok {
			return x.apply(st, resolved, av, pos)
		}
	case CondOp:
		thenSt := st
		thenSt.Guard = MkAnd(st.Guard, u.G)
		elseSt := st
		elseSt.Guard = MkAnd(st.Guard, MkNot(u.G))
		thenRs, err := x.apply(thenSt, u.X, av, pos)
		if err != nil {
			return nil, err
		}
		elseRs, err := x.apply(elseSt, u.Y, av, pos)
		if err != nil {
			return nil, err
		}
		return append(thenRs, elseRs...), nil
	}
	return errResult(st, pos,
		"application of unknown function value %s (wrap the call in a typed block)", fv), nil
}

// resolveRead resolves m[p] syntactically against the write log. It
// succeeds only when the matching entry is found after skipping
// entries whose addresses are *provably* distinct from p — which, with
// purely syntactic reasoning, means both are distinct allocation
// variables ("an allocation always creates a new location").
func resolveRead(m Mem, p Val) (Val, bool) {
	allocs := map[int]bool{}
	collectAllocIDs(m, allocs)
	distinct := func(a, b Val) bool {
		sa, oka := a.U.(SymVar)
		sb, okb := b.U.(SymVar)
		return oka && okb && sa.ID != sb.ID && allocs[sa.ID] && allocs[sb.ID]
	}
	for {
		switch mm := m.(type) {
		case Update:
			if ValEqual(mm.Addr, p) {
				return mm.V, true
			}
			if !distinct(mm.Addr, p) {
				return Val{}, false // cannot rule out aliasing
			}
			m = mm.Base
		case Alloc:
			if ValEqual(mm.Addr, p) {
				return mm.V, true
			}
			if !distinct(mm.Addr, p) {
				return Val{}, false
			}
			m = mm.Base
		default:
			return Val{}, false
		}
	}
}

func collectAllocIDs(m Mem, out map[int]bool) {
	switch m := m.(type) {
	case Alloc:
		if sv, ok := m.Addr.U.(SymVar); ok {
			out[sv.ID] = true
		}
		collectAllocIDs(m.Base, out)
	case Update:
		collectAllocIDs(m.Base, out)
	case CondMem:
		collectAllocIDs(m.M1, out)
		collectAllocIDs(m.M2, out)
	}
}

// isFunTyped reports whether a value is a function (closure or
// symbolic function variable).
func isFunTyped(v Val) bool {
	switch v.T.(type) {
	case types.FunType, types.UnknownType:
		return true
	}
	return false
}

// foldEq folds equality of two concrete values.
func foldEq(v1, v2 Val) (Val, bool) {
	if c1, ok := v1.U.(IntConst); ok {
		if c2, ok := v2.U.(IntConst); ok {
			return BoolVal(c1.Val == c2.Val), true
		}
	}
	if c1, ok := v1.U.(BoolConst); ok {
		if c2, ok := v2.U.(BoolConst); ok {
			return BoolVal(c1.Val == c2.Val), true
		}
	}
	return Val{}, false
}

// runIf handles conditionals in the configured mode.
func (x *Executor) runIf(env *Env, st State, e lang.If) ([]Result, error) {
	return x.seq(env, st, e.Cond, func(s1 State, g1 Val) ([]Result, error) {
		if !types.Equal(g1.T, types.Bool) {
			return errResult(s1, e.Cond.Pos(), "condition of if has type %s, want bool", g1.T), nil
		}
		// A concrete condition executes only the taken branch,
		// regardless of mode (partial evaluation).
		if b, ok := g1.U.(BoolConst); ok {
			if b.Val {
				return x.run(env, s1, e.Then)
			}
			return x.run(env, s1, e.Else)
		}
		switch x.Mode {
		case ForkIf:
			if s1.prefixOn && s1.prefixPos < len(x.Prefix) {
				return x.forceBranch(env, s1, g1, e)
			}
			// SEIF-TRUE and SEIF-FALSE: fork, extending the path
			// condition with the choice made. With an engine the two
			// branches run as parallel tasks; the ordered join keeps
			// then-results before else-results, reproducing the
			// sequential result order exactly.
			if err := x.Engine.Charge(s1.depth); err != nil {
				if fault.Degradable(err) {
					x.degrade(s1.span, err)
					return nil, nil
				}
				return nil, err
			}
			x.statsMu.Lock()
			x.Stats.Forks++
			x.statsMu.Unlock()
			thenSt := s1
			thenSt.Guard = MkAnd(s1.Guard, g1)
			thenSt.depth = s1.depth + 1
			elseSt := s1
			elseSt.Guard = MkAnd(s1.Guard, MkNot(g1))
			elseSt.depth = s1.depth + 1
			// Each branch owns a fresh child span: the two tasks may
			// run on different workers and must never share a span.
			s1.span.Fork(2)
			thenSt.span = s1.span.Child()
			elseSt.span = s1.span.Child()
			thenRs, elseRs, err := engine.Fork2(x.Engine,
				func() ([]Result, error) { return x.run(env, thenSt, e.Then) },
				func() ([]Result, error) { return x.run(env, elseSt, e.Else) })
			if err != nil {
				if fault.Degradable(err) {
					// A recovered branch panic (or other classified
					// fault) loses that branch; the sibling's results
					// survive, and the imprecision marks the hole.
					x.degrade(s1.span, err)
					return append(thenRs, elseRs...), nil
				}
				return nil, err
			}
			s1.span.Join()
			if x.MergeMode != engine.MergeOff {
				if merged, ok := x.mergeResults(s1, g1, e.Pos(), thenRs, elseRs); ok {
					return merged, nil
				}
			}
			return append(thenRs, elseRs...), nil

		case DeferIf:
			// SEIF-DEFER: execute both branches and merge with
			// conditional symbolic expressions, giving the solver the
			// disjunction instead of forking. The two branch executions
			// are still independent, so they parallelize the same way.
			thenSt := s1
			thenSt.Guard = MkAnd(s1.Guard, g1)
			elseSt := s1
			elseSt.Guard = MkAnd(s1.Guard, MkNot(g1))
			s1.span.Fork(2)
			thenSt.span = s1.span.Child()
			elseSt.span = s1.span.Child()
			thenRs, elseRs, err := engine.Fork2(x.Engine,
				func() ([]Result, error) { return x.run(env, thenSt, e.Then) },
				func() ([]Result, error) { return x.run(env, elseSt, e.Else) })
			if err != nil {
				if fault.Degradable(err) {
					x.degrade(s1.span, err)
				} else {
					return nil, err
				}
			} else {
				s1.span.Join()
			}
			var out []Result
			var thenOK, elseOK []Result
			for _, r := range thenRs {
				if r.Err != nil {
					out = append(out, r)
				} else {
					thenOK = append(thenOK, r)
				}
			}
			for _, r := range elseRs {
				if r.Err != nil {
					out = append(out, r)
				} else {
					elseOK = append(elseOK, r)
				}
			}
			for _, rt := range thenOK {
				for _, re := range elseOK {
					// SEIF-DEFER is more conservative than forking: it
					// requires both branches to produce the same type.
					// Two dynamically-typed closures merge at the
					// dynamic type.
					if !types.Equal(rt.Val.T, re.Val.T) && !(isFunTyped(rt.Val) && isFunTyped(re.Val)) {
						out = append(out, errResult(s1, e.Pos(),
							"branches of deferred if have types %s and %s", rt.Val.T, re.Val.T)...)
						continue
					}
					x.statsMu.Lock()
					x.Stats.Merges++
					x.statsMu.Unlock()
					merged := State{
						Guard:     Val{CondOp{g1, rt.State.Guard, re.State.Guard}, types.Bool},
						Mem:       condMem(g1, rt.State.Mem, re.State.Mem),
						prefixOn:  s1.prefixOn,
						prefixPos: s1.prefixPos,
					}
					out = append(out, Result{State: merged, Val: Val{CondOp{g1, rt.Val, re.Val}, rt.Val.T}})
				}
			}
			return out, nil
		}
		return nil, fmt.Errorf("sym: unknown if mode %d", x.Mode)
	})
}

// forceBranch takes the branch selected by the executor's shard
// prefix instead of forking: the chosen arm continues with one more
// prefix bit consumed, and the unexplored sibling is summarized by a
// Pruned result whose guard — the sibling subtree's root path
// condition — stands in for every one of its leaves in the caller's
// exhaustiveness disjunction. No fork is charged or counted: the fork
// belongs to the work-item boundary, not to this shard's exploration.
// It is traced, though, exactly as a real fork — same fork/child/join
// events at the same (path, pseq) — so every work item replays the
// shared fork spine identically and the coordinator's trace splice
// dedups the spine while the per-item subtrees land on the paths the
// unsharded run would have used. Results keep depth-first order (then
// before else) with the pruned sibling in its subtree's place.
func (x *Executor) forceBranch(env *Env, s1 State, g1 Val, e lang.If) ([]Result, error) {
	bit := x.Prefix[s1.prefixPos]
	taken := s1
	taken.prefixPos++
	taken.depth++
	pruned := Result{Pruned: true}
	pruned.State = s1
	pruned.State.depth++
	pruned.State.prefixPos = len(x.Prefix)
	// Both children are created — child numbering encodes the branch
	// (then = 0, else = 1) — but only the taken arm ever emits to its
	// span; the sibling's events come from the item that owns it.
	s1.span.Fork(2)
	thenSpan := s1.span.Child()
	elseSpan := s1.span.Child()
	var arm lang.Expr
	if !bit {
		taken.Guard = MkAnd(s1.Guard, g1)
		taken.span = thenSpan
		pruned.State.Guard = MkAnd(s1.Guard, MkNot(g1))
		arm = e.Then
	} else {
		taken.Guard = MkAnd(s1.Guard, MkNot(g1))
		taken.span = elseSpan
		pruned.State.Guard = MkAnd(s1.Guard, g1)
		arm = e.Else
	}
	rs, err := x.run(env, taken, arm)
	if err != nil {
		return nil, err
	}
	s1.span.Join()
	if !bit {
		return append(rs, pruned), nil
	}
	return append([]Result{pruned}, rs...), nil
}

// condMem builds g ? m1 : m2, collapsing the trivial case.
func condMem(g Val, m1, m2 Mem) Mem {
	if memEqual(m1, m2) {
		return m1
	}
	return CondMem{G: g, M1: m1, M2: m2}
}
