package sym

import (
	"strings"
	"testing"

	"mix/internal/lang"
	"mix/internal/solver"
	"mix/internal/types"
)

func TestTranslateErrors(t *testing.T) {
	tr := NewTranslator()
	// Zero values.
	if _, err := tr.Formula(Val{}); err == nil {
		t.Fatal("zero value must error")
	}
	if _, err := tr.Term(Val{}); err == nil {
		t.Fatal("zero value must error")
	}
	// Non-bool to Formula.
	if _, err := tr.Formula(IntVal(1)); err == nil {
		t.Fatal("int to Formula must error")
	}
	// Closures cannot be translated.
	clo := Val{CloV{Param: "x", Body: lang.I(1)}, types.UnknownType{}}
	if _, err := tr.Term(clo); err == nil {
		t.Fatal("closure to Term must error")
	}
}

func TestTranslateBooleanReads(t *testing.T) {
	// A bool stored through a ref and read back at bool type.
	x := NewExecutor()
	rs, err := x.Run(EmptyEnv(), x.InitialState(),
		lang.MustParse("let b = ref true in !b"))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator()
	f, err := tr.Formula(rs[0].Val)
	if err != nil {
		t.Fatal(err)
	}
	s := solver.New()
	valid, err := s.Valid(solver.Implies(tr.Sides(), f))
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Fatalf("!b should be provably true, got %s", f)
	}
}

func TestTranslateBaseMemoryBoolRead(t *testing.T) {
	// A bool read from the arbitrary base memory μ becomes a free
	// boolean variable: satisfiable either way.
	x := NewExecutor()
	p := x.Fresh.Var(types.Ref(types.Bool), "p")
	env := EmptyEnv().Extend("p", p)
	rs, err := x.Run(env, x.InitialState(), lang.MustParse("!p"))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator()
	f, err := tr.Formula(rs[0].Val)
	if err != nil {
		t.Fatal(err)
	}
	s := solver.New()
	sat1, _ := s.Sat(f)
	sat2, _ := s.Sat(solver.NewNot(f))
	if !sat1 || !sat2 {
		t.Fatalf("base-memory bool read must be unconstrained: %s", f)
	}
}

func TestTranslateCondMemRead(t *testing.T) {
	// Defer mode writes different values per branch; the merged memory
	// is conditional, and the read reflects both.
	x := NewExecutor()
	x.Mode = DeferIf
	b := x.Fresh.Var(types.Bool, "b")
	env := EmptyEnv().Extend("b", b)
	src := "let r = ref 0 in let _ = (if b then r := 1 else r := 2) in !r"
	rs, err := x.Run(env, x.InitialState(), lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	ok := successes(rs)
	if len(ok) != 1 {
		t.Fatalf("defer mode: got %v", rs)
	}
	tr := NewTranslator()
	term, err := tr.Term(ok[0].Val)
	if err != nil {
		t.Fatal(err)
	}
	s := solver.New()
	// The read is 1 or 2, never 0.
	zero, err := s.Sat(solver.Conj(tr.Sides(), solver.Eq{X: term, Y: solver.IntConst{Val: 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if zero {
		t.Fatal("!r can no longer be 0 after the write")
	}
	one, err := s.Sat(solver.Conj(tr.Sides(), solver.Eq{X: term, Y: solver.IntConst{Val: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	two, err := s.Sat(solver.Conj(tr.Sides(), solver.Eq{X: term, Y: solver.IntConst{Val: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if !one || !two {
		t.Fatalf("both 1 and 2 must be possible: one=%t two=%t", one, two)
	}
}

func TestMemOKCondMem(t *testing.T) {
	f := NewFresh()
	mu := f.Memory()
	p := f.Var(types.Ref(types.Int), "p")
	good := Update{Base: mu, Addr: p, V: IntVal(1)}
	bad := Update{Base: mu, Addr: p, V: BoolVal(true)}
	g := f.Var(types.Bool, "g")
	if err := MemOK(CondMem{G: g, M1: good, M2: good}); err != nil {
		t.Fatalf("both arms ok: %v", err)
	}
	if err := MemOK(CondMem{G: g, M1: good, M2: bad}); err == nil {
		t.Fatal("an inconsistent arm must fail")
	}
}

func TestValAndMemPrinting(t *testing.T) {
	f := NewFresh()
	p := f.Var(types.Ref(types.Int), "p")
	mu := f.Memory()
	m := Update{Base: Alloc{Base: mu, Addr: p, V: IntVal(1)}, Addr: p, V: IntVal(2)}
	s := m.String()
	for _, frag := range []string{"μ", "→a", "→", "α1<p>"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("memory print %q missing %q", s, frag)
		}
	}
	st := State{Guard: TrueVal, Mem: mu}
	if !strings.Contains(st.String(), "⟨") {
		t.Fatalf("state print %q", st.String())
	}
	read := Val{MemRead{M: mu, Ptr: p}, types.Int}
	if !strings.Contains(read.String(), "[") {
		t.Fatalf("read print %q", read.String())
	}
	if f.Count() < 2 {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestValEqualEdgeCases(t *testing.T) {
	f := NewFresh()
	a := f.Var(types.Int, "a")
	b := f.Var(types.Int, "b")
	if ValEqual(a, b) {
		t.Fatal("distinct symvars must differ")
	}
	if !ValEqual(a, a) {
		t.Fatal("reflexivity")
	}
	// Same ID with different annotations (cannot arise, but IDs rule).
	if !ValEqual(Val{SymVar{ID: 99}, types.Int}, Val{SymVar{ID: 99}, types.Ref(types.Int)}) {
		t.Fatal("symvar identity is by ID")
	}
	if ValEqual(IntVal(1), BoolVal(true)) {
		t.Fatal("different types must differ")
	}
	if !ValEqual(
		Val{AddOp{a, IntVal(1)}, types.Int},
		Val{AddOp{a, IntVal(1)}, types.Int}) {
		t.Fatal("structural equality on AddOp")
	}
	if !ValEqual(
		Val{NotOp{BoolVal(true)}, types.Bool},
		Val{NotOp{BoolVal(true)}, types.Bool}) {
		t.Fatal("structural equality on NotOp")
	}
}
