// Package sym implements the paper's formal symbolic executor
// (Figures 2 and 3): big-step execution over typed symbolic
// expressions u:τ, with McCarthy-style symbolic memories that log
// writes and allocations, a path condition per execution, forking (or
// optionally deferring) at conditionals, and the ⊢ m ok memory
// consistency judgment. Like the type checker, it is standalone: the
// SETYPBLOCK mix rule plugs in through the TypBlock hook.
package sym

import (
	"fmt"
	"sync"

	"mix/internal/lang"
	"mix/internal/obs"
	"mix/internal/persist"
	"mix/internal/types"
)

// Bare is a bare symbolic expression u.
type Bare interface {
	isBare()
	String() string
}

// SymVar is a symbolic variable α. Each variable has a unique ID from
// a Fresh generator; Name is a human-readable hint.
type SymVar struct {
	ID   int
	Name string
}

// IntConst is a known integer value.
type IntConst struct{ Val int64 }

// BoolConst is a known boolean value.
type BoolConst struct{ Val bool }

// AddOp is u:int + u:int.
type AddOp struct{ X, Y Val }

// EqOp is s = s (operands share a type).
type EqOp struct{ X, Y Val }

// LtOp is u:int < u:int.
type LtOp struct{ X, Y Val }

// CloV is a function closure: symbolic execution of fun x -> e is its
// value together with the captured environment. Closures are
// dynamically typed (their Val carries types.UnknownType), so they can
// be applied at multiple types — the context-sensitivity the paper
// gets from symbolic blocks.
type CloV struct {
	Param string
	Body  lang.Expr
	Env   *Env
}

// NotOp is ¬g.
type NotOp struct{ X Val }

// AndOp is g ∧ g.
type AndOp struct{ X, Y Val }

// CondOp is the conditional symbolic expression g ? X : Y introduced
// by the SEIF-DEFER rule.
type CondOp struct{ G, X, Y Val }

// MemRead is the memory select m[u:τ ref].
type MemRead struct {
	M   Mem
	Ptr Val
}

func (SymVar) isBare()    {}
func (IntConst) isBare()  {}
func (BoolConst) isBare() {}
func (AddOp) isBare()     {}
func (EqOp) isBare()      {}
func (LtOp) isBare()      {}
func (CloV) isBare()      {}
func (NotOp) isBare()     {}
func (AndOp) isBare()     {}
func (CondOp) isBare()    {}
func (MemRead) isBare()   {}

func (u SymVar) String() string {
	if u.Name != "" {
		return fmt.Sprintf("α%d<%s>", u.ID, u.Name)
	}
	return fmt.Sprintf("α%d", u.ID)
}
func (u IntConst) String() string { return fmt.Sprintf("%d", u.Val) }
func (u BoolConst) String() string {
	if u.Val {
		return "true"
	}
	return "false"
}
func (u AddOp) String() string { return "(" + u.X.String() + " + " + u.Y.String() + ")" }
func (u EqOp) String() string  { return "(" + u.X.String() + " = " + u.Y.String() + ")" }
func (u LtOp) String() string  { return "(" + u.X.String() + " < " + u.Y.String() + ")" }
func (u CloV) String() string  { return "<fun " + u.Param + ">" }
func (u NotOp) String() string { return "(¬" + u.X.String() + ")" }
func (u AndOp) String() string { return "(" + u.X.String() + " ∧ " + u.Y.String() + ")" }
func (u CondOp) String() string {
	return "(" + u.G.String() + " ? " + u.X.String() + " : " + u.Y.String() + ")"
}
func (u MemRead) String() string { return u.M.String() + "[" + u.Ptr.String() + "]" }

// Val is a typed symbolic expression s ::= u:τ.
type Val struct {
	U Bare
	T types.Type
}

func (v Val) String() string { return v.U.String() + ":" + v.T.String() }

// IsZero reports whether v is the zero Val (no expression).
func (v Val) IsZero() bool { return v.U == nil }

// Mem is a symbolic memory m.
type Mem interface {
	isMem()
	String() string
}

// MemVar is μ: an arbitrary but well-typed memory.
type MemVar struct{ ID int }

// Update is m,(s → s'): memory m with location Addr overwritten.
type Update struct {
	Base Mem
	Addr Val
	V    Val
}

// Alloc is m,(s a→ s'): memory m extended with a fresh allocation.
type Alloc struct {
	Base Mem
	Addr Val
	V    Val
}

// CondMem is the conditional memory g ? M1 : M2 needed when the
// SEIF-DEFER rule merges the two branch memories ("we also have to
// extend the ·?·: relation to operate over memory as well").
type CondMem struct {
	G      Val
	M1, M2 Mem
}

func (MemVar) isMem()  {}
func (Update) isMem()  {}
func (Alloc) isMem()   {}
func (CondMem) isMem() {}

func (m CondMem) String() string {
	return "(" + m.G.String() + " ? " + m.M1.String() + " : " + m.M2.String() + ")"
}

func (m MemVar) String() string { return fmt.Sprintf("μ%d", m.ID) }
func (m Update) String() string {
	return m.Base.String() + ",(" + m.Addr.String() + " → " + m.V.String() + ")"
}
func (m Alloc) String() string {
	return m.Base.String() + ",(" + m.Addr.String() + " →a " + m.V.String() + ")"
}

// State is the symbolic execution state S = ⟨g; m⟩: a path condition
// and a symbolic memory.
type State struct {
	Guard Val // bool-typed
	Mem   Mem
	// depth counts conditional forks taken along this path; the engine
	// charges it against the fork-depth budget.
	depth int
	// span is this path's node in the trace tree (nil when tracing is
	// off); fork sites hand each branch a child span.
	span *obs.Span
	// prefixOn marks states of a top-level Run restricted by the
	// executor's shard Prefix (DESIGN.md section 15); prefixPos counts
	// the fork decisions already forced along this path. Once prefixPos
	// reaches len(Prefix), the path explores freely.
	prefixOn  bool
	prefixPos int
}

func (s State) String() string {
	return "⟨" + s.Guard.String() + "; " + s.Mem.String() + "⟩"
}

// Env is a symbolic environment Σ mapping variables to typed symbolic
// expressions. Like types.Env it is persistent: Extend returns a new
// environment sharing all existing bindings. The frame chain preserves
// the innermost-first Names() order (and gives closures their identity
// for ≡), while the bindings live in a structurally shared hash map so
// Lookup costs O(1) expected instead of O(scope depth) — deep chains
// of let-bindings and closure captures no longer make every variable
// reference linear.
type Env struct {
	name   string
	val    Val
	parent *Env
	vals   persist.Map[string, Val]
}

// EmptyEnv is the empty symbolic environment.
func EmptyEnv() *Env { return nil }

// bindings returns the persistent binding map (empty for a nil Env).
func (e *Env) bindings() persist.Map[string, Val] {
	if e == nil {
		return persist.NewMap[string, Val](persist.HashString)
	}
	return e.vals
}

// Extend binds name to v, shadowing previous bindings.
func (e *Env) Extend(name string, v Val) *Env {
	return &Env{name: name, val: v, parent: e, vals: e.bindings().Set(name, v)}
}

// Lookup finds the value bound to name.
func (e *Env) Lookup(name string) (Val, bool) {
	if e == nil {
		return Val{}, false
	}
	return e.vals.Get(name)
}

// Names returns the domain, innermost first, without shadowed
// duplicates.
func (e *Env) Names() []string {
	seen := map[string]bool{}
	var out []string
	for s := e; s != nil; s = s.parent {
		if !seen[s.name] {
			seen[s.name] = true
			out = append(out, s.name)
		}
	}
	return out
}

// Fresh generates fresh symbolic variable and memory IDs; a single
// generator is shared across an entire mixed analysis so that
// freshness conditions (α ∉ Σ, S) hold globally.
type Fresh struct {
	mu sync.Mutex
	n  int
}

// NewFresh returns a fresh-name generator.
func NewFresh() *Fresh { return &Fresh{} }

// Var returns a fresh symbolic variable of type t.
func (f *Fresh) Var(t types.Type, hint string) Val {
	f.mu.Lock()
	f.n++
	n := f.n
	f.mu.Unlock()
	return Val{SymVar{ID: n, Name: hint}, t}
}

// Memory returns a fresh arbitrary memory μ.
func (f *Fresh) Memory() Mem {
	f.mu.Lock()
	f.n++
	n := f.n
	f.mu.Unlock()
	return MemVar{ID: n}
}

// Count reports how many fresh names have been drawn (used in tests).
func (f *Fresh) Count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// TrueVal and FalseVal are the boolean constants as typed values.
var (
	TrueVal  = Val{BoolConst{true}, types.Bool}
	FalseVal = Val{BoolConst{false}, types.Bool}
)

// IntVal builds a typed integer constant.
func IntVal(v int64) Val { return Val{IntConst{v}, types.Int} }

// BoolVal builds a typed boolean constant.
func BoolVal(v bool) Val { return Val{BoolConst{v}, types.Bool} }

// MkAnd conjoins two guards with constant folding.
func MkAnd(x, y Val) Val {
	if b, ok := x.U.(BoolConst); ok {
		if b.Val {
			return y
		}
		return FalseVal
	}
	if b, ok := y.U.(BoolConst); ok {
		if b.Val {
			return x
		}
		return FalseVal
	}
	return Val{AndOp{x, y}, types.Bool}
}

// MkNot negates a guard with constant folding.
func MkNot(x Val) Val {
	switch u := x.U.(type) {
	case BoolConst:
		return BoolVal(!u.Val)
	case NotOp:
		return u.X
	}
	return Val{NotOp{x}, types.Bool}
}

// ValEqual reports syntactic equivalence (≡) of two typed symbolic
// expressions, used by the OVERWRITE-OK rule of the ⊢ m ok judgment.
// Symbolic variables compare by their globally-unique IDs (their type
// annotations may be UnknownType, which Equal treats as incomparable).
func ValEqual(a, b Val) bool {
	if sa, ok := a.U.(SymVar); ok {
		sb, ok := b.U.(SymVar)
		return ok && sa.ID == sb.ID
	}
	if !types.Equal(a.T, b.T) {
		if _, ua := a.T.(types.UnknownType); ua {
			if _, ub := b.T.(types.UnknownType); ub {
				return bareEqual(a.U, b.U)
			}
		}
		return false
	}
	return bareEqual(a.U, b.U)
}

func bareEqual(a, b Bare) bool {
	switch a := a.(type) {
	case SymVar:
		bb, ok := b.(SymVar)
		return ok && a.ID == bb.ID
	case IntConst:
		bb, ok := b.(IntConst)
		return ok && a.Val == bb.Val
	case BoolConst:
		bb, ok := b.(BoolConst)
		return ok && a.Val == bb.Val
	case AddOp:
		bb, ok := b.(AddOp)
		return ok && ValEqual(a.X, bb.X) && ValEqual(a.Y, bb.Y)
	case EqOp:
		bb, ok := b.(EqOp)
		return ok && ValEqual(a.X, bb.X) && ValEqual(a.Y, bb.Y)
	case LtOp:
		bb, ok := b.(LtOp)
		return ok && ValEqual(a.X, bb.X) && ValEqual(a.Y, bb.Y)
	case CloV:
		bb, ok := b.(CloV)
		return ok && a.Param == bb.Param && a.Body == bb.Body && a.Env == bb.Env
	case NotOp:
		bb, ok := b.(NotOp)
		return ok && ValEqual(a.X, bb.X)
	case AndOp:
		bb, ok := b.(AndOp)
		return ok && ValEqual(a.X, bb.X) && ValEqual(a.Y, bb.Y)
	case CondOp:
		bb, ok := b.(CondOp)
		return ok && ValEqual(a.G, bb.G) && ValEqual(a.X, bb.X) && ValEqual(a.Y, bb.Y)
	case MemRead:
		bb, ok := b.(MemRead)
		return ok && memEqual(a.M, bb.M) && ValEqual(a.Ptr, bb.Ptr)
	}
	return false
}

func memEqual(a, b Mem) bool {
	switch a := a.(type) {
	case MemVar:
		bb, ok := b.(MemVar)
		return ok && a.ID == bb.ID
	case Update:
		bb, ok := b.(Update)
		return ok && memEqual(a.Base, bb.Base) && ValEqual(a.Addr, bb.Addr) && ValEqual(a.V, bb.V)
	case Alloc:
		bb, ok := b.(Alloc)
		return ok && memEqual(a.Base, bb.Base) && ValEqual(a.Addr, bb.Addr) && ValEqual(a.V, bb.V)
	case CondMem:
		bb, ok := b.(CondMem)
		return ok && ValEqual(a.G, bb.G) && memEqual(a.M1, bb.M1) && memEqual(a.M2, bb.M2)
	}
	return false
}
