package types

import (
	"strings"
	"testing"

	"mix/internal/lang"
)

func check(t *testing.T, src string) (Type, error) {
	t.Helper()
	e, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	var c Checker
	return c.Check(EmptyEnv(), e)
}

func wantType(t *testing.T, src string, want Type) {
	t.Helper()
	got, err := check(t, src)
	if err != nil {
		t.Fatalf("Check(%q): %v", src, err)
	}
	if !Equal(got, want) {
		t.Fatalf("Check(%q) = %s, want %s", src, got, want)
	}
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("Check(%q) succeeded, want error containing %q", src, fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("Check(%q) error %q, want fragment %q", src, err, fragment)
	}
}

func TestWellTyped(t *testing.T) {
	wantType(t, "1", Int)
	wantType(t, "true", Bool)
	wantType(t, "1 + 2", Int)
	wantType(t, "1 = 2", Bool)
	wantType(t, "true = false", Bool)
	wantType(t, "not true", Bool)
	wantType(t, "true && false", Bool)
	wantType(t, "if true then 1 else 2", Int)
	wantType(t, "let x = 3 in x + x", Int)
	wantType(t, "ref 5", Ref(Int))
	wantType(t, "ref ref true", Ref(Ref(Bool)))
	wantType(t, "!(ref 5)", Int)
	wantType(t, "let x = ref 1 in x := 2", Int)
	wantType(t, "let x = ref 1 in let _ = x := 2 in !x", Int)
	wantType(t, "{t 1 + 2 t}", Int)
	wantType(t, "let x = 1 in let x = true in x", Bool) // shadowing
}

func TestIllTyped(t *testing.T) {
	wantError(t, "x", "unbound variable x")
	wantError(t, "1 + true", "right operand of +")
	wantError(t, "true + 1", "left operand of +")
	wantError(t, "1 = true", "operands of =")
	wantError(t, "not 1", "operand of not")
	wantError(t, "1 && true", "left operand of &&")
	wantError(t, "if 1 then 2 else 3", "condition of if")
	wantError(t, "if true then 1 else false", "branches of if")
	wantError(t, "!5", "dereference of non-reference")
	wantError(t, "1 := 2", "assignment to non-reference")
	wantError(t, "let x = ref 1 in x := true", "assigning bool to int reference")
	wantError(t, "(ref 1) = (ref true)", "operands of =")
	// Reference equality between same-typed refs is allowed.
	wantType(t, "(ref 1) = (ref 2)", Bool)
}

func TestSymBlockWithoutHook(t *testing.T) {
	wantError(t, "{s 1 s}", "symbolic block not supported")
}

func TestSymBlockHookReceivesEnv(t *testing.T) {
	e := lang.MustParse("let x = 1 in {s x s}")
	c := Checker{
		SymBlock: func(env *Env, body lang.Expr) (Type, error) {
			got, ok := env.Lookup("x")
			if !ok || !Equal(got, Int) {
				t.Fatalf("hook env missing x:int")
			}
			return Bool, nil
		},
	}
	ty, err := c.Check(EmptyEnv(), e)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ty, Bool) {
		t.Fatalf("block type = %s, want hook's bool", ty)
	}
}

func TestEnvNames(t *testing.T) {
	g := EmptyEnv().Extend("a", Int).Extend("b", Bool).Extend("a", Ref(Int))
	names := g.Names()
	if len(names) != 2 {
		t.Fatalf("Names() = %v, want 2 entries", names)
	}
	got, _ := g.Lookup("a")
	if !Equal(got, Ref(Int)) {
		t.Fatalf("shadowed lookup: got %s", got)
	}
}

func TestTypeStrings(t *testing.T) {
	if got := Ref(Ref(Int)).String(); got != "int ref ref" {
		t.Fatalf("got %q", got)
	}
	if got := Ref(Bool).String(); got != "bool ref" {
		t.Fatalf("got %q", got)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Ref(Int), Ref(Int)) || Equal(Ref(Int), Ref(Bool)) || Equal(Int, Bool) {
		t.Fatal("Equal misbehaves")
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := check(t, "let x = 1 in\n!x")
	if err == nil {
		t.Fatal("expected error")
	}
	te, ok := err.(*Error)
	if !ok {
		t.Fatalf("got %T", err)
	}
	if te.Pos.Line != 2 {
		t.Fatalf("error line = %d, want 2", te.Pos.Line)
	}
}
