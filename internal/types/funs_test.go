package types

import (
	"testing"

	"mix/internal/lang"
)

func TestFunctionTyping(t *testing.T) {
	wantType(t, "fun x : int -> x + 1", Fun(Int, Int))
	wantType(t, "(fun x : int -> x + 1) 3", Int)
	wantType(t, "fun x : int -> fun y : int -> x + y", Fun(Int, Fun(Int, Int)))
	wantType(t, "(fun x : int -> fun y : int -> x + y) 1 2", Int)
	wantType(t, "fun b : bool -> not b", Fun(Bool, Bool))
	wantType(t, "fun r : int ref -> !r", Fun(Ref(Int), Int))
	wantType(t, "let f = fun x : int -> x in f (f 1)", Int)
	wantType(t, "fun g : (int -> bool) -> g 0", Fun(Fun(Int, Bool), Bool))
}

func TestFunctionTypeErrors(t *testing.T) {
	wantError(t, "fun x -> x", "needs a type annotation")
	wantError(t, "1 2", "application of non-function")
	wantError(t, "(fun x : int -> x) true", "argument has type bool")
	wantError(t, "(fun x : int -> x) = (fun x : int -> x)", "cannot compare functions")
	wantError(t, "(fun x : int -> x) + 1", "left operand of +")
}

func TestLtTyping(t *testing.T) {
	wantType(t, "1 < 2", Bool)
	wantError(t, "true < 1", "left operand of <")
	wantError(t, "1 < true", "right operand of <")
}

// The x-using case needs an env, so test it directly.
func TestLtWithEnv(t *testing.T) {
	e := lang.MustParse("if x < 0 then 1 else 2")
	var c Checker
	ty, err := c.Check(EmptyEnv().Extend("x", Int), e)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ty, Int) {
		t.Fatalf("got %s", ty)
	}
}

func TestFromExpr(t *testing.T) {
	cases := []struct {
		src  string
		want Type
	}{
		{"int", Int},
		{"bool", Bool},
		{"int ref", Ref(Int)},
		{"int ref ref", Ref(Ref(Int))},
		{"int -> bool", Fun(Int, Bool)},
		{"int -> bool -> int", Fun(Int, Fun(Bool, Int))},
		{"(int -> bool) -> int", Fun(Fun(Int, Bool), Int)},
		{"(int -> bool) ref", Ref(Fun(Int, Bool))},
	}
	for _, c := range cases {
		te, err := lang.ParseType(c.src)
		if err != nil {
			t.Errorf("ParseType(%q): %v", c.src, err)
			continue
		}
		got, err := FromExpr(te)
		if err != nil {
			t.Errorf("FromExpr(%q): %v", c.src, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("FromExpr(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestUnknownTypeIsIncomparable(t *testing.T) {
	if Equal(UnknownType{}, UnknownType{}) {
		t.Fatal("UnknownType must not equal itself")
	}
	if Equal(UnknownType{}, Int) || Equal(Int, UnknownType{}) {
		t.Fatal("UnknownType must not equal int")
	}
	if (UnknownType{}).String() != "?" {
		t.Fatal("bad string")
	}
}
