// Package types implements the entirely standard type system of the
// paper's Section 3.1: judgments Γ ⊢ e : τ over types
// τ ::= int | bool | τ ref. The only nonstandard element is a pluggable
// hook used by the mix rule TSYMBLOCK — the checker itself contains no
// knowledge of symbolic execution, preserving the paper's claim that
// the mixed analyses are off-the-shelf.
package types

import (
	"fmt"

	"mix/internal/lang"
)

// Type is a core-language type.
type Type interface {
	isType()
	String() string
}

// IntType is the type of integers.
type IntType struct{}

// BoolType is the type of booleans.
type BoolType struct{}

// RefType is the type of references to Elem.
type RefType struct{ Elem Type }

// FunType is the type of functions τ1 -> τ2 (the "if we add functions"
// extension the paper mentions for context sensitivity).
type FunType struct{ Param, Ret Type }

// UnknownType is the dynamic type of unannotated function values
// inside the symbolic executor. It never arises in the type checker,
// and it is not equal to anything (including itself under Equal), so
// any position that demands a static type rejects it conservatively.
type UnknownType struct{}

func (IntType) isType()     {}
func (BoolType) isType()    {}
func (RefType) isType()     {}
func (FunType) isType()     {}
func (UnknownType) isType() {}

func (IntType) String() string  { return "int" }
func (BoolType) String() string { return "bool" }
func (t RefType) String() string {
	return t.Elem.String() + " ref"
}
func (t FunType) String() string {
	return "(" + t.Param.String() + " -> " + t.Ret.String() + ")"
}
func (UnknownType) String() string { return "?" }

// Int and Bool are the primitive types.
var (
	Int  Type = IntType{}
	Bool Type = BoolType{}
)

// Ref builds τ ref.
func Ref(elem Type) Type { return RefType{elem} }

// Fun builds τ1 -> τ2.
func Fun(param, ret Type) Type { return FunType{param, ret} }

// Equal reports structural type equality. UnknownType is equal to
// nothing, including itself.
func Equal(a, b Type) bool {
	switch a := a.(type) {
	case IntType:
		_, ok := b.(IntType)
		return ok
	case BoolType:
		_, ok := b.(BoolType)
		return ok
	case RefType:
		br, ok := b.(RefType)
		return ok && Equal(a.Elem, br.Elem)
	case FunType:
		bf, ok := b.(FunType)
		return ok && Equal(a.Param, bf.Param) && Equal(a.Ret, bf.Ret)
	}
	return false
}

// FromExpr converts surface type syntax to a semantic type.
func FromExpr(te lang.TypeExpr) (Type, error) {
	switch te := te.(type) {
	case lang.TyInt:
		return Int, nil
	case lang.TyBool:
		return Bool, nil
	case lang.TyRef:
		elem, err := FromExpr(te.Elem)
		if err != nil {
			return nil, err
		}
		return Ref(elem), nil
	case lang.TyFun:
		param, err := FromExpr(te.Param)
		if err != nil {
			return nil, err
		}
		ret, err := FromExpr(te.Ret)
		if err != nil {
			return nil, err
		}
		return Fun(param, ret), nil
	}
	return nil, fmt.Errorf("types: unknown type syntax %T", te)
}

// Env is a typing environment Γ. Envs are persistent: Extend returns a
// new environment sharing structure with the old one.
type Env struct {
	name   string
	ty     Type
	parent *Env
}

// EmptyEnv is the empty typing environment.
func EmptyEnv() *Env { return nil }

// Extend binds name : ty, shadowing any previous binding.
func (g *Env) Extend(name string, ty Type) *Env {
	return &Env{name: name, ty: ty, parent: g}
}

// Lookup finds the type bound to name.
func (g *Env) Lookup(name string) (Type, bool) {
	for e := g; e != nil; e = e.parent {
		if e.name == name {
			return e.ty, true
		}
	}
	return nil, false
}

// Names returns the domain of the environment, innermost binding
// first, without shadowed duplicates.
func (g *Env) Names() []string {
	seen := map[string]bool{}
	var out []string
	for e := g; e != nil; e = e.parent {
		if !seen[e.name] {
			seen[e.name] = true
			out = append(out, e.name)
		}
	}
	return out
}

// Error is a static type error with a source position.
type Error struct {
	Pos lang.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: type error: %s", e.Pos, e.Msg)
}

// Checker type checks core-language expressions. SymBlock, when
// non-nil, is invoked to derive a type for {s e s} blocks; this is the
// seam where the TSYMBLOCK mix rule plugs in. A nil SymBlock rejects
// symbolic blocks, giving the standalone type system of Section 3.1.
type Checker struct {
	SymBlock func(env *Env, e lang.Expr) (Type, error)
}

// Check proves Γ ⊢ e : τ, returning τ or the first type error.
func (c *Checker) Check(env *Env, e lang.Expr) (Type, error) {
	switch e := e.(type) {
	case lang.Var:
		t, ok := env.Lookup(e.Name)
		if !ok {
			return nil, &Error{e.Pos(), fmt.Sprintf("unbound variable %s", e.Name)}
		}
		return t, nil
	case lang.IntLit:
		return Int, nil
	case lang.BoolLit:
		return Bool, nil
	case lang.Plus:
		if err := c.checkIs(env, e.X, Int, "left operand of +"); err != nil {
			return nil, err
		}
		if err := c.checkIs(env, e.Y, Int, "right operand of +"); err != nil {
			return nil, err
		}
		return Int, nil
	case lang.Eq:
		tx, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		ty, err := c.Check(env, e.Y)
		if err != nil {
			return nil, err
		}
		if isFun(tx) || isFun(ty) {
			return nil, &Error{e.Pos(), "cannot compare functions with ="}
		}
		if !Equal(tx, ty) {
			return nil, &Error{e.Pos(), fmt.Sprintf("operands of = have types %s and %s", tx, ty)}
		}
		return Bool, nil
	case lang.Lt:
		if err := c.checkIs(env, e.X, Int, "left operand of <"); err != nil {
			return nil, err
		}
		if err := c.checkIs(env, e.Y, Int, "right operand of <"); err != nil {
			return nil, err
		}
		return Bool, nil
	case lang.Not:
		if err := c.checkIs(env, e.X, Bool, "operand of not"); err != nil {
			return nil, err
		}
		return Bool, nil
	case lang.And:
		if err := c.checkIs(env, e.X, Bool, "left operand of &&"); err != nil {
			return nil, err
		}
		if err := c.checkIs(env, e.Y, Bool, "right operand of &&"); err != nil {
			return nil, err
		}
		return Bool, nil
	case lang.If:
		if err := c.checkIs(env, e.Cond, Bool, "condition of if"); err != nil {
			return nil, err
		}
		tt, err := c.Check(env, e.Then)
		if err != nil {
			return nil, err
		}
		tf, err := c.Check(env, e.Else)
		if err != nil {
			return nil, err
		}
		if !Equal(tt, tf) {
			return nil, &Error{e.Pos(), fmt.Sprintf("branches of if have types %s and %s", tt, tf)}
		}
		return tt, nil
	case lang.Let:
		tb, err := c.Check(env, e.Bound)
		if err != nil {
			return nil, err
		}
		return c.Check(env.Extend(e.Name, tb), e.Body)
	case lang.Ref:
		tx, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		return Ref(tx), nil
	case lang.Deref:
		tx, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		r, ok := tx.(RefType)
		if !ok {
			return nil, &Error{e.Pos(), fmt.Sprintf("dereference of non-reference type %s", tx)}
		}
		return r.Elem, nil
	case lang.Assign:
		tx, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		r, ok := tx.(RefType)
		if !ok {
			return nil, &Error{e.Pos(), fmt.Sprintf("assignment to non-reference type %s", tx)}
		}
		ty, err := c.Check(env, e.Y)
		if err != nil {
			return nil, err
		}
		// The type system, unlike the symbolic executor, must preserve
		// types across writes (see the SEASSIGN discussion in Fig. 3).
		if !Equal(r.Elem, ty) {
			return nil, &Error{e.Pos(), fmt.Sprintf("assigning %s to %s reference", ty, r.Elem)}
		}
		return ty, nil
	case lang.Fun:
		if e.Ann == nil {
			return nil, &Error{e.Pos(),
				fmt.Sprintf("parameter %s needs a type annotation for type checking (symbolic blocks accept unannotated functions)", e.Param)}
		}
		pt, err := FromExpr(e.Ann)
		if err != nil {
			return nil, &Error{e.Pos(), err.Error()}
		}
		rt, err := c.Check(env.Extend(e.Param, pt), e.Body)
		if err != nil {
			return nil, err
		}
		return Fun(pt, rt), nil
	case lang.App:
		ft, err := c.Check(env, e.F)
		if err != nil {
			return nil, err
		}
		fn, ok := ft.(FunType)
		if !ok {
			return nil, &Error{e.Pos(), fmt.Sprintf("application of non-function type %s", ft)}
		}
		at, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		if !Equal(at, fn.Param) {
			return nil, &Error{e.Pos(), fmt.Sprintf("argument has type %s, function expects %s", at, fn.Param)}
		}
		return fn.Ret, nil
	case lang.TypedBlock:
		// A typed block within type checking passes through.
		return c.Check(env, e.Body)
	case lang.SymBlock:
		if c.SymBlock == nil {
			return nil, &Error{e.Pos(), "symbolic block not supported by standalone type checker"}
		}
		return c.SymBlock(env, e.Body)
	}
	return nil, fmt.Errorf("types: unknown expression %T", e)
}

func isFun(t Type) bool {
	switch t.(type) {
	case FunType, UnknownType:
		return true
	}
	return false
}

func (c *Checker) checkIs(env *Env, e lang.Expr, want Type, what string) error {
	got, err := c.Check(env, e)
	if err != nil {
		return err
	}
	if !Equal(got, want) {
		return &Error{e.Pos(), fmt.Sprintf("%s has type %s, want %s", what, got, want)}
	}
	return nil
}
