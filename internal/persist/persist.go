// Package persist provides the persistent (immutable, structurally
// shared) containers behind O(1) state forking in both symbolic
// executors. A Map is a hash array mapped trie (HAMT): Set and Delete
// copy only the O(log n) nodes on the path from the root to the
// affected leaf and share everything else with the original, so
// snapshotting a map is a pointer copy and sibling paths forked from
// the same state share all unchanged cells.
//
// Hashing is caller-supplied so keys can be hashed deterministically
// (e.g. by a stable object ID rather than a pointer), which keeps
// every downstream iteration order reproducible across runs.
package persist

// fanLog2 is the per-level branching factor exponent: 32-way nodes
// consume 5 hash bits per level.
const fanLog2 = 5

const fanMask = (1 << fanLog2) - 1

// maxDepth is the number of trie levels before the 64-bit hash is
// exhausted and colliding keys fall into collision buckets.
const maxDepth = 64 / fanLog2

// Map is a persistent hash map. Construct with NewMap; the zero value
// panics on Set (it has no hash function). Map values are cheap to
// copy (a pointer, a length, and the hash function); every mutating
// method returns a new Map sharing structure with the receiver.
type Map[K comparable, V any] struct {
	root *node[K, V]
	size int
	hash func(K) uint64
}

// node is one bitmap-compressed HAMT node. slots holds leaves and
// child pointers in bitmap order; nodes are immutable after
// publication, which is what makes concurrent readers of sibling
// snapshots race-free.
type node[K comparable, V any] struct {
	// bitmap has bit i set when slot i is occupied.
	bitmap uint32
	// leafmap has bit i set when the occupant is a leaf (else a child).
	leafmap uint32
	slots   []slot[K, V]
}

// slot is a leaf (key/value plus its full hash, child==nil) or an
// interior child. Keys whose full 64-bit hashes collide chain through
// more.
type slot[K comparable, V any] struct {
	hash  uint64
	key   K
	val   V
	child *node[K, V]
	more  *collision[K, V]
}

type collision[K comparable, V any] struct {
	key  K
	val  V
	next *collision[K, V]
}

// NewMap returns an empty persistent map that hashes keys with hash.
func NewMap[K comparable, V any](hash func(K) uint64) Map[K, V] {
	return Map[K, V]{hash: hash}
}

// Len reports the number of keys.
func (m Map[K, V]) Len() int { return m.size }

// Get returns the value bound to key.
func (m Map[K, V]) Get(key K) (V, bool) {
	var zero V
	if m.root == nil {
		return zero, false
	}
	h := m.hash(key)
	n := m.root
	for depth := 0; ; depth++ {
		bit := uint32(1) << ((h >> (depth * fanLog2)) & fanMask)
		if n.bitmap&bit == 0 {
			return zero, false
		}
		idx := popcount(n.bitmap & (bit - 1))
		s := &n.slots[idx]
		if n.leafmap&bit != 0 {
			if s.key == key {
				return s.val, true
			}
			for c := s.more; c != nil; c = c.next {
				if c.key == key {
					return c.val, true
				}
			}
			return zero, false
		}
		n = s.child
	}
}

// Set returns a map with key bound to v. The receiver is unchanged.
func (m Map[K, V]) Set(key K, v V) Map[K, V] {
	h := m.hash(key)
	root, added := setNode(m.root, h, 0, key, v)
	out := m
	out.root = root
	if added {
		out.size++
	}
	return out
}

// Delete returns a map without key. The receiver is unchanged.
func (m Map[K, V]) Delete(key K) Map[K, V] {
	if m.root == nil {
		return m
	}
	h := m.hash(key)
	root, removed := deleteNode(m.root, h, 0, key)
	if !removed {
		return m
	}
	out := m
	out.root = root
	out.size--
	return out
}

// Range calls f for every key/value pair until f returns false.
// Iteration follows hash order: deterministic for a deterministic hash
// function but not a semantic order — callers needing one must sort.
func (m Map[K, V]) Range(f func(K, V) bool) {
	rangeNode(m.root, f)
}

func rangeNode[K comparable, V any](n *node[K, V], f func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i := range n.slots {
		s := &n.slots[i]
		if s.child != nil {
			if !rangeNode(s.child, f) {
				return false
			}
			continue
		}
		if !f(s.key, s.val) {
			return false
		}
		for c := s.more; c != nil; c = c.next {
			if !f(c.key, c.val) {
				return false
			}
		}
	}
	return true
}

// cloneWith copies n with slot idx replaced; other slots are shared.
func cloneWith[K comparable, V any](n *node[K, V], idx int, s slot[K, V]) *node[K, V] {
	slots := make([]slot[K, V], len(n.slots))
	copy(slots, n.slots)
	slots[idx] = s
	return &node[K, V]{bitmap: n.bitmap, leafmap: n.leafmap, slots: slots}
}

// setNode inserts (key, v) with hash h into n at the given trie depth,
// returning the replacement node and whether the key is new.
func setNode[K comparable, V any](n *node[K, V], h uint64, depth int, key K, v V) (*node[K, V], bool) {
	bit := uint32(1) << ((h >> (depth * fanLog2)) & fanMask)
	if n == nil {
		return &node[K, V]{bitmap: bit, leafmap: bit, slots: []slot[K, V]{{hash: h, key: key, val: v}}}, true
	}
	idx := popcount(n.bitmap & (bit - 1))
	if n.bitmap&bit == 0 {
		// Free slot: splice in a new leaf.
		slots := make([]slot[K, V], len(n.slots)+1)
		copy(slots, n.slots[:idx])
		slots[idx] = slot[K, V]{hash: h, key: key, val: v}
		copy(slots[idx+1:], n.slots[idx:])
		return &node[K, V]{bitmap: n.bitmap | bit, leafmap: n.leafmap | bit, slots: slots}, true
	}
	s := n.slots[idx]
	if n.leafmap&bit == 0 {
		child, added := setNode(s.child, h, depth+1, key, v)
		return cloneWith(n, idx, slot[K, V]{child: child}), added
	}
	// Occupied leaf.
	if s.key == key {
		ns := s
		ns.val = v
		return cloneWith(n, idx, ns), false
	}
	if s.hash == h {
		// Full-hash collision: update in or prepend to the bucket.
		var rebuilt, tail *collision[K, V]
		for c := s.more; c != nil; c = c.next {
			cc := *c
			cc.next = nil
			if tail == nil {
				rebuilt, tail = &cc, &cc
			} else {
				tail.next = &cc
				tail = &cc
			}
			if c.key == key {
				tail.val = v
				tail.next = c.next // share the untouched suffix
				ns := s
				ns.more = rebuilt
				return cloneWith(n, idx, ns), false
			}
		}
		ns := s
		ns.more = &collision[K, V]{key: key, val: v, next: s.more}
		return cloneWith(n, idx, ns), true
	}
	// Two distinct hashes in one slot: push both one level down.
	child := splitLeaf(s, h, depth+1, key, v)
	return &node[K, V]{
		bitmap:  n.bitmap,
		leafmap: n.leafmap &^ bit,
		slots:   replaceSlot(n.slots, idx, slot[K, V]{child: child}),
	}, true
}

func replaceSlot[K comparable, V any](slots []slot[K, V], idx int, s slot[K, V]) []slot[K, V] {
	out := make([]slot[K, V], len(slots))
	copy(out, slots)
	out[idx] = s
	return out
}

// splitLeaf builds the subtree holding existing leaf old and the new
// key (hash newH); the two hashes differ and agree on the first depth
// chunks.
func splitLeaf[K comparable, V any](old slot[K, V], newH uint64, depth int, key K, v V) *node[K, V] {
	oldBit := uint32(1) << ((old.hash >> (depth * fanLog2)) & fanMask)
	newBit := uint32(1) << ((newH >> (depth * fanLog2)) & fanMask)
	if oldBit == newBit {
		child := splitLeaf(old, newH, depth+1, key, v)
		return &node[K, V]{bitmap: oldBit, slots: []slot[K, V]{{child: child}}}
	}
	n := &node[K, V]{bitmap: oldBit | newBit, leafmap: oldBit | newBit}
	nw := slot[K, V]{hash: newH, key: key, val: v}
	if oldBit < newBit {
		n.slots = []slot[K, V]{old, nw}
	} else {
		n.slots = []slot[K, V]{nw, old}
	}
	return n
}

// deleteNode removes key (hash h) from n, returning the replacement
// node (nil when the subtree empties) and whether a key was removed.
func deleteNode[K comparable, V any](n *node[K, V], h uint64, depth int, key K) (*node[K, V], bool) {
	bit := uint32(1) << ((h >> (depth * fanLog2)) & fanMask)
	if n.bitmap&bit == 0 {
		return n, false
	}
	idx := popcount(n.bitmap & (bit - 1))
	s := n.slots[idx]
	if n.leafmap&bit == 0 {
		child, removed := deleteNode(s.child, h, depth+1, key)
		if !removed {
			return n, false
		}
		if child == nil {
			return removeSlot(n, idx, bit), true
		}
		// Collapse a lone leaf child back into this level so lookup
		// depth does not outlive deletions.
		if len(child.slots) == 1 && child.leafmap != 0 {
			out := cloneWith(n, idx, child.slots[0])
			out.leafmap |= bit
			return out, true
		}
		return cloneWith(n, idx, slot[K, V]{child: child}), true
	}
	if s.key == key {
		if s.more != nil {
			ns := slot[K, V]{hash: s.hash, key: s.more.key, val: s.more.val, more: s.more.next}
			return cloneWith(n, idx, ns), true
		}
		return removeSlot(n, idx, bit), true
	}
	// Search the collision bucket, copying the prefix up to the match.
	var prefix []collision[K, V]
	for c := s.more; c != nil; c = c.next {
		if c.key == key {
			rest := c.next
			for i := len(prefix) - 1; i >= 0; i-- {
				cc := prefix[i]
				cc.next = rest
				rest = &cc
			}
			ns := s
			ns.more = rest
			return cloneWith(n, idx, ns), true
		}
		prefix = append(prefix, *c)
	}
	return n, false
}

// removeSlot drops slot idx from n; nil when it was the last.
func removeSlot[K comparable, V any](n *node[K, V], idx int, bit uint32) *node[K, V] {
	if len(n.slots) == 1 {
		return nil
	}
	slots := make([]slot[K, V], len(n.slots)-1)
	copy(slots, n.slots[:idx])
	copy(slots[idx:], n.slots[idx+1:])
	return &node[K, V]{bitmap: n.bitmap &^ bit, leafmap: n.leafmap &^ bit, slots: slots}
}

func popcount(x uint32) int {
	x = x - ((x >> 1) & 0x55555555)
	x = (x & 0x33333333) + ((x >> 2) & 0x33333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f
	return int((x * 0x01010101) >> 24)
}

// HashString is a deterministic FNV-1a string hasher for callers keyed
// by strings.
func HashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// HashU64 finalizes a 64-bit integer hash (the splitmix64 finalizer),
// for callers keyed by stable integer IDs.
func HashU64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
