package persist

import (
	"math/rand"
	"testing"
)

// badHash forces heavy collisions so bucket paths get exercised.
func badHash(k int) uint64 { return uint64(k % 7) }

func TestMapBasic(t *testing.T) {
	m := NewMap[string, int](HashString)
	if m.Len() != 0 {
		t.Fatalf("empty map Len = %d", m.Len())
	}
	m1 := m.Set("a", 1)
	m2 := m1.Set("b", 2)
	m3 := m2.Set("a", 10)
	if m.Len() != 0 || m1.Len() != 1 || m2.Len() != 2 || m3.Len() != 2 {
		t.Fatalf("Len chain wrong: %d %d %d %d", m.Len(), m1.Len(), m2.Len(), m3.Len())
	}
	if v, ok := m1.Get("a"); !ok || v != 1 {
		t.Fatalf("m1[a] = %d,%v — snapshot mutated by later Set", v, ok)
	}
	if v, ok := m3.Get("a"); !ok || v != 10 {
		t.Fatalf("m3[a] = %d,%v", v, ok)
	}
	if _, ok := m1.Get("b"); ok {
		t.Fatal("m1 sees key set in m2")
	}
	d := m3.Delete("a")
	if _, ok := d.Get("a"); ok {
		t.Fatal("delete failed")
	}
	if v, ok := m3.Get("a"); !ok || v != 10 {
		t.Fatal("Delete mutated its receiver")
	}
	if d.Delete("zzz").Len() != d.Len() {
		t.Fatal("deleting a missing key changed Len")
	}
}

// TestMapDifferential drives a persistent map and a builtin map with
// the same random operation stream, checkpointing snapshots along the
// way and verifying each snapshot still agrees with the builtin map's
// state at checkpoint time — the structural-sharing property the
// executors rely on when forking.
func TestMapDifferential(t *testing.T) {
	type snap struct {
		m     Map[int, int]
		model map[int]int
	}
	for _, hash := range []func(int) uint64{
		func(k int) uint64 { return HashU64(uint64(k)) },
		badHash, // collision-heavy
	} {
		rng := rand.New(rand.NewSource(42))
		m := NewMap[int, int](hash)
		model := map[int]int{}
		var snaps []snap
		for op := 0; op < 20000; op++ {
			k := rng.Intn(200)
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				v := rng.Int()
				m = m.Set(k, v)
				model[k] = v
			case 6, 7:
				m = m.Delete(k)
				delete(model, k)
			case 8:
				got, ok := m.Get(k)
				want, wok := model[k]
				if ok != wok || got != want {
					t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, got, ok, want, wok)
				}
			case 9:
				if len(snaps) < 8 {
					cp := make(map[int]int, len(model))
					for k, v := range model {
						cp[k] = v
					}
					snaps = append(snaps, snap{m, cp})
				}
			}
			if m.Len() != len(model) {
				t.Fatalf("op %d: Len %d != model %d", op, m.Len(), len(model))
			}
		}
		// Full sweep plus Range agreement.
		seen := 0
		m.Range(func(k, v int) bool {
			if want, ok := model[k]; !ok || want != v {
				t.Fatalf("Range yields %d=%d not in model", k, v)
			}
			seen++
			return true
		})
		if seen != len(model) {
			t.Fatalf("Range visited %d of %d", seen, len(model))
		}
		// Old snapshots must be byte-for-byte what the model was then.
		for i, s := range snaps {
			if s.m.Len() != len(s.model) {
				t.Fatalf("snapshot %d: Len %d != %d", i, s.m.Len(), len(s.model))
			}
			for k, want := range s.model {
				if got, ok := s.m.Get(k); !ok || got != want {
					t.Fatalf("snapshot %d: [%d] = %d,%v want %d", i, k, got, ok, want)
				}
			}
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := NewMap[int, int](func(k int) uint64 { return HashU64(uint64(k)) })
	for i := 0; i < 100; i++ {
		m = m.Set(i, i)
	}
	n := 0
	m.Range(func(int, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("Range visited %d after early stop", n)
	}
}

func BenchmarkMapSnapshotWrite(b *testing.B) {
	m := NewMap[int, int](func(k int) uint64 { return HashU64(uint64(k)) })
	for i := 0; i < 1024; i++ {
		m = m.Set(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fork := m // O(1) snapshot
		fork = fork.Set(i&1023, i)
		if fork.Len() != m.Len() {
			b.Fatal("size drift")
		}
	}
}
