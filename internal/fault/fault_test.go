package fault

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestClassOfWalksWrapChain(t *testing.T) {
	base := New(PathBudget, "engine.fork", "max-paths=16", errors.New("boom"))
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", base))
	if got := ClassOf(wrapped); got != PathBudget {
		t.Fatalf("ClassOf(wrapped) = %v, want path-budget", got)
	}
	if Of(wrapped) != base {
		t.Fatal("Of must find the fault through the wrap chain")
	}
	if !Degradable(wrapped) {
		t.Fatal("classified faults are degradable")
	}
}

func TestClassOfContextSentinels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := ClassOf(ctx.Err()); got != Canceled {
		t.Fatalf("canceled ctx classifies as %v, want canceled", got)
	}
	if got := ClassOf(context.DeadlineExceeded); got != Timeout {
		t.Fatalf("deadline classifies as %v, want timeout", got)
	}
	if got := ClassOf(errors.New("plain")); got != None {
		t.Fatalf("plain error classifies as %v, want none", got)
	}
	if ClassOf(nil) != None || Degradable(nil) {
		t.Fatal("nil error must be None and not degradable")
	}
}

type classified struct{ msg string }

func (c classified) Error() string     { return c.msg }
func (c classified) FaultClass() Class { return SolverLimit }

func TestClassifierInterface(t *testing.T) {
	err := fmt.Errorf("pool: %w", classified{"too many atoms"})
	if got := ClassOf(err); got != SolverLimit {
		t.Fatalf("ClassOf(classifier) = %v, want solver-limit", got)
	}
	if Of(err) != nil {
		t.Fatal("Of must be nil for Classifier-only errors (no explicit *Fault)")
	}
}

func TestFromContextAndPanic(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	f := FromContext("engine", "deadline=50ms", ctx.Err())
	if f.Class != Timeout {
		t.Fatalf("expired deadline → %v, want timeout", f.Class)
	}
	if !errors.Is(f, context.DeadlineExceeded) {
		t.Fatal("fault must preserve the context sentinel through Unwrap")
	}
	if !strings.Contains(f.Error(), "timeout") || !strings.Contains(f.Error(), "deadline=50ms") {
		t.Fatalf("diagnostic must name class and budget: %q", f.Error())
	}

	p := FromPanic("engine.task", "index out of range")
	if p.Class != WorkerPanic || !strings.Contains(p.Error(), "worker-panic") {
		t.Fatalf("panic fault = %v", p)
	}
	inner := New(SolverLimit, "inject.pre-fork", "injected", nil)
	p2 := FromPanic("engine.task", inner)
	if !errors.Is(p2, inner) {
		t.Fatal("panicking with an error must keep it in the chain")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var k Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				k.Record(Timeout)
				k.Record(WorkerPanic)
				k.Record(None) // ignored
			}
		}()
	}
	wg.Wait()
	if k.Get(Timeout) != 800 || k.Get(WorkerPanic) != 800 {
		t.Fatalf("counts = %v", k.Snapshot())
	}
	s := k.Snapshot()
	if s.Total() != 1600 || s.Of(Timeout) != 800 {
		t.Fatalf("snapshot = %v", s)
	}
	if !strings.Contains(s.String(), "timeout=800") {
		t.Fatalf("String() = %q", s.String())
	}
	var nilK *Counters
	nilK.Record(Timeout) // must not crash
	if nilK.Get(Timeout) != 0 || nilK.Total() != 0 {
		t.Fatal("nil counters must read zero")
	}
}

func TestSnapshotAddAndTruncations(t *testing.T) {
	var a, b Snapshot
	a[PathBudget] = 2
	b[StepBudget] = 3
	b[Timeout] = 1
	a.Add(b)
	if a.Truncations() != 5 || a.Total() != 6 {
		t.Fatalf("after Add: %v", a)
	}
	var zero Snapshot
	if zero.String() != "" {
		t.Fatalf("empty snapshot String() = %q", zero.String())
	}
}

func TestInjectorPlanDeterminism(t *testing.T) {
	for run := 0; run < 2; run++ {
		in := NewInjector(42).Plan(PreSolve, Plan{After: 3, Count: 2, Class: SolverLimit})
		var got []bool
		for i := 0; i < 6; i++ {
			got = append(got, in.At(PreSolve) != nil)
		}
		want := []bool{false, false, true, true, false, false}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: visit %d injected=%v, want %v", run, i, got[i], want[i])
			}
		}
		if in.Counters().Get(SolverLimit) != 2 {
			t.Fatalf("injected counter = %d, want 2", in.Counters().Get(SolverLimit))
		}
	}
}

func TestInjectorClassAndBudgetNamed(t *testing.T) {
	in := NewInjector(1).Plan(MidDPLL, Plan{Class: Timeout})
	err := in.At(MidDPLL)
	if err == nil {
		t.Fatal("armed point must inject on first visit")
	}
	if ClassOf(err) != Timeout {
		t.Fatalf("class = %v", ClassOf(err))
	}
	if !strings.Contains(err.Error(), "mid-dpll") || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("injected fault must name its point and budget: %q", err.Error())
	}
}

func TestInjectorPanicPlan(t *testing.T) {
	in := NewInjector(7).Plan(PreFork, Plan{After: 1, Count: 1, Panic: true})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic plan must panic")
			}
			f := FromPanic("test", r)
			if f.Class != WorkerPanic {
				t.Fatalf("recovered class = %v", f.Class)
			}
		}()
		_ = in.At(PreFork)
	}()
	if err := in.At(PreFork); err != nil {
		t.Fatal("Count=1 must stop injecting after one shot")
	}
	if in.Counters().Get(WorkerPanic) != 1 {
		t.Fatalf("panic counter = %d", in.Counters().Get(WorkerPanic))
	}
}

func TestInjectorChanceSeeded(t *testing.T) {
	fire := func() int {
		in := NewInjector(99).Chance(PreSolve, 0.5, SolverLimit)
		n := 0
		for i := 0; i < 100; i++ {
			if in.At(PreSolve) != nil {
				n++
			}
		}
		return n
	}
	a, b := fire(), fire()
	if a != b {
		t.Fatalf("same seed must reproduce the same injection sequence: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("p=0.5 over 100 visits fired %d times", a)
	}
}

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if in.At(PreFork) != nil || in.Counters() != nil {
		t.Fatal("nil injector must be inert")
	}
}

// TestTransient pins the retryability split: wall-clock and scheduling
// faults are transient; budget and solver-resource exhaustion are
// deterministic, so retrying the identical request cannot help.
func TestTransient(t *testing.T) {
	want := map[Class]bool{
		Timeout:      true,
		Canceled:     true,
		WorkerPanic:  true,
		PathBudget:   false,
		StepBudget:   false,
		SolverLimit:  false,
		CacheCorrupt: false,
		None:         false,
		// A lost or stalled shard is a scheduling accident — the same
		// item can succeed on a healthy worker; a poison item killed
		// every shard that touched it, so retrying cannot help.
		ShardLost:    true,
		ShardTimeout: true,
		ShardPoison:  false,
	}
	for c, w := range want {
		if got := c.Transient(); got != w {
			t.Errorf("%v.Transient() = %v, want %v", c, got, w)
		}
	}
	for _, c := range Classes() {
		if _, ok := want[c]; !ok {
			t.Errorf("class %v missing from the transiency table; decide and add it", c)
		}
	}
}
