// Package fault is the failure taxonomy and degradation vocabulary of
// the analysis stack. Every abort anywhere in the system — a wall-clock
// deadline, a path or step budget, a solver resource bound, a recovered
// worker panic, a cooperative cancellation — is classified into one of
// a small set of Classes, and every layer applies the same degradation
// rule: a killed path or an "unknown" solver answer becomes an explicit
// imprecision (the typed side's over-approximation, "top"), never a
// silently dropped answer and never a crash.
//
// The package is a leaf: it depends only on the standard library, so
// the solver, the engine, both executors, and MIXY can all share one
// vocabulary without import cycles. Components attach a class to their
// own error types either by returning a *Fault or by implementing
// Classifier.
//
// It also hosts the deterministic fault-injection harness (Injector)
// used by the chaos tests: seeded, with a fixed set of injection points
// threaded through the stack, so every failure mode can be forced
// reproducibly under -race.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Class classifies an abort. The zero value None means "not a
// classified fault" — a genuine error that must not be degraded.
type Class uint8

const (
	// None marks unclassified (hard) errors.
	None Class = iota
	// Timeout is a wall-clock deadline expiry (run deadline or
	// per-query solver timeout).
	Timeout
	// Canceled is a cooperative cancellation (context canceled).
	Canceled
	// PathBudget is an exhausted path or fork-depth budget.
	PathBudget
	// StepBudget is an exhausted evaluation-step budget.
	StepBudget
	// SolverLimit is a solver resource bound (atoms, decisions).
	SolverLimit
	// WorkerPanic is a panic recovered at a task boundary.
	WorkerPanic
	// CacheCorrupt is a persistent-cache entry that failed its
	// integrity or version check; the entry is discarded and the work
	// recomputed (degraded-to-recompute, never a wrong answer).
	CacheCorrupt
	// ShardLost is a distributed-exploration worker process that died
	// (crashed, was killed, or garbled its protocol stream) while a
	// subtree work item was in flight; the item is retried elsewhere
	// and, if permanently lost, its subtree degrades to explicit
	// imprecision.
	ShardLost
	// ShardTimeout is a worker that stopped heartbeating past its
	// deadline while holding a work item; the coordinator kills and
	// replaces it and retries the item.
	ShardTimeout
	// ShardPoison is a work item quarantined after killing more than
	// one worker in a row: retrying it would only keep killing shards,
	// so its subtree degrades immediately instead.
	ShardPoison

	// NumClasses is the number of classes, for counter arrays.
	NumClasses = int(ShardPoison) + 1
)

var classNames = [NumClasses]string{
	"none", "timeout", "canceled", "path-budget", "step-budget",
	"solver-limit", "worker-panic", "cache-corrupt",
	"shard-lost", "shard-timeout", "shard-poison",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("fault.Class(%d)", int(c))
}

// Classes lists every real class (excluding None), for tests that
// sweep the taxonomy.
func Classes() []Class {
	return []Class{Timeout, Canceled, PathBudget, StepBudget, SolverLimit, WorkerPanic, CacheCorrupt,
		ShardLost, ShardTimeout, ShardPoison}
}

// Transient reports whether a degradation of this class is tied to the
// circumstances of one request rather than to the program under
// analysis: retrying the identical request with a longer deadline (or
// after load subsides) can genuinely succeed. Deadline expiries,
// cancellations, recovered panics, and lost or stalled shards are
// transient; budget and solver resource exhaustion are deterministic
// for a fixed configuration, so a retry without a config change would
// only rediscover them — and so is a poison item, which killed every
// shard that touched it. The serving layer surfaces this as the
// response's "retryable" hint, and the shard coordinator's retry loop
// keys its bounded backoff off the same predicate.
func (c Class) Transient() bool {
	switch c {
	case Timeout, Canceled, WorkerPanic, ShardLost, ShardTimeout:
		return true
	}
	return false
}

// Classifier lets error types outside this package declare their class
// without importing fault from both sides (e.g. solver.ErrResource
// reports SolverLimit).
type Classifier interface{ FaultClass() Class }

// Fault is a classified degradation event. It is an error; Unwrap
// preserves the cause chain so sentinel checks (errors.Is against
// context.DeadlineExceeded, solver.ErrLimit, engine.ErrBudget, ...)
// keep working through it.
type Fault struct {
	// Class is the taxonomy bucket.
	Class Class
	// Op names the component and operation that tripped, e.g.
	// "engine.fork" or "solver.dpll".
	Op string
	// Budget names the budget that tripped, e.g. "deadline=50ms" or
	// "max-paths=64". Empty when no budget applies (panics).
	Budget string
	// Err is the underlying cause, if any.
	Err error
}

func (f *Fault) Error() string {
	s := "fault: " + f.Class.String()
	if f.Op != "" {
		s += " at " + f.Op
	}
	if f.Budget != "" {
		s += " (" + f.Budget + ")"
	}
	if f.Err != nil {
		s += ": " + f.Err.Error()
	}
	return s
}

func (f *Fault) Unwrap() error { return f.Err }

// FaultClass implements Classifier (so a Fault wrapped by another
// error still classifies through errors.As).
func (f *Fault) FaultClass() Class { return f.Class }

// New builds a classified fault.
func New(c Class, op, budget string, err error) *Fault {
	return &Fault{Class: c, Op: op, Budget: budget, Err: err}
}

// FromContext classifies a context error: deadline expiry is Timeout,
// anything else Canceled. err must be non-nil (ctx.Err() after Done).
func FromContext(op, budget string, err error) *Fault {
	c := Canceled
	if errors.Is(err, context.DeadlineExceeded) {
		c = Timeout
	}
	return &Fault{Class: c, Op: op, Budget: budget, Err: err}
}

// FromPanic converts a recovered panic value into a WorkerPanic fault.
// If the panic value is itself an error it becomes the cause (so an
// injected fault panicking through a worker keeps its identity).
func FromPanic(op string, v any) *Fault {
	err, ok := v.(error)
	if !ok {
		err = fmt.Errorf("panic: %v", v)
	}
	return &Fault{Class: WorkerPanic, Op: op, Err: err}
}

// ClassOf reports the class of an error, walking the wrap chain: a
// *Fault or Classifier anywhere in the chain decides; bare context
// sentinels classify as Timeout/Canceled; everything else is None.
func ClassOf(err error) Class {
	if err == nil {
		return None
	}
	var f *Fault
	if errors.As(err, &f) {
		return f.Class
	}
	var cl Classifier
	if errors.As(err, &cl) {
		return cl.FaultClass()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Timeout
	}
	if errors.Is(err, context.Canceled) {
		return Canceled
	}
	return None
}

// Of returns the *Fault in err's chain, or nil. It distinguishes
// explicitly constructed faults (injected or classified aborts) from
// errors that merely classify via Classifier — the solver pool uses
// this to memoize deterministic resource verdicts but never injected
// or cancellation ones.
func Of(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	return nil
}

// Degradable reports whether an error may be absorbed into an
// imprecise-but-sound result instead of propagating as a failure.
func Degradable(err error) bool { return ClassOf(err) != None }

// Snapshot is a point-in-time copy of per-class fault counts.
type Snapshot [NumClasses]int64

// Of returns the count for one class.
func (s Snapshot) Of(c Class) int64 { return s[c] }

// Total sums all classified faults (None excluded).
func (s Snapshot) Total() int64 {
	var t int64
	for c := 1; c < NumClasses; c++ {
		t += s[c]
	}
	return t
}

// Truncations sums the classes that cut paths short (path and step
// budgets) — the "paths truncated" figure of -stats.
func (s Snapshot) Truncations() int64 { return s[PathBudget] + s[StepBudget] }

// Add folds another snapshot into this one.
func (s *Snapshot) Add(o Snapshot) {
	for i := range s {
		s[i] += o[i]
	}
}

// String lists the nonzero classes, e.g. "timeout=2 worker-panic=1";
// empty when no faults were recorded.
func (s Snapshot) String() string {
	out := ""
	for c := 1; c < NumClasses; c++ {
		if s[c] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", Class(c), s[c])
	}
	return out
}

// Counters counts classified faults. The zero value is ready; all
// methods are safe for concurrent use and safe on a nil receiver (a
// nil *Counters records nothing).
type Counters struct {
	counts [NumClasses]atomic.Int64
}

// Record counts one fault of class c (None is ignored).
func (k *Counters) Record(c Class) {
	if k == nil || c == None {
		return
	}
	k.counts[c].Add(1)
}

// RecordErr classifies err and records it; reports the class.
func (k *Counters) RecordErr(err error) Class {
	c := ClassOf(err)
	k.Record(c)
	return c
}

// Get returns the count for one class.
func (k *Counters) Get(c Class) int64 {
	if k == nil {
		return 0
	}
	return k.counts[c].Load()
}

// Snapshot copies the current counts.
func (k *Counters) Snapshot() Snapshot {
	var s Snapshot
	if k == nil {
		return s
	}
	for i := range s {
		s[i] = k.counts[i].Load()
	}
	return s
}

// Total sums all classified faults so far.
func (k *Counters) Total() int64 { return k.Snapshot().Total() }
