package fault

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Point is a fixed fault-injection site. The stack threads an Injector
// down to each of these places; chaos tests arm them to force every
// failure mode deterministically.
type Point uint8

const (
	// PreFork fires in engine.Charge, before a conditional fork is
	// admitted.
	PreFork Point = iota
	// PreSolve fires in the solver pool at query entry, before the
	// interval/memo fast paths, so a planned fault reaches every query.
	PreSolve
	// MidDPLL fires inside the DPLL decision loop.
	MidDPLL
	// FixpointIter fires at the top of each MIXY fixed-point iteration.
	FixpointIter
	// ShardItem fires in the shard coordinator before each work-item
	// dispatch; an injected ShardLost/ShardTimeout fault simulates the
	// loss of the shard holding that item without spawning and killing
	// a real process, so the retry/backoff/quarantine machinery is
	// testable in-process under -race.
	ShardItem

	numPoints = int(ShardItem) + 1
)

var pointNames = [numPoints]string{"pre-fork", "pre-solve", "mid-dpll", "fixpoint-iter", "shard-item"}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "fault.Point(?)"
}

// Plan arms one injection point deterministically: starting with the
// After-th visit (1-based), inject Count faults (0 = every visit from
// then on) of the given Class. With Panic set the injection panics
// with the fault instead of returning it, exercising the worker panic
// recovery path.
type Plan struct {
	After int64
	Count int64
	Class Class
	Panic bool
}

type planState struct {
	Plan
	visits   atomic.Int64
	injected atomic.Int64
}

// Injector drives deterministic fault injection. Construct with
// NewInjector; a nil *Injector is inert, so production paths pass nil
// and pay one pointer test per site. Safe for concurrent use.
type Injector struct {
	plans [numPoints]*planState

	// probabilistic mode: seeded PRNG under a mutex. Call order still
	// decides outcomes, so this mode is reproducible only for
	// single-worker runs; the deterministic Plan mode is what the
	// workers=1-vs-N chaos assertions use.
	mu     sync.Mutex
	rng    *rand.Rand
	chance [numPoints]float64
	chCls  [numPoints]Class

	counters Counters
}

// NewInjector returns an injector whose probabilistic mode is seeded
// with seed. Arm points with Plan or Chance.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Plan arms point p with a deterministic plan; returns the injector
// for chaining.
func (in *Injector) Plan(p Point, pl Plan) *Injector {
	if pl.After <= 0 {
		pl.After = 1
	}
	in.plans[p] = &planState{Plan: pl}
	return in
}

// Chance arms point p probabilistically: each visit injects a fault of
// class c with probability prob, drawn from the seeded PRNG.
func (in *Injector) Chance(p Point, prob float64, c Class) *Injector {
	in.chance[p] = prob
	in.chCls[p] = c
	return in
}

// Counters exposes the per-class counts of injected faults.
func (in *Injector) Counters() *Counters {
	if in == nil {
		return nil
	}
	return &in.counters
}

// At visits injection point p: it returns a classified fault (or
// panics with one, under a Panic plan) when the point's plan or chance
// says to, and nil otherwise. Nil-safe.
func (in *Injector) At(p Point) error {
	if in == nil {
		return nil
	}
	if ps := in.plans[p]; ps != nil {
		n := ps.visits.Add(1)
		if n >= ps.After && (ps.Count == 0 || ps.injected.Load() < ps.Count) {
			ps.injected.Add(1)
			return in.fire(p, ps.Class, ps.Panic)
		}
	}
	if prob := in.chance[p]; prob > 0 {
		in.mu.Lock()
		hit := in.rng.Float64() < prob
		in.mu.Unlock()
		if hit {
			return in.fire(p, in.chCls[p], false)
		}
	}
	return nil
}

func (in *Injector) fire(p Point, c Class, doPanic bool) error {
	if doPanic {
		c = WorkerPanic
	} else if c == None {
		c = SolverLimit
	}
	in.counters.Record(c)
	f := &Fault{Class: c, Op: "inject." + p.String(), Budget: "injected"}
	if doPanic {
		panic(f)
	}
	return f
}
