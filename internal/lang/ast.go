// Package lang defines the core MIX source language of the paper's
// Figure 1: an ML-like expression language with integers, booleans,
// arithmetic and boolean operators, conditionals, let-bindings,
// updatable references, and the two block forms {t e t} and {s e s}
// that select type checking or symbolic execution for a subexpression.
package lang

import "fmt"

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Expr is a core-language expression.
type Expr interface {
	isExpr()
	// Pos returns the source position of the expression, or the zero
	// Pos for synthesized expressions.
	Pos() Pos
	String() string
}

type base struct{ P Pos }

func (b base) Pos() Pos { return b.P }

// Var is a variable reference x.
type Var struct {
	base
	Name string
}

// IntLit is an integer constant n.
type IntLit struct {
	base
	Val int64
}

// BoolLit is true or false.
type BoolLit struct {
	base
	Val bool
}

// Plus is integer addition e + e.
type Plus struct {
	base
	X, Y Expr
}

// Eq is equality e = e (over two operands of the same type).
type Eq struct {
	base
	X, Y Expr
}

// Lt is integer comparison e < e (an extension beyond the paper's
// Figure 1 grammar, needed for its Section 2 sign-refinement example).
type Lt struct {
	base
	X, Y Expr
}

// Not is boolean negation.
type Not struct {
	base
	X Expr
}

// And is boolean conjunction e && e.
type And struct {
	base
	X, Y Expr
}

// If is the conditional if e then e else e.
type If struct {
	base
	Cond, Then, Else Expr
}

// Let is let x = e1 in e2.
type Let struct {
	base
	Name  string
	Bound Expr
	Body  Expr
}

// Ref is reference construction ref e.
type Ref struct {
	base
	X Expr
}

// Deref is dereference !e.
type Deref struct {
	base
	X Expr
}

// Assign is assignment e1 := e2; it evaluates to the assigned value.
type Assign struct {
	base
	X, Y Expr
}

// Fun is a function literal fun x -> e or fun x : ty -> e. The
// parameter annotation is required by the type checker but optional
// for the symbolic executor, which is dynamically typed — this is the
// paper's observation that symbolic blocks can check code "for which
// fully general parametric polymorphic type inference might be
// difficult" (Section 2, context sensitivity).
type Fun struct {
	base
	Param string
	// Ann is the optional parameter type annotation (nil if omitted).
	Ann  TypeExpr
	Body Expr
}

// App is function application e1 e2 (juxtaposition).
type App struct {
	base
	F, X Expr
}

// TypeExpr is surface type syntax: int, bool, τ ref, τ -> τ.
type TypeExpr interface {
	isTypeExpr()
	String() string
}

// TyInt is the int type syntax.
type TyInt struct{}

// TyBool is the bool type syntax.
type TyBool struct{}

// TyRef is the τ ref type syntax.
type TyRef struct{ Elem TypeExpr }

// TyFun is the τ -> τ type syntax.
type TyFun struct{ Param, Ret TypeExpr }

func (TyInt) isTypeExpr()  {}
func (TyBool) isTypeExpr() {}
func (TyRef) isTypeExpr()  {}
func (TyFun) isTypeExpr()  {}

func (TyInt) String() string   { return "int" }
func (TyBool) String() string  { return "bool" }
func (t TyRef) String() string { return t.Elem.String() + " ref" }
func (t TyFun) String() string {
	return "(" + t.Param.String() + " -> " + t.Ret.String() + ")"
}

// TypedBlock is {t e t}: analyze e with the type checker.
type TypedBlock struct {
	base
	Body Expr
}

// SymBlock is {s e s}: analyze e with the symbolic executor.
type SymBlock struct {
	base
	Body Expr
}

func (Var) isExpr()        {}
func (IntLit) isExpr()     {}
func (BoolLit) isExpr()    {}
func (Plus) isExpr()       {}
func (Eq) isExpr()         {}
func (Lt) isExpr()         {}
func (Not) isExpr()        {}
func (And) isExpr()        {}
func (If) isExpr()         {}
func (Let) isExpr()        {}
func (Ref) isExpr()        {}
func (Deref) isExpr()      {}
func (Assign) isExpr()     {}
func (Fun) isExpr()        {}
func (App) isExpr()        {}
func (TypedBlock) isExpr() {}
func (SymBlock) isExpr()   {}

func (e Var) String() string    { return e.Name }
func (e IntLit) String() string { return fmt.Sprintf("%d", e.Val) }
func (e BoolLit) String() string {
	if e.Val {
		return "true"
	}
	return "false"
}
func (e Plus) String() string { return "(" + e.X.String() + " + " + e.Y.String() + ")" }
func (e Eq) String() string   { return "(" + e.X.String() + " = " + e.Y.String() + ")" }
func (e Lt) String() string   { return "(" + e.X.String() + " < " + e.Y.String() + ")" }
func (e Not) String() string  { return "(not " + e.X.String() + ")" }
func (e And) String() string  { return "(" + e.X.String() + " && " + e.Y.String() + ")" }
func (e If) String() string {
	return "(if " + e.Cond.String() + " then " + e.Then.String() + " else " + e.Else.String() + ")"
}
func (e Let) String() string {
	return "(let " + e.Name + " = " + e.Bound.String() + " in " + e.Body.String() + ")"
}
func (e Fun) String() string {
	if e.Ann != nil {
		return "(fun " + e.Param + " : " + e.Ann.String() + " -> " + e.Body.String() + ")"
	}
	return "(fun " + e.Param + " -> " + e.Body.String() + ")"
}
func (e App) String() string        { return "(" + e.F.String() + " " + e.X.String() + ")" }
func (e Ref) String() string        { return "(ref " + e.X.String() + ")" }
func (e Deref) String() string      { return "(!" + e.X.String() + ")" }
func (e Assign) String() string     { return "(" + e.X.String() + " := " + e.Y.String() + ")" }
func (e TypedBlock) String() string { return "{t " + e.Body.String() + " t}" }
func (e SymBlock) String() string   { return "{s " + e.Body.String() + " s}" }

// Convenience constructors for programmatic AST building (used heavily
// by tests, the program generator, and the example programs).

// V builds a variable reference.
func V(name string) Expr { return Var{Name: name} }

// I builds an integer literal.
func I(v int64) Expr { return IntLit{Val: v} }

// B builds a boolean literal.
func B(v bool) Expr { return BoolLit{Val: v} }

// AddE builds e1 + e2.
func AddE(x, y Expr) Expr { return Plus{X: x, Y: y} }

// EqE builds e1 = e2.
func EqE(x, y Expr) Expr { return Eq{X: x, Y: y} }

// LtE builds e1 < e2.
func LtE(x, y Expr) Expr { return Lt{X: x, Y: y} }

// FunE builds fun param : ann -> body (nil ann for unannotated).
func FunE(param string, ann TypeExpr, body Expr) Expr {
	return Fun{Param: param, Ann: ann, Body: body}
}

// AppE builds f x.
func AppE(f, x Expr) Expr { return App{F: f, X: x} }

// NotE builds not e.
func NotE(x Expr) Expr { return Not{X: x} }

// AndE builds e1 && e2.
func AndE(x, y Expr) Expr { return And{X: x, Y: y} }

// IfE builds if c then t else f.
func IfE(c, t, f Expr) Expr { return If{Cond: c, Then: t, Else: f} }

// LetE builds let x = b in body.
func LetE(name string, bound, body Expr) Expr {
	return Let{Name: name, Bound: bound, Body: body}
}

// RefE builds ref e.
func RefE(x Expr) Expr { return Ref{X: x} }

// DerefE builds !e.
func DerefE(x Expr) Expr { return Deref{X: x} }

// AssignE builds e1 := e2.
func AssignE(x, y Expr) Expr { return Assign{X: x, Y: y} }

// TB builds a typed block {t e t}.
func TB(body Expr) Expr { return TypedBlock{Body: body} }

// SB builds a symbolic block {s e s}.
func SB(body Expr) Expr { return SymBlock{Body: body} }

// Seq builds "e1; e2" as let _ = e1 in e2 (the language has no
// dedicated sequencing form).
func Seq(es ...Expr) Expr {
	if len(es) == 0 {
		panic("lang.Seq: empty sequence")
	}
	acc := es[len(es)-1]
	for i := len(es) - 2; i >= 0; i-- {
		acc = LetE("_", es[i], acc)
	}
	return acc
}
