package lang

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"1", "1"},
		{"true", "true"},
		{"false", "false"},
		{"x", "x"},
		{"1 + 2", "(1 + 2)"},
		{"1 + 2 + 3", "((1 + 2) + 3)"},
		{"1 = 2", "(1 = 2)"},
		{"not true", "(not true)"},
		{"true && false", "(true && false)"},
		{"1 = 2 && 3 = 4", "((1 = 2) && (3 = 4))"},
		{"if true then 1 else 2", "(if true then 1 else 2)"},
		{"let x = 1 in x + x", "(let x = 1 in (x + x))"},
		{"ref 5", "(ref 5)"},
		{"!x", "(!x)"},
		{"x := 3", "(x := 3)"},
		{"x := y := 3", "(x := (y := 3))"},
		{"{t 1 + 2 t}", "{t (1 + 2) t}"},
		{"{s 1 + 2 s}", "{s (1 + 2) s}"},
		{"{s if true then {t 5 t} else {t 6 t} s}",
			"{s (if true then {t 5 t} else {t 6 t}) s}"},
		{"!x + 1", "((!x) + 1)"},
		{"ref 1 := 2", "((ref 1) := 2)"},
		{"not x = y", "(not (x = y))"}, // unary binds tighter; x = y parses under not? no:
	}
	// The last case deserves care: "not x = y" parses as (not x) = y
	// under our precedence (unary > cmp). Fix the expectation.
	cases[len(cases)-1].want = "((not x) = y)"

	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseFunctions(t *testing.T) {
	cases := []struct{ src, want string }{
		{"fun x -> x", "(fun x -> x)"},
		{"fun x : int -> x + 1", "(fun x : int -> (x + 1))"},
		{"fun f : (int -> bool) -> f 3", "(fun f : (int -> bool) -> (f 3))"},
		{"fun r : int ref -> !r", "(fun r : int ref -> (!r))"},
		{"f 1 2", "((f 1) 2)"},     // left-associative application
		{"f 1 + 2", "((f 1) + 2)"}, // application binds tighter than +
		{"1 < 2", "(1 < 2)"},
		{"x + 1 < y + 2", "((x + 1) < (y + 2))"},
		{"not (x < 0)", "(not (x < 0))"},
		{"(fun x -> x) 5", "((fun x -> x) 5)"},
		{"f {t 1 t}", "(f {t 1 t})"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
	// "1 2" parses as an application; rejecting it is the type
	// checker's job, not the parser's.
	e, err := Parse("1 2")
	if err != nil {
		t.Fatalf("1 2 should parse as application: %v", err)
	}
	if e.String() != "(1 2)" {
		t.Fatalf("got %s", e.String())
	}
}

func TestParseComments(t *testing.T) {
	src := `
-- a comment
let x = 1 in -- trailing comment
x + 1
`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "(let x = 1 in (x + 1))" {
		t.Fatalf("got %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "let", "let x", "let x = 1", "let x = 1 in",
		"if true then 1", "1 +", "(1", "{t 1 s}", "{s 1 t}",
		"{t 1", "&", "{x 1 x}", "@", "fun", "fun x", "fun x :", "fun x : float -> x",
		"999999999999999999999999999",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("let x = 1 in\n  @")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("got %T, want *SyntaxError", err)
	}
	if se.Pos.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Pos.Line)
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error message %q should contain position", err.Error())
	}
}

func TestBlockCloserVsIdentifier(t *testing.T) {
	// "t" and "s" are usable as variables except immediately before '}'.
	e, err := Parse("let t = 1 in let s = 2 in t + s")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "(let t = 1 in (let s = 2 in (t + s)))" {
		t.Fatalf("got %s", got)
	}
	// A variable named t separated from '}' by whitespace is still an
	// identifier; only "t}" with no separation closes a block.
	e, err = Parse("{t t t}")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "{t t t}" {
		t.Fatalf("got %s", got)
	}
	if _, err := Parse("{t x t} }"); err == nil {
		t.Fatal("stray '}' should be rejected")
	}
}

func TestHelperConstructors(t *testing.T) {
	e := LetE("x", RefE(I(1)), Seq(AssignE(V("x"), I(2)), DerefE(V("x"))))
	want := "(let x = (ref 1) in (let _ = (x := 2) in (!x)))"
	if got := e.String(); got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
	reparsed, err := Parse(e.String())
	if err != nil {
		t.Fatalf("helper output should reparse: %v", err)
	}
	if reparsed.String() != want {
		t.Fatalf("reparse mismatch: %s", reparsed.String())
	}
}

func TestParseStringReparse(t *testing.T) {
	// Printing then reparsing is a fixed point for a broad set of
	// programs.
	srcs := []string{
		"{s let x = ref 1 in {t !x t} s}",
		"let multithreaded = true in {s if multithreaded then {t 1 t} else {t 2 t} s}",
		"{t 1 + {s if true then {t 5 t} else {t 0 t} s} t}",
		"not (1 = 2) && (3 = 3)",
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Fatalf("not a fixed point: %q vs %q", e1.String(), e2.String())
		}
	}
}
