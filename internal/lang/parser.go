package lang

import (
	"fmt"
	"strconv"
)

// Parse parses a core-language program. The grammar, from lowest to
// highest precedence:
//
//	expr   ::= "let" ident "=" expr "in" expr
//	         | "if" expr "then" expr "else" expr
//	         | "fun" ident ( ":" type )? "->" expr
//	         | assign
//	assign ::= conj ( ":=" assign )?            -- right associative
//	conj   ::= cmp ( "&&" cmp )*
//	cmp    ::= add ( ("=" | "<") add )?         -- non associative
//	add    ::= unary ( "+" unary )*
//	unary  ::= ("not" | "!" | "ref") unary | app
//	app    ::= atom atom*                       -- application, left assoc
//	atom   ::= int | "true" | "false" | ident
//	         | "(" expr ")" | "{t" expr "t}" | "{s" expr "s}"
//	type   ::= tprim ( "->" type )?             -- right associative
//	tprim  ::= ("int" | "bool" | "(" type ")") "ref"*
//
// Comments run from "--" to end of line.
func Parse(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", tokenNames[p.cur().kind])
	}
	return e, nil
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseType parses surface type syntax ("int", "bool ref",
// "int -> bool", ...).
func ParseType(src string) (TypeExpr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s after type", tokenNames[p.cur().kind])
	}
	return t, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{p.cur().pos, fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errorf("expected %s, found %s", tokenNames[k], tokenNames[p.cur().kind])
	}
	return p.advance(), nil
}

func (p *parser) parseExpr() (Expr, error) {
	switch p.cur().kind {
	case tokLet:
		pos := p.advance().pos
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		bound, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIn); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Let{base{pos}, name.text, bound, body}, nil
	case tokIf:
		pos := p.advance().pos
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokThen); err != nil {
			return nil, err
		}
		thn, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokElse); err != nil {
			return nil, err
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return If{base{pos}, cond, thn, els}, nil
	case tokFun:
		pos := p.advance().pos
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		var ann TypeExpr
		if p.cur().kind == tokColon {
			p.advance()
			// The annotation stops before "->" so the body separator
			// is unambiguous; arrow-typed parameters need parentheses:
			// fun f : (int -> bool) -> ...
			ann, err = p.parseTypePrim()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokArrow); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Fun{base{pos}, name.text, ann, body}, nil
	}
	return p.parseAssign()
}

// parseType parses surface type syntax (arrows right-associative,
// "ref" postfix).
func (p *parser) parseType() (TypeExpr, error) {
	prim, err := p.parseTypePrim()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokArrow {
		p.advance()
		ret, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return TyFun{prim, ret}, nil
	}
	return prim, nil
}

func (p *parser) parseTypePrim() (TypeExpr, error) {
	var t TypeExpr
	switch p.cur().kind {
	case tokIdent:
		switch p.cur().text {
		case "int":
			t = TyInt{}
		case "bool":
			t = TyBool{}
		default:
			return nil, p.errorf("expected type, found identifier %q", p.cur().text)
		}
		p.advance()
	case tokLParen:
		p.advance()
		inner, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		t = inner
	default:
		return nil, p.errorf("expected type, found %s", tokenNames[p.cur().kind])
	}
	for p.cur().kind == tokRef {
		p.advance()
		t = TyRef{t}
	}
	return t, nil
}

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokAssign {
		pos := p.advance().pos
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return Assign{base{pos}, lhs, rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseConj() (Expr, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAndAnd {
		pos := p.advance().pos
		rhs, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		lhs = And{base{pos}, lhs, rhs}
	}
	return lhs, nil
}

func (p *parser) parseCmp() (Expr, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokEq:
		pos := p.advance().pos
		rhs, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return Eq{base{pos}, lhs, rhs}, nil
	case tokLt:
		pos := p.advance().pos
		rhs, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return Lt{base{pos}, lhs, rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseAdd() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPlus {
		pos := p.advance().pos
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = Plus{base{pos}, lhs, rhs}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().kind {
	case tokNot:
		pos := p.advance().pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{base{pos}, x}, nil
	case tokBang:
		pos := p.advance().pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Deref{base{pos}, x}, nil
	case tokRef:
		pos := p.advance().pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Ref{base{pos}, x}, nil
	}
	return p.parseApp()
}

// parseApp parses left-associative application by juxtaposition.
func (p *parser) parseApp() (Expr, error) {
	f, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.atAtomStart() {
		arg, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		f = App{base{f.Pos()}, f, arg}
	}
	return f, nil
}

// atAtomStart reports whether the current token can begin an atom
// (used to detect application arguments).
func (p *parser) atAtomStart() bool {
	switch p.cur().kind {
	case tokInt, tokTrue, tokFalse, tokIdent, tokLParen, tokLBraceT, tokLBraceS:
		return true
	}
	return false
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{t.pos, "integer literal out of range"}
		}
		return IntLit{base{t.pos}, v}, nil
	case tokTrue:
		p.advance()
		return BoolLit{base{t.pos}, true}, nil
	case tokFalse:
		p.advance()
		return BoolLit{base{t.pos}, false}, nil
	case tokIdent:
		p.advance()
		return Var{base{t.pos}, t.text}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBraceT:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBraceT); err != nil {
			return nil, err
		}
		return TypedBlock{base{t.pos}, e}, nil
	case tokLBraceS:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBraceS); err != nil {
			return nil, err
		}
		return SymBlock{base{t.pos}, e}, nil
	}
	return nil, p.errorf("expected expression, found %s", tokenNames[t.kind])
}
