package lang

import (
	"fmt"
	"unicode"
)

// tokenKind enumerates lexical token kinds of the core language.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokInt
	tokIdent
	tokLet     // let
	tokIn      // in
	tokIf      // if
	tokThen    // then
	tokElse    // else
	tokRef     // ref
	tokNot     // not
	tokTrue    // true
	tokFalse   // false
	tokPlus    // +
	tokEq      // =
	tokLt      // <
	tokAndAnd  // &&
	tokBang    // !
	tokAssign  // :=
	tokColon   // :
	tokArrow   // ->
	tokFun     // fun
	tokLParen  // (
	tokRParen  // )
	tokLBraceT // {t
	tokRBraceT // t}
	tokLBraceS // {s
	tokRBraceS // s}
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of input", tokInt: "integer", tokIdent: "identifier",
	tokLet: "'let'", tokIn: "'in'", tokIf: "'if'", tokThen: "'then'",
	tokElse: "'else'", tokRef: "'ref'", tokNot: "'not'", tokTrue: "'true'",
	tokFalse: "'false'", tokPlus: "'+'", tokEq: "'='", tokLt: "'<'",
	tokAndAnd: "'&&'", tokBang: "'!'", tokAssign: "':='", tokColon: "':'",
	tokArrow: "'->'", tokFun: "'fun'", tokLParen: "'('", tokRParen: "')'",
	tokLBraceT: "'{t'", tokRBraceT: "'t}'", tokLBraceS: "'{s'", tokRBraceS: "'s}'",
}

type token struct {
	kind tokenKind
	text string
	pos  Pos
}

var keywords = map[string]tokenKind{
	"let": tokLet, "in": tokIn, "if": tokIf, "then": tokThen,
	"else": tokElse, "ref": tokRef, "not": tokNot,
	"true": tokTrue, "false": tokFalse, "fun": tokFun,
}

// SyntaxError reports a lexical or parse error with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg)
}

type lexer struct {
	src  []rune
	i    int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) peek() rune {
	if l.i >= len(l.src) {
		return 0
	}
	return l.src[l.i]
}

func (l *lexer) peekAt(off int) rune {
	if l.i+off >= len(l.src) {
		return 0
	}
	return l.src[l.i+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.i]
	l.i++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) pos() Pos { return Pos{l.line, l.col} }

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentRune(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// next returns the next token. Comments run from "--" to end of line.
func (l *lexer) next() (token, error) {
	for l.i < len(l.src) {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '-' && l.peekAt(1) == '-' && l.peekAt(2) != '>':
			for l.i < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			goto lexeme
		}
	}
	return token{kind: tokEOF, pos: l.pos()}, nil

lexeme:
	p := l.pos()
	r := l.peek()
	switch {
	case unicode.IsDigit(r), r == '-' && unicode.IsDigit(l.peekAt(1)):
		start := l.i
		l.advance() // first digit or the '-' sign
		for l.i < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		return token{tokInt, string(l.src[start:l.i]), p}, nil
	case isIdentStart(r):
		start := l.i
		for l.i < len(l.src) && isIdentRune(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.i])
		// Block closers: the identifier "t" or "s" immediately followed
		// by '}' closes a block.
		if l.peek() == '}' && (text == "t" || text == "s") {
			l.advance()
			if text == "t" {
				return token{tokRBraceT, "t}", p}, nil
			}
			return token{tokRBraceS, "s}", p}, nil
		}
		if kw, ok := keywords[text]; ok {
			return token{kw, text, p}, nil
		}
		return token{tokIdent, text, p}, nil
	}
	switch r {
	case '+':
		l.advance()
		return token{tokPlus, "+", p}, nil
	case '=':
		l.advance()
		return token{tokEq, "=", p}, nil
	case '<':
		l.advance()
		return token{tokLt, "<", p}, nil
	case '-':
		l.advance()
		if l.peek() != '>' {
			return token{}, &SyntaxError{p, "expected '->'"}
		}
		l.advance()
		return token{tokArrow, "->", p}, nil
	case '!':
		l.advance()
		return token{tokBang, "!", p}, nil
	case '(':
		l.advance()
		return token{tokLParen, "(", p}, nil
	case ')':
		l.advance()
		return token{tokRParen, ")", p}, nil
	case '&':
		l.advance()
		if l.peek() != '&' {
			return token{}, &SyntaxError{p, "expected '&&'"}
		}
		l.advance()
		return token{tokAndAnd, "&&", p}, nil
	case ':':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokAssign, ":=", p}, nil
		}
		return token{tokColon, ":", p}, nil
	case '{':
		l.advance()
		switch l.peek() {
		case 't':
			l.advance()
			return token{tokLBraceT, "{t", p}, nil
		case 's':
			l.advance()
			return token{tokLBraceS, "{s", p}, nil
		}
		return token{}, &SyntaxError{p, "expected '{t' or '{s'"}
	}
	return token{}, &SyntaxError{p, fmt.Sprintf("unexpected character %q", r)}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
