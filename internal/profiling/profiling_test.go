package profiling

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"mix/internal/obs"
)

// TestMetricsHandler pins the /metrics contract: the obs registry's
// JSON snapshot, refreshed by the collect hook on every scrape.
func TestMetricsHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.requests").Add(3)
	var scrapes atomic.Int64
	h := MetricsHandler(reg, func() {
		reg.Gauge("cache.entries").Set(scrapes.Add(1))
	})

	for want := int64(1); want <= 2; want++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
			t.Fatalf("scrape %d: code=%d type=%q", want, rec.Code, rec.Header().Get("Content-Type"))
		}
		var snap obs.MetricsSnapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("scrape %d: %v", want, err)
		}
		if snap.SchemaVersion != obs.MetricsSchemaVersion {
			t.Fatalf("schema_version = %d", snap.SchemaVersion)
		}
		got := map[string]int64{}
		for _, m := range snap.Metrics {
			got[m.Name] = m.Value
		}
		if got["serve.requests"] != 3 || got["cache.entries"] != want {
			t.Fatalf("scrape %d: metrics = %v (collect hook not run per scrape?)", want, got)
		}
	}
}

// TestHealthzHandler pins the readiness flip: 200 while serving, 503
// once draining.
func TestHealthzHandler(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	h := HealthzHandler(ready.Load)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Fatalf("ready: code=%d body=%q", rec.Code, rec.Body.String())
	}

	ready.Store(false)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 || rec.Body.String() != "draining\n" {
		t.Fatalf("draining: code=%d body=%q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	HealthzHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil ready: code=%d", rec.Code)
	}
}

// TestMetricsHandlerPrometheusFormat pins the format dispatch: the
// same handler answers ?format=prometheus in the text exposition
// format — content type, HELP/TYPE lines, and the collect hook still
// refreshing gauges per scrape.
func TestMetricsHandlerPrometheusFormat(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.requests").Add(3)
	var scrapes atomic.Int64
	h := MetricsHandler(reg, func() {
		reg.Gauge("cache.entries").Set(scrapes.Add(1))
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != obs.PromContentType {
		t.Fatalf("code=%d type=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP serve_requests mix metric serve.requests\n",
		"# TYPE serve_requests counter\n",
		"serve_requests 3\n",
		"cache_entries 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// An unknown format value falls back to the JSON schema.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=xml", nil))
	if rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("unknown format type = %q, want JSON fallback", rec.Header().Get("Content-Type"))
	}
}

// TestPromHandler pins the dedicated exposition handler.
func TestPromHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("lat.ns").Observe(300)
	rec := httptest.NewRecorder()
	PromHandler(reg, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != obs.PromContentType {
		t.Fatalf("code=%d type=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	for _, want := range []string{
		"# TYPE lat_ns histogram\n",
		"lat_ns_bucket{le=\"511\"} 1\n",
		"lat_ns_bucket{le=\"+Inf\"} 1\n",
		"lat_ns_sum 300\n",
		"lat_ns_count 1\n",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, rec.Body.String())
		}
	}
}
