// Package profiling is the net/http side of the observability layer:
// a net/http/pprof debug server for the CLIs (-pprof), HTTP handlers
// exposing an obs.Registry (/metrics) and a readiness probe
// (/healthz) for the serving daemon, and file-based CPU/heap capture
// for the benchmark driver (-cpuprofile/-memprofile). It is a separate
// package from internal/obs so that importing the metrics/tracing
// substrate does not link net/http into every binary.
package profiling

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"

	"mix/internal/obs"
)

// MetricsHandler serves reg as a metrics snapshot: the obs JSON schema
// by default — the same document the CLIs print under -metrics, so one
// schema covers files, pipes, and scrapes — or the Prometheus text
// exposition format with ?format=prometheus. collect, when non-nil,
// runs before each snapshot so the owner can refresh gauges that are
// computed on demand (cache sizes, in-flight counts) rather than
// maintained continuously.
func MetricsHandler(reg *obs.Registry, collect func()) http.Handler {
	prom := PromHandler(reg, collect)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			prom.ServeHTTP(w, r)
			return
		}
		if collect != nil {
			collect()
		}
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			// Headers are already out; nothing useful left to send.
			return
		}
	})
}

// PromHandler serves reg in the Prometheus text exposition format
// (0.0.4) unconditionally — the handler to mount when a deployment
// wants a dedicated scrape path rather than the format query.
func PromHandler(reg *obs.Registry, collect func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if collect != nil {
			collect()
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = reg.WriteProm(w)
	})
}

// HealthzHandler serves a readiness probe: 200 "ok" while ready
// reports true, 503 "draining" once it stops — the signal a load
// balancer uses to stop routing to a draining instance. A nil ready
// means always ready.
func HealthzHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
}

// Serve starts the pprof debug server on addr (e.g. "localhost:6060")
// in a background goroutine and returns the bound address, so addr
// may use port 0. The server lives for the rest of the process.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln.Addr().String(), nil
}

// StartCPUProfile begins a CPU profile into path; the returned stop
// function flushes and closes it.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile into path after forcing a
// GC, so the profile reflects live objects rather than garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
