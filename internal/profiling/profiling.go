// Package profiling is the run-time profiling side of the
// observability layer: a net/http/pprof debug server for the CLIs
// (-pprof) and file-based CPU/heap capture for the benchmark driver
// (-cpuprofile/-memprofile). It is a separate package from
// internal/obs so that importing the metrics/tracing substrate does
// not link net/http into every binary.
package profiling

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Serve starts the pprof debug server on addr (e.g. "localhost:6060")
// in a background goroutine and returns the bound address, so addr
// may use port 0. The server lives for the rest of the process.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln.Addr().String(), nil
}

// StartCPUProfile begins a CPU profile into path; the returned stop
// function flushes and closes it.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile into path after forcing a
// GC, so the profile reflects live objects rather than garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
