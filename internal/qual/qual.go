// Package qual implements MIXY's flow-insensitive null/nonnull type
// qualifier inference — a reimplementation, for MicroC, of the
// CilQual system the paper builds on (Foster et al. 2006, Section 4).
//
// Every pointer level of every declared variable, parameter, field,
// and function return gets a qualifier variable. Uses of NULL
// introduce null sources; `nonnull` annotations introduce sinks.
// Assignments generate directed flow edges at the outermost pointer
// level and unification at deeper levels; calls bind arguments to
// parameters context-insensitively. Solving is reachability: a warning
// is issued for every nonnull sink reachable from a null source, with
// the witness path recorded.
//
// The inference is deliberately monotone: MIXY's fixed-point loop
// (Section 4.1) adds constraints discovered by symbolic blocks and
// re-solves; starting from optimistic assumptions (nothing is null)
// and only ever adding nullness makes the loop a least fixed point.
package qual

import (
	"fmt"
	"sort"

	"mix/internal/microc"
)

// QVar is a qualifier variable (one pointer level of one position).
type QVar struct {
	ID   int
	Desc string
	// Annotated nullness from the source, if any.
	Anno microc.Qual
}

func (q *QVar) String() string { return fmt.Sprintf("q%d(%s)", q.ID, q.Desc) }

// QType mirrors a MicroC type with a qualifier variable at each
// pointer level. Ptr is nil for non-pointer types.
type QType struct {
	Ptr  *QVar
	Elem *QType
}

// Warning reports a null value flowing to a nonnull position.
type Warning struct {
	Sink   *QVar
	Source *QVar
	// Reason describes the null source (e.g. "NULL at 3:12" or
	// "implicit zero initialization of g").
	Reason string
	// Path is the witness chain of qualifier variables from source to
	// sink.
	Path []*QVar
}

func (w Warning) String() string {
	s := fmt.Sprintf("null value may reach nonnull position %s", w.Sink.Desc)
	if len(w.Path) > 1 {
		s += " via"
		for _, q := range w.Path {
			s += " " + q.Desc + ";"
		}
	}
	if w.Reason != "" {
		s += " (source: " + w.Reason + ")"
	}
	return s
}

// edge is a directed flow edge with provenance.
type edge struct {
	to    int
	unify bool // unification edges propagate both ways (kept directed twice)
}

// Inference is the constraint system. Construct with New; add
// functions; Solve.
type Inference struct {
	Prog *microc.Program

	vars  []*QVar
	succs [][]edge

	// declared positions
	varQ     map[*microc.VarDecl]*QType
	retQ     map[*microc.FuncDef]*QType
	siteQ    map[int]*QType // malloc site cell contents
	analyzed map[*microc.FuncDef]bool

	// null sources: var id → reason description.
	nullSrc map[int]string
	// nonnull sinks: var id → reason.
	sinks map[int]string

	// solved state
	nullReach map[int]int // reached var id → predecessor var id (or -1)
	solved    bool
}

// New builds an empty inference for prog, declaring qualifier
// variables for all globals, struct fields, and function signatures.
func New(prog *microc.Program) *Inference {
	inf := &Inference{
		Prog:     prog,
		varQ:     map[*microc.VarDecl]*QType{},
		retQ:     map[*microc.FuncDef]*QType{},
		siteQ:    map[int]*QType{},
		analyzed: map[*microc.FuncDef]bool{},
		nullSrc:  map[int]string{},
		sinks:    map[int]string{},
	}
	for _, g := range prog.Globals {
		inf.declQ(g)
	}
	for _, s := range prog.Structs {
		for _, f := range s.Fields {
			inf.declQ(f)
		}
	}
	for _, f := range prog.Funcs {
		for _, p := range f.Params {
			inf.declQ(p)
		}
		inf.retQ[f] = inf.newQType(f.Ret, f.Name+"::<ret>")
	}
	for _, g := range prog.Globals {
		if g.Init != nil {
			inf.subtype(inf.expr(g.Init), inf.declQ(g))
		}
	}
	return inf
}

// AddImplicitNullGlobals marks every uninitialized pointer global as a
// null source, reflecting C's zero initialization. The paper's MIXY
// tracks only explicit NULL uses, so this is off by default; the
// differential soundness oracle (internal/cgen) turns it on because
// the concrete semantics really does start those globals at null.
func (inf *Inference) AddImplicitNullGlobals() {
	for _, g := range inf.Prog.Globals {
		if g.Init != nil {
			continue
		}
		if q := inf.declQ(g).Ptr; q != nil && q.Anno != microc.QNonNull {
			if _, ok := inf.nullSrc[q.ID]; !ok {
				inf.nullSrc[q.ID] = "implicit zero initialization of " + g.Name
				inf.solved = false
			}
		}
	}
}

func (inf *Inference) fresh(desc string, anno microc.Qual) *QVar {
	q := &QVar{ID: len(inf.vars), Desc: desc, Anno: anno}
	inf.vars = append(inf.vars, q)
	inf.succs = append(inf.succs, nil)
	switch anno {
	case microc.QNull:
		inf.nullSrc[q.ID] = "null annotation on " + desc
	case microc.QNonNull:
		inf.sinks[q.ID] = "nonnull annotation on " + desc
	}
	return q
}

// newQType builds a QType skeleton for ty, honoring annotations.
func (inf *Inference) newQType(ty microc.Type, desc string) *QType {
	switch ty := ty.(type) {
	case microc.PtrType:
		elem := inf.newQType(ty.Elem, "*"+desc)
		return &QType{Ptr: inf.fresh(desc, ty.Qual), Elem: elem}
	case microc.FnPtrType:
		return &QType{Ptr: inf.fresh(desc, microc.QNone)}
	default:
		return &QType{}
	}
}

func (inf *Inference) declQ(d *microc.VarDecl) *QType {
	if q, ok := inf.varQ[d]; ok {
		return q
	}
	desc := d.Name
	if d.Owner != "" {
		desc = d.Owner + "::" + d.Name
	}
	q := inf.newQType(d.Type, desc)
	inf.varQ[d] = q
	return q
}

// VarQ returns the qualified type of a declaration.
func (inf *Inference) VarQ(d *microc.VarDecl) *QType { return inf.declQ(d) }

// RetQ returns the qualified return type of a function.
func (inf *Inference) RetQ(f *microc.FuncDef) *QType { return inf.retQ[f] }

// SiteQ returns the qualified type of a malloc site's cell.
func (inf *Inference) SiteQ(site int, elem microc.Type) *QType {
	if q, ok := inf.siteQ[site]; ok {
		return q
	}
	q := inf.newQType(elem, fmt.Sprintf("malloc#%d", site))
	inf.siteQ[site] = q
	return q
}

// flow adds a directed edge: nullness of src flows into dst.
func (inf *Inference) flow(src, dst *QVar) {
	if src == nil || dst == nil || src == dst {
		return
	}
	inf.succs[src.ID] = append(inf.succs[src.ID], edge{to: dst.ID})
	inf.solved = false
}

// Unify forces two qualifier variables equal (flow both ways).
func (inf *Inference) Unify(a, b *QVar) {
	if a == nil || b == nil || a == b {
		return
	}
	inf.succs[a.ID] = append(inf.succs[a.ID], edge{to: b.ID, unify: true})
	inf.succs[b.ID] = append(inf.succs[b.ID], edge{to: a.ID, unify: true})
	inf.solved = false
}

// unifyDeep unifies all pointer levels of two qualified types.
func (inf *Inference) unifyDeep(a, b *QType) {
	for a != nil && b != nil {
		inf.Unify(a.Ptr, b.Ptr)
		a, b = a.Elem, b.Elem
	}
}

// subtype makes a usable where b is expected: outer level flows, inner
// levels unify (standard pointer invariance).
func (inf *Inference) subtype(a, b *QType) {
	if a == nil || b == nil {
		return
	}
	inf.flow(a.Ptr, b.Ptr)
	inf.unifyDeep(a.Elem, b.Elem)
}

// ConstrainNull marks q as possibly null (used by MIXY when a symbolic
// block's result may be null). Reports whether this is new
// information, which drives the fixed-point loop.
func (inf *Inference) ConstrainNull(q *QVar, reason string) bool {
	if q == nil {
		return false
	}
	if _, ok := inf.nullSrc[q.ID]; ok {
		return false
	}
	inf.nullSrc[q.ID] = reason
	inf.solved = false
	return true
}

// MarkSink marks q as a nonnull-required position.
func (inf *Inference) MarkSink(q *QVar, reason string) {
	if q == nil {
		return
	}
	if _, ok := inf.sinks[q.ID]; !ok {
		inf.sinks[q.ID] = reason
		inf.solved = false
	}
}

// AddFunction generates constraints for a function body (idempotent).
func (inf *Inference) AddFunction(f *microc.FuncDef) {
	if inf.analyzed[f] || f.Body == nil {
		return
	}
	inf.analyzed[f] = true
	inf.stmt(f, f.Body)
}

// Analyzed reports whether constraints for f were generated.
func (inf *Inference) Analyzed(f *microc.FuncDef) bool { return inf.analyzed[f] }

func (inf *Inference) stmt(fn *microc.FuncDef, s microc.Stmt) {
	switch s := s.(type) {
	case *microc.BlockStmt:
		for _, inner := range s.Stmts {
			inf.stmt(fn, inner)
		}
	case *microc.DeclStmt:
		q := inf.declQ(s.Decl)
		if s.Decl.Init != nil {
			iq := inf.expr(s.Decl.Init)
			inf.subtype(iq, q)
		}
	case *microc.ExprStmt:
		inf.expr(s.X)
	case *microc.IfStmt:
		inf.expr(s.Cond)
		inf.stmt(fn, s.Then)
		if s.Else != nil {
			inf.stmt(fn, s.Else)
		}
	case *microc.WhileStmt:
		inf.expr(s.Cond)
		inf.stmt(fn, s.Body)
	case *microc.ReturnStmt:
		if s.X != nil {
			inf.subtype(inf.expr(s.X), inf.retQ[fn])
		}
	}
}

// expr generates constraints and returns the qualified type of e.
func (inf *Inference) expr(e microc.Expr) *QType {
	switch e := e.(type) {
	case *microc.IntLit:
		return &QType{}
	case *microc.NullLit:
		q := inf.fresh(fmt.Sprintf("NULL@%s", e.ExprPos()), microc.QNone)
		inf.nullSrc[q.ID] = fmt.Sprintf("NULL at %s", e.ExprPos())
		inf.solved = false
		return &QType{Ptr: q, Elem: &QType{}}
	case *microc.VarRef:
		switch ref := e.Ref.(type) {
		case *microc.VarDecl:
			return inf.declQ(ref)
		case *microc.FuncDef:
			// A function name used as a value: a nonnull fnptr.
			return &QType{Ptr: inf.fresh("&"+ref.Name, microc.QNone)}
		}
		return &QType{}
	case *microc.Unary:
		xq := inf.expr(e.X)
		switch e.Op {
		case microc.OpDeref:
			if xq.Elem != nil {
				return xq.Elem
			}
			return &QType{}
		case microc.OpAddr:
			// &x is never null; its element is x's qualified type.
			return &QType{Ptr: inf.fresh(fmt.Sprintf("&@%s", e.ExprPos()), microc.QNone), Elem: xq}
		default:
			return &QType{}
		}
	case *microc.Binary:
		inf.expr(e.X)
		inf.expr(e.Y)
		return &QType{}
	case *microc.Assign:
		rq := inf.expr(e.RHS)
		lq := inf.expr(e.LHS)
		inf.subtype(rq, lq)
		return lq
	case *microc.Call:
		return inf.call(e)
	case *microc.Field:
		inf.expr(e.X)
		if sn, fld, ok := fieldQOf(e); ok {
			if sd, found := inf.Prog.Struct(sn); found {
				if fd, found := sd.Field(fld); found {
					return inf.declQ(fd)
				}
			}
		}
		return &QType{}
	case *microc.Malloc:
		// malloc yields a non-null pointer to a fresh cell.
		return &QType{
			Ptr:  inf.fresh(fmt.Sprintf("malloc@%s", e.ExprPos()), microc.QNone),
			Elem: inf.SiteQ(e.Site, e.ElemType),
		}
	case *microc.Cast:
		// Casts are qualifier-transparent at the top level.
		xq := inf.expr(e.X)
		return xq
	}
	return &QType{}
}

func fieldQOf(e *microc.Field) (string, string, bool) {
	xt := e.X.StaticType()
	if e.Arrow {
		if pt, ok := xt.(microc.PtrType); ok {
			if st, ok := pt.Elem.(microc.StructType); ok {
				return st.Name, e.Name, true
			}
		}
		return "", "", false
	}
	if st, ok := xt.(microc.StructType); ok {
		return st.Name, e.Name, true
	}
	return "", "", false
}

// call binds arguments to parameters and returns the result type.
// Context-insensitive: all call sites share the callee's variables.
func (inf *Inference) call(e *microc.Call) *QType {
	var callee *microc.FuncDef
	if vr, ok := e.Fun.(*microc.VarRef); ok {
		if f, isFunc := vr.Ref.(*microc.FuncDef); isFunc {
			callee = f
		}
	}
	if callee == nil {
		// Indirect call: arguments still evaluated; result unknown.
		for _, a := range e.Args {
			inf.expr(a)
		}
		return &QType{}
	}
	for i, a := range e.Args {
		aq := inf.expr(a)
		if i < len(callee.Params) {
			inf.subtype(aq, inf.declQ(callee.Params[i]))
		}
	}
	return inf.retQ[callee]
}

// Solve propagates nullness and returns warnings — one per
// (null source, nonnull sink) flow, with a witness path (the paper's
// "imprecise qualifier flows").
func (inf *Inference) Solve() []Warning {
	if !inf.solved {
		// Union reachability for IsNull/QualOf queries.
		inf.nullReach = map[int]int{}
		var queue []int
		for id := range inf.nullSrc {
			inf.nullReach[id] = -1
			queue = append(queue, id)
		}
		sort.Ints(queue) // determinism
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, ed := range inf.succs[n] {
				if _, seen := inf.nullReach[ed.to]; !seen {
					inf.nullReach[ed.to] = n
					queue = append(queue, ed.to)
				}
			}
		}
		inf.solved = true
	}
	var srcIDs []int
	for id := range inf.nullSrc {
		srcIDs = append(srcIDs, id)
	}
	sort.Ints(srcIDs)
	var sinkIDs []int
	for id := range inf.sinks {
		sinkIDs = append(sinkIDs, id)
	}
	sort.Ints(sinkIDs)

	var out []Warning
	for _, src := range srcIDs {
		// Per-source BFS with predecessors for witness paths.
		pred := map[int]int{src: -1}
		queue := []int{src}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, ed := range inf.succs[n] {
				if _, seen := pred[ed.to]; !seen {
					pred[ed.to] = n
					queue = append(queue, ed.to)
				}
			}
		}
		for _, sink := range sinkIDs {
			if _, reached := pred[sink]; !reached {
				continue
			}
			w := Warning{Sink: inf.vars[sink], Source: inf.vars[src], Reason: inf.nullSrc[src]}
			for cur := sink; cur != -1; cur = pred[cur] {
				w.Path = append([]*QVar{inf.vars[cur]}, w.Path...)
			}
			out = append(out, w)
		}
	}
	return out
}

// IsNull reports whether q may be null in the current solution
// (solving first if needed).
func (inf *Inference) IsNull(q *QVar) bool {
	if q == nil {
		return false
	}
	inf.Solve()
	_, reached := inf.nullReach[q.ID]
	return reached
}

// QualOf returns the solved qualifier of q: null if reachable from a
// null source, otherwise nonnull (the optimistic assumption of
// Section 4.1).
func (inf *Inference) QualOf(q *QVar) microc.Qual {
	if q == nil {
		return microc.QNone
	}
	if q.Anno == microc.QNonNull {
		return microc.QNonNull
	}
	if inf.IsNull(q) {
		return microc.QNull
	}
	return microc.QNonNull
}
