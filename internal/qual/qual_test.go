package qual

import (
	"strings"
	"testing"

	"mix/internal/microc"
)

// inferAll builds an inference over all functions and solves.
func inferAll(t *testing.T, src string) (*Inference, []Warning) {
	t.Helper()
	prog := mustParse(src)
	inf := New(prog)
	for _, f := range prog.Funcs {
		inf.AddFunction(f)
	}
	return inf, inf.Solve()
}

func TestPaperSection4Example(t *testing.T) {
	// The free/id/x/y example from Section 4: null flows through id
	// into free's nonnull parameter.
	_, warnings := inferAll(t, `
void free_(int *nonnull x);
int *id(int *p) { return p; }
int *x = NULL;
void main_(void) {
  int *y = id(x);
  free_(y);
}
`)
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want exactly 1", warnings)
	}
	if !strings.Contains(warnings[0].String(), "free_::x") {
		t.Fatalf("warning should implicate free_'s parameter: %s", warnings[0])
	}
	if len(warnings[0].Path) < 3 {
		t.Fatalf("witness path too short: %v", warnings[0].Path)
	}
}

func TestNoWarningWithoutNull(t *testing.T) {
	_, warnings := inferAll(t, `
void free_(int *nonnull x);
void main_(void) {
  int *y = malloc(sizeof(int));
  free_(y);
}
`)
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
}

func TestFlowInsensitivity(t *testing.T) {
	// The null assignment happens after the call, but flow-insensitive
	// inference conflates program order: this is the false positive
	// MIXY exists to remove (Case 1 shape).
	_, warnings := inferAll(t, `
void free_(int *nonnull x);
void f(int *p) {
  free_(p);
  p = NULL;
}
`)
	if len(warnings) != 1 {
		t.Fatalf("flow-insensitive inference should warn: %v", warnings)
	}
}

func TestPathInsensitivity(t *testing.T) {
	// The null check is invisible to the type system.
	_, warnings := inferAll(t, `
void free_(int *nonnull x);
void f(int *p) {
  p = NULL;
  if (p != NULL) free_(p);
}
`)
	if len(warnings) != 1 {
		t.Fatalf("path-insensitive inference should warn: %v", warnings)
	}
}

func TestContextInsensitiveConflation(t *testing.T) {
	// Case 2 shape: a null return conflates all callers' results.
	_, warnings := inferAll(t, `
void sink(int *nonnull x);
int *maybe(void) { return NULL; }
int *fine(void) { return malloc(sizeof(int)); }
void f(void) {
  int *a = maybe();
  int *b = fine();
  if (a != NULL) sink(a);
  sink(b);
}
`)
	// a's nullness reaches sink (path-insensitive); b is fine but a's
	// flow already warns. Exactly one sink, so one warning.
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestDeepPointerLevels(t *testing.T) {
	// Unification at inner levels: storing NULL through a double
	// pointer taints the pointee level.
	inf, warnings := inferAll(t, `
void sink(int *nonnull x);
void f(int **pp, int *q) {
  *pp = NULL;
  sink(q);
}
void g(int **pp, int *q) {
  pp = &q;       // unifies *pp with q
  *pp = NULL;
  sink(q);
}
`)
	_ = inf
	// In f, q and *pp are unrelated: no warning path to sink via q?
	// Actually sink(q) has no null flow in f; in g the unification
	// routes NULL into q. Expect exactly 1 warning.
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want 1 (from g only)", warnings)
	}
}

func TestStructFieldsConflatePerField(t *testing.T) {
	_, warnings := inferAll(t, `
struct s { int *p; };
void sink(int *nonnull x);
void store(struct s *a) { a->p = NULL; }
void load(struct s *b) { sink(b->p); }
`)
	if len(warnings) != 1 {
		t.Fatalf("field-based conflation should warn: %v", warnings)
	}
}

func TestGlobalInitializer(t *testing.T) {
	_, warnings := inferAll(t, `
void sink(int *nonnull x);
int *g = NULL;
void f(void) { sink(g); }
`)
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestNullAnnotationIsSource(t *testing.T) {
	_, warnings := inferAll(t, `
void sink(int *nonnull x);
int *null g;
void f(void) { sink(g); }
`)
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestQualOfOptimism(t *testing.T) {
	prog := mustParse(`
int *a = NULL;
int *b;
`)
	inf := New(prog)
	a, _ := prog.Global("a")
	b, _ := prog.Global("b")
	if got := inf.QualOf(inf.VarQ(a).Ptr); got != microc.QNull {
		t.Fatalf("QualOf(a) = %v, want null", got)
	}
	// Unconstrained: optimistically nonnull (Section 4.1).
	if got := inf.QualOf(inf.VarQ(b).Ptr); got != microc.QNonNull {
		t.Fatalf("QualOf(b) = %v, want optimistic nonnull", got)
	}
}

func TestConstrainNullDrivesFixedPoint(t *testing.T) {
	prog := mustParse(`
void sink(int *nonnull x);
int *g;
void f(void) { sink(g); }
`)
	inf := New(prog)
	for _, f := range prog.Funcs {
		inf.AddFunction(f)
	}
	if w := inf.Solve(); len(w) != 0 {
		t.Fatalf("no warning before constraint: %v", w)
	}
	g, _ := prog.Global("g")
	if fresh := inf.ConstrainNull(inf.VarQ(g).Ptr, "symbolic block found g maybe-null"); !fresh {
		t.Fatal("first ConstrainNull should report new information")
	}
	if w := inf.Solve(); len(w) != 1 {
		t.Fatalf("warning expected after constraint: %v", w)
	}
	if fresh := inf.ConstrainNull(inf.VarQ(g).Ptr, "again"); fresh {
		t.Fatal("second ConstrainNull must be idempotent (fixed point termination)")
	}
}

func TestUnifyPropagatesBothWays(t *testing.T) {
	prog := mustParse(`
int *a = NULL;
int *b;
`)
	inf := New(prog)
	a, _ := prog.Global("a")
	b, _ := prog.Global("b")
	inf.Unify(inf.VarQ(a).Ptr, inf.VarQ(b).Ptr)
	if !inf.IsNull(inf.VarQ(b).Ptr) {
		t.Fatal("unification should carry nullness to b")
	}
}

func TestAddFunctionIdempotent(t *testing.T) {
	prog := mustParse(`
int *g = NULL;
void f(void) { g = NULL; }
`)
	inf := New(prog)
	f, _ := prog.Func("f")
	inf.AddFunction(f)
	n := len(inf.vars)
	inf.AddFunction(f)
	if len(inf.vars) != n {
		t.Fatal("re-adding a function must not duplicate constraints")
	}
}

func TestMallocSiteSharing(t *testing.T) {
	prog := mustParse(`
int **cell;
void f(void) { cell = malloc(sizeof(int *)); }
`)
	inf := New(prog)
	q1 := inf.SiteQ(1, microc.PtrType{Elem: microc.IntType{}})
	q2 := inf.SiteQ(1, microc.PtrType{Elem: microc.IntType{}})
	if q1 != q2 {
		t.Fatal("same site must share one qualified type")
	}
}

// mustParse parses a MicroC test fixture, panicking on error; the
// library itself reports parse errors through the normal return path,
// fixtures are expected to be valid.
func mustParse(src string) *microc.Program {
	prog, err := microc.Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
