package cexec

import (
	"errors"
	"testing"

	"mix/internal/corpus"
	"mix/internal/microc"
)

func runMain(t *testing.T, src string, seed int64) (Value, error) {
	t.Helper()
	prog := mustParse(src)
	return New(prog, seed).Run("main")
}

func wantIntResult(t *testing.T, src string, want int64) {
	t.Helper()
	v, err := runMain(t, src, 1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	i, ok := v.(CInt)
	if !ok || i.V != want {
		t.Fatalf("got %v, want %d", v, want)
	}
}

func TestArithmeticAndControl(t *testing.T) {
	wantIntResult(t, `
int main(void) {
  int a = 2;
  int b = 3;
  if (a < b) return a + b;
  return 0;
}`, 5)
	wantIntResult(t, `
int main(void) {
  int acc = 0;
  int i = 0;
  while (i < 5) { acc = acc + i; i = i + 1; }
  return acc;
}`, 10)
	wantIntResult(t, `
int main(void) { return -3 + 4 - 1; }`, 0)
	wantIntResult(t, `
int main(void) { return 1 == 1 && 2 != 3; }`, 1)
}

func TestPointersAndStructs(t *testing.T) {
	wantIntResult(t, `
struct pair { int a; int b; };
int main(void) {
  struct pair *p = malloc(sizeof(struct pair));
  p->a = 4;
  p->b = 5;
  return p->a + p->b;
}`, 9)
	wantIntResult(t, `
int main(void) {
  int x = 1;
  int *p = &x;
  *p = 42;
  return x;
}`, 42)
}

func TestGlobalsZeroInitialized(t *testing.T) {
	wantIntResult(t, `
int g;
int main(void) { return g; }`, 0)
	// A zero-initialized global pointer is null: dereferencing crashes.
	_, err := runMain(t, `
int *gp;
int main(void) { return *gp; }`, 1)
	if !errors.Is(err, ErrNullDeref) {
		t.Fatalf("got %v, want null deref", err)
	}
}

func TestNullDerefDetected(t *testing.T) {
	_, err := runMain(t, `
int main(void) {
  int *p = NULL;
  return *p;
}`, 1)
	if !errors.Is(err, ErrNullDeref) {
		t.Fatalf("got %v", err)
	}
}

func TestNonNullParamViolation(t *testing.T) {
	_, err := runMain(t, `
void sink(int *nonnull q) { return; }
int main(void) {
  sink(NULL);
  return 0;
}`, 1)
	if !errors.Is(err, ErrNullDeref) {
		t.Fatalf("nonnull violation should be a runtime error, got %v", err)
	}
}

func TestGuardedCallIsSafe(t *testing.T) {
	v, err := runMain(t, `
void sink(int *nonnull q) { return; }
int *g;
int main(void) {
  if (g != NULL) sink(g);
  return 7;
}`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.(CInt).V != 7 {
		t.Fatalf("got %v", v)
	}
}

func TestFunctionPointers(t *testing.T) {
	wantIntResult(t, `
int flag;
void set(void) { flag = 9; }
fnptr cb;
int main(void) {
  cb = set;
  (*cb)();
  return flag;
}`, 9)
	// Calling a null fnptr crashes.
	_, err := runMain(t, `
fnptr cb;
int main(void) { (*cb)(); return 0; }`, 1)
	if !errors.Is(err, ErrNullDeref) {
		t.Fatalf("got %v", err)
	}
}

func TestExternRandomized(t *testing.T) {
	// Extern results vary by seed but are deterministic per seed.
	src := `
int *getp(void);
int main(void) {
  int *p = getp();
  if (p == NULL) return 0;
  return 1;
}`
	a1, err1 := runMain(t, src, 5)
	a2, err2 := runMain(t, src, 5)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a1.(CInt).V != a2.(CInt).V {
		t.Fatal("same seed must replay identically")
	}
}

func TestInfiniteLoopHitsFuel(t *testing.T) {
	prog := mustParse(`
int main(void) { while (1) { } return 0; }`)
	ip := New(prog, 1)
	ip.Fuel = 1000
	_, err := ip.Run("main")
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("got %v", err)
	}
}

func TestRecursion(t *testing.T) {
	wantIntResult(t, `
int tri(int n) {
  if (n < 1) return 0;
  return n + tri(n - 1);
}
int main(void) { return tri(4); }`, 10)
}

// TestCorpusCasesNeverCrash is the MIXY soundness differential: the
// four case-study programs are warning-free under MIXY, so no concrete
// execution (across seeds) may hit a null dereference.
func TestCorpusCasesNeverCrash(t *testing.T) {
	for _, c := range corpus.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			prog := mustParse(c.Source)
			for seed := int64(0); seed < 25; seed++ {
				ip := New(prog, seed)
				if _, err := ip.Run(c.Entry); err != nil {
					if errors.Is(err, ErrFuel) {
						continue
					}
					t.Fatalf("seed %d: MIXY-clean program crashed: %v", seed, err)
				}
			}
		})
	}
}

// TestVsftpdMiniNeverCrashes extends the differential to the combined
// program: its residual MIXY warnings are false positives, so concrete
// runs must still be clean.
func TestVsftpdMiniNeverCrashes(t *testing.T) {
	prog := mustParse(corpus.VsftpdMini.Source)
	for seed := int64(0); seed < 25; seed++ {
		ip := New(prog, seed)
		if _, err := ip.Run("main"); err != nil && !errors.Is(err, ErrFuel) {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCrashImpliesSymexecReport: a program with a real null deref must
// be flagged by the symbolic executor (completeness spot-check; see
// symexec tests for the analysis side).
func TestSeededBugCrashes(t *testing.T) {
	src := `
void sysutil_free(void *nonnull p_ptr) { return; }
struct sockaddr { int family; };
struct sockaddr *g_sock;
void buggy_clear(struct sockaddr **p_sock) {
  sysutil_free(*p_sock);  /* no null check: the real bug */
  *p_sock = NULL;
}
int main(void) {
  buggy_clear(&g_sock);
  return 0;
}`
	// g_sock is zero-initialized, so the very first run crashes.
	_, err := runMain(t, src, 1)
	if !errors.Is(err, ErrNullDeref) {
		t.Fatalf("got %v, want crash", err)
	}
}

// mustParse parses a MicroC test fixture, panicking on error; the
// library itself reports parse errors through the normal return path,
// fixtures are expected to be valid.
func mustParse(src string) *microc.Program {
	prog, err := microc.Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
