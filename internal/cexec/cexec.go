// Package cexec is a concrete interpreter for MicroC — the C-side
// analogue of internal/concrete. It serves as ground truth for
// differential testing of the MIXY analyses: a run that dereferences
// null raises a runtime error, so
//
//   - any program MIXY reports clean should never crash concretely
//     (soundness direction), and
//   - a program that crashes concretely must be flagged by the
//     symbolic executor (completeness spot-checks).
//
// Nondeterminism (extern calls, uninitialized locals) is resolved by a
// seeded deterministic RNG so failures replay.
package cexec

import (
	"errors"
	"fmt"
	"math/rand"

	"mix/internal/microc"
)

// Value is a concrete MicroC value.
type Value interface {
	isValue()
	String() string
}

// CInt is an integer.
type CInt struct{ V int64 }

// CNull is the null pointer.
type CNull struct{}

// CPtr points to one cell of an object.
type CPtr struct {
	Obj   *Obj
	Field string
}

// CFn is a function pointer.
type CFn struct{ F *microc.FuncDef }

func (CInt) isValue()  {}
func (CNull) isValue() {}
func (CPtr) isValue()  {}
func (CFn) isValue()   {}

func (v CInt) String() string { return fmt.Sprintf("%d", v.V) }
func (CNull) String() string  { return "NULL" }
func (v CPtr) String() string {
	if v.Field == "" {
		return "&" + v.Obj.Name
	}
	return "&" + v.Obj.Name + "." + v.Field
}
func (v CFn) String() string { return "&" + v.F.Name }

// Obj is a concrete memory object with named cells ("" = scalar).
type Obj struct {
	Name  string
	Cells map[string]Value
}

// RuntimeError is a concrete failure (null dereference, bad call).
type RuntimeError struct {
	Pos microc.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg)
}

// ErrNullDeref tags null dereferences for errors.Is.
var ErrNullDeref = errors.New("null dereference")

// NullDerefError is a null dereference at a position.
type NullDerefError struct{ Pos microc.Pos }

func (e *NullDerefError) Error() string {
	return fmt.Sprintf("%s: runtime error: null dereference", e.Pos)
}

func (e *NullDerefError) Unwrap() error { return ErrNullDeref }

// ErrFuel is returned when execution exceeds its step budget.
var ErrFuel = errors.New("cexec: out of fuel")

// Interp runs MicroC programs concretely.
type Interp struct {
	Prog *microc.Program
	// Fuel bounds execution steps.
	Fuel int
	rng  *rand.Rand

	globals map[*microc.VarDecl]*Obj
	locals  []map[*microc.VarDecl]*Obj // stack of frames
	nextID  int
}

// New builds an interpreter with the given randomness seed for
// extern-call results and uninitialized locals.
func New(prog *microc.Program, seed int64) *Interp {
	return &Interp{
		Prog:    prog,
		Fuel:    1 << 20,
		rng:     rand.New(rand.NewSource(seed)),
		globals: map[*microc.VarDecl]*Obj{},
	}
}

// Run executes the entry function and returns its result.
func (ip *Interp) Run(entry string) (Value, error) {
	f, ok := ip.Prog.Func(entry)
	if !ok {
		return nil, fmt.Errorf("cexec: no function %s", entry)
	}
	// C globals are zero-initialized; explicit initializers override.
	for _, g := range ip.Prog.Globals {
		obj := ip.globalObj(g)
		if g.Init != nil {
			v, err := ip.eval(g.Init)
			if err != nil {
				return nil, err
			}
			obj.Cells[""] = v
		}
	}
	args := make([]Value, len(f.Params))
	for i, p := range f.Params {
		args[i] = ip.arbitrary(p.Type, p.Name)
	}
	return ip.call(f, args, f.Pos)
}

func (ip *Interp) globalObj(d *microc.VarDecl) *Obj {
	if o, ok := ip.globals[d]; ok {
		return o
	}
	o := ip.newObj(d.Name, d.Type, true)
	ip.globals[d] = o
	return o
}

// newObj creates an object; zeroed when zero is true.
func (ip *Interp) newObj(name string, ty microc.Type, zero bool) *Obj {
	ip.nextID++
	o := &Obj{Name: fmt.Sprintf("%s#%d", name, ip.nextID), Cells: map[string]Value{}}
	fill := func(field string, ft microc.Type) {
		if zero {
			o.Cells[field] = zeroValue(ft)
		} else {
			o.Cells[field] = ip.arbitrary(ft, name)
		}
	}
	if st, ok := ty.(microc.StructType); ok {
		if sd, found := ip.Prog.Struct(st.Name); found {
			for _, fd := range sd.Fields {
				fill(fd.Name, fd.Type)
			}
			return o
		}
	}
	fill("", ty)
	return o
}

func zeroValue(t microc.Type) Value {
	switch t.(type) {
	case microc.PtrType, microc.FnPtrType:
		return CNull{}
	}
	return CInt{0}
}

// arbitrary picks a random value of a type (extern results,
// uninitialized locals, entry arguments).
func (ip *Interp) arbitrary(t microc.Type, hint string) Value {
	switch t := t.(type) {
	case microc.PtrType:
		if t.Qual != microc.QNonNull && ip.rng.Intn(2) == 0 {
			return CNull{}
		}
		obj := ip.newObj(hint+".ext", t.Elem, true)
		if _, isStruct := t.Elem.(microc.StructType); isStruct {
			return CPtr{Obj: obj}
		}
		return CPtr{Obj: obj}
	case microc.FnPtrType:
		return CNull{}
	case microc.VoidType:
		return CInt{0}
	}
	return CInt{int64(ip.rng.Intn(7) - 3)}
}

type frame = map[*microc.VarDecl]*Obj

func (ip *Interp) frameObj(d *microc.VarDecl) (*Obj, error) {
	if d.Kind == microc.GlobalVar {
		return ip.globalObj(d), nil
	}
	top := ip.locals[len(ip.locals)-1]
	if o, ok := top[d]; ok {
		return o, nil
	}
	// An uninitialized local: arbitrary contents.
	o := ip.newObj(d.Name, d.Type, false)
	top[d] = o
	return o, nil
}

// call executes f with arguments.
func (ip *Interp) call(f *microc.FuncDef, args []Value, pos microc.Pos) (Value, error) {
	if f.IsExtern() {
		return ip.arbitrary(f.Ret, f.Name), nil
	}
	fr := frame{}
	ip.locals = append(ip.locals, fr)
	defer func() { ip.locals = ip.locals[:len(ip.locals)-1] }()
	for i, p := range f.Params {
		o := ip.newObj(p.Name, p.Type, true)
		if i < len(args) && args[i] != nil {
			o.Cells[""] = args[i]
		}
		fr[p] = o
	}
	ret, returned, err := ip.exec(f.Body)
	if err != nil {
		return nil, err
	}
	if !returned || ret == nil {
		return CInt{0}, nil
	}
	return ret, nil
}

// exec runs a statement; returned reports whether a return fired.
func (ip *Interp) exec(s microc.Stmt) (Value, bool, error) {
	if ip.Fuel <= 0 {
		return nil, false, ErrFuel
	}
	ip.Fuel--
	switch s := s.(type) {
	case *microc.BlockStmt:
		for _, inner := range s.Stmts {
			v, returned, err := ip.exec(inner)
			if err != nil || returned {
				return v, returned, err
			}
		}
		return nil, false, nil
	case *microc.DeclStmt:
		var o *Obj
		if s.Decl.Init != nil {
			v, err := ip.eval(s.Decl.Init)
			if err != nil {
				return nil, false, err
			}
			o = ip.newObj(s.Decl.Name, s.Decl.Type, true)
			o.Cells[""] = v
		} else {
			o = ip.newObj(s.Decl.Name, s.Decl.Type, false)
		}
		ip.locals[len(ip.locals)-1][s.Decl] = o
		return nil, false, nil
	case *microc.ExprStmt:
		_, err := ip.eval(s.X)
		return nil, false, err
	case *microc.IfStmt:
		c, err := ip.evalTruth(s.Cond)
		if err != nil {
			return nil, false, err
		}
		if c {
			return ip.exec(s.Then)
		}
		if s.Else != nil {
			return ip.exec(s.Else)
		}
		return nil, false, nil
	case *microc.WhileStmt:
		for {
			if ip.Fuel <= 0 {
				return nil, false, ErrFuel
			}
			ip.Fuel--
			c, err := ip.evalTruth(s.Cond)
			if err != nil {
				return nil, false, err
			}
			if !c {
				return nil, false, nil
			}
			v, returned, err := ip.exec(s.Body)
			if err != nil || returned {
				return v, returned, err
			}
		}
	case *microc.ReturnStmt:
		if s.X == nil {
			return CInt{0}, true, nil
		}
		v, err := ip.eval(s.X)
		return v, true, err
	}
	return nil, false, fmt.Errorf("cexec: unknown statement %T", s)
}

// lvalue resolves an expression to an object cell.
func (ip *Interp) lvalue(e microc.Expr) (*Obj, string, error) {
	switch e := e.(type) {
	case *microc.VarRef:
		d, ok := e.Ref.(*microc.VarDecl)
		if !ok {
			return nil, "", &RuntimeError{e.ExprPos(), "not an lvalue"}
		}
		o, err := ip.frameObj(d)
		return o, "", err
	case *microc.Unary:
		if e.Op == microc.OpDeref {
			v, err := ip.eval(e.X)
			if err != nil {
				return nil, "", err
			}
			p, ok := v.(CPtr)
			if !ok {
				return nil, "", &NullDerefError{e.ExprPos()}
			}
			return p.Obj, p.Field, nil
		}
	case *microc.Field:
		if e.Arrow {
			v, err := ip.eval(e.X)
			if err != nil {
				return nil, "", err
			}
			p, ok := v.(CPtr)
			if !ok {
				return nil, "", &NullDerefError{e.ExprPos()}
			}
			return p.Obj, e.Name, nil
		}
		o, _, err := ip.lvalue(e.X)
		if err != nil {
			return nil, "", err
		}
		return o, e.Name, nil
	case *microc.Cast:
		return ip.lvalue(e.X)
	}
	return nil, "", &RuntimeError{e.ExprPos(), "not an lvalue"}
}

func (ip *Interp) readCell(o *Obj, field string, t microc.Type) Value {
	if v, ok := o.Cells[field]; ok {
		return v
	}
	v := ip.arbitrary(t, o.Name)
	o.Cells[field] = v
	return v
}

// eval evaluates an expression.
func (ip *Interp) eval(e microc.Expr) (Value, error) {
	if ip.Fuel <= 0 {
		return nil, ErrFuel
	}
	ip.Fuel--
	switch e := e.(type) {
	case *microc.IntLit:
		return CInt{e.Val}, nil
	case *microc.NullLit:
		return CNull{}, nil
	case *microc.VarRef:
		switch ref := e.Ref.(type) {
		case *microc.VarDecl:
			o, err := ip.frameObj(ref)
			if err != nil {
				return nil, err
			}
			return ip.readCell(o, "", ref.Type), nil
		case *microc.FuncDef:
			return CFn{ref}, nil
		}
		return nil, &RuntimeError{e.ExprPos(), "unresolved name"}
	case *microc.Unary:
		switch e.Op {
		case microc.OpDeref:
			o, field, err := ip.lvalue(e)
			if err != nil {
				return nil, err
			}
			return ip.readCell(o, field, e.StaticType()), nil
		case microc.OpAddr:
			o, field, err := ip.lvalue(e.X)
			if err != nil {
				return nil, err
			}
			return CPtr{Obj: o, Field: field}, nil
		case microc.OpNot:
			b, err := ip.evalTruth(e.X)
			if err != nil {
				return nil, err
			}
			return boolInt(!b), nil
		case microc.OpNeg:
			v, err := ip.eval(e.X)
			if err != nil {
				return nil, err
			}
			i, ok := v.(CInt)
			if !ok {
				return nil, &RuntimeError{e.ExprPos(), "negation of non-int"}
			}
			return CInt{-i.V}, nil
		}
	case *microc.Binary:
		return ip.evalBinary(e)
	case *microc.Assign:
		v, err := ip.eval(e.RHS)
		if err != nil {
			return nil, err
		}
		o, field, err := ip.lvalue(e.LHS)
		if err != nil {
			return nil, err
		}
		o.Cells[field] = v
		return v, nil
	case *microc.Call:
		return ip.evalCall(e)
	case *microc.Field:
		o, field, err := ip.lvalue(e)
		if err != nil {
			return nil, err
		}
		return ip.readCell(o, field, e.StaticType()), nil
	case *microc.Malloc:
		// malloc contents are arbitrary (uninitialized).
		o := ip.newObj(fmt.Sprintf("malloc#%d", e.Site), e.ElemType, false)
		return CPtr{Obj: o}, nil
	case *microc.Cast:
		return ip.eval(e.X)
	}
	return nil, fmt.Errorf("cexec: cannot evaluate %T", e)
}

func boolInt(b bool) Value {
	if b {
		return CInt{1}
	}
	return CInt{0}
}

// evalTruth evaluates an expression as a C condition.
func (ip *Interp) evalTruth(e microc.Expr) (bool, error) {
	v, err := ip.eval(e)
	if err != nil {
		return false, err
	}
	switch v := v.(type) {
	case CInt:
		return v.V != 0, nil
	case CNull:
		return false, nil
	case CPtr, CFn:
		return true, nil
	}
	return false, &RuntimeError{e.ExprPos(), "condition on unmodeled value"}
}

func (ip *Interp) evalBinary(e *microc.Binary) (Value, error) {
	x, err := ip.eval(e.X)
	if err != nil {
		return nil, err
	}
	y, err := ip.eval(e.Y)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case microc.OpEq, microc.OpNe:
		eq := valueEq(x, y)
		if e.Op == microc.OpNe {
			eq = !eq
		}
		return boolInt(eq), nil
	case microc.OpAnd:
		return boolInt(truthy(x) && truthy(y)), nil
	case microc.OpOr:
		return boolInt(truthy(x) || truthy(y)), nil
	}
	xi, okx := x.(CInt)
	yi, oky := y.(CInt)
	if !okx || !oky {
		return nil, &RuntimeError{e.ExprPos(), "arithmetic on non-ints"}
	}
	switch e.Op {
	case microc.OpAdd:
		return CInt{xi.V + yi.V}, nil
	case microc.OpSub:
		return CInt{xi.V - yi.V}, nil
	case microc.OpLt:
		return boolInt(xi.V < yi.V), nil
	case microc.OpGt:
		return boolInt(xi.V > yi.V), nil
	case microc.OpLe:
		return boolInt(xi.V <= yi.V), nil
	case microc.OpGe:
		return boolInt(xi.V >= yi.V), nil
	}
	return nil, fmt.Errorf("cexec: unknown binary op")
}

func truthy(v Value) bool {
	switch v := v.(type) {
	case CInt:
		return v.V != 0
	case CNull:
		return false
	}
	return true
}

func valueEq(a, b Value) bool {
	switch a := a.(type) {
	case CInt:
		if bi, ok := b.(CInt); ok {
			return a.V == bi.V
		}
		if _, ok := b.(CNull); ok {
			return a.V == 0
		}
	case CNull:
		switch b := b.(type) {
		case CNull:
			return true
		case CInt:
			return b.V == 0
		default:
			return false
		}
	case CPtr:
		if bp, ok := b.(CPtr); ok {
			return a.Obj == bp.Obj && a.Field == bp.Field
		}
	case CFn:
		if bf, ok := b.(CFn); ok {
			return a.F == bf.F
		}
	}
	return false
}

func (ip *Interp) evalCall(e *microc.Call) (Value, error) {
	// Direct call?
	if vr, ok := e.Fun.(*microc.VarRef); ok {
		if f, isFunc := vr.Ref.(*microc.FuncDef); isFunc {
			return ip.callWithArgs(e, f)
		}
	}
	funExpr := e.Fun
	if u, ok := funExpr.(*microc.Unary); ok && u.Op == microc.OpDeref {
		funExpr = u.X
	}
	fv, err := ip.eval(funExpr)
	if err != nil {
		return nil, err
	}
	fn, ok := fv.(CFn)
	if !ok {
		return nil, &NullDerefError{e.ExprPos()}
	}
	return ip.callWithArgs(e, fn.F)
}

func (ip *Interp) callWithArgs(e *microc.Call, f *microc.FuncDef) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := ip.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	// The analysis property: passing null for a nonnull parameter is
	// the run-time violation MIXY checks statically (sysutil_free
	// checks at run time in vsftpd).
	for i, p := range f.Params {
		if pt, ok := p.Type.(microc.PtrType); ok && pt.Qual == microc.QNonNull && i < len(args) {
			if _, isNull := args[i].(CNull); isNull {
				return nil, &NullDerefError{e.ExprPos()}
			}
		}
	}
	return ip.call(f, args, e.ExprPos())
}
