package langgen

import (
	"testing"
	"testing/quick"

	"mix/internal/lang"
	"mix/internal/types"
)

func TestDeterministicForSeed(t *testing.T) {
	a := New(42, DefaultConfig())
	b := New(42, DefaultConfig())
	for i := 0; i < 50; i++ {
		if a.Closed().String() != b.Closed().String() {
			t.Fatal("same seed must generate the same programs")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1, DefaultConfig())
	b := New(2, DefaultConfig())
	same := 0
	for i := 0; i < 50; i++ {
		if a.Closed().String() == b.Closed().String() {
			same++
		}
	}
	if same > 25 {
		t.Fatalf("seeds too correlated: %d/50 identical", same)
	}
}

// TestQuickGeneratedPrintParseFixpoint: every generated program's
// printed form reparses to the same printed form (parser/printer
// round-trip on a far richer distribution than hand-written cases).
func TestQuickGeneratedPrintParseFixpoint(t *testing.T) {
	gen := New(7, DefaultConfig())
	property := func() bool {
		e := gen.Closed()
		src := e.String()
		re, err := lang.Parse(src)
		if err != nil {
			t.Logf("generated program does not reparse: %s: %v", src, err)
			return false
		}
		return re.String() == src
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorInjectionRate(t *testing.T) {
	// With ErrorProb 0, mostly-well-typed construction should yield a
	// high acceptance rate under the pure type checker when blocks are
	// disabled.
	gen := New(3, Config{MaxDepth: 4, BlockProb: 0, ErrorProb: 0, WithRefs: true, WithFuns: true})
	accepted := 0
	const n = 200
	for i := 0; i < n; i++ {
		var c types.Checker
		if _, err := c.Check(types.EmptyEnv(), gen.Closed()); err == nil {
			accepted++
		}
	}
	if accepted < n*9/10 {
		t.Fatalf("only %d/%d error-free programs type check", accepted, n)
	}
}

func TestTypedGeneration(t *testing.T) {
	gen := New(5, Config{MaxDepth: 4, BlockProb: 0, ErrorProb: 0, WithRefs: false, WithFuns: false})
	for i := 0; i < 100; i++ {
		e := gen.ClosedTyped(types.Bool)
		var c types.Checker
		ty, err := c.Check(types.EmptyEnv(), e)
		if err != nil {
			t.Fatalf("generated bool program rejected: %s: %v", e, err)
		}
		if !types.Equal(ty, types.Bool) {
			t.Fatalf("ClosedTyped(bool) gave %s for %s", ty, e)
		}
	}
}

func TestBlocksAppear(t *testing.T) {
	gen := New(11, Config{MaxDepth: 5, BlockProb: 0.5, ErrorProb: 0, WithRefs: true, WithFuns: true})
	blocks := 0
	for i := 0; i < 100; i++ {
		if s := gen.Closed().String(); containsBlock(s) {
			blocks++
		}
	}
	if blocks < 30 {
		t.Fatalf("blocks too rare: %d/100", blocks)
	}
}

func containsBlock(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '{' && (s[i+1] == 's' || s[i+1] == 't') {
			return true
		}
	}
	return false
}
