// Package langgen generates random core-language programs for
// property-based testing of MIX soundness (Theorem 1): programs are
// mostly well-typed by construction, decorated with random typed and
// symbolic blocks, and occasionally seeded with deliberate type errors
// so that rejection paths are exercised too.
package langgen

import (
	"math/rand"

	"mix/internal/lang"
	"mix/internal/types"
)

// Config tunes generation.
type Config struct {
	// MaxDepth bounds expression depth.
	MaxDepth int
	// BlockProb is the probability of wrapping a subexpression in a
	// typed or symbolic block.
	BlockProb float64
	// ErrorProb is the probability of injecting an ill-typed leaf.
	ErrorProb float64
	// WithRefs enables reference operations.
	WithRefs bool
	// WithFuns enables function literals and applications.
	WithFuns bool
}

// DefaultConfig returns a balanced configuration.
func DefaultConfig() Config {
	return Config{MaxDepth: 5, BlockProb: 0.2, ErrorProb: 0.05, WithRefs: true, WithFuns: true}
}

// Gen generates programs.
type Gen struct {
	r   *rand.Rand
	cfg Config
}

// New returns a generator with the given seed.
func New(seed int64, cfg Config) *Gen {
	return &Gen{r: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// scopeEntry is a variable in scope with its (intended) type.
type scopeEntry struct {
	name string
	ty   types.Type
}

// Closed generates a closed program of a random base type.
func (g *Gen) Closed() lang.Expr {
	return g.expr(g.cfg.MaxDepth, g.baseType(), nil)
}

// ClosedTyped generates a closed program intended to have type ty.
func (g *Gen) ClosedTyped(ty types.Type) lang.Expr {
	return g.expr(g.cfg.MaxDepth, ty, nil)
}

func (g *Gen) baseType() types.Type {
	switch g.r.Intn(3) {
	case 0:
		return types.Bool
	case 1:
		if g.cfg.WithRefs {
			return types.Ref(types.Int)
		}
		return types.Int
	default:
		return types.Int
	}
}

// expr generates an expression intended to have type want under the
// given scope. With probability ErrorProb a leaf of the wrong type is
// produced instead.
func (g *Gen) expr(depth int, want types.Type, scope []scopeEntry) lang.Expr {
	if g.r.Float64() < g.cfg.ErrorProb {
		return g.wrongLeaf(want, scope)
	}
	e := g.exprRight(depth, want, scope)
	if g.r.Float64() < g.cfg.BlockProb {
		if g.r.Intn(2) == 0 {
			e = lang.TB(e)
		} else {
			e = lang.SB(e)
		}
	}
	return e
}

func (g *Gen) exprRight(depth int, want types.Type, scope []scopeEntry) lang.Expr {
	if depth <= 0 {
		return g.leaf(want, scope)
	}
	// Generic productions available at every type.
	switch g.r.Intn(8) {
	case 0: // if
		return lang.IfE(
			g.expr(depth-1, types.Bool, scope),
			g.expr(depth-1, want, scope),
			g.expr(depth-1, want, scope),
		)
	case 1: // let
		bt := g.baseType()
		name := g.freshName(scope)
		bound := g.expr(depth-1, bt, scope)
		body := g.expr(depth-1, want, append(scope, scopeEntry{name, bt}))
		return lang.LetE(name, bound, body)
	case 2: // deref of a generated ref
		if g.cfg.WithRefs {
			return lang.DerefE(g.expr(depth-1, types.Ref(want), scope))
		}
	case 3: // assignment producing the written value
		if g.cfg.WithRefs {
			return lang.AssignE(g.expr(depth-1, types.Ref(want), scope), g.expr(depth-1, want, scope))
		}
	case 4: // immediate application of an annotated lambda
		if g.cfg.WithFuns {
			pt := g.baseTypeNonRef()
			name := g.freshName(scope)
			body := g.expr(depth-1, want, append(scope, scopeEntry{name, pt}))
			return lang.AppE(
				lang.FunE(name, typeExprOf(pt), body),
				g.expr(depth-1, pt, scope),
			)
		}
	}
	// Type-directed productions.
	switch want := want.(type) {
	case types.IntType:
		if g.r.Intn(2) == 0 {
			return lang.AddE(g.expr(depth-1, types.Int, scope), g.expr(depth-1, types.Int, scope))
		}
	case types.BoolType:
		switch g.r.Intn(4) {
		case 0:
			return lang.NotE(g.expr(depth-1, types.Bool, scope))
		case 1:
			return lang.AndE(g.expr(depth-1, types.Bool, scope), g.expr(depth-1, types.Bool, scope))
		case 2:
			t := g.baseTypeNonRef()
			return lang.EqE(g.expr(depth-1, t, scope), g.expr(depth-1, t, scope))
		case 3:
			return lang.LtE(g.expr(depth-1, types.Int, scope), g.expr(depth-1, types.Int, scope))
		}
	case types.RefType:
		return lang.RefE(g.expr(depth-1, want.Elem, scope))
	}
	return g.leaf(want, scope)
}

func (g *Gen) baseTypeNonRef() types.Type {
	if g.r.Intn(2) == 0 {
		return types.Bool
	}
	return types.Int
}

// leaf produces a minimal expression of type want.
func (g *Gen) leaf(want types.Type, scope []scopeEntry) lang.Expr {
	// Prefer an in-scope variable of the right type.
	var candidates []string
	for _, s := range scope {
		if types.Equal(s.ty, want) {
			candidates = append(candidates, s.name)
		}
	}
	if len(candidates) > 0 && g.r.Intn(2) == 0 {
		return lang.V(candidates[g.r.Intn(len(candidates))])
	}
	switch want := want.(type) {
	case types.IntType:
		return lang.I(int64(g.r.Intn(7) - 3))
	case types.BoolType:
		return lang.B(g.r.Intn(2) == 0)
	case types.RefType:
		return lang.RefE(g.leaf(want.Elem, scope))
	}
	return lang.I(0)
}

// wrongLeaf produces a leaf of a type other than want, injecting a
// type error.
func (g *Gen) wrongLeaf(want types.Type, scope []scopeEntry) lang.Expr {
	if _, ok := want.(types.IntType); ok {
		return lang.B(true)
	}
	return lang.I(1)
}

func (g *Gen) freshName(scope []scopeEntry) string {
	letters := []string{"x", "y", "z", "w", "v", "u"}
	return letters[g.r.Intn(len(letters))] + string(rune('a'+g.r.Intn(26)))
}

// typeExprOf converts a semantic type back to surface syntax (for
// generated parameter annotations).
func typeExprOf(t types.Type) lang.TypeExpr {
	switch t := t.(type) {
	case types.BoolType:
		return lang.TyBool{}
	case types.RefType:
		return lang.TyRef{Elem: typeExprOf(t.Elem)}
	case types.FunType:
		return lang.TyFun{Param: typeExprOf(t.Param), Ret: typeExprOf(t.Ret)}
	default:
		return lang.TyInt{}
	}
}
