package shard

import (
	"bytes"
	"os"
	"sync"
	"testing"
	"time"

	"mix/internal/fault"
	"mix/internal/obs"
)

// TestMain doubles as the worker binary: the process dialer re-executes
// the test executable with the worker guard set, and WorkerMain turns
// that invocation into a serving worker — so the process-transport
// chaos tests need no separately built binary.
func TestMain(m *testing.M) {
	WorkerMain()
	os.Exit(m.Run())
}

func TestPrefixes(t *testing.T) {
	got := Prefixes(2)
	want := [][]bool{
		{false, false}, {false, true}, {true, false}, {true, true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d prefixes, want %d", len(got), len(want))
	}
	for i := range want {
		for b := range want[i] {
			if got[i][b] != want[i][b] {
				t.Fatalf("prefix %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if n := len(Prefixes(0)); n != 1 || len(Prefixes(0)[0]) != 0 {
		t.Fatalf("depth 0 must yield one empty prefix, got %d", n)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Kind: frameWork, Item: 3, Work: &WorkSpec{
		Lang: langCore, Source: "if b then 1 else 2", Prefix: []bool{true, false},
		HeartbeatMS: 50, Chaos: chaosStall, StallMS: 100,
	}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Item != in.Item || out.Work == nil ||
		out.Work.Source != in.Work.Source || len(out.Work.Prefix) != 2 ||
		!out.Work.Prefix[0] || out.Work.Prefix[1] ||
		out.Work.Chaos != chaosStall || out.Work.StallMS != 100 {
		t.Fatalf("round trip mangled the frame: %+v", out)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	if _, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 'x'})); err == nil {
		t.Fatal("an implausible length prefix must fail to frame")
	}
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 4, 'j', 'u', 'n', 'k'})); err == nil {
		t.Fatal("non-JSON frame bodies must be rejected")
	}
}

// fakeOp is what a scripted in-process worker does with a dispatch.
type fakeOp int

const (
	opResult fakeOp = iota // answer with a canned result
	opDie                  // break both pipe ends, like a crash
	opHang                 // accept the item and go silent forever
)

// scriptedDialer runs an in-process fake worker per dial; behave is
// called per dispatch with the item and that item's 1-based dispatch
// count, and decides the worker's next move. No analysis runs, so the
// coordinator's retry machinery is tested in isolation under -race.
func scriptedDialer(behave func(item, dispatch int) fakeOp) Dialer {
	var mu sync.Mutex
	seen := map[int]int{}
	return func(id int) (Transport, error) {
		coordSide, workerSide := MemPair()
		go func() {
			for {
				f, err := workerSide.Recv()
				if err != nil {
					return
				}
				mu.Lock()
				seen[f.Item]++
				n := seen[f.Item]
				mu.Unlock()
				switch behave(f.Item, n) {
				case opDie:
					workerSide.Kill()
					return
				case opHang:
					continue // never answers; the pair dies when the coordinator kills it
				default:
					res := &ItemResult{Type: "int"}
					if err := workerSide.Send(Frame{Kind: frameResult, Item: f.Item, Result: res}); err != nil {
						return
					}
				}
			}
		}()
		return coordSide, nil
	}
}

func fastOpts(o Options) Options {
	o.Heartbeat = 10 * time.Millisecond
	if o.ItemTimeout == 0 {
		o.ItemTimeout = 5 * time.Second
	}
	o.BackoffBase = time.Millisecond
	return o
}

// A poison item — one that kills every worker it touches — must be
// quarantined after PoisonKills kills instead of burning the whole
// retry budget on fresh workers.
func TestPoisonItemQuarantinedAfterTwoKills(t *testing.T) {
	opts := fastOpts(Options{
		Shards:      1,
		MaxAttempts: 5,
		PoisonKills: 2,
		Dialer: scriptedDialer(func(item, dispatch int) fakeOp {
			if item == 0 {
				return opDie
			}
			return opResult
		}),
	})
	outs := run([]WorkSpec{{Lang: langCore}, {Lang: langCore}}, opts)
	if outs[0].res != nil {
		t.Fatal("the poison item must not produce a result")
	}
	if outs[0].class != fault.ShardPoison {
		t.Fatalf("poison item class = %v, want ShardPoison", outs[0].class)
	}
	if outs[0].kills != 2 || outs[0].attempts != 2 {
		t.Fatalf("poison item kills=%d attempts=%d, want 2 kills in 2 attempts (not the full budget of 5)", outs[0].kills, outs[0].attempts)
	}
	if outs[1].res == nil {
		t.Fatalf("the healthy item must survive its neighbor's quarantine: %+v", outs[1])
	}
}

// A single transient loss retries with backoff on a fresh worker and
// succeeds; the outcome records the kill and the extra attempt.
func TestTransientLossRetriesAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	opts := fastOpts(Options{
		Shards:      2,
		MaxAttempts: 3,
		PoisonKills: 3,
		Metrics:     reg,
		Dialer: scriptedDialer(func(item, dispatch int) fakeOp {
			if item == 1 && dispatch == 1 {
				return opDie
			}
			return opResult
		}),
	})
	outs := run([]WorkSpec{{Lang: langCore}, {Lang: langCore}, {Lang: langCore}}, opts)
	for i, out := range outs {
		if out.res == nil {
			t.Fatalf("item %d lost: %v %s", i, out.class, out.detail)
		}
	}
	if outs[1].attempts != 2 || outs[1].kills != 1 {
		t.Fatalf("item 1 attempts=%d kills=%d, want one retry after one kill", outs[1].attempts, outs[1].kills)
	}
	if got := reg.Counter("shard.retries").Value(); got != 1 {
		t.Fatalf("shard.retries = %d, want 1", got)
	}
	if got := reg.Counter("shard.lost").Value(); got != 0 {
		t.Fatalf("shard.lost = %d, want 0", got)
	}
}

// A worker that accepts an item and goes silent past the deadline is
// classified ShardTimeout, killed, and the item retried elsewhere.
func TestSilentWorkerClassifiedShardTimeout(t *testing.T) {
	tr := obs.NewTracer(obs.TraceOptions{})
	opts := fastOpts(Options{
		Shards:      1,
		ItemTimeout: 50 * time.Millisecond,
		MaxAttempts: 3,
		PoisonKills: 3,
		Tracer:      tr,
		Dialer: scriptedDialer(func(item, dispatch int) fakeOp {
			if dispatch == 1 {
				return opHang
			}
			return opResult
		}),
	})
	outs := run([]WorkSpec{{Lang: langCore}}, opts)
	if outs[0].res == nil || outs[0].attempts != 2 {
		t.Fatalf("item must recover on retry: %+v", outs[0])
	}
	found := false
	for _, e := range tr.Events() {
		if e.Kind == obs.KindShard && e.Class == fault.ShardTimeout.String() {
			found = true
		}
	}
	if !found {
		t.Fatal("no shard event carries the shard-timeout class")
	}
}

// The ShardItem injection point fails dispatches before any worker is
// involved, so the full retry/degrade path runs in-process.
func TestInjectorFailsDispatchInProcess(t *testing.T) {
	inj := fault.NewInjector(1).Plan(fault.ShardItem, fault.Plan{After: 1, Count: 2, Class: fault.ShardLost})
	opts := fastOpts(Options{
		Shards:      1,
		MaxAttempts: 2,
		PoisonKills: 5,
		Injector:    inj,
		Dialer: scriptedDialer(func(item, dispatch int) fakeOp {
			return opResult
		}),
	})
	outs := run([]WorkSpec{{Lang: langCore}, {Lang: langCore}}, opts)
	if outs[0].res != nil {
		t.Fatal("both injected attempts must fail item 0")
	}
	if outs[0].class != fault.ShardLost {
		t.Fatalf("item 0 class = %v, want the injected ShardLost", outs[0].class)
	}
	if outs[1].res == nil {
		t.Fatalf("item 1 must run clean once the plan is exhausted: %+v", outs[1])
	}
	if got := inj.Counters().Get(fault.ShardLost); got != 2 {
		t.Fatalf("injected %d ShardLost faults, want 2", got)
	}
}

// mergeCore's verdict rule: the erring item whose analysis stopped at
// the earliest block wins, ties broken by item index; a fingerprint
// mismatch earlier than any item error becomes the cross-shard type
// disagreement; lost subtrees degrade unless a genuine error rejects.
func TestMergeCoreVerdictSelection(t *testing.T) {
	mk := func(blocks []string, errMsg string) outcome {
		return outcome{res: &ItemResult{Type: "int", BlockTypes: blocks, ErrMsg: errMsg}}
	}
	// Item 2 errs at block 0; item 1 errs at block 1: block order wins
	// over item order.
	res := mergeCore([]outcome{
		mk([]string{"1:1 int", "2:1 int"}, ""),
		mk([]string{"1:1 int"}, "late error"),
		mk(nil, "early error"),
	})
	if res.Err == nil || res.Err.Error() != "early error" {
		t.Fatalf("verdict = %v, want the earliest-block error", res.Err)
	}
	// A fingerprint mismatch at block 0 beats an error at block 1.
	res = mergeCore([]outcome{
		mk([]string{"1:1 int", "2:1 int"}, ""),
		mk([]string{"1:1 bool"}, "late error"),
	})
	if res.Err == nil || res.Err.Error() != "1:1: symbolic block paths disagree on type across shards: int vs bool" {
		t.Fatalf("verdict = %v, want the cross-shard disagreement", res.Err)
	}
	// A lost subtree degrades a clean run...
	res = mergeCore([]outcome{
		mk([]string{"1:1 int"}, ""),
		{class: fault.ShardLost, detail: "item 1 gone"},
	})
	if !res.Degraded || res.Fault != "shard-lost" || res.Type != "" || res.Err != nil {
		t.Fatalf("lost subtree must degrade without certifying: %+v", res)
	}
	// ...but cannot retract a feasible counterexample found elsewhere.
	res = mergeCore([]outcome{
		mk(nil, "genuine error"),
		{class: fault.ShardLost, detail: "item 1 gone"},
	})
	if res.Err == nil || res.Degraded {
		t.Fatalf("a found error must reject even with lost coverage: %+v", res)
	}
}
