package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"mix"
)

// mergeCore folds per-item outcomes into one mix.Result, in item
// order. Item order is DFS order over the path tree and is a pure
// function of Depth, so any shard count — and any interleaving of
// worker completions — merges to byte-identical output.
//
// Verdict rules, mirroring what an unsharded run would conclude:
//
//   - Reports concatenate in item order (each item only reports
//     findings from leaves it owns, so nothing duplicates).
//   - An item error is a genuine rejection (infeasible errors were
//     already discarded inside the item). Among erring items, the one
//     whose analysis stopped at the earliest block — ties broken by
//     item index, i.e. DFS-first — supplies the verdict, matching the
//     sequential checker's first-error behavior.
//   - A cross-item type disagreement is invisible inside every item
//     (each slice agrees with itself), so the per-block fingerprints
//     are compared positionally here; a mismatch at a block earlier
//     than any item error becomes the "paths disagree on type"
//     rejection the unsharded run reports.
//   - A lost subtree degrades the merged result: no certification, no
//     guessed verdict, fault class and detail preserved. A genuine
//     error still rejects — lost coverage cannot retract a feasible
//     counterexample — but certification requires every item.
func mergeCore(outs []outcome) mix.Result {
	var res mix.Result
	type errCand struct {
		stop, item int
		msg        string
	}
	var cands []errCand
	for i := range outs {
		out := &outs[i]
		if out.res == nil {
			res.Degraded = true
			if res.Fault == "" {
				res.Fault = out.class.String()
				res.FaultDetail = out.detail
			}
			continue
		}
		r := out.res
		res.Paths += r.Paths
		res.Merges += r.Merges
		res.SolverQueries += r.SolverQueries
		res.Reports = append(res.Reports, r.Reports...)
		if r.Degraded {
			res.Degraded = true
			if res.Fault == "" {
				res.Fault = r.Fault
				res.FaultDetail = r.FaultDetail
			}
		}
		if r.ErrMsg != "" {
			// len(BlockTypes) counts the top-level blocks that completed
			// before the error — exactly the erring block's index.
			cands = append(cands, errCand{stop: len(r.BlockTypes), item: i, msg: r.ErrMsg})
		}
		if len(r.BlockTypes) > len(res.BlockTypes) {
			res.BlockTypes = r.BlockTypes
		}
	}
	mismatchAt, mismatchErr := fingerprintMismatch(outs)
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].stop != cands[b].stop {
			return cands[a].stop < cands[b].stop
		}
		return cands[a].item < cands[b].item
	})
	switch {
	case len(cands) > 0 && (mismatchErr == nil || cands[0].stop <= mismatchAt):
		res.Err = errors.New(cands[0].msg)
	case mismatchErr != nil:
		res.Err = mismatchErr
	}
	if res.Err != nil {
		// A rejection is definite: lost subtrees cannot retract a
		// feasible counterexample, so the error verdict stands alone.
		res.Type = ""
		res.Degraded = false
		res.Fault, res.FaultDetail = "", ""
		return res
	}
	if !res.Degraded {
		for i := range outs {
			if outs[i].res != nil && outs[i].res.ErrMsg == "" {
				res.Type = outs[i].res.Type
				break
			}
		}
	}
	return res
}

// fingerprintMismatch compares the per-block type fingerprints
// positionally across all completed items and, on the earliest
// disagreement, synthesizes the rejection the unsharded checker would
// have raised when the disagreeing paths met in one run.
func fingerprintMismatch(outs []outcome) (int, error) {
	blocks := 0
	for i := range outs {
		if outs[i].res != nil && len(outs[i].res.BlockTypes) > blocks {
			blocks = len(outs[i].res.BlockTypes)
		}
	}
	for k := 0; k < blocks; k++ {
		first := ""
		for i := range outs {
			if outs[i].res == nil || len(outs[i].res.BlockTypes) <= k {
				continue
			}
			fp := outs[i].res.BlockTypes[k]
			if first == "" {
				first = fp
				continue
			}
			if fp != first {
				pos, ty1, _ := strings.Cut(first, " ")
				_, ty2, _ := strings.Cut(fp, " ")
				return k, fmt.Errorf("%s: symbolic block paths disagree on type across shards: %s vs %s", pos, ty1, ty2)
			}
		}
	}
	return blocks, nil
}

// mergeMicroC maps the single supervised MicroC item back to the
// facade shape: a completed item round-trips mix.AnalyzeC's result,
// and a lost item degrades with its shard fault class — the analysis
// never certified, so the qualifiers it would have inferred are
// simply unknown.
func mergeMicroC(out outcome) (mix.CResult, error) {
	if out.res == nil {
		return mix.CResult{
			Degraded:    true,
			Fault:       out.class.String(),
			FaultDetail: out.detail,
		}, nil
	}
	r := out.res
	if r.ErrMsg != "" {
		return mix.CResult{}, errors.New(r.ErrMsg)
	}
	return mix.CResult{
		Warnings:       r.Warnings,
		Merges:         r.Merges,
		BlocksAnalyzed: r.BlocksAnalyzed,
		CacheHits:      r.CacheHits,
		FixpointIters:  r.FixpointIters,
		SolverQueries:  r.SolverQueries,
		Degraded:       r.Degraded,
		Fault:          r.Fault,
		FaultDetail:    r.FaultDetail,
	}, nil
}
