package shard

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"mix"
	"mix/internal/cliflags"
	"mix/internal/obs"
)

// The chaos suite runs against real worker processes: the process
// dialer re-executes this test binary (see TestMain), chaos
// directives make workers SIGKILL themselves, stall silently, or
// garble the protocol stream, and the assertions check the two
// robustness invariants end to end — degraded verdicts are
// byte-identical at 1 and 4 shards, and every lost subtree leaves a
// deterministic degrade trace event naming its shard fault class.

const chaosSrc = "if b1 then (if b2 then x + 1 else x + 2) else (if b2 then x + 3 else x + 4)"

func chaosReq() cliflags.Analysis {
	return cliflags.Analysis{
		Symbolic: true,
		Env:      map[string]string{"b1": "bool", "b2": "bool", "x": "int"},
	}
}

func chaosOpts(shards int) Options {
	return Options{
		Shards:      shards,
		Depth:       2,
		Heartbeat:   25 * time.Millisecond,
		ItemTimeout: time.Second,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		Seed:        7,
	}
}

// renderVerdict flattens everything observable about a Result into
// one byte string, the unit of the 1-vs-N identity assertions.
func renderVerdict(res mix.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "type=%q err=%v degraded=%v fault=%q detail=%q\n",
		res.Type, res.Err, res.Degraded, res.Fault, res.FaultDetail)
	for _, r := range res.Reports {
		fmt.Fprintln(&b, r)
	}
	return b.String()
}

// detTrace renders a deterministic trace as JSONL bytes.
func detTrace(t *testing.T, tr *obs.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A seeded kill/stall/garble plan must degrade identically at 1 and 4
// shards: chaos directives are keyed by (item, attempt), so every
// worker count replays the same failures against the same subtrees.
func TestChaosDegradedVerdictByteIdentical1v4(t *testing.T) {
	chaos := []ChaosDirective{
		{Item: 1, Attempt: 1, Action: chaosKill},
		{Item: 1, Attempt: 2, Action: chaosKill}, // second kill quarantines item 1
		{Item: 2, Attempt: 1, Action: chaosGarble},
		{Item: 3, Attempt: 1, Action: chaosStall, StallMS: 2000},
	}
	var verdicts []string
	var traces [][]byte
	for _, shards := range []int{1, 4} {
		opts := chaosOpts(shards)
		opts.Chaos = chaos
		tr := obs.NewTracer(obs.TraceOptions{Deterministic: true})
		opts.Tracer = tr
		res, err := ExploreCore(chaosSrc, chaosReq(), opts)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if !res.Degraded || res.Fault != "shard-poison" {
			t.Fatalf("%d shards: want a shard-poison degradation, got %+v", shards, res)
		}
		verdicts = append(verdicts, renderVerdict(res))
		traces = append(traces, detTrace(t, tr))
	}
	if verdicts[0] != verdicts[1] {
		t.Fatalf("degraded verdicts differ across shard counts:\n1 shard:\n%s\n4 shards:\n%s", verdicts[0], verdicts[1])
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Fatalf("deterministic traces differ across shard counts:\n1 shard:\n%s\n4 shards:\n%s", traces[0], traces[1])
	}
}

// Every lost subtree must leave a degrade trace event naming its
// shard fault class — the deterministic record of what coverage went
// missing and why.
func TestChaosEveryLostSubtreeLeavesDegradeEvent(t *testing.T) {
	opts := chaosOpts(4)
	opts.MaxAttempts = 1 // no retries: each directive is fatal to its item
	opts.Chaos = []ChaosDirective{
		{Item: 0, Attempt: 1, Action: chaosKill},
		{Item: 3, Attempt: 1, Action: chaosStall, StallMS: 2000},
	}
	tr := obs.NewTracer(obs.TraceOptions{Deterministic: true})
	opts.Tracer = tr
	res, err := ExploreCore(chaosSrc, chaosReq(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("two lost subtrees must degrade the verdict: %+v", res)
	}
	want := map[string]string{
		"item 0": "shard-lost",
		"item 3": "shard-timeout",
	}
	got := map[string]string{}
	for _, e := range tr.Events() {
		if e.Kind != obs.KindDegrade || !strings.HasPrefix(e.Detail, "item ") {
			continue
		}
		got[e.Detail[:6]] = e.Class
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("degrade events = %v, want %v", got, want)
	}
}

// Without chaos, a sharded run must agree with the unsharded facade:
// same type, same reports, same rejection text.
func TestShardedMatchesUnsharded(t *testing.T) {
	req := chaosReq()
	for _, tc := range []struct {
		name, src string
	}{
		{"clean", chaosSrc},
		{"feasible-error", "if b1 then x + 1 else 1 + true"},
		{"infeasible-discarded", "if b1 then (if b1 then x else 1 + true) else 2"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := req.MixConfig()
			want := mix.Check(tc.src, cfg)
			got, err := ExploreCore(tc.src, req, chaosOpts(2))
			if err != nil {
				t.Fatal(err)
			}
			if got.Type != want.Type {
				t.Fatalf("type = %q, want %q", got.Type, want.Type)
			}
			switch {
			case (got.Err == nil) != (want.Err == nil):
				t.Fatalf("err = %v, want %v", got.Err, want.Err)
			case got.Err != nil && got.Err.Error() != want.Err.Error():
				t.Fatalf("err = %q, want %q", got.Err, want.Err)
			}
			if !reflect.DeepEqual(got.Reports, want.Reports) {
				t.Fatalf("reports = %v, want %v", got.Reports, want.Reports)
			}
			if got.Degraded {
				t.Fatalf("chaos-free run degraded: %s %s", got.Fault, got.FaultDetail)
			}
		})
	}
}

// MicroC sharding is supervised failover: a worker crash mid-analysis
// fails the whole run over to a fresh worker, converging on the same
// warnings the in-process facade produces; with the retry budget
// exhausted the run degrades with the shard fault class instead.
func TestMicroCFailoverAndDegradation(t *testing.T) {
	src, err := os.ReadFile("../../testdata/case1.mc")
	if err != nil {
		t.Fatal(err)
	}
	req := cliflags.Analysis{Entry: "main", Merge: "joins", MergeCap: 8}
	want, err := mix.AnalyzeC(string(src), req.CConfig())
	if err != nil {
		t.Fatal(err)
	}

	opts := chaosOpts(1)
	opts.Chaos = []ChaosDirective{{Item: 0, Attempt: 1, Action: chaosKill}}
	got, err := ExploreMicroC(string(src), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatalf("one crash must fail over, not degrade: %s %s", got.Fault, got.FaultDetail)
	}
	if !reflect.DeepEqual(got.Warnings, want.Warnings) {
		t.Fatalf("warnings after failover = %v, want %v", got.Warnings, want.Warnings)
	}

	opts = chaosOpts(1)
	opts.MaxAttempts = 1
	opts.Chaos = []ChaosDirective{{Item: 0, Attempt: 1, Action: chaosKill}}
	got, err = ExploreMicroC(string(src), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.Fault != "shard-lost" {
		t.Fatalf("an unrecoverable crash must degrade with shard-lost: %+v", got)
	}
}
