package shard

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"mix"
	"mix/internal/obs"
)

// The fleet-observability suite pins the cross-process aggregation
// contract: worker registries merge and worker traces splice so a
// sharded run reports exactly like an unsharded one — byte-identical
// deterministic traces at 1 vs N shards and against the unsharded
// executor, merged metrics byte-identical at 1 vs N shards, partial
// metrics accounted exactly once across retries and losses.

// isTimingMetric reports whether a metric's value depends on wall
// clock or process topology rather than on the analyzed program:
// nanosecond gauges and histograms, and the coordinator's
// heartbeat/spawn counts (how many workers were dialed depends on how
// items landed on slots). Identity assertions compare everything
// else.
func isTimingMetric(name string) bool {
	switch name {
	case "shard.heartbeats", "shard.workers_spawned", "shard.shards":
		return true
	}
	return strings.HasSuffix(name, ".ns") || strings.HasSuffix(name, "_ns")
}

// stableMetricsJSON renders a registry snapshot minus the timing
// metrics, the unit of the metrics byte-identity assertions.
func stableMetricsJSON(t *testing.T, reg *obs.Registry) []byte {
	t.Helper()
	snap := reg.Snapshot()
	kept := snap.Metrics[:0]
	for _, m := range snap.Metrics {
		if !isTimingMetric(m.Name) {
			kept = append(kept, m)
		}
	}
	snap.Metrics = kept
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A chaos-free sharded deterministic trace must be byte-identical to
// the unsharded executor's: forced forks replay the fork spine with
// the same events, worker subtrees land on the paths the unsharded
// run would have used, the splice dedups the spine, and no
// coordinator root is created when nothing was lost.
func TestShardedDetTraceMatchesUnsharded(t *testing.T) {
	req := chaosReq()

	unTr := obs.NewTracer(obs.TraceOptions{Deterministic: true})
	cfg := req.MixConfig()
	cfg.Tracer = unTr
	if res := mix.Check(chaosSrc, cfg); res.Err != nil || res.Degraded {
		t.Fatalf("unsharded run failed: %+v", res)
	}
	want := detTrace(t, unTr)

	for _, shards := range []int{1, 2, 4} {
		shTr := obs.NewTracer(obs.TraceOptions{Deterministic: true})
		opts := chaosOpts(shards)
		// No chaos here: give concurrent worker spawns headroom so a
		// slow fork/exec is never misread as a lost shard.
		opts.ItemTimeout = 10 * time.Second
		opts.Tracer = shTr
		res, err := ExploreCore(chaosSrc, req, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil || res.Degraded {
			t.Fatalf("%d shards: run failed: %+v", shards, res)
		}
		if got := detTrace(t, shTr); !bytes.Equal(got, want) {
			t.Fatalf("%d shards: sharded deterministic trace differs from unsharded:\nsharded:\n%s\nunsharded:\n%s", shards, got, want)
		}
	}
}

// Merged metrics must be byte-identical at 1 vs 4 shards under the
// chaos plan: the item list, the chaos directives, and therefore the
// surviving items' registries are all independent of the shard count,
// and the post-barrier merge folds them in item order. The lost item
// contributes nothing (its workers died before analyzing), and the
// retried items count exactly once.
func TestFleetMetricsByteIdentical1v4UnderChaos(t *testing.T) {
	chaos := []ChaosDirective{
		{Item: 1, Attempt: 1, Action: chaosKill},
		{Item: 1, Attempt: 2, Action: chaosKill}, // second kill quarantines item 1
		{Item: 2, Attempt: 1, Action: chaosGarble},
		{Item: 3, Attempt: 1, Action: chaosStall, StallMS: 2000},
	}
	req := chaosReq()
	req.Workers = 1 // a sequential engine keeps per-item metrics schedule-free
	var snaps [][]byte
	var regs []*obs.Registry
	for _, shards := range []int{1, 4} {
		opts := chaosOpts(shards)
		opts.Chaos = chaos
		reg := obs.NewRegistry()
		opts.Metrics = reg
		if _, err := ExploreCore(chaosSrc, req, opts); err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		snaps = append(snaps, stableMetricsJSON(t, reg))
		regs = append(regs, reg)
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatalf("merged metrics differ across shard counts:\n1 shard:\n%s\n4 shards:\n%s", snaps[0], snaps[1])
	}
	// Worker-side analysis counters must have made it home...
	reg := regs[0]
	if v := reg.Gauge("engine.paths").Value(); v <= 0 {
		t.Fatalf("engine.paths = %d: worker registries were not merged", v)
	}
	if v := reg.Gauge("solver.queries").Value(); v <= 0 {
		t.Fatalf("solver.queries = %d: worker registries were not merged", v)
	}
	// ...and the coordinator's loss accounting must be visible, with
	// its per-class breakdown.
	if v := reg.Counter("shard.lost").Value(); v != 1 {
		t.Fatalf("shard.lost = %d, want 1 (the quarantined item)", v)
	}
	if v := reg.Counter("shard.lost.shard-poison").Value(); v != 1 {
		t.Fatalf("shard.lost.shard-poison = %d, want 1", v)
	}
	if v := reg.Counter("shard.poisoned").Value(); v != 1 {
		t.Fatalf("shard.poisoned = %d, want 1", v)
	}
	if v := reg.Counter("shard.retries").Value(); v == 0 {
		t.Fatal("shard.retries = 0: the garbled and stalled items must have retried")
	}
	if v := reg.Counter("shard.retries.shard-timeout").Value(); v != 1 {
		t.Fatalf("shard.retries.shard-timeout = %d, want 1 (the stalled item)", v)
	}
}

// heartbeatDialer fakes a worker that heartbeats partial metric
// deltas mid-item and then follows a script: die (partial work lost
// with the attempt) or complete with an authoritative snapshot.
func heartbeatDialer(delta, final obs.MetricsSnapshot, behave func(item, dispatch int) fakeOp) Dialer {
	var mu sync.Mutex
	seen := map[int]int{}
	return func(id int) (Transport, error) {
		coordSide, workerSide := MemPair()
		go func() {
			for {
				f, err := workerSide.Recv()
				if err != nil {
					return
				}
				mu.Lock()
				seen[f.Item]++
				n := seen[f.Item]
				mu.Unlock()
				d := delta
				workerSide.Send(Frame{Kind: frameHeartbeat, Item: f.Item, Metrics: &d})
				switch behave(f.Item, n) {
				case opDie:
					workerSide.Kill()
					return
				default:
					s := final
					res := &ItemResult{Type: "int", Metrics: &s}
					if err := workerSide.Send(Frame{Kind: frameResult, Item: f.Item, Result: res}); err != nil {
						return
					}
				}
			}
		}()
		return coordSide, nil
	}
}

func snapOf(vals map[string]int64) obs.MetricsSnapshot {
	r := obs.NewRegistry()
	for k, v := range vals {
		r.Counter(k).Add(v)
	}
	return r.Snapshot()
}

// A retried item must count exactly once: the deltas its failed
// attempt heartbeated are discarded when the retry delivers an
// authoritative snapshot.
func TestRetriedItemNeverDoubleCountsMetrics(t *testing.T) {
	delta := snapOf(map[string]int64{"worker.partial": 7})
	final := snapOf(map[string]int64{"worker.partial": 10})
	reg := obs.NewRegistry()
	opts := fastOpts(Options{
		Shards:      1,
		MaxAttempts: 3,
		PoisonKills: 3,
		Metrics:     reg,
		Dialer: heartbeatDialer(delta, final, func(item, dispatch int) fakeOp {
			if dispatch == 1 {
				return opDie
			}
			return opResult
		}),
	})
	outs := run([]WorkSpec{{Lang: langCore}}, opts)
	if outs[0].res == nil {
		t.Fatalf("retry must recover the item: %+v", outs[0])
	}
	if v := reg.Counter("worker.partial").Value(); v != 10 {
		t.Fatalf("worker.partial = %d, want 10 (the result snapshot alone; the dead attempt's delta of 7 must be discarded)", v)
	}
}

// A finally-lost item's partial work is accounted exactly once, via
// the degrade path: the last attempt's heartbeat deltas merge into
// the parent registry; earlier attempts' deltas are superseded.
func TestLostItemAccountsPartialMetricsOnce(t *testing.T) {
	delta := snapOf(map[string]int64{"worker.partial": 7})
	final := snapOf(map[string]int64{"worker.partial": 10})
	reg := obs.NewRegistry()
	opts := fastOpts(Options{
		Shards:      1,
		MaxAttempts: 2,
		PoisonKills: 5,
		Metrics:     reg,
		Dialer: heartbeatDialer(delta, final, func(item, dispatch int) fakeOp {
			return opDie // every attempt dies after heartbeating one delta
		}),
	})
	outs := run([]WorkSpec{{Lang: langCore}}, opts)
	if outs[0].res != nil {
		t.Fatal("the item must be lost")
	}
	if v := reg.Counter("worker.partial").Value(); v != 7 {
		t.Fatalf("worker.partial = %d, want 7 (one delta from the final attempt only)", v)
	}
	if v := reg.Counter("shard.lost").Value(); v != 1 {
		t.Fatalf("shard.lost = %d, want 1", v)
	}
}

// A timing-mode sharded trace carries worker events too: renumbered
// under fresh roots, tagged with their 1-based item of origin, and
// interleaved with the coordinator's own shard lifecycle events.
func TestTimedTraceCarriesWorkerEventsWithItemTags(t *testing.T) {
	tr := obs.NewTracer(obs.TraceOptions{})
	opts := chaosOpts(2)
	opts.Tracer = tr
	if _, err := ExploreCore(chaosSrc, chaosReq(), opts); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	var workerRoots, shardEvents int
	itemsSeen := map[int64]bool{}
	for _, e := range events {
		if e.Item != 0 {
			itemsSeen[e.Item] = true
			if e.Kind == obs.KindRoot {
				workerRoots++
			}
		}
		if e.Kind == obs.KindShard {
			shardEvents++
		}
	}
	if workerRoots == 0 {
		t.Fatal("no worker-origin roots were spliced into the timed trace")
	}
	if shardEvents == 0 {
		t.Fatal("coordinator shard lifecycle events missing from the timed trace")
	}
	for item := int64(1); item <= 4; item++ {
		if !itemsSeen[item] {
			t.Fatalf("no events tagged with item %d (saw %v)", item, itemsSeen)
		}
	}
	// Paths must stay well-formed after the renumbering splice: every
	// parent a strict prefix, no duplicate roots.
	roots := map[string]bool{}
	for _, e := range events {
		if e.Kind == obs.KindRoot {
			if roots[e.Path] {
				t.Fatalf("duplicate root %s after splice", e.Path)
			}
			roots[e.Path] = true
		}
		if e.Parent != "" && !strings.HasPrefix(e.Path, e.Parent+".") {
			t.Fatalf("event path %q not under parent %q", e.Path, e.Parent)
		}
	}
}
