// Package shard distributes path exploration across worker processes
// behind a fault-tolerant coordinator (DESIGN.md section 15).
//
// The coordinator splits a core-language analysis into 2^Depth subtree
// work items — one per fork-decision prefix — and dispatches them to
// worker processes speaking length-prefixed JSON frames over
// stdin/stdout (behind the Transport interface, so a network dialer
// can replace process pipes later). The item list depends only on
// Depth, never on the worker count, and surviving results merge in
// item order, so a 1-shard and an N-shard run produce byte-identical
// output.
//
// The robustness core: workers heartbeat while analyzing; a worker
// that dies (ShardLost) or goes silent past its deadline
// (ShardTimeout) is killed and respawned and its item retried with
// seeded exponential backoff, bounded by MaxAttempts; an item that
// kills two workers is quarantined as ShardPoison instead of being
// retried forever. A permanently lost item degrades the merged result
// to explicit imprecision — never a hang, never a wrong verdict.
//
// MicroC (MIXY) analyses cannot be partitioned this way — the
// qualifier fixpoint flows facts across subtrees — so ExploreMicroC
// shards for fault tolerance only: one work item, the whole analysis,
// supervised and failed over to a fresh worker under the same
// retry/backoff/quarantine policy.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"mix/internal/cliflags"
	"mix/internal/obs"
)

// Frame kinds. The coordinator sends work; workers answer with a
// stream of heartbeats terminated by one result.
const (
	frameWork      = "work"
	frameHeartbeat = "heartbeat"
	frameResult    = "result"
)

// maxFrame bounds one frame's encoded size; a garbled length prefix
// yields a bounded error, not an unbounded allocation.
const maxFrame = 64 << 20

// Frame is one protocol message, length-prefixed (4-byte big-endian)
// JSON on the wire.
type Frame struct {
	Kind   string      `json:"kind"`
	Item   int         `json:"item"`
	Work   *WorkSpec   `json:"work,omitempty"`
	Result *ItemResult `json:"result,omitempty"`
	// Metrics, on a heartbeat frame, carries the incremental metrics
	// delta since the previous heartbeat of this item — the partial
	// accounting of a long-running item. The coordinator accumulates
	// deltas per attempt and discards them when the attempt delivers a
	// result (whose snapshot is authoritative); only a finally-lost
	// item's last-attempt deltas are merged, via the degrade path, so
	// retried items never double-count.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// WorkSpec is one dispatched work item: the full program plus the
// request options and, for core-language items, the fork-decision
// prefix selecting this item's subtree.
type WorkSpec struct {
	// Lang is "core" (mix.Check) or "microc" (mix.AnalyzeC).
	Lang string `json:"lang"`
	// Source is the program text.
	Source string `json:"source"`
	// Request carries the analysis options (the mixd request schema).
	Request cliflags.Analysis `json:"request"`
	// Prefix selects the subtree (core only): bit i forces the i-th
	// top-level fork, false = then, true = else.
	Prefix []bool `json:"prefix,omitempty"`
	// HeartbeatMS is how often the worker must heartbeat while the
	// item is in flight.
	HeartbeatMS int `json:"heartbeat_ms"`
	// Chaos, when non-empty, tells the worker to misbehave for this
	// dispatch: "kill" (SIGKILL itself), "stall" (go silent for
	// StallMS before working), or "garble" (corrupt the protocol
	// stream and exit). Directives are chosen by the coordinator per
	// (item, attempt), so chaos runs are reproducible at any shard
	// count.
	Chaos   string `json:"chaos,omitempty"`
	StallMS int    `json:"stall_ms,omitempty"`
	// Metrics asks the worker to record the item's analysis into a
	// fresh registry and return its snapshot in the result frame (plus
	// incremental deltas on heartbeats).
	Metrics bool `json:"metrics,omitempty"`
	// Trace asks the worker to record the item's trace events and
	// return them in the result frame; TraceDet selects deterministic
	// mode (must match the coordinator's tracer, or the splice would
	// mix timed and wall-clock-free events).
	Trace    bool `json:"trace,omitempty"`
	TraceDet bool `json:"trace_det,omitempty"`
}

// ItemResult is one completed item's outcome — the serializable slice
// of mix.Result / mix.CResult the merge needs.
type ItemResult struct {
	// Core fields.
	Type       string   `json:"type,omitempty"`
	ErrMsg     string   `json:"err,omitempty"`
	Reports    []string `json:"reports,omitempty"`
	BlockTypes []string `json:"block_types,omitempty"`
	// MicroC fields.
	Warnings       []string `json:"warnings,omitempty"`
	BlocksAnalyzed int      `json:"blocks_analyzed,omitempty"`
	CacheHits      int      `json:"cache_hits,omitempty"`
	FixpointIters  int      `json:"fixpoint_iters,omitempty"`
	// Shared.
	Paths         int    `json:"paths,omitempty"`
	Merges        int    `json:"merges,omitempty"`
	SolverQueries int    `json:"solver_queries,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	Fault         string `json:"fault,omitempty"`
	FaultDetail   string `json:"fault_detail,omitempty"`
	// Observability payload (present when the WorkSpec asked for it):
	// the item's full registry snapshot and trace events, carried home
	// so the coordinator can merge and splice them — a sharded run
	// then reports -stats and -trace like an unsharded one.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
	Events  []obs.Event          `json:"events,omitempty"`
}

// writeFrame encodes f as a length-prefixed JSON frame.
func writeFrame(w io.Writer, f Frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("shard: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame decodes one length-prefixed JSON frame. Any framing or
// decoding failure — including an implausible length from a corrupted
// stream — is an error the coordinator classifies as ShardLost.
func readFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return Frame{}, fmt.Errorf("shard: implausible frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	var f Frame
	if err := json.Unmarshal(body, &f); err != nil {
		return Frame{}, fmt.Errorf("shard: garbled frame: %w", err)
	}
	return f, nil
}

// Prefixes enumerates the 2^depth fork-decision prefixes in
// depth-first item order: bit i of the item index (most significant
// first) forces the i-th fork, false = then, true = else. The
// enumeration is a pure function of depth — shard counts never change
// the item list, which is what makes 1-shard and N-shard merges
// byte-identical.
func Prefixes(depth int) [][]bool {
	out := make([][]bool, 1<<depth)
	for i := range out {
		p := make([]bool, depth)
		for b := 0; b < depth; b++ {
			p[b] = i&(1<<(depth-1-b)) != 0
		}
		out[i] = p
	}
	return out
}
