package shard

import (
	"time"

	"mix"
	"mix/internal/cliflags"
)

// FromFlags converts the shared CLI flag group into coordinator
// options (the conversion lives here, not in cliflags, because
// cliflags must stay importable by this package).
func FromFlags(f cliflags.Sharding) Options {
	return Options{
		Shards:      f.Shards,
		Depth:       f.Depth,
		MaxAttempts: f.Attempts,
		Heartbeat:   time.Duration(f.Heartbeat),
		ItemTimeout: time.Duration(f.ItemTimeout),
		Seed:        f.Seed,
	}
}

// ExploreCore runs a sharded core-language check: the path tree
// splits into 2^Depth subtree work items, workers explore them with
// the shard-prefix restriction, and surviving results merge in item
// order. Configuration errors return an error immediately (nothing is
// spawned); runtime losses degrade the Result instead.
//
// The request's CacheDir is intentionally not forwarded to workers:
// concurrent worker processes would race on the persistent tier, and
// isolation is the point of sharding. Warm caches belong to the
// in-process path (mixd, or -shards 0).
func ExploreCore(src string, req cliflags.Analysis, opts Options) (mix.Result, error) {
	opts = opts.withDefaults()
	cfg := req.MixConfig()
	cfg.CacheDir = ""
	cfg.ShardPrefix = make([]bool, opts.Depth)
	if err := cfg.Validate(); err != nil {
		return mix.Result{}, err
	}
	req.CacheDir = ""
	prefixes := Prefixes(opts.Depth)
	items := make([]WorkSpec, len(prefixes))
	for i, p := range prefixes {
		items[i] = WorkSpec{Lang: langCore, Source: src, Request: req, Prefix: p}
	}
	return mergeCore(run(items, opts)), nil
}

// ExploreMicroC runs a supervised MicroC analysis: MIXY's qualifier
// fixpoint flows facts across the whole program, so the analysis
// cannot be partitioned by path prefix — instead the single work item
// is the whole analysis, failed over to a fresh worker under the same
// heartbeat/retry/backoff/quarantine policy. A permanently lost run
// returns a degraded CResult, never a hang.
func ExploreMicroC(src string, req cliflags.Analysis, opts Options) (mix.CResult, error) {
	opts = opts.withDefaults()
	cfg := req.CConfig()
	cfg.CacheDir = ""
	if err := cfg.Validate(); err != nil {
		return mix.CResult{}, err
	}
	req.CacheDir = ""
	items := []WorkSpec{{Lang: langMicroC, Source: src, Request: req}}
	outs := run(items, opts)
	return mergeMicroC(outs[0])
}
