package shard

import (
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"

	"mix"
	"mix/internal/obs"
)

// Work-item languages and chaos actions.
const (
	langCore   = "core"
	langMicroC = "microc"

	chaosKill   = "kill"   // SIGKILL self before starting the item
	chaosStall  = "stall"  // go silent (no heartbeats) for StallMS
	chaosGarble = "garble" // corrupt the protocol stream and exit
)

// WorkerMain turns this process into a shard worker when the
// MIX_SHARD_WORKER guard is set, serving work frames on stdin/stdout
// until EOF, and never returns in that case. Call it first thing in
// main: the coordinator's process dialer re-executes the host binary
// with the guard set, so every binary that can coordinate can also
// serve.
func WorkerMain() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	if err := Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mixshard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Serve handles work frames on r, answering on w with heartbeats
// while an item is in flight and one result frame per item. It
// returns nil on EOF (graceful coordinator shutdown).
func Serve(r io.Reader, w io.Writer) error {
	var mu sync.Mutex // heartbeats and results share the write side
	for {
		f, err := readFrame(r)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if f.Kind != frameWork || f.Work == nil {
			return fmt.Errorf("shard: worker got %q frame, want work", f.Kind)
		}
		serveItem(w, &mu, f.Item, f.Work)
	}
}

// serveItem runs one work item: chaos directive first (tests only),
// then heartbeats ticking in the background while the analysis runs,
// then the result frame. When the spec asks for metrics, heartbeats
// carry incremental registry deltas — the partial accounting the
// coordinator keeps in case this worker never delivers a result — and
// the result frame carries the authoritative full snapshot.
func serveItem(w io.Writer, mu *sync.Mutex, item int, spec *WorkSpec) {
	switch spec.Chaos {
	case chaosKill:
		// A real crash, not an orderly exit: the coordinator sees the
		// pipes break mid-item.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	case chaosGarble:
		// An implausible length prefix: the coordinator's next read
		// fails to frame, classifying the worker as lost.
		mu.Lock()
		w.Write([]byte{0xff, 0xff, 0xff, 0xff})
		mu.Unlock()
		os.Exit(1)
	case chaosStall:
		// Silence — no heartbeats — long enough for the coordinator's
		// deadline to fire. If the stall is shorter than the deadline,
		// the item still completes normally; both outcomes are safe.
		time.Sleep(time.Duration(spec.StallMS) * time.Millisecond)
	}
	var reg *obs.Registry
	var tr *obs.Tracer
	if spec.Metrics {
		reg = obs.NewRegistry()
	}
	if spec.Trace {
		tr = obs.NewTracer(obs.TraceOptions{Deterministic: spec.TraceDet})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if hb := spec.HeartbeatMS; hb > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(time.Duration(hb) * time.Millisecond)
			defer t.Stop()
			last := reg.Snapshot()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					f := Frame{Kind: frameHeartbeat, Item: item}
					if reg != nil {
						cur := reg.Snapshot()
						if d := cur.Delta(last); len(d.Metrics) > 0 {
							f.Metrics = &d
						}
						last = cur
					}
					mu.Lock()
					// A failed heartbeat write means the coordinator is
					// gone; the result write will fail the same way.
					writeFrame(w, f)
					mu.Unlock()
				}
			}
		}()
	}
	res := runItem(spec, reg, tr)
	close(stop)
	wg.Wait()
	if reg != nil {
		snap := reg.Snapshot()
		res.Metrics = &snap
	}
	if tr != nil {
		res.Events = tr.Events()
	}
	mu.Lock()
	writeFrame(w, Frame{Kind: frameResult, Item: item, Result: res})
	mu.Unlock()
}

// runItem executes the analysis for one work item and flattens the
// facade result into the wire shape. reg and tr, when non-nil,
// receive the item's metrics and trace events.
func runItem(spec *WorkSpec, reg *obs.Registry, tr *obs.Tracer) *ItemResult {
	switch spec.Lang {
	case langCore:
		cfg := spec.Request.MixConfig()
		cfg.ShardPrefix = spec.Prefix
		cfg.Metrics = reg
		cfg.Tracer = tr
		res := mix.Check(spec.Source, cfg)
		out := &ItemResult{
			Type:          res.Type,
			Reports:       res.Reports,
			BlockTypes:    res.BlockTypes,
			Paths:         res.Paths,
			Merges:        res.Merges,
			SolverQueries: res.SolverQueries,
			Degraded:      res.Degraded,
			Fault:         res.Fault,
			FaultDetail:   res.FaultDetail,
		}
		if res.Err != nil {
			out.ErrMsg = res.Err.Error()
		}
		return out
	case langMicroC:
		cfg := spec.Request.CConfig()
		cfg.Metrics = reg
		cfg.Tracer = tr
		res, err := mix.AnalyzeC(spec.Source, cfg)
		out := &ItemResult{
			Warnings:       res.Warnings,
			Merges:         res.Merges,
			BlocksAnalyzed: res.BlocksAnalyzed,
			CacheHits:      res.CacheHits,
			FixpointIters:  res.FixpointIters,
			SolverQueries:  res.SolverQueries,
			Degraded:       res.Degraded,
			Fault:          res.Fault,
			FaultDetail:    res.FaultDetail,
		}
		if err != nil {
			out.ErrMsg = err.Error()
		}
		return out
	default:
		return &ItemResult{ErrMsg: fmt.Sprintf("shard: unknown work language %q", spec.Lang)}
	}
}
