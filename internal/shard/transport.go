package shard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Transport is one worker connection as the coordinator sees it:
// blocking frame I/O plus teardown. The process transport is the
// production implementation; a network dialer only has to return
// something satisfying this interface to distribute workers across
// machines.
type Transport interface {
	Send(Frame) error
	Recv() (Frame, error)
	// Kill tears the worker down immediately (SIGKILL for processes);
	// a blocked Recv returns an error afterwards.
	Kill()
	// Close shuts the worker down gracefully: EOF on its work stream,
	// then a bounded wait before escalating to Kill.
	Close()
}

// Dialer produces a fresh worker connection for worker slot id. The
// coordinator dials on startup and re-dials after every kill.
type Dialer func(id int) (Transport, error)

// workerEnv is the guard ProcDialer sets and WorkerMain checks: a
// process started with it serves work frames on stdin/stdout instead
// of running its normal main.
const workerEnv = "MIX_SHARD_WORKER"

// ProcDialer spawns worker processes running bin — or this very
// binary, re-executed, when bin is empty — with the worker guard set.
// Any binary whose main starts with WorkerMain() can serve.
func ProcDialer(bin string) Dialer {
	return func(id int) (Transport, error) {
		path := bin
		if path == "" {
			var err error
			path, err = os.Executable()
			if err != nil {
				return nil, fmt.Errorf("shard: resolve worker binary: %w", err)
			}
		}
		cmd := exec.Command(path)
		cmd.Env = append(os.Environ(), workerEnv+"=1")
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("shard: spawn worker %d: %w", id, err)
		}
		return &procTransport{cmd: cmd, in: in, out: bufio.NewReader(out)}, nil
	}
}

type procTransport struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	out  *bufio.Reader
	mu   sync.Mutex
	once sync.Once
}

func (t *procTransport) Send(f Frame) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return writeFrame(t.in, f)
}

func (t *procTransport) Recv() (Frame, error) { return readFrame(t.out) }

func (t *procTransport) Kill() {
	t.once.Do(func() {
		t.cmd.Process.Kill()
		t.in.Close()
		// Reap asynchronously; the pipes are already broken, so any
		// blocked Recv has returned.
		go t.cmd.Wait()
	})
}

func (t *procTransport) Close() {
	t.once.Do(func() {
		t.in.Close() // EOF ends the worker's serve loop
		done := make(chan struct{})
		go func() { t.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.cmd.Process.Kill()
			<-done
		}
	})
}

// MemPair returns two connected in-process transports — the
// coordinator side and the worker side — so coordinator behavior
// (retry, backoff, quarantine) is testable under -race without
// spawning processes. Killing or closing either side breaks both,
// like a process death breaks both pipes.
func MemPair() (coord, worker Transport) {
	c2w := make(chan Frame, 16)
	w2c := make(chan Frame, 16)
	done := make(chan struct{})
	once := &sync.Once{}
	coord = &memTransport{send: c2w, recv: w2c, done: done, once: once}
	worker = &memTransport{send: w2c, recv: c2w, done: done, once: once}
	return coord, worker
}

type memTransport struct {
	send chan<- Frame
	recv <-chan Frame
	done chan struct{}
	once *sync.Once
}

func (t *memTransport) Send(f Frame) error {
	select {
	case <-t.done:
		return fmt.Errorf("shard: transport closed")
	default:
	}
	select {
	case t.send <- f:
		return nil
	case <-t.done:
		return fmt.Errorf("shard: transport closed")
	}
}

func (t *memTransport) Recv() (Frame, error) {
	select {
	case f := <-t.recv:
		return f, nil
	case <-t.done:
		// Frames sent before the kill are still readable, matching a
		// real pipe (data written before SIGKILL survives the writer).
		// Without this drain, a heartbeat buffered just before Kill
		// races the closed done channel in the select above and can be
		// silently dropped.
		select {
		case f := <-t.recv:
			return f, nil
		default:
			return Frame{}, io.EOF
		}
	}
}

func (t *memTransport) Kill()  { t.once.Do(func() { close(t.done) }) }
func (t *memTransport) Close() { t.Kill() }
