package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mix/internal/fault"
	"mix/internal/obs"
)

// Options configures a sharded exploration.
type Options struct {
	// Shards is the worker-process count (default 1). The item list
	// and merged output never depend on it — only wall-clock does.
	Shards int
	// Depth is the fork-prefix depth: a core analysis splits into
	// 2^Depth work items (default 2). MicroC analyses ignore it (one
	// item, supervised failover only).
	Depth int
	// WorkerBin is the worker executable; empty re-executes this
	// binary (its main must start with WorkerMain).
	WorkerBin string
	// Dialer overrides WorkerBin entirely (tests use MemPair-backed
	// dialers to run the coordinator under -race without processes).
	Dialer Dialer
	// Heartbeat is the period workers must beat at while an item is
	// in flight (default 100ms).
	Heartbeat time.Duration
	// ItemTimeout is the maximum silence — no heartbeat, no result —
	// before a shard is declared lost and killed (default
	// max(10×Heartbeat, 2s)).
	ItemTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per item (default 3).
	MaxAttempts int
	// PoisonKills is how many workers an item may kill before it is
	// quarantined as ShardPoison instead of retried (default 2): a
	// deterministic crasher would otherwise burn the whole retry
	// budget re-killing fresh workers.
	PoisonKills int
	// BackoffBase is the first retry delay; it doubles per attempt,
	// jittered 0.5–1.5x by Seed, capped at 2s (default 25ms).
	BackoffBase time.Duration
	// Seed seeds the backoff jitter (timing only — never output).
	Seed int64
	// Chaos injects worker misbehavior per (item, attempt) — the
	// directives travel in the WorkSpec, so runs are reproducible at
	// any shard count.
	Chaos []ChaosDirective
	// Injector, when armed at fault.ShardItem, fails dispatches
	// in-process before any worker is involved — the hook the -race
	// coordinator tests use.
	Injector *fault.Injector
	// Tracer records shard lifecycle events (timing-only "shard"
	// events, plus one deterministic "degrade" event per lost
	// subtree). Metrics receives dispatch/retry/loss counters.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// ChaosDirective makes the worker serving the given item misbehave on
// the given attempt (1-based; 0 means the first).
type ChaosDirective struct {
	Item    int
	Attempt int
	Action  string // "kill", "stall", or "garble"
	StallMS int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Depth <= 0 {
		o.Depth = 2
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 100 * time.Millisecond
	}
	if o.ItemTimeout <= 0 {
		o.ItemTimeout = 10 * o.Heartbeat
		if o.ItemTimeout < 2*time.Second {
			o.ItemTimeout = 2 * time.Second
		}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.PoisonKills <= 0 {
		o.PoisonKills = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	return o
}

// outcome is one item's final fate: a result, or a classified loss.
type outcome struct {
	res      *ItemResult // nil when the subtree was lost
	class    fault.Class // the loss class, when res is nil
	detail   string
	attempts int
	kills    int
}

type coordinator struct {
	opts Options
	// span is the coordinator's root span; it is only emitted to from
	// the coordinating goroutine (spans are single-goroutine). Each
	// shard slot gets its own child span for timing-only lifecycle
	// events.
	span  *obs.Span
	spans []*obs.Span
	mu    sync.Mutex // guards rng
	rng   *rand.Rand

	items []WorkSpec
	queue chan int
	outMu sync.Mutex
	outs  []outcome
}

// run dispatches items across opts.Shards workers and returns one
// outcome per item, in item order. It never returns early: every item
// either completes or is explicitly recorded lost, so callers always
// get a verdict (possibly degraded), never a hang.
func run(items []WorkSpec, opts Options) []outcome {
	opts = opts.withDefaults()
	dial := opts.Dialer
	if dial == nil {
		dial = ProcDialer(opts.WorkerBin)
	}
	c := &coordinator{
		opts:  opts,
		span:  opts.Tracer.Root("shard.coordinator"),
		rng:   rand.New(rand.NewSource(opts.Seed)),
		items: items,
		queue: make(chan int, len(items)),
		outs:  make([]outcome, len(items)),
	}
	for i := range items {
		c.queue <- i
	}
	close(c.queue)
	shards := opts.Shards
	if shards > len(items) {
		shards = len(items)
	}
	c.span.ShardEvent(fmt.Sprintf("start: %d items across %d shards", len(items), shards), "")
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		c.spans = append(c.spans, c.span.Child())
	}
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c.shardLoop(id, dial)
		}(w)
	}
	wg.Wait()
	// Degrade events are emitted here — after the barrier, in item
	// order, on the root span — not from the racing slot goroutines:
	// they survive deterministic-trace mode, so their paths and order
	// must be a pure function of the item list, never of scheduling or
	// shard count.
	for i := range c.outs {
		out := &c.outs[i]
		if out.res != nil {
			continue
		}
		c.span.Degrade(out.class.String(), fmt.Sprintf("item %d subtree lost after %d attempts: %s", i, out.attempts, out.detail))
		c.inc("shard.lost_items")
	}
	if m := opts.Metrics; m != nil {
		m.Gauge("shard.items").Set(int64(len(items)))
		m.Gauge("shard.shards").Set(int64(shards))
	}
	return c.outs
}

// conn is a dialed worker plus its reader goroutine. The reader lives
// as long as the connection — not one attempt — because a reader
// blocked in Recv across attempt boundaries would steal (and drop)
// the next item's frames from a healthy reused transport.
type conn struct {
	t      Transport
	frames chan recvMsg
	done   chan struct{}
}

type recvMsg struct {
	f   Frame
	err error
}

func newConn(t Transport) *conn {
	cn := &conn{t: t, frames: make(chan recvMsg, 8), done: make(chan struct{})}
	go func() {
		for {
			f, err := t.Recv()
			select {
			case cn.frames <- recvMsg{f, err}:
			case <-cn.done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return cn
}

// kill tears the worker down and releases the reader.
func (cn *conn) kill() {
	cn.t.Kill()
	close(cn.done)
}

// close shuts the worker down gracefully and releases the reader.
func (cn *conn) close() {
	cn.t.Close()
	close(cn.done)
}

// shardLoop drains the item queue on one worker slot; retries stay on
// the slot (each retry gets a freshly dialed worker, which is what
// "retried elsewhere" means when workers are fungible).
func (c *coordinator) shardLoop(id int, dial Dialer) {
	var cn *conn
	defer func() {
		if cn != nil {
			cn.close()
		}
	}()
	for item := range c.queue {
		c.runItem(id, &cn, dial, item)
	}
}

// runItem drives one item to an outcome: dispatch, classify any
// failure, back off and retry while the class is transient and the
// budgets allow, quarantine a repeat killer, and degrade gracefully —
// with a deterministic trace record — when the subtree is lost.
func (c *coordinator) runItem(id int, cn **conn, dial Dialer, item int) {
	var out outcome
	for {
		out.attempts++
		class, detail, res := c.attempt(id, cn, dial, item, out.attempts)
		if res != nil {
			out.res = res
			break
		}
		out.kills++
		c.inc("shard.kills")
		c.spans[id].ShardEvent(fmt.Sprintf("item %d attempt %d failed: %s", item, out.attempts, detail), class.String())
		if out.kills >= c.opts.PoisonKills {
			// The item, not the worker, is the likely culprit: stop
			// feeding it fresh workers.
			out.class = fault.ShardPoison
			out.detail = fmt.Sprintf("item %d quarantined after killing %d workers (last: %s)", item, out.kills, detail)
			c.inc("shard.poisoned")
			break
		}
		if !class.Transient() || out.attempts >= c.opts.MaxAttempts {
			out.class, out.detail = class, detail
			break
		}
		d := c.backoff(out.attempts)
		c.inc("shard.retries")
		c.spans[id].ShardEvent(fmt.Sprintf("item %d retrying in %v", item, d), class.String())
		time.Sleep(d)
	}
	if out.res != nil {
		c.inc("shard.items_done")
	}
	c.outMu.Lock()
	c.outs[item] = out
	c.outMu.Unlock()
}

// attempt dispatches item once. A nil result means the attempt
// failed; the class and detail say how.
func (c *coordinator) attempt(id int, cn **conn, dial Dialer, item, attempt int) (fault.Class, string, *ItemResult) {
	// Deterministic in-process chaos: the injector fails the dispatch
	// before any worker is involved.
	if inj := c.opts.Injector; inj != nil {
		if err := inj.At(fault.ShardItem); err != nil {
			return fault.ClassOf(err), err.Error(), nil
		}
	}
	if *cn == nil {
		nt, err := dial(id)
		if err != nil {
			return fault.ShardLost, fmt.Sprintf("item %d attempt %d: dial failed: %v", item, attempt, err), nil
		}
		*cn = newConn(nt)
		c.inc("shard.workers_spawned")
	}
	tr := *cn
	spec := c.items[item]
	spec.HeartbeatMS = int(c.opts.Heartbeat / time.Millisecond)
	if d := c.chaosFor(item, attempt); d != nil {
		spec.Chaos, spec.StallMS = d.Action, d.StallMS
	}
	c.inc("shard.dispatches")
	c.spans[id].ShardEvent(fmt.Sprintf("dispatch item %d attempt %d to worker %d", item, attempt, id), "")
	if err := tr.t.Send(Frame{Kind: frameWork, Item: item, Work: &spec}); err != nil {
		c.discard(cn)
		return fault.ShardLost, fmt.Sprintf("item %d attempt %d: send failed: %v", item, attempt, err), nil
	}

	// Await the result, enforcing the silence deadline.
	deadline := time.NewTimer(c.opts.ItemTimeout)
	defer deadline.Stop()
	for {
		select {
		case m := <-tr.frames:
			if m.err != nil {
				// Pipe broke: the worker died (or garbled the stream,
				// which is indistinguishable from the outside and equally
				// fatal to the connection).
				c.discard(cn)
				return fault.ShardLost, fmt.Sprintf("item %d attempt %d: worker lost: %v", item, attempt, m.err), nil
			}
			switch {
			case m.f.Kind == frameHeartbeat && m.f.Item == item:
				c.inc("shard.heartbeats")
				if !deadline.Stop() {
					select {
					case <-deadline.C:
					default:
					}
				}
				deadline.Reset(c.opts.ItemTimeout)
			case m.f.Kind == frameResult && m.f.Item == item && m.f.Result != nil:
				return 0, "", m.f.Result
			default:
				c.discard(cn)
				return fault.ShardLost, fmt.Sprintf("item %d attempt %d: protocol violation: %q frame for item %d", item, attempt, m.f.Kind, m.f.Item), nil
			}
		case <-deadline.C:
			c.discard(cn)
			return fault.ShardTimeout, fmt.Sprintf("item %d attempt %d: worker silent past %v", item, attempt, c.opts.ItemTimeout), nil
		}
	}
}

// discard kills the current worker and forgets it; the next attempt
// dials a fresh one.
func (c *coordinator) discard(cn **conn) {
	if *cn != nil {
		(*cn).kill()
		*cn = nil
	}
}

// backoff computes the jittered exponential delay before retrying the
// given attempt: base·2^(attempt-1), jittered 0.5–1.5x, capped at 2s.
// The jitter keeps respawned workers from stampeding; the seed makes
// chaos-test timing reproducible. Only timing depends on it — output
// never does.
func (c *coordinator) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase << uint(attempt-1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	c.mu.Lock()
	j := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * j)
}

func (c *coordinator) chaosFor(item, attempt int) *ChaosDirective {
	for i := range c.opts.Chaos {
		d := &c.opts.Chaos[i]
		a := d.Attempt
		if a == 0 {
			a = 1
		}
		if d.Item == item && a == attempt {
			return d
		}
	}
	return nil
}

func (c *coordinator) inc(name string) {
	if m := c.opts.Metrics; m != nil {
		m.Counter(name).Inc()
	}
}
