package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mix/internal/fault"
	"mix/internal/obs"
)

// Options configures a sharded exploration.
type Options struct {
	// Shards is the worker-process count (default 1). The item list
	// and merged output never depend on it — only wall-clock does.
	Shards int
	// Depth is the fork-prefix depth: a core analysis splits into
	// 2^Depth work items (default 2). MicroC analyses ignore it (one
	// item, supervised failover only).
	Depth int
	// WorkerBin is the worker executable; empty re-executes this
	// binary (its main must start with WorkerMain).
	WorkerBin string
	// Dialer overrides WorkerBin entirely (tests use MemPair-backed
	// dialers to run the coordinator under -race without processes).
	Dialer Dialer
	// Heartbeat is the period workers must beat at while an item is
	// in flight (default 100ms).
	Heartbeat time.Duration
	// ItemTimeout is the maximum silence — no heartbeat, no result —
	// before a shard is declared lost and killed (default
	// max(10×Heartbeat, 2s)).
	ItemTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per item (default 3).
	MaxAttempts int
	// PoisonKills is how many workers an item may kill before it is
	// quarantined as ShardPoison instead of retried (default 2): a
	// deterministic crasher would otherwise burn the whole retry
	// budget re-killing fresh workers.
	PoisonKills int
	// BackoffBase is the first retry delay; it doubles per attempt,
	// jittered 0.5–1.5x by Seed, capped at 2s (default 25ms).
	BackoffBase time.Duration
	// Seed seeds the backoff jitter (timing only — never output).
	Seed int64
	// Chaos injects worker misbehavior per (item, attempt) — the
	// directives travel in the WorkSpec, so runs are reproducible at
	// any shard count.
	Chaos []ChaosDirective
	// Injector, when armed at fault.ShardItem, fails dispatches
	// in-process before any worker is involved — the hook the -race
	// coordinator tests use.
	Injector *fault.Injector
	// Tracer records shard lifecycle events (timing-only "shard"
	// events, plus one deterministic "degrade" event per lost
	// subtree). Metrics receives dispatch/retry/loss counters.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// ChaosDirective makes the worker serving the given item misbehave on
// the given attempt (1-based; 0 means the first).
type ChaosDirective struct {
	Item    int
	Attempt int
	Action  string // "kill", "stall", or "garble"
	StallMS int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Depth <= 0 {
		o.Depth = 2
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 100 * time.Millisecond
	}
	if o.ItemTimeout <= 0 {
		o.ItemTimeout = 10 * o.Heartbeat
		if o.ItemTimeout < 2*time.Second {
			o.ItemTimeout = 2 * time.Second
		}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.PoisonKills <= 0 {
		o.PoisonKills = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	return o
}

// outcome is one item's final fate: a result, or a classified loss.
type outcome struct {
	res      *ItemResult // nil when the subtree was lost
	class    fault.Class // the loss class, when res is nil
	detail   string
	attempts int
	kills    int
	// pending holds the heartbeat metric deltas of the item's last
	// attempt. When the attempt succeeds they are discarded (the
	// result snapshot is authoritative); when the item is finally lost
	// they are the only accounting its partial work ever gets, merged
	// into the parent registry via the degrade path. Each attempt
	// replaces pending wholesale, so a retried item never counts an
	// abandoned attempt's work.
	pending []obs.MetricsSnapshot
}

type coordinator struct {
	opts Options
	// span is the coordinator's root span; it is only emitted to from
	// the coordinating goroutine (spans are single-goroutine). Each
	// shard slot gets its own child span for timing-only lifecycle
	// events.
	span  *obs.Span
	spans []*obs.Span
	mu    sync.Mutex // guards rng
	rng   *rand.Rand

	items []WorkSpec
	queue chan int
	outMu sync.Mutex
	outs  []outcome
}

// run dispatches items across opts.Shards workers and returns one
// outcome per item, in item order. It never returns early: every item
// either completes or is explicitly recorded lost, so callers always
// get a verdict (possibly degraded), never a hang.
func run(items []WorkSpec, opts Options) []outcome {
	opts = opts.withDefaults()
	dial := opts.Dialer
	if dial == nil {
		dial = ProcDialer(opts.WorkerBin)
	}
	// Observability rides in the work specs: when the caller threads a
	// registry or tracer, every worker records its item into fresh
	// local instances and carries them home in the result frame.
	for i := range items {
		items[i].Metrics = opts.Metrics != nil
		items[i].Trace = opts.Tracer != nil
		items[i].TraceDet = opts.Tracer.Deterministic()
	}
	c := &coordinator{
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		items: items,
		queue: make(chan int, len(items)),
		outs:  make([]outcome, len(items)),
	}
	// In timing mode the coordinator's root span exists up front — the
	// slot goroutines emit lifecycle events on its children as they
	// work. In deterministic mode those events are suppressed anyway,
	// and the root must NOT exist yet: the splice below injects worker
	// roots under their original IDs (r00000...), and a root numbered
	// before them would collide. The deterministic root is created
	// after the splice, and only when a lost subtree needs a degrade
	// event — a clean sharded trace is exactly the unsharded trace.
	det := opts.Tracer.Deterministic()
	if !det {
		c.span = opts.Tracer.Root("shard.coordinator")
	}
	for i := range items {
		c.queue <- i
	}
	close(c.queue)
	shards := opts.Shards
	if shards > len(items) {
		shards = len(items)
	}
	c.span.ShardEvent(fmt.Sprintf("start: %d items across %d shards", len(items), shards), "")
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		c.spans = append(c.spans, c.span.Child())
	}
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c.shardLoop(id, dial)
		}(w)
	}
	wg.Wait()
	// Aggregation happens here — after the barrier, in item order,
	// never from the racing slot goroutines: merged metrics and
	// spliced traces must be a pure function of the item list, so any
	// shard count (and any interleaving of completions) aggregates to
	// byte-identical output. Completed items contribute their
	// authoritative result snapshot; lost items contribute the partial
	// deltas their last attempt heartbeated before dying — retried
	// attempts that were superseded are already discarded.
	lost := false
	for i := range c.outs {
		out := &c.outs[i]
		if out.res != nil {
			if out.res.Metrics != nil {
				opts.Metrics.Merge(*out.res.Metrics)
			}
			opts.Tracer.Splice(i, out.res.Events)
			continue
		}
		lost = true
		for _, d := range out.pending {
			opts.Metrics.Merge(d)
		}
	}
	if det && lost {
		c.span = opts.Tracer.Root("shard.coordinator")
	}
	// Degrade events follow the splice so the deterministic root sorts
	// after every worker subtree; they are emitted in item order for
	// the same reason the merge is.
	for i := range c.outs {
		out := &c.outs[i]
		if out.res != nil {
			continue
		}
		c.span.Degrade(out.class.String(), fmt.Sprintf("item %d subtree lost after %d attempts: %s", i, out.attempts, out.detail))
		c.inc("shard.lost")
		c.inc("shard.lost." + out.class.String())
	}
	if m := opts.Metrics; m != nil {
		m.Gauge("shard.items").Set(int64(len(items)))
		m.Gauge("shard.shards").Set(int64(shards))
	}
	return c.outs
}

// conn is a dialed worker plus its reader goroutine. The reader lives
// as long as the connection — not one attempt — because a reader
// blocked in Recv across attempt boundaries would steal (and drop)
// the next item's frames from a healthy reused transport.
type conn struct {
	t      Transport
	frames chan recvMsg
	done   chan struct{}
}

type recvMsg struct {
	f   Frame
	err error
}

func newConn(t Transport) *conn {
	cn := &conn{t: t, frames: make(chan recvMsg, 8), done: make(chan struct{})}
	go func() {
		for {
			f, err := t.Recv()
			select {
			case cn.frames <- recvMsg{f, err}:
			case <-cn.done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return cn
}

// kill tears the worker down and releases the reader.
func (cn *conn) kill() {
	cn.t.Kill()
	close(cn.done)
}

// close shuts the worker down gracefully and releases the reader.
func (cn *conn) close() {
	cn.t.Close()
	close(cn.done)
}

// shardLoop drains the item queue on one worker slot; retries stay on
// the slot (each retry gets a freshly dialed worker, which is what
// "retried elsewhere" means when workers are fungible).
func (c *coordinator) shardLoop(id int, dial Dialer) {
	var cn *conn
	defer func() {
		if cn != nil {
			cn.close()
		}
	}()
	for item := range c.queue {
		c.runItem(id, &cn, dial, item)
	}
}

// runItem drives one item to an outcome: dispatch, classify any
// failure, back off and retry while the class is transient and the
// budgets allow, quarantine a repeat killer, and degrade gracefully —
// with a deterministic trace record — when the subtree is lost.
func (c *coordinator) runItem(id int, cn **conn, dial Dialer, item int) {
	var out outcome
	for {
		out.attempts++
		class, detail, res, pending := c.attempt(id, cn, dial, item, out.attempts)
		// Each attempt's heartbeat deltas replace the previous
		// attempt's: a retry re-runs the item from scratch, so keeping
		// both would double-count the abandoned attempt's work.
		out.pending = pending
		if res != nil {
			out.res = res
			out.pending = nil // the result snapshot is authoritative
			break
		}
		out.kills++
		c.inc("shard.kills")
		c.spans[id].ShardEvent(fmt.Sprintf("item %d attempt %d failed: %s", item, out.attempts, detail), class.String())
		if out.kills >= c.opts.PoisonKills {
			// The item, not the worker, is the likely culprit: stop
			// feeding it fresh workers.
			out.class = fault.ShardPoison
			out.detail = fmt.Sprintf("item %d quarantined after killing %d workers (last: %s)", item, out.kills, detail)
			c.inc("shard.poisoned")
			break
		}
		if !class.Transient() || out.attempts >= c.opts.MaxAttempts {
			out.class, out.detail = class, detail
			break
		}
		d := c.backoff(out.attempts)
		c.inc("shard.retries")
		c.inc("shard.retries." + class.String())
		c.spans[id].ShardEvent(fmt.Sprintf("item %d retrying in %v", item, d), class.String())
		time.Sleep(d)
	}
	if out.res != nil {
		c.inc("shard.items_done")
	}
	c.outMu.Lock()
	c.outs[item] = out
	c.outMu.Unlock()
}

// attempt dispatches item once. A nil result means the attempt
// failed; the class and detail say how. pending accumulates the
// metric deltas the worker heartbeated during this attempt — partial
// accounting the caller keeps only if the item is finally lost.
func (c *coordinator) attempt(id int, cn **conn, dial Dialer, item, attempt int) (fault.Class, string, *ItemResult, []obs.MetricsSnapshot) {
	var pending []obs.MetricsSnapshot
	// Deterministic in-process chaos: the injector fails the dispatch
	// before any worker is involved.
	if inj := c.opts.Injector; inj != nil {
		if err := inj.At(fault.ShardItem); err != nil {
			return fault.ClassOf(err), err.Error(), nil, nil
		}
	}
	if *cn == nil {
		nt, err := dial(id)
		if err != nil {
			return fault.ShardLost, fmt.Sprintf("item %d attempt %d: dial failed: %v", item, attempt, err), nil, nil
		}
		*cn = newConn(nt)
		c.inc("shard.workers_spawned")
	}
	tr := *cn
	spec := c.items[item]
	spec.HeartbeatMS = int(c.opts.Heartbeat / time.Millisecond)
	if d := c.chaosFor(item, attempt); d != nil {
		spec.Chaos, spec.StallMS = d.Action, d.StallMS
	}
	c.inc("shard.dispatches")
	c.spans[id].ShardEvent(fmt.Sprintf("dispatch item %d attempt %d to worker %d", item, attempt, id), "")
	if err := tr.t.Send(Frame{Kind: frameWork, Item: item, Work: &spec}); err != nil {
		c.discard(cn)
		return fault.ShardLost, fmt.Sprintf("item %d attempt %d: send failed: %v", item, attempt, err), nil, nil
	}

	// Await the result, enforcing the silence deadline.
	deadline := time.NewTimer(c.opts.ItemTimeout)
	defer deadline.Stop()
	for {
		select {
		case m := <-tr.frames:
			if m.err != nil {
				// Pipe broke: the worker died (or garbled the stream,
				// which is indistinguishable from the outside and equally
				// fatal to the connection).
				c.discard(cn)
				return fault.ShardLost, fmt.Sprintf("item %d attempt %d: worker lost: %v", item, attempt, m.err), nil, pending
			}
			switch {
			case m.f.Kind == frameHeartbeat && m.f.Item == item:
				c.inc("shard.heartbeats")
				if m.f.Metrics != nil {
					pending = append(pending, *m.f.Metrics)
				}
				if !deadline.Stop() {
					select {
					case <-deadline.C:
					default:
					}
				}
				deadline.Reset(c.opts.ItemTimeout)
			case m.f.Kind == frameResult && m.f.Item == item && m.f.Result != nil:
				return 0, "", m.f.Result, nil
			default:
				c.discard(cn)
				return fault.ShardLost, fmt.Sprintf("item %d attempt %d: protocol violation: %q frame for item %d", item, attempt, m.f.Kind, m.f.Item), nil, pending
			}
		case <-deadline.C:
			c.discard(cn)
			return fault.ShardTimeout, fmt.Sprintf("item %d attempt %d: worker silent past %v", item, attempt, c.opts.ItemTimeout), nil, pending
		}
	}
}

// discard kills the current worker and forgets it; the next attempt
// dials a fresh one.
func (c *coordinator) discard(cn **conn) {
	if *cn != nil {
		(*cn).kill()
		*cn = nil
	}
}

// backoff computes the jittered exponential delay before retrying the
// given attempt: base·2^(attempt-1), jittered 0.5–1.5x, capped at 2s.
// The jitter keeps respawned workers from stampeding; the seed makes
// chaos-test timing reproducible. Only timing depends on it — output
// never does.
func (c *coordinator) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase << uint(attempt-1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	c.mu.Lock()
	j := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * j)
}

func (c *coordinator) chaosFor(item, attempt int) *ChaosDirective {
	for i := range c.opts.Chaos {
		d := &c.opts.Chaos[i]
		a := d.Attempt
		if a == 0 {
			a = 1
		}
		if d.Item == item && a == attempt {
			return d
		}
	}
	return nil
}

func (c *coordinator) inc(name string) {
	if m := c.opts.Metrics; m != nil {
		m.Counter(name).Inc()
	}
}
