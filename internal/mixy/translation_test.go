package mixy

import (
	"strings"
	"testing"
)

// Tests for the Section 4.1 translations in isolation.

func TestReturnValueTranslation(t *testing.T) {
	// A symbolic block that may return null constrains its return
	// qualifier; the typed caller's use then warns.
	src := `
void sink(int *nonnull q) MIX(typed) { return; }
int *get(int n) MIX(symbolic) {
  if (n > 0) return malloc(sizeof(int));
  return NULL;
}
int main(void) {
  sink(get(1));
  return 0;
}
`
	a := analyze(t, src, Options{})
	if len(nullWarnings(a)) == 0 {
		t.Fatalf("maybe-null return must reach sink: %v", a.Warnings)
	}
}

func TestNonNullReturnTranslation(t *testing.T) {
	src := `
void sink(int *nonnull q) MIX(typed) { return; }
int *get(int n) MIX(symbolic) {
  if (n > 0) return malloc(sizeof(int));
  return malloc(sizeof(int));
}
int main(void) {
  sink(get(1));
  return 0;
}
`
	a := analyze(t, src, Options{})
	if got := nullWarnings(a); len(got) != 0 {
		t.Fatalf("never-null return must not warn: %v", got)
	}
}

func TestArgumentTranslationIntoTypedCall(t *testing.T) {
	// A possibly-null argument entering a typed call constrains the
	// callee's parameter; an inferred (not annotated) sink catches it.
	src := `
void use(int *p) MIX(typed) {
  really_use(p);
}
void really_use(int *nonnull q) MIX(typed) { return; }
void blk(int n) MIX(symbolic) {
  int *x = NULL;
  if (n > 0) x = malloc(sizeof(int));
  use(x);
}
int main(void) { blk(0); return 0; }
`
	a := analyze(t, src, Options{})
	if len(nullWarnings(a)) == 0 {
		t.Fatalf("possibly-null arg must flow through typed region to the sink: %v", a.Warnings)
	}
}

func TestGuardedArgumentTranslation(t *testing.T) {
	src := `
void use(int *p) MIX(typed) {
  really_use(p);
}
void really_use(int *nonnull q) MIX(typed) { return; }
void blk(int n) MIX(symbolic) {
  int *x = NULL;
  if (n > 0) x = malloc(sizeof(int));
  if (x != NULL) use(x);
}
int main(void) { blk(0); return 0; }
`
	a := analyze(t, src, Options{})
	if got := nullWarnings(a); len(got) != 0 {
		t.Fatalf("guarded arg must not warn: %v", got)
	}
}

func TestStrictInitOption(t *testing.T) {
	src := `
void sink(int *nonnull q) MIX(typed) { return; }
int *g;
int main(void) {
  sink(g);
  return 0;
}
`
	// Paper behavior: only explicit NULL uses are sources.
	paper := analyze(t, src, Options{})
	if got := nullWarnings(paper); len(got) != 0 {
		t.Fatalf("paper mode should not treat uninitialized globals as null: %v", got)
	}
	// Strict C semantics: the zero-initialized global is null.
	strict := analyze(t, src, Options{StrictInit: true})
	if len(nullWarnings(strict)) == 0 {
		t.Fatalf("strict mode must warn: %v", strict.Warnings)
	}
	found := false
	for _, w := range strict.Warnings {
		if strings.Contains(w.Msg, "implicit zero initialization") {
			found = true
		}
	}
	if !found {
		t.Fatalf("warning should cite the implicit initialization: %v", strict.Warnings)
	}
}

func TestFieldNullTranslation(t *testing.T) {
	// The null-then-malloc field idiom (Section 2): a symbolic block
	// nulls a field and repairs it immediately.
	src := `
struct box { int *obj; };
void sink(int *nonnull q) MIX(typed) { return; }
struct box *g_box;
void init(struct box *x) MIX(symbolic) {
  x->obj = NULL;
  x->obj = malloc(sizeof(int));
}
int main(void) {
  g_box = malloc(sizeof(struct box));
  init(g_box);
  sink(g_box->obj);
  return 0;
}
`
	base := analyze(t, src, Options{IgnoreAnnotations: true})
	if len(nullWarnings(base)) == 0 {
		t.Fatalf("flow-insensitive baseline should warn: %v", base.Warnings)
	}
	mixed := analyze(t, src, Options{})
	if got := nullWarnings(mixed); len(got) != 0 {
		t.Fatalf("repaired field must not warn under MIXY: %v", got)
	}
}
