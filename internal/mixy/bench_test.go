package mixy

import (
	"fmt"
	"testing"

	"mix/internal/corpus"
)

func BenchmarkCases(b *testing.B) {
	for _, c := range corpus.Cases {
		c := c
		prog := mustParse(c.Source)
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(prog, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVsftpdMini(b *testing.B) {
	prog := mustParse(corpus.VsftpdMini.Source)
	for _, pure := range []bool{true, false} {
		pure := pure
		name := "mixy"
		if pure {
			name = "pure-types"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(prog, Options{IgnoreAnnotations: pure}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSyntheticSweep(b *testing.B) {
	for _, k := range []int{0, 1, 2} {
		k := k
		prog := mustParse(corpus.SyntheticVsftpd(10, k))
		b.Run(fmt.Sprintf("blocks=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(prog, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHavocAblation(b *testing.B) {
	prog := mustParse(corpus.SyntheticVsftpd(8, 2))
	for _, havoc := range []bool{true, false} {
		havoc := havoc
		name := "havoc=on"
		if !havoc {
			name = "havoc=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(prog, Options{NoHavoc: !havoc}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
