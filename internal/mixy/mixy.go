// Package mixy is the MIXY prototype of the paper's Section 4: it
// mixes flow-insensitive null/nonnull type qualifier inference
// (internal/qual) with a symbolic executor (internal/symexec) for
// MicroC programs, switching between the analyses at function
// boundaries annotated MIX(typed) or MIX(symbolic).
//
// The implementation follows the paper's structure:
//
//   - Section 4.1 — translation between qualifiers and symbolic
//     values in both directions, with optimistic (nonnull) defaults
//     and a global least fixed point as nullness is discovered.
//   - Section 4.2 — a memory model seeded from the may points-to
//     analysis; aliasing relationships are restored with unification
//     constraints when entering typed blocks.
//   - Section 4.3 — block results are cached keyed by their typed
//     calling context.
//   - Section 4.4 — recursion between typed and symbolic blocks is
//     cut with a block stack and resolved by the fixed point.
package mixy

import (
	"fmt"
	"sort"

	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/microc"
	"mix/internal/obs"
	"mix/internal/pointer"
	"mix/internal/qual"
	"mix/internal/solver"
	"mix/internal/symexec"
)

// Options configures a MIXY run.
type Options struct {
	// Entry is the entry function; defaults to "main".
	Entry string
	// IgnoreAnnotations treats every function as typed, giving pure
	// qualifier inference (the paper's baseline).
	IgnoreAnnotations bool
	// NoCache disables block caching (Section 4.3 ablation).
	NoCache bool
	// NoHavoc keeps symbolic memory across typed calls instead of
	// havocking it (ablating the formalism-faithful μ′ behavior).
	NoHavoc bool
	// StrictInit treats uninitialized pointer globals as null sources
	// (C zero-initialization). The paper's MIXY only tracks explicit
	// NULL uses; strict mode is what the concrete semantics validates.
	StrictInit bool
	// MaxFixpoint bounds global fixed-point iterations.
	MaxFixpoint int
	// Merge enables veritesting-style join-point state merging in the
	// per-block executor (DESIGN.md section 12): MIX(symbolic) blocks
	// with internal branching stop exploding the fixpoint. MergeCap is
	// the joins-mode divergence cap (0 = executor default).
	Merge    engine.MergeMode
	MergeCap int
	// Summaries, when non-nil, answers eligible calls in the per-block
	// executor from compositional function summaries
	// (internal/summary.Store.Precompute) instead of inlining; every
	// fallback stays observable through the Summarizer's counters.
	Summaries symexec.Summarizer
	// Engine, when non-nil, routes all solver queries through the
	// engine's memoizing pool and evaluates the symbolic-to-typed
	// translation queries of each block in parallel across its
	// workers. Path exploration itself stays serial (the executor
	// hooks mutate the shared qualifier inference), so results are
	// identical to a run without an engine.
	Engine *engine.Engine
	// Tracer records fixpoint-loop structure (per-iteration frontier
	// sizes, block-cache hits and misses, analyzed blocks, degradation
	// provenance) as trace events. When nil, the Engine's tracer is
	// used, so a CLI -trace captures MIXY structure with no extra
	// wiring; with neither, tracing is off.
	Tracer *obs.Tracer
	// Solver selects the search core and resource bounds of the
	// per-block executor's own solver (used when Engine is nil; with
	// an engine, the pool's solvers are configured by the engine's
	// own options). The zero value is the default CDCL core.
	Solver solver.Config
}

// Warning is an analysis finding.
type Warning struct {
	Source string // "qual", "symexec", or "mixy"
	Msg    string
}

func (w Warning) String() string { return w.Source + ": " + w.Msg }

// Stats counts MIXY work; the E3 timing experiment reads these.
type Stats struct {
	FixpointIters  int
	BlocksAnalyzed int
	CacheHits      int
	CacheMisses    int
	RecursionCuts  int
	SolverQueries  int
	// Faults counts classified aborts absorbed anywhere in the run
	// (engine, solver pool, executor, fixed point); -stats reports it.
	Faults fault.Snapshot
}

// Analysis is one MIXY run over a program.
type Analysis struct {
	Prog *microc.Program
	PA   *pointer.Analysis
	Inf  *qual.Inference
	Exec *symexec.Executor

	opts     Options
	eng      *engine.Engine
	span     *obs.Span // fixpoint-loop trace root; nil when tracing is off
	Warnings []Warning
	Stats    Stats

	// degraded is the first run-stopping classified fault (expired
	// deadline, cancellation, injected fault, recovered panic). Once
	// set, the fixed point stops iterating and every frontier block is
	// pessimized — its translatable qualifiers are constrained to null
	// — so the truncated run stays a sound over-approximation.
	degraded error
	faults   fault.Counters

	// frontier is the set of discovered MIX(symbolic) functions.
	frontier []*microc.FuncDef
	inFront  map[*microc.FuncDef]bool
	// typedSeen tracks functions already added to the typed region.
	typedSeen map[*microc.FuncDef]bool
	// cache maps block+context to the qualifier variables the block
	// constrained to null (Section 4.3).
	cache map[string][]*qual.QVar
	// stack is the block stack for recursion detection (Section 4.4).
	stack []string
	// aliasDone marks the one-time aliasing restoration.
	aliasDone bool
}

// Run analyzes prog with MIXY.
func Run(prog *microc.Program, opts Options) (*Analysis, error) {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.MaxFixpoint == 0 {
		opts.MaxFixpoint = 16
	}
	m := &Analysis{
		Prog:      prog,
		PA:        pointer.Analyze(prog),
		opts:      opts,
		inFront:   map[*microc.FuncDef]bool{},
		typedSeen: map[*microc.FuncDef]bool{},
		cache:     map[string][]*qual.QVar{},
	}
	m.Inf = qual.New(prog)
	if opts.StrictInit {
		m.Inf.AddImplicitNullGlobals()
	}
	m.eng = opts.Engine
	tr := opts.Tracer
	if tr == nil {
		tr = m.eng.Tracer()
	}
	// The fixpoint loop itself is sequential, so one root span serves
	// the whole run; executor roots (one per RunFunc) interleave with
	// it in deterministic program order.
	m.span = tr.Root("mixy.fixpoint")
	m.Exec = symexec.New(prog, m.PA)
	opts.Solver.Apply(m.Exec.Solv)
	m.Exec.InitCell = m.initCell
	m.Exec.TypedCall = m.typedCall
	m.Exec.MergeMode = opts.Merge
	m.Exec.MergeCap = opts.MergeCap
	m.Exec.Summaries = opts.Summaries
	if m.eng != nil {
		// The solver pool is shared; forking stays serial because the
		// InitCell/TypedCall hooks mutate the inference.
		m.Exec.Engine = m.eng
		m.Exec.SerialFork = true
	}

	entry, ok := prog.Func(opts.Entry)
	if !ok {
		return nil, fmt.Errorf("mixy: no entry function %s", opts.Entry)
	}

	if opts.IgnoreAnnotations {
		// Pure qualifier inference over everything.
		for _, f := range prog.Funcs {
			m.Inf.AddFunction(f)
		}
		m.collectWarnings()
		return m, nil
	}

	// Determine the outermost analysis from the entry's annotation:
	// MIX(symbolic) starts in symbolic mode, anything else in typed
	// mode (the paper's command-line option).
	if entry.Mix == microc.MixSymbolic {
		m.addFrontier(entry)
	} else {
		m.addTypedRegion(entry)
	}

	// Global least fixed point (Section 4.1): analyze symbolic blocks,
	// fold discovered nullness into the inference, repeat. Each
	// iteration polls the run deadline (and the fault injector's
	// fixpoint-iteration point); a fault stops iterating and pessimizes
	// the whole frontier rather than returning a half-converged —
	// optimistic, hence unsound — solution.
	for iter := 0; iter < m.opts.MaxFixpoint; iter++ {
		m.Stats.FixpointIters++
		// One iter event per fixpoint round, carrying the current
		// frontier size (Section 4.5's "which blocks fired" question).
		m.span.Emit(obs.Event{Kind: obs.KindIter, N: int64(len(m.frontier))})
		if err := m.interrupted(); err != nil {
			m.degrade(err, false)
		}
		if m.degraded != nil {
			break
		}
		changed := false
		// The frontier can grow while analyzing (typed regions found
		// inside symbolic blocks can expose new symbolic functions).
		for i := 0; i < len(m.frontier); i++ {
			if m.analyzeSymBlock(m.frontier[i]) {
				changed = true
			}
			if m.degraded != nil {
				break
			}
		}
		if m.degraded != nil || !changed {
			break
		}
	}
	if m.degraded != nil {
		m.pessimizeFrontier()
	}
	m.collectWarnings()
	return m, nil
}

// Degraded returns the first run-stopping classified fault, or nil if
// the fixed point ran to completion.
func (m *Analysis) Degraded() error { return m.degraded }

// interrupted polls the run's deadline and the fixpoint-iteration
// fault-injection point; both are inert without an engine.
func (m *Analysis) interrupted() error {
	if err := m.eng.Interrupted("mixy.fixpoint"); err != nil {
		return err
	}
	return m.eng.Injector().At(fault.FixpointIter)
}

// degrade records the first run-stopping fault. counted says a lower
// layer (the executor recording into the engine's counters) already
// counted this fault, so it must not be counted twice.
func (m *Analysis) degrade(err error, counted bool) {
	if m.degraded != nil {
		return
	}
	m.degraded = err
	m.span.Degrade(fault.ClassOf(err).String(), "fixpoint stopped; frontier pessimized")
	if !counted {
		m.faults.RecordErr(err)
	}
}

// pessimizeFrontier constrains to null every qualifier a symbolic
// block could have constrained had it run to completion: returns and
// parameters of all frontier functions, pointer globals, and pointer
// struct fields. This over-approximates any fixed point the truncated
// run could have reached, keeping degraded results sound.
func (m *Analysis) pessimizeFrontier() {
	for _, f := range m.frontier {
		m.pessimizeBlock(f)
	}
}

func (m *Analysis) pessimizeBlock(f *microc.FuncDef) bool {
	reason := fmt.Sprintf("analysis of %s degraded (%s); assuming null", f.Name, fault.ClassOf(m.degraded))
	changed := false
	null := func(q *qual.QVar) {
		if q != nil && m.Inf.ConstrainNull(q, reason) {
			changed = true
		}
	}
	if rq := m.Inf.RetQ(f); rq != nil {
		null(rq.Ptr)
	}
	for _, p := range f.Params {
		if _, isPtr := p.Type.(microc.PtrType); isPtr {
			null(m.Inf.VarQ(p).Ptr)
		}
	}
	for _, g := range m.Prog.Globals {
		if _, isPtr := g.Type.(microc.PtrType); isPtr {
			null(m.Inf.VarQ(g).Ptr)
		}
	}
	for _, s := range m.Prog.Structs {
		for _, fd := range s.Fields {
			if _, isPtr := fd.Type.(microc.PtrType); isPtr {
				null(m.Inf.VarQ(fd).Ptr)
			}
		}
	}
	return changed
}

// addTypedRegion adds f and everything reachable from it up to the
// frontier of MIX(symbolic) functions to the qualifier inference, and
// returns the symbolic functions found at the frontier of this walk.
func (m *Analysis) addTypedRegion(f *microc.FuncDef) []*microc.FuncDef {
	var syms []*microc.FuncDef
	symSeen := map[*microc.FuncDef]bool{}
	visited := map[*microc.FuncDef]bool{}
	var walk func(g *microc.FuncDef)
	walk = func(g *microc.FuncDef) {
		if visited[g] {
			return
		}
		visited[g] = true
		m.typedSeen[g] = true
		m.Inf.AddFunction(g)
		for _, callee := range m.callees(g) {
			if callee.Mix == microc.MixSymbolic {
				m.addFrontier(callee)
				if !symSeen[callee] {
					symSeen[callee] = true
					syms = append(syms, callee)
				}
				continue
			}
			walk(callee)
		}
	}
	walk(f)
	return syms
}

func (m *Analysis) addFrontier(f *microc.FuncDef) {
	if !m.inFront[f] {
		m.inFront[f] = true
		m.frontier = append(m.frontier, f)
	}
}

// callees returns the possible callees of every call site in f,
// resolving function pointers through the pointer analysis.
func (m *Analysis) callees(f *microc.FuncDef) []*microc.FuncDef {
	var out []*microc.FuncDef
	seen := map[*microc.FuncDef]bool{}
	var visitStmt func(s microc.Stmt)
	var visitExpr func(e microc.Expr)
	add := func(g *microc.FuncDef) {
		if g != nil && !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	visitExpr = func(e microc.Expr) {
		switch e := e.(type) {
		case *microc.Unary:
			visitExpr(e.X)
		case *microc.Binary:
			visitExpr(e.X)
			visitExpr(e.Y)
		case *microc.Assign:
			visitExpr(e.LHS)
			visitExpr(e.RHS)
		case *microc.Field:
			visitExpr(e.X)
		case *microc.Cast:
			visitExpr(e.X)
		case *microc.Call:
			for _, t := range m.PA.CallTargets(e) {
				add(t)
			}
			if vr, ok := e.Fun.(*microc.VarRef); ok {
				if g, isFunc := vr.Ref.(*microc.FuncDef); isFunc {
					add(g)
				}
			}
			for _, a := range e.Args {
				visitExpr(a)
			}
		}
	}
	visitStmt = func(s microc.Stmt) {
		switch s := s.(type) {
		case *microc.BlockStmt:
			for _, inner := range s.Stmts {
				visitStmt(inner)
			}
		case *microc.DeclStmt:
			if s.Decl.Init != nil {
				visitExpr(s.Decl.Init)
			}
		case *microc.ExprStmt:
			visitExpr(s.X)
		case *microc.IfStmt:
			visitExpr(s.Cond)
			visitStmt(s.Then)
			if s.Else != nil {
				visitStmt(s.Else)
			}
		case *microc.WhileStmt:
			visitExpr(s.Cond)
			visitStmt(s.Body)
		case *microc.ReturnStmt:
			if s.X != nil {
				visitExpr(s.X)
			}
		}
	}
	if f.Body != nil {
		visitStmt(f.Body)
	}
	return out
}

// contextOf builds the typed calling context of a block: the solved
// qualifiers of its parameters and of all pointer-typed globals
// (Section 4.3: "the types for all variables that will be translated
// into symbolic values").
func (m *Analysis) contextOf(f *microc.FuncDef) string {
	var parts []string
	for _, p := range f.Params {
		parts = append(parts, p.Name+"="+m.qualString(m.Inf.VarQ(p)))
	}
	var globalParts []string
	for _, g := range m.Prog.Globals {
		globalParts = append(globalParts, g.Name+"="+m.qualString(m.Inf.VarQ(g)))
	}
	sort.Strings(globalParts)
	return f.Name + "(" + fmt.Sprint(parts) + ")" + fmt.Sprint(globalParts)
}

// sat decides satisfiability through the engine's memoizing pool when
// present, else the executor's solver.
func (m *Analysis) sat(f solver.Formula) (bool, error) {
	if m.eng != nil {
		return m.eng.Sat(f)
	}
	return m.Exec.Solv.Sat(f)
}

// satPC decides satisfiability of pc ∧ extra, routing through the
// engine's incremental pipeline when present so the shared path-
// condition prefix is sliced and memoized conjunct by conjunct.
func (m *Analysis) satPC(pc *solver.PC, extra solver.Formula) (bool, error) {
	if m.eng != nil {
		return m.eng.SatPC(pc, extra)
	}
	if pc.Dead() {
		return false, nil
	}
	return m.Exec.Solv.Sat(solver.NewAnd(pc.Formula(), extra))
}

// CachedContexts returns the block-cache keys (block name + typed
// calling context, Section 4.3) as a sorted snapshot. The cache is a
// map; consumers that iterate it — diagnostics, tests, future
// eviction policies — must go through this accessor so runs are
// reproducible.
func (m *Analysis) CachedContexts() []string {
	keys := make([]string, 0, len(m.cache))
	for k := range m.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (m *Analysis) qualString(q *qual.QType) string {
	var s string
	for q != nil && q.Ptr != nil {
		s += m.Inf.QualOf(q.Ptr).String() + "*"
		q = q.Elem
	}
	return s
}

// analyzeSymBlock analyzes one MIX(symbolic) function in its current
// typed calling context; reports whether new constraints were learned.
func (m *Analysis) analyzeSymBlock(f *microc.FuncDef) bool {
	if f.Body == nil {
		return false
	}
	ctx := m.contextOf(f)
	key := f.Name + "@" + ctx
	// Recursion (Section 4.4): if this block with this context is
	// already on the stack, return the optimistic assumption that the
	// block has no effect; the global fixed point revisits it.
	for _, s := range m.stack {
		if s == key {
			m.Stats.RecursionCuts++
			return false
		}
	}
	// Caching (Section 4.3): reuse the translated types of a previous
	// analysis with a compatible context.
	if !m.opts.NoCache {
		if cached, ok := m.cache[key]; ok {
			m.Stats.CacheHits++
			m.span.Emit(obs.Event{Kind: obs.KindCacheHit, Detail: f.Name})
			changed := false
			for _, q := range cached {
				if m.Inf.ConstrainNull(q, "cached result of "+f.Name) {
					changed = true
				}
			}
			return changed
		}
		m.Stats.CacheMisses++
		m.span.Emit(obs.Event{Kind: obs.KindCacheMiss, Detail: f.Name})
	}
	m.stack = append(m.stack, key)
	defer func() { m.stack = m.stack[:len(m.stack)-1] }()

	m.Stats.BlocksAnalyzed++
	m.span.Emit(obs.Event{Kind: obs.KindBlock, Detail: f.Name})
	// The symbolic block starts with a fresh memory (the formalism's
	// fresh μ); cells are lazily initialized from the typed context
	// through the InitCell hook.
	st := symexec.State{PC: solver.PCTrue, Mem: symexec.NewMemory()}
	outs, err := m.Exec.RunFunc(f, st, nil)
	if err != nil {
		if fault.Degradable(err) {
			// A classified abort escaped the executor: absorb it here
			// and pessimize this block instead of trusting its (empty
			// or partial) outcome set.
			m.degrade(err, false)
			return m.pessimizeBlock(f)
		}
		m.Warnings = append(m.Warnings, Warning{Source: "symexec", Msg: err.Error()})
		return false
	}
	if d := m.Exec.Degraded(); d != nil {
		// The executor stopped mid-exploration (deadline, cancellation,
		// injected fault, recovered panic) and returned a partial
		// outcome set. The executor already counted the fault in the
		// engine's counters when it has one; count it here otherwise.
		m.degrade(d, m.eng != nil)
		return m.pessimizeBlock(f)
	}
	// Symbolic-to-typed translation (Section 4.1): for every named
	// cell in every final memory, constrain the corresponding
	// qualifier variable to null if the value may be null under the
	// path condition. Cells are visited in sorted order — Memory is a
	// map, and the visit order decides both the constraint reasons and
	// the cached qualifier list, so it must be reproducible. The
	// queries are independent of each other, so with an engine they
	// evaluate in parallel across its workers; constraints are then
	// applied serially in the deterministic order.
	type nullCheck struct {
		q      *qual.QVar
		pc     *solver.PC
		f      solver.Formula
		reason string
	}
	var checks []nullCheck
	for _, o := range outs {
		for _, c := range sortedCells(o.St.Mem) {
			q := m.qvarForCell(c.obj, c.field)
			if q == nil {
				continue
			}
			checks = append(checks, nullCheck{
				q:      q,
				pc:     o.St.PC,
				f:      symexec.NullFormula(c.v),
				reason: fmt.Sprintf("symbolic block %s leaves %s possibly null", f.Name, c.obj.Name),
			})
		}
		// The return value translates to the function's return type.
		if rq := m.Inf.RetQ(f); rq != nil && rq.Ptr != nil && o.Ret != nil {
			checks = append(checks, nullCheck{
				q:      rq.Ptr,
				pc:     o.St.PC,
				f:      symexec.NullFormula(o.Ret),
				reason: "symbolic block " + f.Name + " may return null",
			})
		}
	}
	m.Stats.SolverQueries += len(checks)
	// mayNull starts all-true so a query that never completes — a
	// worker panic or cancellation inside Map skips remaining indices —
	// degrades to the pessimistic (sound) answer, not the optimistic
	// one. A completed query overwrites its slot either way.
	mayNull := make([]bool, len(checks))
	for i := range mayNull {
		mayNull[i] = true
	}
	query := func(i int) error {
		sat, err := m.satPC(checks[i].pc, checks[i].f)
		mayNull[i] = err != nil || sat
		return nil
	}
	if m.eng != nil {
		if err := m.eng.Map(len(checks), query); err != nil && fault.Degradable(err) {
			m.degrade(err, false)
		}
	} else {
		for i := range checks {
			_ = query(i)
		}
	}
	var constrained []*qual.QVar
	changed := false
	for i, c := range checks {
		if !mayNull[i] {
			continue
		}
		if m.Inf.ConstrainNull(c.q, c.reason) {
			changed = true
		}
		constrained = append(constrained, c.q)
	}
	// Restore aliasing relationships before handing results back to
	// the typed world (Section 4.2).
	m.restoreAliasing()
	// A degraded run must not cache: the constrained list reflects a
	// truncated exploration, and replaying it from the cache would make
	// the imprecision permanent across contexts that could re-explore.
	if !m.opts.NoCache && m.degraded == nil {
		m.cache[key] = constrained
	}
	return changed
}

// memCell is one initialized cell of a symbolic memory.
type memCell struct {
	obj   *symexec.Object
	field string
	v     symexec.Value
}

// sortedCells snapshots a memory's cells in deterministic
// (object-ID, field) order.
func sortedCells(mem *symexec.Memory) []memCell {
	var out []memCell
	mem.Cells(func(obj *symexec.Object, field string, v symexec.Value) {
		out = append(out, memCell{obj: obj, field: field, v: v})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].obj.ID != out[j].obj.ID {
			return out[i].obj.ID < out[j].obj.ID
		}
		return out[i].field < out[j].field
	})
	return out
}

// qvarForCell maps an object cell back to the qualifier variable of
// its declared position, if the cell holds a pointer.
func (m *Analysis) qvarForCell(obj *symexec.Object, field string) *qual.QVar {
	if field != "" {
		// A field cell: per-(struct, field) qualifier.
		if sn, ok := structNameOfType(obj.Type); ok {
			if sd, found := m.Prog.Struct(sn); found {
				if fd, found := sd.Field(field); found {
					if _, isPtr := fd.Type.(microc.PtrType); isPtr {
						return m.Inf.VarQ(fd).Ptr
					}
				}
			}
		}
		return nil
	}
	if obj.HasLoc {
		switch obj.Loc.Kind {
		case pointer.VarLoc:
			if _, isPtr := obj.Loc.Var.Type.(microc.PtrType); isPtr {
				return m.Inf.VarQ(obj.Loc.Var).Ptr
			}
		case pointer.FieldLoc:
			if sd, found := m.Prog.Struct(obj.Loc.Struct); found {
				if fd, found := sd.Field(obj.Loc.Field); found {
					if _, isPtr := fd.Type.(microc.PtrType); isPtr {
						return m.Inf.VarQ(fd).Ptr
					}
				}
			}
		case pointer.MallocLoc:
			if _, isPtr := obj.Type.(microc.PtrType); isPtr {
				return m.Inf.SiteQ(obj.Loc.Site, obj.Type).Ptr
			}
		}
		return nil
	}
	if obj.Site > 0 {
		if _, isPtr := obj.Type.(microc.PtrType); isPtr {
			return m.Inf.SiteQ(obj.Site, obj.Type).Ptr
		}
	}
	return nil
}

func structNameOfType(t microc.Type) (string, bool) {
	switch t := t.(type) {
	case microc.StructType:
		return t.Name, true
	case microc.PtrType:
		return structNameOfType(t.Elem)
	}
	return "", false
}

// restoreAliasing adds unification constraints so that all may-aliased
// positions share qualifiers (Section 4.2: "we add constraints to
// require that all may-aliased expressions have the same type"). The
// constraint set is monotone, so one pass suffices.
func (m *Analysis) restoreAliasing() {
	if m.aliasDone {
		return
	}
	m.aliasDone = true
	unifyClass := func(locs []pointer.Loc) {
		var first *qual.QVar
		for _, l := range locs {
			q := m.qvarForLoc(l)
			if q == nil {
				continue
			}
			if first == nil {
				first = q
			} else {
				m.Inf.Unify(first, q)
			}
		}
	}
	for _, g := range m.Prog.Globals {
		unifyClass(m.PA.PointsToVar(g))
	}
	for _, f := range m.Prog.Funcs {
		for _, p := range f.Params {
			unifyClass(m.PA.PointsToVar(p))
		}
		for _, l := range f.Locals {
			unifyClass(m.PA.PointsToVar(l))
		}
	}
	for _, s := range m.Prog.Structs {
		for _, fd := range s.Fields {
			unifyClass(m.PA.PointsToField(s.Name, fd.Name))
		}
	}
}

// qvarForLoc maps an abstract location holding a pointer to its
// content qualifier variable.
func (m *Analysis) qvarForLoc(l pointer.Loc) *qual.QVar {
	switch l.Kind {
	case pointer.VarLoc:
		if _, isPtr := l.Var.Type.(microc.PtrType); isPtr {
			return m.Inf.VarQ(l.Var).Ptr
		}
	case pointer.FieldLoc:
		if sd, found := m.Prog.Struct(l.Struct); found {
			if fd, found := sd.Field(l.Field); found {
				if _, isPtr := fd.Type.(microc.PtrType); isPtr {
					return m.Inf.VarQ(fd).Ptr
				}
			}
		}
	}
	return nil
}

// initCell is the typed-to-symbolic translation (Section 4.1),
// installed as the executor's lazy initializer: pointers are seeded
// with the qualifier inference's current solution — nonnull becomes a
// fresh location, null becomes (α ? loc : 0), unconstrained variables
// optimistically nonnull.
func (m *Analysis) initCell(x *symexec.Executor, st symexec.State, obj *symexec.Object, field string) symexec.Value {
	ty := x.CellType(obj, field)
	pt, isPtr := ty.(microc.PtrType)
	if !isPtr {
		return nil // default initialization
	}
	q := m.qvarForCell(obj, field)
	if q == nil {
		return nil
	}
	pt.Qual = m.Inf.QualOf(q)
	return x.InitPointerCell(obj, field, pt)
}

// typedCall is the symbolic-to-typed switch (Section 4.1, 4.2): a call
// to a MIX(typed) function from symbolic code adds the callee's region
// to the qualifier inference, translates the symbolic arguments into
// qualifier constraints, havocs the symbolic memory (the formalism's
// fresh μ′), and returns a fresh value typed by the callee's inferred
// return qualifier.
func (m *Analysis) typedCall(x *symexec.Executor, st symexec.State, f *microc.FuncDef, args []symexec.Value, pos microc.Pos) ([]symexec.Outcome, error) {
	m.restoreAliasing()
	nested := m.addTypedRegion(f)
	// Translate arguments to qualifier constraints.
	for i, p := range f.Params {
		if i >= len(args) || args[i] == nil {
			continue
		}
		if _, isPtr := p.Type.(microc.PtrType); !isPtr {
			continue
		}
		m.Stats.SolverQueries++
		sat, err := m.satPC(st.PC, symexec.NullFormula(args[i]))
		if err != nil || sat {
			m.Inf.ConstrainNull(m.Inf.VarQ(p).Ptr,
				fmt.Sprintf("possibly-null argument to typed function %s at %s", f.Name, pos))
		}
	}
	// Symbolic blocks nested in this typed region are analyzed now —
	// this is where typed/symbolic block recursion arises and is cut
	// by the block stack (Section 4.4).
	for _, g := range nested {
		m.analyzeSymBlock(g)
	}
	// The typed block may write anything: havoc memory.
	out := st
	if !m.opts.NoHavoc {
		out = symexec.State{PC: st.PC, Mem: symexec.NewMemory()}
	}
	// The result is an arbitrary value of the return type, refined by
	// the inferred return qualifier.
	ret := m.typedReturnValue(x, f)
	return []symexec.Outcome{{St: out, Ret: ret}}, nil
}

func (m *Analysis) typedReturnValue(x *symexec.Executor, f *microc.FuncDef) symexec.Value {
	rt := f.Ret
	if pt, isPtr := rt.(microc.PtrType); isPtr {
		if rq := m.Inf.RetQ(f); rq != nil && rq.Ptr != nil {
			pt.Qual = m.Inf.QualOf(rq.Ptr)
		}
		rt = pt
	}
	return x.HavocValue(rt, f.Name+"_typed")
}

// collectWarnings merges qualifier warnings, symbolic-execution
// reports, and the degradation notice, and folds the run's fault
// counters into Stats.
func (m *Analysis) collectWarnings() {
	if m.degraded != nil {
		m.Warnings = append(m.Warnings, Warning{
			Source: "mixy",
			Msg: fmt.Sprintf("analysis degraded (%s): %v; frontier qualifiers pessimized to null",
				fault.ClassOf(m.degraded), m.degraded),
		})
	}
	for _, w := range m.Inf.Solve() {
		m.Warnings = append(m.Warnings, Warning{Source: "qual", Msg: w.String()})
	}
	for _, r := range m.Exec.Reports {
		switch r.Kind {
		case symexec.NullDeref, symexec.NullArg, symexec.UnsupportedFnPtr:
			m.Warnings = append(m.Warnings, Warning{Source: "symexec", Msg: r.String()})
		}
	}
	m.Stats.Faults = m.faults.Snapshot()
	if m.eng != nil {
		snap := m.eng.Snapshot()
		m.Stats.SolverQueries += int(snap.SolverQueries)
		m.Stats.Faults.Add(snap.Faults)
	} else {
		m.Stats.SolverQueries += m.Exec.Solv.Stats.SatQueries
	}
}
