package mixy

import (
	"sort"
	"strings"
	"testing"

	"mix/internal/corpus"
	"mix/internal/engine"
)

func warningStrings(a *Analysis) []string {
	out := make([]string, len(a.Warnings))
	for i, w := range a.Warnings {
		out[i] = w.String()
	}
	return out
}

// TestEngineMatchesNoEngine: routing MIXY's solver queries through the
// engine's memoizing pool must not change the analysis — same
// warnings, same fixpoint trajectory — while actually deduplicating
// solver work.
func TestEngineMatchesNoEngine(t *testing.T) {
	src := corpus.SyntheticVsftpd(12, 2)

	base, err := Run(mustParse(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		eng := engine.New(engine.Options{Workers: workers})
		a, err := Run(mustParse(src), Options{Engine: eng})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := strings.Join(warningStrings(a), "\n"), strings.Join(warningStrings(base), "\n"); got != want {
			t.Fatalf("workers=%d warnings differ\nbase:\n%s\nengine:\n%s", workers, want, got)
		}
		if a.Stats.FixpointIters != base.Stats.FixpointIters ||
			a.Stats.BlocksAnalyzed != base.Stats.BlocksAnalyzed {
			t.Fatalf("workers=%d fixpoint trajectory differs: %+v vs %+v", workers, a.Stats, base.Stats)
		}
		s := eng.Snapshot()
		// The fixpoint re-proves formulas; each repeat must be absorbed
		// before DPLL — by the interval fast path, the counterexample
		// cache, or the memo table.
		if s.QuickDecided+s.MemoHits+s.CexHits == 0 {
			t.Fatalf("workers=%d: no query deduplication at all (stats %+v)", workers, s)
		}
		// Every query is accounted for: decided by the fast path or
		// routed through the per-component memo.
		if s.QuickDecided+s.MemoHits+s.MemoMisses < s.SolverQueries {
			t.Fatalf("workers=%d: pipeline accounting off: %+v", workers, s)
		}
	}
}

// TestCachedContextsSortedAndStable: the block cache is a map; its
// exported view must be sorted and identical across repeated runs so
// fixpoint diagnostics are reproducible.
func TestCachedContextsSortedAndStable(t *testing.T) {
	src := corpus.SyntheticVsftpd(8, 2)
	var first []string
	for run := 0; run < 3; run++ {
		a, err := Run(mustParse(src), Options{})
		if err != nil {
			t.Fatal(err)
		}
		keys := a.CachedContexts()
		if len(keys) == 0 {
			t.Fatal("expected cached block contexts")
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("CachedContexts not sorted: %v", keys)
		}
		if run == 0 {
			first = keys
			continue
		}
		if strings.Join(keys, "\n") != strings.Join(first, "\n") {
			t.Fatalf("run %d cache keys differ:\n%v\nvs\n%v", run, keys, first)
		}
	}
}

// TestFixpointItersReproducible: iteration counts must not depend on
// map iteration order anywhere in the driver.
func TestFixpointItersReproducible(t *testing.T) {
	src := corpus.SyntheticVsftpd(12, 3)
	var iters, blocks int
	for run := 0; run < 3; run++ {
		a, err := Run(mustParse(src), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			iters, blocks = a.Stats.FixpointIters, a.Stats.BlocksAnalyzed
			continue
		}
		if a.Stats.FixpointIters != iters || a.Stats.BlocksAnalyzed != blocks {
			t.Fatalf("run %d: iters=%d blocks=%d, first run iters=%d blocks=%d",
				run, a.Stats.FixpointIters, a.Stats.BlocksAnalyzed, iters, blocks)
		}
	}
}
