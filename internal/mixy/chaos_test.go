// Chaos tests for MIXY's fixed-point loop: a fault at the
// fixpoint-iteration poll must stop the run on its first iteration,
// pessimize the frontier instead of certifying stale qualifiers, and
// do so identically run over run.
package mixy

import (
	"strings"
	"testing"

	"mix/internal/corpus"
	"mix/internal/engine"
	"mix/internal/fault"
)

func runFixpointChaos(t *testing.T) *Analysis {
	t.Helper()
	inj := fault.NewInjector(1).
		Plan(fault.FixpointIter, fault.Plan{Class: fault.Timeout})
	eng := engine.New(engine.Options{Workers: 1, FaultInjector: inj})
	defer eng.Close()
	a, err := Run(mustParse(corpus.SyntheticVsftpd(8, 2)), Options{Engine: eng})
	if err != nil {
		t.Fatalf("a fixpoint fault must degrade the analysis, not reject it: %v", err)
	}
	return a
}

func TestFixpointInjectionDegradesSoundly(t *testing.T) {
	a := runFixpointChaos(t)
	d := a.Degraded()
	if d == nil {
		t.Fatal("an armed fixpoint-iter plan must leave the analysis degraded")
	}
	if got := fault.ClassOf(d); got != fault.Timeout {
		t.Fatalf("fault class = %v, want the injected timeout", got)
	}
	if a.Stats.FixpointIters != 1 {
		t.Fatalf("the first iteration's poll must stop the loop, ran %d", a.Stats.FixpointIters)
	}
	if a.Stats.Faults.Of(fault.Timeout) == 0 {
		t.Fatalf("the fault must be counted: %+v", a.Stats.Faults)
	}
	var notice bool
	for _, w := range a.Warnings {
		if w.Source == "mixy" && strings.Contains(w.Msg, "analysis degraded") {
			notice = true
		}
	}
	if !notice {
		t.Fatalf("a degraded run must carry an explicit imprecision warning:\n%s",
			strings.Join(warningStrings(a), "\n"))
	}
	// Degradation is an over-approximation, never a free pass: the
	// pessimized frontier must warn at least as much as a clean run.
	clean, err := Run(mustParse(corpus.SyntheticVsftpd(8, 2)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Warnings) < len(clean.Warnings) {
		t.Fatalf("degraded run reports %d warnings, clean run %d — degradation dropped findings",
			len(a.Warnings), len(clean.Warnings))
	}
}

func TestFixpointChaosDeterministic(t *testing.T) {
	w1 := strings.Join(warningStrings(runFixpointChaos(t)), "\n")
	w2 := strings.Join(warningStrings(runFixpointChaos(t)), "\n")
	if w1 != w2 {
		t.Fatalf("degraded warning set diverged across runs:\n--- run1\n%s\n--- run2\n%s", w1, w2)
	}
}
