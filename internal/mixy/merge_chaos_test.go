package mixy

// Chaos tests for state merging (DESIGN.md section 12): an injected
// fault at a merge point must degrade a merged analysis exactly as it
// degrades a forking one. The armed plan panics inside the first
// solver query — the feasibility check of the first conditional, which
// is precisely where the executor decides to fork or merge — so the
// fault lands on the merge machinery in merged modes and on the fork
// machinery with merging off. Merging changes how many states flow
// through a join, not the degradation ladder: the block stops, its
// frontier pessimizes to null, and the imprecision warnings come out
// the same.

import (
	"sort"
	"strings"
	"testing"

	"mix/internal/corpus"
	"mix/internal/engine"
	"mix/internal/fault"
)

// runMergeChaos runs the synthetic vsftpd corpus under the given merge
// mode with the first solver query panicking — a deterministic fault
// at the first conditional's fork-or-merge decision.
func runMergeChaos(t *testing.T, mode engine.MergeMode) *Analysis {
	t.Helper()
	inj := fault.NewInjector(1).
		Plan(fault.PreSolve, fault.Plan{Count: 1, Panic: true, Class: fault.Timeout})
	eng := engine.New(engine.Options{Workers: 1, FaultInjector: inj})
	defer eng.Close()
	a, err := Run(mustParse(corpus.SyntheticVsftpd(8, 2)), Options{Engine: eng, Merge: mode})
	if err != nil {
		t.Fatalf("merge=%s: a merge-point fault must degrade the analysis, not reject it: %v", mode, err)
	}
	return a
}

// TestMergeChaosDegradesIdentically runs the same armed plan forked,
// joins-merged, and aggressively merged: all three must degrade as a
// recovered worker panic, carry the imprecision notice, and report
// identical warning sets. Sorted comparison, because a merged flow
// visits statements once where forking visits them per path, which can
// reorder emission without changing the set.
func TestMergeChaosDegradesIdentically(t *testing.T) {
	want, wantMode := "", engine.MergeOff
	for _, mode := range []engine.MergeMode{engine.MergeOff, engine.MergeJoins, engine.MergeAggressive} {
		a := runMergeChaos(t, mode)
		d := a.Degraded()
		if d == nil {
			t.Fatalf("merge=%s: the armed pre-solve panic must leave the analysis degraded", mode)
		}
		if got := fault.ClassOf(d); got != fault.WorkerPanic {
			t.Fatalf("merge=%s: fault class = %v, want a recovered worker panic", mode, got)
		}
		var notice bool
		for _, w := range a.Warnings {
			if w.Source == "mixy" && strings.Contains(w.Msg, "analysis degraded") {
				notice = true
			}
		}
		if !notice {
			t.Fatalf("merge=%s: a degraded run must carry an explicit imprecision warning:\n%s",
				mode, strings.Join(warningStrings(a), "\n"))
		}
		ws := warningStrings(a)
		sort.Strings(ws)
		got := strings.Join(ws, "\n")
		if mode == engine.MergeOff {
			want, wantMode = got, mode
			continue
		}
		if got != want {
			t.Fatalf("degraded warnings diverge across merge modes\n--- merge=%s\n%s\n--- merge=%s\n%s",
				wantMode, want, mode, got)
		}
	}
}

// TestMergeChaosOverApproximates checks the soundness half: a merged
// run hit by a mid-exploration fault must warn at least as much as a
// clean merged run — degradation at a merge point pessimizes, it never
// drops findings.
func TestMergeChaosOverApproximates(t *testing.T) {
	for _, mode := range []engine.MergeMode{engine.MergeJoins, engine.MergeAggressive} {
		clean, err := Run(mustParse(corpus.SyntheticVsftpd(8, 2)), Options{Merge: mode})
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.NewInjector(1).
			Plan(fault.PreSolve, fault.Plan{After: 5, Count: 1, Panic: true, Class: fault.Timeout})
		eng := engine.New(engine.Options{Workers: 1, FaultInjector: inj})
		a, err := Run(mustParse(corpus.SyntheticVsftpd(8, 2)), Options{Engine: eng, Merge: mode})
		eng.Close()
		if err != nil {
			t.Fatalf("merge=%s: a mid-run fault must degrade, not reject: %v", mode, err)
		}
		if a.Degraded() == nil {
			t.Fatalf("merge=%s: the armed plan must leave the analysis degraded", mode)
		}
		if len(a.Warnings) < len(clean.Warnings) {
			t.Fatalf("merge=%s: degraded run reports %d warnings, clean run %d — degradation dropped findings",
				mode, len(a.Warnings), len(clean.Warnings))
		}
	}
}

// TestMergeChaosDeterministic pins the degraded merged run: identical
// warnings run over run, like the forked chaos suite.
func TestMergeChaosDeterministic(t *testing.T) {
	w1 := strings.Join(warningStrings(runMergeChaos(t, engine.MergeJoins)), "\n")
	w2 := strings.Join(warningStrings(runMergeChaos(t, engine.MergeJoins)), "\n")
	if w1 != w2 {
		t.Fatalf("degraded merged warning set diverged across runs:\n--- run1\n%s\n--- run2\n%s", w1, w2)
	}
}
