package mixy

import (
	"strings"
	"testing"

	"mix/internal/corpus"
	"mix/internal/microc"
)

// analyze runs MIXY on src.
func analyze(t *testing.T, src string, opts Options) *Analysis {
	t.Helper()
	prog := mustParse(src)
	a, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return a
}

func nullWarnings(a *Analysis) []Warning {
	var out []Warning
	for _, w := range a.Warnings {
		if strings.Contains(w.Msg, "null") || strings.Contains(w.Msg, "nonnull") {
			out = append(out, w)
		}
	}
	return out
}

func fnptrWarnings(a *Analysis) []Warning {
	var out []Warning
	for _, w := range a.Warnings {
		if strings.Contains(w.Msg, "function pointer") {
			out = append(out, w)
		}
	}
	return out
}

func TestCase1(t *testing.T) {
	// Pure qualifier inference: false positive.
	base := analyze(t, corpus.Case1.Source, Options{IgnoreAnnotations: true})
	if len(nullWarnings(base)) == 0 {
		t.Fatalf("baseline should warn (flow/path insensitivity): %v", base.Warnings)
	}
	// MIXY with the MIX(symbolic) annotation: warning eliminated.
	mixed := analyze(t, corpus.Case1.Source, Options{})
	if got := nullWarnings(mixed); len(got) != 0 {
		t.Fatalf("MIXY should eliminate the warning, got %v", got)
	}
}

func TestCase2(t *testing.T) {
	base := analyze(t, corpus.Case2.Source, Options{IgnoreAnnotations: true})
	if len(nullWarnings(base)) == 0 {
		t.Fatalf("baseline should warn (context insensitivity): %v", base.Warnings)
	}
	mixed := analyze(t, corpus.Case2.Source, Options{})
	if got := nullWarnings(mixed); len(got) != 0 {
		t.Fatalf("MIXY should eliminate the warning, got %v", got)
	}
}

func TestCase3(t *testing.T) {
	base := analyze(t, corpus.Case3.Source, Options{IgnoreAnnotations: true})
	if len(nullWarnings(base)) == 0 {
		t.Fatalf("baseline should warn (two null sources): %v", base.Warnings)
	}
	mixed := analyze(t, corpus.Case3.Source, Options{})
	if got := nullWarnings(mixed); len(got) != 0 {
		t.Fatalf("MIXY should eliminate the warnings, got %v", got)
	}
	// The die() branch must have been proved unreachable: no
	// function-pointer failure.
	if got := fnptrWarnings(mixed); len(got) != 0 {
		t.Fatalf("gethostbyname model should keep die() unreachable: %v", got)
	}
}

func TestCase4(t *testing.T) {
	// Without the typed block: the executor hits the symbolic function
	// pointer.
	bare := analyze(t, corpus.Case4NoTyped.Source, Options{})
	if len(fnptrWarnings(bare)) == 0 {
		t.Fatalf("expected fnptr failure without typed block: %v", bare.Warnings)
	}
	// With MIX(typed) on sysutil_exit_BLOCK: analyzed conservatively.
	mixed := analyze(t, corpus.Case4.Source, Options{})
	if got := fnptrWarnings(mixed); len(got) != 0 {
		t.Fatalf("typed block should cover the fnptr call: %v", got)
	}
}

func TestVsftpdMiniCombined(t *testing.T) {
	// All four case patterns in one translation unit. MIXY reduces the
	// warning count but — faithfully to the paper's Section 4.6 — does
	// not reach zero: sockaddr_clear now has two calling contexts, and
	// the context-insensitive pointer analysis conflates its targets,
	// so the NULL written for &g_sock also pollutes p_addr.
	base := analyze(t, corpus.VsftpdMini.Source, Options{IgnoreAnnotations: true})
	if len(base.Warnings) < 2 {
		t.Fatalf("baseline should produce several warnings, got %v", base.Warnings)
	}
	mixed := analyze(t, corpus.VsftpdMini.Source, Options{})
	if len(mixed.Warnings) >= len(base.Warnings) {
		t.Fatalf("MIXY should reduce warnings: %d vs %d",
			len(mixed.Warnings), len(base.Warnings))
	}
	// The residual warnings must be the documented conflation, not a
	// regression of the individual cases.
	for _, w := range mixed.Warnings {
		if !strings.Contains(w.Msg, "p_addr") && !strings.Contains(w.Msg, "g_sock") {
			t.Fatalf("unexpected residual warning: %v", w)
		}
	}
	if mixed.Stats.BlocksAnalyzed < 3 {
		t.Fatalf("expected several symbolic blocks analyzed, stats %+v", mixed.Stats)
	}
}

func TestTruePositiveKept(t *testing.T) {
	// Case 1 with the null check removed is a real bug (cexec crashes
	// on it); the symbolic block must NOT suppress the warning.
	src := `
struct sockaddr { int family; };
void sysutil_free(void *nonnull p_ptr) MIX(typed) { return; }
void buggy_clear(struct sockaddr **p_sock) MIX(symbolic) {
  sysutil_free(*p_sock);
  *p_sock = NULL;
}
struct sockaddr *g_sock;
int main(void) {
  buggy_clear(&g_sock);
  return 0;
}
`
	a := analyze(t, src, Options{})
	if len(a.Warnings) == 0 {
		t.Fatal("UNSOUND: the real bug was suppressed")
	}
	found := false
	for _, w := range a.Warnings {
		if strings.Contains(w.Msg, "null-arg") || strings.Contains(w.Msg, "nonnull") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a nonnull violation warning, got %v", a.Warnings)
	}
}

func TestFixpointIterates(t *testing.T) {
	// A symbolic block that nulls a global used by a later typed call
	// forces at least two fixed-point iterations.
	src := `
void sink(int *nonnull q) MIX(typed) { return; }
int *g;
void blk(void) MIX(symbolic) {
  g = NULL;
}
int main(void) {
  blk();
  sink(g);
  return 0;
}
`
	a := analyze(t, src, Options{})
	if a.Stats.FixpointIters < 2 {
		t.Fatalf("expected ≥2 fixpoint iterations, got %d", a.Stats.FixpointIters)
	}
	// The discovered nullness must produce the warning in the typed
	// region.
	if len(nullWarnings(a)) == 0 {
		t.Fatalf("g=NULL in symbolic block must reach sink: %v", a.Warnings)
	}
}

func TestSymbolicBlockRepairsNull(t *testing.T) {
	src := `
void sink(int *nonnull q) MIX(typed) { return; }
int *g;
void blk(void) MIX(symbolic) {
  g = NULL;
  g = malloc(sizeof(int));
}
int main(void) {
  blk();
  sink(g);
  return 0;
}
`
	a := analyze(t, src, Options{})
	if got := nullWarnings(a); len(got) != 0 {
		t.Fatalf("repaired null must not warn: %v", got)
	}
}

func TestCachingHits(t *testing.T) {
	// The same block called from many sites with the same context is
	// analyzed once.
	src := `
int *g;
void blk(void) MIX(symbolic) {
  g = malloc(sizeof(int));
}
void a(void) { blk(); }
void b(void) { blk(); }
void c(void) { blk(); }
int main(void) { a(); b(); c(); return 0; }
`
	withCache := analyze(t, src, Options{})
	if withCache.Stats.BlocksAnalyzed != 1 {
		t.Fatalf("BlocksAnalyzed = %d, want 1", withCache.Stats.BlocksAnalyzed)
	}
}

func TestCacheHitsOnTypedReentry(t *testing.T) {
	// Typed functions re-entering the same symbolic block with a
	// compatible context must hit the cache (Section 4.3).
	src := `
int *g;
void blk(void) MIX(symbolic) { g = NULL; g = malloc(sizeof(int)); }
void t0(void) MIX(typed) { blk(); }
void t1(void) MIX(typed) { blk(); }
void t2(void) MIX(typed) { blk(); }
void outer(void) MIX(symbolic) { t0(); t1(); t2(); }
int main(void) { outer(); return 0; }
`
	cached := analyze(t, src, Options{})
	if cached.Stats.CacheHits == 0 {
		t.Fatalf("expected cache hits, stats %+v", cached.Stats)
	}
	uncached := analyze(t, src, Options{NoCache: true})
	if uncached.Stats.BlocksAnalyzed <= cached.Stats.BlocksAnalyzed {
		t.Fatalf("cache must reduce analyses: %d vs %d",
			cached.Stats.BlocksAnalyzed, uncached.Stats.BlocksAnalyzed)
	}
}

func TestCacheDisabledReanalyzes(t *testing.T) {
	src := corpus.SyntheticVsftpd(6, 2)
	withCache := analyze(t, src, Options{})
	noCache := analyze(t, src, Options{NoCache: true})
	if noCache.Stats.BlocksAnalyzed < withCache.Stats.BlocksAnalyzed {
		t.Fatalf("cache off should analyze at least as many blocks: %d vs %d",
			noCache.Stats.BlocksAnalyzed, withCache.Stats.BlocksAnalyzed)
	}
	if withCache.Stats.CacheHits+withCache.Stats.CacheMisses == 0 {
		t.Fatal("cache statistics not recorded")
	}
}

func TestRecursionBetweenBlocks(t *testing.T) {
	// A symbolic block calls a typed function that calls the symbolic
	// block again (Section 4.4); analysis must terminate.
	src := `
int *g;
int counter;
void typed_side(void) MIX(typed) {
  sym_side();
}
void sym_side(void) MIX(symbolic) {
  if (counter > 0) {
    counter = counter - 1;
    typed_side();
  }
  g = NULL;
}
int main(void) {
  sym_side();
  return 0;
}
`
	a := analyze(t, src, Options{})
	if a.Stats.RecursionCuts == 0 {
		t.Fatalf("expected recursion to be detected, stats %+v", a.Stats)
	}
	// The block's effect must still be discovered.
	found := false
	for _, w := range a.Warnings {
		_ = w
	}
	g, _ := a.Prog.Global("g")
	if a.Inf.IsNull(a.Inf.VarQ(g).Ptr) {
		found = true
	}
	if !found {
		t.Fatal("g's nullness lost through recursion")
	}
}

func TestSyntheticScales(t *testing.T) {
	for _, k := range []int{0, 1, 2} {
		src := corpus.SyntheticVsftpd(8, k)
		a := analyze(t, src, Options{})
		if k == 0 && a.Stats.BlocksAnalyzed != 0 {
			t.Fatalf("k=0 should analyze no blocks: %+v", a.Stats)
		}
		if k > 0 && a.Stats.BlocksAnalyzed < k {
			t.Fatalf("k=%d: BlocksAnalyzed = %d", k, a.Stats.BlocksAnalyzed)
		}
	}
}

func TestSolverQueriesGrowWithBlocks(t *testing.T) {
	src0 := corpus.SyntheticVsftpd(8, 0)
	src2 := corpus.SyntheticVsftpd(8, 2)
	a0 := analyze(t, src0, Options{})
	a2 := analyze(t, src2, Options{})
	if a2.Stats.SolverQueries <= a0.Stats.SolverQueries {
		t.Fatalf("symbolic blocks must cost solver queries: %d vs %d",
			a0.Stats.SolverQueries, a2.Stats.SolverQueries)
	}
}

func TestEntryMissing(t *testing.T) {
	prog := mustParse("int f(void) { return 0; }")
	if _, err := Run(prog, Options{}); err == nil {
		t.Fatal("missing main should error")
	}
}

func TestSymbolicEntry(t *testing.T) {
	// Starting in symbolic mode (entry annotated MIX(symbolic)).
	src := `
void sink(int *nonnull q) MIX(typed) { return; }
int main(void) MIX(symbolic) {
  int *p = NULL;
  if (p != NULL) {
    sink(p);
  }
  return 0;
}
`
	a := analyze(t, src, Options{})
	if got := nullWarnings(a); len(got) != 0 {
		t.Fatalf("guarded call must not warn: %v", got)
	}
}

func TestSymbolicEntryUnguarded(t *testing.T) {
	src := `
void sink(int *nonnull q) MIX(typed) { return; }
int main(void) MIX(symbolic) {
  int *p = NULL;
  sink(p);
  return 0;
}
`
	a := analyze(t, src, Options{})
	if got := nullWarnings(a); len(got) == 0 {
		t.Fatalf("unguarded null argument must warn: %v", a.Warnings)
	}
}

// mustParse parses a MicroC test fixture, panicking on error; the
// library itself reports parse errors through the normal return path,
// fixtures are expected to be valid.
func mustParse(src string) *microc.Program {
	prog, err := microc.Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
