package engine

import "fmt"

// MergeMode selects the veritesting-style state-merging policy shared
// by the symbolic executors (DESIGN.md section 12): whether the two
// feasible arms of a conditional are rejoined at the post-dominator
// into one state with guarded (ite) cells instead of being explored as
// separate paths.
type MergeMode int

const (
	// MergeOff forks every feasible conditional (the classic KLEE
	// discipline; path count grows as 2^k over k sequential diamonds).
	MergeOff MergeMode = iota
	// MergeJoins merges at a conditional's join point when each arm
	// reaches it with exactly one live path and the number of
	// diverging state cells stays under the divergence cap. This is
	// the default for the command-line tools.
	MergeJoins
	// MergeAggressive additionally folds multi-path arms and the live
	// set carried across loop iterations, ignoring the divergence cap.
	MergeAggressive
)

func (m MergeMode) String() string {
	switch m {
	case MergeJoins:
		return "joins"
	case MergeAggressive:
		return "aggressive"
	}
	return "off"
}

// ParseMergeMode parses a -merge flag value. The empty string selects
// the documented default, joins.
func ParseMergeMode(s string) (MergeMode, error) {
	switch s {
	case "", "joins":
		return MergeJoins, nil
	case "off":
		return MergeOff, nil
	case "aggressive":
		return MergeAggressive, nil
	}
	return MergeOff, fmt.Errorf("unknown merge mode %q (want off, joins, or aggressive)", s)
}
