// Package engine is the parallel path-exploration runtime shared by
// both symbolic executors (internal/sym and internal/symexec) and by
// MIXY's fixed-point driver.
//
// It has two halves:
//
//   - A work-stealing fork-join scheduler for path exploration. Every
//     conditional fork offers its left (then) branch to a bounded pool
//     of worker slots; if a slot is free the branch runs as an
//     independent task (a "steal") while the forking path continues
//     into the right branch, otherwise both branches run inline on the
//     forking goroutine. Slot acquisition never blocks, so any task
//     can always make progress by itself and the scheme cannot
//     deadlock, while live parallelism stays bounded by the worker
//     count. Joins are ordered — then-results are appended before
//     else-results regardless of completion order — so the canonical
//     (sequential depth-first) result and report order is reproduced
//     exactly.
//
//   - A concurrency-safe memoizing solver frontend (SolverPool): path
//     feasibility queries dominate symbolic-execution wall-clock time
//     (the paper's Section 4.6 timings), and distinct paths re-prove
//     identical formulas. The pool hash-conses formulas into compact
//     keys, memoizes Sat answers in a sharded LRU table, and hands
//     each concurrent query a private *solver.Solver instance, since
//     Solver.Stats mutation makes a shared instance racy.
//
// A nil *Engine everywhere means "sequential, unmemoized" — exactly
// the pre-engine behavior.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mix/internal/fault"
	"mix/internal/obs"
	"mix/internal/solver"
)

// ErrBudget is the sentinel wrapped by errors returned when
// exploration exceeds the engine's path or fork-depth budget. Callers
// detect it with errors.Is and turn it into a graceful
// "budget exhausted" report instead of runaway exploration.
var ErrBudget = errors.New("engine: exploration budget exhausted")

// Options configures an Engine.
type Options struct {
	// Workers is the bound on concurrently running path tasks;
	// <= 0 means GOMAXPROCS. Workers == 1 gives sequential exploration
	// with the memoizing solver pool still active.
	Workers int
	// MaxPaths bounds the total number of paths the engine will agree
	// to fork into existence (0 = unlimited). Charging the budget past
	// the bound returns an error wrapping ErrBudget.
	MaxPaths int64
	// MaxForkDepth bounds the fork depth of any single path
	// (0 = unlimited).
	MaxForkDepth int
	// MemoSize bounds the number of memoized solver answers
	// (0 = default).
	MemoSize int
	// NoMemo disables the Sat/Valid memo table (per-worker solver
	// instances and stats aggregation remain). NoMemo wins over Cache.
	NoMemo bool
	// Cache, when non-nil, is a shared cross-run solver cache (see
	// Cache): this run reads and extends it instead of building a
	// private one, so back-to-back runs skip re-proving formulas an
	// earlier run already decided. The Cache outlives the engine —
	// Close does not touch it. MemoSize is ignored when set (the
	// cache was sized at NewCache).
	Cache *Cache
	// NewSolver builds the per-worker solver instances; nil means
	// solver.New. Use it to propagate non-default resource bounds.
	NewSolver func() *solver.Solver
	// SolverAlgo selects the search core of every pooled solver (CDCL,
	// the legacy DPLL oracle, or a portfolio racing both). It is applied
	// per borrowed query, so runs with different algorithms can share
	// one warm Cache.
	SolverAlgo solver.Algo
	// Context, when non-nil, governs the whole run: cancellation and
	// deadline expiry are observed cooperatively at fork charges and
	// inside the DPLL loop, classified as fault.Canceled/fault.Timeout.
	Context context.Context
	// Deadline, when > 0, caps the run's wall-clock time by deriving a
	// deadline context from Context (or Background).
	Deadline time.Duration
	// SolverTimeout, when > 0, additionally caps each individual solver
	// query, so one pathological formula cannot eat the whole deadline.
	SolverTimeout time.Duration
	// FaultInjector, when non-nil, arms the deterministic
	// fault-injection points (chaos tests only).
	FaultInjector *fault.Injector
	// Tracer, when non-nil, records structured fork/join/solve/degrade
	// events for the run (-trace). Nil keeps every instrumented site a
	// single pointer test.
	Tracer *obs.Tracer
	// Metrics, when non-nil, is the run-scoped metrics registry
	// (-metrics / -stats): the solver pipeline registers its stage
	// histograms here, and PublishMetrics mirrors the engine's
	// aggregate counters into it.
	Metrics *obs.Registry
}

// Stats is an aggregated snapshot of engine work.
type Stats struct {
	Workers       int
	Paths         int64 // completed paths recorded by executors
	Forks         int64 // conditional forks charged to the engine
	Steals        int64 // forks whose left branch ran on another worker
	MemoHits      int64
	MemoMisses    int64
	SolverQueries int64 // queries through the pool
	SolverUnknown int64 // queries answered "unknown" (resource bounds)
	SolverTime    time.Duration
	Exhausted     bool           // a path or depth budget was hit
	Faults        fault.Snapshot // classified degradation events absorbed this run

	QuickDecided   int64 // queries/components decided by the interval fast path
	Slices         int64 // independence components that reached memo/DPLL
	SliceConjuncts int64 // total conjuncts across those components
	MaxSlice       int64 // largest component, in conjuncts
	CexHits        int64 // components satisfied by a cached model
}

// Engine schedules forked symbolic states across a bounded worker pool
// and fronts the solver with a shared memo table. Construct with New;
// an Engine is safe for concurrent use.
type Engine struct {
	workers  int
	maxPaths int64
	maxDepth int

	// ctx holds the run's context.Context boxed in ctxBox (atomic.Value
	// needs one concrete type); atomic so tests can swap a fresh context
	// into a live engine (SetContext) without racing the workers that
	// poll it.
	ctx      atomic.Value
	cancel   context.CancelFunc
	deadline string // budget label for timeout diagnostics, e.g. "deadline=50ms"
	injector *fault.Injector
	faults   fault.Counters
	tracer   *obs.Tracer
	metrics  *obs.Registry

	// slots holds the worker tokens available for stolen branches; the
	// forking goroutine itself is the remaining worker, so capacity is
	// workers-1.
	slots chan struct{}

	pool *SolverPool

	paths     atomic.Int64
	forks     atomic.Int64
	steals    atomic.Int64
	exhausted atomic.Bool

	failMu sync.Mutex
	failed error
}

// New builds an engine from o.
func New(o Options) *Engine {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:  w,
		maxPaths: o.MaxPaths,
		maxDepth: o.MaxForkDepth,
		injector: o.FaultInjector,
		tracer:   o.Tracer,
		metrics:  o.Metrics,
		slots:    make(chan struct{}, w-1),
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline > 0 {
		ctx, e.cancel = context.WithTimeout(ctx, o.Deadline)
		e.deadline = fmt.Sprintf("deadline=%v", o.Deadline)
	}
	e.ctx.Store(ctxBox{ctx})
	e.pool = newSolverPool(e, o)
	return e
}

// ctxBox gives every stored context the same concrete type, which
// atomic.Value requires across stores.
type ctxBox struct{ ctx context.Context }

// Close releases the engine's deadline timer, if any. Safe on nil.
func (e *Engine) Close() {
	if e != nil && e.cancel != nil {
		e.cancel()
	}
}

// Context returns the run's context (Background for a nil engine).
func (e *Engine) Context() context.Context {
	if e == nil {
		return context.Background()
	}
	return e.ctx.Load().(ctxBox).ctx
}

// SetContext swaps the run's context. Tests use this to verify that a
// cancellation verdict was not memoized: cancel, query, swap in a live
// context, query again through the same pool.
func (e *Engine) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx.Store(ctxBox{ctx})
}

// Injector exposes the armed fault-injection points (nil in
// production). Executors visit their own points through it so one
// injector drives the whole stack.
func (e *Engine) Injector() *fault.Injector {
	if e == nil {
		return nil
	}
	return e.injector
}

// Faults is the run-wide classified-fault counter. Every layer that
// absorbs an abort into an imprecise result records it here exactly
// once, so -stats can report timeouts / panics recovered / paths
// truncated. Nil for a nil engine (a nil *fault.Counters is inert).
func (e *Engine) Faults() *fault.Counters {
	if e == nil {
		return nil
	}
	return &e.faults
}

// Interrupted reports a classified timeout/cancellation fault if the
// run's context is done, nil otherwise. Executors poll it at their
// step boundaries; op names the polling site for diagnostics. Nil-safe.
func (e *Engine) Interrupted(op string) error { return e.ctxErr(op) }

// ctxErr reports a classified fault if the run's context is done.
func (e *Engine) ctxErr(op string) error {
	if e == nil {
		return nil
	}
	ctx := e.Context()
	select {
	case <-ctx.Done():
		return fault.FromContext(op, e.deadline, ctx.Err())
	default:
		return nil
	}
}

// Tracer exposes the run's event tracer (nil when tracing is off or
// the engine is nil; a nil tracer and its nil spans are inert).
func (e *Engine) Tracer() *obs.Tracer {
	if e == nil {
		return nil
	}
	return e.tracer
}

// Metrics exposes the run-scoped metrics registry (nil when metrics
// are off or the engine is nil; a nil registry hands out inert
// handles).
func (e *Engine) Metrics() *obs.Registry {
	if e == nil {
		return nil
	}
	return e.metrics
}

// PublishMetrics mirrors the engine's aggregate counters — scheduler,
// solver pipeline, fault taxonomy — into the run's metrics registry
// under their canonical dotted names (DESIGN.md section 11). The live
// instruments stay lock-free atomics on the hot path; the registry
// gets a point-in-time copy, so calling this again refreshes the
// published values. No-op without a registry.
func (e *Engine) PublishMetrics() {
	if e == nil || e.metrics == nil {
		return
	}
	m := e.metrics
	s := e.Snapshot()
	m.Gauge("engine.workers").Set(int64(s.Workers))
	m.Gauge("engine.paths").Set(s.Paths)
	m.Gauge("engine.forks").Set(s.Forks)
	m.Gauge("engine.steals").Set(s.Steals)
	var ex int64
	if s.Exhausted {
		ex = 1
	}
	m.Gauge("engine.exhausted").Set(ex)
	m.Gauge("solver.memo.hits").Set(s.MemoHits)
	m.Gauge("solver.memo.misses").Set(s.MemoMisses)
	m.Gauge("solver.queries").Set(s.SolverQueries)
	m.Gauge("solver.unknown").Set(s.SolverUnknown)
	m.Gauge("solver.time_ns").Set(int64(s.SolverTime))
	m.Gauge("solver.quick").Set(s.QuickDecided)
	m.Gauge("solver.slices").Set(s.Slices)
	m.Gauge("solver.slice_conjuncts").Set(s.SliceConjuncts)
	m.Gauge("solver.max_slice").Set(s.MaxSlice)
	m.Gauge("solver.cex_hits").Set(s.CexHits)
	for _, c := range fault.Classes() {
		m.Gauge("fault." + c.String()).Set(s.Faults.Of(c))
	}
}

// Workers reports the worker bound.
func (e *Engine) Workers() int { return e.workers }

// Pool exposes the memoizing solver frontend.
func (e *Engine) Pool() *SolverPool { return e.pool }

// Sat decides satisfiability through the memoizing pool.
func (e *Engine) Sat(f solver.Formula) (bool, error) { return e.pool.Sat(f) }

// Valid decides validity through the memoizing pool.
func (e *Engine) Valid(f solver.Formula) (bool, error) { return e.pool.Valid(f) }

// SatPC decides satisfiability of pc ∧ extras through the sliced,
// memoizing pipeline; the shared PC tail makes repeat queries along a
// path incremental.
func (e *Engine) SatPC(pc *solver.PC, extras ...solver.Formula) (bool, error) {
	return e.pool.SatPC(pc, extras...)
}

// Feasible reports whether f is satisfiable, treating solver resource
// exhaustion — and any other solver failure — as "unknown → keep the
// path", so budget-limited solving conservatively keeps paths and
// their reports instead of silently dropping them.
func (e *Engine) Feasible(f solver.Formula) bool {
	sat, err := e.pool.Sat(f)
	if err != nil {
		return true
	}
	return sat
}

// FeasiblePC is Feasible over an incremental path condition plus extra
// guards (same unknown → keep-path policy).
func (e *Engine) FeasiblePC(pc *solver.PC, extras ...solver.Formula) bool {
	sat, err := e.pool.SatPC(pc, extras...)
	if err != nil {
		return true
	}
	return sat
}

// FeasiblePCSpan is FeasiblePC with the query's verdict and pipeline
// stages recorded on sp (nil span → metrics only).
func (e *Engine) FeasiblePCSpan(sp *obs.Span, pc *solver.PC, extras ...solver.Formula) bool {
	sat, err := e.pool.SatPCSpan(sp, pc, extras...)
	if err != nil {
		return true
	}
	return sat
}

// AddPaths records n completed paths in the aggregate stats.
func (e *Engine) AddPaths(n int) {
	if e == nil {
		return
	}
	e.paths.Add(int64(n))
}

// Charge accounts for one prospective fork at the given depth. It
// returns the first fatal error if the run is cancelled, a classified
// timeout/cancellation fault if the run's context is done, or a
// classified path-budget fault (still wrapping ErrBudget) if the fork
// would exceed the path or depth budget. Every non-nil return is
// fault-classified except a prior hard failure, so executors apply one
// uniform rule: degradable → truncate with imprecision, else abort. A
// nil engine has no budgets.
func (e *Engine) Charge(depth int) error {
	if e == nil {
		return nil
	}
	if err := e.bail(); err != nil {
		return err
	}
	if err := e.ctxErr("engine.fork"); err != nil {
		return err
	}
	if err := e.injector.At(fault.PreFork); err != nil {
		return err
	}
	if e.maxDepth > 0 && depth >= e.maxDepth {
		e.exhausted.Store(true)
		return fault.New(fault.PathBudget, "engine.fork",
			fmt.Sprintf("max-fork-depth=%d", e.maxDepth),
			fmt.Errorf("fork depth %d reached: %w", depth, ErrBudget))
	}
	n := e.forks.Add(1)
	// Each binary fork adds one path beyond the initial one.
	if e.maxPaths > 0 && n+1 > e.maxPaths {
		e.forks.Add(-1)
		e.exhausted.Store(true)
		return fault.New(fault.PathBudget, "engine.fork",
			fmt.Sprintf("max-paths=%d", e.maxPaths),
			fmt.Errorf("path budget %d reached: %w", e.maxPaths, ErrBudget))
	}
	return nil
}

// fail records the first fatal error; later tasks observe it via bail
// and unwind instead of continuing to explore. Classified faults are
// not fatal — they degrade locally and must not make unrelated sibling
// paths abandon their (sound, partial) results — so they are never
// recorded here.
func (e *Engine) fail(err error) {
	if fault.Degradable(err) {
		return
	}
	e.failMu.Lock()
	if e.failed == nil {
		e.failed = err
	}
	e.failMu.Unlock()
}

// bail returns the recorded first fatal error, if any.
func (e *Engine) bail() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failed
}

// protect runs one task with a panic boundary: a panic becomes a
// classified worker-panic fault instead of tearing down the process,
// so sibling paths drain and their partial results still merge.
func protect[T any](fn func() (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fault.FromPanic("engine.task", r)
		}
	}()
	return fn()
}

// Fork2 runs left and right — the two branches of a conditional fork —
// and returns both results in branch order. If a worker slot is free,
// left is handed to it (a steal) while the caller runs right;
// otherwise both run inline. Error handling is deterministic: left's
// error wins over right's, as it would sequentially. A hard first
// error also cancels the engine, making sibling tasks unwind early;
// classified faults (budget, timeout, recovered panic) do not — they
// degrade locally at the caller. Panics inside either branch are
// recovered as worker-panic faults. A nil engine runs left then right
// on the calling goroutine, with the same panic boundary.
//
// (A package-level generic function rather than a method, since Go
// methods cannot introduce type parameters.)
func Fork2[T any](e *Engine, left, right func() (T, error)) (lv, rv T, err error) {
	if e == nil {
		if lv, err = protect(left); err != nil {
			return
		}
		rv, err = protect(right)
		return
	}
	if err = e.bail(); err != nil {
		return
	}
	select {
	case e.slots <- struct{}{}:
		e.steals.Add(1)
		var lerr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() { <-e.slots }()
			lv, lerr = protect(left)
		}()
		var rerr error
		rv, rerr = protect(right)
		<-done
		if lerr != nil {
			err = lerr
		} else {
			err = rerr
		}
	default:
		if lv, err = protect(left); err == nil {
			rv, err = protect(right)
		}
	}
	if err != nil {
		e.fail(err)
	}
	return
}

// protectIdx is protect for Map's indexed tasks.
func protectIdx(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fault.FromPanic("engine.task", r)
		}
	}()
	return fn(i)
}

// Map runs fn(0), ..., fn(n-1) across the worker pool and returns the
// error of the lowest failing index (matching what a sequential loop
// would surface); a panicking task is recovered as a worker-panic
// fault for its index. All calls complete before Map returns; result
// ordering is the caller's, via the index.
func (e *Engine) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if e == nil || e.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := protectIdx(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		errIdx   = n
		firstErr error
	)
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := protectIdx(fn, i); err != nil {
				mu.Lock()
				if i < errIdx {
					errIdx, firstErr = i, err
				}
				mu.Unlock()
			}
		}
	}
	var wg sync.WaitGroup
spawn:
	for helpers := 0; helpers < e.workers-1 && helpers < n-1; helpers++ {
		select {
		case e.slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-e.slots }()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// Snapshot returns the aggregated statistics so far.
func (e *Engine) Snapshot() Stats {
	if e == nil {
		return Stats{}
	}
	s := Stats{
		Workers:   e.workers,
		Paths:     e.paths.Load(),
		Forks:     e.forks.Load(),
		Steals:    e.steals.Load(),
		Exhausted: e.exhausted.Load(),
		Faults:    e.faults.Snapshot(),
	}
	e.pool.addTo(&s)
	return s
}
