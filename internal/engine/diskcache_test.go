package engine

import (
	"os"
	"path/filepath"
	"testing"

	"mix/internal/solver"
)

func unsatPair(a, b string) solver.Formula {
	return solver.NewAnd(
		solver.Lt{X: solver.IntVar{Name: a}, Y: solver.IntVar{Name: b}},
		solver.Lt{X: solver.IntVar{Name: b}, Y: solver.IntVar{Name: a}})
}

// TestDiskCachePersistReload pins the warm-start property: a second
// cache opened on the same directory answers persisted queries from
// disk with identical verdicts and no fresh solve.
func TestDiskCachePersistReload(t *testing.T) {
	dir := t.TempDir()
	sat := vle("x", "y")
	unsat := unsatPair("x", "y")

	c1 := NewCache(CacheOptions{Dir: dir})
	e1 := New(Options{Workers: 1, Cache: c1})
	if got, err := e1.Sat(sat); err != nil || !got {
		t.Fatalf("Sat = %v, %v", got, err)
	}
	if got, err := e1.Sat(unsat); err != nil || got {
		t.Fatalf("unsat query = %v, %v", got, err)
	}
	e1.Close()
	if err := c1.Persist(); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if cs := c1.Stats(); cs.DiskEntries != 2 || cs.DiskHits != 0 {
		t.Fatalf("writer stats = %+v, want 2 entries, 0 hits", cs)
	}

	c2 := NewCache(CacheOptions{Dir: dir})
	e2 := New(Options{Workers: 1, Cache: c2})
	defer e2.Close()
	if got, err := e2.Sat(sat); err != nil || !got {
		t.Fatalf("warm Sat = %v, %v", got, err)
	}
	if got, err := e2.Sat(unsat); err != nil || got {
		t.Fatalf("warm unsat query = %v, %v", got, err)
	}
	// The sat query may be answered by the persisted model (seeded into
	// the counterexample ring) before the verdict map is consulted; the
	// unsat query has no model, so it must hit the disk verdicts.
	cs := c2.Stats()
	if cs.DiskHits+cs.CexHits != 2 || cs.DiskHits < 1 {
		t.Fatalf("warm stats = %+v, want both queries answered from the persistent tier", cs)
	}
	if cs.DiskCorrupt != 0 {
		t.Fatalf("clean reload counted %d corruptions", cs.DiskCorrupt)
	}
}

// TestDiskCacheSurvivesFlush pins the tier split: Flush drops the
// in-memory generation but the persistent tier still answers.
func TestDiskCacheSurvivesFlush(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(CacheOptions{Dir: dir})
	e := New(Options{Workers: 1, Cache: c})
	defer e.Close()
	// An unsat query has no model, so only the disk verdict map can
	// answer it after the flush drops the in-memory memo.
	f := unsatPair("p", "q")
	if got, err := e.Sat(f); err != nil || got {
		t.Fatalf("Sat = %v, %v", got, err)
	}
	c.Flush()
	if got, err := e.Sat(f); err != nil || got {
		t.Fatalf("post-flush Sat = %v, %v", got, err)
	}
	if cs := c.Stats(); cs.DiskHits != 1 {
		t.Fatalf("post-flush stats = %+v, want 1 disk hit", cs)
	}
}

// TestDiskCacheCorruptFileDegrades pins the poisoning behavior: a
// truncated or garbage memo file counts a corruption, reads as empty,
// and the verdicts still come out right; the next Persist heals it.
func TestDiskCacheCorruptFileDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "solver-memo.json")

	c1 := NewCache(CacheOptions{Dir: dir})
	e1 := New(Options{Workers: 1, Cache: c1})
	f := vle("x", "y")
	if _, err := e1.Sat(f); err != nil {
		t.Fatal(err)
	}
	e1.Close()
	if err := c1.Persist(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"schema_version":1,"checksum":"bad`), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(CacheOptions{Dir: dir})
	if cs := c2.Stats(); cs.DiskCorrupt != 1 || cs.DiskEntries != 0 {
		t.Fatalf("poisoned open stats = %+v, want 1 corruption, 0 entries", cs)
	}
	e2 := New(Options{Workers: 1, Cache: c2})
	if got, err := e2.Sat(f); err != nil || !got {
		t.Fatalf("poisoned Sat = %v, %v (must recompute, not fail)", got, err)
	}
	e2.Close()
	if err := c2.Persist(); err != nil {
		t.Fatal(err)
	}

	healed := NewCache(CacheOptions{Dir: dir})
	if cs := healed.Stats(); cs.DiskCorrupt != 0 || cs.DiskEntries != 1 {
		t.Fatalf("healed open stats = %+v, want clean reload with 1 entry", cs)
	}
}

// TestDiskCachePersistCleanNoop pins that Persist without new verdicts
// does not rewrite the file.
func TestDiskCachePersistCleanNoop(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCache(CacheOptions{Dir: dir})
	e := New(Options{Workers: 1, Cache: c1})
	if _, err := e.Sat(vle("x", "y")); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := c1.Persist(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "solver-memo.json")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(CacheOptions{Dir: dir})
	e2 := New(Options{Workers: 1, Cache: c2})
	if _, err := e2.Sat(vle("x", "y")); err != nil {
		t.Fatal(err)
	}
	e2.Close()
	if err := c2.Persist(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("Persist with no new verdicts must not rewrite the file")
	}
}
