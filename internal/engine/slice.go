package engine

import (
	"sync"

	"mix/internal/solver"
)

// conjunct is one unit of a sliced query: a simplified formula, its
// independence-support tokens, and (lazily) its hash-cons id. pcNode
// is set when the conjunct came from a *solver.PC chain, enabling the
// pool's per-node id cache.
type conjunct struct {
	f       solver.Formula
	support []string
	pcNode  *solver.PC
}

// sliceConjuncts splits a query — a path condition plus extra
// formulas — into conjuncts. It reports ok=false when a conjunct is
// literally false (the query is trivially unsat).
func sliceConjuncts(pc *solver.PC, extras []solver.Formula) (out []conjunct, ok bool) {
	out = make([]conjunct, 0, pc.Len()+len(extras))
	for q := pc; q != nil; q = q.Parent() {
		f, sup := q.Head()
		out = append(out, conjunct{f: f, support: sup, pcNode: q})
	}
	// The chain walk yields newest-first; flip to oldest-first so
	// component order (and thus solve order) matches sequential
	// accumulation order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	for _, x := range extras {
		if !appendSimplified(&out, solver.Simplify(x)) {
			return nil, false
		}
	}
	return out, true
}

// appendSimplified splits a simplified formula into top-level
// conjuncts; false means a conjunct is constant false.
func appendSimplified(out *[]conjunct, f solver.Formula) bool {
	switch f := f.(type) {
	case solver.BoolConst:
		return f.Val
	case solver.And:
		return appendSimplified(out, f.X) && appendSimplified(out, f.Y)
	}
	*out = append(*out, conjunct{f: f, support: solver.Support(f)})
	return true
}

// components groups conjuncts into independence classes: two conjuncts
// sharing any support token can constrain each other and must be
// solved together; conjuncts with disjoint support are satisfiable
// independently (LRA variables are disjoint, booleans are disjoint,
// and uninterpreted functions are merged at symbol granularity so
// congruence cannot cross a component boundary). Components are
// returned ordered by their earliest conjunct, which keeps solve order
// — and therefore every observable verdict sequence — deterministic.
func components(cs []conjunct) [][]int {
	parent := make([]int, len(cs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra // root at the smallest index
		}
	}
	owner := map[string]int{}
	for i, c := range cs {
		for _, tok := range c.support {
			if j, ok := owner[tok]; ok {
				union(i, j)
			} else {
				owner[tok] = i
			}
		}
	}
	groups := map[int][]int{}
	var roots []int
	for i := range cs {
		r := find(i)
		if _, seen := groups[r]; !seen {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	// roots were appended in increasing first-conjunct order already
	// (find roots at the smallest member index).
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// cexMaxConjuncts / cexMaxTokens gate the counterexample cache to
// small components. This is a determinism guard, not just a cost one:
// a cache hit short-circuits the solver, so it must only fire where a
// fresh solve is guaranteed to terminate inside its resource budget
// with the same verdict — which components this small always do.
// Without the gate, a hit on a budget-busting component would turn a
// deterministic "unknown" into a schedule-dependent "sat".
const (
	cexMaxConjuncts = 8
	cexMaxTokens    = 16
)

// cexCache is a bounded ring of recent satisfying models. A model
// proving one branch guard satisfiable frequently satisfies the next
// dozen guards on sibling paths verbatim; Eval-checking a candidate
// model is far cheaper than a DPLL run, and a model is only trusted
// for a query after Eval confirms it satisfies that exact query, so
// hits are sound by construction.
type cexCache struct {
	mu     sync.Mutex
	models []*solver.Model
	next   int
}

func newCexCache(size int) *cexCache {
	return &cexCache{models: make([]*solver.Model, 0, size)}
}

// lookup returns a cached model satisfying f, if any.
func (c *cexCache) lookup(f solver.Formula) *solver.Model {
	c.mu.Lock()
	snapshot := make([]*solver.Model, len(c.models))
	copy(snapshot, c.models)
	start := c.next
	c.mu.Unlock()
	// Probe newest-first: recent models reflect the current path region.
	for i := 0; i < len(snapshot); i++ {
		idx := start - 1 - i
		for idx < 0 {
			idx += len(snapshot)
		}
		m := snapshot[idx]
		if ok, err := m.Eval(f); err == nil && ok {
			return m
		}
	}
	return nil
}

func (c *cexCache) add(m *solver.Model) {
	if m == nil {
		return
	}
	c.mu.Lock()
	if len(c.models) < cap(c.models) {
		c.models = append(c.models, m)
		c.next = len(c.models) % cap(c.models)
	} else if cap(c.models) > 0 {
		c.models[c.next] = m
		c.next = (c.next + 1) % cap(c.models)
	}
	c.mu.Unlock()
}
