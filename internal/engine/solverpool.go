package engine

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mix/internal/solver"
)

// memoShards is the shard count of the memo table; a small power of
// two keeps per-shard mutexes cheap without contention at the worker
// counts the scheduler runs.
const memoShards = 16

// defaultMemoSize bounds the memo table when Options.MemoSize is 0.
const defaultMemoSize = 1 << 14

// SolverPool is the engine's concurrency-safe solver frontend. It
// hash-conses formulas into compact keys, memoizes Sat answers in a
// sharded LRU table, and hands every in-flight query a private
// *solver.Solver instance (the solver mutates its Stats on every
// query, so a shared instance would be racy). Construct via New; the
// zero value is not ready.
type SolverPool struct {
	solvers  sync.Pool
	cons     consTable
	memo     []memoShard // nil when memoization is disabled
	shardCap int

	queries atomic.Int64
	hits    atomic.Int64
	misses  atomic.Int64
	unknown atomic.Int64
	nanos   atomic.Int64
}

type memoShard struct {
	mu   sync.Mutex
	ents map[uint64]*list.Element
	lru  *list.List // front = most recently used *memoEntry
}

type memoEntry struct {
	key uint64
	sat bool
	err error
}

func newSolverPool(o Options) *SolverPool {
	factory := o.NewSolver
	if factory == nil {
		factory = solver.New
	}
	p := &SolverPool{
		solvers: sync.Pool{New: func() any { return factory() }},
		cons:    consTable{ids: map[string]uint64{}},
	}
	if !o.NoMemo {
		size := o.MemoSize
		if size <= 0 {
			size = defaultMemoSize
		}
		p.shardCap = (size + memoShards - 1) / memoShards
		p.memo = make([]memoShard, memoShards)
		for i := range p.memo {
			p.memo[i] = memoShard{ents: map[uint64]*list.Element{}, lru: list.New()}
		}
	}
	return p
}

// Sat decides satisfiability of f, consulting and feeding the memo
// table. "Unknown" answers (solver resource exhaustion, which wraps
// solver.ErrLimit) are memoized too: they are deterministic for fixed
// solver bounds, and re-running them would only rediscover the same
// exhaustion. Other errors are returned unmemoized.
func (p *SolverPool) Sat(f solver.Formula) (bool, error) {
	p.queries.Add(1)
	if p.memo == nil {
		return p.solve(f)
	}
	key := p.cons.formulaID(f)
	sh := &p.memo[key%memoShards]
	sh.mu.Lock()
	if el, ok := sh.ents[key]; ok {
		sh.lru.MoveToFront(el)
		ent := el.Value.(*memoEntry)
		sh.mu.Unlock()
		p.hits.Add(1)
		if ent.err != nil {
			p.unknown.Add(1)
		}
		return ent.sat, ent.err
	}
	sh.mu.Unlock()
	p.misses.Add(1)
	sat, err := p.solve(f)
	if err != nil && !errors.Is(err, solver.ErrLimit) {
		return sat, err
	}
	sh.mu.Lock()
	if _, ok := sh.ents[key]; !ok {
		sh.ents[key] = sh.lru.PushFront(&memoEntry{key: key, sat: sat, err: err})
		if sh.lru.Len() > p.shardCap {
			old := sh.lru.Back()
			sh.lru.Remove(old)
			delete(sh.ents, old.Value.(*memoEntry).key)
		}
	}
	sh.mu.Unlock()
	return sat, err
}

// Valid decides validity of f. It is implemented as Sat of the
// negation so that the executors' direct Sat(¬f) queries and Valid(f)
// share one memo entry.
func (p *SolverPool) Valid(f solver.Formula) (bool, error) {
	sat, err := p.Sat(solver.NewNot(f))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// solve runs one query on a pooled per-worker solver instance.
func (p *SolverPool) solve(f solver.Formula) (bool, error) {
	s := p.solvers.Get().(*solver.Solver)
	t0 := time.Now()
	sat, err := s.Sat(f)
	p.nanos.Add(int64(time.Since(t0)))
	p.solvers.Put(s)
	if err != nil && errors.Is(err, solver.ErrLimit) {
		p.unknown.Add(1)
	}
	return sat, err
}

// addTo folds the pool's counters into an engine Stats snapshot.
func (p *SolverPool) addTo(s *Stats) {
	s.MemoHits = p.hits.Load()
	s.MemoMisses = p.misses.Load()
	s.SolverQueries = p.queries.Load()
	s.SolverUnknown = p.unknown.Load()
	s.SolverTime = time.Duration(p.nanos.Load())
}
