package engine

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mix/internal/fault"
	"mix/internal/obs"
	"mix/internal/solver"
)

// memoShards is the shard count of the memo table; a small power of
// two keeps per-shard mutexes cheap without contention at the worker
// counts the scheduler runs.
const memoShards = 16

// defaultMemoSize bounds the memo table when Options.MemoSize is 0.
const defaultMemoSize = 1 << 14

// cexCacheSize bounds the counterexample (model) cache.
const cexCacheSize = 64

// SolverPool is the engine's concurrency-safe solver frontend. Every
// query runs the incremental pipeline
//
//	simplify → interval fast path → independence slicing →
//	per-component memo → counterexample cache → DPLL
//
// Path conditions arrive as *solver.PC cons lists, so the pipeline
// sees pre-simplified conjuncts with cached support tokens and only
// ever pays per-conjunct costs once per PC node, not once per query.
// Trivial conjunctions (boolean literals and single-variable interval
// guards — the overwhelming majority of branch feasibility checks) are
// decided by constant-time interval reasoning and never touch the memo
// table, the hash-cons table, or DPLL. The remainder is sliced into
// independent components: the long shared prefix of a path condition
// memo-hits component-by-component and only the component entangled
// with the new guard is ever solved fresh, usually straight from a
// cached model.
//
// The cached half of the pipeline (intern table, memo, model ring) now
// lives in a Cache, which may be private to this pool (the default) or
// shared across runs via Options.Cache — the serving daemon's warm
// path. Construct via New; the zero value is not ready.
type SolverPool struct {
	// eng points back at the owning engine for the run context and the
	// fault injector; nil only in direct-pool unit tests.
	eng     *Engine
	timeout time.Duration // per-query solver timeout (0 = none)
	algo    solver.Algo   // search core applied to every borrowed solver
	solvers *sync.Pool
	// cache holds the memo/hash-cons/model state; nil when memoization
	// is disabled (Options.NoMemo).
	cache  *Cache
	shared bool // cache arrived via Options.Cache (lifetime not ours)

	// queryHist/dpllHist are per-query and per-fresh-solve duration
	// histograms in the run's metrics registry; nil (inert) when the
	// run has no registry, so the disabled path costs one nil test.
	queryHist *obs.Histogram
	dpllHist  *obs.Histogram

	queries   atomic.Int64
	quick     atomic.Int64
	slices    atomic.Int64
	sliceConj atomic.Int64
	maxSlice  atomic.Int64
	cexHits   atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	unknown   atomic.Int64
	nanos     atomic.Int64
}

type memoShard struct {
	mu   sync.Mutex
	ents map[uint64]*list.Element
	lru  *list.List // front = most recently used *memoEntry
}

type memoEntry struct {
	key uint64
	sat bool
	err error
}

func newSolverPool(e *Engine, o Options) *SolverPool {
	p := &SolverPool{
		eng:       e,
		timeout:   o.SolverTimeout,
		algo:      o.SolverAlgo,
		queryHist: o.Metrics.Histogram("solver.query.ns"),
		dpllHist:  o.Metrics.Histogram("solver.dpll.ns"),
	}
	switch {
	case o.NoMemo:
		// No cached state at all: per-worker solver instances and
		// stats aggregation remain.
	case o.Cache != nil:
		p.cache, p.shared = o.Cache, true
	default:
		p.cache = NewCache(CacheOptions{MemoSize: o.MemoSize, NewSolver: o.NewSolver})
	}
	// A shared cache owns the warm per-worker solver instances —
	// unless this run wants non-default solver bounds, in which case
	// it must keep private instances (and should not be sharing a
	// cache either; see CacheOptions.NewSolver).
	if p.cache != nil && o.NewSolver == nil {
		p.solvers = &p.cache.solvers
	} else {
		factory := o.NewSolver
		if factory == nil {
			factory = solver.New
		}
		p.solvers = &sync.Pool{New: func() any { return factory() }}
	}
	return p
}

// Cache exposes the pool's cache (nil when memoization is disabled).
func (p *SolverPool) Cache() *Cache { return p.cache }

// Sat decides satisfiability of f through the sliced pipeline.
func (p *SolverPool) Sat(f solver.Formula) (bool, error) {
	return p.SatPC(nil, f)
}

// Valid decides validity of f. It is implemented as Sat of the
// negation so that the executors' direct Sat(¬f) queries and Valid(f)
// share one memo entry.
func (p *SolverPool) Valid(f solver.Formula) (bool, error) {
	sat, err := p.Sat(solver.NewNot(f))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// SatPC decides satisfiability of pc ∧ extras. "Unknown" answers
// (solver resource exhaustion, wrapping solver.ErrLimit) are memoized
// per component: they are deterministic for fixed solver bounds, and
// re-running them would only rediscover the same exhaustion. Faults —
// timeouts, cancellations, injected errors — are transient, so they
// continue to the remaining components (a definite UNSAT from any
// component still refutes the whole conjunction, which keeps verdicts
// deterministic across worker counts) but are never memoized. Hard
// errors are returned immediately, unmemoized.
func (p *SolverPool) SatPC(pc *solver.PC, extras ...solver.Formula) (bool, error) {
	return p.SatPCSpan(nil, pc, extras...)
}

// verdictOf renders a pipeline outcome as the trace verdict
// vocabulary: sat / unsat / unknown (resource bound) / error.
func verdictOf(sat bool, err error) string {
	switch {
	case err == nil && sat:
		return "sat"
	case err == nil:
		return "unsat"
	case errors.Is(err, solver.ErrLimit):
		return "unknown"
	default:
		return "error"
	}
}

// SatPCSpan is SatPC with observability attached to sp: the query's
// final verdict is recorded as a solve event (both trace modes — the
// verdict is deterministic across worker counts), pipeline stages as
// timing-mode stage/memo-hit/cex-hit events, and the per-query
// duration in the solver.query.ns histogram. A nil span records
// metrics only; a nil span and nil registry cost two nil tests.
func (p *SolverPool) SatPCSpan(sp *obs.Span, pc *solver.PC, extras ...solver.Formula) (bool, error) {
	var t0 time.Time
	if p.queryHist != nil {
		t0 = time.Now()
	}
	var tr *obs.Tracer
	var ts int64
	if sp != nil && p.eng != nil {
		tr = p.eng.Tracer()
		ts = tr.Now()
	}
	sat, err := p.satPC(sp, pc, extras)
	if p.queryHist != nil {
		p.queryHist.Observe(int64(time.Since(t0)))
	}
	if sp != nil {
		sp.Solve(verdictOf(sat, err), tr.Now()-ts)
	}
	return sat, err
}

// satPC is the undecorated pipeline body behind SatPC/SatPCSpan.
func (p *SolverPool) satPC(sp *obs.Span, pc *solver.PC, extras []solver.Formula) (bool, error) {
	p.queries.Add(1)
	// The pre-solve injection point fires per query, before the quick
	// paths: a planned fault must reach callers whose queries would
	// otherwise be interval- or memo-decided.
	if p.eng != nil {
		if err := p.eng.Injector().At(fault.PreSolve); err != nil {
			return false, err
		}
	}
	if pc.Dead() {
		p.quick.Add(1)
		sp.Stage("quick", "unsat", 0)
		return false, nil
	}
	cs, ok := sliceConjuncts(pc, extras)
	if !ok {
		p.quick.Add(1)
		sp.Stage("quick", "unsat", 0)
		return false, nil
	}
	if len(cs) == 0 {
		p.quick.Add(1)
		sp.Stage("quick", "sat", 0)
		return true, nil
	}
	fs := make([]solver.Formula, len(cs))
	for i := range cs {
		fs[i] = cs[i].f
	}
	if sat, decided := solver.QuickConj(fs); decided {
		p.quick.Add(1)
		sp.Stage("quick", verdictOf(sat, nil), 0)
		return sat, nil
	}
	// Capture one cache generation for the whole query: every interned
	// id, memo key, lookup and store below is internally consistent
	// against this snapshot even if the cache is flushed mid-query.
	g := p.cache.gen()
	var firstErr error
	for _, comp := range components(cs) {
		sat, err := p.decideComponent(sp, g, cs, fs, comp)
		if err != nil && !errors.Is(err, solver.ErrLimit) && !fault.Degradable(err) {
			return false, err
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !sat {
			p.cache.maybeEvict()
			return false, nil
		}
	}
	p.cache.maybeEvict()
	if firstErr != nil {
		return false, firstErr
	}
	return true, nil
}

// decideComponent resolves one independence component against the g
// cache generation: interval fast path, then the memo table, then the
// counterexample cache, then a fresh (small) DPLL solve. g is nil when
// memoization is disabled.
func (p *SolverPool) decideComponent(sp *obs.Span, g *cacheGen, cs []conjunct, fs []solver.Formula, comp []int) (bool, error) {
	sub := make([]solver.Formula, len(comp))
	tokens := 0
	for i, idx := range comp {
		sub[i] = fs[idx]
		tokens += len(cs[idx].support)
	}
	// The whole-query fast path failed, but an individual component —
	// typically everything except the one holding an App term — may
	// still be interval-decidable.
	if len(comp) < len(cs) {
		if sat, decided := solver.QuickConj(sub); decided {
			p.quick.Add(1)
			sp.Stage("quick", verdictOf(sat, nil), 0)
			return sat, nil
		}
	}
	p.slices.Add(1)
	p.sliceConj.Add(int64(len(comp)))
	for {
		max := p.maxSlice.Load()
		if int64(len(comp)) <= max || p.maxSlice.CompareAndSwap(max, int64(len(comp))) {
			break
		}
	}

	var key uint64
	var sh *memoShard
	if g != nil {
		ids := make([]uint64, len(comp))
		for i, idx := range comp {
			ids[i] = conjunctID(g, &cs[idx])
		}
		key = g.cons.conjID(ids)
		sh = &g.memo[key%memoShards]
		sh.mu.Lock()
		if el, ok := sh.ents[key]; ok {
			sh.lru.MoveToFront(el)
			ent := el.Value.(*memoEntry)
			sh.mu.Unlock()
			p.hits.Add(1)
			p.cache.hits.Add(1)
			sp.MemoHit()
			if ent.err != nil {
				p.unknown.Add(1)
			}
			return ent.sat, ent.err
		}
		sh.mu.Unlock()
		p.misses.Add(1)
		p.cache.misses.Add(1)
	}

	conj := solver.Conj(sub...)
	// Small components only (see slice.go): below the gate a fresh
	// solve always terminates inside its budget, so a cache hit cannot
	// change any verdict — only skip work.
	small := len(comp) <= cexMaxConjuncts && tokens <= cexMaxTokens
	if small && g != nil {
		if m := g.cex.lookup(conj); m != nil {
			p.cexHits.Add(1)
			p.cache.cexHits.Add(1)
			sp.CexHit()
			p.memoStore(sh, key, true, nil)
			return true, nil
		}
	}
	// Persistent tier (diskcache.go): definite verdicts saved by an
	// earlier process, keyed by the conjunction's canonical text. A hit
	// is promoted into this generation's memo so repeats stay in memory.
	if g != nil {
		if sat, ok := p.cache.diskLookup(conj.String()); ok {
			sp.Stage("disk", verdictOf(sat, nil), 0)
			p.memoStore(sh, key, sat, nil)
			return sat, nil
		}
	}

	var tr *obs.Tracer
	var ts int64
	if sp != nil && p.eng != nil {
		tr = p.eng.Tracer()
		ts = tr.Now()
	}
	sat, model, err := p.solve(sub, small && g != nil)
	if sp != nil {
		sp.Stage("dpll", verdictOf(sat, err), tr.Now()-ts)
	}
	// Memoize definite answers and plain resource exhaustion — both are
	// deterministic for fixed bounds. Never memoize faults (timeouts,
	// cancellations, injections): they depend on wall clock or the
	// injection schedule, and caching one would turn a transient abort
	// into a permanent wrong verdict.
	if err == nil || (errors.Is(err, solver.ErrLimit) && fault.Of(err) == nil) {
		p.memoStore(sh, key, sat, err)
	}
	if err == nil && sat && g != nil {
		g.cex.add(model) // add ignores nil models (extraction is best-effort)
	}
	if err == nil && g != nil {
		// Persist only definite verdicts: "unknown" depends on solver
		// bounds, which the disk file may outlive.
		p.cache.diskAdd(conj.String(), sat, model)
	}
	return sat, err
}

// conjunctID returns the hash-cons id of a conjunct in generation g,
// via the per-PC-node cache when the conjunct came from a path
// condition.
func conjunctID(g *cacheGen, c *conjunct) uint64 {
	if c.pcNode == nil {
		return g.cons.formulaID(c.f)
	}
	g.pcMu.RLock()
	id, ok := g.pcIDs[c.pcNode]
	g.pcMu.RUnlock()
	if ok {
		return id
	}
	id = g.cons.formulaID(c.f)
	g.pcMu.Lock()
	g.pcIDs[c.pcNode] = id
	g.pcMu.Unlock()
	return id
}

// memoStore inserts a verdict; sh is nil when memoization is off.
func (p *SolverPool) memoStore(sh *memoShard, key uint64, sat bool, err error) {
	if sh == nil {
		return
	}
	sh.mu.Lock()
	if _, ok := sh.ents[key]; !ok {
		sh.ents[key] = sh.lru.PushFront(&memoEntry{key: key, sat: sat, err: err})
		if sh.lru.Len() > p.cache.shardCap {
			old := sh.lru.Back()
			sh.lru.Remove(old)
			delete(sh.ents, old.Value.(*memoEntry).key)
		}
	}
	sh.mu.Unlock()
}

// solve runs one query on a pooled per-worker solver instance, wired
// to the run context (plus the per-query timeout, if configured) and
// the fault injector for the duration of the query. The component's
// conjuncts are handed over as separate assumption formulas, not one
// flat conjunction: a warm CDCL instance has already encoded the
// shared prefix of the path condition, so the query pays only for its
// new conjunct.
func (p *SolverPool) solve(sub []solver.Formula, wantModel bool) (bool, *solver.Model, error) {
	s := p.solvers.Get().(*solver.Solver)
	s.Algo = p.algo
	// A pooled instance retains learned clauses and encodings across
	// queries (that is the point), but never across cache generations:
	// a flush marks "start over", and the solver follows it.
	if p.cache != nil {
		if epoch := uint64(p.cache.flushes.Load()); s.Gen != epoch {
			s.Reset()
			s.Gen = epoch
		}
	}
	var cancel context.CancelFunc
	if p.eng != nil {
		ctx := p.eng.Context()
		if p.timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, p.timeout)
		}
		s.Ctx, s.Injector = ctx, p.eng.Injector()
	}
	t0 := time.Now()
	var (
		sat   bool
		model *solver.Model
		err   error
	)
	if wantModel {
		sat, model, err = s.SatAssumingModel(sub...)
	} else {
		sat, err = s.SatAssuming(sub...)
	}
	d := time.Since(t0)
	p.nanos.Add(int64(d))
	p.dpllHist.Observe(int64(d))
	// Reset before Put: a pooled instance must never carry a stale
	// context or injector into its next borrower.
	s.Ctx, s.Injector = nil, nil
	if cancel != nil {
		cancel()
	}
	p.solvers.Put(s)
	if err != nil && errors.Is(err, solver.ErrLimit) {
		p.unknown.Add(1)
	}
	return sat, model, err
}

// addTo folds the pool's counters into an engine Stats snapshot.
func (p *SolverPool) addTo(s *Stats) {
	s.MemoHits = p.hits.Load()
	s.MemoMisses = p.misses.Load()
	s.SolverQueries = p.queries.Load()
	s.SolverUnknown = p.unknown.Load()
	s.SolverTime = time.Duration(p.nanos.Load())
	s.QuickDecided = p.quick.Load()
	s.Slices = p.slices.Load()
	s.SliceConjuncts = p.sliceConj.Load()
	s.MaxSlice = p.maxSlice.Load()
	s.CexHits = p.cexHits.Load()
}
