package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mix/internal/solver"
)

// defaultConsLimit bounds the hash-cons intern table of a Cache before
// a generation flush reclaims it (CacheOptions.ConsLimit = 0). The
// intern table is the only grow-only structure in the pipeline — the
// memo shards are LRU-bounded and the counterexample ring is fixed —
// so its size is the trigger for whole-cache eviction.
const defaultConsLimit = 1 << 18

// CacheOptions configures a cross-run Cache.
type CacheOptions struct {
	// MemoSize bounds the number of memoized solver verdicts
	// (0 = default, 16384), spread across the memo shards as an LRU
	// per shard.
	MemoSize int
	// ConsLimit bounds the hash-cons intern table (and, transitively,
	// the per-PC-node id cache): when a query pushes the table past
	// the limit the whole generation — intern table, memo, model
	// cache, PC ids — is dropped and rebuilt warm from subsequent
	// traffic. 0 = default (262144 nodes).
	ConsLimit int
	// NewSolver builds the pooled per-worker solver instances
	// (nil = solver.New). Engines sharing this Cache inherit the
	// factory, so every borrower sees identical resource bounds —
	// memoized "unknown" verdicts are only deterministic for fixed
	// bounds.
	NewSolver func() *solver.Solver
	// Dir, when non-empty, backs the cache with a persistent tier
	// (diskcache.go): definite verdicts and counterexample models are
	// loaded from dir at construction and written back on Persist.
	// The disk tier survives Flush — flushing drops the in-memory
	// generation, not the cross-run store.
	Dir string
}

// Cache is the warm, cross-run half of the solver pipeline: the
// hash-cons intern table, the sharded memo of Sat verdicts, the
// counterexample (model) ring, the per-PC-node conjunct-id cache, and
// the pool of per-worker solver instances. A Cache outlives any single
// Engine: construct one with NewCache, pass it to every run via
// Options.Cache (or mix.Config.Cache / mix.CConfig.Cache), and
// back-to-back runs skip re-proving every formula an earlier run
// already decided. cmd/mixd shares one Cache across all requests —
// cache warmth is the daemon's whole reason to exist.
//
// Sharing is sound because a hit can only skip work, never change a
// verdict: definite sat/unsat answers and deterministic resource
// exhaustion are the only memoized outcomes (timeouts, cancellations
// and injected faults never enter the table — solverpool.go), and the
// counterexample ring is consulted only below the smallness gate where
// a fresh solve always terminates identically. TestCacheWarmColdIdentical
// pins byte-identical results warm vs cold.
//
// Eviction is generational: the intern table assigns dense ids that
// memo keys are built from, so entries cannot be evicted one by one —
// instead, when the table passes ConsLimit (or Flush is called) the
// current generation is atomically swapped for an empty one.
// In-flight queries keep the generation they started on (ids, memo
// keys and stores stay internally consistent against one snapshot) and
// it is garbage-collected when they drain. All methods are safe for
// concurrent use, including Flush under load.
type Cache struct {
	memoSize  int
	shardCap  int
	consLimit int
	solvers   sync.Pool
	cur       atomic.Pointer[cacheGen]
	disk      *diskStore // nil without CacheOptions.Dir

	// Lifetime counters, across every engine and generation that ever
	// used this cache — the daemon's warm-vs-cold observability.
	hits        atomic.Int64
	misses      atomic.Int64
	cexHits     atomic.Int64
	flushes     atomic.Int64
	evictions   atomic.Int64
	diskHits    atomic.Int64
	diskCorrupt atomic.Int64
}

// cacheGen is one immutable-identity generation of the cache's data
// structures. Queries capture a *cacheGen once and do all interning,
// lookups and stores against it, so a concurrent flush can never mix
// id namespaces.
type cacheGen struct {
	cons consTable
	memo []memoShard
	cex  *cexCache

	// pcIDs caches the hash-cons id of each PC node's conjunct, keyed
	// by node identity (nodes are immutable). Bounded by the
	// generation's lifetime: a flush drops it with the intern table it
	// indexes into.
	pcMu  sync.RWMutex
	pcIDs map[*solver.PC]uint64
}

// NewCache builds an empty cache from o.
func NewCache(o CacheOptions) *Cache {
	size := o.MemoSize
	if size <= 0 {
		size = defaultMemoSize
	}
	limit := o.ConsLimit
	if limit <= 0 {
		limit = defaultConsLimit
	}
	factory := o.NewSolver
	if factory == nil {
		factory = solver.New
	}
	c := &Cache{
		memoSize:  size,
		shardCap:  (size + memoShards - 1) / memoShards,
		consLimit: limit,
		solvers:   sync.Pool{New: func() any { return factory() }},
	}
	if o.Dir != "" {
		disk, err := openDiskStore(o.Dir)
		if err != nil {
			// Corrupt or stale file: count the fault and start cold;
			// the next Persist overwrites the bad file.
			c.diskCorrupt.Add(1)
		}
		c.disk = disk
	}
	c.cur.Store(c.newGen())
	return c
}

func (c *Cache) newGen() *cacheGen {
	g := &cacheGen{
		cons:  newConsTable(),
		memo:  make([]memoShard, memoShards),
		cex:   newCexCache(cexCacheSize),
		pcIDs: map[*solver.PC]uint64{},
	}
	for i := range g.memo {
		g.memo[i] = memoShard{ents: map[uint64]*list.Element{}, lru: list.New()}
	}
	if c.disk != nil {
		// Seed the fresh generation's counterexample ring with the
		// persisted models; each is still re-checked against its query
		// before being trusted (cexCache.lookup evaluates the model).
		for _, m := range c.disk.snapshotModels() {
			g.cex.add(m)
		}
	}
	return g
}

// gen returns the current generation (nil receiver → nil, meaning
// memoization is off).
func (c *Cache) gen() *cacheGen {
	if c == nil {
		return nil
	}
	return c.cur.Load()
}

// Flush atomically replaces every cached structure with an empty
// generation: the next query starts cold. In-flight queries finish
// against the old generation. Safe under concurrent load; the
// daemon's /flush endpoint calls this.
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	c.cur.Store(c.newGen())
	c.flushes.Add(1)
}

// maybeEvict flushes the cache when the current generation's intern
// table has outgrown the limit. Called once per query on the slow
// path, so the size probe (one mutex acquisition) is amortized against
// a DPLL solve or memo lookup.
func (c *Cache) maybeEvict() {
	if c == nil {
		return
	}
	g := c.cur.Load()
	if g.cons.size() <= c.consLimit {
		return
	}
	// CAS-free double-check under a fresh load: losing a race just
	// means someone else already swapped the generation.
	if c.cur.CompareAndSwap(g, c.newGen()) {
		c.evictions.Add(1)
		c.flushes.Add(1)
	}
}

// CacheStats is a point-in-time reading of a Cache: sizes of the
// current generation plus lifetime hit/flush counters.
type CacheStats struct {
	// MemoEntries / ConsEntries / PCEntries size the current
	// generation: memoized verdicts, interned formula/term nodes, and
	// cached PC-node ids.
	MemoEntries int
	ConsEntries int
	PCEntries   int
	// MemoHits / MemoMisses / CexHits accumulate across the cache's
	// whole lifetime (every engine, every generation) — the serving
	// layer's warm-vs-cold signal. Per-run figures stay on the
	// engine's own Stats.
	MemoHits   int64
	MemoMisses int64
	CexHits    int64
	// Flushes counts generation swaps (explicit Flush + evictions);
	// Evictions counts only the swaps forced by ConsLimit.
	Flushes   int64
	Evictions int64
	// DiskEntries / DiskHits / DiskCorrupt describe the persistent
	// tier (zero without CacheOptions.Dir): persisted verdicts,
	// lifetime hits answered from disk, and files or entries that
	// failed integrity checks (degraded to recompute).
	DiskEntries int
	DiskHits    int64
	DiskCorrupt int64
}

// Stats reads the cache. Safe for concurrent use; zero value on nil.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	g := c.cur.Load()
	s := CacheStats{
		ConsEntries: g.cons.size(),
		MemoHits:    c.hits.Load(),
		MemoMisses:  c.misses.Load(),
		CexHits:     c.cexHits.Load(),
		Flushes:     c.flushes.Load(),
		Evictions:   c.evictions.Load(),
	}
	for i := range g.memo {
		sh := &g.memo[i]
		sh.mu.Lock()
		s.MemoEntries += len(sh.ents)
		sh.mu.Unlock()
	}
	g.pcMu.RLock()
	s.PCEntries = len(g.pcIDs)
	g.pcMu.RUnlock()
	if c.disk != nil {
		s.DiskEntries = c.disk.size()
	}
	s.DiskHits = c.diskHits.Load()
	s.DiskCorrupt = c.diskCorrupt.Load()
	return s
}

// diskLookup consults the persistent tier (nil-safe; a miss when no
// Dir was configured).
func (c *Cache) diskLookup(key string) (sat, ok bool) {
	if c == nil || c.disk == nil {
		return false, false
	}
	sat, ok = c.disk.lookup(key)
	if ok {
		c.diskHits.Add(1)
	}
	return sat, ok
}

// diskAdd records a definite verdict (and model, when sat produced
// one) in the persistent tier. Nil-safe no-op without a Dir.
func (c *Cache) diskAdd(key string, sat bool, model *solver.Model) {
	if c == nil || c.disk == nil {
		return
	}
	c.disk.add(key, sat, model)
}

// Persist writes the persistent tier back to its directory. Call at
// the end of a CLI run or on daemon drain; a memory-only cache (no
// CacheOptions.Dir) is a no-op. Safe under concurrent queries.
func (c *Cache) Persist() error {
	if c == nil || c.disk == nil {
		return nil
	}
	return c.disk.persist()
}
