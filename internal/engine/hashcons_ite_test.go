package engine

import (
	"testing"

	"mix/internal/solver"
)

// TestHashconsIteCanonicalization pins the memo-key property for
// merged-state queries: the two polarity spellings of one ite — built
// by hand, bypassing solver.NewIte's normalization — must intern to
// the same id, and distinct ites must not collide.
func TestHashconsIteCanonicalization(t *testing.T) {
	g := solver.BoolVar{Name: "g"}
	a, b := solver.IntVar{Name: "a"}, solver.IntVar{Name: "b"}

	tab := newConsTable()
	pos := tab.term(solver.Ite{G: g, X: a, Y: b})
	neg := tab.term(solver.Ite{G: solver.Not{X: g}, X: b, Y: a})
	if pos != neg {
		t.Fatalf("ite(g, a, b) interned as %d but ite(!g, b, a) as %d; merged runs would halve their memo hit rate", pos, neg)
	}
	if again := tab.term(solver.Ite{G: g, X: a, Y: b}); again != pos {
		t.Fatalf("re-interning the same ite gave %d, want %d", again, pos)
	}
	if swapped := tab.term(solver.Ite{G: g, X: b, Y: a}); swapped == pos {
		t.Fatal("ite(g, a, b) and ite(g, b, a) are different functions but interned to one id")
	}
	if other := tab.term(solver.Ite{G: solver.BoolVar{Name: "h"}, X: a, Y: b}); other == pos {
		t.Fatal("ites under different guards interned to one id")
	}
	// An ite-bearing atom keys differently from its ite-free shadow.
	withIte := tab.formula(solver.Eq{X: solver.Ite{G: g, X: a, Y: b}, Y: a})
	plain := tab.formula(solver.Eq{X: a, Y: a})
	if withIte == plain {
		t.Fatal("ite-bearing and plain atoms interned to one id")
	}
}
