// Resource-exhaustion mapping tests for the solver pool: every
// pipeline stage that can hit a limit must surface it as
// errors.Is(err, solver.ErrLimit) with fault class solver-limit, and
// the memo table must replay deterministic exhaustion while never
// caching transient faults (timeouts, cancellations).
package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/solver"
)

// iffChain builds Iff(v0,v1) ∧ Iff(v1,v2) ∧ ... — a single entangled
// component (every conjunct shares a variable with the next) that the
// interval fast path cannot decide and slicing cannot split, so it is
// guaranteed to reach DPLL with roughly one decision per variable.
func iffChain(n int) solver.Formula {
	vars := make([]solver.Formula, n+1)
	for i := range vars {
		vars[i] = solver.BoolVar{Name: "v" + string(rune('a'+i%26)) + string(rune('0'+i/26))}
	}
	f := solver.Formula(solver.BoolConst{Val: true})
	for i := 0; i < n; i++ {
		f = solver.NewAnd(f, solver.Iff{X: vars[i], Y: vars[i+1]})
	}
	return f
}

// orChain builds (y0∨z0∨w0) ∧ (¬w0∨y1∨z1∨w1) ∧ ... — a single
// entangled component (each clause shares w with the next) where unit
// propagation stalls: every clause needs two decisions before it
// propagates, under chronological DPLL and CDCL alike, so n links cost
// at least 2n decisions in either core.
func orChain(n int) solver.Formula {
	v := func(p string, i int) solver.Formula {
		return solver.BoolVar{Name: p + string(rune('a'+i%26)) + string(rune('0'+i/26))}
	}
	f := solver.Disj(v("y", 0), v("z", 0), v("w", 0))
	for i := 1; i <= n; i++ {
		link := solver.Disj(solver.NewNot(v("w", i-1)), v("y", i), v("z", i), v("w", i))
		f = solver.NewAnd(f, link)
	}
	return f
}

// tightEngine builds a single-worker engine whose pooled solvers carry
// the given bounds, so pipeline-stage limit handling can be exercised
// without huge formulas.
func tightEngine(t *testing.T, maxAtoms, maxDecisions int) *engine.Engine {
	t.Helper()
	eng := engine.New(engine.Options{
		Workers: 1,
		NewSolver: func() *solver.Solver {
			s := solver.New()
			if maxAtoms > 0 {
				s.MaxAtoms = maxAtoms
			}
			if maxDecisions > 0 {
				s.MaxDecisions = maxDecisions
			}
			return s
		},
	})
	t.Cleanup(eng.Close)
	return eng
}

// TestDecisionBudgetMapsToErrLimit: decision-budget exhaustion
// must come back through the pipeline as ErrLimit / solver-limit, and
// it must be memoized — re-running the same query under the same
// bounds would only rediscover the same exhaustion.
func TestDecisionBudgetMapsToErrLimit(t *testing.T) {
	eng := tightEngine(t, 0, 1)
	f := orChain(2)
	_, err := eng.Sat(f)
	if err == nil {
		t.Fatal("an entangled chain under MaxDecisions=1 must exhaust the budget")
	}
	if !errors.Is(err, solver.ErrLimit) {
		t.Fatalf("err = %v, want errors.Is(err, solver.ErrLimit)", err)
	}
	if got := fault.ClassOf(err); got != fault.SolverLimit {
		t.Fatalf("fault class = %v, want solver-limit", got)
	}
	if fault.Of(err) != nil {
		t.Fatalf("plain resource exhaustion is deterministic, not a transient fault: %v", err)
	}

	// The unknown verdict must replay from the memo table.
	_, err2 := eng.Sat(f)
	if !errors.Is(err2, solver.ErrLimit) {
		t.Fatalf("memoized replay = %v, want the same ErrLimit", err2)
	}
	s := eng.Snapshot()
	if s.MemoHits == 0 {
		t.Fatalf("second identical exhausted query must memo-hit: %+v", s)
	}
	if s.SolverUnknown < 2 {
		t.Fatalf("both queries must count as unknown, got %d", s.SolverUnknown)
	}
}

// TestAtomGateMapsToErrLimit: the pre-DPLL atom gate is a distinct
// pipeline stage; its exhaustion must classify identically.
func TestAtomGateMapsToErrLimit(t *testing.T) {
	eng := tightEngine(t, 1, 0)
	_, err := eng.Sat(iffChain(4)) // 5 atoms over MaxAtoms=1
	if !errors.Is(err, solver.ErrLimit) {
		t.Fatalf("err = %v, want errors.Is(err, solver.ErrLimit)", err)
	}
	if got := fault.ClassOf(err); got != fault.SolverLimit {
		t.Fatalf("fault class = %v, want solver-limit", got)
	}
	if fault.Of(err) != nil {
		t.Fatalf("atom-gate exhaustion must not be a transient fault: %v", err)
	}
}

// TestCancellationNotMemoized is the soundness half of unknown-caching:
// a cancellation verdict depends on wall clock, so caching it would
// turn a transient abort into a permanent wrong answer. Cancel, query,
// swap in a live context, and the same query must produce the real
// verdict.
func TestCancellationNotMemoized(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.Options{Workers: 1, Context: ctx})
	defer eng.Close()

	f := iffChain(4)
	_, err := eng.Sat(f)
	if got := fault.ClassOf(err); got != fault.Canceled {
		t.Fatalf("canceled-context query: fault class = %v (err %v), want canceled", got, err)
	}
	if fault.Of(err) == nil {
		t.Fatalf("cancellation must be a classified transient fault: %v", err)
	}

	eng.SetContext(context.Background())
	sat, err := eng.Sat(f)
	if err != nil {
		t.Fatalf("live-context re-query failed — the cancellation was memoized: %v", err)
	}
	if !sat {
		t.Fatal("an iff-chain is satisfiable; the degraded verdict leaked into the memo")
	}
	if hits := eng.Snapshot().MemoHits; hits != 0 {
		t.Fatalf("nothing should have been memoized before the real verdict, got %d hits", hits)
	}
}

// TestSolverTimeoutClassifiesTimeout: the per-query timeout wires a
// deadline context into each pooled solve; an already-expired budget
// must classify as a timeout fault and stay out of the memo.
func TestSolverTimeoutClassifiesTimeout(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1, SolverTimeout: time.Nanosecond})
	defer eng.Close()

	_, err := eng.Sat(iffChain(4))
	if got := fault.ClassOf(err); got != fault.Timeout {
		t.Fatalf("fault class = %v (err %v), want timeout", got, err)
	}
	if fault.Of(err) == nil {
		t.Fatalf("a timeout must be a classified transient fault: %v", err)
	}
	_, err2 := eng.Sat(iffChain(4))
	if fault.ClassOf(err2) != fault.Timeout {
		t.Fatalf("re-query = %v; the timeout verdict must not have been memoized", err2)
	}
	if hits := eng.Snapshot().MemoHits; hits != 0 {
		t.Fatalf("timeout verdicts must never be memoized, got %d hits", hits)
	}
}

// TestMidDPLLInjectionReachesDecisionLoop: the mid-DPLL injection site
// sits on the decision-loop poll (every 32 decisions; the CDCL core
// and the portfolio racers poll the same fault.MidDPLL site); a long
// entangled chain must trip it under every search core and surface the
// planned fault class.
func TestMidDPLLInjectionReachesDecisionLoop(t *testing.T) {
	for _, algo := range []solver.Algo{solver.AlgoCDCL, solver.AlgoDPLL, solver.AlgoPortfolio} {
		t.Run(algo.String(), func(t *testing.T) {
			inj := fault.NewInjector(1).Plan(fault.MidDPLL, fault.Plan{Class: fault.SolverLimit})
			eng := engine.New(engine.Options{Workers: 1, FaultInjector: inj, SolverAlgo: algo})
			defer eng.Close()

			// ~80 decisions (two per link): comfortably past the
			// 32-decision poll cadence of both cores.
			_, err := eng.Sat(orChain(40))
			if got := fault.ClassOf(err); got != fault.SolverLimit {
				t.Fatalf("fault class = %v (err %v), want the injected solver-limit", got, err)
			}
			if fault.Of(err) == nil {
				t.Fatalf("injected faults are transient and must not be memoizable: %v", err)
			}
			if n := inj.Counters().Snapshot().Of(fault.SolverLimit); n == 0 {
				t.Fatal("the mid-DPLL site never fired")
			}
			if hits := eng.Snapshot().MemoHits; hits != 0 {
				t.Fatalf("injected faults must never be memoized, got %d hits", hits)
			}
		})
	}
}
