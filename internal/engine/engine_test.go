package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestFork2NilEngineSequential(t *testing.T) {
	var order []string
	l, r, err := Fork2(nil,
		func() (string, error) { order = append(order, "L"); return "left", nil },
		func() (string, error) { order = append(order, "R"); return "right", nil })
	if err != nil || l != "left" || r != "right" {
		t.Fatalf("Fork2(nil) = %q, %q, %v", l, r, err)
	}
	if fmt.Sprint(order) != "[L R]" {
		t.Fatalf("nil engine must run left before right, got %v", order)
	}
}

func TestFork2BranchOrderDeterministic(t *testing.T) {
	// Regardless of which goroutine finishes first, the left result is
	// returned in the left slot.
	e := New(Options{Workers: 4})
	for i := 0; i < 200; i++ {
		l, r, err := Fork2(e,
			func() (int, error) { return 1, nil },
			func() (int, error) { return 2, nil })
		if err != nil || l != 1 || r != 2 {
			t.Fatalf("iteration %d: got %d, %d, %v", i, l, r, err)
		}
	}
	if s := e.Snapshot(); s.Steals == 0 {
		t.Fatalf("expected some steals across 200 forks, got %+v", s)
	}
}

func TestFork2LeftErrorWins(t *testing.T) {
	lErr := errors.New("left failed")
	rErr := errors.New("right failed")
	for i := 0; i < 100; i++ {
		e := New(Options{Workers: 4})
		_, _, err := Fork2(e,
			func() (int, error) { return 0, lErr },
			func() (int, error) { return 0, rErr })
		if err != lErr {
			t.Fatalf("want left error to win deterministically, got %v", err)
		}
	}
}

func TestFork2ErrorCancelsEngine(t *testing.T) {
	e := New(Options{Workers: 2})
	boom := errors.New("boom")
	_, _, err := Fork2(e,
		func() (int, error) { return 0, boom },
		func() (int, error) { return 0, nil })
	if err != boom {
		t.Fatalf("first fork: %v", err)
	}
	// Later forks observe the recorded failure and unwind immediately.
	ran := false
	_, _, err = Fork2(e,
		func() (int, error) { ran = true; return 0, nil },
		func() (int, error) { ran = true; return 0, nil })
	if err != boom || ran {
		t.Fatalf("cancelled engine must bail before running branches (err=%v ran=%v)", err, ran)
	}
	if err := e.Charge(0); err != boom {
		t.Fatalf("Charge after failure = %v, want recorded error", err)
	}
}

func TestFork2SaturatedPoolRunsInline(t *testing.T) {
	// Workers == 1 leaves no slots to steal; both branches must still
	// run, on the calling goroutine, in order.
	e := New(Options{Workers: 1})
	l, r, err := Fork2(e,
		func() (int, error) { return 1, nil },
		func() (int, error) { return 2, nil })
	if err != nil || l != 1 || r != 2 {
		t.Fatalf("got %d, %d, %v", l, r, err)
	}
	if s := e.Snapshot(); s.Steals != 0 {
		t.Fatalf("workers=1 must not steal, got %+v", s)
	}
}

func TestChargePathBudget(t *testing.T) {
	e := New(Options{Workers: 1, MaxPaths: 3})
	// Each binary fork adds one path beyond the initial one: two forks
	// reach 3 paths, the third must be refused.
	if err := e.Charge(0); err != nil {
		t.Fatalf("fork 1: %v", err)
	}
	if err := e.Charge(0); err != nil {
		t.Fatalf("fork 2: %v", err)
	}
	err := e.Charge(0)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("fork 3 = %v, want ErrBudget", err)
	}
	if s := e.Snapshot(); !s.Exhausted || s.Forks != 2 {
		t.Fatalf("snapshot after budget hit: %+v", s)
	}
}

func TestChargeDepthBudget(t *testing.T) {
	e := New(Options{Workers: 1, MaxForkDepth: 4})
	if err := e.Charge(3); err != nil {
		t.Fatalf("depth 3: %v", err)
	}
	if err := e.Charge(4); !errors.Is(err, ErrBudget) {
		t.Fatalf("depth 4 = %v, want ErrBudget", err)
	}
}

func TestChargeNilEngineUnlimited(t *testing.T) {
	var e *Engine
	for i := 0; i < 1000; i++ {
		if err := e.Charge(i); err != nil {
			t.Fatalf("nil engine charged: %v", err)
		}
	}
	e.AddPaths(5) // must not panic
	if s := e.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

func TestMapOrderingAndCompletion(t *testing.T) {
	e := New(Options{Workers: 4})
	const n = 100
	var out [n]int32
	err := e.Map(n, func(i int) error {
		atomic.StoreInt32(&out[i], int32(i)+1)
		return nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range out {
		if v != int32(i)+1 {
			t.Fatalf("index %d not executed (got %d)", i, v)
		}
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	e := New(Options{Workers: 4})
	errAt := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for rep := 0; rep < 50; rep++ {
		err := e.Map(20, func(i int) error {
			if i == 3 || i == 17 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("want lowest-index error, got %v", err)
		}
	}
}

func TestMapNilEngineSequential(t *testing.T) {
	var e *Engine
	var order []int
	err := e.Map(5, func(i int) error { order = append(order, i); return nil })
	if err != nil || fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Fatalf("nil Map: %v %v", order, err)
	}
}

func TestSnapshotAggregates(t *testing.T) {
	e := New(Options{Workers: 3})
	e.AddPaths(7)
	if err := e.Charge(0); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.Workers != 3 || s.Paths != 7 || s.Forks != 1 || s.Exhausted {
		t.Fatalf("snapshot = %+v", s)
	}
}
