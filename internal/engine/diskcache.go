package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/big"
	"os"
	"path/filepath"
	"sync"

	"mix/internal/solver"
)

// The disk tier of a Cache: definite solver verdicts and
// counterexample models persisted to a single versioned file, so a
// cold process pointed at a warm -cache-dir skips re-proving formulas
// earlier processes already decided.
//
// Only verdicts that are sound to share cross-process enter the file:
// definite sat/unsat with no error. Resource-exhaustion "unknown"
// verdicts are memoized in memory but never persisted — they are
// deterministic only for one solver configuration, and the file may
// outlive a configuration change. Models are safe unconditionally
// because the counterexample cache re-checks every candidate model
// against the query before trusting it (solver.Model.Eval).
//
// A corrupt or stale file counts as a cache-corrupt fault, reads as
// empty, and is overwritten wholesale on the next Persist — degraded
// to recompute, never a wrong answer.

// diskSchemaVersion versions the solver-memo file format.
const diskSchemaVersion = 1

const (
	// maxDiskVerdicts bounds the persisted verdict map across runs.
	// Once full, new verdicts stay memory-only.
	maxDiskVerdicts = 1 << 16
	// maxDiskModels bounds the persisted model list; matches the
	// in-memory counterexample ring it seeds.
	maxDiskModels = cexCacheSize
)

type diskStore struct {
	path string

	mu       sync.Mutex
	verdicts map[string]bool // canonical conjunction text → sat
	models   []*solver.Model
	dirty    bool
}

type diskPayload struct {
	Verdicts map[string]bool `json:"verdicts"`
	Models   []diskModel     `json:"models,omitempty"`
}

// diskModel serializes a solver model with rationals as exact "a/b"
// strings (big.Rat round-trips losslessly through its text form).
type diskModel struct {
	Ints  map[string]string `json:"ints,omitempty"`
	Bools map[string]bool   `json:"bools,omitempty"`
}

type diskFile struct {
	SchemaVersion int             `json:"schema_version"`
	Checksum      string          `json:"checksum"`
	Payload       json.RawMessage `json:"payload"`
}

// openDiskStore loads (or initializes) the disk tier under dir.
// The error reports a corrupt or stale existing file; the returned
// store is usable either way.
func openDiskStore(dir string) (*diskStore, error) {
	_ = os.MkdirAll(dir, 0o755)
	d := &diskStore{
		path:     filepath.Join(dir, "solver-memo.json"),
		verdicts: map[string]bool{},
	}
	b, err := os.ReadFile(d.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return d, nil
		}
		return d, err
	}
	var f diskFile
	if err := json.Unmarshal(b, &f); err != nil {
		return d, fmt.Errorf("solver memo: bad envelope: %v", err)
	}
	if f.SchemaVersion != diskSchemaVersion {
		return d, fmt.Errorf("solver memo: schema version %d, want %d", f.SchemaVersion, diskSchemaVersion)
	}
	if sum := sha256.Sum256(f.Payload); hex.EncodeToString(sum[:]) != f.Checksum {
		return d, fmt.Errorf("solver memo: checksum mismatch")
	}
	var p diskPayload
	if err := json.Unmarshal(f.Payload, &p); err != nil {
		return d, fmt.Errorf("solver memo: bad payload: %v", err)
	}
	if p.Verdicts != nil {
		d.verdicts = p.Verdicts
	}
	for _, dm := range p.Models {
		m := &solver.Model{Ints: map[string]*big.Rat{}, Bools: dm.Bools}
		if m.Bools == nil {
			m.Bools = map[string]bool{}
		}
		for name, s := range dm.Ints {
			r, ok := new(big.Rat).SetString(s)
			if !ok {
				return d, fmt.Errorf("solver memo: bad rational %q", s)
			}
			m.Ints[name] = r
		}
		d.models = append(d.models, m)
	}
	return d, nil
}

func (d *diskStore) lookup(key string) (sat, ok bool) {
	d.mu.Lock()
	sat, ok = d.verdicts[key]
	d.mu.Unlock()
	return sat, ok
}

func (d *diskStore) add(key string, sat bool, model *solver.Model) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.verdicts[key]; !exists && len(d.verdicts) < maxDiskVerdicts {
		d.verdicts[key] = sat
		d.dirty = true
	}
	if sat && model != nil && len(d.models) < maxDiskModels {
		d.models = append(d.models, model)
		d.dirty = true
	}
}

// snapshotModels returns the loaded models, for seeding a fresh
// generation's counterexample ring.
func (d *diskStore) snapshotModels() []*solver.Model {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*solver.Model, len(d.models))
	copy(out, d.models)
	return out
}

func (d *diskStore) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.verdicts)
}

// persist writes the store back to disk (tmp file + rename, so a
// concurrent reader never sees a torn file). No-op when clean.
func (d *diskStore) persist() error {
	d.mu.Lock()
	if !d.dirty {
		d.mu.Unlock()
		return nil
	}
	p := diskPayload{Verdicts: d.verdicts}
	for _, m := range d.models {
		dm := diskModel{Ints: map[string]string{}, Bools: m.Bools}
		for name, r := range m.Ints {
			dm.Ints[name] = r.RatString()
		}
		p.Models = append(p.Models, dm)
	}
	payload, err := json.Marshal(&p)
	d.dirty = false
	d.mu.Unlock()
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	b, err := json.Marshal(&diskFile{
		SchemaVersion: diskSchemaVersion,
		Checksum:      hex.EncodeToString(sum[:]),
		Payload:       payload,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(d.path), "solver-memo-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), d.path)
}
