// Determinism stress tests for the parallel engine at the public API:
// parallel exploration must reproduce the sequential checker's verdict,
// path count, and report sequence byte for byte.
package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"mix"
	"mix/internal/corpus"
)

// boolTreeExpr builds a complete binary tree of conditionals of the
// given depth over distinct bool variables. Each leaf re-tests the
// variable its parent just branched on, so one side is infeasible and
// carries a type error: the checker must explore 2^depth feasible
// paths and discard 2^depth infeasible ones, each discard leaving a
// report. Tree depth 7 gives 255 branching conditionals.
func boolTreeExpr(depth int) (string, map[string]string) {
	env := map[string]string{}
	leaf := 0
	var emit func(node, d int, parentVar string, parentTaken bool) string
	emit = func(node, d int, parentVar string, parentTaken bool) string {
		if d == depth {
			l := fmt.Sprint(leaf)
			leaf++
			// The branch that contradicts the parent's test is
			// infeasible; its type error must be discarded with a
			// report.
			if parentTaken {
				return "(if " + parentVar + " then " + l + " else (1 + true))"
			}
			return "(if " + parentVar + " then (1 + true) else " + l + ")"
		}
		v := fmt.Sprintf("b%d", node)
		env[v] = "bool"
		return "(if " + v + " then " + emit(2*node+1, d+1, v, true) +
			" else " + emit(2*node+2, d+1, v, false) + ")"
	}
	src := emit(0, 0, "", true)
	return src, env
}

func TestCoreParallelMatchesSequential(t *testing.T) {
	const depth = 7 // 127 + 128 = 255 conditionals
	src, env := boolTreeExpr(depth)

	seq := mix.Check(src, mix.Config{Mode: mix.StartSymbolic, Env: env})
	if seq.Err != nil {
		t.Fatalf("sequential: %v", seq.Err)
	}
	if len(seq.Reports) != 1<<depth {
		t.Fatalf("sequential reports = %d, want one discarded infeasible path per leaf", len(seq.Reports))
	}

	for _, workers := range []int{1, 2, 8} {
		par := mix.Check(src, mix.Config{Mode: mix.StartSymbolic, Env: env, Workers: workers})
		if par.Err != nil {
			t.Fatalf("workers=%d: %v", workers, par.Err)
		}
		if par.Type != seq.Type || par.Paths != seq.Paths {
			t.Fatalf("workers=%d: type=%q paths=%d, sequential type=%q paths=%d",
				workers, par.Type, par.Paths, seq.Type, seq.Paths)
		}
		if strings.Join(par.Reports, "\n") != strings.Join(seq.Reports, "\n") {
			t.Fatalf("workers=%d report sequence differs\nseq:\n%s\npar:\n%s",
				workers, strings.Join(seq.Reports, "\n"), strings.Join(par.Reports, "\n"))
		}
	}
}

func TestLadderParallelMatchesSequential(t *testing.T) {
	src, envPairs := corpus.Ladder(8)
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	seq := mix.Check(src, mix.Config{Mode: mix.StartSymbolic, Env: env})
	if seq.Err != nil {
		t.Fatalf("sequential: %v", seq.Err)
	}
	for _, workers := range []int{2, 8} {
		par := mix.Check(src, mix.Config{Mode: mix.StartSymbolic, Env: env, Workers: workers})
		if par.Err != nil || par.Type != seq.Type || par.Paths != seq.Paths ||
			strings.Join(par.Reports, "\n") != strings.Join(seq.Reports, "\n") {
			t.Fatalf("workers=%d diverges: %+v vs sequential %+v", workers, par, seq)
		}
		if par.Forks == 0 {
			t.Fatalf("workers=%d: engine saw no forks", workers)
		}
	}
}

func TestCorePathBudgetDegradesCheck(t *testing.T) {
	src, envPairs := corpus.Ladder(8) // 256 paths, budget 16
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	res := mix.Check(src, mix.Config{Mode: mix.StartSymbolic, Env: env, Workers: 1, MaxPaths: 16})
	if res.Err != nil {
		t.Fatalf("path budget must degrade, not reject: %v", res.Err)
	}
	if !res.Degraded {
		t.Fatal("path budget must surface as a degraded (uncertified) result")
	}
	if res.Fault != "path-budget" {
		t.Fatalf("fault class = %q, want path-budget", res.Fault)
	}
	if !strings.Contains(res.FaultDetail, "max-paths=16") {
		t.Fatalf("diagnostic must name the tripped budget: %q", res.FaultDetail)
	}
	if res.Type != "" {
		t.Fatalf("a degraded check must not certify a type, got %q", res.Type)
	}
}
