package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mix/internal/solver"
)

func bvar(name string) solver.Formula { return solver.BoolVar{Name: name} }

// vle builds a two-variable inequality — the simplest shape the
// interval fast path cannot decide, so it reaches the memo/DPLL stage.
func vle(a, b string) solver.Formula {
	return solver.Le{X: solver.IntVar{Name: a}, Y: solver.IntVar{Name: b}}
}

func TestPoolMemoHit(t *testing.T) {
	e := New(Options{Workers: 1})
	f := vle("x", "y")
	for i := 0; i < 5; i++ {
		sat, err := e.Sat(f)
		if err != nil || !sat {
			t.Fatalf("Sat #%d = %v, %v", i, sat, err)
		}
	}
	s := e.Snapshot()
	if s.MemoMisses != 1 || s.MemoHits != 4 || s.SolverQueries != 5 {
		t.Fatalf("stats = %+v, want 1 miss / 4 hits / 5 queries", s)
	}
}

// TestPoolTrivialBypass pins the memo-regression fix: boolean literals
// and single-variable interval guards are decided by the fast path and
// generate no memo traffic at all.
func TestPoolTrivialBypass(t *testing.T) {
	e := New(Options{Workers: 1})
	x := solver.IntVar{Name: "x"}
	queries := []struct {
		f   solver.Formula
		sat bool
	}{
		{bvar("a"), true},
		{solver.NewAnd(bvar("a"), bvar("b")), true},
		{solver.NewAnd(bvar("a"), solver.NewNot(bvar("a"))), false},
		{solver.Lt{X: x, Y: solver.IntConst{Val: 10}}, true},
		{solver.NewAnd(solver.Lt{X: x, Y: solver.IntConst{Val: 0}}, solver.Lt{X: solver.IntConst{Val: 0}, Y: x}), false},
	}
	for i, q := range queries {
		sat, err := e.Sat(q.f)
		if err != nil || sat != q.sat {
			t.Fatalf("query %d: Sat = %v, %v; want %v", i, sat, err, q.sat)
		}
	}
	s := e.Snapshot()
	if s.MemoHits != 0 || s.MemoMisses != 0 {
		t.Fatalf("stats = %+v, want zero memo traffic for trivial queries", s)
	}
	if s.QuickDecided != int64(len(queries)) {
		t.Fatalf("QuickDecided = %d, want %d", s.QuickDecided, len(queries))
	}
}

func TestPoolMemoKeysByStructure(t *testing.T) {
	e := New(Options{Workers: 1})
	// Component keys are conjunct-set keys: structurally equal
	// conjunctions share one entry regardless of conjunct order.
	ab, bc := vle("a", "b"), vle("b", "c")
	if _, err := e.Sat(solver.NewAnd(ab, bc)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sat(solver.NewAnd(bc, ab)); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.MemoHits != 1 || s.MemoMisses != 1 {
		t.Fatalf("stats = %+v, want commuted conjunction to share one entry", s)
	}
}

// TestPoolSlicing checks constraint-independence slicing: conjuncts
// over disjoint variables are solved as separate components, so a
// query sharing one component with an earlier query memo-hits that
// component.
func TestPoolSlicing(t *testing.T) {
	e := New(Options{Workers: 1})
	// Two independent components: {a,b} and {p,q}.
	f1 := solver.NewAnd(vle("a", "b"), vle("p", "q"))
	if sat, err := e.Sat(f1); err != nil || !sat {
		t.Fatalf("Sat(f1) = %v, %v", sat, err)
	}
	s := e.Snapshot()
	if s.Slices != 2 || s.MemoMisses != 2 || s.MaxSlice != 1 {
		t.Fatalf("stats = %+v, want 2 independent single-conjunct slices", s)
	}
	// A query reusing just the {a,b} component hits its memo entry.
	if sat, err := e.Sat(vle("a", "b")); err != nil || !sat {
		t.Fatalf("Sat(ab) = %v, %v", sat, err)
	}
	s = e.Snapshot()
	if s.MemoHits != 1 {
		t.Fatalf("stats = %+v, want component reuse to memo-hit", s)
	}
	// Entangled conjuncts stay in one component.
	if _, err := e.Sat(solver.NewAnd(vle("a", "b"), vle("b", "c"))); err != nil {
		t.Fatal(err)
	}
	if s = e.Snapshot(); s.MaxSlice != 2 {
		t.Fatalf("stats = %+v, want an entangled 2-conjunct slice", s)
	}
}

// TestPoolCexCache: a model proving one query satisfiable is reused,
// after Eval verification, for later queries it happens to satisfy.
func TestPoolCexCache(t *testing.T) {
	e := New(Options{Workers: 1})
	if sat, err := e.Sat(solver.NewAnd(vle("a", "b"), vle("b", "c"))); err != nil || !sat {
		t.Fatalf("seed query = %v, %v", sat, err)
	}
	// Any model of a<=b<=c satisfies a<=c: distinct memo key, but the
	// cached model short-circuits DPLL.
	if sat, err := e.Sat(vle("a", "c")); err != nil || !sat {
		t.Fatalf("cex query = %v, %v", sat, err)
	}
	s := e.Snapshot()
	if s.CexHits != 1 {
		t.Fatalf("stats = %+v, want 1 counterexample-cache hit", s)
	}
	if s.MemoMisses != 2 {
		t.Fatalf("stats = %+v, want both queries to miss the exact-match memo", s)
	}
}

func TestPoolValidSharesSatEntry(t *testing.T) {
	e := New(Options{Workers: 1})
	f := vle("x", "y")
	// Valid(f) is Sat(¬f); a direct Sat(¬f) afterwards must hit.
	if _, err := e.Valid(f); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sat(solver.NewNot(f)); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.MemoHits != 1 || s.MemoMisses != 1 {
		t.Fatalf("stats = %+v, want Valid and Sat(¬f) to share one entry", s)
	}
}

func TestPoolNoMemo(t *testing.T) {
	e := New(Options{Workers: 1, NoMemo: true})
	f := vle("x", "y")
	for i := 0; i < 3; i++ {
		if _, err := e.Sat(f); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Snapshot()
	if s.MemoHits != 0 || s.MemoMisses != 0 || s.CexHits != 0 || s.SolverQueries != 3 {
		t.Fatalf("stats = %+v, want no caching and 3 queries", s)
	}
}

// limitFormula exceeds a MaxAtoms=4 bound with six entangled
// arithmetic atoms (chained variables, so slicing cannot split them
// and the interval fast path does not apply).
func limitFormula() solver.Formula {
	var fs []solver.Formula
	for i := 0; i < 6; i++ {
		fs = append(fs, solver.Eq{
			X: solver.Add{X: solver.IntVar{Name: fmt.Sprintf("x%d", i)}, Y: solver.IntVar{Name: fmt.Sprintf("x%d", i+1)}},
			Y: solver.IntConst{Val: int64(i)},
		})
	}
	return solver.Conj(fs...)
}

func TestPoolMemoizesUnknown(t *testing.T) {
	e := New(Options{Workers: 1, NewSolver: func() *solver.Solver {
		s := solver.New()
		s.MaxAtoms = 4
		return s
	}})
	f := limitFormula()
	for i := 0; i < 3; i++ {
		_, err := e.Sat(f)
		if !errors.Is(err, solver.ErrLimit) {
			t.Fatalf("Sat #%d = %v, want ErrLimit", i, err)
		}
	}
	s := e.Snapshot()
	// The exhaustion is deterministic for fixed bounds, so repeats are
	// memo hits, each still counted as unknown.
	if s.MemoMisses != 1 || s.MemoHits != 2 || s.SolverUnknown != 3 {
		t.Fatalf("stats = %+v, want 1 miss / 2 hits / 3 unknown", s)
	}
}

func TestPoolUnknownKeepsPath(t *testing.T) {
	e := New(Options{Workers: 1, NewSolver: func() *solver.Solver {
		s := solver.New()
		s.MaxAtoms = 4
		return s
	}})
	if !e.Feasible(limitFormula()) {
		t.Fatal("resource-exhausted query must be treated as feasible (unknown → keep path)")
	}
}

func TestPoolLRUEviction(t *testing.T) {
	// A tiny memo forces eviction; correctness (answers) must be
	// unaffected, only hit rate.
	e := New(Options{Workers: 1, MemoSize: memoShards}) // one entry per shard
	for i := 0; i < 100; i++ {
		sat, err := e.Sat(vle(fmt.Sprintf("v%d", i), fmt.Sprintf("w%d", i)))
		if err != nil || !sat {
			t.Fatalf("Sat v%d = %v, %v", i, sat, err)
		}
	}
	for i := 0; i < 100; i++ {
		sat, err := e.Sat(vle(fmt.Sprintf("v%d", i), fmt.Sprintf("w%d", i)))
		if err != nil || !sat {
			t.Fatalf("re-Sat v%d = %v, %v", i, sat, err)
		}
	}
	if s := e.Snapshot(); s.SolverQueries != 200 {
		t.Fatalf("queries = %d, want 200", s.SolverQueries)
	}
}

func TestPoolConcurrentSat(t *testing.T) {
	e := New(Options{Workers: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := solver.NewAnd(vle(fmt.Sprintf("c%d", i%10), "shared"), vle("shared", fmt.Sprintf("d%d", i%10)))
				sat, err := e.Sat(f)
				if err != nil || !sat {
					t.Errorf("Sat = %v, %v", sat, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := e.Snapshot()
	if s.SolverQueries != 400 || s.MemoHits+s.MemoMisses != 400 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MemoHits < 300 {
		t.Fatalf("only %d hits of 400 queries over 10 distinct formulas", s.MemoHits)
	}
}

// TestPoolSatPC drives the incremental path-condition interface the
// executors use: shared tails, per-node id caching, and extra guards.
func TestPoolSatPC(t *testing.T) {
	e := New(Options{Workers: 1})
	x := solver.IntVar{Name: "x"}
	base := solver.PCTrue.And(vle("a", "b")) // non-trivial prefix
	tpc := base.And(solver.Lt{X: x, Y: solver.IntConst{Val: 10}})
	epc := base.And(solver.NewNot(solver.Lt{X: x, Y: solver.IntConst{Val: 10}}))
	for _, pc := range []*solver.PC{tpc, epc} {
		sat, err := e.SatPC(pc)
		if err != nil || !sat {
			t.Fatalf("SatPC = %v, %v", sat, err)
		}
	}
	// The shared {a,b} component solves once; the x-guards are interval
	// components and never reach the memo.
	s := e.Snapshot()
	if s.MemoMisses != 1 || s.MemoHits != 1 {
		t.Fatalf("stats = %+v, want the shared prefix component to hit", s)
	}
	// Extras conjoin on top of the path condition.
	sat, err := e.SatPC(tpc, solver.Lt{X: solver.IntConst{Val: 20}, Y: x})
	if err != nil || sat {
		t.Fatalf("SatPC with contradictory extra = %v, %v, want unsat", sat, err)
	}
	// A dead PC short-circuits without any solver work.
	if e.FeasiblePC(tpc.And(solver.False)) {
		t.Fatal("dead PC must be infeasible")
	}
}

func TestHashconsDistinguishes(t *testing.T) {
	tbl := newConsTable()
	pairs := []solver.Formula{
		bvar("a"),
		solver.NewNot(bvar("a")),
		solver.NewAnd(bvar("a"), bvar("b")),
		solver.NewOr(bvar("a"), bvar("b")),
		solver.Eq{X: solver.IntVar{Name: "x"}, Y: solver.IntConst{Val: 1}},
		solver.Le{X: solver.IntVar{Name: "x"}, Y: solver.IntConst{Val: 1}},
		solver.Lt{X: solver.IntVar{Name: "x"}, Y: solver.IntConst{Val: 1}},
		solver.Iff{X: bvar("a"), Y: bvar("b")},
		solver.Eq{X: solver.App{Fn: "f", Args: []solver.Term{solver.IntVar{Name: "x"}}}, Y: solver.IntConst{Val: 0}},
		solver.Eq{X: solver.App{Fn: "f", Args: []solver.Term{solver.IntVar{Name: "x"}, solver.IntVar{Name: "y"}}}, Y: solver.IntConst{Val: 0}},
	}
	seen := map[uint64]int{}
	for i, f := range pairs {
		id := tbl.formulaID(f)
		if j, dup := seen[id]; dup {
			t.Fatalf("formulas %d and %d collide on id %d", j, i, id)
		}
		seen[id] = i
	}
	// Re-interning returns identical ids.
	for i, f := range pairs {
		if id := tbl.formulaID(f); seen[id] != i {
			t.Fatalf("formula %d not stable across interning", i)
		}
	}
	// Conjunct-set ids are order- and duplicate-insensitive.
	a, b, c := tbl.formulaID(bvar("a")), tbl.formulaID(bvar("b")), tbl.formulaID(bvar("c"))
	if tbl.conjID([]uint64{a, b, c}) != tbl.conjID([]uint64{c, a, b, a}) {
		t.Fatal("conjID must be order/multiplicity-insensitive")
	}
	if tbl.conjID([]uint64{a, b}) == tbl.conjID([]uint64{a, c}) {
		t.Fatal("distinct conjunct sets must get distinct ids")
	}
}
