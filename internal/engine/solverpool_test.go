package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mix/internal/solver"
)

func bvar(name string) solver.Formula { return solver.BoolVar{Name: name} }

func TestPoolMemoHit(t *testing.T) {
	e := New(Options{Workers: 1})
	f := solver.NewAnd(bvar("a"), bvar("b"))
	for i := 0; i < 5; i++ {
		sat, err := e.Sat(f)
		if err != nil || !sat {
			t.Fatalf("Sat #%d = %v, %v", i, sat, err)
		}
	}
	s := e.Snapshot()
	if s.MemoMisses != 1 || s.MemoHits != 4 || s.SolverQueries != 5 {
		t.Fatalf("stats = %+v, want 1 miss / 4 hits / 5 queries", s)
	}
}

func TestPoolMemoKeysByStructure(t *testing.T) {
	e := New(Options{Workers: 1})
	// Structurally equal formulas built separately share one entry;
	// structurally distinct ones do not.
	if _, err := e.Sat(solver.NewAnd(bvar("a"), bvar("b"))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sat(solver.NewAnd(bvar("a"), bvar("b"))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sat(solver.NewAnd(bvar("b"), bvar("a"))); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.MemoHits != 1 || s.MemoMisses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", s)
	}
}

func TestPoolValidSharesSatEntry(t *testing.T) {
	e := New(Options{Workers: 1})
	f := bvar("a")
	// Valid(f) is Sat(¬f); a direct Sat(¬f) afterwards must hit.
	if _, err := e.Valid(f); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sat(solver.NewNot(f)); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.MemoHits != 1 || s.MemoMisses != 1 {
		t.Fatalf("stats = %+v, want Valid and Sat(¬f) to share one entry", s)
	}
}

func TestPoolNoMemo(t *testing.T) {
	e := New(Options{Workers: 1, NoMemo: true})
	f := bvar("a")
	for i := 0; i < 3; i++ {
		if _, err := e.Sat(f); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Snapshot()
	if s.MemoHits != 0 || s.MemoMisses != 0 || s.SolverQueries != 3 {
		t.Fatalf("stats = %+v, want no memo traffic and 3 queries", s)
	}
}

// limitFormula exceeds a MaxAtoms=4 bound: six distinct arithmetic
// atoms.
func limitFormula() solver.Formula {
	var fs []solver.Formula
	for i := 0; i < 6; i++ {
		fs = append(fs, solver.Eq{
			X: solver.IntVar{Name: fmt.Sprintf("x%d", i)},
			Y: solver.IntConst{Val: int64(i)},
		})
	}
	return solver.Conj(fs...)
}

func TestPoolMemoizesUnknown(t *testing.T) {
	e := New(Options{Workers: 1, NewSolver: func() *solver.Solver {
		s := solver.New()
		s.MaxAtoms = 4
		return s
	}})
	f := limitFormula()
	for i := 0; i < 3; i++ {
		_, err := e.Sat(f)
		if !errors.Is(err, solver.ErrLimit) {
			t.Fatalf("Sat #%d = %v, want ErrLimit", i, err)
		}
	}
	s := e.Snapshot()
	// The exhaustion is deterministic for fixed bounds, so repeats are
	// memo hits, each still counted as unknown.
	if s.MemoMisses != 1 || s.MemoHits != 2 || s.SolverUnknown != 3 {
		t.Fatalf("stats = %+v, want 1 miss / 2 hits / 3 unknown", s)
	}
}

func TestPoolUnknownKeepsPath(t *testing.T) {
	e := New(Options{Workers: 1, NewSolver: func() *solver.Solver {
		s := solver.New()
		s.MaxAtoms = 4
		return s
	}})
	if !e.Feasible(limitFormula()) {
		t.Fatal("resource-exhausted query must be treated as feasible (unknown → keep path)")
	}
}

func TestPoolLRUEviction(t *testing.T) {
	// A tiny memo forces eviction; correctness (answers) must be
	// unaffected, only hit rate.
	e := New(Options{Workers: 1, MemoSize: memoShards}) // one entry per shard
	for i := 0; i < 100; i++ {
		sat, err := e.Sat(bvar(fmt.Sprintf("v%d", i)))
		if err != nil || !sat {
			t.Fatalf("Sat v%d = %v, %v", i, sat, err)
		}
	}
	for i := 0; i < 100; i++ {
		sat, err := e.Sat(bvar(fmt.Sprintf("v%d", i)))
		if err != nil || !sat {
			t.Fatalf("re-Sat v%d = %v, %v", i, sat, err)
		}
	}
	if s := e.Snapshot(); s.SolverQueries != 200 {
		t.Fatalf("queries = %d, want 200", s.SolverQueries)
	}
}

func TestPoolConcurrentSat(t *testing.T) {
	e := New(Options{Workers: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := solver.NewAnd(bvar(fmt.Sprintf("c%d", i%10)), bvar("shared"))
				sat, err := e.Sat(f)
				if err != nil || !sat {
					t.Errorf("Sat = %v, %v", sat, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := e.Snapshot()
	if s.SolverQueries != 400 || s.MemoHits+s.MemoMisses != 400 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MemoHits < 300 {
		t.Fatalf("only %d hits of 400 queries over 10 distinct formulas", s.MemoHits)
	}
}

func TestHashconsDistinguishes(t *testing.T) {
	tbl := consTable{ids: map[string]uint64{}}
	pairs := []solver.Formula{
		bvar("a"),
		solver.NewNot(bvar("a")),
		solver.NewAnd(bvar("a"), bvar("b")),
		solver.NewOr(bvar("a"), bvar("b")),
		solver.Eq{X: solver.IntVar{Name: "x"}, Y: solver.IntConst{Val: 1}},
		solver.Le{X: solver.IntVar{Name: "x"}, Y: solver.IntConst{Val: 1}},
		solver.Lt{X: solver.IntVar{Name: "x"}, Y: solver.IntConst{Val: 1}},
		solver.Iff{X: bvar("a"), Y: bvar("b")},
	}
	seen := map[uint64]int{}
	for i, f := range pairs {
		id := tbl.formulaID(f)
		if j, dup := seen[id]; dup {
			t.Fatalf("formulas %d and %d collide on id %d", j, i, id)
		}
		seen[id] = i
	}
	// Re-interning returns identical ids.
	for i, f := range pairs {
		if id := tbl.formulaID(f); seen[id] != i {
			t.Fatalf("formula %d not stable across interning", i)
		}
	}
}
