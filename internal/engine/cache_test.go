package engine

import (
	"fmt"
	"sync"
	"testing"

	"mix/internal/solver"
)

// TestCacheSharedAcrossEngines pins the warm-serving property: a second
// engine borrowing the first engine's cache answers the same query from
// the memo instead of re-solving it.
func TestCacheSharedAcrossEngines(t *testing.T) {
	c := NewCache(CacheOptions{})
	f := vle("x", "y")

	e1 := New(Options{Workers: 1, Cache: c})
	if sat, err := e1.Sat(f); err != nil || !sat {
		t.Fatalf("cold Sat = %v, %v", sat, err)
	}
	e1.Close()
	if s := e1.Snapshot(); s.MemoHits != 0 || s.MemoMisses != 1 {
		t.Fatalf("cold run stats = %+v, want 0 hits / 1 miss", s)
	}

	e2 := New(Options{Workers: 1, Cache: c})
	if sat, err := e2.Sat(f); err != nil || !sat {
		t.Fatalf("warm Sat = %v, %v", sat, err)
	}
	e2.Close()
	if s := e2.Snapshot(); s.MemoHits != 1 || s.MemoMisses != 0 {
		t.Fatalf("warm run stats = %+v, want 1 hit / 0 misses", s)
	}

	cs := c.Stats()
	if cs.MemoHits != 1 || cs.MemoMisses != 1 || cs.MemoEntries != 1 {
		t.Fatalf("cache stats = %+v, want lifetime 1 hit / 1 miss / 1 entry", cs)
	}
}

// TestCacheFlush pins that Flush drops every cached verdict: the same
// query misses again afterwards, and the flush is counted.
func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheOptions{})
	f := vle("x", "y")

	e := New(Options{Workers: 1, Cache: c})
	defer e.Close()
	if _, err := e.Sat(f); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if cs := c.Stats(); cs.MemoEntries != 0 || cs.ConsEntries != 0 || cs.Flushes != 1 {
		t.Fatalf("post-flush stats = %+v, want empty generation and 1 flush", cs)
	}
	if _, err := e.Sat(f); err != nil {
		t.Fatal(err)
	}
	if s := e.Snapshot(); s.MemoMisses != 2 {
		t.Fatalf("misses = %d, want 2 (flush discarded the verdict)", s.MemoMisses)
	}
}

// TestCacheConsLimitEviction pins the bounded-size policy: pushing the
// intern table past ConsLimit swaps in a fresh generation instead of
// growing forever.
func TestCacheConsLimitEviction(t *testing.T) {
	c := NewCache(CacheOptions{ConsLimit: 64})
	e := New(Options{Workers: 1, Cache: c})
	defer e.Close()
	// Distinct two-variable inequalities: each interns a few nodes, so
	// a few dozen queries cross the 64-node limit several times.
	for i := 0; i < 100; i++ {
		f := vle(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i))
		if sat, err := e.Sat(f); err != nil || !sat {
			t.Fatalf("Sat #%d = %v, %v", i, sat, err)
		}
	}
	cs := c.Stats()
	if cs.Evictions == 0 {
		t.Fatalf("cache stats = %+v, want at least one ConsLimit eviction", cs)
	}
	if cs.ConsEntries > 64+8 {
		t.Fatalf("ConsEntries = %d, want bounded near the 64-node limit", cs.ConsEntries)
	}
}

// TestCacheFlushUnderLoad hammers one shared cache from many engines
// while flushing concurrently; run under -race this pins that the
// generation swap cannot mix id namespaces or corrupt a verdict.
func TestCacheFlushUnderLoad(t *testing.T) {
	c := NewCache(CacheOptions{ConsLimit: 128})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := New(Options{Workers: 1, Cache: c})
			defer e.Close()
			for i := 0; i < 200; i++ {
				// A satisfiable and an unsatisfiable query per step, with
				// enough distinct names to force evictions mid-stream.
				a, b := fmt.Sprintf("a%d", i%17), fmt.Sprintf("b%d", i%13)
				sat, err := e.Sat(vle(a, b))
				if err != nil || !sat {
					t.Errorf("worker %d: sat query = %v, %v", w, sat, err)
					return
				}
				contradiction := solver.NewAnd(
					solver.Lt{X: solver.IntVar{Name: a}, Y: solver.IntVar{Name: b}},
					solver.Lt{X: solver.IntVar{Name: b}, Y: solver.IntVar{Name: a}})
				sat, err = e.Sat(contradiction)
				if err != nil || sat {
					t.Errorf("worker %d: unsat query = %v, %v", w, sat, err)
					return
				}
				if i%50 == 0 {
					c.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCacheNoMemoWins pins that NoMemo disables a shared cache rather
// than silently writing into it.
func TestCacheNoMemoWins(t *testing.T) {
	c := NewCache(CacheOptions{})
	e := New(Options{Workers: 1, Cache: c, NoMemo: true})
	defer e.Close()
	if _, err := e.Sat(vle("x", "y")); err != nil {
		t.Fatal(err)
	}
	if cs := c.Stats(); cs.MemoEntries != 0 || cs.MemoMisses != 0 {
		t.Fatalf("cache stats = %+v, want untouched under NoMemo", cs)
	}
	if s := e.Snapshot(); s.MemoHits != 0 || s.MemoMisses != 0 {
		t.Fatalf("engine stats = %+v, want no memo traffic under NoMemo", s)
	}
}
