// Chaos tests for the degradation ladder: every fault class — expired
// deadline, cancellation, path budget, and injected step-budget,
// solver-limit, and worker-panic faults — must produce the same
// degraded-but-sound verdict whether exploration runs on one worker or
// four, with the fault class and the tripped budget named in the
// diagnostics. Run under -race: the injection points fire on worker
// goroutines.
package engine_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"mix"
	"mix/internal/corpus"
	"mix/internal/fault"
)

// chaosVerdict is the externally observable outcome tuple the
// workers=1-vs-N determinism assertions compare.
type chaosVerdict struct {
	degraded bool
	class    string
	typ      string
	errMsg   string
}

func runLadderChaos(t *testing.T, workers int, configure func(*mix.Config)) (chaosVerdict, mix.Result) {
	t.Helper()
	src, envPairs := corpus.Ladder(8)
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	cfg := mix.Config{Mode: mix.StartSymbolic, Env: env, Workers: workers}
	configure(&cfg)
	res := mix.Check(src, cfg)
	v := chaosVerdict{degraded: res.Degraded, class: res.Fault, typ: res.Type}
	if res.Err != nil {
		v.errMsg = res.Err.Error()
	}
	return v, res
}

func TestChaosFaultClassesDeterministic(t *testing.T) {
	scenarios := []struct {
		name   string
		class  string
		detail string // required substring of the degradation diagnostic
		// configure arms the scenario; called once per worker count so
		// stateful injectors are never shared between runs.
		configure func(*mix.Config)
	}{
		{"timeout", "timeout", "deadline=1ns", func(c *mix.Config) {
			c.Deadline = time.Nanosecond
		}},
		{"canceled", "canceled", "canceled", func(c *mix.Config) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			c.Context = ctx
		}},
		{"path-budget", "path-budget", "max-paths=4", func(c *mix.Config) {
			c.MaxPaths = 4
		}},
		{"step-budget", "step-budget", "injected", func(c *mix.Config) {
			c.FaultInjector = fault.NewInjector(1).
				Plan(fault.PreFork, fault.Plan{Class: fault.StepBudget})
		}},
		{"solver-limit", "solver-limit", "injected", func(c *mix.Config) {
			c.FaultInjector = fault.NewInjector(1).
				Plan(fault.PreSolve, fault.Plan{Class: fault.SolverLimit})
		}},
		{"worker-panic", "worker-panic", "injected", func(c *mix.Config) {
			c.FaultInjector = fault.NewInjector(1).
				Plan(fault.PreFork, fault.Plan{Count: 1, Panic: true})
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var verdicts []chaosVerdict
			for _, workers := range []int{1, 4} {
				v, res := runLadderChaos(t, workers, sc.configure)
				if res.Err != nil {
					t.Fatalf("workers=%d: fault must degrade, not reject: %v", workers, res.Err)
				}
				if !v.degraded {
					t.Fatalf("workers=%d: expected a degraded verdict, certified %q instead", workers, v.typ)
				}
				if v.class != sc.class {
					t.Fatalf("workers=%d: fault class = %q, want %q (diagnostic: %s)",
						workers, v.class, sc.class, res.FaultDetail)
				}
				if v.typ != "" {
					t.Fatalf("workers=%d: a degraded check must not certify a type, got %q", workers, v.typ)
				}
				if !strings.Contains(res.FaultDetail, sc.detail) {
					t.Fatalf("workers=%d: diagnostic %q must name %q", workers, res.FaultDetail, sc.detail)
				}
				verdicts = append(verdicts, v)
			}
			if verdicts[0] != verdicts[1] {
				t.Fatalf("verdict differs across worker counts: %+v vs %+v", verdicts[0], verdicts[1])
			}
		})
	}
}

// TestChaosDegradationUniformAcrossSearchCores: an injected mid-run
// solver fault must produce the same degraded-but-sound verdict no
// matter which search core is racing underneath — a mid-CDCL abort,
// a mid-DPLL abort, and a portfolio race where both racers are
// canceled all collapse to the same explicit imprecision, never a
// certificate and never a hang.
func TestChaosDegradationUniformAcrossSearchCores(t *testing.T) {
	var verdicts []chaosVerdict
	for _, algo := range []string{"cdcl", "dpll", "portfolio"} {
		t.Run(algo, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				v, res := runLadderChaos(t, workers, func(c *mix.Config) {
					c.Solver = algo
					c.FaultInjector = fault.NewInjector(1).
						Plan(fault.PreSolve, fault.Plan{Class: fault.SolverLimit})
				})
				if res.Err != nil {
					t.Fatalf("workers=%d: fault must degrade, not reject: %v", workers, res.Err)
				}
				if !v.degraded || v.class != "solver-limit" || v.typ != "" {
					t.Fatalf("workers=%d: want a solver-limit degradation with no certificate, got %+v", workers, v)
				}
				verdicts = append(verdicts, v)
			}
		})
	}
	for i := 1; i < len(verdicts); i++ {
		if verdicts[i] != verdicts[0] {
			t.Fatalf("degraded verdict varies across cores/workers: %+v vs %+v", verdicts[0], verdicts[i])
		}
	}
}

// TestExpiredDeadlineTerminatesPromptly is the acceptance criterion in
// the small: an already-expired deadline must stop a 1024-path run at
// its first cooperative poll and return a degraded verdict — never a
// hang, never a panic.
func TestExpiredDeadlineTerminatesPromptly(t *testing.T) {
	src, envPairs := corpus.Ladder(10)
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	start := time.Now()
	res := mix.Check(src, mix.Config{
		Mode: mix.StartSymbolic, Env: env, Workers: 4, Deadline: time.Nanosecond,
	})
	elapsed := time.Since(start)
	if res.Err != nil {
		t.Fatalf("expired deadline must degrade, not reject: %v", res.Err)
	}
	if !res.Degraded || res.Fault != "timeout" {
		t.Fatalf("want a timeout-degraded verdict, got %+v", res)
	}
	if res.Timeouts == 0 {
		t.Fatal("the timeout must be recorded in the fault counters")
	}
	// Generous bound: the run should stop at its first poll, orders of
	// magnitude under this; the bound only guards against a hang.
	if elapsed > 30*time.Second {
		t.Fatalf("expired-deadline run took %v; degradation must be prompt", elapsed)
	}
}

// TestChaosSeededChanceReproducible drives the probabilistic injection
// mode on a single worker: the same seed must produce byte-identical
// verdicts run over run.
func TestChaosSeededChanceReproducible(t *testing.T) {
	run := func() (chaosVerdict, mix.Result) {
		return runLadderChaos(t, 1, func(c *mix.Config) {
			c.FaultInjector = fault.NewInjector(42).
				Chance(fault.PreSolve, 0.3, fault.SolverLimit)
		})
	}
	v1, _ := run()
	v2, r2 := run()
	if v1 != v2 {
		t.Fatalf("seeded chaos diverged: %+v vs %+v (detail %s)", v1, v2, r2.FaultDetail)
	}
}
