package engine

import (
	"strconv"
	"sync"

	"mix/internal/solver"
)

// consTable hash-conses solver formulas and terms: every distinct
// structure gets a small integer id, assigned bottom-up, so that a
// formula's memo key is one uint64 and key construction is linear in
// the number of distinct nodes. Interior nodes encode their children
// by id, which keeps every encoding string short regardless of formula
// depth.
//
// The table only grows — it is an intern table, not a cache — but
// entries are a few dozen bytes per distinct subterm, which is far
// smaller than the memo table the ids feed.
type consTable struct {
	mu  sync.Mutex
	ids map[string]uint64
}

// formulaID interns f and returns its id. Safe for concurrent use; the
// whole bottom-up walk runs under one lock, since every step is a map
// operation.
func (t *consTable) formulaID(f solver.Formula) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.formula(f)
}

func (t *consTable) get(enc string) uint64 {
	if id, ok := t.ids[enc]; ok {
		return id
	}
	id := uint64(len(t.ids)) + 1
	t.ids[enc] = id
	return id
}

func u64(id uint64) string { return strconv.FormatUint(id, 10) }

// formula encodes one formula node. Tags are disjoint per variant and
// children are referenced by id, so encodings are injective: equal ids
// imply structurally equal formulas.
func (t *consTable) formula(f solver.Formula) uint64 {
	switch f := f.(type) {
	case solver.BoolConst:
		if f.Val {
			return t.get("T")
		}
		return t.get("F")
	case solver.BoolVar:
		return t.get("b " + f.Name)
	case solver.Not:
		return t.get("! " + u64(t.formula(f.X)))
	case solver.And:
		return t.get("& " + u64(t.formula(f.X)) + " " + u64(t.formula(f.Y)))
	case solver.Or:
		return t.get("| " + u64(t.formula(f.X)) + " " + u64(t.formula(f.Y)))
	case solver.Iff:
		return t.get("<-> " + u64(t.formula(f.X)) + " " + u64(t.formula(f.Y)))
	case solver.Eq:
		return t.get("= " + u64(t.term(f.X)) + " " + u64(t.term(f.Y)))
	case solver.Le:
		return t.get("<= " + u64(t.term(f.X)) + " " + u64(t.term(f.Y)))
	case solver.Lt:
		return t.get("< " + u64(t.term(f.X)) + " " + u64(t.term(f.Y)))
	}
	// Unknown variant: fall back to the printed form, still injective
	// against the tagged encodings above.
	return t.get("f? " + f.String())
}

func (t *consTable) term(x solver.Term) uint64 {
	switch x := x.(type) {
	case solver.IntConst:
		return t.get("c " + strconv.FormatInt(x.Val, 10))
	case solver.IntVar:
		return t.get("v " + x.Name)
	case solver.Add:
		return t.get("+ " + u64(t.term(x.X)) + " " + u64(t.term(x.Y)))
	case solver.Neg:
		return t.get("- " + u64(t.term(x.X)))
	case solver.Mul:
		return t.get("* " + strconv.FormatInt(x.K, 10) + " " + u64(t.term(x.X)))
	case solver.App:
		enc := "@ " + x.Fn
		for _, a := range x.Args {
			enc += " " + u64(t.term(a))
		}
		return t.get(enc)
	}
	return t.get("t? " + x.String())
}
