package engine

import (
	"sort"
	"sync"

	"mix/internal/solver"
)

// consKey is the interning key of one formula/term node: a variant
// tag, up to two child ids, and an integer or string payload. Using a
// comparable struct instead of an encoded string keeps key
// construction allocation-free on the hot path — the seed's
// string-concatenation keys were ~a quarter of solver-bound CPU time
// on the vsftpd benchmark.
type consKey struct {
	tag  byte
	a, b uint64
	k    int64
	s    string
}

// consTable hash-conses solver formulas and terms: every distinct
// structure gets a small integer id, assigned bottom-up, so that a
// formula's memo key is one uint64. Interior nodes reference children
// by id, making each key O(1) regardless of depth.
//
// The table only grows — it is an intern table, not a cache — but
// entries are small and bounded by the number of distinct subterms the
// run ever produces.
type consTable struct {
	mu  sync.Mutex
	ids map[consKey]uint64
}

func newConsTable() consTable {
	return consTable{ids: map[consKey]uint64{}}
}

// formulaID interns f and returns its id. Safe for concurrent use; the
// whole bottom-up walk runs under one lock, since every step is a map
// operation.
func (t *consTable) formulaID(f solver.Formula) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.formula(f)
}

// conjID folds a set of conjunct ids into one key id, order- and
// multiplicity-insensitive (the ids are sorted and deduplicated), so a
// component's memo entry is shared by every path that accumulates the
// same conjuncts in any order.
func (t *consTable) conjID(ids []uint64) uint64 {
	if len(ids) == 1 {
		return ids[0]
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t.mu.Lock()
	defer t.mu.Unlock()
	acc := t.get(consKey{tag: '^'})
	var prev uint64
	for _, id := range ids {
		if id == prev {
			continue
		}
		prev = id
		acc = t.get(consKey{tag: '^', a: acc, b: id})
	}
	return acc
}

// size reports the number of interned nodes — the Cache's eviction
// trigger, since the table is the pipeline's only grow-only structure.
func (t *consTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ids)
}

func (t *consTable) get(k consKey) uint64 {
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := uint64(len(t.ids)) + 1
	t.ids[k] = id
	return id
}

// formula encodes one formula node. Tags are disjoint per variant and
// children are referenced by id, so keys are injective: equal ids
// imply structurally equal formulas.
func (t *consTable) formula(f solver.Formula) uint64 {
	switch f := f.(type) {
	case solver.BoolConst:
		if f.Val {
			return t.get(consKey{tag: 'T'})
		}
		return t.get(consKey{tag: 'F'})
	case solver.BoolVar:
		return t.get(consKey{tag: 'b', s: f.Name})
	case solver.Not:
		return t.get(consKey{tag: '!', a: t.formula(f.X)})
	case solver.And:
		return t.get(consKey{tag: '&', a: t.formula(f.X), b: t.formula(f.Y)})
	case solver.Or:
		return t.get(consKey{tag: '|', a: t.formula(f.X), b: t.formula(f.Y)})
	case solver.Iff:
		return t.get(consKey{tag: '~', a: t.formula(f.X), b: t.formula(f.Y)})
	case solver.Eq:
		return t.get(consKey{tag: '=', a: t.term(f.X), b: t.term(f.Y)})
	case solver.Le:
		return t.get(consKey{tag: 'L', a: t.term(f.X), b: t.term(f.Y)})
	case solver.Lt:
		return t.get(consKey{tag: '<', a: t.term(f.X), b: t.term(f.Y)})
	}
	// Unknown variant: fall back to the printed form, still injective
	// against the tagged encodings above.
	return t.get(consKey{tag: '?', s: f.String()})
}

func (t *consTable) term(x solver.Term) uint64 {
	switch x := x.(type) {
	case solver.IntConst:
		return t.get(consKey{tag: 'c', k: x.Val})
	case solver.IntVar:
		return t.get(consKey{tag: 'v', s: x.Name})
	case solver.Add:
		return t.get(consKey{tag: '+', a: t.term(x.X), b: t.term(x.Y)})
	case solver.Neg:
		return t.get(consKey{tag: '-', a: t.term(x.X)})
	case solver.Mul:
		return t.get(consKey{tag: '*', k: x.K, a: t.term(x.X)})
	case solver.App:
		// Left-fold the argument ids onto the symbol id; the fold keeps
		// the encoding injective for any arity.
		id := t.get(consKey{tag: '@', s: x.Fn})
		for _, a := range x.Args {
			id = t.get(consKey{tag: 'A', a: id, b: t.term(a)})
		}
		return id
	case solver.Ite:
		// Canonicalize polarity: ite(¬g, a, b) and ite(g, b, a) denote
		// the same function, so they must intern to one id or merged
		// runs silently halve their memo hit rate. NewIte already
		// normalizes at construction; this guards terms built by hand.
		g, a, b := x.G, x.X, x.Y
		if n, ok := g.(solver.Not); ok {
			g, a, b = n.X, b, a
		}
		arms := t.get(consKey{tag: 'i', a: t.term(a), b: t.term(b)})
		return t.get(consKey{tag: 'I', a: t.formula(g), b: arms})
	}
	return t.get(consKey{tag: '?', s: "t " + x.String()})
}
