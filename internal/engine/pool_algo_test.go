package engine

import (
	"testing"

	"mix/internal/solver"
)

// capturePool builds a 1-worker engine whose pool reports every solver
// it constructs, so tests can inspect pooled state without relying on
// sync.Pool round-trips (which -race deliberately randomizes).
func capturePool(t *testing.T, opts Options) (*Engine, *[]*solver.Solver) {
	t.Helper()
	captured := &[]*solver.Solver{}
	opts.Workers = 1
	opts.NewSolver = func() *solver.Solver {
		s := solver.New()
		*captured = append(*captured, s)
		return s
	}
	e := New(opts)
	t.Cleanup(e.Close)
	return e, captured
}

// TestPoolAppliesAlgo: the pool must stamp the run's search core onto
// every borrowed solver, so one warm shared cache can serve runs with
// different -solver settings.
func TestPoolAppliesAlgo(t *testing.T) {
	e, captured := capturePool(t, Options{SolverAlgo: solver.AlgoDPLL})
	p := e.Pool()

	if _, _, err := p.solve([]solver.Formula{vle("a", "b")}, false); err != nil {
		t.Fatal(err)
	}
	if len(*captured) == 0 {
		t.Fatal("the solve never constructed a pooled solver")
	}
	for i, s := range *captured {
		if s.Algo != solver.AlgoDPLL {
			t.Fatalf("pooled solver %d: Algo = %v, want dpll", i, s.Algo)
		}
	}
}

// TestPoolFlushResetsSolvers: pooled solvers keep incremental CDCL
// state (learned clauses, cached root encodings) across queries, but a
// cache flush marks "start over" — the next borrow must Reset and
// adopt the new flush epoch, or stale encodings would outlive the
// cache generation that justified them.
func TestPoolFlushResetsSolvers(t *testing.T) {
	e, captured := capturePool(t, Options{})
	p := e.Pool()

	q := []solver.Formula{vle("a", "b")}
	if _, _, err := p.solve(q, false); err != nil {
		t.Fatal(err)
	}
	if len(*captured) == 0 {
		t.Fatal("the solve never constructed a pooled solver")
	}
	for i, s := range *captured {
		if s.Gen != 0 {
			t.Fatalf("pre-flush solver %d: epoch = %d, want 0", i, s.Gen)
		}
	}

	p.cache.Flush()
	sat, _, err := p.solve(q, false)
	if err != nil || !sat {
		t.Fatalf("post-flush solve: sat=%v err=%v", sat, err)
	}
	// Every solver the post-flush solve actually borrowed must carry
	// the new epoch; solvers sync.Pool dropped in between never served
	// it and legitimately keep the old tag.
	want := uint64(p.cache.flushes.Load())
	if want == 0 {
		t.Fatal("flush was not counted")
	}
	stamped := 0
	for _, s := range *captured {
		if s.Gen == want {
			stamped++
		}
	}
	if stamped == 0 {
		t.Fatalf("no pooled solver adopted flush epoch %d", want)
	}
}

// TestPoolAlgoVerdictsAgree: the same queries through engines running
// different search cores must produce identical verdicts — the
// behavioral half of the -solver=dpll differential oracle.
func TestPoolAlgoVerdictsAgree(t *testing.T) {
	queries := []solver.Formula{
		vle("a", "b"),
		solver.NewAnd(vle("a", "b"), solver.NewAnd(vle("b", "c"), solver.Lt{X: solver.IntVar{Name: "c"}, Y: solver.IntVar{Name: "a"}})),
		solver.NewAnd(bvar("p"), solver.NewNot(bvar("p"))),
		solver.NewOr(bvar("p"), solver.Eq{X: solver.IntVar{Name: "x"}, Y: solver.IntConst{Val: 3}}),
	}
	for qi, q := range queries {
		var verdicts []bool
		for _, a := range []solver.Algo{solver.AlgoCDCL, solver.AlgoDPLL, solver.AlgoPortfolio} {
			e := New(Options{Workers: 1, SolverAlgo: a})
			sat, err := e.Sat(q)
			e.Close()
			if err != nil {
				t.Fatalf("query %d under %v: %v", qi, a, err)
			}
			verdicts = append(verdicts, sat)
		}
		if verdicts[0] != verdicts[1] || verdicts[0] != verdicts[2] {
			t.Fatalf("query %d: verdicts diverge across algos: %v", qi, verdicts)
		}
	}
}
