package microc

import (
	"strings"
	"testing"
)

func TestParseMinimal(t *testing.T) {
	prog := mustParse(`
int main(void) {
  return 0;
}
`)
	f, ok := prog.Func("main")
	if !ok {
		t.Fatal("main not found")
	}
	if len(f.Params) != 0 || f.IsExtern() {
		t.Fatalf("unexpected main shape: %+v", f)
	}
	if _, ok := f.Ret.(IntType); !ok {
		t.Fatalf("return type %s", f.Ret)
	}
}

func TestParseStructAndFields(t *testing.T) {
	prog := mustParse(`
struct sockaddr {
  int family;
  int *data;
};
struct sockaddr *g;
int use(struct sockaddr *p) {
  p->family = 1;
  return p->family;
}
`)
	s, ok := prog.Struct("sockaddr")
	if !ok || len(s.Fields) != 2 {
		t.Fatalf("struct: %+v", s)
	}
	if _, ok := prog.Global("g"); !ok {
		t.Fatal("global g missing")
	}
}

func TestQualifierAnnotations(t *testing.T) {
	prog := mustParse(`
void sysutil_free(void *nonnull p_ptr) MIX(typed) { return; }
int *null maybe;
`)
	f, _ := prog.Func("sysutil_free")
	if f.Mix != MixTyped {
		t.Fatalf("Mix = %v", f.Mix)
	}
	pt := f.Params[0].Type.(PtrType)
	if pt.Qual != QNonNull {
		t.Fatalf("param qual = %v", pt.Qual)
	}
	g, _ := prog.Global("maybe")
	if g.Type.(PtrType).Qual != QNull {
		t.Fatalf("global qual = %v", g.Type.(PtrType).Qual)
	}
}

func TestMixAnnotations(t *testing.T) {
	prog := mustParse(`
void a(void) MIX(symbolic) { return; }
void b(void) MIX(typed) { return; }
void c(void) { return; }
void d(int x) MIX(symbolic);
`)
	for name, want := range map[string]MixAnno{
		"a": MixSymbolic, "b": MixTyped, "c": MixNone, "d": MixSymbolic,
	} {
		f, _ := prog.Func(name)
		if f.Mix != want {
			t.Errorf("%s: Mix = %v, want %v", name, f.Mix, want)
		}
	}
	d, _ := prog.Func("d")
	if !d.IsExtern() {
		t.Fatal("d should be extern")
	}
}

func TestCase1SourceParses(t *testing.T) {
	// The paper's Case 1, transcribed.
	prog := mustParse(`
struct sockaddr { int family; };
void sysutil_free(void *nonnull p_ptr) MIX(typed);
void sockaddr_clear(struct sockaddr **p_sock) MIX(symbolic) {
  if (*p_sock != NULL) {
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }
}
`)
	f, _ := prog.Func("sockaddr_clear")
	if f.Mix != MixSymbolic || len(f.Params) != 1 {
		t.Fatalf("sockaddr_clear: %+v", f)
	}
	inner := f.Params[0].Type.(PtrType).Elem.(PtrType)
	if !TypeEqual(inner.Elem, StructType{"sockaddr"}) {
		t.Fatalf("param type %s", f.Params[0].Type)
	}
}

func TestMallocAndCast(t *testing.T) {
	prog := mustParse(`
struct foo { int bar; };
struct foo *mk(void) {
  struct foo *x = (struct foo *) malloc(sizeof(struct foo));
  x->bar = 1;
  return x;
}
int *mkint(void) { return malloc(sizeof(int)); }
`)
	f, _ := prog.Func("mk")
	if len(f.Locals) != 1 {
		t.Fatalf("locals: %v", f.Locals)
	}
	// Distinct malloc sites get distinct ids.
	var sites []int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *Malloc:
			sites = append(sites, e.Site)
		case *Cast:
			walk(e.X)
		}
	}
	for _, fn := range prog.Funcs {
		if fn.Body == nil {
			continue
		}
		for _, s := range fn.Body.Stmts {
			switch s := s.(type) {
			case *DeclStmt:
				if s.Decl.Init != nil {
					walk(s.Decl.Init)
				}
			case *ReturnStmt:
				if s.X != nil {
					walk(s.X)
				}
			}
		}
	}
	if len(sites) != 2 || sites[0] == sites[1] {
		t.Fatalf("malloc sites %v", sites)
	}
}

func TestFunctionPointers(t *testing.T) {
	prog := mustParse(`
fnptr s_exit_func;
void handler(void) { return; }
void install(void) { s_exit_func = handler; }
void fire(void) {
  if (s_exit_func != NULL) (*s_exit_func)();
}
`)
	if _, ok := prog.Global("s_exit_func"); !ok {
		t.Fatal("fnptr global missing")
	}
}

func TestControlFlowParses(t *testing.T) {
	mustParse(`
int sum(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  if (acc > 10 && n != 0) return acc;
  else return 0 - acc;
}
`)
}

func TestResolverErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"int f(void) { return x; }", "undefined name x"},
		{"int f(void) { return g(); }", "undefined name g"},
		{"struct s *p;", "undefined struct s"},
		{"int f(int x, int x) { return 0; }", "duplicate declaration"},
		{"int f(void) { int x = 1; int x = 2; return x; }", "duplicate declaration"},
		{"int f(void) { return 1; } int f(void) { return 2; }", "duplicate function"},
		{"int g; int g;", "duplicate global"},
		{"void f(void) { return 1; }", "void function"},
		{"int f(int *p) { return *p + NULL; }", "arithmetic on non-int"},
		{"int f(void) { 1 = 2; return 0; }", "non-lvalue"},
		{"int f(void *p) { return *p; }", "void*"},
		{"struct s { int a; }; int f(struct s *p) { return p->b; }", "no field b"},
		{"int f(int x) { return x(); }", "call of non-function"},
		{"int f(int x) { return f(x, x); }", "expects 1 arguments"},
		{"int f(int *p) { int x = p; return x; }", "cannot assign"},
		{"int f(void) { if (1) return 1 }", "expected ';'"},
		{"int f(", "expected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error with %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestShadowingInNestedBlocks(t *testing.T) {
	prog := mustParse(`
int f(int x) {
  int y = x;
  if (x > 0) {
    int y = 2;
    x = y;
  }
  return y;
}
`)
	f, _ := prog.Func("f")
	if len(f.Locals) != 2 {
		t.Fatalf("expected 2 locals (both y), got %d", len(f.Locals))
	}
}

func TestNullComparisons(t *testing.T) {
	mustParse(`
struct s { int a; };
int f(struct s *p, int *q) {
  if (p == NULL) return 0;
  if (NULL != q) return 1;
  return 2;
}
`)
}

func TestCommentsAndWhitespace(t *testing.T) {
	mustParse(`
// line comment
/* block
   comment */
int f(void) { return 0; } // trailing
`)
	if _, err := Parse("/* unterminated"); err == nil {
		t.Fatal("unterminated comment should error")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	prog := mustParse(`
struct s { int a; };
int f(struct s *p, int x) {
  p->a = x + 1 - 2;
  return p->a == x;
}
`)
	f, _ := prog.Func("f")
	es := f.Body.Stmts[0].(*ExprStmt)
	if got := es.X.String(); got != "p->a = ((x + 1) - 2)" {
		t.Fatalf("got %q", got)
	}
}

// mustParse parses a test fixture, panicking on error; Parse itself
// reports errors through the normal return path.
func mustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
