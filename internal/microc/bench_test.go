package microc

import (
	"testing"

	"mix/internal/corpus"
)

func BenchmarkParseVsftpdMini(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(corpus.VsftpdMini.Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSynthetic(b *testing.B) {
	src := corpus.SyntheticVsftpd(50, 5)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
