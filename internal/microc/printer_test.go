package microc

import (
	"strings"
	"testing"
)

// roundTrip checks Print ∘ Parse is a fixed point on src.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := Print(p1)
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed program does not reparse: %v\n%s", err, printed)
	}
	printed2 := Print(p2)
	if printed != printed2 {
		t.Fatalf("not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestPrintRoundTripBasics(t *testing.T) {
	roundTrip(t, `
int g = 3;
int *p;
int add(int a, int b) { return a + b; }
int main(void) {
  int x = add(1, 2);
  if (x > 2) { x = x - 1; } else { x = 0; }
  while (x < 10) { x = x + 1; }
  return x;
}
`)
}

func TestPrintRoundTripQualifiersAndMix(t *testing.T) {
	roundTrip(t, `
struct sockaddr { int family; int *data; };
void sysutil_free(void *nonnull p_ptr) MIX(typed) { return; }
int *null maybe;
void clear(struct sockaddr **p_sock) MIX(symbolic) {
  if (*p_sock != NULL) {
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }
}
int main(void) { return 0; }
`)
	// Annotations survive printing.
	prog := mustParse(`void f(int *nonnull q) MIX(typed);`)
	out := Print(prog)
	if !strings.Contains(out, "*nonnull q") || !strings.Contains(out, "MIX(typed)") {
		t.Fatalf("annotations lost: %s", out)
	}
}

func TestPrintRoundTripPointersAndCasts(t *testing.T) {
	roundTrip(t, `
struct foo { int bar; };
struct foo *mk(void) {
  struct foo *x = (struct foo *) malloc(sizeof(struct foo));
  x->bar = 1;
  return x;
}
fnptr cb;
void handler(void) { return; }
void fire(void) {
  cb = handler;
  if (cb != NULL) { (*cb)(); }
}
`)
}

func TestPrintBranchesBlockified(t *testing.T) {
	// Brace-less branches print as blocks.
	prog := mustParse(`
int f(int n) {
  if (n > 0) return 1;
  else return 2;
}
`)
	out := Print(prog)
	if !strings.Contains(out, "{") {
		t.Fatalf("branches should be blockified: %s", out)
	}
	roundTrip(t, out)
}

func TestPrintCorpusRoundTrips(t *testing.T) {
	// Every corpus case survives print→parse→print. (Sources come from
	// the test file to avoid an import cycle.)
	srcs := []string{
		`struct hostent { int h_addrtype; };
		 int arbitrary_choice(void);
		 struct hostent *gethostbyname(int *p_name) {
		   struct hostent *hent = malloc(sizeof(struct hostent));
		   if (arbitrary_choice() == 0) { hent->h_addrtype = 2; }
		   else { hent->h_addrtype = 10; }
		   return hent;
		 }`,
		`int *g_text;
		 void str_alloc_text(int *p_filename) MIX(typed) { g_text = p_filename; }
		 int *sysutil_next_dirent(int *p_dir) MIX(typed) {
		   if (p_dir == NULL) { return NULL; }
		   return p_dir;
		 }`,
	}
	for _, src := range srcs {
		roundTrip(t, src)
	}
}
