// Package microc is the C front-end substrate for MIXY, standing in
// for CIL in the paper's prototype (Section 4). It defines a C subset
// sufficient for the vsftpd case study: functions, pointers, structs,
// malloc/NULL, control flow, null/nonnull type-qualifier annotations,
// and the MIX(typed) / MIX(symbolic) function annotations at which
// MIXY switches analyses.
//
// Deviations from C (documented in DESIGN.md): no preprocessor,
// casts only in prefix form before unary expressions, and function
// pointers are declared with the dedicated keyword "fnptr" instead of
// C's declarator syntax.
package microc

import "fmt"

// Pos is a source position.
type Pos struct{ Line, Col int }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Qual is a nullness type qualifier annotation.
type Qual int

const (
	// QNone means unannotated: inference assigns a qualifier variable.
	QNone Qual = iota
	// QNull annotates a pointer that may be null.
	QNull
	// QNonNull annotates a pointer that must not be null.
	QNonNull
)

func (q Qual) String() string {
	switch q {
	case QNull:
		return "null"
	case QNonNull:
		return "nonnull"
	}
	return ""
}

// MixAnno is a MIX block annotation on a function.
type MixAnno int

const (
	// MixNone leaves the function in the enclosing analysis.
	MixNone MixAnno = iota
	// MixTyped marks the function body a typed block.
	MixTyped
	// MixSymbolic marks the function body a symbolic block.
	MixSymbolic
)

func (m MixAnno) String() string {
	switch m {
	case MixTyped:
		return "MIX(typed)"
	case MixSymbolic:
		return "MIX(symbolic)"
	}
	return ""
}

// Type is a MicroC static type.
type Type interface {
	isType()
	String() string
}

// IntType is C int.
type IntType struct{}

// VoidType is C void.
type VoidType struct{}

// PtrType is a pointer type with an optional nullness annotation.
type PtrType struct {
	Elem Type
	Qual Qual
}

// StructType refers to a named struct.
type StructType struct{ Name string }

// FnPtrType is an opaque pointer-to-function type.
type FnPtrType struct{}

func (IntType) isType()    {}
func (VoidType) isType()   {}
func (PtrType) isType()    {}
func (StructType) isType() {}
func (FnPtrType) isType()  {}

func (IntType) String() string  { return "int" }
func (VoidType) String() string { return "void" }
func (t PtrType) String() string {
	q := ""
	if t.Qual != QNone {
		q = t.Qual.String() + " "
	}
	return t.Elem.String() + " *" + q
}
func (t StructType) String() string { return "struct " + t.Name }
func (FnPtrType) String() string    { return "fnptr" }

// TypeEqual reports structural equality ignoring qualifiers.
func TypeEqual(a, b Type) bool {
	switch a := a.(type) {
	case IntType:
		_, ok := b.(IntType)
		return ok
	case VoidType:
		_, ok := b.(VoidType)
		return ok
	case PtrType:
		bp, ok := b.(PtrType)
		return ok && TypeEqual(a.Elem, bp.Elem)
	case StructType:
		bs, ok := b.(StructType)
		return ok && a.Name == bs.Name
	case FnPtrType:
		_, ok := b.(FnPtrType)
		return ok
	}
	return false
}

// Program is a parsed and resolved translation unit.
type Program struct {
	Structs []*StructDef
	Globals []*VarDecl
	Funcs   []*FuncDef

	structsByName map[string]*StructDef
	funcsByName   map[string]*FuncDef
	globalsByName map[string]*VarDecl
}

// Struct looks up a struct definition by name.
func (p *Program) Struct(name string) (*StructDef, bool) {
	s, ok := p.structsByName[name]
	return s, ok
}

// Func looks up a function by name.
func (p *Program) Func(name string) (*FuncDef, bool) {
	f, ok := p.funcsByName[name]
	return f, ok
}

// Global looks up a global variable by name.
func (p *Program) Global(name string) (*VarDecl, bool) {
	g, ok := p.globalsByName[name]
	return g, ok
}

// StructDef is a struct definition.
type StructDef struct {
	Pos    Pos
	Name   string
	Fields []*VarDecl
}

// Field looks up a field by name.
func (s *StructDef) Field(name string) (*VarDecl, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// VarKind distinguishes declaration roles.
type VarKind int

const (
	// GlobalVar is a file-scope variable.
	GlobalVar VarKind = iota
	// LocalVar is a function-local variable.
	LocalVar
	// ParamVar is a function parameter.
	ParamVar
	// FieldVar is a struct field.
	FieldVar
)

// VarDecl is a variable, parameter, or field declaration.
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Kind VarKind
	// Init is the optional initializer (globals and locals).
	Init Expr
	// Owner is the enclosing function (locals and params) or struct
	// name (fields).
	Owner string
}

func (d *VarDecl) String() string { return d.Type.String() + " " + d.Name }

// FuncDef is a function definition or extern declaration (nil Body).
type FuncDef struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []*VarDecl
	Body   *BlockStmt // nil for extern declarations
	Mix    MixAnno
	Locals []*VarDecl // filled by the resolver
}

// IsExtern reports whether the function has no body.
func (f *FuncDef) IsExtern() bool { return f.Body == nil }

// Stmt is a statement.
type Stmt interface {
	isStmt()
	StmtPos() Pos
}

type stmtBase struct{ P Pos }

func (s stmtBase) StmtPos() Pos { return s.P }

// BlockStmt is { stmts }.
type BlockStmt struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	stmtBase
	Decl *VarDecl
}

// ExprStmt evaluates an expression for effect (calls, assignments).
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is if (cond) then else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// ReturnStmt is return expr? ;
type ReturnStmt struct {
	stmtBase
	X Expr // may be nil
}

func (*BlockStmt) isStmt()  {}
func (*DeclStmt) isStmt()   {}
func (*ExprStmt) isStmt()   {}
func (*IfStmt) isStmt()     {}
func (*WhileStmt) isStmt()  {}
func (*ReturnStmt) isStmt() {}

// UnaryOp enumerates unary operators.
type UnaryOp int

const (
	// OpDeref is *e.
	OpDeref UnaryOp = iota
	// OpAddr is &e.
	OpAddr
	// OpNot is !e.
	OpNot
	// OpNeg is -e.
	OpNeg
)

var unaryNames = map[UnaryOp]string{OpDeref: "*", OpAddr: "&", OpNot: "!", OpNeg: "-"}

// BinaryOp enumerates binary operators.
type BinaryOp int

const (
	// OpAdd is +.
	OpAdd BinaryOp = iota
	// OpSub is -.
	OpSub
	// OpEq is ==.
	OpEq
	// OpNe is !=.
	OpNe
	// OpLt is <.
	OpLt
	// OpGt is >.
	OpGt
	// OpLe is <=.
	OpLe
	// OpGe is >=.
	OpGe
	// OpAnd is && (non-short-circuit in our semantics).
	OpAnd
	// OpOr is ||.
	OpOr
)

var binaryNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpEq: "==", OpNe: "!=",
	OpLt: "<", OpGt: ">", OpLe: "<=", OpGe: ">=", OpAnd: "&&", OpOr: "||",
}

// Expr is an expression. Resolved expressions carry their static type.
type Expr interface {
	isExpr()
	ExprPos() Pos
	// StaticType is filled by the resolver.
	StaticType() Type
	String() string
}

type exprBase struct {
	P  Pos
	Ty Type
}

func (e exprBase) ExprPos() Pos     { return e.P }
func (e exprBase) StaticType() Type { return e.Ty }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// NullLit is NULL.
type NullLit struct{ exprBase }

// VarRef is a reference to a variable or function name. Ref is filled
// by the resolver: a *VarDecl or *FuncDef.
type VarRef struct {
	exprBase
	Name string
	Ref  any
}

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   BinaryOp
	X, Y Expr
}

// Assign is the assignment expression lhs = rhs (value is rhs).
type Assign struct {
	exprBase
	LHS, RHS Expr
}

// Call is a function call; Fun is a VarRef to a function, or an
// expression of fnptr type.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Field is e.Name or e->Name (Arrow).
type Field struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
}

// Malloc is malloc(sizeof(T)); each syntactic occurrence is a distinct
// allocation site with its resolver-assigned Site id.
type Malloc struct {
	exprBase
	ElemType Type
	Site     int
}

// Cast is (T) e; MicroC casts are only between pointer types and are
// semantically transparent.
type Cast struct {
	exprBase
	To Type
	X  Expr
}

func (*IntLit) isExpr()  {}
func (*NullLit) isExpr() {}
func (*VarRef) isExpr()  {}
func (*Unary) isExpr()   {}
func (*Binary) isExpr()  {}
func (*Assign) isExpr()  {}
func (*Call) isExpr()    {}
func (*Field) isExpr()   {}
func (*Malloc) isExpr()  {}
func (*Cast) isExpr()    {}

func (e *IntLit) String() string  { return fmt.Sprintf("%d", e.Val) }
func (e *NullLit) String() string { return "NULL" }
func (e *VarRef) String() string  { return e.Name }
func (e *Unary) String() string   { return unaryNames[e.Op] + e.X.String() }
func (e *Binary) String() string {
	return "(" + e.X.String() + " " + binaryNames[e.Op] + " " + e.Y.String() + ")"
}
func (e *Assign) String() string { return e.LHS.String() + " = " + e.RHS.String() }
func (e *Call) String() string {
	fun := e.Fun.String()
	// A call through a dereferenced function pointer needs parens:
	// (*f)() is not *(f()).
	if u, ok := e.Fun.(*Unary); ok && u.Op == OpDeref {
		fun = "(" + fun + ")"
	}
	s := fun + "("
	for i, a := range e.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}
func (e *Field) String() string {
	sep := "."
	if e.Arrow {
		sep = "->"
	}
	return e.X.String() + sep + e.Name
}
func (e *Malloc) String() string { return "malloc(sizeof(" + e.ElemType.String() + "))" }
func (e *Cast) String() string   { return "(" + e.To.String() + ")" + e.X.String() }
