package microc

import "fmt"

// resolve binds names, computes static types for every expression, and
// validates the program well enough to drive the analyses (it is a
// front-end check, not a full C type checker).
func resolve(prog *Program) error {
	prog.structsByName = map[string]*StructDef{}
	prog.funcsByName = map[string]*FuncDef{}
	prog.globalsByName = map[string]*VarDecl{}
	for _, s := range prog.Structs {
		if _, dup := prog.structsByName[s.Name]; dup {
			return &ParseError{s.Pos, fmt.Sprintf("duplicate struct %s", s.Name)}
		}
		prog.structsByName[s.Name] = s
	}
	for _, f := range prog.Funcs {
		if _, dup := prog.funcsByName[f.Name]; dup {
			return &ParseError{f.Pos, fmt.Sprintf("duplicate function %s", f.Name)}
		}
		prog.funcsByName[f.Name] = f
	}
	for _, g := range prog.Globals {
		if _, dup := prog.globalsByName[g.Name]; dup {
			return &ParseError{g.Pos, fmt.Sprintf("duplicate global %s", g.Name)}
		}
		prog.globalsByName[g.Name] = g
	}
	// Validate struct field types refer to defined structs.
	for _, s := range prog.Structs {
		for _, f := range s.Fields {
			if err := checkTypeDefined(prog, f.Type, f.Pos); err != nil {
				return err
			}
		}
	}
	r := &resolver{prog: prog}
	for _, g := range prog.Globals {
		if err := checkTypeDefined(prog, g.Type, g.Pos); err != nil {
			return err
		}
		if g.Init != nil {
			if err := r.expr(g.Init); err != nil {
				return err
			}
			if err := assignable(g.Type, g.Init, g.Pos); err != nil {
				return err
			}
		}
	}
	for _, f := range prog.Funcs {
		if err := r.function(f); err != nil {
			return err
		}
	}
	return nil
}

func checkTypeDefined(prog *Program, ty Type, pos Pos) error {
	switch ty := ty.(type) {
	case StructType:
		if _, ok := prog.structsByName[ty.Name]; !ok {
			return &ParseError{pos, fmt.Sprintf("undefined struct %s", ty.Name)}
		}
	case PtrType:
		return checkTypeDefined(prog, ty.Elem, pos)
	}
	return nil
}

type resolver struct {
	prog   *Program
	fn     *FuncDef
	scopes []map[string]*VarDecl
}

func (r *resolver) push() { r.scopes = append(r.scopes, map[string]*VarDecl{}) }
func (r *resolver) pop()  { r.scopes = r.scopes[:len(r.scopes)-1] }

func (r *resolver) declare(d *VarDecl) error {
	top := r.scopes[len(r.scopes)-1]
	if _, dup := top[d.Name]; dup {
		return &ParseError{d.Pos, fmt.Sprintf("duplicate declaration of %s", d.Name)}
	}
	top[d.Name] = d
	return nil
}

func (r *resolver) lookup(name string) (*VarDecl, bool) {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if d, ok := r.scopes[i][name]; ok {
			return d, true
		}
	}
	if g, ok := r.prog.globalsByName[name]; ok {
		return g, true
	}
	return nil, false
}

func (r *resolver) function(f *FuncDef) error {
	if err := checkTypeDefined(r.prog, f.Ret, f.Pos); err != nil {
		return err
	}
	for _, p := range f.Params {
		if err := checkTypeDefined(r.prog, p.Type, p.Pos); err != nil {
			return err
		}
	}
	if f.Body == nil {
		return nil
	}
	r.fn = f
	r.push()
	defer r.pop()
	for _, p := range f.Params {
		if err := r.declare(p); err != nil {
			return err
		}
	}
	return r.stmt(f.Body)
}

func (r *resolver) stmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		r.push()
		defer r.pop()
		for _, inner := range s.Stmts {
			if err := r.stmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		d := s.Decl
		d.Owner = r.fn.Name
		if err := checkTypeDefined(r.prog, d.Type, d.Pos); err != nil {
			return err
		}
		if d.Init != nil {
			if err := r.expr(d.Init); err != nil {
				return err
			}
			if err := assignable(d.Type, d.Init, d.Pos); err != nil {
				return err
			}
		}
		if err := r.declare(d); err != nil {
			return err
		}
		r.fn.Locals = append(r.fn.Locals, d)
		return nil
	case *ExprStmt:
		return r.expr(s.X)
	case *IfStmt:
		if err := r.expr(s.Cond); err != nil {
			return err
		}
		if err := r.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return r.stmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := r.expr(s.Cond); err != nil {
			return err
		}
		return r.stmt(s.Body)
	case *ReturnStmt:
		if s.X == nil {
			return nil
		}
		if err := r.expr(s.X); err != nil {
			return err
		}
		if _, isVoid := r.fn.Ret.(VoidType); isVoid {
			return &ParseError{s.StmtPos(), fmt.Sprintf("void function %s returns a value", r.fn.Name)}
		}
		return assignable(r.fn.Ret, s.X, s.StmtPos())
	}
	return fmt.Errorf("microc: unknown statement %T", s)
}

// setType writes the computed static type into the expression node.
func setType(e Expr, ty Type) {
	switch e := e.(type) {
	case *IntLit:
		e.Ty = ty
	case *NullLit:
		e.Ty = ty
	case *VarRef:
		e.Ty = ty
	case *Unary:
		e.Ty = ty
	case *Binary:
		e.Ty = ty
	case *Assign:
		e.Ty = ty
	case *Call:
		e.Ty = ty
	case *Field:
		e.Ty = ty
	case *Malloc:
		e.Ty = ty
	case *Cast:
		e.Ty = ty
	}
}

func (r *resolver) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		setType(e, IntType{})
		return nil
	case *NullLit:
		// NULL has type void* and is assignable to any pointer.
		setType(e, PtrType{Elem: VoidType{}, Qual: QNull})
		return nil
	case *VarRef:
		if d, ok := r.lookup(e.Name); ok {
			e.Ref = d
			setType(e, d.Type)
			return nil
		}
		if f, ok := r.prog.funcsByName[e.Name]; ok {
			e.Ref = f
			setType(e, FnPtrType{})
			return nil
		}
		return &ParseError{e.ExprPos(), fmt.Sprintf("undefined name %s", e.Name)}
	case *Unary:
		if err := r.expr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case OpDeref:
			pt, ok := e.X.StaticType().(PtrType)
			if !ok {
				return &ParseError{e.ExprPos(), fmt.Sprintf("dereference of non-pointer %s", e.X.StaticType())}
			}
			if _, isVoid := pt.Elem.(VoidType); isVoid {
				return &ParseError{e.ExprPos(), "dereference of void*"}
			}
			setType(e, pt.Elem)
		case OpAddr:
			if !isLValue(e.X) {
				return &ParseError{e.ExprPos(), "cannot take address of non-lvalue"}
			}
			setType(e, PtrType{Elem: e.X.StaticType()})
		case OpNot, OpNeg:
			setType(e, IntType{})
		}
		return nil
	case *Binary:
		if err := r.expr(e.X); err != nil {
			return err
		}
		if err := r.expr(e.Y); err != nil {
			return err
		}
		switch e.Op {
		case OpEq, OpNe:
			xt, yt := e.X.StaticType(), e.Y.StaticType()
			if !comparable2(xt, yt) {
				return &ParseError{e.ExprPos(), fmt.Sprintf("cannot compare %s and %s", xt, yt)}
			}
		case OpAdd, OpSub, OpLt, OpGt, OpLe, OpGe:
			for _, side := range [2]Expr{e.X, e.Y} {
				if _, ok := side.StaticType().(IntType); !ok {
					return &ParseError{side.ExprPos(), fmt.Sprintf("arithmetic on non-int %s", side.StaticType())}
				}
			}
		}
		setType(e, IntType{})
		return nil
	case *Assign:
		if err := r.expr(e.LHS); err != nil {
			return err
		}
		if !isLValue(e.LHS) {
			return &ParseError{e.ExprPos(), "assignment to non-lvalue"}
		}
		if err := r.expr(e.RHS); err != nil {
			return err
		}
		if err := assignable(e.LHS.StaticType(), e.RHS, e.ExprPos()); err != nil {
			return err
		}
		setType(e, e.LHS.StaticType())
		return nil
	case *Call:
		// Direct call to a named function?
		if vr, ok := e.Fun.(*VarRef); ok {
			if f, isFunc := r.prog.funcsByName[vr.Name]; isFunc {
				if _, shadowed := r.lookup(vr.Name); !shadowed {
					vr.Ref = f
					setType(vr, FnPtrType{})
					if len(e.Args) != len(f.Params) {
						return &ParseError{e.ExprPos(),
							fmt.Sprintf("%s expects %d arguments, got %d", f.Name, len(f.Params), len(e.Args))}
					}
					for i, a := range e.Args {
						if err := r.expr(a); err != nil {
							return err
						}
						if err := assignable(f.Params[i].Type, a, a.ExprPos()); err != nil {
							return err
						}
					}
					setType(e, f.Ret)
					return nil
				}
			}
		}
		// Indirect call through a function pointer: f(...) or (*f)(...).
		if u, ok := e.Fun.(*Unary); ok && u.Op == OpDeref {
			// (*f)(): the deref of a fnptr is only legal in call
			// position, so handle it here rather than in Unary.
			if err := r.expr(u.X); err != nil {
				return err
			}
			if _, ok := u.X.StaticType().(FnPtrType); !ok {
				return &ParseError{e.ExprPos(), fmt.Sprintf("call of non-function %s", u.X.StaticType())}
			}
			setType(u, FnPtrType{})
		} else {
			if err := r.expr(e.Fun); err != nil {
				return err
			}
			if _, ok := e.Fun.StaticType().(FnPtrType); !ok {
				return &ParseError{e.ExprPos(), fmt.Sprintf("call of non-function %s", e.Fun.StaticType())}
			}
		}
		for _, a := range e.Args {
			if err := r.expr(a); err != nil {
				return err
			}
		}
		setType(e, VoidType{})
		return nil
	case *Field:
		if err := r.expr(e.X); err != nil {
			return err
		}
		var st StructType
		xt := e.X.StaticType()
		if e.Arrow {
			pt, ok := xt.(PtrType)
			if !ok {
				return &ParseError{e.ExprPos(), fmt.Sprintf("-> on non-pointer %s", xt)}
			}
			st, ok = pt.Elem.(StructType)
			if !ok {
				return &ParseError{e.ExprPos(), fmt.Sprintf("-> on pointer to non-struct %s", pt.Elem)}
			}
		} else {
			var ok bool
			st, ok = xt.(StructType)
			if !ok {
				return &ParseError{e.ExprPos(), fmt.Sprintf(". on non-struct %s", xt)}
			}
		}
		def, _ := r.prog.structsByName[st.Name]
		fld, ok := def.Field(e.Name)
		if !ok {
			return &ParseError{e.ExprPos(), fmt.Sprintf("struct %s has no field %s", st.Name, e.Name)}
		}
		setType(e, fld.Type)
		return nil
	case *Malloc:
		if err := checkTypeDefined(r.prog, e.ElemType, e.ExprPos()); err != nil {
			return err
		}
		setType(e, PtrType{Elem: e.ElemType})
		return nil
	case *Cast:
		if err := r.expr(e.X); err != nil {
			return err
		}
		if err := checkTypeDefined(r.prog, e.To, e.ExprPos()); err != nil {
			return err
		}
		setType(e, e.To)
		return nil
	}
	return fmt.Errorf("microc: unknown expression %T", e)
}

// isLValue reports whether e may appear on the left of an assignment
// or under &.
func isLValue(e Expr) bool {
	switch e := e.(type) {
	case *VarRef:
		_, isVar := e.Ref.(*VarDecl)
		return isVar
	case *Unary:
		return e.Op == OpDeref
	case *Field:
		return true
	}
	return false
}

// comparable2 reports whether == / != applies.
func comparable2(a, b Type) bool {
	if _, ok := a.(IntType); ok {
		_, ok2 := b.(IntType)
		return ok2
	}
	ap, aok := a.(PtrType)
	bp, bok := b.(PtrType)
	if aok && bok {
		_, av := ap.Elem.(VoidType)
		_, bv := bp.Elem.(VoidType)
		return av || bv || TypeEqual(ap.Elem, bp.Elem)
	}
	if _, ok := a.(FnPtrType); ok {
		return isFnPtrOrNull(b)
	}
	if _, ok := b.(FnPtrType); ok {
		return isFnPtrOrNull(a)
	}
	return false
}

// isFnPtrOrNull accepts fnptr or void* (the type of NULL).
func isFnPtrOrNull(t Type) bool {
	if _, ok := t.(FnPtrType); ok {
		return true
	}
	if p, ok := t.(PtrType); ok {
		_, v := p.Elem.(VoidType)
		return v
	}
	return false
}

// assignable checks dst = src compatibility with C-ish leniency:
// identical types, any-pointer ↔ void-pointer, NULL to any pointer.
func assignable(dst Type, src Expr, pos Pos) error {
	st := src.StaticType()
	if TypeEqual(dst, st) {
		return nil
	}
	dp, dok := dst.(PtrType)
	sp, sok := st.(PtrType)
	if dok && sok {
		if _, v := dp.Elem.(VoidType); v {
			return nil
		}
		if _, v := sp.Elem.(VoidType); v {
			return nil
		}
	}
	if _, ok := dst.(FnPtrType); ok && isFnPtrOrNull(st) {
		return nil
	}
	return &ParseError{pos, fmt.Sprintf("cannot assign %s to %s", st, dst)}
}
