package microc

import (
	"fmt"
	"strings"
)

// Print renders a resolved program back to MicroC source. Printing
// then reparsing is a fixed point (tested property), which makes the
// printer usable for corpus tooling and program transformation.
func Print(p *Program) string {
	var b strings.Builder
	for _, s := range p.Structs {
		fmt.Fprintf(&b, "struct %s {\n", s.Name)
		for _, f := range s.Fields {
			fmt.Fprintf(&b, "  %s;\n", declString(f))
		}
		b.WriteString("};\n")
	}
	for _, g := range p.Globals {
		b.WriteString(declString(g))
		if g.Init != nil {
			b.WriteString(" = " + exprString(g.Init))
		}
		b.WriteString(";\n")
	}
	for _, f := range p.Funcs {
		b.WriteString(funcHeader(f))
		if f.Body == nil {
			b.WriteString(";\n")
			continue
		}
		b.WriteString(" ")
		printStmt(&b, f.Body, 0)
		b.WriteString("\n")
	}
	return b.String()
}

// PrintFunc renders a single resolved function back to MicroC source
// (header plus body, or "header;" for an extern). It is the canonical
// text the summary store content-hashes: any edit that changes a
// function's analysis-relevant shape changes this string.
func PrintFunc(f *FuncDef) string {
	var b strings.Builder
	b.WriteString(funcHeader(f))
	if f.Body == nil {
		b.WriteString(";\n")
		return b.String()
	}
	b.WriteString(" ")
	printStmt(&b, f.Body, 0)
	b.WriteString("\n")
	return b.String()
}

// declString renders "basetype stars name" with qualifiers.
func declString(d *VarDecl) string {
	base, stars := splitType(d.Type)
	return base + " " + stars + d.Name
}

// splitType separates the base type from the pointer-star prefix of
// the declarator (qualifiers ride with their star).
func splitType(t Type) (base, stars string) {
	switch t := t.(type) {
	case PtrType:
		b, s := splitType(t.Elem)
		star := "*"
		if t.Qual != QNone {
			star += t.Qual.String() + " "
		}
		return b, s + star
	default:
		return t.String(), ""
	}
}

func funcHeader(f *FuncDef) string {
	base, stars := splitType(f.Ret)
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = declString(p)
	}
	paramStr := strings.Join(params, ", ")
	if paramStr == "" {
		paramStr = "void"
	}
	s := fmt.Sprintf("%s %s%s(%s)", base, stars, f.Name, paramStr)
	if f.Mix != MixNone {
		s += " " + f.Mix.String()
	}
	return s
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch s := s.(type) {
	case *BlockStmt:
		b.WriteString("{\n")
		for _, inner := range s.Stmts {
			b.WriteString(ind + "  ")
			printStmt(b, inner, depth+1)
			b.WriteString("\n")
		}
		b.WriteString(ind + "}")
	case *DeclStmt:
		b.WriteString(declString(s.Decl))
		if s.Decl.Init != nil {
			b.WriteString(" = " + exprString(s.Decl.Init))
		}
		b.WriteString(";")
	case *ExprStmt:
		b.WriteString(exprString(s.X) + ";")
	case *IfStmt:
		b.WriteString("if (" + exprString(s.Cond) + ") ")
		printStmt(b, blockify(s.Then), depth)
		if s.Else != nil {
			b.WriteString(" else ")
			printStmt(b, blockify(s.Else), depth)
		}
	case *WhileStmt:
		b.WriteString("while (" + exprString(s.Cond) + ") ")
		printStmt(b, blockify(s.Body), depth)
	case *ReturnStmt:
		if s.X == nil {
			b.WriteString("return;")
		} else {
			b.WriteString("return " + exprString(s.X) + ";")
		}
	}
}

// blockify wraps non-block branch bodies so the printed form is
// unambiguous.
func blockify(s Stmt) Stmt {
	if _, ok := s.(*BlockStmt); ok {
		return s
	}
	return &BlockStmt{Stmts: []Stmt{s}}
}

// exprString renders an expression with full parenthesization of
// binary subterms (matching Expr.String, which the parser round-trips).
func exprString(e Expr) string {
	switch e := e.(type) {
	case *Cast:
		base, stars := splitType(e.To)
		return "(" + base + " " + stars + ")" + exprString(e.X)
	default:
		return e.String()
	}
}
