package microc

import (
	"fmt"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tInt
	tIdent
	// keywords
	tKwInt
	tKwVoid
	tKwStruct
	tKwIf
	tKwElse
	tKwWhile
	tKwReturn
	tKwNull    // NULL
	tKwMalloc  // malloc
	tKwSizeof  // sizeof
	tKwMix     // MIX
	tKwQNull   // null
	tKwQNonnul // nonnull
	tKwTyped   // typed
	tKwSymb    // symbolic
	tKwFnptr   // fnptr
	// punctuation
	tLParen
	tRParen
	tLBrace
	tRBrace
	tSemi
	tComma
	tStar
	tAmp
	tPlus
	tMinus
	tBang
	tAssign
	tEq
	tNe
	tLt
	tGt
	tLe
	tGe
	tAndAnd
	tOrOr
	tArrow
	tDot
)

var kindNames = map[tokKind]string{
	tEOF: "end of input", tInt: "integer", tIdent: "identifier",
	tKwInt: "'int'", tKwVoid: "'void'", tKwStruct: "'struct'", tKwIf: "'if'",
	tKwElse: "'else'", tKwWhile: "'while'", tKwReturn: "'return'",
	tKwNull: "'NULL'", tKwMalloc: "'malloc'", tKwSizeof: "'sizeof'",
	tKwMix: "'MIX'", tKwQNull: "'null'", tKwQNonnul: "'nonnull'",
	tKwTyped: "'typed'", tKwSymb: "'symbolic'", tKwFnptr: "'fnptr'",
	tLParen: "'('", tRParen: "')'", tLBrace: "'{'", tRBrace: "'}'",
	tSemi: "';'", tComma: "','", tStar: "'*'", tAmp: "'&'", tPlus: "'+'",
	tMinus: "'-'", tBang: "'!'", tAssign: "'='", tEq: "'=='", tNe: "'!='",
	tLt: "'<'", tGt: "'>'", tLe: "'<='", tGe: "'>='", tAndAnd: "'&&'",
	tOrOr: "'||'", tArrow: "'->'", tDot: "'.'",
}

var cKeywords = map[string]tokKind{
	"int": tKwInt, "void": tKwVoid, "struct": tKwStruct, "if": tKwIf,
	"else": tKwElse, "while": tKwWhile, "return": tKwReturn,
	"NULL": tKwNull, "malloc": tKwMalloc, "sizeof": tKwSizeof,
	"MIX": tKwMix, "null": tKwQNull, "nonnull": tKwQNonnul,
	"typed": tKwTyped, "symbolic": tKwSymb, "fnptr": tKwFnptr,
}

type tok struct {
	kind tokKind
	text string
	pos  Pos
}

// ParseError reports a lexical or syntax error.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s: parse error: %s", e.Pos, e.Msg)
}

type clexer struct {
	src  []rune
	i    int
	line int
	col  int
}

func (l *clexer) peek() rune {
	if l.i >= len(l.src) {
		return 0
	}
	return l.src[l.i]
}

func (l *clexer) peek2() rune {
	if l.i+1 >= len(l.src) {
		return 0
	}
	return l.src[l.i+1]
}

func (l *clexer) adv() rune {
	r := l.src[l.i]
	l.i++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *clexer) pos() Pos { return Pos{l.line, l.col} }

func lexC(src string) ([]tok, error) {
	l := &clexer{src: []rune(src), line: 1, col: 1}
	var out []tok
	for {
		// Skip whitespace and comments.
		for l.i < len(l.src) {
			r := l.peek()
			if r == ' ' || r == '\t' || r == '\r' || r == '\n' {
				l.adv()
				continue
			}
			if r == '/' && l.peek2() == '/' {
				for l.i < len(l.src) && l.peek() != '\n' {
					l.adv()
				}
				continue
			}
			if r == '/' && l.peek2() == '*' {
				p := l.pos()
				l.adv()
				l.adv()
				closed := false
				for l.i < len(l.src) {
					if l.peek() == '*' && l.peek2() == '/' {
						l.adv()
						l.adv()
						closed = true
						break
					}
					l.adv()
				}
				if !closed {
					return nil, &ParseError{p, "unterminated comment"}
				}
				continue
			}
			break
		}
		if l.i >= len(l.src) {
			out = append(out, tok{tEOF, "", l.pos()})
			return out, nil
		}
		p := l.pos()
		r := l.peek()
		switch {
		case unicode.IsDigit(r):
			start := l.i
			for l.i < len(l.src) && unicode.IsDigit(l.peek()) {
				l.adv()
			}
			out = append(out, tok{tInt, string(l.src[start:l.i]), p})
			continue
		case r == '_' || unicode.IsLetter(r):
			start := l.i
			for l.i < len(l.src) && (l.peek() == '_' || unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek())) {
				l.adv()
			}
			text := string(l.src[start:l.i])
			if k, ok := cKeywords[text]; ok {
				out = append(out, tok{k, text, p})
			} else {
				out = append(out, tok{tIdent, text, p})
			}
			continue
		}
		two := func(second rune, both, single tokKind) {
			l.adv()
			if l.peek() == second {
				l.adv()
				out = append(out, tok{both, "", p})
			} else {
				out = append(out, tok{single, "", p})
			}
		}
		switch r {
		case '(':
			l.adv()
			out = append(out, tok{tLParen, "(", p})
		case ')':
			l.adv()
			out = append(out, tok{tRParen, ")", p})
		case '{':
			l.adv()
			out = append(out, tok{tLBrace, "{", p})
		case '}':
			l.adv()
			out = append(out, tok{tRBrace, "}", p})
		case ';':
			l.adv()
			out = append(out, tok{tSemi, ";", p})
		case ',':
			l.adv()
			out = append(out, tok{tComma, ",", p})
		case '*':
			l.adv()
			out = append(out, tok{tStar, "*", p})
		case '+':
			l.adv()
			out = append(out, tok{tPlus, "+", p})
		case '.':
			l.adv()
			out = append(out, tok{tDot, ".", p})
		case '-':
			l.adv()
			if l.peek() == '>' {
				l.adv()
				out = append(out, tok{tArrow, "->", p})
			} else {
				out = append(out, tok{tMinus, "-", p})
			}
		case '=':
			two('=', tEq, tAssign)
		case '!':
			two('=', tNe, tBang)
		case '<':
			two('=', tLe, tLt)
		case '>':
			two('=', tGe, tGt)
		case '&':
			two('&', tAndAnd, tAmp)
		case '|':
			l.adv()
			if l.peek() != '|' {
				return nil, &ParseError{p, "expected '||'"}
			}
			l.adv()
			out = append(out, tok{tOrOr, "||", p})
		default:
			return nil, &ParseError{p, fmt.Sprintf("unexpected character %q", r)}
		}
	}
}
