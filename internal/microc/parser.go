package microc

import (
	"fmt"
	"strconv"
)

// Parse parses and resolves a MicroC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lexC(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := resolve(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type cparser struct {
	toks       []tok
	i          int
	mallocSite int
}

func (p *cparser) cur() tok          { return p.toks[p.i] }
func (p *cparser) at(k tokKind) bool { return p.cur().kind == k }

func (p *cparser) adv() tok {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *cparser) errf(format string, args ...any) error {
	return &ParseError{p.cur().pos, fmt.Sprintf(format, args...)}
}

func (p *cparser) expect(k tokKind) (tok, error) {
	if !p.at(k) {
		return tok{}, p.errf("expected %s, found %s", kindNames[k], kindNames[p.cur().kind])
	}
	return p.adv(), nil
}

// atType reports whether the current token starts a type.
func (p *cparser) atType() bool {
	switch p.cur().kind {
	case tKwInt, tKwVoid, tKwStruct, tKwFnptr:
		return true
	}
	return false
}

// parseBaseType parses int | void | struct ident | fnptr.
func (p *cparser) parseBaseType() (Type, error) {
	switch p.cur().kind {
	case tKwInt:
		p.adv()
		return IntType{}, nil
	case tKwVoid:
		p.adv()
		return VoidType{}, nil
	case tKwFnptr:
		p.adv()
		return FnPtrType{}, nil
	case tKwStruct:
		p.adv()
		name, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		return StructType{name.text}, nil
	}
	return nil, p.errf("expected type, found %s", kindNames[p.cur().kind])
}

// parseDeclarator parses ('*' qual?)* ident, wrapping base in pointer
// types (innermost star binds closest to the base type).
func (p *cparser) parseDeclarator(base Type) (Type, string, Pos, error) {
	ty := base
	for p.at(tStar) {
		p.adv()
		q := QNone
		switch p.cur().kind {
		case tKwQNull:
			p.adv()
			q = QNull
		case tKwQNonnul:
			p.adv()
			q = QNonNull
		}
		ty = PtrType{Elem: ty, Qual: q}
	}
	id, err := p.expect(tIdent)
	if err != nil {
		return nil, "", Pos{}, err
	}
	return ty, id.text, id.pos, nil
}

// parsePointerSuffix parses '*'* after a base type (for casts and
// sizeof).
func (p *cparser) parsePointerSuffix(base Type) Type {
	ty := base
	for p.at(tStar) {
		p.adv()
		ty = PtrType{Elem: ty}
	}
	return ty
}

func (p *cparser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(tEOF) {
		if p.at(tKwStruct) && p.toks[p.i+2].kind == tLBrace {
			sd, err := p.parseStructDef()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, sd)
			continue
		}
		if err := p.parseTopDecl(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *cparser) parseStructDef() (*StructDef, error) {
	pos := p.adv().pos // struct
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	sd := &StructDef{Pos: pos, Name: name.text}
	for !p.at(tRBrace) {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		ty, fname, fpos, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, &VarDecl{
			Pos: fpos, Name: fname, Type: ty, Kind: FieldVar, Owner: name.text,
		})
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
	}
	p.adv() // }
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return sd, nil
}

// parseTopDecl parses a global variable or function.
func (p *cparser) parseTopDecl(prog *Program) error {
	base, err := p.parseBaseType()
	if err != nil {
		return err
	}
	ty, name, pos, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}
	if p.at(tLParen) {
		fd, err := p.parseFuncRest(pos, name, ty)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fd)
		return nil
	}
	decl := &VarDecl{Pos: pos, Name: name, Type: ty, Kind: GlobalVar}
	if p.at(tAssign) {
		p.adv()
		init, err := p.parseExpr()
		if err != nil {
			return err
		}
		decl.Init = init
	}
	if _, err := p.expect(tSemi); err != nil {
		return err
	}
	prog.Globals = append(prog.Globals, decl)
	return nil
}

func (p *cparser) parseFuncRest(pos Pos, name string, ret Type) (*FuncDef, error) {
	p.adv() // (
	fd := &FuncDef{Pos: pos, Name: name, Ret: ret}
	if p.at(tKwVoid) && p.toks[p.i+1].kind == tRParen {
		p.adv()
	}
	for !p.at(tRParen) {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		ty, pname, ppos, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, &VarDecl{
			Pos: ppos, Name: pname, Type: ty, Kind: ParamVar, Owner: name,
		})
		if p.at(tComma) {
			p.adv()
		} else if !p.at(tRParen) {
			return nil, p.errf("expected ',' or ')' in parameter list")
		}
	}
	p.adv() // )
	if p.at(tKwMix) {
		p.adv()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		switch p.cur().kind {
		case tKwTyped:
			fd.Mix = MixTyped
		case tKwSymb:
			fd.Mix = MixSymbolic
		default:
			return nil, p.errf("expected 'typed' or 'symbolic' in MIX annotation")
		}
		p.adv()
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
	}
	if p.at(tSemi) {
		p.adv() // extern declaration
		return fd, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *cparser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(tLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{stmtBase: stmtBase{lb.pos}}
	for !p.at(tRBrace) {
		if p.at(tEOF) {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.adv()
	return blk, nil
}

func (p *cparser) parseStmt() (Stmt, error) {
	switch p.cur().kind {
	case tLBrace:
		return p.parseBlock()
	case tKwIf:
		pos := p.adv().pos
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.at(tKwElse) {
			p.adv()
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{stmtBase{pos}, cond, then, els}, nil
	case tKwWhile:
		pos := p.adv().pos
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase{pos}, cond, body}, nil
	case tKwReturn:
		pos := p.adv().pos
		var x Expr
		if !p.at(tSemi) {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{stmtBase{pos}, x}, nil
	}
	if p.atType() {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		ty, name, pos, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		decl := &VarDecl{Pos: pos, Name: name, Type: ty, Kind: LocalVar}
		if p.at(tAssign) {
			p.adv()
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			decl.Init = init
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &DeclStmt{stmtBase{pos}, decl}, nil
	}
	pos := p.cur().pos
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{stmtBase{pos}, x}, nil
}

// Expression parsing, lowest precedence first.

func (p *cparser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *cparser) parseAssign() (Expr, error) {
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.at(tAssign) {
		pos := p.adv().pos
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase{P: pos}, lhs, rhs}, nil
	}
	return lhs, nil
}

func (p *cparser) parseOr() (Expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tOrOr) {
		pos := p.adv().pos
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase{P: pos}, OpOr, lhs, rhs}
	}
	return lhs, nil
}

func (p *cparser) parseAnd() (Expr, error) {
	lhs, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.at(tAndAnd) {
		pos := p.adv().pos
		rhs, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase{P: pos}, OpAnd, lhs, rhs}
	}
	return lhs, nil
}

func (p *cparser) parseEquality() (Expr, error) {
	lhs, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	for p.at(tEq) || p.at(tNe) {
		op := OpEq
		if p.at(tNe) {
			op = OpNe
		}
		pos := p.adv().pos
		rhs, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase{P: pos}, op, lhs, rhs}
	}
	return lhs, nil
}

func (p *cparser) parseRel() (Expr, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.cur().kind {
		case tLt:
			op = OpLt
		case tGt:
			op = OpGt
		case tLe:
			op = OpLe
		case tGe:
			op = OpGe
		default:
			return lhs, nil
		}
		pos := p.adv().pos
		rhs, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase{P: pos}, op, lhs, rhs}
	}
}

func (p *cparser) parseAdd() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tPlus) || p.at(tMinus) {
		op := OpAdd
		if p.at(tMinus) {
			op = OpSub
		}
		pos := p.adv().pos
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase{P: pos}, op, lhs, rhs}
	}
	return lhs, nil
}

func (p *cparser) parseUnary() (Expr, error) {
	var op UnaryOp
	switch p.cur().kind {
	case tStar:
		op = OpDeref
	case tAmp:
		op = OpAddr
	case tBang:
		op = OpNot
	case tMinus:
		op = OpNeg
	default:
		return p.parsePostfix()
	}
	pos := p.adv().pos
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return &Unary{exprBase{P: pos}, op, x}, nil
}

func (p *cparser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tArrow:
			pos := p.adv().pos
			name, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			x = &Field{exprBase{P: pos}, x, name.text, true}
		case tDot:
			pos := p.adv().pos
			name, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			x = &Field{exprBase{P: pos}, x, name.text, false}
		case tLParen:
			pos := p.adv().pos
			call := &Call{exprBase: exprBase{P: pos}, Fun: x}
			for !p.at(tRParen) {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.at(tComma) {
					p.adv()
				} else if !p.at(tRParen) {
					return nil, p.errf("expected ',' or ')' in argument list")
				}
			}
			p.adv()
			x = call
		default:
			return x, nil
		}
	}
}

func (p *cparser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.adv()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, &ParseError{t.pos, "integer literal out of range"}
		}
		return &IntLit{exprBase{P: t.pos}, v}, nil
	case tKwNull:
		p.adv()
		return &NullLit{exprBase{P: t.pos}}, nil
	case tIdent:
		p.adv()
		return &VarRef{exprBase: exprBase{P: t.pos}, Name: t.text}, nil
	case tKwMalloc:
		p.adv()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tKwSizeof); err != nil {
			return nil, err
		}
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		ty := p.parsePointerSuffix(base)
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		p.mallocSite++
		return &Malloc{exprBase{P: t.pos}, ty, p.mallocSite}, nil
	case tLParen:
		// Cast if '(' is followed by a type keyword; otherwise a
		// parenthesized expression.
		if p.toks[p.i+1].kind == tKwInt || p.toks[p.i+1].kind == tKwVoid ||
			p.toks[p.i+1].kind == tKwStruct || p.toks[p.i+1].kind == tKwFnptr {
			p.adv()
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			ty := p.parsePointerSuffix(base)
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Cast{exprBase{P: t.pos}, ty, x}, nil
		}
		p.adv()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected expression, found %s", kindNames[t.kind])
}
