package cgen

import (
	"strings"
	"testing"

	"mix/internal/engine"
	"mix/internal/mixy"
)

// TestPipelineMatchesDirectSolver is the differential property test for
// the persistent-state executor and the incremental solver pipeline:
// for randomly generated programs, the engine-backed analysis —
// incremental path conditions, interval fast paths, independence
// slicing, counterexample cache, memo table, and (workers>1) parallel
// exploration — must produce byte-identical warnings to the plain
// sequential analysis, which solves each monolithic pc.Formula()
// directly. Any unsound rewrite, slicing bug, stale cache hit, or
// nondeterministic join shows up as a diff. Run under -race this also
// exercises the persistent structures across workers.
func TestPipelineMatchesDirectSolver(t *testing.T) {
	const programs = 120
	cfg := DefaultConfig()
	cfg.SymbolicEntry = true
	gen := New(0xD1FF, cfg)

	engines := []struct {
		name string
		mk   func() *engine.Engine
	}{
		{"workers=1", func() *engine.Engine { return engine.New(engine.Options{Workers: 1}) }},
		{"workers=4", func() *engine.Engine { return engine.New(engine.Options{Workers: 4}) }},
		{"workers=1,nomemo", func() *engine.Engine { return engine.New(engine.Options{Workers: 1, NoMemo: true}) }},
	}

	diverse := 0
	for i := 0; i < programs; i++ {
		src := gen.Program()
		base, err := mixy.Run(mustParse(src), mixy.Options{StrictInit: true})
		if err != nil {
			t.Fatalf("program %d: direct run failed: %v\n%s", i, err, src)
		}
		want := warningText(base)
		if len(base.Warnings) > 0 {
			diverse++
		}
		for _, e := range engines {
			a, err := mixy.Run(mustParse(src), mixy.Options{StrictInit: true, Engine: e.mk()})
			if err != nil {
				t.Fatalf("program %d (%s): engine run failed: %v\n%s", i, e.name, err, src)
			}
			if got := warningText(a); got != want {
				t.Fatalf("program %d (%s): warnings diverge\ndirect:\n%s\npipeline:\n%s\nprogram:\n%s",
					i, e.name, want, got, src)
			}
		}
	}
	if diverse < 10 {
		t.Fatalf("only %d of %d programs produced warnings; property too weak", diverse, programs)
	}
}

func warningText(a *mixy.Analysis) string {
	out := make([]string, len(a.Warnings))
	for i, w := range a.Warnings {
		out[i] = w.String()
	}
	return strings.Join(out, "\n")
}
