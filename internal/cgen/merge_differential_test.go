package cgen

import (
	"sort"
	"strings"
	"testing"

	"mix/internal/engine"
	"mix/internal/mixy"
)

// TestMergeModesMatchForking is the differential property test for
// veritesting-style state merging (DESIGN.md section 12): for randomly
// generated MicroC programs, analyses run with -merge joins and -merge
// aggressive must report exactly the warnings the pure-forking analysis
// reports. Merging collapses the two arms of a conditional into one
// guarded state, so a merged flow visits statements once where forking
// visits them once per path; the warning SET must be unchanged even
// though the emission order can differ, hence the sorted comparison.
// Any guard mixed up during a join, a cell merged against the wrong
// arm, or an ite the solver mishandles shows up as a missing or extra
// warning. Run under -race this also exercises merging against the
// engine's parallel solver pool.
func TestMergeModesMatchForking(t *testing.T) {
	const programs = 120
	cfg := DefaultConfig()
	cfg.SymbolicEntry = true
	gen := New(0xD1FF, cfg)

	modes := []struct {
		name string
		opts mixy.Options
	}{
		{"joins", mixy.Options{StrictInit: true, Merge: engine.MergeJoins}},
		{"aggressive", mixy.Options{StrictInit: true, Merge: engine.MergeAggressive}},
	}

	diverse, merges := 0, 0
	for i := 0; i < programs; i++ {
		src := gen.Program()
		base, err := mixy.Run(mustParse(src), mixy.Options{StrictInit: true})
		if err != nil {
			t.Fatalf("program %d: forking run failed: %v\n%s", i, err, src)
		}
		want := sortedWarningText(base)
		if len(base.Warnings) > 0 {
			diverse++
		}
		for _, m := range modes {
			a, err := mixy.Run(mustParse(src), m.opts)
			if err != nil {
				t.Fatalf("program %d (%s): merged run failed: %v\n%s", i, m.name, err, src)
			}
			if got := sortedWarningText(a); got != want {
				t.Fatalf("program %d (%s): warnings diverge\nforking:\n%s\nmerged:\n%s\nprogram:\n%s",
					i, m.name, want, got, src)
			}
			if m.name == "joins" {
				merges += a.Exec.Stats.Merges
			}
		}
		// Merging must also agree when solver queries route through the
		// engine's memoizing pool — merged PCs carry disjunctions and
		// ite-defined variables the sequential path never builds, so the
		// memo/cex-cache keys see genuinely new shapes here.
		eng := engine.New(engine.Options{Workers: 4})
		a, err := mixy.Run(mustParse(src), mixy.Options{
			StrictInit: true, Merge: engine.MergeJoins, Engine: eng,
		})
		eng.Close()
		if err != nil {
			t.Fatalf("program %d (joins+engine): run failed: %v\n%s", i, err, src)
		}
		if got := sortedWarningText(a); got != want {
			t.Fatalf("program %d (joins+engine): warnings diverge\nforking:\n%s\nmerged:\n%s\nprogram:\n%s",
				i, got, want, src)
		}
	}
	if diverse < 10 {
		t.Fatalf("only %d of %d programs produced warnings; property too weak", diverse, programs)
	}
	if merges == 0 {
		t.Fatal("no program triggered a join-point merge; property is vacuous")
	}
	t.Logf("%d programs, %d with warnings, %d joins-mode merges", programs, diverse, merges)
}

func sortedWarningText(a *mixy.Analysis) string {
	out := make([]string, len(a.Warnings))
	for i, w := range a.Warnings {
		out[i] = w.String()
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}
