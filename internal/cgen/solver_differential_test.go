package cgen

import (
	"testing"

	"mix/internal/engine"
	"mix/internal/mixy"
	"mix/internal/solver"
)

// TestSearchCoresMatchOnGeneratedC: MIXY warnings over generated C
// programs must be byte-identical under every -solver setting — the
// CDCL core with its incremental assumption stacks, the legacy DPLL
// oracle, and the portfolio racer — both with a direct per-run solver
// and through the engine's pooled incremental solvers. Any learned
// clause that survives where it shouldn't, any assumption that leaks
// across a pop, any portfolio race that is not verdict-deterministic
// shows up here as a warning diff.
func TestSearchCoresMatchOnGeneratedC(t *testing.T) {
	const programs = 60
	cfg := DefaultConfig()
	cfg.SymbolicEntry = true
	gen := New(0xCDC2, cfg)
	algos := []solver.Algo{solver.AlgoCDCL, solver.AlgoDPLL, solver.AlgoPortfolio}

	diverse := 0
	for i := 0; i < programs; i++ {
		src := gen.Program()
		base, err := mixy.Run(mustParse(src), mixy.Options{StrictInit: true})
		if err != nil {
			t.Fatalf("program %d: default run failed: %v\n%s", i, err, src)
		}
		want := warningText(base)
		if len(base.Warnings) > 0 {
			diverse++
		}
		for _, a := range algos {
			direct, err := mixy.Run(mustParse(src), mixy.Options{
				StrictInit: true,
				Solver:     solver.Config{Algo: a},
			})
			if err != nil {
				t.Fatalf("program %d (%v direct): %v\n%s", i, a, err, src)
			}
			if got := warningText(direct); got != want {
				t.Fatalf("program %d (%v direct): warnings diverge\ndefault:\n%s\ngot:\n%s\nprogram:\n%s",
					i, a, want, got, src)
			}

			eng := engine.New(engine.Options{Workers: 4, SolverAlgo: a})
			pooled, err := mixy.Run(mustParse(src), mixy.Options{StrictInit: true, Engine: eng})
			eng.Close()
			if err != nil {
				t.Fatalf("program %d (%v engine): %v\n%s", i, a, err, src)
			}
			if got := warningText(pooled); got != want {
				t.Fatalf("program %d (%v engine): warnings diverge\ndefault:\n%s\ngot:\n%s\nprogram:\n%s",
					i, a, want, got, src)
			}
		}
	}
	if diverse < 5 {
		t.Fatalf("only %d of %d programs produced warnings; property too weak", diverse, programs)
	}
}
