package cgen

import (
	"errors"
	"testing"

	"mix/internal/cexec"
	"mix/internal/microc"
	"mix/internal/mixy"
)

// TestDifferentialSoundness: generated programs are deterministic, so
// one concrete run decides whether the nonnull sink is violated. Every
// concretely-crashing program must be flagged by MIXY — in pure-types
// mode AND with the symbolic entry annotation. This is the MIXY
// analogue of the core system's Theorem-1 property tests.
func TestDifferentialSoundness(t *testing.T) {
	const programs = 250
	for _, symbolic := range []bool{false, true} {
		symbolic := symbolic
		name := "typed-entry"
		if symbolic {
			name = "symbolic-entry"
		}
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.SymbolicEntry = symbolic
			gen := New(0xFEED, cfg)
			crashes, cleanRuns, warned := 0, 0, 0
			for i := 0; i < programs; i++ {
				src := gen.Program()
				prog, err := microc.Parse(src)
				if err != nil {
					t.Fatalf("generated program does not parse: %v\n%s", err, src)
				}
				ip := cexec.New(prog, 1)
				_, runErr := ip.Run("main")
				crashed := errors.Is(runErr, cexec.ErrNullDeref)
				if runErr != nil && !crashed {
					t.Fatalf("unexpected runtime error: %v\n%s", runErr, src)
				}
				// StrictInit matches the concrete semantics: a global
				// without an initializer really is null at startup.
				a, err := mixy.Run(prog, mixy.Options{StrictInit: true})
				if err != nil {
					t.Fatalf("mixy failed: %v\n%s", err, src)
				}
				if crashed {
					crashes++
					if len(a.Warnings) == 0 {
						t.Fatalf("UNSOUND: program crashes concretely but MIXY is silent:\n%s", src)
					}
					warned++
				} else {
					cleanRuns++
				}
			}
			if crashes < 20 || cleanRuns < 20 {
				t.Fatalf("distribution too skewed: %d crashes, %d clean", crashes, cleanRuns)
			}
			t.Logf("%s: %d crashing programs (all warned), %d clean", name, crashes, cleanRuns)
		})
	}
}

// TestDifferentialPrecision: on clean programs, the symbolic-entry
// analysis should warn no more often than pure qualifier inference
// (it prunes infeasible flows, never adds them for this program
// family).
func TestDifferentialPrecision(t *testing.T) {
	const programs = 150
	cfg := DefaultConfig()
	cfg.SymbolicEntry = true
	gen := New(0xBEEF, cfg)
	pureFP, mixFP, clean := 0, 0, 0
	for i := 0; i < programs; i++ {
		src := gen.Program()
		prog := mustParse(src)
		ip := cexec.New(prog, 1)
		if _, runErr := ip.Run("main"); runErr != nil {
			continue // only clean programs measure false positives
		}
		clean++
		pure, err := mixy.Run(prog, mixy.Options{IgnoreAnnotations: true, StrictInit: true})
		if err != nil {
			t.Fatal(err)
		}
		mixed, err := mixy.Run(mustParse(src), mixy.Options{StrictInit: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(pure.Warnings) > 0 {
			pureFP++
		}
		if len(mixed.Warnings) > 0 {
			mixFP++
		}
	}
	if clean < 20 {
		t.Fatalf("only %d clean programs", clean)
	}
	if mixFP > pureFP {
		t.Fatalf("MIXY produced more false positives than pure inference: %d vs %d of %d",
			mixFP, pureFP, clean)
	}
	if mixFP >= pureFP {
		t.Logf("note: no precision gain measured on this family (mix %d vs pure %d of %d)", mixFP, pureFP, clean)
	} else {
		t.Logf("false-positive programs: pure %d, MIXY %d of %d clean", pureFP, mixFP, clean)
	}
}

// TestGeneratedProgramsPrintRoundTrip: generated programs survive the
// MicroC printer (print→parse→print fixed point), and the reprinted
// program analyzes identically.
func TestGeneratedProgramsPrintRoundTrip(t *testing.T) {
	gen := New(77, DefaultConfig())
	for i := 0; i < 50; i++ {
		src := gen.Program()
		p1 := mustParse(src)
		printed := microc.Print(p1)
		p2, err := microc.Parse(printed)
		if err != nil {
			t.Fatalf("reprint does not parse: %v\n%s", err, printed)
		}
		if microc.Print(p2) != printed {
			t.Fatalf("not a fixed point:\n%s", printed)
		}
		a1, err := mixy.Run(p1, mixy.Options{StrictInit: true})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := mixy.Run(p2, mixy.Options{StrictInit: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(a1.Warnings) != len(a2.Warnings) {
			t.Fatalf("analysis differs after reprint: %d vs %d warnings",
				len(a1.Warnings), len(a2.Warnings))
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := New(9, DefaultConfig())
	b := New(9, DefaultConfig())
	for i := 0; i < 20; i++ {
		if a.Program() != b.Program() {
			t.Fatal("same seed must generate identical programs")
		}
	}
}

// mustParse parses a MicroC test fixture, panicking on error; the
// library itself reports parse errors through the normal return path,
// fixtures are expected to be valid.
func mustParse(src string) *microc.Program {
	prog, err := microc.Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
