// Package cgen generates random MicroC programs in the null-pointer
// idiom space of the case study: pointer globals that are nulled,
// reallocated, aliased, guarded, and passed to a nonnull sink. The
// programs are deterministic (no extern calls), so a single concrete
// run decides whether a null-pointer violation is real — giving a
// differential soundness oracle for MIXY:
//
//	concrete crash  ⇒  MIXY must warn.
package cgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config tunes generation.
type Config struct {
	// Pointers is the number of pointer globals.
	Pointers int
	// Stmts is the number of statements in the entry function.
	Stmts int
	// SymbolicEntry marks the body MIX(symbolic) via a helper.
	SymbolicEntry bool
	// IntHelpers, when positive, adds that many int-only helper
	// functions (inside the summarizable fragment of DESIGN.md section
	// 14), two int globals feeding them, and body statements that gate
	// null-pointer flows on helper calls — so function-summary
	// instantiation decides the reachability of real warnings. Zero
	// keeps the historical statement stream byte-identical.
	IntHelpers int
}

// DefaultConfig returns a balanced configuration.
func DefaultConfig() Config {
	return Config{Pointers: 3, Stmts: 8}
}

// Gen generates programs.
type Gen struct {
	r   *rand.Rand
	cfg Config
}

// New returns a generator.
func New(seed int64, cfg Config) *Gen {
	return &Gen{r: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Program generates one MicroC program with a nonnull sink and the
// configured number of pointer manipulations.
func (g *Gen) Program() string {
	var b strings.Builder
	b.WriteString("void sink(int *nonnull q) MIX(typed) { return; }\n")
	for i := 0; i < g.cfg.Pointers; i++ {
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&b, "int *g%d;\n", i) // zero-initialized: null
		} else {
			fmt.Fprintf(&b, "int *g%d = NULL;\n", i)
		}
	}
	if g.cfg.IntHelpers > 0 {
		b.WriteString("int x0;\nint x1;\n")
		for i := 0; i < g.cfg.IntHelpers; i++ {
			fmt.Fprintf(&b, "int f%d(int a, int b) {\n", i)
			fmt.Fprintf(&b, "  if (a < b) { return a + %d; }\n", g.r.Intn(5)+1)
			fmt.Fprintf(&b, "  return b - %d;\n}\n", g.r.Intn(5)+1)
		}
	}
	kinds := 6
	if g.cfg.IntHelpers > 0 {
		kinds = 9
	}
	body := &strings.Builder{}
	for s := 0; s < g.cfg.Stmts; s++ {
		i := g.r.Intn(g.cfg.Pointers)
		switch g.r.Intn(kinds) {
		case 0:
			fmt.Fprintf(body, "  g%d = NULL;\n", i)
		case 1:
			fmt.Fprintf(body, "  g%d = malloc(sizeof(int));\n", i)
		case 2:
			fmt.Fprintf(body, "  if (g%d != NULL) { sink(g%d); }\n", i, i)
		case 3:
			fmt.Fprintf(body, "  sink(g%d);\n", i)
		case 4:
			j := g.r.Intn(g.cfg.Pointers)
			fmt.Fprintf(body, "  g%d = g%d;\n", i, j)
		case 5:
			fmt.Fprintf(body, "  if (g%d == NULL) { g%d = malloc(sizeof(int)); }\n", i, i)
		case 6:
			fmt.Fprintf(body, "  x%d = f%d(x0, x1);\n", g.r.Intn(2), g.r.Intn(g.cfg.IntHelpers))
		case 7:
			fmt.Fprintf(body, "  if (f%d(x%d, x%d) < %d) { sink(g%d); }\n",
				g.r.Intn(g.cfg.IntHelpers), g.r.Intn(2), g.r.Intn(2), g.r.Intn(7), i)
		case 8:
			fmt.Fprintf(body, "  if (f%d(x%d, x%d) < %d) { g%d = malloc(sizeof(int)); } else { g%d = NULL; }\n",
				g.r.Intn(g.cfg.IntHelpers), g.r.Intn(2), g.r.Intn(2), g.r.Intn(7), i, i)
		}
	}
	if g.cfg.SymbolicEntry {
		b.WriteString("void work(void) MIX(symbolic) {\n")
		b.WriteString(body.String())
		b.WriteString("}\n")
		b.WriteString("int main(void) {\n  work();\n  return 0;\n}\n")
	} else {
		b.WriteString("int main(void) {\n")
		b.WriteString(body.String())
		b.WriteString("  return 0;\n}\n")
	}
	return b.String()
}
