package cgen

import (
	"testing"

	"mix/internal/engine"
	"mix/internal/mixy"
	"mix/internal/summary"
)

// TestSummariesMatchInline is the differential property test for
// compositional function summaries (DESIGN.md section 14): for
// randomly generated MicroC programs whose null-pointer flows are
// gated on calls to int-only helpers, analyses that answer those
// calls from summaries must report exactly the warnings the inlining
// analysis reports — with merging off (per-arm instantiation forks
// like a call would), with joins-mode merging (single ite-folded
// instantiation), through the parallel engine, and with the summaries
// loaded back from a disk store instead of freshly computed. A guard
// instantiated with the wrong actual, an arm lost to merging, or a
// codec round-trip that altered a term all show up as a missing or
// extra warning. Run under -race this also exercises the shared store
// against the engine's solver pool.
func TestSummariesMatchInline(t *testing.T) {
	const programs = 120
	cfg := DefaultConfig()
	cfg.SymbolicEntry = true
	cfg.IntHelpers = 2
	gen := New(0xD1FF, cfg)

	dir := t.TempDir()
	diverse := 0
	var instantiated, diskHits int64
	for i := 0; i < programs; i++ {
		src := gen.Program()
		base, err := mixy.Run(mustParse(src), mixy.Options{StrictInit: true})
		if err != nil {
			t.Fatalf("program %d: inline run failed: %v\n%s", i, err, src)
		}
		want := sortedWarningText(base)
		if len(base.Warnings) > 0 {
			diverse++
		}

		baseJoins, err := mixy.Run(mustParse(src), mixy.Options{StrictInit: true, Merge: engine.MergeJoins})
		if err != nil {
			t.Fatalf("program %d: inline joins run failed: %v\n%s", i, err, src)
		}
		wantJoins := sortedWarningText(baseJoins)

		// Each leg precomputes on its own parse: summaries are keyed by
		// *FuncDef identity, so the table and the run must share one AST.
		legs := []struct {
			name  string
			store *summary.Store
			merge engine.MergeMode
			want  string
		}{
			{"summaries-off", summary.NewStore(""), engine.MergeOff, want},
			{"summaries-joins", summary.NewStore(""), engine.MergeJoins, wantJoins},
			{"summaries-disk-cold", summary.NewStore(dir), engine.MergeJoins, wantJoins},
			{"summaries-disk-warm", summary.NewStore(dir), engine.MergeJoins, wantJoins},
		}
		for _, leg := range legs {
			prog := mustParse(src)
			ps := leg.store.Precompute(prog, 0)
			a, err := mixy.Run(prog, mixy.Options{StrictInit: true, Merge: leg.merge, Summaries: ps})
			if err != nil {
				t.Fatalf("program %d (%s): run failed: %v\n%s", i, leg.name, err, src)
			}
			if got := sortedWarningText(a); got != leg.want {
				t.Fatalf("program %d (%s): warnings diverge\ninline:\n%s\nsummaries:\n%s\nprogram:\n%s",
					i, leg.name, leg.want, got, src)
			}
			instantiated += ps.Instantiated()
			if leg.name == "summaries-disk-warm" {
				diskHits += int64(ps.DiskHits)
			}
		}

		// Summaries must also agree when the instantiated guards'
		// feasibility checks route through the engine's memoizing pool.
		prog := mustParse(src)
		ps := summary.NewStore("").Precompute(prog, 0)
		eng := engine.New(engine.Options{Workers: 4})
		a, err := mixy.Run(prog, mixy.Options{
			StrictInit: true, Merge: engine.MergeJoins, Summaries: ps, Engine: eng,
		})
		eng.Close()
		if err != nil {
			t.Fatalf("program %d (summaries+engine): run failed: %v\n%s", i, err, src)
		}
		if got := sortedWarningText(a); got != wantJoins {
			t.Fatalf("program %d (summaries+engine): warnings diverge\ninline:\n%s\nsummaries:\n%s\nprogram:\n%s",
				i, wantJoins, got, src)
		}
	}
	if diverse < 10 {
		t.Fatalf("only %d of %d programs produced warnings; property too weak", diverse, programs)
	}
	if instantiated == 0 {
		t.Fatal("no call site instantiated a summary; property is vacuous")
	}
	if diskHits == 0 {
		t.Fatal("warm legs never hit the disk store; persistence untested")
	}
	t.Logf("%d programs, %d with warnings, %d instantiations, %d disk hits", programs, diverse, instantiated, diskHits)
}
