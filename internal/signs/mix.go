package signs

import (
	"fmt"

	"mix/internal/lang"
	"mix/internal/solver"
	"mix/internal/sym"
	"mix/internal/types"
)

// Mixer mixes the sign type system with the unmodified symbolic
// executor of internal/sym. Compare with internal/core: only the
// translations at the block boundaries differ.
type Mixer struct {
	signs *Checker
	exec  *sym.Executor
	solv  *solver.Solver
	// facts are sign constraints injected by seSignBlock on fresh
	// result variables. They are assumptions (true of the concrete
	// values the variables abstract), not branch choices, so the
	// exhaustiveness check holds relative to them: each fact mentions
	// only its own fresh variable, so conjoining all of them never
	// constrains an unrelated path.
	facts []sym.Val
	// Reports collects discarded and confirmed findings, as in core.
	Reports []string
}

// NewMixer builds a mixed sign analysis.
func NewMixer() *Mixer {
	m := &Mixer{solv: solver.New()}
	m.signs = &Checker{SymBlock: m.tSymBlock}
	m.exec = sym.NewExecutor()
	m.exec.TypBlock = m.seSignBlock
	return m
}

// Check analyzes e with the outermost scope as a sign-typed block.
func (m *Mixer) Check(env *Env, e lang.Expr) (Type, error) {
	return m.signs.Check(env, e)
}

// CheckSymbolic analyzes e with the outermost scope as a symbolic
// block.
func (m *Mixer) CheckSymbolic(env *Env, e lang.Expr) (Type, error) {
	return m.tSymBlock(env, e)
}

// Solver exposes the underlying solver (statistics).
func (m *Mixer) Solver() *solver.Solver { return m.solv }

// baseOf strips signs to the base type of the executor's world.
func baseOf(t Type) types.Type {
	switch t := t.(type) {
	case IntType:
		return types.Int
	case BoolType:
		return types.Bool
	case RefType:
		return types.Ref(baseOf(t.Elem))
	}
	return types.Int
}

// fromBase rebuilds a sign type from a base type, assigning sign s to
// a top-level int and Top everywhere else.
func fromBase(t types.Type, s Sign) (Type, error) {
	switch t := t.(type) {
	case types.IntType:
		return Int(s), nil
	case types.BoolType:
		return Bool, nil
	case types.RefType:
		elem, err := fromBase(t.Elem, Top)
		if err != nil {
			return nil, err
		}
		return RefType{elem}, nil
	}
	return nil, fmt.Errorf("signs: base type %s outside the sign system", t)
}

// constraintVal builds the symbolic guard asserting that v has sign s.
func constraintVal(v sym.Val, s Sign) sym.Val {
	zero := sym.IntVal(0)
	switch s {
	case Pos:
		return sym.Val{U: sym.LtOp{X: zero, Y: v}, T: types.Bool}
	case Zero:
		return sym.Val{U: sym.EqOp{X: v, Y: zero}, T: types.Bool}
	case Neg:
		return sym.Val{U: sym.LtOp{X: v, Y: zero}, T: types.Bool}
	}
	return sym.TrueVal
}

// deriveSign asks the solver which sign the path condition forces on
// an integer value — the symbolic-to-signs translation.
func (m *Mixer) deriveSign(guard sym.Val, v sym.Val) (Sign, error) {
	tr := sym.NewTranslator()
	g, err := tr.Formula(guard)
	if err != nil {
		return Top, err
	}
	t, err := tr.Term(v)
	if err != nil {
		return Top, err
	}
	zero := solver.IntConst{Val: 0}
	candidates := []struct {
		s Sign
		f solver.Formula
	}{
		{Pos, solver.Gt(t, zero)},
		{Zero, solver.Eq{X: t, Y: zero}},
		{Neg, solver.Lt{X: t, Y: zero}},
	}
	for _, c := range candidates {
		counter, err := m.solv.Sat(solver.Conj(g, tr.Sides(), solver.NewNot(c.f)))
		if err != nil {
			return Top, err
		}
		if !counter {
			return c.s, nil
		}
	}
	return Top, nil
}

// tSymBlock is TSYMBLOCK for the sign system: environment signs enter
// as initial path constraints; path-result signs come back from the
// solver and are joined.
func (m *Mixer) tSymBlock(env *Env, e lang.Expr) (Type, error) {
	senv := sym.EmptyEnv()
	initGuard := sym.TrueVal
	for _, name := range env.Names() {
		st, _ := env.Lookup(name)
		v := m.exec.Fresh.Var(baseOf(st), name)
		senv = senv.Extend(name, v)
		if it, ok := st.(IntType); ok && it.S != Top {
			initGuard = sym.MkAnd(initGuard, constraintVal(v, it.S))
		}
	}
	state := sym.State{Guard: initGuard, Mem: m.exec.Fresh.Memory()}
	results, err := m.exec.Run(senv, state, e)
	if err != nil {
		return nil, err
	}

	var okResults []sym.Result
	for _, r := range results {
		if r.Err == nil {
			okResults = append(okResults, r)
			continue
		}
		feasible, ferr := m.feasible(r.Err.State.Guard)
		if ferr != nil {
			return nil, ferr
		}
		if feasible {
			m.Reports = append(m.Reports, "error: "+r.Err.Error())
			return nil, &Error{r.Err.Pos, r.Err.Msg}
		}
		m.Reports = append(m.Reports, "discarded (infeasible path): "+r.Err.Error())
	}
	if len(okResults) == 0 {
		return nil, &Error{e.Pos(), "symbolic block has no surviving execution paths"}
	}

	// Base shapes must agree; int results get per-path signs joined.
	base := okResults[0].Val.T
	for _, r := range okResults[1:] {
		if !types.Equal(r.Val.T, base) {
			return nil, &Error{e.Pos(),
				fmt.Sprintf("symbolic block paths disagree on shape: %s vs %s", base, r.Val.T)}
		}
	}
	for _, r := range okResults {
		if err := sym.MemOK(r.State.Mem); err != nil {
			feasible, ferr := m.feasible(r.State.Guard)
			if ferr != nil {
				return nil, ferr
			}
			if feasible {
				return nil, &Error{e.Pos(), fmt.Sprintf("memory inconsistent at end of symbolic block: %v", err)}
			}
		}
	}

	// Exhaustiveness relative to the initial sign constraints and the
	// facts injected for sign-block results:
	// init ∧ facts → g1 ∨ ... ∨ gn must be valid.
	tr := sym.NewTranslator()
	init, err := tr.Formula(initGuard)
	if err != nil {
		return nil, err
	}
	for _, f := range m.facts {
		ff, err := tr.Formula(f)
		if err != nil {
			return nil, err
		}
		init = solver.NewAnd(init, ff)
	}
	var guards []solver.Formula
	for _, r := range okResults {
		g, err := tr.Formula(r.State.Guard)
		if err != nil {
			return nil, err
		}
		guards = append(guards, g)
	}
	counter, err := m.solv.Sat(solver.Conj(init, solver.NewNot(solver.Disj(guards...)), tr.Sides()))
	if err != nil {
		return nil, err
	}
	if counter {
		return nil, &Error{e.Pos(), "symbolic block executions are not exhaustive"}
	}

	// Join the per-path signs of an integer result.
	sign := Zero
	first := true
	if types.Equal(base, types.Int) {
		for _, r := range okResults {
			s, err := m.deriveSign(r.State.Guard, r.Val)
			if err != nil {
				return nil, err
			}
			if first {
				sign, first = s, false
			} else {
				sign = Join(sign, s)
			}
		}
	}
	return fromBase(base, sign)
}

// seSignBlock is SETYPBLOCK for the sign system: environment values
// get signs refined from the current path condition; the result's sign
// is asserted back into the path condition.
func (m *Mixer) seSignBlock(env *sym.Env, st sym.State, e lang.Expr) (sym.Result, error) {
	genv := EmptyEnv()
	for _, name := range env.Names() {
		v, _ := env.Lookup(name)
		var ty Type
		if types.Equal(v.T, types.Int) {
			s, err := m.deriveSign(st.Guard, v)
			if err != nil {
				return sym.Result{}, err
			}
			ty = Int(s)
		} else {
			var err error
			ty, err = fromBase(v.T, Top)
			if err != nil {
				// Values outside the sign system (e.g. closures) are
				// simply not bound; using them in the block errors.
				continue
			}
		}
		genv = genv.Extend(name, ty)
	}
	if err := sym.MemOK(st.Mem); err != nil {
		return sym.Result{State: st, Err: &sym.PathError{
			Pos: e.Pos(), Msg: fmt.Sprintf("memory inconsistent entering sign block: %v", err), State: st,
		}}, nil
	}
	ty, err := m.signs.Check(genv, e)
	if err != nil {
		return sym.Result{State: st, Err: &sym.PathError{
			Pos: e.Pos(), Msg: err.Error(), State: st,
		}}, nil
	}
	out := st
	out.Mem = m.exec.Fresh.Memory()
	fresh := m.exec.Fresh.Var(baseOf(ty), "signblock")
	// The richer back-translation: the sign becomes a constraint, both
	// on this path's guard and as a recorded fact for exhaustiveness.
	if it, ok := ty.(IntType); ok && it.S != Top {
		fact := constraintVal(fresh, it.S)
		out.Guard = sym.MkAnd(out.Guard, fact)
		m.facts = append(m.facts, fact)
	}
	return sym.Result{State: out, Val: fresh}, nil
}

func (m *Mixer) feasible(g sym.Val) (bool, error) {
	tr := sym.NewTranslator()
	f, err := tr.Formula(g)
	if err != nil {
		return false, err
	}
	return m.solv.Sat(solver.NewAnd(f, tr.Sides()))
}
