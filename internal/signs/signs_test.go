package signs

import (
	"strings"
	"testing"

	"mix/internal/lang"
)

func checkSigns(t *testing.T, src string, env *Env) (Type, error) {
	t.Helper()
	m := NewMixer()
	return m.Check(env, lang.MustParse(src))
}

func wantSign(t *testing.T, src string, env *Env, want Type) {
	t.Helper()
	ty, err := checkSigns(t, src, env)
	if err != nil {
		t.Fatalf("Check(%q): %v", src, err)
	}
	if !Equal(ty, want) {
		t.Fatalf("Check(%q) = %s, want %s", src, ty, want)
	}
}

func wantSignErr(t *testing.T, src string, env *Env, frag string) {
	t.Helper()
	_, err := checkSigns(t, src, env)
	if err == nil {
		t.Fatalf("Check(%q) succeeded, want error with %q", src, frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("Check(%q) error %q, want %q", src, err, frag)
	}
}

func TestLiteralSigns(t *testing.T) {
	wantSign(t, "3", nil, Int(Pos))
	wantSign(t, "0", nil, Int(Zero))
	wantSign(t, "-2", nil, Int(Neg))
	wantSign(t, "true", nil, Bool)
}

func TestPlusTable(t *testing.T) {
	wantSign(t, "1 + 2", nil, Int(Pos))
	wantSign(t, "-1 + -2", nil, Int(Neg))
	wantSign(t, "0 + 0", nil, Int(Zero))
	wantSign(t, "1 + 0", nil, Int(Pos))
	wantSign(t, "-1 + 0", nil, Int(Neg))
	wantSign(t, "1 + -1", nil, Int(Top)) // pos + neg is unknown
}

func TestJoinInConditionals(t *testing.T) {
	env := EmptyEnv().Extend("b", Bool)
	wantSign(t, "if b then 1 else 2", env, Int(Pos))
	wantSign(t, "if b then 1 else -2", env, Int(Top))
	wantSign(t, "if b then 0 else 0", env, Int(Zero))
}

func TestLattice(t *testing.T) {
	if Join(Pos, Pos) != Pos || Join(Pos, Neg) != Top || Join(Zero, Top) != Top {
		t.Fatal("Join broken")
	}
	if !Leq(Pos, Top) || Leq(Top, Pos) || !Leq(Neg, Neg) {
		t.Fatal("Leq broken")
	}
}

func TestShapeErrors(t *testing.T) {
	wantSignErr(t, "1 + true", nil, "right operand of +")
	wantSignErr(t, "not 3", nil, "operand of not")
	wantSignErr(t, "fun x -> x", nil, "does not cover functions")
	wantSignErr(t, "x", nil, "unbound variable")
}

func TestRefsWidenSigns(t *testing.T) {
	// References carry unknown-signed storage, so any int may be
	// written, and reads are unknown.
	wantSign(t, "let r = ref 1 in let _ = r := -5 in !r", nil, Int(Top))
}

func TestSymBlockRefinesResult(t *testing.T) {
	// The mixed analysis derives the result's sign via the solver:
	// every path returns a positive value.
	env := EmptyEnv().Extend("b", Bool)
	wantSign(t, "{s if b then 1 else 2 s}", env, Int(Pos))
	wantSign(t, "{s if b then 1 else -1 s}", env, Int(Top))
	wantSign(t, "{s 0 + 0 s}", nil, Int(Zero))
}

func TestSignConstraintsEnterSymBlock(t *testing.T) {
	// x : pos int enters the block as α with α > 0, so x + 1 is
	// provably positive even though the sign table alone would say so
	// too; more interestingly, x + -1 is Top for the table but the
	// block can refine under a test.
	env := EmptyEnv().Extend("x", Int(Pos))
	wantSign(t, "{s x + 1 s}", env, Int(Pos))
	// The paper's refinement: testing 1 < x makes x + -1 positive on
	// that path; the else path yields zero (x must be 1 when pos and
	// not 1 < x); the join is Top only if signs differ — here they do.
	wantSign(t, "{s if 1 < x then x + -1 else 0 s}", env, Int(Top))
	// All paths positive:
	wantSign(t, "{s if 1 < x then x + -1 + 1 else x s}", env, Int(Pos))
}

func TestSignBlockInsideSymbolic(t *testing.T) {
	// The paper's Section 2 example shape: a symbolic split on the
	// sign of an unknown int, with sign-typed blocks per arm seeing
	// the refined sign.
	env := EmptyEnv().Extend("x", Int(Top))
	good := `{s if 0 < x then {t x t} else (if x = 0 then {t 1 t} else {t 2 t}) s}`
	// In the first arm x is refined to pos int inside the sign block,
	// so the whole block is pos on every path.
	wantSign(t, good, env, Int(Pos))
}

func TestRefinementVisibleInsideBlock(t *testing.T) {
	// Inside {t ... t} under the 0 < x branch, x itself has type
	// pos int — returning it directly proves the refinement worked.
	env := EmptyEnv().Extend("x", Int(Top))
	src := `{s if 0 < x then {t x + 1 t} else {t 1 t} s}`
	wantSign(t, src, env, Int(Pos))
}

func TestBackTranslationConstrains(t *testing.T) {
	// A sign block's result sign becomes a path constraint: the
	// enclosing symbolic execution can prove a branch dead with it.
	env := EmptyEnv().Extend("x", Int(Top))
	// {t 5 t} is pos, so the fresh α carries α > 0 and the α = 0
	// branch is infeasible; the bad arm (shape error) is discarded.
	src := `{s let y = {t 5 t} in if y = 0 then (1 + true) else 7 s}`
	ty, err := checkSigns(t, src, env)
	if err != nil {
		t.Fatalf("dead branch should be discarded: %v", err)
	}
	if !Equal(ty, Int(Pos)) {
		t.Fatalf("got %s", ty)
	}
}

func TestInfeasibleErrorDiscarded(t *testing.T) {
	env := EmptyEnv().Extend("x", Int(Pos))
	// x > 0 entering the block makes the x = 0 branch dead.
	src := `{s if x = 0 then (1 + true) else x s}`
	m := NewMixer()
	ty, err := m.Check(env, lang.MustParse(src))
	if err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	if !Equal(ty, Int(Pos)) {
		t.Fatalf("got %s", ty)
	}
	found := false
	for _, r := range m.Reports {
		if strings.Contains(r, "discarded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected discarded report: %v", m.Reports)
	}
}

func TestFeasibleErrorReported(t *testing.T) {
	env := EmptyEnv().Extend("x", Int(Top))
	src := `{s if x = 0 then (1 + true) else x s}`
	wantSignErr(t, src, env, "operand of +")
}

func TestStandaloneCheckerRejectsSymBlocks(t *testing.T) {
	var c Checker
	_, err := c.Check(nil, lang.MustParse("{s 1 s}"))
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("got %v", err)
	}
}

func TestSubtypeAndWiden(t *testing.T) {
	if !Subtype(Int(Pos), Int(Top)) || Subtype(Int(Top), Int(Pos)) {
		t.Fatal("Subtype broken")
	}
	if !Subtype(Int(Pos), Int(Pos)) {
		t.Fatal("reflexive Subtype broken")
	}
	if !Equal(Widen(Int(Pos)), Int(Top)) {
		t.Fatal("Widen broken")
	}
	if !Equal(Ref(Int(Pos)), RefType{Int(Top)}) {
		t.Fatal("Ref must widen elements")
	}
}
