package signs

import (
	"testing"

	"mix/internal/concrete"
	"mix/internal/lang"
	"mix/internal/langgen"
)

// TestSignSoundness is the Theorem-1 analogue for the sign
// instantiation of MIX: if the mixed sign analysis assigns a closed
// program the type s int, concretely evaluating the program must
// produce an integer with sign s.
func TestSignSoundness(t *testing.T) {
	gen := langgen.New(20100605, langgen.Config{
		MaxDepth: 4, BlockProb: 0.25, ErrorProb: 0.05,
		WithRefs: true, WithFuns: false, // the sign system has no functions
	})
	accepted := 0
	for i := 0; i < 400; i++ {
		prog := gen.Closed()
		m := NewMixer()
		ty, err := m.Check(EmptyEnv(), prog)
		if err != nil {
			continue
		}
		it, isInt := ty.(IntType)
		if !isInt {
			continue
		}
		accepted++
		ev := concrete.NewEvaluator()
		v, cerr := ev.Eval(concrete.EmptyEnv(), concrete.NewMemory(), prog)
		if cerr != nil {
			t.Fatalf("sign-accepted program errs concretely: %s: %v", prog, cerr)
		}
		iv, ok := v.(concrete.IntV)
		if !ok {
			t.Fatalf("sign-typed %s evaluated to non-int %s", prog, v)
		}
		switch it.S {
		case Pos:
			if iv.Val <= 0 {
				t.Fatalf("UNSOUND: %s : pos int but evaluates to %d", prog, iv.Val)
			}
		case Neg:
			if iv.Val >= 0 {
				t.Fatalf("UNSOUND: %s : neg int but evaluates to %d", prog, iv.Val)
			}
		case Zero:
			if iv.Val != 0 {
				t.Fatalf("UNSOUND: %s : zero int but evaluates to %d", prog, iv.Val)
			}
		}
	}
	if accepted < 30 {
		t.Fatalf("only %d int programs accepted; property too weak", accepted)
	}
	t.Logf("validated %d sign-typed programs", accepted)
}

// TestSignMixMorePrecise: for programs where the pure sign table says
// Top, the symbolic block can recover a precise sign.
func TestSignMixMorePrecise(t *testing.T) {
	env := EmptyEnv().Extend("b", Bool)
	src := "if b then 1 + -1 else 0" // table: pos+neg = Top, joined Top
	var pure Checker
	ty, err := pure.Check(env, lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ty, Int(Top)) {
		t.Fatalf("pure checker should say unknown, got %s", ty)
	}
	m := NewMixer()
	ty, err = m.Check(env, lang.MustParse("{s "+src+" s}"))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ty, Int(Zero)) {
		t.Fatalf("mixed analysis should prove zero, got %s", ty)
	}
}
