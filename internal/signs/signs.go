// Package signs is a second instantiation of MIX, mechanizing the
// paper's Section 2 "Local Refinements of Data" example: a type
// qualifier system that tracks the sign of integers (pos, zero, neg,
// or unknown), mixed with the SAME off-the-shelf symbolic executor
// (internal/sym) used by the core system.
//
// This demonstrates the paper's closing claim — "we expect that the
// ideas behind MIX can be applied to many different combinations of
// many different analyses" — with zero changes to the executor: only
// the two mix rules differ.
//
//   - Type checking a symbolic block constrains the initial path
//     condition with the signs of the environment (x : pos int enters
//     as α_x with α_x > 0), executes all paths, and derives the sign
//     of each path's result by asking the solver whether the path
//     condition forces it positive, zero, or negative; path signs are
//     joined.
//   - Symbolically executing a sign block refines the environment
//     signs from the current path condition (the paper's "on entering
//     the typed block in each branch, the type system will start with
//     the appropriate type for x"), checks the body, and returns a
//     fresh symbolic value whose sign is asserted back into the path
//     condition — a richer translation than the base type system's,
//     because signs carry information both ways.
//
// To keep the system sound without effect tracking, references carry
// unknown-signed elements (a write through a reference cannot break a
// sign invariant because there is none).
package signs

import (
	"fmt"

	"mix/internal/lang"
)

// Sign is the qualifier lattice: Pos, Zero, Neg below Top.
type Sign int

const (
	// Pos is strictly positive.
	Pos Sign = iota
	// Zero is exactly zero.
	Zero
	// Neg is strictly negative.
	Neg
	// Top is unknown sign.
	Top
)

func (s Sign) String() string {
	switch s {
	case Pos:
		return "pos"
	case Zero:
		return "zero"
	case Neg:
		return "neg"
	}
	return "unknown"
}

// Join is the lattice join.
func Join(a, b Sign) Sign {
	if a == b {
		return a
	}
	return Top
}

// Leq is the lattice order: s ⊑ s and s ⊑ Top.
func Leq(a, b Sign) bool { return a == b || b == Top }

// Type is a sign-qualified type.
type Type interface {
	isType()
	String() string
}

// IntType is an integer with a sign qualifier.
type IntType struct{ S Sign }

// BoolType is bool.
type BoolType struct{}

// RefType is a reference to unknown-signed storage (see the package
// comment for why element signs are not tracked).
type RefType struct{ Elem Type }

func (IntType) isType()  {}
func (BoolType) isType() {}
func (RefType) isType()  {}

func (t IntType) String() string { return t.S.String() + " int" }
func (BoolType) String() string  { return "bool" }
func (t RefType) String() string { return t.Elem.String() + " ref" }

// Int builds a sign-qualified int type.
func Int(s Sign) Type { return IntType{s} }

// Bool is the bool type.
var Bool Type = BoolType{}

// Ref builds a reference type, widening any element sign to Top.
func Ref(elem Type) Type { return RefType{Widen(elem)} }

// Widen replaces every sign with Top (the shape of the type).
func Widen(t Type) Type {
	switch t := t.(type) {
	case IntType:
		return IntType{Top}
	case RefType:
		return RefType{Widen(t.Elem)}
	}
	return t
}

// Equal is structural equality including signs.
func Equal(a, b Type) bool {
	switch a := a.(type) {
	case IntType:
		ab, ok := b.(IntType)
		return ok && a.S == ab.S
	case BoolType:
		_, ok := b.(BoolType)
		return ok
	case RefType:
		ab, ok := b.(RefType)
		return ok && Equal(a.Elem, ab.Elem)
	}
	return false
}

// Subtype is the qualified subtype relation: signs may widen to Top
// covariantly on ints; references are invariant.
func Subtype(a, b Type) bool {
	switch a := a.(type) {
	case IntType:
		ab, ok := b.(IntType)
		return ok && Leq(a.S, ab.S)
	case BoolType:
		_, ok := b.(BoolType)
		return ok
	case RefType:
		ab, ok := b.(RefType)
		return ok && Equal(a.Elem, ab.Elem)
	}
	return false
}

// JoinTypes joins two types of the same shape (for conditionals).
func JoinTypes(a, b Type) (Type, bool) {
	switch a := a.(type) {
	case IntType:
		ab, ok := b.(IntType)
		if !ok {
			return nil, false
		}
		return IntType{Join(a.S, ab.S)}, true
	case BoolType:
		_, ok := b.(BoolType)
		return Bool, ok
	case RefType:
		ab, ok := b.(RefType)
		if !ok || !Equal(a.Elem, ab.Elem) {
			return nil, false
		}
		return a, true
	}
	return nil, false
}

// Env is a sign typing environment.
type Env struct {
	name   string
	ty     Type
	parent *Env
}

// EmptyEnv is the empty environment.
func EmptyEnv() *Env { return nil }

// Extend binds name : ty.
func (g *Env) Extend(name string, ty Type) *Env {
	return &Env{name: name, ty: ty, parent: g}
}

// Lookup finds a binding.
func (g *Env) Lookup(name string) (Type, bool) {
	for e := g; e != nil; e = e.parent {
		if e.name == name {
			return e.ty, true
		}
	}
	return nil, false
}

// Names returns the domain, innermost first, without duplicates.
func (g *Env) Names() []string {
	seen := map[string]bool{}
	var out []string
	for e := g; e != nil; e = e.parent {
		if !seen[e.name] {
			seen[e.name] = true
			out = append(out, e.name)
		}
	}
	return out
}

// Error is a sign type error.
type Error struct {
	Pos lang.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: sign error: %s", e.Pos, e.Msg)
}

// plusSign is the abstract addition table.
func plusSign(a, b Sign) Sign {
	switch {
	case a == Zero:
		return b
	case b == Zero:
		return a
	case a == Pos && b == Pos:
		return Pos
	case a == Neg && b == Neg:
		return Neg
	}
	return Top
}

// litSign is the sign of an integer literal.
func litSign(v int64) Sign {
	switch {
	case v > 0:
		return Pos
	case v < 0:
		return Neg
	}
	return Zero
}

// Checker is the standalone sign type system. Like types.Checker it
// exposes one hook for symbolic blocks; nil rejects them.
type Checker struct {
	SymBlock func(env *Env, e lang.Expr) (Type, error)
}

// Check proves the sign judgment for e.
func (c *Checker) Check(env *Env, e lang.Expr) (Type, error) {
	switch e := e.(type) {
	case lang.Var:
		t, ok := env.Lookup(e.Name)
		if !ok {
			return nil, &Error{e.Pos(), "unbound variable " + e.Name}
		}
		return t, nil
	case lang.IntLit:
		return Int(litSign(e.Val)), nil
	case lang.BoolLit:
		return Bool, nil
	case lang.Plus:
		ta, err := c.checkInt(env, e.X, "left operand of +")
		if err != nil {
			return nil, err
		}
		tb, err := c.checkInt(env, e.Y, "right operand of +")
		if err != nil {
			return nil, err
		}
		return Int(plusSign(ta, tb)), nil
	case lang.Eq:
		ta, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		tb, err := c.Check(env, e.Y)
		if err != nil {
			return nil, err
		}
		if !Equal(Widen(ta), Widen(tb)) {
			return nil, &Error{e.Pos(), fmt.Sprintf("operands of = have shapes %s and %s", ta, tb)}
		}
		return Bool, nil
	case lang.Lt:
		if _, err := c.checkInt(env, e.X, "left operand of <"); err != nil {
			return nil, err
		}
		if _, err := c.checkInt(env, e.Y, "right operand of <"); err != nil {
			return nil, err
		}
		return Bool, nil
	case lang.Not:
		if err := c.checkBool(env, e.X, "operand of not"); err != nil {
			return nil, err
		}
		return Bool, nil
	case lang.And:
		if err := c.checkBool(env, e.X, "left operand of &&"); err != nil {
			return nil, err
		}
		if err := c.checkBool(env, e.Y, "right operand of &&"); err != nil {
			return nil, err
		}
		return Bool, nil
	case lang.If:
		if err := c.checkBool(env, e.Cond, "condition of if"); err != nil {
			return nil, err
		}
		tt, err := c.Check(env, e.Then)
		if err != nil {
			return nil, err
		}
		tf, err := c.Check(env, e.Else)
		if err != nil {
			return nil, err
		}
		joined, ok := JoinTypes(tt, tf)
		if !ok {
			return nil, &Error{e.Pos(), fmt.Sprintf("branches of if have shapes %s and %s", tt, tf)}
		}
		return joined, nil
	case lang.Let:
		tb, err := c.Check(env, e.Bound)
		if err != nil {
			return nil, err
		}
		return c.Check(env.Extend(e.Name, tb), e.Body)
	case lang.Ref:
		tx, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		return Ref(tx), nil
	case lang.Deref:
		tx, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		r, ok := tx.(RefType)
		if !ok {
			return nil, &Error{e.Pos(), fmt.Sprintf("dereference of non-reference %s", tx)}
		}
		return r.Elem, nil
	case lang.Assign:
		tx, err := c.Check(env, e.X)
		if err != nil {
			return nil, err
		}
		r, ok := tx.(RefType)
		if !ok {
			return nil, &Error{e.Pos(), fmt.Sprintf("assignment to non-reference %s", tx)}
		}
		ty, err := c.Check(env, e.Y)
		if err != nil {
			return nil, err
		}
		if !Subtype(ty, r.Elem) {
			return nil, &Error{e.Pos(), fmt.Sprintf("assigning %s to %s reference", ty, r.Elem)}
		}
		return ty, nil
	case lang.Fun, lang.App:
		return nil, &Error{e.Pos(), "the sign system does not cover functions"}
	case lang.TypedBlock:
		return c.Check(env, e.Body)
	case lang.SymBlock:
		if c.SymBlock == nil {
			return nil, &Error{e.Pos(), "symbolic block not supported by standalone sign checker"}
		}
		return c.SymBlock(env, e.Body)
	}
	return nil, fmt.Errorf("signs: unknown expression %T", e)
}

func (c *Checker) checkInt(env *Env, e lang.Expr, what string) (Sign, error) {
	t, err := c.Check(env, e)
	if err != nil {
		return Top, err
	}
	it, ok := t.(IntType)
	if !ok {
		return Top, &Error{e.Pos(), fmt.Sprintf("%s has type %s, want int", what, t)}
	}
	return it.S, nil
}

func (c *Checker) checkBool(env *Env, e lang.Expr, what string) error {
	t, err := c.Check(env, e)
	if err != nil {
		return err
	}
	if _, ok := t.(BoolType); !ok {
		return &Error{e.Pos(), fmt.Sprintf("%s has type %s, want bool", what, t)}
	}
	return nil
}
