// Package solver implements the decision procedure that backs both the
// core MIX symbolic executor and the MIXY prototype. It plays the role
// that STP plays in the paper: deciding satisfiability and validity of
// path conditions and exhaustiveness constraints.
//
// The logic is quantifier-free linear integer arithmetic with
// uninterpreted function terms (used for reads from arbitrary symbolic
// memories). The architecture is a small lazy-SMT loop: formulas are
// normalized to negation normal form with canonical arithmetic atoms, a
// DPLL-style search assigns atoms, and a theory solver decides
// conjunctions of linear constraints by Gaussian elimination of
// equalities followed by Fourier–Motzkin elimination of inequalities.
//
// Completeness caveat (documented in DESIGN.md): the arithmetic core is
// complete over the rationals, so it may report "satisfiable" for a
// constraint set with rational but no integer solutions. Every client
// in this repository uses satisfiability in a direction where that
// over-approximation is conservative (it can only introduce false
// positives, never unsoundness).
package solver

import (
	"fmt"
	"sort"
	"strings"
)

// Term is an integer-sorted term.
type Term interface {
	isTerm()
	String() string
}

// IntConst is an integer literal.
type IntConst struct{ Val int64 }

// IntVar is an integer-sorted variable.
type IntVar struct{ Name string }

// Add is binary addition.
type Add struct{ X, Y Term }

// Neg is arithmetic negation.
type Neg struct{ X Term }

// Mul is multiplication by a constant, keeping the logic linear.
type Mul struct {
	K int64
	X Term
}

// App is an application of an uninterpreted function symbol. The solver
// treats two applications as equal iff they are structurally equal
// after arithmetic normalization of the arguments; this is the
// conservative congruence described in DESIGN.md.
type App struct {
	Fn   string
	Args []Term
}

// Ite is a guarded term: the value of X when G holds, of Y otherwise.
// It is what state merging produces for a memory cell that diverges
// across the two arms of a conditional. The DPLL core never sees an
// Ite: Sat lowers each one to a fresh variable with two guarded
// defining clauses (see elimIte), which keeps the theory core linear.
// Construct with NewIte so trivial guards fold away at build time.
type Ite struct {
	G    Formula
	X, Y Term
}

func (IntConst) isTerm() {}
func (IntVar) isTerm()   {}
func (Add) isTerm()      {}
func (Neg) isTerm()      {}
func (Mul) isTerm()      {}
func (App) isTerm()      {}
func (Ite) isTerm()      {}

func (t IntConst) String() string { return fmt.Sprintf("%d", t.Val) }
func (t IntVar) String() string   { return t.Name }
func (t Add) String() string      { return "(" + t.X.String() + " + " + t.Y.String() + ")" }
func (t Neg) String() string      { return "-" + t.X.String() }
func (t Mul) String() string      { return fmt.Sprintf("%d*%s", t.K, t.X.String()) }

func (t App) String() string {
	args := make([]string, len(t.Args))
	for i, a := range t.Args {
		args[i] = a.String()
	}
	return t.Fn + "(" + strings.Join(args, ", ") + ")"
}

func (t Ite) String() string {
	return "(" + t.G.String() + " ? " + t.X.String() + " : " + t.Y.String() + ")"
}

// NewIte builds ite(g, x, y) with the trivial cases folded: a constant
// guard selects its arm, equal arms collapse to one, and a negated
// guard swaps the arms so ite(¬g, a, b) and ite(g, b, a) are one
// canonical structure (the memo-key property the engine's hash-consing
// relies on).
func NewIte(g Formula, x, y Term) Term {
	if c, ok := g.(BoolConst); ok {
		if c.Val {
			return x
		}
		return y
	}
	if termEq(x, y) {
		return x
	}
	if n, ok := g.(Not); ok {
		return NewIte(n.X, y, x)
	}
	return Ite{G: g, X: x, Y: y}
}

// Sum builds a (possibly empty) sum of terms; the empty sum is 0.
func Sum(ts ...Term) Term {
	if len(ts) == 0 {
		return IntConst{0}
	}
	acc := ts[0]
	for _, t := range ts[1:] {
		acc = Add{acc, t}
	}
	return acc
}

// Sub builds x - y.
func Sub(x, y Term) Term { return Add{x, Neg{y}} }

// sortedKeys returns the keys of m in sorted order; used to produce
// deterministic canonical strings.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
