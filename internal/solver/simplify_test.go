package solver

import (
	"math"
	"testing"
)

// Each test pins one rewrite the canonicalizer must perform; these are
// the edge cases surfaced while wiring the simplifier into Sat.

func TestSimplifyDoubleNegation(t *testing.T) {
	p := BoolVar{"p"}
	got := Simplify(Not{X: Not{X: p}})
	if !formulaEq(got, p) {
		t.Fatalf("!!p = %v, want p", got)
	}
	// Triple negation folds to a single one.
	got = Simplify(Not{X: Not{X: Not{X: p}}})
	if !formulaEq(got, Not{X: p}) {
		t.Fatalf("!!!p = %v, want !p", got)
	}
}

func TestSimplifyXMinusX(t *testing.T) {
	x := IntVar{"x"}
	if got := SimplifyTerm(Sub(x, x)); !termEq(got, IntConst{0}) {
		t.Fatalf("x - x = %v, want 0", got)
	}
	// Also with the negation on the left.
	if got := SimplifyTerm(Add{Neg{x}, x}); !termEq(got, IntConst{0}) {
		t.Fatalf("-x + x = %v, want 0", got)
	}
	// Structured operands, not just variables.
	fx := App{Fn: "f", Args: []Term{x}}
	if got := SimplifyTerm(Sub(fx, fx)); !termEq(got, IntConst{0}) {
		t.Fatalf("f(x) - f(x) = %v, want 0", got)
	}
	// And the formula level folds the comparison away entirely.
	if got := Simplify(Eq{Sub(x, x), IntConst{0}}); !formulaEq(got, True) {
		t.Fatalf("x-x == 0 = %v, want true", got)
	}
}

func TestSimplifyEqualTermComparisons(t *testing.T) {
	x := IntVar{"x"}
	t1 := Add{Mul{3, x}, IntConst{7}}
	t2 := Add{Mul{3, x}, IntConst{7}}
	if got := Simplify(Eq{t1, t2}); !formulaEq(got, True) {
		t.Fatalf("t == t = %v, want true", got)
	}
	if got := Simplify(Le{t1, t2}); !formulaEq(got, True) {
		t.Fatalf("t <= t = %v, want true", got)
	}
	if got := Simplify(Lt{t1, t2}); !formulaEq(got, False) {
		t.Fatalf("t < t = %v, want false", got)
	}
	// Negations ride along through NewNot's folding.
	if got := Simplify(NewNot(Eq{t1, t2})); !formulaEq(got, False) {
		t.Fatalf("!(t == t) = %v, want false", got)
	}
}

func TestSimplifyTermIdentities(t *testing.T) {
	x := IntVar{"x"}
	cases := []struct {
		in, want Term
	}{
		{Add{x, IntConst{0}}, x},
		{Add{IntConst{0}, x}, x},
		{Add{IntConst{2}, IntConst{3}}, IntConst{5}},
		{Mul{K: 0, X: x}, IntConst{0}},
		{Mul{K: 1, X: x}, x},
		{Mul{K: 4, X: IntConst{5}}, IntConst{20}},
		{Neg{Neg{x}}, x},
		{Neg{IntConst{9}}, IntConst{-9}},
	}
	for _, c := range cases {
		if got := SimplifyTerm(c.in); !termEq(got, c.want) {
			t.Fatalf("SimplifyTerm(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Overflow must not wrap: the fold is skipped, not performed mod 2^64.
	huge := Add{IntConst{math.MaxInt64}, IntConst{1}}
	if got := SimplifyTerm(huge); !termEq(got, huge) {
		t.Fatalf("overflowing add folded to %v", got)
	}
	if got := SimplifyTerm(Neg{IntConst{math.MinInt64}}); !termEq(got, Neg{IntConst{math.MinInt64}}) {
		t.Fatalf("-MinInt64 folded to %v", got)
	}
}

func TestSimplifyConstantComparisons(t *testing.T) {
	if got := Simplify(Lt{IntConst{1}, IntConst{2}}); !formulaEq(got, True) {
		t.Fatalf("1 < 2 = %v", got)
	}
	if got := Simplify(Le{IntConst{3}, IntConst{2}}); !formulaEq(got, False) {
		t.Fatalf("3 <= 2 = %v", got)
	}
	if got := Simplify(Eq{IntConst{2}, IntConst{2}}); !formulaEq(got, True) {
		t.Fatalf("2 == 2 = %v", got)
	}
}

func TestSimplifyDuplicateAndComplementary(t *testing.T) {
	p, q := BoolVar{"p"}, BoolVar{"q"}
	if got := Simplify(Conj(p, q, p)); !formulaEq(got, NewAnd(p, q)) {
		t.Fatalf("p && q && p = %v", got)
	}
	if got := Simplify(Conj(p, q, Not{X: p})); !formulaEq(got, False) {
		t.Fatalf("p && q && !p = %v, want false", got)
	}
	if got := Simplify(Disj(p, q, Not{X: p})); !formulaEq(got, True) {
		t.Fatalf("p || q || !p = %v, want true", got)
	}
	if got := Simplify(NewAnd(p, True)); !formulaEq(got, p) {
		t.Fatalf("p && true = %v", got)
	}
	if got := Simplify(NewOr(p, False)); !formulaEq(got, p) {
		t.Fatalf("p || false = %v", got)
	}
}

func TestSimplifyIff(t *testing.T) {
	p, q := BoolVar{"p"}, BoolVar{"q"}
	if got := Simplify(Iff{True, q}); !formulaEq(got, q) {
		t.Fatalf("true <=> q = %v", got)
	}
	if got := Simplify(Iff{p, False}); !formulaEq(got, Not{X: p}) {
		t.Fatalf("p <=> false = %v", got)
	}
	if got := Simplify(Iff{p, p}); !formulaEq(got, True) {
		t.Fatalf("p <=> p = %v", got)
	}
}

// TestSimplifyConsensus pins the (A ∧ x) ∨ (A ∧ ¬x) → A rule and its
// iterated form: the complete guard tree of k fork decisions collapses
// to true without DPLL.
func TestSimplifyConsensus(t *testing.T) {
	p, b := BoolVar{"p"}, BoolVar{"b"}
	or := NewOr(NewAnd(p, b), NewAnd(p, Not{X: b}))
	if got := Simplify(or); !formulaEq(got, p) {
		t.Fatalf("(p&&b)||(p&&!b) = %v, want p", got)
	}

	// Complete tree over 6 guards: 64 disjuncts, each a conjunction of
	// literals over b0..b5 covering every sign pattern.
	const k = 6
	var disjuncts []Formula
	for bits := 0; bits < 1<<k; bits++ {
		var conj Formula = True
		for i := 0; i < k; i++ {
			var lit Formula = BoolVar{Name: "b" + string(rune('0'+i))}
			if bits&(1<<i) == 0 {
				lit = Not{X: lit}
			}
			conj = NewAnd(conj, lit)
		}
		disjuncts = append(disjuncts, conj)
	}
	if got := Simplify(Disj(disjuncts...)); !formulaEq(got, True) {
		t.Fatalf("complete guard tree simplified to %v, want true", got)
	}

	// Arithmetic guards collapse the same way.
	x := IntVar{"x"}
	g := Lt{x, IntConst{0}}
	or2 := NewOr(NewAnd(g, b), NewAnd(g, Not{X: b}))
	if got := Simplify(or2); !formulaEq(got, g) {
		t.Fatalf("(g&&b)||(g&&!b) = %v, want g", got)
	}
}

func TestSupportTokens(t *testing.T) {
	x, y := IntVar{"x"}, IntVar{"y"}
	f := NewAnd(NewOr(BoolVar{"p"}, Lt{x, IntConst{1}}), Eq{App{Fn: "f", Args: []Term{y}}, IntConst{0}})
	got := Support(f)
	want := []string{"b:p", "fn:f", "v:x", "v:y"}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
}

func TestQuickConjIntervals(t *testing.T) {
	x, y := IntVar{"x"}, IntVar{"y"}
	cases := []struct {
		fs           []Formula
		sat, decided bool
	}{
		{[]Formula{Lt{x, IntConst{10}}, Lt{IntConst{5}, x}}, true, true},
		{[]Formula{Lt{x, IntConst{5}}, Lt{IntConst{5}, x}}, false, true},
		// Rational semantics: 5 < x < 6 is satisfiable.
		{[]Formula{Lt{IntConst{5}, x}, Lt{x, IntConst{6}}}, true, true},
		{[]Formula{Eq{x, IntConst{3}}, NewNot(Eq{x, IntConst{3}})}, false, true},
		{[]Formula{Eq{x, IntConst{3}}, NewNot(Eq{x, IntConst{4}})}, true, true},
		{[]Formula{Le{x, IntConst{3}}, Le{IntConst{3}, x}}, true, true},
		{[]Formula{Le{x, IntConst{3}}, Lt{IntConst{3}, x}}, false, true},
		{[]Formula{BoolVar{"p"}, NewNot(BoolVar{"p"})}, false, true},
		// Mixed-variable constraint: not recognized, not decided…
		{[]Formula{Lt{x, y}}, false, false},
		// …unless the recognized subset is already contradictory.
		{[]Formula{Lt{x, y}, Eq{x, IntConst{1}}, Eq{x, IntConst{2}}}, false, true},
	}
	for i, c := range cases {
		sat, decided := QuickConj(c.fs)
		if decided != c.decided || (decided && sat != c.sat) {
			t.Fatalf("case %d: QuickConj = (%v,%v), want (%v,%v)", i, sat, decided, c.sat, c.decided)
		}
	}
}

func TestPCIncremental(t *testing.T) {
	x := IntVar{"x"}
	var pc *PC
	if pc.Len() != 0 || pc.Dead() || !formulaEq(pc.Formula(), True) {
		t.Fatal("empty PC misbehaves")
	}
	p1 := pc.And(Lt{x, IntConst{10}})
	p2 := p1.And(NewAnd(BoolVar{"p"}, Lt{IntConst{0}, x})) // splits into two nodes
	if p1.Len() != 1 || p2.Len() != 3 {
		t.Fatalf("Len = %d, %d; want 1, 3", p1.Len(), p2.Len())
	}
	if p2.Parent().Parent() != p1 {
		t.Fatal("PC tail is not shared with the parent")
	}
	if p := p2.And(True); p != p2 {
		t.Fatal("And(true) must be a no-op")
	}
	// Re-asserting the newest conjunct is absorbed.
	if p := p2.And(Lt{IntConst{0}, x}); p != p2 {
		t.Fatal("duplicate head conjunct not absorbed")
	}
	d := p2.And(False)
	if !d.Dead() {
		t.Fatal("And(false) must mark the PC dead")
	}
	if d.And(False) != d {
		t.Fatal("dead PC should absorb further falses")
	}
	// A guard that simplifies to false kills the path too.
	d2 := p2.And(Lt{x, x})
	if !d2.Dead() {
		t.Fatal("x < x must kill the path")
	}
	got := p2.Conjuncts()
	if len(got) != 3 || !formulaEq(got[0], Lt{x, IntConst{10}}) || !formulaEq(got[1], BoolVar{"p"}) {
		t.Fatalf("Conjuncts = %v", got)
	}
}

func TestSatModelRoundTrip(t *testing.T) {
	x, y := IntVar{"x"}, IntVar{"y"}
	fs := []Formula{
		NewAnd(Lt{IntConst{2}, x}, Lt{x, IntConst{4}}),
		Conj(Eq{Add{x, y}, IntConst{10}}, Lt{x, IntConst{3}}, BoolVar{"p"}),
		Conj(NewNot(Eq{x, IntConst{0}}), Le{x, IntConst{0}}),
		NewOr(NewAnd(BoolVar{"p"}, Eq{x, IntConst{1}}), NewAnd(NewNot(BoolVar{"p"}), Eq{x, IntConst{2}})),
		Conj(Le{App{Fn: "f", Args: []Term{x}}, IntConst{5}}, Eq{x, IntConst{7}}),
	}
	for i, f := range fs {
		s := New()
		sat, m, err := s.SatModel(f)
		if err != nil || !sat {
			t.Fatalf("case %d: SatModel = %v, %v", i, sat, err)
		}
		if m == nil {
			t.Fatalf("case %d: sat but no model", i)
		}
		ok, err := m.Eval(f)
		if err != nil || !ok {
			t.Fatalf("case %d: model does not satisfy its own formula (ok=%v err=%v, model=%+v)", i, ok, err, m)
		}
	}
	// Unsat must stay unsat with no model.
	sat, m, err := New().SatModel(NewAnd(Lt{x, IntConst{0}}, Lt{IntConst{0}, x}))
	if err != nil || sat || m != nil {
		t.Fatalf("unsat SatModel = %v, %v, %v", sat, m, err)
	}
}
