package solver

import (
	"errors"
	"fmt"
	"testing"
)

func TestMaxAtomsExhaustion(t *testing.T) {
	s := New()
	s.MaxAtoms = 4
	var fs []Formula
	for i := 0; i < 6; i++ {
		fs = append(fs, Eq{X: IntVar{Name: fmt.Sprintf("x%d", i)}, Y: IntConst{Val: int64(i)}})
	}
	_, err := s.Sat(Conj(fs...))
	if err == nil {
		t.Fatal("6 atoms under MaxAtoms=4 must error")
	}
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want errors.Is(err, ErrLimit)", err)
	}
	var re ErrResource
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want ErrResource", err)
	}
}

func TestMaxDecisionsExhaustion(t *testing.T) {
	s := New()
	s.MaxDecisions = 1
	// (p || q) && (r || s) needs two decisions under any search order —
	// no single assignment propagates the rest in either core — so a
	// budget of one decision is exhausted mid-search.
	f := NewAnd(
		NewOr(BoolVar{Name: "p"}, BoolVar{Name: "q"}),
		NewOr(BoolVar{Name: "r"}, BoolVar{Name: "s"}),
	)
	_, err := s.Sat(f)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want errors.Is(err, ErrLimit)", err)
	}
}

func TestWithinLimitsNoError(t *testing.T) {
	s := New()
	s.MaxAtoms = 4
	s.MaxDecisions = 16
	sat, err := s.Sat(NewAnd(BoolVar{Name: "a"}, NewNot(BoolVar{Name: "b"})))
	if err != nil || !sat {
		t.Fatalf("Sat = %v, %v; bounds must not fire under budget", sat, err)
	}
}

func TestErrLimitDistinguishesOtherErrors(t *testing.T) {
	if errors.Is(errors.New("unrelated"), ErrLimit) {
		t.Fatal("unrelated errors must not match ErrLimit")
	}
	if !errors.Is(ErrResource{Msg: "decision budget exhausted"}, ErrLimit) {
		t.Fatal("every ErrResource must wrap ErrLimit")
	}
}
