package solver

import (
	"fmt"
	"testing"
)

// chainFormula builds x0 = x1+1 ∧ ... ∧ x(n-1) = xn+1 ∧ x0 <= xn,
// unsatisfiable for n >= 1 (forces full Gaussian elimination).
func chainFormula(n int) Formula {
	f := True
	for i := 0; i < n; i++ {
		f = NewAnd(f, Eq{IntVar{fmt.Sprintf("x%d", i)}, Add{IntVar{fmt.Sprintf("x%d", i+1)}, IntConst{1}}})
	}
	return NewAnd(f, Le{IntVar{"x0"}, IntVar{fmt.Sprintf("x%d", n)}})
}

func BenchmarkGaussianChain(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := chainFormula(n)
			for i := 0; i < b.N; i++ {
				sat, err := New().Sat(f)
				if err != nil {
					b.Fatal(err)
				}
				if sat {
					b.Fatal("chain should be unsat")
				}
			}
		})
	}
}

// disjunctionFormula builds (p1 ∧ a1) ∨ ... ∨ (pn ∧ an), the shape of
// exhaustiveness queries over forked guards.
func disjunctionFormula(n int) Formula {
	f := False
	for i := 0; i < n; i++ {
		f = NewOr(f, NewAnd(
			BoolVar{fmt.Sprintf("p%d", i)},
			Gt(IntVar{fmt.Sprintf("a%d", i)}, IntConst{int64(i)}),
		))
	}
	return f
}

func BenchmarkDisjunctionSat(b *testing.B) {
	for _, n := range []int{8, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := disjunctionFormula(n)
			for i := 0; i < b.N; i++ {
				sat, err := New().Sat(f)
				if err != nil {
					b.Fatal(err)
				}
				if !sat {
					b.Fatal("disjunction should be sat")
				}
			}
		})
	}
}

// BenchmarkTrichotomyValid is the sign-refinement exhaustiveness
// query.
func BenchmarkTrichotomyValid(b *testing.B) {
	x := IntVar{"x"}
	zero := IntConst{0}
	for i := 0; i < b.N; i++ {
		taut, err := New().Tautology(Gt(x, zero), Eq{x, zero}, Lt{x, zero})
		if err != nil {
			b.Fatal(err)
		}
		if !taut {
			b.Fatal("trichotomy must be a tautology")
		}
	}
}

// BenchmarkFourierMotzkin stresses inequality elimination.
func BenchmarkFourierMotzkin(b *testing.B) {
	// 0 <= x1 <= x2 <= ... <= xn <= 10 with n variables, plus xn < x1
	// (unsat).
	const n = 10
	f := True
	for i := 1; i < n; i++ {
		f = NewAnd(f, Le{IntVar{fmt.Sprintf("x%d", i)}, IntVar{fmt.Sprintf("x%d", i+1)}})
	}
	f = NewAnd(f, Le{IntConst{0}, IntVar{"x1"}})
	f = NewAnd(f, Le{IntVar{fmt.Sprintf("x%d", n)}, IntConst{10}})
	f = NewAnd(f, Lt{IntVar{fmt.Sprintf("x%d", n)}, IntVar{"x1"}})
	for i := 0; i < b.N; i++ {
		sat, err := New().Sat(f)
		if err != nil {
			b.Fatal(err)
		}
		if sat {
			b.Fatal("should be unsat")
		}
	}
}
