package solver

import (
	"fmt"
	"strconv"
	"strings"
)

// Simplify returns a formula equivalent to f with constants folded and
// common redundancies canonicalized away:
//
//   - double negation: !!x → x (via NewNot)
//   - constant folding through And/Or/Not/Iff and the comparisons
//   - x - x → 0 and other arithmetic identities (SimplifyTerm)
//   - comparisons of syntactically equal terms: t = t → true,
//     t <= t → true, t < t → false
//   - duplicate and complementary conjuncts/disjuncts: x ∧ x → x,
//     x ∧ ¬x → false, x ∨ ¬x → true
//   - the consensus rule on disjunctions of conjunction-of-literal
//     clauses: (A ∧ x) ∨ (A ∧ ¬x) → A, applied to fixpoint — this is
//     what collapses the exhaustiveness check over 2^k complete branch
//     guards without any DPLL search
//
// Simplify never errors: formulas it cannot improve (including nil or
// unknown variants) come back unchanged, and the solver's own
// conversion reports those.
func Simplify(f Formula) Formula {
	switch f := f.(type) {
	case nil, BoolConst, BoolVar:
		return f
	case Not:
		return NewNot(Simplify(f.X))
	case And:
		return simplifyAnd(f)
	case Or:
		return simplifyOr(f)
	case Iff:
		x, y := Simplify(f.X), Simplify(f.Y)
		if bx, ok := x.(BoolConst); ok {
			if bx.Val {
				return y
			}
			return NewNot(y)
		}
		if by, ok := y.(BoolConst); ok {
			if by.Val {
				return x
			}
			return NewNot(x)
		}
		if formulaEq(x, y) {
			return True
		}
		return Iff{x, y}
	case Eq:
		x, y := SimplifyTerm(f.X), SimplifyTerm(f.Y)
		if cx, ok := x.(IntConst); ok {
			if cy, ok := y.(IntConst); ok {
				return BoolConst{cx.Val == cy.Val}
			}
		}
		if termEq(x, y) {
			return True
		}
		return Eq{x, y}
	case Le:
		x, y := SimplifyTerm(f.X), SimplifyTerm(f.Y)
		if cx, ok := x.(IntConst); ok {
			if cy, ok := y.(IntConst); ok {
				return BoolConst{cx.Val <= cy.Val}
			}
		}
		if termEq(x, y) {
			return True
		}
		return Le{x, y}
	case Lt:
		x, y := SimplifyTerm(f.X), SimplifyTerm(f.Y)
		if cx, ok := x.(IntConst); ok {
			if cy, ok := y.(IntConst); ok {
				return BoolConst{cx.Val < cy.Val}
			}
		}
		if termEq(x, y) {
			return False
		}
		return Lt{x, y}
	}
	return f
}

// flattenInto collects the leaves of a same-op (And or Or) spine
// without re-simplifying interior spine nodes; each non-spine leaf is
// simplified exactly once, and leaves that simplify back into the
// spine op are flattened in turn.
func flattenInto(f Formula, isAnd bool, out *[]Formula) {
	switch f := f.(type) {
	case And:
		if isAnd {
			flattenInto(f.X, isAnd, out)
			flattenInto(f.Y, isAnd, out)
			return
		}
	case Or:
		if !isAnd {
			flattenInto(f.X, isAnd, out)
			flattenInto(f.Y, isAnd, out)
			return
		}
	}
	s := Simplify(f)
	switch s := s.(type) {
	case And:
		if isAnd {
			collectLeaves(s, isAnd, out)
			return
		}
	case Or:
		if !isAnd {
			collectLeaves(s, isAnd, out)
			return
		}
	}
	*out = append(*out, s)
}

// collectLeaves gathers the already-simplified leaves of a spine.
func collectLeaves(f Formula, isAnd bool, out *[]Formula) {
	switch f := f.(type) {
	case And:
		if isAnd {
			collectLeaves(f.X, isAnd, out)
			collectLeaves(f.Y, isAnd, out)
			return
		}
	case Or:
		if !isAnd {
			collectLeaves(f.X, isAnd, out)
			collectLeaves(f.Y, isAnd, out)
			return
		}
	}
	*out = append(*out, f)
}

func simplifyAnd(f And) Formula {
	var leaves []Formula
	flattenInto(f.X, true, &leaves)
	flattenInto(f.Y, true, &leaves)
	seen := make(map[string]bool, len(leaves))
	kept := leaves[:0]
	for _, l := range leaves {
		if c, ok := l.(BoolConst); ok {
			if !c.Val {
				return False
			}
			continue
		}
		k := FormulaKey(l)
		if seen[k] {
			continue
		}
		if seen[negKey(k)] {
			return False // x ∧ ¬x
		}
		seen[k] = true
		kept = append(kept, l)
	}
	return Conj(kept...)
}

// mergeLimit bounds the consensus pass; beyond it the disjunction is
// rebuilt as-is (the pass is quadratic in the worst case).
const mergeLimit = 4096

func simplifyOr(f Or) Formula {
	var leaves []Formula
	flattenInto(f.X, false, &leaves)
	flattenInto(f.Y, false, &leaves)
	seen := make(map[string]bool, len(leaves))
	kept := leaves[:0]
	for _, l := range leaves {
		if c, ok := l.(BoolConst); ok {
			if c.Val {
				return True
			}
			continue
		}
		k := FormulaKey(l)
		if seen[k] {
			continue
		}
		if seen[negKey(k)] {
			return True // x ∨ ¬x
		}
		seen[k] = true
		kept = append(kept, l)
	}
	if len(kept) > 1 && len(kept) <= mergeLimit {
		kept = mergeDisjuncts(kept)
	}
	return Disj(kept...)
}

// literal is one conjunct of a disjunct, viewed atomically: any
// non-And subformula, with negation split off as polarity. Atoms are
// interned to small integers once per pass, so clause signatures hash
// integers instead of concatenating key strings.
type literal struct {
	f    Formula // the positive form
	atom int
	pos  bool
}

// clause is one disjunct decomposed into literals sorted by atom id.
type clause struct {
	lits   []literal
	dead   bool
	frozen bool // already merged this round; settle next round
}

// mergeDisjuncts applies the consensus rule (A ∧ x) ∨ (A ∧ ¬x) → A to
// fixpoint over disjuncts that decompose into conjunctions of
// literals. Guards produced by forking at k conditionals form a
// complete binary tree of 2^k such clauses, which this pass collapses
// level by level to a single clause (or to true). Each round indexes
// every live clause once by hashed signatures and performs all
// non-overlapping merges it finds, so the complete-tree case costs
// O(k · total literals) over its k rounds rather than rebuilding the
// index per merge. Hash collisions are harmless: a probe verifies the
// clauses literal by literal before merging.
func mergeDisjuncts(ds []Formula) []Formula {
	atomIDs := map[string]int{}
	clauses := make([]clause, len(ds))
	for i, d := range ds {
		var parts []Formula
		collectLeaves(d, true, &parts)
		cl := clause{lits: make([]literal, 0, len(parts))}
		for _, p := range parts {
			lit := literal{f: p, pos: true}
			if n, ok := p.(Not); ok {
				lit.f, lit.pos = n.X, false
			}
			key := FormulaKey(lit.f)
			id, ok := atomIDs[key]
			if !ok {
				id = len(atomIDs)
				atomIDs[key] = id
			}
			lit.atom = id
			cl.lits = append(cl.lits, lit)
		}
		sortLits(cl.lits)
		clauses[i] = cl
	}
	for {
		merged := false
		type cand struct{ ci, li int }
		index := make(map[uint64]cand, len(clauses))
		for ci := range clauses {
			cl := &clauses[ci]
			if cl.dead || cl.frozen {
				continue
			}
			for li := range cl.lits {
				h := clauseHashWithout(cl.lits, li)
				prev, ok := index[h]
				if !ok {
					index[h] = cand{ci, li}
					continue
				}
				p := &clauses[prev.ci]
				if p.dead || p.frozen ||
					p.lits[prev.li].atom != cl.lits[li].atom ||
					!sameExcept(p.lits, prev.li, cl.lits, li) {
					continue
				}
				if p.lits[prev.li].pos == cl.lits[li].pos {
					// Identical clauses (can arise after earlier
					// rounds): keep the first.
					cl.dead = true
					merged = true
					break
				}
				// Consensus: drop the literal from the earlier clause
				// (it keeps its position), kill the later one.
				p.lits = append(p.lits[:prev.li:prev.li], p.lits[prev.li+1:]...)
				p.frozen = true
				cl.dead = true
				merged = true
				break
			}
		}
		if !merged {
			break
		}
		for i := range clauses {
			clauses[i].frozen = false
		}
	}
	var out []Formula
	for _, cl := range clauses {
		if cl.dead {
			continue
		}
		if len(cl.lits) == 0 {
			return []Formula{True}
		}
		fs := make([]Formula, len(cl.lits))
		for i, lit := range cl.lits {
			if lit.pos {
				fs[i] = lit.f
			} else {
				fs[i] = NewNot(lit.f)
			}
		}
		out = append(out, Conj(fs...))
	}
	return out
}

// clauseHashWithout hashes a clause's literal sequence (sorted by atom
// id) with one literal's polarity-and-identity replaced by just its
// atom: two clauses agreeing on it share the remainder and pivot on
// the same atom.
func clauseHashWithout(lits []literal, skip int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, lit := range lits {
		var v uint64
		if i == skip {
			v = uint64(lit.atom)*4 + 2
		} else {
			v = uint64(lit.atom) * 4
			if lit.pos {
				v++
			}
		}
		h = (h ^ v) * prime64
	}
	return h
}

// sameExcept reports whether two literal sequences agree (atom and
// polarity) everywhere except the two skipped positions.
func sameExcept(a []literal, ai int, b []literal, bi int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, j := 0, 0; ; i, j = i+1, j+1 {
		if i == ai {
			i++
		}
		if j == bi {
			j++
		}
		if i >= len(a) || j >= len(b) {
			return i >= len(a) && j >= len(b)
		}
		if a[i].atom != b[j].atom || a[i].pos != b[j].pos {
			return false
		}
	}
}

// sortLits orders a clause's literals by atom id (insertion sort:
// clause widths are small).
func sortLits(lits []literal) {
	for i := 1; i < len(lits); i++ {
		for j := i; j > 0 && lits[j].atom < lits[j-1].atom; j-- {
			lits[j], lits[j-1] = lits[j-1], lits[j]
		}
	}
}

func sortStrings(s []string) {
	// Insertion sort: clause widths are small (one literal per fork
	// depth), so this beats sort.Strings' interface overhead.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// negKey gives the key of a formula's negation: "!"+k, with double
// negation folded at the key level.
func negKey(k string) string {
	if strings.HasPrefix(k, "!") {
		return k[1:]
	}
	return "!" + k
}

// SimplifyTerm folds constants and arithmetic identities: x+0 → x,
// 0*x → 0, 1*x → x, −(−x) → x, and x − x → 0.
func SimplifyTerm(t Term) Term {
	switch t := t.(type) {
	case nil, IntConst, IntVar:
		return t
	case Add:
		x, y := SimplifyTerm(t.X), SimplifyTerm(t.Y)
		cx, okx := x.(IntConst)
		cy, oky := y.(IntConst)
		if okx && oky {
			if sum, ok := addInt64(cx.Val, cy.Val); ok {
				return IntConst{sum}
			}
		}
		if okx && cx.Val == 0 {
			return y
		}
		if oky && cy.Val == 0 {
			return x
		}
		// x - x → 0 in both orientations.
		if ny, ok := y.(Neg); ok && termEq(x, ny.X) {
			return IntConst{0}
		}
		if nx, ok := x.(Neg); ok && termEq(nx.X, y) {
			return IntConst{0}
		}
		return Add{x, y}
	case Neg:
		x := SimplifyTerm(t.X)
		if c, ok := x.(IntConst); ok && c.Val != minInt64 {
			return IntConst{-c.Val}
		}
		if n, ok := x.(Neg); ok {
			return n.X
		}
		return Neg{x}
	case Mul:
		x := SimplifyTerm(t.X)
		if t.K == 0 {
			return IntConst{0}
		}
		if t.K == 1 {
			return x
		}
		if c, ok := x.(IntConst); ok {
			if p, ok := mulInt64(t.K, c.Val); ok {
				return IntConst{p}
			}
		}
		return Mul{K: t.K, X: x}
	case App:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = SimplifyTerm(a)
		}
		return App{Fn: t.Fn, Args: args}
	case Ite:
		// NewIte re-folds after the children simplify: a guard that
		// folded to a constant selects its arm, and arms that became
		// syntactically equal collapse — this is what turns a
		// merged-but-equal cell back into a plain value.
		return NewIte(Simplify(t.G), SimplifyTerm(t.X), SimplifyTerm(t.Y))
	}
	return t
}

const minInt64 = -1 << 63

func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// TermEq reports syntactic equality of terms. Exported for clients
// that collapse merged-but-equal state cells back to plain values.
func TermEq(a, b Term) bool { return termEq(a, b) }

// FormulaEq reports syntactic equality of formulas.
func FormulaEq(a, b Formula) bool { return formulaEq(a, b) }

// termEq is syntactic equality of terms. (Plain == is unusable: App
// holds a slice, and comparing interfaces that contain it panics.)
func termEq(a, b Term) bool {
	switch a := a.(type) {
	case IntConst:
		bb, ok := b.(IntConst)
		return ok && a.Val == bb.Val
	case IntVar:
		bb, ok := b.(IntVar)
		return ok && a.Name == bb.Name
	case Add:
		bb, ok := b.(Add)
		return ok && termEq(a.X, bb.X) && termEq(a.Y, bb.Y)
	case Neg:
		bb, ok := b.(Neg)
		return ok && termEq(a.X, bb.X)
	case Mul:
		bb, ok := b.(Mul)
		return ok && a.K == bb.K && termEq(a.X, bb.X)
	case App:
		bb, ok := b.(App)
		if !ok || a.Fn != bb.Fn || len(a.Args) != len(bb.Args) {
			return false
		}
		for i := range a.Args {
			if !termEq(a.Args[i], bb.Args[i]) {
				return false
			}
		}
		return true
	case Ite:
		bb, ok := b.(Ite)
		return ok && formulaEq(a.G, bb.G) && termEq(a.X, bb.X) && termEq(a.Y, bb.Y)
	}
	return false
}

// formulaEq is syntactic equality of formulas.
func formulaEq(a, b Formula) bool {
	switch a := a.(type) {
	case BoolConst:
		bb, ok := b.(BoolConst)
		return ok && a.Val == bb.Val
	case BoolVar:
		bb, ok := b.(BoolVar)
		return ok && a.Name == bb.Name
	case Not:
		bb, ok := b.(Not)
		return ok && formulaEq(a.X, bb.X)
	case And:
		bb, ok := b.(And)
		return ok && formulaEq(a.X, bb.X) && formulaEq(a.Y, bb.Y)
	case Or:
		bb, ok := b.(Or)
		return ok && formulaEq(a.X, bb.X) && formulaEq(a.Y, bb.Y)
	case Iff:
		bb, ok := b.(Iff)
		return ok && formulaEq(a.X, bb.X) && formulaEq(a.Y, bb.Y)
	case Eq:
		bb, ok := b.(Eq)
		return ok && termEq(a.X, bb.X) && termEq(a.Y, bb.Y)
	case Le:
		bb, ok := b.(Le)
		return ok && termEq(a.X, bb.X) && termEq(a.Y, bb.Y)
	case Lt:
		bb, ok := b.(Lt)
		return ok && termEq(a.X, bb.X) && termEq(a.Y, bb.Y)
	}
	return false
}

// FormulaKey renders an injective canonical string for f: distinct
// structures yield distinct keys (names are length-prefixed so no
// name can forge a delimiter). Negation is normalized so that
// key(¬x) == "!"+key(x).
func FormulaKey(f Formula) string {
	return string(appendFormulaKey(nil, f))
}

// appendFormulaKey is the allocation-free form of FormulaKey: it
// appends the key to b and returns the extended slice, so hot paths
// can serialize into a reusable scratch buffer and probe a map with
// the no-copy string(b) conversion the compiler elides.
func appendFormulaKey(b []byte, f Formula) []byte {
	switch f := f.(type) {
	case BoolConst:
		if f.Val {
			b = append(b, 'T')
		} else {
			b = append(b, 'F')
		}
	case BoolVar:
		b = append(b, 'b')
		b = strconv.AppendInt(b, int64(len(f.Name)), 10)
		b = append(b, ':')
		b = append(b, f.Name...)
	case Not:
		// Normalize nested negation at the key level.
		if inner, ok := f.X.(Not); ok {
			return appendFormulaKey(b, inner.X)
		}
		b = append(b, '!')
		b = appendFormulaKey(b, f.X)
	case And:
		b = append(b, "&("...)
		b = appendFormulaKey(b, f.X)
		b = append(b, ',')
		b = appendFormulaKey(b, f.Y)
		b = append(b, ')')
	case Or:
		b = append(b, "|("...)
		b = appendFormulaKey(b, f.X)
		b = append(b, ',')
		b = appendFormulaKey(b, f.Y)
		b = append(b, ')')
	case Iff:
		b = append(b, "~("...)
		b = appendFormulaKey(b, f.X)
		b = append(b, ',')
		b = appendFormulaKey(b, f.Y)
		b = append(b, ')')
	case Eq:
		b = append(b, "=("...)
		b = appendTermKey(b, f.X)
		b = append(b, ',')
		b = appendTermKey(b, f.Y)
		b = append(b, ')')
	case Le:
		b = append(b, "<=("...)
		b = appendTermKey(b, f.X)
		b = append(b, ',')
		b = appendTermKey(b, f.Y)
		b = append(b, ')')
	case Lt:
		b = append(b, "<("...)
		b = appendTermKey(b, f.X)
		b = append(b, ',')
		b = appendTermKey(b, f.Y)
		b = append(b, ')')
	default:
		b = fmt.Appendf(b, "?%T", f)
	}
	return b
}

func appendTermKey(b []byte, t Term) []byte {
	switch t := t.(type) {
	case IntConst:
		b = append(b, 'c')
		b = strconv.AppendInt(b, t.Val, 10)
	case IntVar:
		b = append(b, 'v')
		b = strconv.AppendInt(b, int64(len(t.Name)), 10)
		b = append(b, ':')
		b = append(b, t.Name...)
	case Add:
		b = append(b, "+("...)
		b = appendTermKey(b, t.X)
		b = append(b, ',')
		b = appendTermKey(b, t.Y)
		b = append(b, ')')
	case Neg:
		b = append(b, '-')
		b = appendTermKey(b, t.X)
	case Mul:
		b = append(b, '*')
		b = strconv.AppendInt(b, t.K, 10)
		b = appendTermKey(b, t.X)
	case App:
		b = append(b, '@')
		b = strconv.AppendInt(b, int64(len(t.Fn)), 10)
		b = append(b, ':')
		b = append(b, t.Fn...)
		b = append(b, '(')
		for i, a := range t.Args {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendTermKey(b, a)
		}
		b = append(b, ')')
	case Ite:
		b = append(b, "I("...)
		b = appendFormulaKey(b, t.G)
		b = append(b, ',')
		b = appendTermKey(b, t.X)
		b = append(b, ',')
		b = appendTermKey(b, t.Y)
		b = append(b, ')')
	default:
		b = fmt.Appendf(b, "?%T", t)
	}
	return b
}

// Support returns the sorted independence tokens of f: "b:" boolean
// variables, "v:" integer variables, and "fn:" uninterpreted function
// symbols. Two formulas sharing no token cannot constrain each other,
// which is the soundness condition behind constraint-independence
// slicing. (Function applications are merged at symbol granularity:
// congruence can link any two applications of one symbol.)
func Support(f Formula) []string {
	set := map[string]bool{}
	supportFormula(f, set)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sortStrings(out)
	return out
}

func supportFormula(f Formula, set map[string]bool) {
	switch f := f.(type) {
	case BoolVar:
		set["b:"+f.Name] = true
	case Not:
		supportFormula(f.X, set)
	case And:
		supportFormula(f.X, set)
		supportFormula(f.Y, set)
	case Or:
		supportFormula(f.X, set)
		supportFormula(f.Y, set)
	case Iff:
		supportFormula(f.X, set)
		supportFormula(f.Y, set)
	case Eq:
		supportTerm(f.X, set)
		supportTerm(f.Y, set)
	case Le:
		supportTerm(f.X, set)
		supportTerm(f.Y, set)
	case Lt:
		supportTerm(f.X, set)
		supportTerm(f.Y, set)
	}
}

func supportTerm(t Term, set map[string]bool) {
	switch t := t.(type) {
	case IntVar:
		set["v:"+t.Name] = true
	case Add:
		supportTerm(t.X, set)
		supportTerm(t.Y, set)
	case Neg:
		supportTerm(t.X, set)
	case Mul:
		supportTerm(t.X, set)
	case App:
		set["fn:"+t.Fn] = true
		for _, a := range t.Args {
			supportTerm(a, set)
		}
	case Ite:
		supportFormula(t.G, set)
		supportTerm(t.X, set)
		supportTerm(t.Y, set)
	}
}
