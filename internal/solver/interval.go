package solver

// This file implements the interval fast path: a constant-time-per-
// conjunct decision procedure for conjunctions whose conjuncts are
// boolean literals or single-variable bounds (x ⋈ c). Branch guards
// produced by symbolic execution are overwhelmingly of this shape, so
// most feasibility queries never reach DPLL at all.

// iv is a rational interval with open/closed ends plus punched-out
// points (from disequalities). Bounds are int64 because guards compare
// against IntConst; over the dense rationals an interval is empty iff
// lo > hi or lo == hi with either end open.
type iv struct {
	hasLo, hasHi   bool
	lo, hi         int64
	loOpen, hiOpen bool
	holes          []int64
}

func (v *iv) boundLo(c int64, open bool) {
	if !v.hasLo || c > v.lo || (c == v.lo && open) {
		v.hasLo, v.lo, v.loOpen = true, c, open
	}
}

func (v *iv) boundHi(c int64, open bool) {
	if !v.hasHi || c < v.hi || (c == v.hi && open) {
		v.hasHi, v.hi, v.hiOpen = true, c, open
	}
}

func (v *iv) empty() bool {
	if !v.hasLo || !v.hasHi {
		return false
	}
	if v.lo > v.hi {
		return true
	}
	if v.lo == v.hi {
		if v.loOpen || v.hiOpen {
			return true
		}
		// Point interval: dead iff the point is punched out.
		for _, h := range v.holes {
			if h == v.lo {
				return true
			}
		}
	}
	return false
}

// QuickConj tries to decide the conjunction of fs with per-variable
// interval reasoning. decided=false means the conjunction contains a
// shape the fast path does not recognize AND no recognized subset is
// already contradictory — the caller must fall back to the full
// solver. When decided, sat is exact for rational semantics: every
// recognized conjunct constrains a single variable, so per-variable
// intervals are a complete decision procedure for the recognized
// fragment, and a contradiction within the recognized subset refutes
// the whole conjunction.
func QuickConj(fs []Formula) (sat, decided bool) {
	bools := map[string]bool{}
	ivs := map[string]*iv{}
	all := true
	get := func(name string) *iv {
		v := ivs[name]
		if v == nil {
			v = &iv{}
			ivs[name] = v
		}
		return v
	}
	var add func(f Formula, pos bool) bool // false = recognized contradiction
	add = func(f Formula, pos bool) bool {
		switch f := f.(type) {
		case BoolConst:
			if f.Val != pos {
				return false
			}
			return true
		case BoolVar:
			if prev, ok := bools[f.Name]; ok {
				return prev == pos
			}
			bools[f.Name] = pos
			return true
		case Not:
			return add(f.X, !pos)
		case And:
			if pos {
				return add(f.X, true) && add(f.Y, true)
			}
		case Eq:
			if name, c, ok := varConst(f.X, f.Y); ok {
				v := get(name)
				if pos {
					v.boundLo(c, false)
					v.boundHi(c, false)
				} else {
					v.holes = append(v.holes, c)
				}
				return !v.empty()
			}
		case Le:
			if name, c, flip, ok := varConstDir(f.X, f.Y); ok {
				v := get(name)
				switch {
				case pos && !flip: // x <= c
					v.boundHi(c, false)
				case pos && flip: // c <= x
					v.boundLo(c, false)
				case !pos && !flip: // !(x <= c): x > c
					v.boundLo(c, true)
				default: // !(c <= x): x < c
					v.boundHi(c, true)
				}
				return !v.empty()
			}
		case Lt:
			if name, c, flip, ok := varConstDir(f.X, f.Y); ok {
				v := get(name)
				switch {
				case pos && !flip: // x < c
					v.boundHi(c, true)
				case pos && flip: // c < x
					v.boundLo(c, true)
				case !pos && !flip: // !(x < c): x >= c
					v.boundLo(c, false)
				default: // !(c < x): x <= c
					v.boundHi(c, false)
				}
				return !v.empty()
			}
		}
		all = false
		return true // unrecognized: no contradiction evidence
	}
	for _, f := range fs {
		if !add(f, true) {
			return false, true
		}
	}
	if !all {
		return false, false
	}
	return true, true
}

// varConst matches (IntVar, IntConst) in either order.
func varConst(x, y Term) (name string, c int64, ok bool) {
	if v, okv := x.(IntVar); okv {
		if k, okc := y.(IntConst); okc {
			return v.Name, k.Val, true
		}
	}
	if v, okv := y.(IntVar); okv {
		if k, okc := x.(IntConst); okc {
			return v.Name, k.Val, true
		}
	}
	return "", 0, false
}

// varConstDir matches an ordered comparison operand pair; flip=true
// means the constant is on the left (c ⋈ x).
func varConstDir(x, y Term) (name string, c int64, flip, ok bool) {
	if v, okv := x.(IntVar); okv {
		if k, okc := y.(IntConst); okc {
			return v.Name, k.Val, false, true
		}
	}
	if k, okc := x.(IntConst); okc {
		if v, okv := y.(IntVar); okv {
			return v.Name, k.Val, true, true
		}
	}
	return "", 0, false, false
}
