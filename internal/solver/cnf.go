package solver

import (
	"fmt"
	"sort"
)

// This file is the clausal half of the CDCL core (cdcl.go): literal
// encoding, the clause/watch-list representation, and the one-sided
// Tseitin (Plaisted–Greenbaum) translation from the NNF front end into
// the persistent clause database.
//
// A literal packs a variable index and a sign into one int: v<<1 for
// the positive literal, v<<1|1 for the negation. Variable 0 is the
// constant ⊤ (assigned true at level 0 forever), so constant formulas
// encode without special cases.

func mkLit(v int, pos bool) int {
	l := v << 1
	if !pos {
		l |= 1
	}
	return l
}

func litVar(l int) int  { return l >> 1 }
func litNeg(l int) int  { return l ^ 1 }
func litPos(l int) bool { return l&1 == 0 }

// cclause ("CDCL clause"; the simplifier owns the name clause) is one
// disjunction in the database. lits[0] and lits[1] are
// the two watched literals; propagation maintains the invariant that a
// watch only goes false when the clause is satisfied, unit, or
// conflicting. id is the creation sequence number — the deterministic
// tie-break everywhere activities collide.
type cclause struct {
	lits   []int
	learnt bool
	act    float64
	id     uint64
}

// root is one encoded assumption formula: the literal that asserts it
// and the closure of encoding variables it reaches (atoms and aux),
// which drives per-query relevance marking and the MaxAtoms account.
type root struct {
	lit     int
	vars    []int
	atoms   int
	trivial bool // constant formula; vars is empty
}

// nodeKey identifies an internal NNF connective by operator and child
// literals, so structurally shared subtrees share one definition
// variable across every query of the solver's lifetime.
type nodeKey struct {
	op   byte // '&' or '|'
	x, y int
}

// newVar allocates a fresh variable; a is nil for definition (aux)
// variables.
func (d *cdcl) newVar(a *atom) int {
	v := len(d.assigns)
	d.assigns = append(d.assigns, 0)
	d.level = append(d.level, 0)
	d.reason = append(d.reason, nil)
	d.atoms = append(d.atoms, a)
	d.deps = append(d.deps, nil)
	d.activity = append(d.activity, 0)
	d.polarity = append(d.polarity, false)
	d.relevant = append(d.relevant, 0)
	d.seen = append(d.seen, 0)
	d.watches = append(d.watches, nil, nil)
	d.heap.pos = append(d.heap.pos, -1)
	return v
}

// varFor interns the decision variable of an atom.
func (d *cdcl) varFor(a *atom) int {
	if v, ok := d.varOf[a]; ok {
		return v
	}
	v := d.newVar(a)
	d.varOf[a] = v
	return v
}

// litValue evaluates a literal under the current assignment:
// +1 true, -1 false, 0 unassigned.
func (d *cdcl) litValue(l int) int8 {
	v := d.assigns[litVar(l)]
	if !litPos(l) {
		return -v
	}
	return v
}

// encodeNode translates an NNF node to its defining literal,
// emitting permanent definition clauses for connectives not seen
// before. NNF nodes occur only positively under the front end (negation
// sits on literals), so the one-sided Plaisted–Greenbaum implications
// (¬v ∨ children) suffice: they are conservative extensions — setting
// every definition variable false satisfies them all — which is what
// makes the clause database permanently satisfiable and assumption
// literals safe to retract.
func (d *cdcl) encodeNode(n node) int {
	switch t := n.(type) {
	case nConst:
		return mkLit(constVar, t.val)
	case nLit:
		return mkLit(d.varFor(t.a), t.pos)
	case nAnd:
		x := d.encodeNode(t.x)
		y := d.encodeNode(t.y)
		k := nodeKey{'&', x, y}
		if v, ok := d.nodeVs[k]; ok {
			return mkLit(v, true)
		}
		v := d.newVar(nil)
		d.nodeVs[k] = v
		d.deps[v] = []int{x, y}
		d.addPerm([]int{mkLit(v, false), x})
		d.addPerm([]int{mkLit(v, false), y})
		return mkLit(v, true)
	case nOr:
		x := d.encodeNode(t.x)
		y := d.encodeNode(t.y)
		k := nodeKey{'|', x, y}
		if v, ok := d.nodeVs[k]; ok {
			return mkLit(v, true)
		}
		v := d.newVar(nil)
		d.nodeVs[k] = v
		d.deps[v] = []int{x, y}
		d.addPerm([]int{mkLit(v, false), x, y})
		return mkLit(v, true)
	}
	panic(fmt.Sprintf("solver: unknown NNF node %T", n))
}

// addPerm inserts a permanent clause. Called only at decision level 0
// (queries encode their roots before asserting assumptions), so
// level-0-true literals satisfy the clause forever and level-0-false
// literals can be stripped.
func (d *cdcl) addPerm(lits []int) {
	out := make([]int, 0, len(lits))
	for _, l := range lits {
		switch d.litValue(l) {
		case 1:
			return // satisfied forever
		case -1:
			continue // false forever
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == litNeg(l) {
				return // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		// Cannot happen for the conservative encodings this core emits;
		// defensive poisoning keeps a bug from becoming a wrong verdict.
		d.unsatPerm = true
	case 1:
		d.uncheckedEnqueue(out[0], nil)
	default:
		c := &cclause{lits: out, id: d.nextID}
		d.nextID++
		d.clauses = append(d.clauses, c)
		d.attach(c)
	}
}

// attach registers c on the watch lists of its first two literals.
func (d *cdcl) attach(c *cclause) {
	d.watches[c.lits[0]] = append(d.watches[c.lits[0]], c)
	d.watches[c.lits[1]] = append(d.watches[c.lits[1]], c)
}

// detach removes c from both watch lists.
func (d *cdcl) detach(c *cclause) {
	for _, l := range c.lits[:2] {
		ws := d.watches[l]
		for i, w := range ws {
			if w == c {
				d.watches[l] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
	}
}

// rootFor encodes one assumption formula, memoized by canonical text
// for the solver's lifetime: the engine's forked path conditions
// re-assert long shared prefixes, and a registry hit makes each old
// conjunct cost one map lookup instead of a re-encoding.
func (d *cdcl) rootFor(f Formula) (*root, error) {
	// Malformed inputs (nil subformulas or subterms) must surface as
	// errors before the formula is serialized as a registry key: the
	// key walker would silently tag them, the NNF conversion errors.
	if err := checkFormula(f); err != nil {
		return nil, err
	}
	// First-chance lookup on the raw formula: re-asserted conjuncts
	// (the common case — every forked path condition repeats its whole
	// prefix) skip Simplify entirely, which otherwise dominates the
	// per-query cost on workloads made of thousands of tiny queries.
	// The key is serialized into a reusable scratch so a hit allocates
	// nothing (the compiler elides the string conversion in the probe).
	d.keyBuf = appendFormulaKey(d.keyBuf[:0], f)
	if r, ok := d.rawRoots[string(d.keyBuf)]; ok {
		return r, nil
	}
	rawKey := string(d.keyBuf)
	f = Simplify(f)
	key := FormulaKey(f)
	if r, ok := d.roots[key]; ok {
		d.rawRoots[rawKey] = r
		return r, nil
	}
	g := f
	if formulaHasIte(f) {
		// Lower guarded terms against the persistent table (identical
		// ites share one "$ite<n>" variable across all queries) and fold
		// the definitions this formula depends on into its own root: the
		// definitions must hold exactly when the formula is asserted,
		// and shared definition encodings dedupe through nodeVs anyway.
		d.lw.used = map[string]bool{}
		g = d.lw.formula(f)
		keys := make([]string, 0, len(d.lw.used))
		for k := range d.lw.used {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		conj := make([]Formula, 0, 2*len(keys)+1)
		conj = append(conj, g)
		for _, k := range keys {
			defs := d.lw.defsByKey[k]
			conj = append(conj, defs[0], defs[1])
		}
		d.lw.used = nil
		g = Conj(conj...)
	}
	n, err := toNNF(g, true, d.table)
	if err != nil {
		return nil, err
	}
	lit := d.encodeNode(n)
	r := &root{lit: lit}
	if litVar(lit) == constVar {
		r.trivial = true
	} else {
		r.vars, r.atoms = d.closure(lit)
	}
	d.roots[key] = r
	d.rawRoots[rawKey] = r
	return r, nil
}

// closure collects the encoding variables reachable from l through
// definition dependencies, plus the count of atom variables among
// them.
func (d *cdcl) closure(l int) ([]int, int) {
	var vars []int
	natoms := 0
	seen := map[int]bool{}
	var visit func(int)
	visit = func(l int) {
		v := litVar(l)
		if v == constVar || seen[v] {
			return
		}
		seen[v] = true
		vars = append(vars, v)
		if d.atoms[v] != nil {
			natoms++
		}
		for _, c := range d.deps[v] {
			visit(c)
		}
	}
	visit(l)
	return vars, natoms
}

// varHeap is a max-heap of variables ordered by activity descending,
// with the variable index ascending as the deterministic tie-break —
// the "no randomness" half of the VSIDS contract.
type varHeap struct {
	data []int
	pos  []int // var -> index in data, -1 when absent
	act  *[]float64
}

func (h *varHeap) less(a, b int) bool {
	aa, ab := (*h.act)[a], (*h.act)[b]
	if aa != ab {
		return aa > ab
	}
	return a < b
}

func (h *varHeap) clear() {
	for _, v := range h.data {
		h.pos[v] = -1
	}
	h.data = h.data[:0]
}

func (h *varHeap) contains(v int) bool { return h.pos[v] >= 0 }

func (h *varHeap) push(v int) {
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = len(h.data) - 1
	h.up(len(h.data) - 1)
}

func (h *varHeap) pop() int {
	v := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[v] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.down(0)
	}
	return v
}

// fix restores the heap property after v's activity increased.
func (h *varHeap) fix(v int) {
	if i := h.pos[v]; i >= 0 {
		h.up(i)
	}
}

func (h *varHeap) up(i int) {
	v := h.data[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.data[p]) {
			break
		}
		h.data[i] = h.data[p]
		h.pos[h.data[i]] = i
		i = p
	}
	h.data[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int) {
	v := h.data[i]
	n := len(h.data)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(h.data[c+1], h.data[c]) {
			c++
		}
		if !h.less(h.data[c], v) {
			break
		}
		h.data[i] = h.data[c]
		h.pos[h.data[i]] = i
		i = c
	}
	h.data[i] = v
	h.pos[v] = i
}

// checkFormula rejects structurally malformed formulas — nil
// subformulas, nil subterms, or foreign implementations — with the
// same error shapes the NNF conversion produces, so the CDCL path
// fails like the DPLL path instead of panicking inside String.
func checkFormula(f Formula) error {
	switch f := f.(type) {
	case BoolConst, BoolVar:
		return nil
	case Not:
		return checkFormula(f.X)
	case And:
		if err := checkFormula(f.X); err != nil {
			return err
		}
		return checkFormula(f.Y)
	case Or:
		if err := checkFormula(f.X); err != nil {
			return err
		}
		return checkFormula(f.Y)
	case Iff:
		if err := checkFormula(f.X); err != nil {
			return err
		}
		return checkFormula(f.Y)
	case Eq:
		if err := checkTerm(f.X); err != nil {
			return err
		}
		return checkTerm(f.Y)
	case Le:
		if err := checkTerm(f.X); err != nil {
			return err
		}
		return checkTerm(f.Y)
	case Lt:
		if err := checkTerm(f.X); err != nil {
			return err
		}
		return checkTerm(f.Y)
	case nil:
		return fmt.Errorf("solver: nil formula")
	default:
		return fmt.Errorf("solver: unknown formula %T", f)
	}
}

func checkTerm(t Term) error {
	switch t := t.(type) {
	case IntConst, IntVar:
		return nil
	case Add:
		if err := checkTerm(t.X); err != nil {
			return err
		}
		return checkTerm(t.Y)
	case Neg:
		return checkTerm(t.X)
	case Mul:
		return checkTerm(t.X)
	case App:
		for _, a := range t.Args {
			if err := checkTerm(a); err != nil {
				return err
			}
		}
		return nil
	case Ite:
		if err := checkFormula(t.G); err != nil {
			return err
		}
		if err := checkTerm(t.X); err != nil {
			return err
		}
		return checkTerm(t.Y)
	case nil:
		return fmt.Errorf("solver: nil term")
	default:
		return fmt.Errorf("solver: unknown term %T", t)
	}
}
