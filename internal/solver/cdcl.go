package solver

import (
	"fmt"
	"sort"
)

// This file is the conflict-driven search half of the CDCL core; the
// clausal representation and encoder live in cnf.go, the incremental
// theory trail in theory.go. One cdcl value persists per Solver across
// queries: atom interning, the ite-lowering table, the Plaisted–
// Greenbaum definitions, and every learned clause are retained, so a
// query's cost is proportional to its new conjuncts — the incremental-
// assumption contract the engine's forked path conditions rely on.
//
// Soundness of retention: definition clauses are conservative
// extensions (all definition variables false satisfies them), theory
// blocking clauses are tautologies of the arithmetic, and learned
// clauses are resolvents of the two — the permanent database is
// therefore satisfiable in every query, only the per-query assumption
// literals carry content, and nothing learned under one assumption set
// can leak unsoundness into another.

// constVar is variable 0, pinned true at level 0 forever; the
// constant-formula literal without special cases.
const constVar = 0

// defaultMaxLearned bounds the learned-clause database when
// Solver.MaxLearned is 0.
const defaultMaxLearned = 10000

// restartBase scales the Luby restart sequence, in conflicts.
const restartBase = 100

// cdcl is the persistent CDCL state of one Solver.
type cdcl struct {
	s *Solver

	// Variables. atoms[v] is nil for definition variables; deps[v]
	// holds a definition's child literals for closure walks.
	atoms []*atom
	varOf map[*atom]int
	deps  [][]int

	// Encoding front end, persistent so identical conjuncts and ites
	// re-encode to identical variables across queries.
	table  *atomTable
	lw     *iteLower
	nodeVs map[nodeKey]int
	roots  map[string]*root
	// rawRoots short-circuits rootFor before simplification: keyed by
	// the raw formula's canonical text, it maps every previously seen
	// conjunct straight to its root without paying Simplify again.
	// keyBuf is the serialization scratch for the probe.
	rawRoots map[string]*root
	keyBuf   []byte
	conjBuf  []Formula // per-query conjunct-splitting scratch

	// Clause database.
	clauses []*cclause
	learnts []*cclause
	watches [][]*cclause
	nextID  uint64

	// Assignment trail.
	assigns  []int8
	level    []int32
	reason   []*cclause
	trail    []int
	trailLim []int
	qhead    int

	// Decision order (VSIDS with deterministic tie-breaks).
	activity []float64
	varInc   float64
	claInc   float64
	heap     varHeap
	polarity []bool

	seen []byte // analyze scratch, one byte per variable

	// Per-query relevance: relevant[v] == epoch marks v as belonging to
	// the current query's root closures. Decisions are restricted to
	// relevant variables, so stale encodings from earlier queries cost
	// nothing.
	relevant []uint32
	epoch    uint32

	th theoryTrail

	// unsatPerm poisons the instance if the permanent database ever
	// derives a level-0 conflict. The conservative-extension argument
	// above says this cannot happen, so it is a bug trap: queries on a
	// poisoned instance degrade to "unknown" instead of returning a
	// wrong verdict.
	unsatPerm bool
}

func newCDCL(s *Solver) *cdcl {
	d := &cdcl{
		s:        s,
		varOf:    map[*atom]int{},
		table:    newAtomTable(),
		lw:       &iteLower{vars: map[string]IntVar{}, defsByKey: map[string][2]Formula{}},
		nodeVs:   map[nodeKey]int{},
		roots:    map[string]*root{},
		rawRoots: map[string]*root{},
		varInc:   1,
		claInc:   1,
	}
	d.heap.act = &d.activity
	v := d.newVar(nil) // constVar
	d.uncheckedEnqueue(mkLit(v, true), nil)
	d.qhead = 1 // nothing watches ⊤
	return d
}

func (d *cdcl) decisionLevel() int { return len(d.trailLim) }

func (d *cdcl) newDecisionLevel() { d.trailLim = append(d.trailLim, len(d.trail)) }

// uncheckedEnqueue records literal p as true, with its implying clause
// (nil for decisions, assumptions, and level-0 facts), and pushes any
// arithmetic content onto the theory trail.
func (d *cdcl) uncheckedEnqueue(p int, from *cclause) {
	v := litVar(p)
	if litPos(p) {
		d.assigns[v] = 1
	} else {
		d.assigns[v] = -1
	}
	d.level[v] = int32(d.decisionLevel())
	d.reason[v] = from
	if a := d.atoms[v]; a != nil && a.kind != atomBool {
		d.th.push(a, litPos(p), len(d.trail))
	}
	d.trail = append(d.trail, p)
}

// cancelUntil backtracks to decision level lvl, saving phases and
// returning relevant variables to the decision heap.
func (d *cdcl) cancelUntil(lvl int) {
	if d.decisionLevel() <= lvl {
		return
	}
	limit := d.trailLim[lvl]
	for i := len(d.trail) - 1; i >= limit; i-- {
		p := d.trail[i]
		v := litVar(p)
		d.polarity[v] = litPos(p)
		d.assigns[v] = 0
		d.reason[v] = nil
		if d.relevant[v] == d.epoch {
			d.heap.push(v)
		}
	}
	d.trail = d.trail[:limit]
	d.trailLim = d.trailLim[:lvl]
	d.qhead = limit
	d.th.shrink(limit)
}

// propagate runs two-watched-literal unit propagation to fixpoint,
// returning the conflicting clause or nil.
func (d *cdcl) propagate() *cclause {
	for d.qhead < len(d.trail) {
		p := d.trail[d.qhead]
		d.qhead++
		d.s.Stats.Propagations++
		fl := litNeg(p) // the literal that just became false
		ws := d.watches[fl]
		out := ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if c.lits[0] == fl {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if d.litValue(first) == 1 {
				out = append(out, c)
				continue
			}
			moved := false
			for j := 2; j < len(c.lits); j++ {
				if d.litValue(c.lits[j]) != -1 {
					c.lits[1], c.lits[j] = c.lits[j], c.lits[1]
					d.watches[c.lits[1]] = append(d.watches[c.lits[1]], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			out = append(out, c)
			if d.litValue(first) == -1 {
				// Conflict: keep the unvisited suffix watched and stop.
				out = append(out, ws[i+1:]...)
				d.watches[fl] = out
				d.qhead = len(d.trail)
				return c
			}
			d.uncheckedEnqueue(first, c)
		}
		d.watches[fl] = out
	}
	return nil
}

// varBump increases a variable's activity (with the standard rescale)
// and restores its heap position.
func (d *cdcl) varBump(v int) {
	d.activity[v] += d.varInc
	if d.activity[v] > 1e100 {
		for i := range d.activity {
			d.activity[i] *= 1e-100
		}
		d.varInc *= 1e-100
	}
	d.heap.fix(v)
}

func (d *cdcl) varDecay() { d.varInc *= 1 / 0.95 }

func (d *cdcl) claBump(c *cclause) {
	if !c.learnt {
		return
	}
	c.act += d.claInc
	if c.act > 1e20 {
		for _, l := range d.learnts {
			l.act *= 1e-20
		}
		d.claInc *= 1e-20
	}
}

func (d *cdcl) claDecay() { d.claInc *= 1 / 0.999 }

// analyze derives the 1-UIP learned clause from a conflict: resolve
// the conflicting clause backwards along the trail's reasons until
// exactly one literal of the current decision level remains. Returns
// the learned clause (asserting literal first) and the backjump level
// (the second-highest level in the clause). Precondition: the conflict
// involves the current decision level, which is > 0.
func (d *cdcl) analyze(confl *cclause) ([]int, int) {
	learnt := []int{0} // slot 0 becomes the asserting literal
	pathC := 0
	p := -1
	idx := len(d.trail) - 1
	for {
		d.claBump(confl)
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := litVar(q)
			if d.seen[v] == 0 && d.level[v] > 0 {
				d.seen[v] = 1
				d.varBump(v)
				if int(d.level[v]) >= d.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for d.seen[litVar(d.trail[idx])] == 0 {
			idx--
		}
		p = d.trail[idx]
		v := litVar(p)
		d.seen[v] = 0
		idx--
		pathC--
		if pathC <= 0 {
			break
		}
		confl = d.reason[v]
	}
	learnt[0] = litNeg(p)

	bt := 0
	if len(learnt) > 1 {
		mi := 1
		for i := 2; i < len(learnt); i++ {
			if d.level[litVar(learnt[i])] > d.level[litVar(learnt[mi])] {
				mi = i
			}
		}
		learnt[1], learnt[mi] = learnt[mi], learnt[1]
		bt = int(d.level[litVar(learnt[1])])
	}
	for _, q := range learnt {
		d.seen[litVar(q)] = 0
	}
	return learnt, bt
}

// record installs a learned clause after the backjump and asserts its
// first literal.
func (d *cdcl) record(learnt []int) {
	d.s.Stats.LearnedClauses++
	if len(learnt) == 1 {
		d.uncheckedEnqueue(learnt[0], nil)
		return
	}
	c := &cclause{lits: learnt, learnt: true, id: d.nextID}
	d.nextID++
	d.learnts = append(d.learnts, c)
	d.attach(c)
	d.claBump(c)
	d.uncheckedEnqueue(learnt[0], c)
}

// locked reports whether c is the reason of its asserting literal's
// assignment (such clauses must survive database reduction).
func (d *cdcl) locked(c *cclause) bool {
	v := litVar(c.lits[0])
	return d.assigns[v] != 0 && d.reason[v] == c
}

// maxLearned is the learned-clause cap (Solver.MaxLearned, defaulted).
func (d *cdcl) maxLearned() int {
	if d.s.MaxLearned > 0 {
		return d.s.MaxLearned
	}
	return defaultMaxLearned
}

// reduceDB forgets roughly half of the learned clauses, lowest
// activity first (creation order as the deterministic tie-break),
// keeping binary and locked clauses.
func (d *cdcl) reduceDB() {
	byAct := append([]*cclause(nil), d.learnts...)
	sort.Slice(byAct, func(i, j int) bool {
		if byAct[i].act != byAct[j].act {
			return byAct[i].act < byAct[j].act
		}
		return byAct[i].id < byAct[j].id
	})
	drop := map[*cclause]bool{}
	for _, c := range byAct[:len(byAct)/2] {
		if len(c.lits) > 2 && !d.locked(c) {
			drop[c] = true
		}
	}
	kept := d.learnts[:0]
	for _, c := range d.learnts {
		if drop[c] {
			d.detach(c)
			d.s.Stats.ForgottenClauses++
		} else {
			kept = append(kept, c)
		}
	}
	d.learnts = kept
}

// luby is the Luby restart sequence (1,1,2,1,1,2,4,...), i >= 1.
func luby(i int) int {
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// theoryConfl checks the theory trail above its consistency watermark
// and renders an inconsistency as a conflicting (blocking) clause: the
// disjunction of the involved literals' negations, a tautology of the
// arithmetic. Returns nil when consistent.
func (d *cdcl) theoryConfl() *cclause {
	if d.th.checked == len(d.th.lits) {
		return nil
	}
	d.s.Stats.TheoryChecks++
	if d.th.set.consistent() {
		d.th.checked = len(d.th.lits)
		return nil
	}
	d.s.Stats.TheoryConflicts++
	involved := d.th.explain()
	lits := make([]int, len(involved))
	for i, tl := range involved {
		lits[i] = litNeg(mkLit(d.varOf[tl.a], tl.pos))
	}
	// Not attached: the 1-UIP clause analyze derives from it blocks the
	// assignment path, and the consistency watermark prevents re-checks.
	return &cclause{lits: lits, learnt: true, id: d.nextID}
}

// maxLevelOf returns the highest decision level among c's literals.
func (d *cdcl) maxLevelOf(c *cclause) int {
	max := 0
	for _, l := range c.lits {
		if lv := int(d.level[litVar(l)]); lv > max {
			max = lv
		}
	}
	return max
}

// flattenConj appends the leaves of f's top-level ∧-spine to out.
// Asserting the leaves as separate assumption roots is equivalent to
// asserting the conjunction, and it is what makes monolithic queries
// incremental: each leaf is registry-keyed on its own.
func flattenConj(f Formula, out []Formula) []Formula {
	if a, ok := f.(And); ok {
		out = flattenConj(a.X, out)
		return flattenConj(a.Y, out)
	}
	return append(out, f)
}

// solve decides the conjunction of fs under the retained database.
func (d *cdcl) solve(fs []Formula, wantModel bool) (bool, *Model, error) {
	if d.unsatPerm {
		return false, nil, ErrResource{"internal: cclause database poisoned"}
	}
	d.cancelUntil(0)
	// Split every query formula along its top-level conjunction spine:
	// clients that hand in one monolithic path condition per query
	// (Sat(pc1 ∧ ... ∧ pcn)) still share root encodings for the long
	// common prefix with their previous queries, exactly as if they had
	// used the assumption stack conjunct by conjunct.
	d.conjBuf = d.conjBuf[:0]
	for _, f := range fs {
		d.conjBuf = flattenConj(f, d.conjBuf)
	}
	rs := make([]*root, 0, len(d.conjBuf))
	for _, f := range d.conjBuf {
		r, err := d.rootFor(f)
		if err != nil {
			return false, nil, err
		}
		if d.unsatPerm {
			return false, nil, ErrResource{"internal: cclause database poisoned"}
		}
		rs = append(rs, r)
	}

	// Per-query accounting: mark every root-closure variable relevant
	// and count the distinct atoms, mirroring the DPLL per-query
	// MaxAtoms bound.
	d.epoch++
	natoms := 0
	for _, r := range rs {
		for _, v := range r.vars {
			if d.relevant[v] != d.epoch {
				d.relevant[v] = d.epoch
				if d.atoms[v] != nil {
					natoms++
				}
			}
		}
	}
	if natoms > d.s.MaxAtoms {
		return false, nil, ErrResource{fmt.Sprintf("query has %d atoms (max %d)", natoms, d.s.MaxAtoms)}
	}
	d.s.Stats.Atoms += natoms

	// Rebuild the decision heap from this query's unassigned relevant
	// variables (clearing any stale content from an aborted query).
	d.heap.clear()
	for _, r := range rs {
		for _, v := range r.vars {
			if d.assigns[v] == 0 {
				d.heap.push(v)
			}
		}
	}

	assumps := make([]int, len(rs))
	for i, r := range rs {
		assumps[i] = r.lit
	}
	return d.search(assumps, wantModel)
}

// search is the CDCL main loop: propagate to fixpoint, check the
// theory, resolve conflicts by 1-UIP learning and backjumping, assert
// assumptions as successive decision levels, then branch on the most
// active relevant variable. Assumptions re-assert themselves after
// restarts and deep backjumps because the assumption levels are
// re-walked whenever the decision level drops below len(assumps).
func (d *cdcl) search(assumps []int, wantModel bool) (bool, *Model, error) {
	budget := d.s.MaxDecisions
	conflicts := 0
	restartRun := 1
	restartLim := restartBase * luby(restartRun)
	polls := 0
	for {
		confl := d.propagate()
		if confl == nil {
			confl = d.theoryConfl()
		}
		if confl != nil {
			d.s.Stats.Conflicts++
			conflicts++
			polls++
			if polls&31 == 0 {
				if err := d.s.poll(); err != nil {
					return false, nil, err
				}
			}
			// A theory conflict may involve only literals below the
			// current decision level (explain can drop the newest); fall
			// back to the highest involved level before resolving.
			if ml := d.maxLevelOf(confl); ml < d.decisionLevel() {
				d.cancelUntil(ml)
			}
			if d.decisionLevel() == 0 {
				d.unsatPerm = true
				return false, nil, ErrResource{"internal: conflict at decision level 0"}
			}
			learnt, bt := d.analyze(confl)
			d.cancelUntil(bt)
			d.record(learnt)
			d.varDecay()
			d.claDecay()
			if len(d.learnts) > d.maxLearned() {
				d.reduceDB()
			}
			if conflicts >= restartLim {
				d.s.Stats.Restarts++
				conflicts = 0
				restartRun++
				restartLim = restartBase * luby(restartRun)
				d.cancelUntil(0)
			}
			continue
		}
		if lvl := d.decisionLevel(); lvl < len(assumps) {
			p := assumps[lvl]
			switch d.litValue(p) {
			case 1:
				d.newDecisionLevel() // already true: dummy level
			case -1:
				// The database under the earlier assumptions refutes
				// this one: unsat under assumptions.
				return false, nil, nil
			default:
				d.newDecisionLevel()
				d.uncheckedEnqueue(p, nil)
			}
			continue
		}
		v := d.pickBranchVar()
		if v < 0 {
			// Every relevant variable is assigned, every clause over
			// them satisfied, and the theory trail consistent: sat.
			var m *Model
			if wantModel {
				m = d.captureModel()
			}
			return true, m, nil
		}
		if budget <= 0 {
			return false, nil, ErrResource{"decision budget exhausted"}
		}
		budget--
		d.s.Stats.Decisions++
		polls++
		if polls&31 == 0 {
			if err := d.s.poll(); err != nil {
				return false, nil, err
			}
		}
		d.newDecisionLevel()
		d.uncheckedEnqueue(mkLit(v, d.polarity[v]), nil)
	}
}

// pickBranchVar pops decision candidates until an unassigned one
// surfaces; -1 when none remain.
func (d *cdcl) pickBranchVar() int {
	for len(d.heap.data) > 0 {
		v := d.heap.pop()
		if d.assigns[v] == 0 {
			return v
		}
	}
	return -1
}

// captureModel extracts a witness from the final trail: a rational
// model of the theory trail plus the boolean atoms in assignment
// order. Best-effort, exactly like the DPLL capture — a nil model
// never weakens the sat verdict.
func (d *cdcl) captureModel() *Model {
	ints, ok := d.th.set.model()
	if !ok {
		return nil
	}
	m := &Model{Ints: ints, Bools: map[string]bool{}}
	for _, p := range d.trail {
		v := litVar(p)
		if a := d.atoms[v]; a != nil && a.kind == atomBool {
			m.Bools[a.name] = litPos(p)
		}
	}
	return m
}
