package solver

import "math/big"

// This file is the single home of literal classification: the mapping
// from an assigned decision atom to its arithmetic content. Both
// search cores share it — the DPLL functions capture/theoryOK used to
// carry two diverging copies of the switch — and the CDCL core builds
// its incremental theory trail on top of it.

// negLin returns the negated linear form of an arithmetic atom,
// computed once and cached: ¬(l <= 0) is -l < 0 and ¬(l < 0) is
// -l <= 0, so the negation of either inequality kind reverses and
// re-strictifies the same -l.
func (a *atom) negLin() *lin {
	if a.negl == nil {
		neg := a.l.clone()
		neg.scale(ratNegOne())
		a.negl = neg
	}
	return a.negl
}

// theoryLits is a conjunction of arithmetic literals in the shape
// theoryConj consumes. Literals append in assignment order and retract
// in reverse (strictly LIFO), so each kind's slice is a stack aligned
// with the search trail.
type theoryLits struct {
	eqs    []*lin
	ineqs  []ineq
	diseqs []*lin
}

// add appends the arithmetic content of atom a assigned v. Boolean
// atoms are theory-free and contribute nothing.
func (t *theoryLits) add(a *atom, v bool) {
	switch a.kind {
	case atomBool:
		// Theory-free.
	case atomEq:
		if v {
			t.eqs = append(t.eqs, a.l)
		} else {
			t.diseqs = append(t.diseqs, a.l)
		}
	case atomLe:
		if v {
			t.ineqs = append(t.ineqs, ineq{a.l, false})
		} else {
			t.ineqs = append(t.ineqs, ineq{a.negLin(), true})
		}
	case atomLt:
		if v {
			t.ineqs = append(t.ineqs, ineq{a.l, true})
		} else {
			t.ineqs = append(t.ineqs, ineq{a.negLin(), false})
		}
	}
}

// drop retracts the literal add(a, v) appended last (LIFO).
func (t *theoryLits) drop(a *atom, v bool) {
	switch a.kind {
	case atomBool:
	case atomEq:
		if v {
			t.eqs = t.eqs[:len(t.eqs)-1]
		} else {
			t.diseqs = t.diseqs[:len(t.diseqs)-1]
		}
	default:
		t.ineqs = t.ineqs[:len(t.ineqs)-1]
	}
}

// consistent decides the conjunction over the rationals. theoryConj
// clones its inputs, so the collection is reusable afterwards.
func (t *theoryLits) consistent() bool {
	return theoryConj(t.eqs, t.ineqs, t.diseqs)
}

// model extracts a rational witness for the conjunction (best-effort;
// see theoryModel).
func (t *theoryLits) model() (map[string]*big.Rat, bool) {
	return theoryModel(t.eqs, t.ineqs, t.diseqs)
}

// thLit is one arithmetic literal on the CDCL theory trail, tagged
// with the Boolean trail position it entered at so backjumping can
// retract exactly the right suffix.
type thLit struct {
	a        *atom
	pos      bool
	trailPos int
}

// theoryTrail maintains the assigned arithmetic literal set
// incrementally: push on assignment, shrink on backjump, and a checked
// watermark so a propagation fixpoint that added no theory literals
// costs no theory call at all.
type theoryTrail struct {
	lits    []thLit
	set     theoryLits
	checked int // lits[:checked] are known consistent
}

func (t *theoryTrail) push(a *atom, pos bool, trailPos int) {
	t.lits = append(t.lits, thLit{a, pos, trailPos})
	t.set.add(a, pos)
}

// shrink retracts every literal that entered at or after Boolean trail
// position trailLen.
func (t *theoryTrail) shrink(trailLen int) {
	for len(t.lits) > 0 && t.lits[len(t.lits)-1].trailPos >= trailLen {
		last := t.lits[len(t.lits)-1]
		t.set.drop(last.a, last.pos)
		t.lits = t.lits[:len(t.lits)-1]
	}
	if t.checked > len(t.lits) {
		t.checked = len(t.lits)
	}
}

// explainLimit caps the greedy conflict-explanation minimization: past
// this many literals the quadratic retry loop costs more than the
// weaker blocking clause it buys, so the full set is used as-is.
const explainLimit = 24

// explain returns an inconsistent subset of the current literal set,
// greedily minimized (oldest literals dropped first, deterministic
// order) so the blocking clause prunes as much of the search space as
// possible. Precondition: the current set is inconsistent.
func (t *theoryTrail) explain() []thLit {
	involved := append([]thLit(nil), t.lits...)
	if len(involved) > explainLimit {
		return involved
	}
	for i := 0; i < len(involved); {
		var trial theoryLits
		for j, tl := range involved {
			if j != i {
				trial.add(tl.a, tl.pos)
			}
		}
		if !trial.consistent() {
			involved = append(involved[:i], involved[i+1:]...)
		} else {
			i++
		}
	}
	return involved
}
